// Smoke tests that build and run every example binary, guarding them
// against bit-rot. They exec the go toolchain, so they are skipped in
// -short mode.
package wormhole

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, dir string, wants ...string) {
	t.Helper()
	if testing.Short() {
		t.Skip("examples need the go toolchain")
	}
	out, err := exec.Command("go", "run", "./examples/"+dir).CombinedOutput()
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", dir, err, out)
	}
	for _, want := range wants {
		if !strings.Contains(string(out), want) {
			t.Errorf("example %s output missing %q:\n%s", dir, want, out)
		}
	}
}

func TestExampleQuickstart(t *testing.T) {
	runExample(t, "quickstart", "revealed via BRPR", "hidden LSR 3: 10.2.3.2", "asymmetry +3")
}

func TestExampleGNS3Lab(t *testing.T) {
	runExample(t, "gns3lab",
		"MPLS Label", "[247]", // Fig. 4a
		"(d) UHP: totally invisible")
}

func TestExampleRTLA(t *testing.T) {
	runExample(t, "rtla", "<255,64>", "RTLA matched the revealed tunnel length exactly")
}

func TestExampleTNT(t *testing.T) {
	runExample(t, "tnt", "trigger:frpla", "trigger:rtla", "stays dark")
}

func TestExampleAnomaly(t *testing.T) {
	runExample(t, "anomaly", "attribution=invisible-tunnel", "hidden LSRs")
}

func TestExampleCampaign(t *testing.T) {
	runExample(t, "campaign", "revelations:", "graph correction:", "ground truth:")
}

func TestExampleControlplane(t *testing.T) {
	runExample(t, "controlplane", "converged in-band", "LDP mapping deliveries", "revealed 3 hidden LSRs via BRPR")
}
