// Large-scale soak test: a full campaign over the biggest generated
// Internet, asserting the global invariants every smaller test checks
// locally. Guarded by -short.
package wormhole

import (
	"testing"

	"wormhole/internal/campaign"
	"wormhole/internal/experiments"
	"wormhole/internal/gen"
	"wormhole/internal/reveal"
)

func TestLargeCampaignSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// Explicit parameters (the pre-ladder "large": biggest flat-builder
	// world) rather than experiments.Large, which now names the ~10⁴-router
	// hierarchical rung and has its own scale tests.
	p := gen.DefaultParams(4242)
	p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 5, 20, 60, 15
	in, err := gen.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := campaign.DefaultConfig()
	cfg.MeasuredAliases = true
	cfg.ASMapNoise = 0.03
	c := campaign.Run(in, cfg)

	if len(c.Records) == 0 {
		t.Fatal("no campaign records")
	}
	if c.ITDK.NumNodes() < 100 {
		t.Fatalf("observed graph too small: %d nodes", c.ITDK.NumNodes())
	}

	// Invariant 1: every revealed hop is a genuine router of the claimed
	// tunnel's AS, on a real IGP path (ground truth check).
	badHop, goodHop := 0, 0
	for _, rev := range c.Revelations() {
		iInfo, ok := in.Owner(rev.Ingress)
		if !ok {
			continue
		}
		for _, h := range rev.Hops {
			hInfo, ok := in.Owner(h)
			if !ok || hInfo.AS != iInfo.AS {
				badHop++
			} else {
				goodHop++
			}
		}
	}
	if badHop > 0 {
		t.Errorf("%d revealed hops failed ground truth (vs %d good)", badHop, goodHop)
	}
	if goodHop == 0 {
		t.Error("no tunnels revealed at soak scale")
	}

	// Invariant 2: corrected graph never shrinks and never increases the
	// candidate meshes' degree.
	before := c.ObservedTraceGraph()
	after := c.CorrectedGraph()
	if after.NumNodes() < before.NumNodes() {
		t.Errorf("correction lost nodes: %d -> %d", before.NumNodes(), after.NumNodes())
	}

	// Invariant 3: probe accounting is sane — every record cost at least
	// one probe, and the total matches the per-VP counters.
	if c.Probes < uint64(len(c.Records)) {
		t.Errorf("probe accounting: %d probes for %d records", c.Probes, len(c.Records))
	}

	// Invariant 4: technique classification is internally consistent.
	for _, rev := range c.Revelations() {
		switch rev.Technique {
		case reveal.TechNone:
			if len(rev.Hops) != 0 {
				t.Errorf("TechNone with %d hops", len(rev.Hops))
			}
		case reveal.TechEither:
			if len(rev.Hops) != 1 {
				t.Errorf("TechEither with %d hops", len(rev.Hops))
			}
		case reveal.TechDPR:
			if len(rev.Steps) != 1 {
				t.Errorf("TechDPR with %d steps", len(rev.Steps))
			}
		}
	}
	t.Logf("soak: %d nodes, %d records, %d revelations, %d probes, %d good hops",
		c.ITDK.NumNodes(), len(c.Records), len(c.Revelations()), c.Probes, goodHop)
}

// TestInBandCampaignSoak runs a medium campaign over a world whose entire
// control plane converged via in-band protocol messages.
func TestInBandCampaignSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	p := experiments.Medium.Params(777)
	p.InBandControlPlane = true
	in, err := gen.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	c := campaign.Run(in, campaign.DefaultConfig())
	good := 0
	for _, rev := range c.Revelations() {
		iInfo, ok := in.Owner(rev.Ingress)
		if !ok {
			continue
		}
		for _, h := range rev.Hops {
			hInfo, ok := in.Owner(h)
			if !ok || hInfo.AS != iInfo.AS {
				t.Fatalf("in-band world: revealed hop %s fails ground truth", h)
			}
			good++
		}
	}
	if good == 0 {
		t.Error("no hidden hops revealed on the in-band world")
	}
	t.Logf("in-band soak: %d records, %d revelations, %d good hops",
		len(c.Records), len(c.Revelations()), good)
}
