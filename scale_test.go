// Scale-ladder tier: contracts that only show up at the Large (~10⁴
// router) hierarchical rung — snapshot structural equality, the
// no-per-router-allocation pin on Snapshot, replica-pool reuse keyed to
// topology generations, and churn resolution against arena-backed
// replicas. The Huge (~10⁵) rung is opt-in via WORMHOLE_HUGE.
package wormhole

import (
	"os"
	"sync"
	"testing"
	"time"

	"wormhole/internal/campaign"
	"wormhole/internal/experiments"
	"wormhole/internal/gen"
)

var (
	largeOnce sync.Once
	largeIn   *gen.Internet
	largeErr  error
)

// largeWorld builds the Large rung once and shares it across the scale
// tests; none of them may mutate it (snapshots and replicas only).
func largeWorld(t *testing.T) *gen.Internet {
	t.Helper()
	largeOnce.Do(func() {
		largeIn, largeErr = gen.Build(experiments.Large.Params(2024))
	})
	if largeErr != nil {
		t.Fatal(largeErr)
	}
	return largeIn
}

// sampleTraces is the promoted structural-equality oracle; the gen wire
// tests and the distributed smoke share the same definition.
func sampleTraces(in *gen.Internet, stride int) string {
	return gen.SampleTraces(in, stride)
}

func routerCount(in *gen.Internet) int {
	n := 0
	for _, as := range in.ASes {
		n += len(as.Core) + len(as.Edge)
	}
	return n
}

// TestLargeSnapshotEquivalence is the structural-equality oracle at the
// Large rung: the snapshot must mirror the source's address universe, AS
// metadata, and sampled traceroute behaviour across all 30 VPs.
func TestLargeSnapshotEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("scale tier")
	}
	in := largeWorld(t)
	if n := routerCount(in); n < 9000 {
		t.Fatalf("Large rung too small: %d routers", n)
	}
	snap, err := in.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.EquivalenceDiff(in, snap, 199); err != nil {
		t.Fatal(err)
	}
}

// TestLargeSnapshotAllocs pins the point of the struct-of-arrays layout:
// Snapshot carves replicas out of a handful of slabs, so its allocation
// count must stay far below one object per router. Per-object cloning
// creeping back in fails this long before the bytes/router gate moves.
func TestLargeSnapshotAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("scale tier")
	}
	in := largeWorld(t)
	routers := routerCount(in)
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := in.Snapshot(); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("Snapshot at Large: %.0f allocs for %d routers (%.3f/router)",
		allocs, routers, allocs/float64(routers))
	// Measured ~0.07 allocs/router (slabs, VPs, TE remaps); one tenth of
	// an object per router is an order of magnitude of headroom while
	// still failing fast if any per-router clone path returns.
	if allocs > float64(routers)/10 {
		t.Errorf("Snapshot allocates %.0f objects for %d routers — per-router allocation is back",
			allocs, routers)
	}
}

// TestReplicaPoolTopoGenReuse pins the pool's validity protocol: idle
// replicas are reused in stable slot order while the source's topology
// generation stands still, a source mutation reseeds the pool, and a
// replica mutated while leased is dropped at release.
func TestReplicaPoolTopoGenReuse(t *testing.T) {
	in, err := gen.Build(experiments.Small.Params(909))
	if err != nil {
		t.Fatal(err)
	}
	first, err := in.AcquireReplicas(2, false)
	if err != nil {
		t.Fatal(err)
	}
	in.ReleaseReplicas(first)
	second, err := in.AcquireReplicas(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if second[0] != first[0] || second[1] != first[1] {
		t.Fatal("pristine pool did not reuse replicas in slot order")
	}

	// Mutating replica 0's fabric while leased must drop it at release;
	// slot 1's pristine replica survives.
	second[0].Net.InvalidateFlowCache()
	in.ReleaseReplicas(second)
	third, err := in.AcquireReplicas(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if third[0] != first[1] {
		t.Fatal("pristine replica was not reused after a sibling's drop")
	}
	if third[0] == second[0] || third[1] == second[0] {
		t.Fatal("mutated replica re-entered the pool")
	}
	in.ReleaseReplicas(third)

	// A source mutation bumps TopoGen: the whole pool is stale and the
	// next acquisition rebuilds from scratch.
	in.Net.InvalidateFlowCache()
	fourth, err := in.AcquireReplicas(2, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fourth {
		if r == first[0] || r == first[1] || r == third[1] {
			t.Fatal("pool survived a source TopoGen bump")
		}
	}
	in.ReleaseReplicas(fourth)
}

// TestReplicaPoolLeakReclaim pins the leak fix on the pool's error
// paths: a failed worker invalidates its lease instead of stranding the
// slot, and an abandoned lease is purged when the pool reseeds rather
// than pinning its replica in the lease map forever.
func TestReplicaPoolLeakReclaim(t *testing.T) {
	in, err := gen.Build(experiments.Small.Params(311))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := in.AcquireReplicas(3, false)
	if err != nil {
		t.Fatal(err)
	}
	if n := in.LeasedReplicas(); n != 3 {
		t.Fatalf("leased %d after acquire, want 3", n)
	}
	// Worker 0 died: its replica is invalidated, the others released.
	in.InvalidateReplicas(rs[:1])
	in.ReleaseReplicas(rs[1:])
	if n := in.LeasedReplicas(); n != 0 {
		t.Fatalf("leased %d after invalidate+release, want 0", n)
	}
	again, err := in.AcquireReplicas(2, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range again {
		if r == rs[0] {
			t.Fatal("invalidated replica re-entered the pool")
		}
	}
	in.ReleaseReplicas(again)

	// An abandoned lease (never released at all) must not survive a pool
	// reseed: the source mutation invalidates it, and the reseed purges it.
	if _, err := in.AcquireReplicas(1, false); err != nil {
		t.Fatal(err)
	}
	if n := in.LeasedReplicas(); n != 1 {
		t.Fatalf("leased %d with abandoned lease, want 1", n)
	}
	in.Net.InvalidateFlowCache() // TopoGen bump: next acquire reseeds
	fresh, err := in.AcquireReplicas(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if n := in.LeasedReplicas(); n != 1 {
		t.Fatalf("leased %d after reseed, want 1 (stale lease stranded)", n)
	}
	in.ReleaseReplicas(fresh)
	if n := in.LeasedReplicas(); n != 0 {
		t.Fatalf("leased %d at end, want 0", n)
	}
}

// TestLargeChurnSmoke resolves a churn plan against the Large rung and a
// structural replica of it: identical schedules on both, and a full
// fail → reconverge → repair cycle must leave the replica's forwarding
// behaviour byte-identical to pristine.
func TestLargeChurnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale tier")
	}
	in := largeWorld(t)
	plan := gen.BuildChurnPlan(in, 2.0, 4711)
	if plan == nil {
		t.Fatal("no churn plan at Large — core ASes should provide candidates")
	}
	src := plan.EventsFor(in, 3, 400)
	if len(src) == 0 {
		t.Fatal("empty churn schedule")
	}
	snap, err := in.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rep := plan.EventsFor(snap, 3, 400)
	if len(rep) != len(src) {
		t.Fatalf("schedule sizes differ across fabrics: %d vs %d", len(src), len(rep))
	}
	for i := range src {
		if src[i].Tick != rep[i].Tick || src[i].Kind != rep[i].Kind {
			t.Fatalf("event %d differs across fabrics: %s@%d vs %s@%d",
				i, src[i].Kind, src[i].Tick, rep[i].Kind, rep[i].Tick)
		}
	}

	// Replaying the replica's schedule to completion restores pristine
	// forwarding: repair recomputes the IGP and replays the recorded
	// label-plane signalling byte-for-byte.
	before := sampleTraces(snap, 977)
	for _, ev := range rep {
		ev.Apply()
	}
	if after := sampleTraces(snap, 977); after != before {
		t.Error("repaired replica's forwarding diverges from pristine")
	}
}

// TestHugeScale is the opt-in ~10⁵-router acceptance run: the streamed
// builder must finish inside its budget and a sampled parallel campaign
// must complete on the default worker pool.
//
//	WORMHOLE_HUGE=1 go test -run TestHugeScale -v .
func TestHugeScale(t *testing.T) {
	if testing.Short() || os.Getenv("WORMHOLE_HUGE") == "" {
		t.Skip("set WORMHOLE_HUGE=1 to run the ~10⁵-router rung")
	}
	start := time.Now()
	in, err := gen.Build(experiments.Huge.Params(2024))
	if err != nil {
		t.Fatal(err)
	}
	buildTime := time.Since(start)
	n := routerCount(in)
	t.Logf("huge: %d routers built in %v", n, buildTime)
	if n < 90000 {
		t.Fatalf("Huge rung too small: %d routers", n)
	}
	if buildTime > 30*time.Second {
		t.Fatalf("Huge build took %v, budget 30s", buildTime)
	}
	c, err := campaign.RunParallel(in, experiments.Huge.CampaignConfig(), campaign.ParallelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Records) == 0 {
		t.Fatal("no campaign records at Huge scale")
	}
	t.Logf("huge campaign: %d records, %d revelations, %d probes",
		len(c.Records), len(c.Revelations()), c.Probes)
}
