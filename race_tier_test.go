// Race tier: the concurrency-sensitive packages (the parallel campaign
// engine and the netsim fabric it drives) must pass under the race
// detector. This test shells out to `go test -race` so the tier runs as
// part of the default `go test ./...` sweep without requiring every
// package to build instrumented.
//
// Guarded by -short (race builds are slow) and by an env var so the
// child invocation cannot recurse into itself.
package wormhole

import (
	"os"
	"os/exec"
	"testing"
)

// raceTierEnv marks a test process as the race-tier child. The child only
// tests internal packages (this test lives in the root package), but the
// env guard makes the non-recursion explicit rather than an accident of
// package selection.
const raceTierEnv = "WORMHOLE_RACE_TIER"

func TestRaceTier(t *testing.T) {
	if testing.Short() {
		t.Skip("race tier skipped in -short mode")
	}
	if os.Getenv(raceTierEnv) != "" {
		t.Skip("already inside the race tier")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	// No -short in the child: the 10x-iteration stress test
	// (TestParallelStress with the race build tag) is the tier's main
	// payload.
	cmd := exec.Command(goBin, "test", "-race", "-count=1",
		"./internal/campaign/...", "./internal/netsim/...")
	cmd.Env = append(os.Environ(), raceTierEnv+"=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("race tier failed: %v\n%s", err, out)
	}
	t.Logf("race tier:\n%s", out)
}
