// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index). Each benchmark
// regenerates its report end-to-end; campaign-based benchmarks share one
// generated world, built outside the timed region.
//
// Run with: go test -bench=. -benchmem
package wormhole

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"wormhole/internal/benchrun"
	"wormhole/internal/campaign"
	"wormhole/internal/experiments"
	"wormhole/internal/gen"
	"wormhole/internal/lab"
	"wormhole/internal/reveal"
)

var (
	worldOnce sync.Once
	world     *experiments.World
	worldErr  error
)

func benchWorld(b *testing.B) *experiments.World {
	b.Helper()
	worldOnce.Do(func() {
		world, worldErr = experiments.NewWorld(2024, experiments.Small)
	})
	if worldErr != nil {
		b.Fatal(worldErr)
	}
	return world
}

// runExperiment drives one runner b.N times, failing the benchmark if the
// report's shape check regresses.
func runExperiment(b *testing.B, id string) {
	var runner experiments.Runner
	for _, r := range experiments.All() {
		if r.ID == id {
			runner = r
		}
	}
	if runner.ID == "" {
		b.Fatalf("unknown experiment %q", id)
	}
	var w *experiments.World
	if runner.NeedsWorld {
		w = benchWorld(b)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := runner.Run(w)
		if err != nil {
			b.Fatal(err)
		}
		if strings.HasPrefix(rep.Check, "FAILED") {
			b.Fatalf("%s: %s", id, rep.Check)
		}
	}
}

func BenchmarkFig1DegreeDistribution(b *testing.B) { runExperiment(b, "fig1") }
func BenchmarkFig4Emulation(b *testing.B)          { runExperiment(b, "fig4") }
func BenchmarkTable1Fingerprint(b *testing.B)      { runExperiment(b, "table1") }
func BenchmarkTable2Visibility(b *testing.B)       { runExperiment(b, "table2") }
func BenchmarkTable3CrossValidation(b *testing.B)  { runExperiment(b, "table3") }
func BenchmarkTable4PerAS(b *testing.B)            { runExperiment(b, "table4") }
func BenchmarkFig5TunnelLength(b *testing.B)       { runExperiment(b, "fig5") }
func BenchmarkFig6RTTCorrection(b *testing.B)      { runExperiment(b, "fig6") }
func BenchmarkFig7RFA(b *testing.B)                { runExperiment(b, "fig7") }
func BenchmarkFig8RFAByType(b *testing.B)          { runExperiment(b, "fig8") }
func BenchmarkFig9RTLA(b *testing.B)               { runExperiment(b, "fig9") }
func BenchmarkTable5Deployment(b *testing.B)       { runExperiment(b, "table5") }
func BenchmarkFig10DegreeCorrection(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11PathLength(b *testing.B)        { runExperiment(b, "fig11") }
func BenchmarkTable6Applicability(b *testing.B)    { runExperiment(b, "table6") }

// Infrastructure benchmarks: the primitives the experiments are built on.

// BenchmarkTraceroute measures one full traceroute across the testbed's
// invisible tunnel (7 virtual hops, replies included).
func BenchmarkTraceroute(b *testing.B) {
	l, err := lab.Build(lab.Options{Scenario: lab.BackwardRecursive})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr := l.Prober.Traceroute(l.CE2Left); !tr.Reached {
			b.Fatal("trace failed")
		}
	}
}

// BenchmarkReveal measures the full BRPR recursion on the testbed tunnel.
func BenchmarkReveal(b *testing.B) {
	l, err := lab.Build(lab.Options{Scenario: lab.BackwardRecursive})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rev := reveal.Reveal(l.Prober, l.PE1Left, l.PE2Left)
		if len(rev.Hops) != 3 {
			b.Fatalf("revealed %d hops", len(rev.Hops))
		}
	}
}

// BenchmarkGenerateInternet measures synthetic-Internet construction
// (topology, addressing, IGP, LDP, BGP).
func BenchmarkGenerateInternet(b *testing.B) {
	p := experiments.Small.Params(77)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Build(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignParallel measures the full measurement campaign
// (traceroute, fingerprint, candidate selection, revelation) at different
// worker-pool sizes over one shared pre-built Internet. Scaling shows up
// in probes/s; wall-clock per op shrinks until shard count (one per team)
// caps the useful parallelism.
func BenchmarkCampaignParallel(b *testing.B) {
	in, err := gen.Build(experiments.Small.Params(2024))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := campaign.DefaultConfig()
			var totalProbes uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := campaign.RunParallel(in, cfg, campaign.ParallelConfig{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(c.Records) == 0 {
					b.Fatal("no campaign records")
				}
				totalProbes += c.Probes
			}
			b.ReportMetric(float64(totalProbes)/b.Elapsed().Seconds(), "probes/s")
		})
	}
}

// BenchmarkClone compares the two worker-replica paths on the same built
// Internet: the structural snapshot (deep-copy of routers, tables, links,
// hosts) against the generator rebuild (full topology + IGP + LDP + BGP
// replay). The snapshot is what makes parallel campaign spin-up cheap.
func BenchmarkClone(b *testing.B) {
	in, err := gen.Build(experiments.Small.Params(2024))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("structural", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := in.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := in.Rebuild(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestBenchSmoke is the tier-1-safe benchmark smoke: one benchrun
// iteration at small scale, validating the report shape and its JSON
// round-trip. The full run (wormhole bench) regenerates
// BENCH_campaign.json with meaningful iteration counts.
func TestBenchSmoke(t *testing.T) {
	rep, err := benchrun.Run(benchrun.Config{
		Scale:      experiments.Small,
		Seed:       2024,
		Runs:       1,
		CloneIters: 1,
		Workers:    []int{1, 2},
		Scales:     []experiments.Scale{experiments.Small},
		Dist:       []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scale != "small" || rep.Seed != 2024 || rep.GoMaxProcs < 1 {
		t.Fatalf("bad report header: %+v", rep)
	}
	if len(rep.Scales) != 1 {
		t.Fatalf("want 1 scale row, got %d", len(rep.Scales))
	}
	if sr := rep.Scales[0]; sr.Scale != "small" || sr.Routers <= 0 ||
		sr.BuildMS <= 0 || sr.SnapshotMS <= 0 || sr.BytesPerRouter <= 0 {
		t.Fatalf("bad scale row: %+v", sr)
	}
	if sr := rep.Scales[0]; sr.EncodeMS <= 0 || sr.DecodeMS <= 0 || sr.WireMB <= 0 {
		t.Fatalf("scale row missing wire-codec columns: %+v", sr)
	}
	// One distributed row: goroutine workers (nil DistSpawn → 1 process)
	// driving the real socket protocol at Scale.
	if len(rep.Dist) != 1 {
		t.Fatalf("want 1 dist row, got %d", len(rep.Dist))
	}
	if dr := rep.Dist[0]; dr.Workers != 2 || dr.Processes != 1 || dr.Runs != 1 ||
		dr.EncodeMS <= 0 || dr.DecodeMS <= 0 || dr.StreamMB <= 0 ||
		dr.ProbesPerRun == 0 || dr.WallMSPerRun <= 0 || dr.ProbesPerSec <= 0 ||
		dr.ResidentRoutersPerWorker <= 0 {
		t.Fatalf("bad dist row: %+v", dr)
	}
	if rep.Clone.StructuralMS <= 0 || rep.Clone.RebuildMS <= 0 || rep.Clone.Speedup <= 0 {
		t.Fatalf("bad clone report: %+v", rep.Clone)
	}
	// Two worker counts × (ICMP baseline, ICMP sweep-only, ICMP
	// sweep+cache, churn-delta, churn-flush, UDP baseline, UDP
	// sweep+cache).
	if len(rep.Campaign) != 14 {
		t.Fatalf("want 14 campaign entries, got %d", len(rep.Campaign))
	}
	wantWorkers := []int{1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2}
	wantMethod := []string{"icmp", "icmp", "icmp", "icmp", "icmp", "udp", "udp",
		"icmp", "icmp", "icmp", "icmp", "icmp", "udp", "udp"}
	wantCache := []bool{false, false, true, true, true, false, true, false, false, true, true, true, false, true}
	wantSweep := []bool{false, true, true, true, true, false, true, false, true, true, true, true, false, true}
	wantChurn := []bool{false, false, false, true, true, false, false, false, false, false, true, true, false, false}
	wantFlush := []bool{false, false, false, false, true, false, false, false, false, false, false, true, false, false}
	for i, cr := range rep.Campaign {
		if cr.Workers != wantWorkers[i] || cr.Method != wantMethod[i] ||
			cr.FlowCache != wantCache[i] || cr.Sweep != wantSweep[i] ||
			cr.Churn != wantChurn[i] || cr.ChurnFlushWorld != wantFlush[i] || cr.Runs != 1 {
			t.Errorf("entry %d: workers=%d method=%s cache=%v sweep=%v churn=%v flush=%v runs=%d",
				i, cr.Workers, cr.Method, cr.FlowCache, cr.Sweep, cr.Churn, cr.ChurnFlushWorld, cr.Runs)
		}
		if cr.Churn && cr.ChurnEventsPerRun == 0 {
			t.Errorf("entry %d: churn armed but no events fired: %+v", i, cr)
		}
		if !cr.Churn && cr.ChurnEventsPerRun != 0 {
			t.Errorf("entry %d: static row counted churn events: %+v", i, cr)
		}
		if cr.ProbesPerRun == 0 || cr.NsPerProbe <= 0 || cr.ProbesPerSec <= 0 || cr.WallMSPerRun <= 0 {
			t.Errorf("entry %d has empty measurements: %+v", i, cr)
		}
		// The raise is capped at NumCPU: each row runs with at least
		// min(workers, cores) procs and never fewer than one.
		if want := min(cr.Workers, runtime.NumCPU()); cr.GoMaxProcs < want {
			t.Errorf("entry %d ran with GOMAXPROCS %d for %d workers on %d CPUs",
				i, cr.GoMaxProcs, cr.Workers, runtime.NumCPU())
		}
		if cr.BootstrapProbesPerRun == 0 || cr.BootstrapProbesPerRun+cr.CampaignProbesPerRun != cr.ProbesPerRun {
			t.Errorf("entry %d probe split does not add up: %+v", i, cr)
		}
		if cr.EffectiveWorkers < 1 || cr.EffectiveWorkers > cr.Workers {
			t.Errorf("entry %d: effective workers %d outside [1, %d]", i, cr.EffectiveWorkers, cr.Workers)
		}
		if cr.ReplicaMS < 0 || cr.BootstrapMS <= 0 {
			t.Errorf("entry %d: bad phase split replica=%v bootstrap=%v", i, cr.ReplicaMS, cr.BootstrapMS)
		}
		if cr.BootstrapMS+cr.ReplicaMS > cr.WallMSPerRun {
			t.Errorf("entry %d: phases exceed the timed region: %+v", i, cr)
		}
		if cr.FlowCache {
			// Misses (and fast-forwards) may be zero: the untimed warm run
			// leaves the pooled replicas and the shared reply table covering
			// every flow the timed runs probe.
			if cr.CacheHitsPerRun == 0 {
				t.Errorf("entry %d: cache enabled but no hits: %+v", i, cr)
			}
		} else if cr.CacheHitsPerRun != 0 || cr.CacheMissesPerRun != 0 || cr.CacheFFPerRun != 0 {
			t.Errorf("entry %d: cache disabled but counters nonzero: %+v", i, cr)
		}
		if cr.Sweep {
			// Warm cache-on rows may be fully covered by the memo (zero
			// walks is the steady state); the cache-off sweep rows must
			// show the engine actually working.
			if !cr.FlowCache && (cr.SweepWalksPerRun == 0 || cr.SweepRepliesPerRun == 0) {
				t.Errorf("entry %d: sweep enabled but inert: %+v", i, cr)
			}
		} else if cr.SweepWalksPerRun != 0 || cr.SweepRepliesPerRun != 0 || cr.SweepFallbacksPerRun != 0 {
			t.Errorf("entry %d: sweep disabled but counters nonzero: %+v", i, cr)
		}
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := benchrun.WriteJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back benchrun.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Scales) != 1 || back.Scales[0].Scale != "small" ||
		back.Scales[0].Routers != rep.Scales[0].Routers ||
		back.Scales[0].BytesPerRouter != rep.Scales[0].BytesPerRouter ||
		back.Scales[0].EncodeMS != rep.Scales[0].EncodeMS {
		t.Fatalf("JSON round-trip mangled the scale rows: %+v", back.Scales)
	}
	if len(back.Dist) != 1 || back.Dist[0].Workers != rep.Dist[0].Workers ||
		back.Dist[0].StreamMB != rep.Dist[0].StreamMB {
		t.Fatalf("JSON round-trip mangled the dist rows: %+v", back.Dist)
	}
	if back.Scale != rep.Scale || len(back.Campaign) != len(rep.Campaign) || back.Campaign[7].Workers != 2 ||
		back.Campaign[5].Method != "udp" || back.Campaign[6].Method != "udp" ||
		!back.Campaign[3].Churn || back.Campaign[3].ChurnFlushWorld ||
		!back.Campaign[4].ChurnFlushWorld ||
		back.Campaign[3].ChurnEventsPerRun != rep.Campaign[3].ChurnEventsPerRun ||
		!back.Campaign[2].FlowCache || back.Campaign[2].CacheHitsPerRun != rep.Campaign[2].CacheHitsPerRun ||
		!back.Campaign[1].Sweep || back.Campaign[1].SweepWalksPerRun != rep.Campaign[1].SweepWalksPerRun {
		t.Fatalf("JSON round-trip mangled the report: %+v", back)
	}
}

func BenchmarkSurveyCalibration(b *testing.B) { runExperiment(b, "survey") }

func BenchmarkAliasQuality(b *testing.B) { runExperiment(b, "aliases") }
