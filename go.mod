module wormhole

go 1.22
