// Lazy-fabric tier: the fault-in equivalence goldens. A lazy world
// (gen.Params.LazyStubs) keeps stub ASes as descriptors and constructs
// them on first touch; these tests pin that laziness is unobservable —
// byte-identical campaign output against an eager build of the same
// parameters, across engines, worker counts, and replica modes — and
// that faulting stubs in on leased replicas leaves the replica pool
// warm. The Giga (~10⁶ router) rung is opt-in via WORMHOLE_GIGA.
package wormhole

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"wormhole/internal/campaign"
	"wormhole/internal/experiments"
	"wormhole/internal/gen"
	"wormhole/internal/netaddr"
)

// lazyParams is a small hierarchical world with enough stubs that a
// capped streamed campaign leaves most of them untouched.
func lazyParams(seed int64, lazy bool) gen.Params {
	p := gen.DefaultParams(seed)
	p.NumTier1 = 2
	p.NumTransit = 6
	p.NumStub = 200
	p.NumVPs = 5
	p.Hierarchical = true
	p.LazyStubs = lazy
	p.MPLSFrac = 1.0
	p.NoPropagateFrac = 0.8
	return p
}

// streamedConfig is the campaign the equivalence golden runs: streaming
// scheduler, several batches, a per-prefix budget, both caps engaged.
func streamedConfig() campaign.Config {
	cfg := campaign.DefaultConfig()
	cfg.HDNThreshold = 6
	cfg.Stream = true
	cfg.PrefixBudget = 2
	cfg.StreamBatch = 16
	cfg.StreamSeed = 77
	cfg.MaxBootstrapTargets = 80
	cfg.MaxTargets = 60
	return cfg
}

// dumpLazyCampaign renders the campaign's deterministic outputs for
// byte comparison across worlds (names and addresses only — node
// indices diverge between eager and lazy fabrics by design).
func dumpLazyCampaign(c *campaign.Campaign) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "targets=%d probes=%d\n", len(c.Targets), c.Probes)
	for i, rec := range c.Records {
		fmt.Fprintf(&sb, "rec %d vp=%s dst=%s reached=%v hops=",
			i, rec.VP.Host.Name(), rec.Trace.Dst, rec.Trace.Reached)
		for _, h := range rec.Trace.Hops {
			fmt.Fprintf(&sb, "[%d %s rttl=%d t=%d c=%d mpls=%d]",
				h.ProbeTTL, h.Addr, h.ReplyTTL, h.ICMPType, h.ICMPCode, len(h.MPLS))
		}
		fmt.Fprintf(&sb, " echoTTL=%d", rec.EgressEchoTTL)
		if rec.Revelation != nil {
			fmt.Fprintf(&sb, " rev=%s->%s %v tech=%s",
				rec.Revelation.Ingress, rec.Revelation.Egress, rec.Revelation.Hops, rec.Revelation.Technique)
		}
		sb.WriteByte('\n')
	}
	var fpa []string
	for a, r := range c.Fingerprints {
		fpa = append(fpa, fmt.Sprintf("fp %s sig=%v class=%v", a, r.Signature, r.Class))
	}
	sort.Strings(fpa)
	sb.WriteString(strings.Join(fpa, "\n"))
	sb.WriteByte('\n')
	return sb.String()
}

func firstDiffLine(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  eager: %s\n  lazy:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line count: %d vs %d", len(wl), len(gl))
}

// TestLazyFaultInEquivalence is the tentpole golden: the same streamed
// campaign on an eager and a lazy build of identical parameters produces
// byte-identical output — serially, and in parallel at 1/2/8 workers on
// both replica paths — while the lazy run leaves most of the stub
// universe unconstructed.
func TestLazyFaultInEquivalence(t *testing.T) {
	eager, err := gen.Build(lazyParams(424242, false))
	if err != nil {
		t.Fatal(err)
	}
	cfg := streamedConfig()
	oracle := campaign.Run(eager, cfg)
	want := dumpLazyCampaign(oracle)
	if len(oracle.Records) == 0 {
		t.Fatal("oracle campaign yields no records")
	}
	if st := oracle.Lazy; st.Resident != st.Total {
		t.Fatalf("eager world not fully resident: %d of %d", st.Resident, st.Total)
	}

	lazySerialIn, err := gen.Build(lazyParams(424242, true))
	if err != nil {
		t.Fatal(err)
	}
	lc := campaign.Run(lazySerialIn, cfg)
	if got := dumpLazyCampaign(lc); got != want {
		t.Fatalf("lazy serial diverged from eager oracle\n%s", firstDiffLine(want, got))
	}
	st := lc.Lazy
	if st.FaultIns == 0 {
		t.Fatal("lazy campaign faulted nothing in — laziness not engaged")
	}
	if st.ResidentStubs >= st.TotalStubs {
		t.Fatalf("lazy campaign materialized every stub (%d of %d) — capped streaming should not",
			st.ResidentStubs, st.TotalStubs)
	}
	t.Logf("lazy serial: %d of %d routers resident (%d of %d stubs), %d fault-ins",
		st.Resident, st.Total, st.ResidentStubs, st.TotalStubs, st.FaultIns)

	for _, pcfg := range []campaign.ParallelConfig{
		{Workers: 1},
		{Workers: 2},
		{Workers: 8},
		{Workers: 2, Replica: campaign.ReplicaRebuild},
		{Workers: 8, Replica: campaign.ReplicaRebuild},
	} {
		name := fmt.Sprintf("workers=%d replica=%s", pcfg.Workers, pcfg.Replica)
		in, err := gen.Build(lazyParams(424242, true))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c, err := campaign.RunParallel(in, cfg, pcfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := dumpLazyCampaign(c); got != want {
			t.Errorf("%s: lazy parallel diverged from eager oracle\n%s", name, firstDiffLine(want, got))
		}
	}
}

// TestLazyMaterializeAllEquivalence pins the construction replay at full
// coverage: materializing a lazy world's entire universe (RouterAddrs
// forces it) yields the same address universe and sampled forwarding
// behaviour as the eager build.
func TestLazyMaterializeAllEquivalence(t *testing.T) {
	eager, err := gen.Build(lazyParams(99, false))
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := gen.Build(lazyParams(99, true))
	if err != nil {
		t.Fatal(err)
	}
	// Compare the universes as sets: RouterAddrs enumerates provider
	// routers' cross-link interfaces in materialization order, which
	// legitimately differs (the lazy build materializes VP stubs first).
	// Forwarding is prefix-based, so enumeration order is not behaviour.
	aa, bb := eager.RouterAddrs(), lazy.RouterAddrs()
	sort.Slice(aa, func(i, j int) bool { return aa[i] < aa[j] })
	sort.Slice(bb, func(i, j int) bool { return bb[i] < bb[j] })
	if len(aa) != len(bb) {
		t.Fatalf("addr universes differ: %d vs %d", len(aa), len(bb))
	}
	for i := range aa {
		if aa[i] != bb[i] {
			t.Fatalf("addr %d differs: %s vs %s", i, aa[i], bb[i])
		}
	}
	if st := lazy.LazyStats(); st.Resident != st.Total {
		t.Fatalf("materializeAll left %d of %d routers unbuilt", st.Resident, st.Total)
	}
	// Probe the sorted universe so line i targets the same address on
	// both worlds.
	sample := func(in *gen.Internet) string {
		var sb strings.Builder
		for vi, vp := range in.VPs {
			for i := 0; i < len(aa); i += 61 {
				tr := vp.Prober.Traceroute(aa[i])
				fmt.Fprintf(&sb, "vp%d %s reached=%v ", vi, aa[i], tr.Reached)
				for _, h := range tr.Hops {
					fmt.Fprintf(&sb, "[%d %s rttl=%d t=%d c=%d mpls=%v]",
						h.ProbeTTL, h.Addr, h.ReplyTTL, h.ICMPType, h.ICMPCode, h.MPLS)
				}
				sb.WriteByte('\n')
			}
		}
		return sb.String()
	}
	want := sample(eager)
	if got := sample(lazy); got != want {
		wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
		for i := 0; i < len(wl) && i < len(gl); i++ {
			if wl[i] != gl[i] {
				t.Fatalf("trace %d diverges:\n  eager %s\n  lazy  %s", i, wl[i], gl[i])
			}
		}
		t.Fatalf("trace counts diverge: %d vs %d lines", len(wl), len(gl))
	}
}

// TestLazyReplicaPoolStaysWarm pins the epoch-guard satellite: faulting
// a stub in on a leased replica is additive materialization, not a
// topology mutation — the replica must be reused on the next
// acquisition, and the source pool must not cold-start.
func TestLazyReplicaPoolStaysWarm(t *testing.T) {
	in, err := gen.Build(lazyParams(31337, true))
	if err != nil {
		t.Fatal(err)
	}
	space := in.ProbeSpace()
	first, err := in.AcquireReplicas(2, false)
	if err != nil {
		t.Fatal(err)
	}
	// Probe a handful of stub anchors on replica 0: most stubs hold no
	// VP, so at least one probe faults a stub in on the replica.
	before := first[0].LazyStats()
	var anchors []netaddr.Addr
	for i := space.Len() - 10; i < space.Len(); i++ {
		anchors = append(anchors, space.Addr(i))
	}
	for _, a := range anchors {
		first[0].VPs[0].Prober.Traceroute(a)
	}
	after := first[0].LazyStats()
	if after.FaultIns == before.FaultIns {
		t.Fatal("replica probes faulted nothing in — test probes the wrong addresses")
	}
	// The source world must not have materialized anything: the fault-in
	// happened on the replica's private fabric.
	if st := in.LazyStats(); st.FaultIns != 0 {
		t.Fatalf("source world faulted %d stubs in from replica probes", st.FaultIns)
	}
	in.ReleaseReplicas(first)
	second, err := in.AcquireReplicas(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if second[0] != first[0] || second[1] != first[1] {
		t.Fatal("fault-in on a leased replica cold-started the pool")
	}
	// The faulted-in state survives pooling: the replica keeps its
	// resident set across lease cycles.
	if st := second[0].LazyStats(); st.FaultIns != after.FaultIns {
		t.Fatalf("pooled replica lost fault-in state: %d vs %d", st.FaultIns, after.FaultIns)
	}
	in.ReleaseReplicas(second)
}

// TestGigaScale is the opt-in ~10⁶-router acceptance run: the lazy
// builder must finish inside its budget with only a sliver of the
// universe resident, and a streamed sampled campaign must complete on
// the default worker pool.
//
//	WORMHOLE_GIGA=1 go test -run TestGigaScale -v .
func TestGigaScale(t *testing.T) {
	if testing.Short() || os.Getenv("WORMHOLE_GIGA") == "" {
		t.Skip("set WORMHOLE_GIGA=1 to run the ~10⁶-router rung")
	}
	start := time.Now()
	in, err := gen.Build(experiments.Giga.Params(2024))
	if err != nil {
		t.Fatal(err)
	}
	buildTime := time.Since(start)
	st := in.LazyStats()
	t.Logf("giga: %d-router universe built in %v, %d resident (%d of %d stubs)",
		st.Total, buildTime, st.Resident, st.ResidentStubs, st.TotalStubs)
	if st.Total < 1_000_000 {
		t.Fatalf("Giga rung too small: %d routers", st.Total)
	}
	if st.Resident*50 > st.Total {
		t.Fatalf("Giga build materialized %d of %d routers — laziness not engaged", st.Resident, st.Total)
	}
	if buildTime > 60*time.Second {
		t.Fatalf("Giga build took %v, budget 60s", buildTime)
	}
	c, err := campaign.RunParallel(in, experiments.Giga.CampaignConfig(), campaign.ParallelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Records) == 0 {
		t.Fatal("no campaign records at Giga scale")
	}
	lz := c.Lazy
	t.Logf("giga campaign: %d records, %d revelations, %d probes; %d of %d routers resident, %d fault-ins (%.0f ms), %d resident across replicas",
		len(c.Records), len(c.Revelations()), c.Probes,
		lz.Resident, lz.Total, lz.FaultIns, float64(lz.FaultInNS)/1e6, c.ReplicaResident)
	if lz.Resident*50 > lz.Total {
		t.Errorf("Giga campaign materialized %d of %d routers — sampling should touch a sliver", lz.Resident, lz.Total)
	}
}
