#!/bin/sh
# check.sh — the full local gate, in the order CI would run it:
# build everything, vet, then the performance guard (bench_guard.sh
# fails if the 2-worker cached campaign regresses below the 1-worker
# row, if the sweep-on cold path stops beating per-probe, if
# delta-invalidation falls below flush-the-world under churn, if the
# UDP sweep+cache row stops beating the UDP per-probe baseline, or if
# the Large replica's bytes/router exceeds the committed ceiling) — run
# first because its throughput ratios are timing-sensitive and the
# compile-heavy coverage/race phases below leave a single-CPU box in a
# throttled window that skews them. Then the test suite with coverage
# aggregation (per-package floors on the engine packages guard against
# silently shedding tests), short native-fuzz smokes over the sweep
# derivation model and the UDP port-cycle branch-class algebra, and the
# race tier (TestRaceTier shells out to
# `go test -race` over the concurrency-heavy packages and is skipped
# automatically under -short). Last, the distributed smoke: a real
# 2-process campaign over a Unix socket byte-compared to serial.
#
# Usage: ./scripts/check.sh
set -eux

go build ./...
go vet ./...

./scripts/bench_guard.sh

# Full suite with an aggregated coverage profile, then per-package floors
# on the engine packages. The floors sit safely under the measured values
# (netsim ~56%, campaign ~95% as of PR 6) — they catch wholesale test
# loss, not incremental drift.
COVOUT=$(mktemp)
trap 'rm -f "$COVOUT"' EXIT
go test -coverprofile="$COVOUT" ./...

check_floor() {
    pkg="$1"
    floor="$2"
    pct=$(go tool cover -func="$COVOUT" |
        awk -v pre="wormhole/internal/$pkg/" '
            index($1, pre) == 1 { split($NF, a, "%"); sum += a[1]; n++ }
            END { if (n) printf "%.1f", sum / n; else print "0" }')
    echo "coverage: internal/$pkg ~${pct}% by function (floor ${floor}%)"
    awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p + 0 >= f + 0) }' || {
        echo "check: FAIL — internal/$pkg coverage ${pct}% below floor ${floor}%"
        exit 1
    }
}
check_floor netsim 50
check_floor campaign 85

# Native-fuzz smokes: ten seconds each of the backward-scan differential
# fuzzer and the UDP slot-class fuzzer. Regressions in the lineage model
# or the port-cycle aliasing algebra surface here long before a campaign
# happens to probe the right flow or roll the colliding ports.
go test ./internal/netsim/ -run='^$' -fuzz=FuzzLineageBackwardScan -fuzztime=10s
go test ./internal/netsim/ -run='^$' -fuzz=FuzzUDPSlotClasses -fuzztime=10s

go test -race -run TestRaceTier .

# Distributed smoke: a 2-worker multi-process campaign over a Unix
# socket must byte-match the serial engine's dataset at the Large rung.
# This is the one gate that exercises real OS worker processes (the
# wormhole binary re-execing itself) — the unit tier drives the same
# protocol with goroutine workers.
DISTDIR=$(mktemp -d)
trap 'rm -f "$COVOUT"; rm -rf "$DISTDIR"' EXIT
go build -o "$DISTDIR/wormhole" ./cmd/wormhole
"$DISTDIR/wormhole" campaign -scale large -dist 2 -out "$DISTDIR/dist.jsonl" >/dev/null
"$DISTDIR/wormhole" campaign -scale large -workers 1 -out "$DISTDIR/serial.jsonl" >/dev/null
cmp "$DISTDIR/dist.jsonl" "$DISTDIR/serial.jsonl"
echo "check: distributed campaign byte-identical to serial at large"

# Opt-in Giga acceptance: WORMHOLE_GIGA=1 ./scripts/check.sh also runs
# the ~10⁶-router end-to-end test (the bench guard above already ran its
# build/memory gate under the same switch).
if [ "${WORMHOLE_GIGA:-}" != "" ]; then
    go test -run TestGigaScale -v .
fi
