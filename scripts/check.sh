#!/bin/sh
# check.sh — the full local gate, in the order CI would run it:
# build everything, vet, run the test suite, then the race tier
# (TestRaceTier shells out to `go test -race` over the concurrency-heavy
# packages and is skipped automatically under -short), and finally the
# scaling guard (bench_guard.sh fails if the 2-worker cached campaign
# regresses below the 1-worker row).
#
# Usage: ./scripts/check.sh
set -eux

go build ./...
go vet ./...
go test ./...
go test -race -run TestRaceTier .
./scripts/bench_guard.sh
