#!/bin/sh
# bench_guard.sh — the performance regression gate.
#
# Runs the Small campaign bench at 1 and 2 workers (per-probe baseline,
# sweep-only, and sweep+cache rows) and enforces two properties:
#
#  1. Scaling (PR 4): the 2-worker cache-on row must not regress below
#     the 1-worker row beyond a small noise tolerance. Adding a worker
#     must never make the cached campaign slower — the sharded bootstrap,
#     pooled replicas, and shared flow table have to pull their weight
#     even on a single-CPU box.
#
#  2. Cold path (PR 5): the sweep-on cache-off row must beat the
#     per-probe cache-off baseline by a real margin at 1 worker. The
#     single-injection sweep replaces h full event-loop drains per trace
#     with one walk plus h materializations; if that stops paying, the
#     cold bootstrap and every -no-flow-cache measurement silently
#     regress to O(h²).
#
#  3. Churn (PR 6): under an identical churn schedule, the
#     delta-invalidation row must not fall below the flush-the-world
#     baseline at 2 workers. Scoped eviction exists to keep unaffected
#     flows, the replica pool, and the shared-table subscription warm
#     across topology events; if flushing everything is just as fast,
#     the delta machinery is dead weight. Gated at 2 workers because
#     that is where the subscription protocol matters — flush-world
#     detaches every replica, delta keeps them attached — and where the
#     measured margin is widest (structural, not noise).
#
#  4. Memory (PR 7): the bytes/router footprint of one retained replica
#     at the Large (~10⁴ router) rung must stay under a committed
#     ceiling. The struct-of-arrays arenas exist to keep replica cost
#     flat; per-object cloning creeping back in shows up here first.
#
#  5. UDP cold path (PR 8): the UDP sweep+cache row must beat the UDP
#     per-probe baseline by a real margin at 1 worker. UDP Paris cycles
#     its destination port per probe, so this coverage comes entirely
#     from the port-cycle slot machinery — per-slot walks, branch-class
#     aliasing, canonical-port reply shapes; if the gate fails, UDP
#     campaigns have silently regressed to per-probe simulation while
#     the ICMP gates stay green.
#
#  6. Wire codec (PR 10): encoding the Large fabric to the versioned
#     snapshot wire blob must stay within ENCODE_FACTOR× of the
#     in-process structural snapshot. The codec is the distributed
#     engine's world transfer; it exists to be memcpy-grade (length-
#     prefixed sections carved from the same arenas Snapshot copies),
#     and reflection or per-object serialization creeping in would
#     show up here long before campaigns visibly drag.
#
#  7. Giga (PR 9, opt-in via WORMHOLE_GIGA=1): the ~10⁶-router lazy
#     rung must build inside its wall-clock budget with only a sliver
#     of the stub universe resident, and the retained replica must stay
#     under its own bytes/RESIDENT-router ceiling. The ceiling is far
#     above Large's: the Giga resident set is almost entirely the
#     transit core, and a core router's BGP/LDP state scales with the
#     ~10³ core-AS aggregates it holds routes and labels for — measured
#     ~110 k bytes each, versus Large's stub-dominated ~4.7 k. The gate
#     catches replicas silently re-acquiring universe-sized state (the
#     descriptor table, the span index, or worse, materialized stubs).
#     Opt-in because the build alone takes ~25 s.
#
# Tolerances: the 2w cache-on row must reach TOLERANCE% of 1w (97%
# absorbs scheduler jitter at runs=8 on a loaded box; the pre-fix
# inversion was -37%). The sweep-on cold row must reach COLD_FLOOR% of
# the per-probe baseline (120% is far below the ~2.3x steady-state win,
# but well above noise). The churned delta row must reach CHURN_FLOOR%
# of the churned flush-world row at 2 workers (100%: delta must at
# least match the baseline; measured ~140% — it wins by keeping the
# pool and the shared-table subscription warm). The UDP sweep+cache row
# must reach UDP_FLOOR% of the UDP per-probe baseline at 1 worker.
# The Large replica must stay under MEM_CEILING heap bytes per router.
#
# Usage: ./scripts/bench_guard.sh   (repo root; also run by check.sh)
set -eu

TOLERANCE=97
COLD_FLOOR=120
CHURN_FLOOR=100
UDP_FLOOR=150
# Heap bytes per router for one retained Large replica: measured ~4.7k
# with the fabric-wide arenas (was >20k with per-object cloning); 7k
# leaves headroom for real feature growth while catching any return of
# per-router heap objects.
MEM_CEILING=7000
# Wire-codec budget: Large encode_ms + decode_ms must stay within this
# factor of snapshot_ms (measured ~1.5×: encode well under 1× — the blob
# writer linearizes the same arenas Snapshot copies — and decode about
# 1×, a snapshot-shaped arena carve from the blob).
ENCODE_FACTOR=2
# Wall-clock budget for the Giga lazy build (ms).
GIGA_BUILD_MS=60000
# Heap bytes per RESIDENT router for one retained Giga replica: the
# resident set is the BGP/LDP-rich core (~110k measured, see gate 6's
# comment); 160k leaves growth headroom while catching any return of
# per-replica universe-sized state.
GIGA_MEM_CEILING=160000
OUT=.bench_guard.json
OUT_MEM=.bench_guard_mem.json
OUT_GIGA=.bench_guard_giga.json
trap 'rm -f "$OUT" "$OUT_MEM" "$OUT_GIGA"' EXIT

# campaign_gates runs the bench matrix once and evaluates the three
# throughput gates. runs=8: each gate divides two noisy throughputs, and
# at runs=4 single-CPU scheduler jitter produced false failures (observed
# spread ±20% per row); eight runs per row damps the per-invocation
# noise. The rows are measured sequentially, so host-level CPU
# throttling that sets in mid-measurement skews the late (2-worker) rows
# low — the caller retries once before believing a failure.
campaign_gates() {
    # -dist "": the throughput gates key on the in-process rows only; the
    # wire codec has its own gate against the Large scales row below.
    go run ./cmd/wormhole bench -scale small -runs 8 -workers 1,2 -dist "" -out "$OUT"

    # The report's campaign rows carry "workers", "method", "flow_cache",
    # "sweep", "churn", "churn_flush_world", and "probes_per_sec" in a
    # stable field order; key the rates on all six.
    awk -v tol="$TOLERANCE" -v cold="$COLD_FLOOR" -v chfloor="$CHURN_FLOOR" -v udpfloor="$UDP_FLOOR" '
    /"workers":/       { gsub(/[^0-9]/, ""); w = $0 }
    /"method": "icmp"/ { m = "icmp" }
    /"method": "udp"/  { m = "udp" }
    /"flow_cache": true/  { cached = 1 }
    /"flow_cache": false/ { cached = 0 }
    /"sweep": true/    { sweep = 1 }
    /"sweep": false/   { sweep = 0 }
    /"churn": true/    { churn = 1 }
    /"churn": false/   { churn = 0 }
    /"churn_flush_world": true/  { flush = 1 }
    /"churn_flush_world": false/ { flush = 0 }
    /"probes_per_sec":/ {
        gsub(/[^0-9.]/, "")
        rate[w "," m "," cached "," sweep "," churn "," flush] = $0 + 0
    }
    END {
        if (!(("1,icmp,1,1,0,0") in rate) || !(("2,icmp,1,1,0,0") in rate)) {
            print "bench_guard: missing cache-on rows for workers 1 and 2"
            exit 1
        }
        pct = 100 * rate["2,icmp,1,1,0,0"] / rate["1,icmp,1,1,0,0"]
        printf "bench_guard: cache-on %.0f probes/s at 1w, %.0f at 2w (%.1f%%, floor %d%%)\n", \
            rate["1,icmp,1,1,0,0"], rate["2,icmp,1,1,0,0"], pct, tol
        if (pct < tol) {
            print "bench_guard: FAIL — 2-worker campaign regressed below 1 worker"
            exit 1
        }
        if (!(("1,icmp,0,0,0,0") in rate) || !(("1,icmp,0,1,0,0") in rate)) {
            print "bench_guard: missing cache-off rows for the cold-path gate"
            exit 1
        }
        coldpct = 100 * rate["1,icmp,0,1,0,0"] / rate["1,icmp,0,0,0,0"]
        printf "bench_guard: cold path %.0f probes/s per-probe, %.0f sweep-on (%.1f%%, floor %d%%)\n", \
            rate["1,icmp,0,0,0,0"], rate["1,icmp,0,1,0,0"], coldpct, cold
        if (coldpct < cold) {
            print "bench_guard: FAIL — sweep-on cold path no longer beats per-probe"
            exit 1
        }
        if (!(("2,icmp,1,1,1,0") in rate) || !(("2,icmp,1,1,1,1") in rate)) {
            print "bench_guard: missing churn rows for the invalidation gate"
            exit 1
        }
        churnpct = 100 * rate["2,icmp,1,1,1,0"] / rate["2,icmp,1,1,1,1"]
        printf "bench_guard: churn %.0f probes/s flush-world, %.0f delta at 2w (%.1f%%, floor %d%%)\n", \
            rate["2,icmp,1,1,1,1"], rate["2,icmp,1,1,1,0"], churnpct, chfloor
        if (churnpct < chfloor) {
            print "bench_guard: FAIL — delta-invalidation fell below flush-the-world under churn"
            exit 1
        }
        if (!(("1,udp,0,0,0,0") in rate) || !(("1,udp,1,1,0,0") in rate)) {
            print "bench_guard: missing udp rows for the slot cold-path gate"
            exit 1
        }
        udppct = 100 * rate["1,udp,1,1,0,0"] / rate["1,udp,0,0,0,0"]
        printf "bench_guard: udp cold path %.0f probes/s per-probe, %.0f sweep+cache (%.1f%%, floor %d%%)\n", \
            rate["1,udp,0,0,0,0"], rate["1,udp,1,1,0,0"], udppct, udpfloor
        if (udppct < udpfloor) {
            print "bench_guard: FAIL — udp sweep+cache no longer beats the udp per-probe baseline"
            exit 1
        }
    }
' "$OUT"
}

# A genuine regression (the pre-fix inversion was -37%) fails both
# attempts; a transient throttled window fails at most one.
if ! campaign_gates; then
    echo "bench_guard: retrying the campaign gates once (transient load?)"
    campaign_gates
fi

# Memory gate: build the Large rung once (no campaign) and check the
# retained-replica footprint reported in the scales row.
go run ./cmd/wormhole bench -scales large -scales-only -out "$OUT_MEM"

awk -v ceiling="$MEM_CEILING" '
    /"bytes_per_router":/ {
        gsub(/[^0-9.]/, "")
        bpr = $0 + 0
        found = 1
    }
    END {
        if (!found) {
            print "bench_guard: missing bytes_per_router in the scales row"
            exit 1
        }
        printf "bench_guard: large replica %.0f bytes/router (ceiling %d)\n", bpr, ceiling
        if (bpr > ceiling) {
            print "bench_guard: FAIL — replica bytes/router exceeded the committed ceiling"
            exit 1
        }
    }
' "$OUT_MEM"

# Wire-codec gate: same Large scales row — encode plus decode must stay
# within ENCODE_FACTOR× of the structural snapshot.
awk -v factor="$ENCODE_FACTOR" '
    /"snapshot_ms":/ { v = $0; gsub(/[^0-9.]/, "", v); snap = v + 0 }
    /"encode_ms":/   { v = $0; gsub(/[^0-9.]/, "", v); enc = v + 0; found = 1 }
    /"decode_ms":/   { v = $0; gsub(/[^0-9.]/, "", v); dec = v + 0 }
    END {
        if (!found || snap <= 0) {
            print "bench_guard: missing encode_ms/snapshot_ms in the scales row"
            exit 1
        }
        printf "bench_guard: large wire codec encode %.1fms + decode %.1fms vs snapshot %.1fms (budget %dx)\n", \
            enc, dec, snap, factor
        if (enc + dec > factor * snap) {
            print "bench_guard: FAIL — wire encode+decode exceeded its snapshot-relative budget"
            exit 1
        }
    }
' "$OUT_MEM"

# Giga gate, opt-in: build the lazy ~10⁶ rung (no campaign) and check
# the build budget, the resident-router heap ceiling, and that the lazy
# builder actually deferred the stub universe.
if [ "${WORMHOLE_GIGA:-}" != "" ]; then
    go run ./cmd/wormhole bench -scales giga -scales-only -out "$OUT_GIGA"

    awk -v ceiling="$GIGA_MEM_CEILING" -v budget="$GIGA_BUILD_MS" '
        /"build_ms":/         { v = $0; gsub(/[^0-9.]/, "", v); build = v + 0 }
        /"resident_routers":/ { v = $0; gsub(/[^0-9]/, "", v); resident = v + 0 }
        /"routers":/          { v = $0; gsub(/[^0-9]/, "", v); total = v + 0 }
        /"bytes_per_router":/ { v = $0; gsub(/[^0-9.]/, "", v); bpr = v + 0; found = 1 }
        END {
            if (!found) {
                print "bench_guard: missing giga scales row"
                exit 1
            }
            printf "bench_guard: giga build %.0fms (budget %dms), %d of %d routers resident, %.0f bytes/resident-router (ceiling %d)\n", \
                build, budget, resident, total, bpr, ceiling
            if (build > budget) {
                print "bench_guard: FAIL — giga build exceeded its wall-clock budget"
                exit 1
            }
            if (bpr > ceiling) {
                print "bench_guard: FAIL — giga replica exceeded the bytes/resident-router ceiling"
                exit 1
            }
            if (resident * 50 > total) {
                print "bench_guard: FAIL — giga build materialized too much of the universe (laziness broken)"
                exit 1
            }
        }
    ' "$OUT_GIGA"
fi
