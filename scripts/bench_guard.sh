#!/bin/sh
# bench_guard.sh — the multi-worker scaling regression gate.
#
# Runs the Small campaign bench at 1 and 2 workers (cache on and off)
# and fails when the 2-worker cache-on row regresses below the 1-worker
# row beyond a small noise tolerance. This pins the property PR 4 bought:
# adding a worker must never make the cached campaign slower — the
# sharded bootstrap, pooled replicas, and shared flow table have to pull
# their weight even on a single-CPU box, where the win comes from doing
# less per-worker work, not from hardware parallelism.
#
# Tolerance: 2w must reach at least TOLERANCE% of 1w throughput. 97%
# absorbs scheduler jitter at runs=4 on a loaded box while still catching
# the failure mode this guards against (the pre-fix inversion was -37%).
#
# Usage: ./scripts/bench_guard.sh   (repo root; also run by check.sh)
set -eu

TOLERANCE=97
OUT=.bench_guard.json
trap 'rm -f "$OUT"' EXIT

go run ./cmd/wormhole bench -scale small -runs 4 -workers 1,2 -out "$OUT"

# The report's campaign rows carry "workers", "flow_cache", and
# "probes_per_sec" in a stable field order; pick the cache-on rows.
awk -v tol="$TOLERANCE" '
    /"workers":/      { gsub(/[^0-9]/, ""); w = $0 }
    /"flow_cache": true/ { cached = 1 }
    /"flow_cache": false/ { cached = 0 }
    /"probes_per_sec":/ {
        gsub(/[^0-9.]/, "")
        if (cached) rate[w] = $0 + 0
    }
    END {
        if (!(1 in rate) || !(2 in rate)) {
            print "bench_guard: missing cache-on rows for workers 1 and 2"
            exit 1
        }
        pct = 100 * rate[2] / rate[1]
        printf "bench_guard: cache-on %.0f probes/s at 1w, %.0f at 2w (%.1f%%, floor %d%%)\n", \
            rate[1], rate[2], pct, tol
        if (pct < tol) {
            print "bench_guard: FAIL — 2-worker campaign regressed below 1 worker"
            exit 1
        }
    }
' "$OUT"
