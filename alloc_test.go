// Allocation-regression tier: the fabric's forwarding fast path must stay
// allocation-free once the packet pool and route caches are warm. These
// tests pin the optimisation down with testing.AllocsPerRun so a future
// change that reintroduces per-hop boxing or cloning through the heap
// fails CI rather than silently eating the speedup.
package wormhole

import (
	"testing"

	"wormhole/internal/lab"
	"wormhole/internal/packet"
)

// warmInject drives the same probe through the fabric until free lists,
// route caches, and the event queue have reached steady state.
func warmInject(l *lab.Lab, p *packet.Packet) {
	for i := 0; i < 32; i++ {
		l.Net.Inject(l.VP.If, p)
	}
}

// TestForwardPathAllocFree checks the end-to-end echo path: seven hops of
// IP/MPLS forwarding plus the router-built echo reply, all through pooled
// packets. The injected probe is caller-owned and reused, so a run's only
// allocations would come from the fabric itself.
func TestForwardPathAllocFree(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.Default})
	probe := &packet.Packet{
		IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: l.VPAddr, Dst: l.CE2Left},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 7, Seq: 1},
	}
	warmInject(l, probe)
	allocs := testing.AllocsPerRun(200, func() { l.Net.Inject(l.VP.If, probe) })
	if allocs > 0 {
		t.Errorf("warm echo round-trip allocates %.1f objects, want 0", allocs)
	}
}

// TestTimeExceededPathAllocFree checks the expensive ICMP error path: TTL
// expiry inside the LSP, where the LSR builds a time-exceeded carrying an
// RFC 4884 extension with the RFC 4950 label-stack object.
func TestTimeExceededPathAllocFree(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.Default})
	probe := &packet.Packet{
		IP:   packet.IPv4{TTL: 4, Protocol: packet.ProtoICMP, Src: l.VPAddr, Dst: l.CE2Left},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 7, Seq: 2},
	}
	warmInject(l, probe)
	allocs := testing.AllocsPerRun(200, func() { l.Net.Inject(l.VP.If, probe) })
	if allocs > 0 {
		t.Errorf("warm time-exceeded round-trip allocates %.1f objects, want 0", allocs)
	}
}

// TestUDPUnreachablePathAllocFree covers the UDP probe leg: delivery to
// the destination router and the port-unreachable reply with its quote.
func TestUDPUnreachablePathAllocFree(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.Default})
	probe := &packet.Packet{
		IP:  packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: l.VPAddr, Dst: l.CE2Left},
		UDP: &packet.UDP{SrcPort: 33000, DstPort: 33434},
	}
	warmInject(l, probe)
	allocs := testing.AllocsPerRun(200, func() { l.Net.Inject(l.VP.If, probe) })
	if allocs > 0 {
		t.Errorf("warm port-unreachable round-trip allocates %.1f objects, want 0", allocs)
	}
}
