// tnt demonstrates the trace tool the paper's conclusion envisions (and
// that the authors later shipped as TNT): a traceroute that uses FRPLA
// and RTLA as triggers for invisible MPLS tunnels and runs DPR/BRPR
// inline to splice the hidden LSRs into the output.
package main

import (
	"fmt"
	"log"

	"wormhole/internal/lab"
	"wormhole/internal/reveal"
	"wormhole/internal/router"
)

func main() {
	scenarios := []struct {
		name string
		opts lab.Options
	}{
		{"invisible Cisco tunnel (BRPR expected)",
			lab.Options{Scenario: lab.BackwardRecursive}},
		{"invisible Juniper-edge tunnel (RTLA trigger, DPR/BRPR)",
			lab.Options{Scenario: lab.BackwardRecursive, PE2Personality: router.Juniper}},
		{"host-routes LDP (DPR expected)",
			lab.Options{Scenario: lab.ExplicitRoute}},
		{"visible tunnel (no trigger must fire)",
			lab.Options{Scenario: lab.Default}},
		{"UHP (stays dark, as the paper concedes)",
			lab.Options{Scenario: lab.TotallyInvisible}},
	}
	for _, sc := range scenarios {
		l, err := lab.Build(sc.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", sc.name)
		at := reveal.AugmentedTraceroute(l.Prober, l.CE2Left)
		for _, h := range at.Hops {
			if h.Anonymous() {
				fmt.Printf("  %2d  *\n", h.ProbeTTL)
				continue
			}
			fmt.Printf("  %2d  %-14s [%d]", h.ProbeTTL, h.Addr, h.ReplyTTL)
			if h.Trigger != reveal.TriggerNone {
				fmt.Printf("  <- trigger:%s", h.Trigger)
				if h.RTLAEstimate > 0 {
					fmt.Printf(" (return tunnel ~%d LSRs)", h.RTLAEstimate)
				}
			}
			fmt.Println()
			for _, hidden := range h.Hidden {
				fmt.Printf("        + %-14s revealed (%s)\n", hidden, h.Technique)
			}
		}
		fmt.Printf("  path length %d (extra probes: %d)\n\n", at.PathLength(), at.ExtraProbes)
	}
}
