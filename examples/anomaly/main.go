// anomaly demonstrates the delay-anomaly use case from the paper's
// introduction: a huge RTT jump between two adjacent-looking hops can be
// an artefact of an invisible MPLS tunnel rather than one slow link.
// The detector reveals the hidden hops and decomposes the delay.
package main

import (
	"fmt"
	"log"
	"time"

	"wormhole/internal/anomaly"
	"wormhole/internal/lab"
)

func main() {
	// An invisible tunnel whose interior links are slow (think: a
	// continent-crossing LSP collapsed into what looks like one hop).
	l, err := lab.Build(lab.Options{
		Scenario:    lab.BackwardRecursive,
		TunnelDelay: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	findings, at := anomaly.Detect(l.Prober, l.CE2Left, 30*time.Millisecond)
	fmt.Println("augmented trace with per-hop RTTs:")
	for _, h := range at.Hops {
		if h.Anonymous() {
			fmt.Printf("  %2d  *\n", h.ProbeTTL)
			continue
		}
		fmt.Printf("  %2d  %-14s rtt=%-8v", h.ProbeTTL, h.Addr, h.RTT)
		if len(h.Hidden) > 0 {
			fmt.Printf(" (+%d hidden LSRs)", len(h.Hidden))
		}
		fmt.Println()
	}

	fmt.Println("\ndelay findings:")
	for _, f := range findings {
		fmt.Printf("  after %-14s jump=%-8v attribution=%s", f.After, f.Jump, f.Attribution)
		if f.Attribution == anomaly.InvisibleTunnel {
			fmt.Printf(" -> %d hidden hops, ~%v per link", f.HiddenHops, f.PerHop)
		}
		fmt.Println()
	}
}
