// campaign generates a synthetic Internet (AS hierarchy, MPLS
// configurations drawn from the paper's operator survey), runs the full
// Sec. 4 measurement campaign against it — bootstrap sweep, HDN-seeded
// target selection, per-hop fingerprinting, recursive revelation — and
// prints what a real campaign would report: deployment statistics and the
// topology-bias correction.
package main

import (
	"fmt"
	"log"

	"wormhole/internal/campaign"
	"wormhole/internal/gen"
	"wormhole/internal/reveal"
	"wormhole/internal/stats"
)

func main() {
	params := gen.DefaultParams(7)
	params.NumTier1, params.NumTransit, params.NumStub = 3, 8, 16
	params.NumVPs = 8
	in, err := gen.Build(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated Internet: %d ASes (%d with MPLS)\n",
		len(in.ASes), countMPLS(in))

	cfg := campaign.DefaultConfig()
	cfg.HDNThreshold = 7
	c := campaign.Run(in, cfg)

	fmt.Printf("\nbootstrap graph: %d nodes / %d edges, %d HDNs\n",
		c.ITDK.NumNodes(), c.ITDK.NumEdges(), len(c.HDNs))
	fmt.Printf("campaign: %d targets, %d probes total\n", len(c.Targets), c.Probes)

	// Revelation outcomes and tunnel lengths.
	lengths := stats.NewHistogram()
	byTech := map[reveal.Technique]int{}
	for _, rev := range c.Revelations() {
		byTech[rev.Technique]++
		if len(rev.Hops) > 0 {
			lengths.Add(len(rev.Hops))
		}
	}
	fmt.Printf("\nrevelations: DPR=%d BRPR=%d single-LSR=%d hybrid=%d failed=%d\n",
		byTech[reveal.TechDPR], byTech[reveal.TechBRPR],
		byTech[reveal.TechEither], byTech[reveal.TechHybrid], byTech[reveal.TechNone])
	if lengths.N() > 0 {
		fmt.Println()
		fmt.Print(lengths.Render("revealed tunnel interior length", 40))
	}

	// Topology bias before and after the correction.
	before := c.ObservedTraceGraph()
	after := c.CorrectedGraph()
	fmt.Printf("\ngraph correction: nodes %d -> %d, density %.4f -> %.4f, max degree %d -> %d\n",
		before.NumNodes(), after.NumNodes(),
		before.Density(), after.Density(),
		before.DegreeHistogram().Max(), after.DegreeHistogram().Max())

	// Ground-truth check, something a real campaign cannot do: how many
	// revealed hops are genuine routers of the tunnel's AS?
	good, bad := 0, 0
	for _, rev := range c.Revelations() {
		iInfo, ok := in.Owner(rev.Ingress)
		if !ok {
			continue
		}
		for _, h := range rev.Hops {
			if hInfo, ok := in.Owner(h); ok && hInfo.AS == iInfo.AS {
				good++
			} else {
				bad++
			}
		}
	}
	fmt.Printf("\nground truth: %d/%d revealed hops are real same-AS routers\n", good, good+bad)
}

func countMPLS(in *gen.Internet) int {
	n := 0
	for _, as := range in.ASes {
		if as.Profile.MPLS {
			n++
		}
	}
	return n
}
