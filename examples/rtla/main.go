// rtla demonstrates the two length-analysis techniques on a testbed with
// a Juniper egress LER: FRPLA estimates the hidden tunnel length from
// forward/return asymmetry, RTLA pins it down exactly from the gap
// between time-exceeded (initial TTL 255) and echo-reply (initial TTL 64)
// return paths — and both are checked against the revealed ground truth.
package main

import (
	"fmt"
	"log"

	"wormhole/internal/fingerprint"
	"wormhole/internal/lab"
	"wormhole/internal/reveal"
	"wormhole/internal/router"
)

func main() {
	l, err := lab.Build(lab.Options{
		Scenario:       lab.BackwardRecursive,
		PE2Personality: router.Juniper,
	})
	if err != nil {
		log.Fatal(err)
	}

	tr := l.Prober.Traceroute(l.CE2Left)
	cand, ok := reveal.CandidateFromTrace(tr)
	if !ok {
		log.Fatal("no candidate")
	}
	egress := cand.Egress

	// Fingerprint the egress: <255,64> marks a Juniper box, which is what
	// makes RTLA applicable.
	fp := fingerprint.New(l.Prober)
	r, ok := fp.FromHop(egress)
	if !ok {
		log.Fatal("fingerprinting failed")
	}
	fmt.Printf("egress %s: signature %s (%s)\n", r.Addr, r.Signature, r.Class)

	// FRPLA: statistical estimate, sensitive to routing asymmetry.
	if s, ok := reveal.FRPLA(egress, r.Signature.TimeExceeded); ok {
		fmt.Printf("FRPLA: forward=%d return=%d -> estimated hidden hops ~%d\n",
			s.Forward, s.Return, s.RFA())
	}

	// RTLA: exact return tunnel length from the TTL gap.
	rtl := reveal.RTLA(egress.ReplyTTL, r.EchoReplyTTL)
	fmt.Printf("RTLA:  time-exceeded path %d, echo path %d -> return tunnel = %d LSRs\n",
		255-int(egress.ReplyTTL), 64-int(r.EchoReplyTTL), rtl)

	// Ground truth via revelation.
	rev := reveal.Reveal(l.Prober, cand.Ingress.Addr, egress.Addr)
	fmt.Printf("truth: %d hidden LSRs (%s)\n", len(rev.Hops), rev.Technique)
	if rtl == len(rev.Hops) {
		fmt.Println("RTLA matched the revealed tunnel length exactly")
	}
}
