// Quickstart: build the paper's testbed with an invisible MPLS tunnel,
// watch traceroute miss it, then reveal the hidden LSRs with the
// backward-recursive path revelation (BRPR).
package main

import (
	"fmt"
	"log"

	"wormhole/internal/lab"
	"wormhole/internal/reveal"
)

func main() {
	// AS2 hides its LDP tunnel: no ttl-propagate, PHP, labels for all
	// IGP prefixes (the Cisco default with propagation turned off).
	l, err := lab.Build(lab.Options{Scenario: lab.BackwardRecursive})
	if err != nil {
		log.Fatal(err)
	}

	// A plain traceroute crosses the tunnel without seeing P1, P2, P3:
	// the egress PE2 appears directly connected to the ingress PE1.
	fmt.Println("traceroute to CE2 (tunnel invisible):")
	tr := l.Prober.Traceroute(l.CE2Left)
	for _, h := range tr.Hops {
		fmt.Printf("  %2d  %-14s [%d]\n", h.ProbeTTL, h.Addr, h.ReplyTTL)
	}

	// The last three responding hops X, Y, D flag a candidate pair.
	cand, ok := reveal.CandidateFromTrace(tr)
	if !ok {
		log.Fatal("no candidate pair found")
	}
	fmt.Printf("\ncandidate invisible tunnel: %s -> %s\n",
		cand.Ingress.Addr, cand.Egress.Addr)

	// FRPLA already hints at hidden hops: the reply's return path is
	// longer than the forward hop count.
	if s, ok := reveal.FRPLA(cand.Egress, 255); ok {
		fmt.Printf("FRPLA: forward %d hops, return %d hops, asymmetry +%d\n",
			s.Forward, s.Return, s.RFA())
	}

	// Reveal the content hop by hop.
	rev := reveal.Reveal(l.Prober, cand.Ingress.Addr, cand.Egress.Addr)
	fmt.Printf("\nrevealed via %s in %d extra traces:\n", rev.Technique, rev.Probes)
	for i, hop := range rev.Hops {
		fmt.Printf("  hidden LSR %d: %s\n", i+1, hop)
	}
}
