// gns3lab walks the paper's Fig. 2 emulation testbed through all four
// MPLS configuration scenarios and prints the Fig. 4 traces, bracketed
// return TTLs and RFC 4950 label quotes included.
package main

import (
	"fmt"
	"log"

	"wormhole/internal/lab"
	"wormhole/internal/netaddr"
	"wormhole/internal/probe"
)

func main() {
	scenarios := []struct {
		s       lab.Scenario
		caption string
	}{
		{lab.Default, "(a) Default configuration: explicit tunnel"},
		{lab.BackwardRecursive, "(b) no-ttl-propagate: invisible tunnel, BRPR applies"},
		{lab.ExplicitRoute, "(c) LDP host-routes only: DPR applies"},
		{lab.TotallyInvisible, "(d) UHP: totally invisible"},
	}
	for _, sc := range scenarios {
		l, err := lab.Build(lab.Options{Scenario: sc.s})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", sc.caption)
		targets := []netaddr.Addr{l.CE2Left}
		switch sc.s {
		case lab.BackwardRecursive:
			// The recursion targets of Fig. 4b.
			targets = append(targets, l.PE2Left, l.P3Left, l.P2Left, l.P1Left)
		case lab.ExplicitRoute, lab.TotallyInvisible:
			targets = append(targets, l.PE2Left)
		}
		for _, dst := range targets {
			fmt.Printf("$ pt %s\n", name(l, dst))
			printTrace(l, l.Prober.Traceroute(dst))
		}
		fmt.Println()
	}
}

func name(l *lab.Lab, a netaddr.Addr) string {
	names := map[netaddr.Addr]string{
		l.CE1Left: "CE1.left", l.PE1Left: "PE1.left", l.P1Left: "P1.left",
		l.P2Left: "P2.left", l.P3Left: "P3.left", l.PE2Left: "PE2.left",
		l.CE2Left: "CE2.left",
	}
	if n, ok := names[a]; ok {
		return n
	}
	return a.String()
}

func printTrace(l *lab.Lab, tr *probe.Trace) {
	for _, h := range tr.Hops {
		if h.Anonymous() {
			fmt.Printf("  %2d  *\n", h.ProbeTTL)
			continue
		}
		fmt.Printf("  %2d  %-10s [%d]\n", h.ProbeTTL, name(l, h.Addr), h.ReplyTTL)
		for _, lse := range h.MPLS {
			fmt.Printf("        MPLS Label %d TTL=%d\n", lse.Label, lse.TTL)
		}
	}
}
