// controlplane demonstrates the fully in-band control plane: an MPLS
// domain converges via real message exchange on the simulated fabric —
// OSPF LSAs flood to build routing, then LDP label mappings cascade from
// the egresses — and afterwards a traceroute crosses the resulting
// invisible tunnel, which BRPR reveals. No centralized computation
// touches the routers' tables.
package main

import (
	"fmt"
	"log"
	"time"

	"wormhole/internal/ldp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/ospf"
	"wormhole/internal/packet"
	"wormhole/internal/probe"
	"wormhole/internal/reveal"
	"wormhole/internal/router"
)

func main() {
	net := netsim.New(99)
	cfg := router.Config{MPLSEnabled: true, LDP: router.LDPAllPrefixes} // invisible LDP
	var rs []*router.Router
	for i := 0; i < 5; i++ {
		r := router.New(fmt.Sprintf("r%d", i), router.Cisco, cfg)
		r.SetLoopback(netaddr.AddrFrom4(192, 168, 90, byte(i+1)))
		net.AddNode(r)
		must(net.RegisterIface(r.Loopback()))
		rs = append(rs, r)
	}
	wire := func(ai, bi *netsim.Iface) {
		net.Connect(ai, bi, time.Millisecond)
		must(net.RegisterIface(ai))
		must(net.RegisterIface(bi))
	}
	for i := 0; i+1 < len(rs); i++ {
		p := netaddr.MustPrefixFrom(netaddr.AddrFrom4(10, 90, byte(i), 0), 30)
		wire(rs[i].AddIface("right", p.Nth(1), p), rs[i+1].AddIface("left", p.Nth(2), p))
	}
	vpP := netaddr.MustParsePrefix("10.90.100.0/30")
	vp := netsim.NewHost("vp", vpP.Nth(2), vpP)
	net.AddNode(vp)
	wire(rs[0].AddIface("to-vp", vpP.Nth(1), vpP), vp.If)
	hP := netaddr.MustParsePrefix("10.90.101.0/30")
	h := netsim.NewHost("h", hP.Nth(2), hP)
	net.AddNode(h)
	wire(rs[len(rs)-1].AddIface("to-h", hP.Nth(1), hP), h.If)

	// Count control traffic while the domain converges in-band.
	control := map[packet.Protocol]int{}
	net.Trace = func(_ time.Duration, _ *netsim.Iface, pkt *packet.Packet) {
		if pkt.IP.Protocol == packet.ProtoOSPF || pkt.IP.Protocol == packet.ProtoTCP {
			control[pkt.IP.Protocol]++
		}
	}
	area := ospf.Enable(net, rs)
	must(area.Converge())
	ldpProto := ldp.EnableInBand(net, rs)
	ldpProto.Converge()
	net.Trace = nil
	fmt.Printf("converged in-band: %d OSPF LSA deliveries, %d LDP mapping deliveries\n",
		control[packet.ProtoOSPF], control[packet.ProtoTCP])

	prober := probe.New(net, vp)
	fmt.Println("\ntraceroute across the in-band-built invisible tunnel:")
	tr := prober.Traceroute(h.Addr())
	for _, hop := range tr.Hops {
		fmt.Printf("  %2d  %-14s [%d]\n", hop.ProbeTTL, hop.Addr, hop.ReplyTTL)
	}

	cand, ok := reveal.CandidateFromTrace(tr)
	if !ok {
		log.Fatal("no candidate")
	}
	rev := reveal.Reveal(prober, cand.Ingress.Addr, cand.Egress.Addr)
	fmt.Printf("\nrevealed %d hidden LSRs via %s:\n", len(rev.Hops), rev.Technique)
	for _, hidden := range rev.Hops {
		fmt.Printf("  + %s\n", hidden)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
