// Command wormhole drives the MPLS invisible-tunnel measurement toolkit:
// the emulation testbed, synthetic-Internet campaigns, and the experiment
// runners that regenerate every table and figure of the paper.
//
// Usage:
//
//	wormhole emulate  [-scenario default|backward-recursive|explicit-route|totally-invisible] [-target addr] [-pcap file]
//	wormhole campaign [-seed N] [-scale small|medium|large] [-out dataset.jsonl] [-seeds N] [-workers N] [-no-flow-cache] [-pprof prefix]
//	wormhole experiments [-seed N] [-scale small|medium|large] [ids...]
//	wormhole fingerprint [-scenario S]
//	wormhole analyze <dataset.jsonl>
//	wormhole tnt [-scenario S] [-target addr]
//	wormhole graph [-seed N] [-scale S] [-before b.dot] [-after a.dot]
//	wormhole bench [-seed N] [-scale S] [-runs N] [-workers 1,4,8] [-out BENCH_campaign.json]
package main

import (
	"os"

	"wormhole/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stdout, os.Stderr))
}
