// Ablation benchmarks: each switches off one design element the paper's
// techniques rest on (or varies a campaign knob) and asserts the expected
// consequence while measuring the cost. They document *why* the design is
// what it is.
package wormhole

import (
	"testing"

	"wormhole/internal/campaign"
	"wormhole/internal/gen"
	"wormhole/internal/lab"
	"wormhole/internal/reveal"
	"wormhole/internal/router"
)

// BenchmarkAblationMinOnPop shows that the stateless min(IP-TTL, LSE-TTL)
// copy at the penultimate hop is exactly what makes FRPLA work: with it
// the egress shows a +3 asymmetry, without it the signal vanishes.
func BenchmarkAblationMinOnPop(b *testing.B) {
	run := func(minOnPop bool) int {
		pers := router.Cisco
		pers.MinOnPop = minOnPop
		l, err := lab.Build(lab.Options{Scenario: lab.BackwardRecursive, AS2Personality: pers})
		if err != nil {
			b.Fatal(err)
		}
		tr := l.Prober.Traceroute(l.CE2Left)
		for _, h := range tr.Hops {
			if h.Addr == l.PE2Left {
				if s, ok := reveal.FRPLA(h, 255); ok {
					return s.RFA()
				}
			}
		}
		return -99
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with := run(true)
		without := run(false)
		if with != 3 {
			b.Fatalf("with min-on-pop: RFA = %d, want 3", with)
		}
		if without != 0 {
			b.Fatalf("without min-on-pop: RFA = %d, want 0 (signal gone)", without)
		}
	}
}

// BenchmarkAblationProbeCost compares the probing cost of the two
// revelation techniques on the same 3-LSR tunnel: DPR needs one extra
// trace, BRPR one per hidden hop.
func BenchmarkAblationProbeCost(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dprLab, err := lab.Build(lab.Options{Scenario: lab.ExplicitRoute})
		if err != nil {
			b.Fatal(err)
		}
		brprLab, err := lab.Build(lab.Options{Scenario: lab.BackwardRecursive})
		if err != nil {
			b.Fatal(err)
		}
		before := dprLab.Prober.Sent
		dpr := reveal.Reveal(dprLab.Prober, dprLab.PE1Left, dprLab.PE2Left)
		dprProbes := dprLab.Prober.Sent - before

		before = brprLab.Prober.Sent
		brpr := reveal.Reveal(brprLab.Prober, brprLab.PE1Left, brprLab.PE2Left)
		brprProbes := brprLab.Prober.Sent - before

		if len(dpr.Hops) != 3 || len(brpr.Hops) != 3 {
			b.Fatalf("revelations incomplete: %d/%d hops", len(dpr.Hops), len(brpr.Hops))
		}
		if dprProbes >= brprProbes {
			b.Fatalf("DPR (%d probes) should be cheaper than BRPR (%d probes)", dprProbes, brprProbes)
		}
		if i == 0 {
			b.ReportMetric(float64(dprProbes), "dpr-probes")
			b.ReportMetric(float64(brprProbes), "brpr-probes")
		}
	}
}

// BenchmarkAblationBootstrapSpread varies how many vantage points trace
// each bootstrap target: more spread discovers more of the false mesh
// (higher edge count) at proportional probing cost.
func BenchmarkAblationBootstrapSpread(b *testing.B) {
	build := func() *gen.Internet {
		p := gen.DefaultParams(31)
		p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 2, 5, 10, 6
		p.MPLSFrac, p.NoPropagateFrac, p.UHPFrac = 1, 0.8, 0
		in, err := gen.Build(p)
		if err != nil {
			b.Fatal(err)
		}
		return in
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg1 := campaign.DefaultConfig()
		cfg1.BootstrapSpread = 1
		c1 := campaign.Run(build(), cfg1)

		cfg3 := campaign.DefaultConfig()
		cfg3.BootstrapSpread = 3
		c3 := campaign.Run(build(), cfg3)

		if c3.ITDK.NumEdges() < c1.ITDK.NumEdges() {
			b.Fatalf("spread 3 saw fewer edges (%d) than spread 1 (%d)",
				c3.ITDK.NumEdges(), c1.ITDK.NumEdges())
		}
		if c3.Probes <= c1.Probes {
			b.Fatalf("spread 3 cost (%d) not above spread 1 (%d)", c3.Probes, c1.Probes)
		}
		if i == 0 {
			b.ReportMetric(float64(c1.ITDK.NumEdges()), "edges-spread1")
			b.ReportMetric(float64(c3.ITDK.NumEdges()), "edges-spread3")
		}
	}
}

// BenchmarkAblationRetries shows the Attempts knob recovering hops lost to
// packet loss: with a 40%-lossy link in the path, a single attempt leaves
// many hops anonymous while three attempts recover most of them.
func BenchmarkAblationRetries(b *testing.B) {
	anonHops := func(attempts int) int {
		l, err := lab.Build(lab.Options{Scenario: lab.Default})
		if err != nil {
			b.Fatal(err)
		}
		// The P1-P2 link drops 40% of packets in each direction.
		l.P1.Ifaces()[1].Link.LossProb = 0.4
		l.Prober.Attempts = attempts
		anon := 0
		for i := 0; i < 20; i++ {
			tr := l.Prober.Traceroute(l.CE2Left)
			for _, h := range tr.Hops {
				if h.Anonymous() {
					anon++
				}
			}
		}
		return anon
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		one := anonHops(1)
		three := anonHops(3)
		if three >= one {
			b.Fatalf("retries did not reduce anonymous hops: %d -> %d", one, three)
		}
		if i == 0 {
			b.ReportMetric(float64(one), "anon-1try")
			b.ReportMetric(float64(three), "anon-3try")
		}
	}
}

// BenchmarkAblationUHPDefeatsRevelation quantifies the paper's stated
// limitation: flipping the same network from PHP to UHP takes revelation
// success from full to zero.
func BenchmarkAblationUHPDefeatsRevelation(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		php, err := lab.Build(lab.Options{Scenario: lab.BackwardRecursive})
		if err != nil {
			b.Fatal(err)
		}
		uhp, err := lab.Build(lab.Options{Scenario: lab.TotallyInvisible})
		if err != nil {
			b.Fatal(err)
		}
		if got := reveal.Reveal(php.Prober, php.PE1Left, php.PE2Left); len(got.Hops) != 3 {
			b.Fatalf("PHP revelation found %d hops", len(got.Hops))
		}
		if got := reveal.Reveal(uhp.Prober, uhp.PE1Left, uhp.PE2Left); len(got.Hops) != 0 {
			b.Fatalf("UHP revelation found %d hops, want 0", len(got.Hops))
		}
	}
}

// BenchmarkAblationInBandControlPlane measures what running the control
// plane as actual protocol messages (OSPF + LDP + BGP on the fabric)
// costs over the centralized computations, for the same world.
func BenchmarkAblationInBandControlPlane(b *testing.B) {
	p := gen.DefaultParams(606)
	p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 2, 5, 10, 4
	p.TEFrac = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Build(p); err != nil {
			b.Fatal(err)
		}
		pi := p
		pi.InBandControlPlane = true
		if _, err := gen.Build(pi); err != nil {
			b.Fatal(err)
		}
	}
}
