package netaddr_test

import (
	"fmt"

	"wormhole/internal/netaddr"
)

func ExampleParsePrefix() {
	p := netaddr.MustParsePrefix("10.2.4.7/30")
	fmt.Println(p) // canonicalized
	fmt.Println(p.Contains(netaddr.MustParseAddr("10.2.4.6")))
	fmt.Println(p.Nth(1))
	// Output:
	// 10.2.4.4/30
	// true
	// 10.2.4.5
}

func ExampleTrie_Lookup() {
	var fib netaddr.Trie[string]
	fib.Insert(netaddr.MustParsePrefix("10.0.0.0/8"), "aggregate")
	fib.Insert(netaddr.MustParsePrefix("10.2.0.0/16"), "customer")
	v, _ := fib.Lookup(netaddr.MustParseAddr("10.2.9.1"))
	fmt.Println(v) // longest prefix wins
	// Output:
	// customer
}
