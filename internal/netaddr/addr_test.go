package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"10.0.0.1", AddrFrom4(10, 0, 0, 1), true},
		{"192.168.2.254", AddrFrom4(192, 168, 2, 254), true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
		{"-1.0.0.0", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(u uint32) bool {
		a := Addr(u)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrOctets(t *testing.T) {
	a := MustParseAddr("1.2.3.4")
	o1, o2, o3, o4 := a.Octets()
	if o1 != 1 || o2 != 2 || o3 != 3 || o4 != 4 {
		t.Errorf("Octets = %d.%d.%d.%d", o1, o2, o3, o4)
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseAddr did not panic on bad input")
		}
	}()
	MustParseAddr("not an address")
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.1.2.3/24")
	if got := p.String(); got != "10.1.2.0/24" {
		t.Errorf("canonicalized prefix = %q, want 10.1.2.0/24", got)
	}
	if p.Bits() != 24 {
		t.Errorf("Bits = %d", p.Bits())
	}
	if !p.Contains(MustParseAddr("10.1.2.255")) {
		t.Error("prefix should contain 10.1.2.255")
	}
	if p.Contains(MustParseAddr("10.1.3.0")) {
		t.Error("prefix should not contain 10.1.3.0")
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/8", "10.0.0.0/x"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", bad)
		}
	}
}

func TestPrefixZeroLen(t *testing.T) {
	def := MustParsePrefix("0.0.0.0/0")
	if !def.Contains(MustParseAddr("203.0.113.9")) {
		t.Error("default route must contain everything")
	}
	if def.NumAddrs() != 1<<32 {
		t.Errorf("NumAddrs = %d", def.NumAddrs())
	}
}

func TestPrefixOverlaps(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"10.0.0.0/8", "10.1.0.0/16", true},
		{"10.1.0.0/16", "10.0.0.0/8", true},
		{"10.0.0.0/8", "11.0.0.0/8", false},
		{"0.0.0.0/0", "192.0.2.0/24", true},
		{"192.0.2.0/25", "192.0.2.128/25", false},
	}
	for _, c := range cases {
		if got := MustParsePrefix(c.a).Overlaps(MustParsePrefix(c.b)); got != c.want {
			t.Errorf("Overlaps(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPrefixContainsProperty(t *testing.T) {
	// Any address masked into a prefix must be contained by that prefix.
	f := func(u uint32, bits uint8) bool {
		b := int(bits % 33)
		p, err := PrefixFrom(Addr(u), b)
		if err != nil {
			return false
		}
		return p.Contains(Addr(u))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHostPrefix(t *testing.T) {
	a := MustParseAddr("198.51.100.7")
	p := HostPrefix(a)
	if !p.IsHost() || p.Addr() != a {
		t.Errorf("HostPrefix = %v", p)
	}
	if p.Contains(a.Next()) {
		t.Error("host prefix must contain exactly one address")
	}
}

func TestPrefixNth(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/30")
	if got := p.Nth(3); got != MustParseAddr("10.0.0.3") {
		t.Errorf("Nth(3) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Nth out of range did not panic")
		}
	}()
	p.Nth(4)
}

func TestPrefixBinaryRoundTrip(t *testing.T) {
	f := func(u uint32, bits uint8) bool {
		p, err := PrefixFrom(Addr(u), int(bits%33))
		if err != nil {
			return false
		}
		b, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		var back Prefix
		if err := back.UnmarshalBinary(b); err != nil {
			return false
		}
		return back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	var p Prefix
	if err := p.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Error("short input accepted")
	}
	if err := p.UnmarshalBinary([]byte{1, 2, 3, 4, 40}); err == nil {
		t.Error("bad bits accepted")
	}
}
