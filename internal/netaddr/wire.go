package netaddr

// Wire codec hooks for the address types. Addr and the trie's node layout
// have unexported fields by design (the trie references nodes by slice
// index, Prefix stores its address pre-masked); this file gives the
// snapshot codec explicit, allocation-conscious encode/decode entry
// points without opening those invariants up package-wide.

import (
	"errors"

	"wormhole/internal/wirefmt"
)

// AppendAddr writes a as 4 bytes.
func AppendAddr(w *wirefmt.Writer, a Addr) { w.U32(uint32(a)) }

// DecodeAddr reverses AppendAddr.
func DecodeAddr(r *wirefmt.Reader) Addr { return Addr(r.U32()) }

// AppendPrefix writes p as 5 bytes (address + length).
func AppendPrefix(w *wirefmt.Writer, p Prefix) {
	w.U32(uint32(p.addr))
	w.U8(p.bits)
}

// DecodePrefix reverses AppendPrefix, rejecting out-of-range lengths and
// re-masking the address so a corrupt blob cannot smuggle in a
// non-canonical prefix.
func DecodePrefix(r *wirefmt.Reader) Prefix {
	a := Addr(r.U32())
	bits := r.U8()
	if bits > 32 {
		r.Fail(ErrBadPrefix)
		return Prefix{}
	}
	return Prefix{addr: a & maskOf(int(bits)), bits: bits}
}

var errBadTrie = errors.New("netaddr: corrupt trie encoding")

// AppendTrie writes t's node slab verbatim: node count, stored-value
// count, then per node both child indices, a set flag, and (when set) the
// value via putV. Because nodes reference each other by index the slab
// round-trips without any traversal.
func AppendTrie[V any](w *wirefmt.Writer, t *Trie[V], putV func(*wirefmt.Writer, V)) {
	w.U32(uint32(len(t.nodes)))
	w.U32(uint32(t.size))
	for i := range t.nodes {
		n := &t.nodes[i]
		w.I32(n.child[0])
		w.I32(n.child[1])
		if n.set {
			w.U8(1)
			putV(w, n.val)
		} else {
			w.U8(0)
		}
	}
}

// DecodeTrieInto reverses AppendTrie, carving the node slab from arena
// when non-nil (the codec sizes one TrieArena for a whole fabric, exactly
// like CloneArena does for snapshots). Child indices are validated
// against the node count so a corrupt blob yields an error, not an
// out-of-bounds walk later.
func DecodeTrieInto[V any](r *wirefmt.Reader, arena *TrieArena[V], getV func(*wirefmt.Reader) V) Trie[V] {
	nn := int(r.U32())
	t := Trie[V]{size: int(r.U32())}
	if r.Err() != nil || nn == 0 {
		return t
	}
	// Each node costs at least 9 bytes on the wire; a count that cannot
	// fit in the remaining payload is corruption, caught before the
	// allocation below can balloon.
	if nn < 0 || nn > r.Len()/9 {
		r.Fail(errBadTrie)
		return t
	}
	var nodes []trieNode[V]
	if arena != nil {
		start := len(arena.slab)
		need := start + nn
		if cap(arena.slab) >= need {
			arena.slab = arena.slab[:need]
		} else {
			arena.slab = append(arena.slab, make([]trieNode[V], nn)...)
		}
		nodes = arena.slab[start:need:need]
	} else {
		nodes = make([]trieNode[V], nn)
	}
	for i := range nodes {
		c0, c1 := r.I32(), r.I32()
		if c0 < 0 || int(c0) >= nn || c1 < 0 || int(c1) >= nn {
			r.Fail(errBadTrie)
			return t
		}
		nodes[i].child = [2]int32{c0, c1}
		if r.U8() == 1 {
			nodes[i].val = getV(r)
			nodes[i].set = true
		}
	}
	if r.Err() != nil {
		return Trie[V]{size: t.size}
	}
	t.nodes = nodes
	return t
}
