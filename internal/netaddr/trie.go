package netaddr

// Trie is a binary (unibit) longest-prefix-match trie mapping prefixes to
// arbitrary values. It is the FIB structure used by every simulated router.
//
// The zero Trie is ready to use. Trie is not safe for concurrent mutation;
// lookups are safe concurrently with each other.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// Insert adds or replaces the value for an exact prefix.
func (t *Trie[V]) Insert(p Prefix, v V) {
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	n := t.root
	a := uint32(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		b := (a >> (31 - uint(i))) & 1
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = v, true
}

// Delete removes the value for an exact prefix, reporting whether it existed.
// Interior nodes are left in place; the trie is used for long-lived FIBs
// where deletions are rare, so compaction is not worth the complexity.
func (t *Trie[V]) Delete(p Prefix) bool {
	n := t.root
	a := uint32(p.Addr())
	for i := 0; i < p.Bits() && n != nil; i++ {
		n = n.child[(a>>(31-uint(i)))&1]
	}
	if n == nil || !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Lookup returns the value of the longest prefix covering a.
func (t *Trie[V]) Lookup(a Addr) (v V, ok bool) {
	n := t.root
	u := uint32(a)
	for i := 0; n != nil; i++ {
		if n.set {
			v, ok = n.val, true
		}
		if i == 32 {
			break
		}
		n = n.child[(u>>(31-uint(i)))&1]
	}
	return v, ok
}

// LookupPrefix returns both the matched prefix and its value.
func (t *Trie[V]) LookupPrefix(a Addr) (p Prefix, v V, ok bool) {
	n := t.root
	u := uint32(a)
	for i := 0; n != nil; i++ {
		if n.set {
			p = Prefix{addr: Addr(u) & maskOf(i), bits: uint8(i)}
			v, ok = n.val, true
		}
		if i == 32 {
			break
		}
		n = n.child[(u>>(31-uint(i)))&1]
	}
	return p, v, ok
}

// Get returns the value stored for an exact prefix (no LPM semantics).
func (t *Trie[V]) Get(p Prefix) (v V, ok bool) {
	n := t.root
	a := uint32(p.Addr())
	for i := 0; i < p.Bits() && n != nil; i++ {
		n = n.child[(a>>(31-uint(i)))&1]
	}
	if n == nil || !n.set {
		return v, false
	}
	return n.val, true
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Walk visits every stored prefix in lexicographic (address, length) order.
// Returning false from fn stops the walk.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	walk(t.root, 0, 0, fn)
}

func walk[V any](n *trieNode[V], addr uint32, depth int, fn func(Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set {
		if !fn(Prefix{addr: Addr(addr), bits: uint8(depth)}, n.val) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if !walk(n.child[0], addr, depth+1, fn) {
		return false
	}
	return walk(n.child[1], addr|1<<(31-uint(depth)), depth+1, fn)
}
