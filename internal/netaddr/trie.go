package netaddr

// Trie is a binary (unibit) longest-prefix-match trie mapping prefixes to
// arbitrary values. It is the FIB structure used by every simulated router.
//
// Nodes live in one contiguous slice and reference each other by index, not
// by pointer. That layout is what makes fabric snapshots cheap: Clone is a
// single slice copy plus a linear pass over stored values, with no
// pointer-chasing traversal and no per-node allocation. It also means
// Insert never hits the allocator except to grow the backing slice.
//
// The zero Trie is ready to use. Trie is not safe for concurrent mutation;
// lookups are safe concurrently with each other.
type Trie[V any] struct {
	// nodes[0] is the root when non-empty. Child index 0 means "no child"
	// (the root is never anyone's child, so 0 is free as a sentinel).
	nodes []trieNode[V]
	size  int
}

type trieNode[V any] struct {
	child [2]int32
	val   V
	set   bool
}

// Insert adds or replaces the value for an exact prefix.
func (t *Trie[V]) Insert(p Prefix, v V) {
	if len(t.nodes) == 0 {
		t.nodes = append(t.nodes, trieNode[V]{})
	}
	n := int32(0)
	a := uint32(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		b := (a >> (31 - uint(i))) & 1
		if t.nodes[n].child[b] == 0 {
			t.nodes = append(t.nodes, trieNode[V]{})
			t.nodes[n].child[b] = int32(len(t.nodes) - 1)
		}
		n = t.nodes[n].child[b]
	}
	nd := &t.nodes[n]
	if !nd.set {
		t.size++
	}
	nd.val, nd.set = v, true
}

// Delete removes the value for an exact prefix, reporting whether it existed.
// Interior nodes are left in place; the trie is used for long-lived FIBs
// where deletions are rare, so compaction is not worth the complexity.
func (t *Trie[V]) Delete(p Prefix) bool {
	if len(t.nodes) == 0 {
		return false
	}
	n := int32(0)
	a := uint32(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		n = t.nodes[n].child[(a>>(31-uint(i)))&1]
		if n == 0 {
			return false
		}
	}
	nd := &t.nodes[n]
	if !nd.set {
		return false
	}
	var zero V
	nd.val, nd.set = zero, false
	t.size--
	return true
}

// Lookup returns the value of the longest prefix covering a.
func (t *Trie[V]) Lookup(a Addr) (v V, ok bool) {
	if len(t.nodes) == 0 {
		return v, false
	}
	u := uint32(a)
	n := int32(0)
	for i := 0; ; i++ {
		nd := &t.nodes[n]
		if nd.set {
			v, ok = nd.val, true
		}
		if i == 32 {
			break
		}
		n = nd.child[(u>>(31-uint(i)))&1]
		if n == 0 {
			break
		}
	}
	return v, ok
}

// LookupPrefix returns both the matched prefix and its value.
func (t *Trie[V]) LookupPrefix(a Addr) (p Prefix, v V, ok bool) {
	if len(t.nodes) == 0 {
		return p, v, false
	}
	u := uint32(a)
	n := int32(0)
	for i := 0; ; i++ {
		nd := &t.nodes[n]
		if nd.set {
			p = Prefix{addr: Addr(u) & maskOf(i), bits: uint8(i)}
			v, ok = nd.val, true
		}
		if i == 32 {
			break
		}
		n = nd.child[(u>>(31-uint(i)))&1]
		if n == 0 {
			break
		}
	}
	return p, v, ok
}

// Get returns the value stored for an exact prefix (no LPM semantics).
func (t *Trie[V]) Get(p Prefix) (v V, ok bool) {
	if len(t.nodes) == 0 {
		return v, false
	}
	n := int32(0)
	a := uint32(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		n = t.nodes[n].child[(a>>(31-uint(i)))&1]
		if n == 0 {
			return v, false
		}
	}
	nd := &t.nodes[n]
	if !nd.set {
		return v, false
	}
	return nd.val, true
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Clone returns a structurally independent copy of the trie. Each stored
// value is passed through fn, which lets callers rewrite pointer values
// (e.g. remap routes onto a snapshot's interfaces) during the copy; a nil
// fn copies values as-is, which for pointer-free V makes Clone a pure
// memcpy.
//
// Because nodes reference each other by slice index, the copy is one
// allocation, one memcpy, and (with fn) a linear sweep — no traversal.
func (t *Trie[V]) Clone(fn func(V) V) Trie[V] {
	nt := Trie[V]{size: t.size}
	if len(t.nodes) == 0 {
		return nt
	}
	nt.nodes = make([]trieNode[V], len(t.nodes))
	copy(nt.nodes, t.nodes)
	if fn != nil {
		for i := range nt.nodes {
			if nt.nodes[i].set {
				nt.nodes[i].val = fn(nt.nodes[i].val)
			}
		}
	}
	return nt
}

// NodeCount returns the number of trie nodes (interior and leaf). It is
// the arena-sizing companion to Len: a CloneInto of this trie consumes
// exactly NodeCount slots of a TrieArena.
func (t *Trie[V]) NodeCount() int { return len(t.nodes) }

// TrieArena is a fabric-wide slab of trie nodes shared by many CloneInto
// calls. A snapshot sizes one arena with the summed NodeCount of every
// FIB/binding trie it will copy, then clones each trie as a carve of the
// slab — one bulk allocation for the whole fabric instead of one per
// router.
type TrieArena[V any] struct {
	slab []trieNode[V]
}

// NewTrieArena pre-sizes an arena for n nodes. Clones beyond the reserved
// capacity still work (the slab grows), but earlier carves then keep the
// old backing array, wasting memory — size it with summed NodeCount.
func NewTrieArena[V any](n int) *TrieArena[V] {
	return &TrieArena[V]{slab: make([]trieNode[V], 0, n)}
}

// CloneInto is Clone with the node copy carved from a shared arena. The
// carve is capacity-clipped, so a later Insert on the clone that needs to
// grow reallocates privately instead of clobbering its arena neighbor.
func (t *Trie[V]) CloneInto(a *TrieArena[V], fn func(V) V) Trie[V] {
	nt := Trie[V]{size: t.size}
	if len(t.nodes) == 0 {
		return nt
	}
	start := len(a.slab)
	a.slab = append(a.slab, t.nodes...)
	nt.nodes = a.slab[start:len(a.slab):len(a.slab)]
	if fn != nil {
		for i := range nt.nodes {
			if nt.nodes[i].set {
				nt.nodes[i].val = fn(nt.nodes[i].val)
			}
		}
	}
	return nt
}

// Each visits every stored value in unspecified order. It is a linear
// sweep of the node slice — much cheaper than an ordered Walk — for
// callers that only aggregate over values (e.g. snapshot arena sizing).
func (t *Trie[V]) Each(fn func(V)) {
	for i := range t.nodes {
		if t.nodes[i].set {
			fn(t.nodes[i].val)
		}
	}
}

// Walk visits every stored prefix in lexicographic (address, length) order.
// Returning false from fn stops the walk.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	if len(t.nodes) == 0 {
		return
	}
	t.walk(0, 0, 0, fn)
}

func (t *Trie[V]) walk(n int32, addr uint32, depth int, fn func(Prefix, V) bool) bool {
	nd := &t.nodes[n]
	if nd.set {
		if !fn(Prefix{addr: Addr(addr), bits: uint8(depth)}, nd.val) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if c := nd.child[0]; c != 0 {
		if !t.walk(c, addr, depth+1, fn) {
			return false
		}
	}
	if c := nd.child[1]; c != 0 {
		return t.walk(c, addr|1<<(31-uint(depth)), depth+1, fn)
	}
	return true
}
