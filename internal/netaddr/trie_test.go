package netaddr

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTrieBasic(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "big")
	tr.Insert(MustParsePrefix("10.1.0.0/16"), "mid")
	tr.Insert(MustParsePrefix("10.1.2.0/24"), "small")

	cases := []struct {
		addr string
		want string
		ok   bool
	}{
		{"10.1.2.3", "small", true},
		{"10.1.3.4", "mid", true},
		{"10.9.9.9", "big", true},
		{"11.0.0.1", "", false},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(MustParseAddr(c.addr))
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%s) = %q,%v want %q,%v", c.addr, got, ok, c.want, c.ok)
		}
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("0.0.0.0/0"), 42)
	if v, ok := tr.Lookup(MustParseAddr("203.0.113.77")); !ok || v != 42 {
		t.Errorf("default route lookup = %d,%v", v, ok)
	}
}

func TestTrieHostRouteWins(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("192.0.2.0/24"), 1)
	tr.Insert(HostPrefix(MustParseAddr("192.0.2.7")), 2)
	if v, _ := tr.Lookup(MustParseAddr("192.0.2.7")); v != 2 {
		t.Errorf("host route should win, got %d", v)
	}
	if v, _ := tr.Lookup(MustParseAddr("192.0.2.8")); v != 1 {
		t.Errorf("covering route expected, got %d", v)
	}
}

func TestTrieReplace(t *testing.T) {
	var tr Trie[int]
	p := MustParsePrefix("10.0.0.0/8")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Errorf("Len after replace = %d", tr.Len())
	}
	if v, _ := tr.Get(p); v != 2 {
		t.Errorf("Get = %d", v)
	}
}

func TestTrieDelete(t *testing.T) {
	var tr Trie[int]
	p1 := MustParsePrefix("10.0.0.0/8")
	p2 := MustParsePrefix("10.1.0.0/16")
	tr.Insert(p1, 1)
	tr.Insert(p2, 2)
	if !tr.Delete(p2) {
		t.Fatal("Delete(p2) = false")
	}
	if tr.Delete(p2) {
		t.Error("double Delete succeeded")
	}
	if v, _ := tr.Lookup(MustParseAddr("10.1.2.3")); v != 1 {
		t.Errorf("after delete, lookup = %d, want covering route 1", v)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestTrieGetExact(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	if _, ok := tr.Get(MustParsePrefix("10.0.0.0/16")); ok {
		t.Error("Get must not apply LPM semantics")
	}
}

func TestTrieLookupPrefix(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(MustParsePrefix("10.2.0.0/15"), 2)
	p, v, ok := tr.LookupPrefix(MustParseAddr("10.3.4.5"))
	if !ok || v != 2 || p.String() != "10.2.0.0/15" {
		t.Errorf("LookupPrefix = %v,%d,%v", p, v, ok)
	}
}

func TestTrieWalkOrder(t *testing.T) {
	var tr Trie[int]
	in := []string{"10.0.0.0/8", "9.0.0.0/8", "10.0.0.0/16", "10.128.0.0/9", "0.0.0.0/0"}
	for i, s := range in {
		tr.Insert(MustParsePrefix(s), i)
	}
	var got []string
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := make([]string, len(in))
	copy(want, in)
	sort.Slice(want, func(i, j int) bool {
		pi, pj := MustParsePrefix(want[i]), MustParsePrefix(want[j])
		if pi.Addr() != pj.Addr() {
			return pi.Addr() < pj.Addr()
		}
		return pi.Bits() < pj.Bits()
	})
	if len(got) != len(want) {
		t.Fatalf("walk visited %d prefixes, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("walk[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTrieWalkEarlyStop(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(MustParsePrefix("11.0.0.0/8"), 2)
	n := 0
	tr.Walk(func(Prefix, int) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

// linearFIB is a trivially-correct LPM oracle for property testing.
type linearFIB struct {
	prefixes []Prefix
	values   []int
}

func (l *linearFIB) insert(p Prefix, v int) {
	for i, q := range l.prefixes {
		if q == p {
			l.values[i] = v
			return
		}
	}
	l.prefixes = append(l.prefixes, p)
	l.values = append(l.values, v)
}

func (l *linearFIB) lookup(a Addr) (int, bool) {
	best, bestLen, ok := 0, -1, false
	for i, p := range l.prefixes {
		if p.Contains(a) && p.Bits() > bestLen {
			best, bestLen, ok = l.values[i], p.Bits(), true
		}
	}
	return best, ok
}

func TestTrieMatchesLinearOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Trie[int]
		var lin linearFIB
		for i := 0; i < 200; i++ {
			p, err := PrefixFrom(Addr(rng.Uint32()), rng.Intn(33))
			if err != nil {
				return false
			}
			tr.Insert(p, i)
			lin.insert(p, i)
		}
		for i := 0; i < 500; i++ {
			a := Addr(rng.Uint32())
			tv, tok := tr.Lookup(a)
			lv, lok := lin.lookup(a)
			if tok != lok || (tok && tv != lv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var tr Trie[int]
	for i := 0; i < 10000; i++ {
		p, _ := PrefixFrom(Addr(rng.Uint32()), 8+rng.Intn(25))
		tr.Insert(p, i)
	}
	addrs := make([]Addr, 1024)
	for i := range addrs {
		addrs[i] = Addr(rng.Uint32())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i&1023])
	}
}

func TestTrieClone(t *testing.T) {
	var tr Trie[*int]
	mk := func(v int) *int { return &v }
	tr.Insert(MustParsePrefix("0.0.0.0/0"), mk(0))
	tr.Insert(MustParsePrefix("10.0.0.0/8"), mk(1))
	tr.Insert(MustParsePrefix("10.1.0.0/16"), mk(2))
	tr.Insert(HostPrefix(MustParseAddr("10.1.2.3")), mk(3))

	cl := tr.Clone(func(p *int) *int { v := *p; return &v })
	if cl.Len() != tr.Len() {
		t.Fatalf("clone Len = %d, want %d", cl.Len(), tr.Len())
	}
	// Same lookups, different value pointers (fn was applied).
	for _, addr := range []string{"10.1.2.3", "10.1.9.9", "10.9.9.9", "192.0.2.1"} {
		a := MustParseAddr(addr)
		pw, vw, okw := tr.LookupPrefix(a)
		pg, vg, okg := cl.LookupPrefix(a)
		if okw != okg || pw != pg || *vw != *vg {
			t.Fatalf("%s: clone lookup (%v,%v,%v), want (%v,%v,%v)", addr, pg, vg, okg, pw, vw, okw)
		}
		if vw == vg {
			t.Fatalf("%s: clone shares the value pointer", addr)
		}
	}
	// Structural independence: mutating the clone leaves the original alone.
	cl.Insert(MustParsePrefix("172.16.0.0/12"), mk(9))
	cl.Delete(MustParsePrefix("10.0.0.0/8"))
	if _, ok := tr.Get(MustParsePrefix("172.16.0.0/12")); ok {
		t.Fatal("insert into clone leaked into original")
	}
	if _, ok := tr.Get(MustParsePrefix("10.0.0.0/8")); !ok {
		t.Fatal("delete from clone removed the original's entry")
	}
}
