// Package netaddr provides compact IPv4 address and prefix value types used
// throughout the simulator, together with a longest-prefix-match trie.
//
// The standard library's net.IP is a byte slice: it allocates, it is not
// comparable, and it cannot be used as a map key without conversion. The
// simulator forwards millions of probe packets, so addresses here are plain
// uint32-backed value types, comparable and hashable for free.
package netaddr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address stored in host byte order (most significant byte
// is the first octet). The zero Addr ("0.0.0.0") is the unspecified address.
type Addr uint32

// AddrFrom4 builds an Addr from four octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	var parts [4]uint64
	rest := s
	for i := 0; i < 4; i++ {
		var field string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("netaddr: invalid address %q", s)
			}
			field, rest = rest[:dot], rest[dot+1:]
		} else {
			field = rest
		}
		v, err := strconv.ParseUint(field, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("netaddr: invalid address %q", s)
		}
		parts[i] = v
	}
	return AddrFrom4(byte(parts[0]), byte(parts[1]), byte(parts[2]), byte(parts[3])), nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and literals.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Octets returns the four octets of the address.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// IsUnspecified reports whether a is 0.0.0.0.
func (a Addr) IsUnspecified() bool { return a == 0 }

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	o1, o2, o3, o4 := a.Octets()
	// Hand-rolled to avoid fmt allocations on hot paths.
	var buf [15]byte
	b := strconv.AppendUint(buf[:0], uint64(o1), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(o2), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(o3), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(o4), 10)
	return string(b)
}

// Next returns the numerically next address. It wraps at 255.255.255.255.
func (a Addr) Next() Addr { return a + 1 }

// Prefix is an IPv4 CIDR prefix: a network address plus a mask length.
// The address is always stored in canonical (masked) form.
type Prefix struct {
	addr Addr
	bits uint8
}

// ErrBadPrefix is returned for malformed prefix strings or mask lengths.
var ErrBadPrefix = errors.New("netaddr: invalid prefix")

// PrefixFrom builds a prefix from an address and mask length, masking the
// address down to its canonical network form.
func PrefixFrom(a Addr, bits int) (Prefix, error) {
	if bits < 0 || bits > 32 {
		return Prefix{}, ErrBadPrefix
	}
	return Prefix{addr: a & maskOf(bits), bits: uint8(bits)}, nil
}

// MustPrefixFrom is PrefixFrom that panics on error.
func MustPrefixFrom(a Addr, bits int) Prefix {
	p, err := PrefixFrom(a, bits)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses "a.b.c.d/len" CIDR notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: %q", ErrBadPrefix, s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %q", ErrBadPrefix, s)
	}
	return PrefixFrom(a, bits)
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// HostPrefix returns the /32 prefix covering exactly a.
func HostPrefix(a Addr) Prefix { return Prefix{addr: a, bits: 32} }

func maskOf(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - uint(bits)))
}

// Addr returns the (canonical) network address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// Contains reports whether the prefix covers a.
func (p Prefix) Contains(a Addr) bool { return a&maskOf(int(p.bits)) == p.addr }

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// IsHost reports whether the prefix is a single-address /32.
func (p Prefix) IsHost() bool { return p.bits == 32 }

// IsValid reports whether the prefix was built by a constructor (the zero
// Prefix is 0.0.0.0/0, which is also valid; invalid only arises from misuse).
func (p Prefix) IsValid() bool { return p.bits <= 32 }

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 { return uint64(1) << (32 - uint(p.bits)) }

// String renders CIDR notation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// Nth returns the i'th address inside the prefix (0 = network address).
// It panics if i is out of range; callers iterate bounded by NumAddrs.
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.NumAddrs() {
		panic("netaddr: Nth out of range for " + p.String())
	}
	return p.addr + Addr(i)
}

// MarshalBinary encodes the prefix as 5 bytes (address + length);
// encoding/gob and friends use it since the fields are unexported.
func (p Prefix) MarshalBinary() ([]byte, error) {
	return []byte{byte(p.addr >> 24), byte(p.addr >> 16), byte(p.addr >> 8), byte(p.addr), p.bits}, nil
}

// UnmarshalBinary reverses MarshalBinary.
func (p *Prefix) UnmarshalBinary(b []byte) error {
	if len(b) != 5 {
		return ErrBadPrefix
	}
	if b[4] > 32 {
		return ErrBadPrefix
	}
	p.addr = AddrFrom4(b[0], b[1], b[2], b[3]) & maskOf(int(b[4]))
	p.bits = b[4]
	return nil
}
