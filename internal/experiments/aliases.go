package experiments

import (
	"fmt"

	"wormhole/internal/campaign"
	"wormhole/internal/gen"
)

// AliasQuality regenerates the campaign's observed-graph construction
// twice — with the generator's ground-truth alias sets (the role CAIDA's
// curated ITDK plays in the paper) and with Mercator-measured aliases —
// and compares the resulting graphs. It quantifies how much of the HDN
// analysis survives realistic, incomplete alias resolution.
func AliasQuality(w *World) (*Report, error) {
	// Fresh internets with the same seed so both campaigns probe
	// identical worlds.
	p := Small.Params(808)
	if w != nil && len(w.In.ASes) > 20 {
		p = Medium.Params(808)
	}
	build := func() (*gen.Internet, error) { return gen.Build(p) }

	inTruth, err := build()
	if err != nil {
		return nil, err
	}
	truth := campaign.Run(inTruth, campaign.DefaultConfig())

	inMeasured, err := build()
	if err != nil {
		return nil, err
	}
	cfg := campaign.DefaultConfig()
	cfg.MeasuredAliases = true
	measured := campaign.Run(inMeasured, cfg)

	revealedHops := func(c *campaign.Campaign) int {
		n := 0
		for _, rev := range c.Revelations() {
			n += len(rev.Hops)
		}
		return n
	}
	rows := [][]string{
		{"graph nodes", fmt.Sprintf("%d", truth.ITDK.NumNodes()), fmt.Sprintf("%d", measured.ITDK.NumNodes())},
		{"graph edges", fmt.Sprintf("%d", truth.ITDK.NumEdges()), fmt.Sprintf("%d", measured.ITDK.NumEdges())},
		{"HDN threshold", fmt.Sprintf("%d", truth.Cfg.HDNThreshold), fmt.Sprintf("%d", measured.Cfg.HDNThreshold)},
		{"HDNs", fmt.Sprintf("%d", len(truth.HDNs)), fmt.Sprintf("%d", len(measured.HDNs))},
		{"campaign targets", fmt.Sprintf("%d", len(truth.Targets)), fmt.Sprintf("%d", len(measured.Targets))},
		{"revelations", fmt.Sprintf("%d", len(truth.Revelations())), fmt.Sprintf("%d", len(measured.Revelations()))},
		{"hidden hops revealed", fmt.Sprintf("%d", revealedHops(truth)), fmt.Sprintf("%d", revealedHops(measured))},
	}
	text := table([]string{"metric", "ground-truth aliases", "measured (Mercator)"}, rows)

	ok := measured.ITDK.NumNodes() >= truth.ITDK.NumNodes() &&
		len(measured.HDNs) > 0 && revealedHops(measured) > 0
	check := "measured aliases split unresolved routers into more nodes, yet HDN detection and revelation still work"
	if !ok {
		check = "FAILED: " + check
	}
	return &Report{ID: "aliases", Title: "ITDK construction quality: ground-truth vs measured aliases", Text: text, Check: check}, nil
}
