package experiments

import (
	"strings"
	"testing"
)

// world is shared across experiment tests (building it dominates runtime).
var testWorld *World

func getWorld(t *testing.T) *World {
	t.Helper()
	if testWorld == nil {
		w, err := NewWorld(2024, Small)
		if err != nil {
			t.Fatal(err)
		}
		testWorld = w
	}
	return testWorld
}

// TestAllExperimentsProduceReports runs every runner at small scale and
// requires each report to render and pass its own shape check.
func TestAllExperimentsProduceReports(t *testing.T) {
	w := getWorld(t)
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			rep, err := r.Run(w)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if rep.Text == "" {
				t.Fatalf("%s: empty report", r.ID)
			}
			if strings.HasPrefix(rep.Check, "FAILED") {
				t.Errorf("%s shape check failed: %s\n%s", r.ID, rep.Check, rep.Text)
			}
		})
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{ID: "x", Title: "t", Text: "body\n", Check: "ok"}
	s := rep.String()
	for _, want := range []string{"X", "t", "body", "shape check: ok"} {
		if !strings.Contains(s, want) {
			t.Errorf("report string missing %q: %s", want, s)
		}
	}
}

func TestScaleParams(t *testing.T) {
	small := Small.Params(1)
	large := Large.Params(1)
	if small.NumStub >= large.NumStub {
		t.Error("scales not ordered")
	}
}
