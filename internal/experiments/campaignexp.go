package experiments

import (
	"fmt"
	"sort"
	"strings"

	"wormhole/internal/campaign"
	"wormhole/internal/fingerprint"
	"wormhole/internal/gen"
	"wormhole/internal/netaddr"
	"wormhole/internal/probe"
	"wormhole/internal/reveal"
	"wormhole/internal/stats"
	"wormhole/internal/topo"
)

// Fig1DegreeDistribution regenerates Fig. 1: the node degree PDF of the
// traceroute-observed (ITDK stand-in) graph, heavy tail included.
func Fig1DegreeDistribution(w *World) (*Report, error) {
	h := w.C.ITDK.DegreeHistogram()
	hdns := len(w.C.HDNs)
	text := h.Render("node degree PDF (observed graph)", 50)
	check := fmt.Sprintf("max degree %d, %d HDNs at threshold %d", h.Max(), hdns, w.C.Cfg.HDNThreshold)
	if hdns == 0 {
		check = "FAILED: no high-degree nodes emerged despite invisible tunnels"
	} else {
		check += " — invisible tunnels inflate the tail as in Fig. 1"
	}
	return &Report{ID: "fig1", Title: "Node degree distribution", Text: text, Check: check}, nil
}

// explicitTunnel is one ITDK-style explicit LSP observation.
type explicitTunnel struct {
	vp       *gen.VP
	ingress  netaddr.Addr
	egress   netaddr.Addr
	interior []netaddr.Addr
}

// Table3CrossValidation regenerates Table 3: on a world with *visible*
// tunnels, extract explicit Ingress-Egress pairs, re-run the revelation
// process, and require the revealed (label-free) hops to match.
func Table3CrossValidation(w *World) (*Report, error) {
	p := Small.Params(1717)
	if w != nil && len(w.In.ASes) > 20 {
		p = Medium.Params(1717)
	}
	p.MPLSFrac = 1.0
	p.NoPropagateFrac = 0.0 // visible tunnels
	p.UHPFrac = 0.15        // a share of pairs must fail, as in the paper
	in, err := gen.Build(p)
	if err != nil {
		return nil, err
	}

	// Phase 1: observe explicit tunnels. As in the paper, only transit
	// tunnels whose Ingress and Egress LERs sit in the same AS qualify
	// (the trace must continue past the egress).
	var tunnels []explicitTunnel
	seen := make(map[[2]netaddr.Addr]bool)
	addrs := in.RouterAddrs()
	for i, dst := range addrs {
		vp := in.VPs[i%len(in.VPs)]
		tr := vp.Prober.Traceroute(dst)
		for _, t := range explicitTunnels(tr) {
			iInfo, iOK := in.Owner(t.ingress)
			eInfo, eOK := in.Owner(t.egress)
			if !iOK || !eOK || iInfo.AS != eInfo.AS {
				continue
			}
			k := [2]netaddr.Addr{t.ingress, t.egress}
			if !seen[k] {
				seen[k] = true
				t.vp = vp
				tunnels = append(tunnels, t)
			}
		}
	}
	if len(tunnels) == 0 {
		return nil, fmt.Errorf("table3: no explicit tunnels observed")
	}

	// Phase 2: re-run DPR/BRPR against each pair. Pairs whose re-run does
	// not re-discover both LERs are excluded, exactly as the paper drops
	// 9,407 of its 14,771 pairs before Table 3.
	counts := map[string]int{}
	excluded := 0
	for _, t := range tunnels {
		class, ok := crossValidate(t)
		if !ok {
			excluded++
			continue
		}
		counts[class]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("table3: every pair was excluded")
	}
	var rows [][]string
	for _, k := range []string{"BRPR or DPR fail", "DPR successful", "BRPR successful", "hybrid DPR/BRPR", "BRPR or DPR"} {
		rows = append(rows, []string{k, fmt.Sprintf("%d", counts[k]), fmt.Sprintf("%.0f%%", 100*float64(counts[k])/float64(total))})
	}
	text := table([]string{"outcome", "pairs", "share"}, rows) +
		fmt.Sprintf("\n%d pairs cross-validated (%d more excluded: LERs not re-discovered)\n", total, excluded)
	okShare := float64(total-counts["BRPR or DPR fail"]) / float64(total)
	check := fmt.Sprintf("%.0f%% of pairs revealed (paper: 92%%), DPR-family dominant", okShare*100)
	if okShare < 0.5 {
		check = "FAILED: " + check
	}
	return &Report{ID: "table3", Title: "Cross-validation on Ingress-Egress pairs", Text: text, Check: check}, nil
}

// explicitTunnels extracts maximal labeled runs from a trace.
func explicitTunnels(tr *probe.Trace) []explicitTunnel {
	var out []explicitTunnel
	var resp []probe.Hop
	for _, h := range tr.Hops {
		if !h.Anonymous() {
			resp = append(resp, h)
		}
	}
	for i := 0; i < len(resp); i++ {
		if !resp[i].Labeled() {
			continue
		}
		j := i
		for j < len(resp) && resp[j].Labeled() {
			j++
		}
		// A transit tunnel: something before the run, an egress after it,
		// and the trace continuing past the egress (the egress must not be
		// the probed destination itself).
		if i > 0 && j < len(resp)-1 {
			t := explicitTunnel{ingress: resp[i-1].Addr, egress: resp[j].Addr}
			for _, h := range resp[i:j] {
				t.interior = append(t.interior, h.Addr)
			}
			out = append(out, t)
		}
		i = j
	}
	return out
}

// crossValidate re-runs the revelation with label checking: revealed hops
// must be label-free and complete. ok is false when the first re-trace
// fails to re-discover the ingress and egress (the pair is excluded from
// the table, as in the paper).
func crossValidate(t explicitTunnel) (class string, ok bool) {
	prober := t.vp.Prober
	known := map[netaddr.Addr]bool{t.ingress: true, t.egress: true}
	target := t.egress
	var steps []int
	revealed := 0

	for iter := 0; iter < 32; iter++ {
		tr := prober.Traceroute(target)
		var resp []probe.Hop
		for _, h := range tr.Hops {
			if !h.Anonymous() {
				resp = append(resp, h)
			}
		}
		xi, ti := -1, -1
		for i, h := range resp {
			if h.Addr == t.ingress && xi < 0 {
				xi = i
			}
			if h.Addr == target {
				ti = i
			}
		}
		if iter == 0 && (xi < 0 || ti <= xi || !tr.Reached) {
			return "", false // LERs not re-discovered: excluded
		}
		if xi < 0 || ti <= xi || !tr.Reached {
			break
		}
		// Take the trailing run of label-free, previously unknown hops.
		var run []probe.Hop
		for i := ti - 1; i > xi; i-- {
			h := resp[i]
			if h.Labeled() || known[h.Addr] {
				break
			}
			run = append([]probe.Hop{h}, run...)
		}
		if len(run) == 0 {
			break
		}
		steps = append(steps, len(run))
		for _, h := range run {
			known[h.Addr] = true
		}
		revealed += len(run)
		target = run[0].Addr
	}

	switch {
	case revealed < len(t.interior):
		return "BRPR or DPR fail", true
	case revealed == 1:
		return "BRPR or DPR", true
	case len(steps) == 1:
		return "DPR successful", true
	default:
		for _, s := range steps {
			if s != 1 {
				return "hybrid DPR/BRPR", true
			}
		}
		return "BRPR successful", true
	}
}

// pairKey identifies a candidate Ingress-Egress address pair.
type pairKey struct{ i, e netaddr.Addr }

// asView aggregates per-AS campaign results.
type asView struct {
	asn        uint32
	pairs      map[pairKey]*reveal.Revelation
	hdnITDK    int
	candidates map[netaddr.Addr]bool
	lspSet     map[string]bool
	lsrIPs     map[netaddr.Addr]bool
	lerIPs     map[netaddr.Addr]bool
}

func buildASViews(c *campaign.Campaign) map[uint32]*asView {
	views := map[uint32]*asView{}
	view := func(asn uint32) *asView {
		v, ok := views[asn]
		if !ok {
			v = &asView{
				asn:        asn,
				pairs:      map[pairKey]*reveal.Revelation{},
				candidates: map[netaddr.Addr]bool{},
				lspSet:     map[string]bool{},
				lsrIPs:     map[netaddr.Addr]bool{},
				lerIPs:     map[netaddr.Addr]bool{},
			}
			views[asn] = v
		}
		return v
	}
	for _, n := range c.HDNs {
		view(n.ASN).hdnITDK++
	}
	for _, rec := range c.Records {
		if rec.Candidate == nil {
			continue
		}
		v := view(rec.CandidateAS)
		v.candidates[rec.Candidate.Ingress.Addr] = true
		v.candidates[rec.Candidate.Egress.Addr] = true
		v.lerIPs[rec.Candidate.Ingress.Addr] = true
		v.lerIPs[rec.Candidate.Egress.Addr] = true
		k := pairKey{rec.Candidate.Ingress.Addr, rec.Candidate.Egress.Addr}
		if rec.Revelation != nil {
			v.pairs[k] = rec.Revelation
		} else if _, ok := v.pairs[k]; !ok {
			v.pairs[k] = nil
		}
	}
	for _, views := range views {
		for _, rev := range views.pairs {
			if rev == nil || len(rev.Hops) == 0 {
				continue
			}
			var sb strings.Builder
			for _, h := range rev.Hops {
				sb.WriteString(h.String())
				sb.WriteByte(',')
				views.lsrIPs[h] = true
			}
			views.lspSet[sb.String()] = true
		}
	}
	return views
}

// Table4PerAS regenerates Table 4: per-AS revelation statistics and the
// density correction over Ingress-Egress pairs.
func Table4PerAS(w *World) (*Report, error) {
	views := buildASViews(w.C)
	before := w.C.ObservedTraceGraph()
	after := w.C.CorrectedGraph()

	var rows [][]string
	densityDropped := false
	for _, asn := range sortedKeys(views) {
		v := views[asn]
		if len(v.pairs) == 0 {
			continue
		}
		revealed := 0
		for _, rev := range v.pairs {
			if rev != nil && len(rev.Hops) > 0 {
				revealed++
			}
		}
		// The paper computes density "only based on Ingress-Egress pairs":
		// restrict both graphs to this AS's candidate LER nodes, so the
		// false full mesh (before) collapses once its edges are replaced
		// by paths through nodes outside the subgraph (after).
		isLER := func(g *topo.Graph) func(*topo.Node) bool {
			ids := make(map[topo.NodeID]bool)
			for addr := range v.lerIPs {
				if n, ok := g.Lookup(addr); ok {
					ids[n.ID] = true
				}
			}
			return func(n *topo.Node) bool { return ids[n.ID] }
		}
		dBefore := before.SubgraphOf(isLER(before)).Density()
		dAfter := after.SubgraphOf(isLER(after)).Density()
		if dAfter < dBefore {
			densityDropped = true
		}
		lerShare := 0.0
		if len(v.lsrIPs) > 0 {
			n := 0
			for ip := range v.lsrIPs {
				if v.lerIPs[ip] {
					n++
				}
			}
			lerShare = 100 * float64(n) / float64(len(v.lsrIPs))
		}
		rows = append(rows, []string{
			fmt.Sprintf("AS%d", asn),
			fmt.Sprintf("%d", v.hdnITDK),
			fmt.Sprintf("%d", len(v.candidates)),
			fmt.Sprintf("%d", len(v.pairs)),
			fmt.Sprintf("%.1f", 100*float64(revealed)/float64(len(v.pairs))),
			fmt.Sprintf("%d", len(v.lspSet)),
			fmt.Sprintf("%d", len(v.lsrIPs)),
			fmt.Sprintf("%.1f", lerShare),
			fmt.Sprintf("%.3f", dBefore),
			fmt.Sprintf("%.3f", dAfter),
		})
	}
	text := table([]string{"ASN", "HDNs ITDK", "HDNs cand", "I-E pairs", "%Rev", "Raw LSPs", "#IPs LSRs", "%IPs LERs", "dens before", "dens after"}, rows)
	check := "graph density decreases once tunnels are revealed"
	if !densityDropped {
		check = "FAILED: no AS showed a density decrease"
	}
	return &Report{ID: "table4", Title: "Invisible MPLS tunnel discovery per AS", Text: text, Check: check}, nil
}

// Fig5TunnelLength regenerates Fig. 5: revealed forward tunnel length by
// technique.
func Fig5TunnelLength(w *World) (*Report, error) {
	byTech := map[reveal.Technique]*stats.Histogram{
		reveal.TechDPR:    stats.NewHistogram(),
		reveal.TechBRPR:   stats.NewHistogram(),
		reveal.TechEither: stats.NewHistogram(),
	}
	all := stats.NewHistogram()
	for _, rev := range w.C.Revelations() {
		if len(rev.Hops) == 0 {
			continue
		}
		// Fig. 5's X axis counts hops to the tunnel exit: interior + 1.
		n := len(rev.Hops) + 1
		all.Add(n)
		if h, ok := byTech[rev.Technique]; ok {
			h.Add(n)
		}
	}
	var sb strings.Builder
	sb.WriteString(all.Render("forward tunnel length (all techniques)", 40))
	for _, tech := range []reveal.Technique{reveal.TechDPR, reveal.TechBRPR, reveal.TechEither} {
		if byTech[tech].N() > 0 {
			sb.WriteString("\n" + byTech[tech].Render("technique "+tech.String(), 40))
		}
	}
	check := fmt.Sprintf("%d tunnels; decreasing with short tail (max %d, share above 12: %.1f%%)",
		all.N(), all.Max(), 100*all.ShareAbove(12))
	if all.N() == 0 {
		check = "FAILED: no tunnels revealed"
	}
	return &Report{ID: "fig5", Title: "Forward tunnel length", Text: sb.String(), Check: check}, nil
}

// rfaSamples splits the campaign's FRPLA observations into the paper's
// Fig. 7 classes.
type rfaSamples struct {
	others, ingress, egressPR, egressNPR, corrected *stats.Histogram
}

func collectRFA(c *campaign.Campaign) *rfaSamples {
	s := &rfaSamples{
		others:    stats.NewHistogram(),
		ingress:   stats.NewHistogram(),
		egressPR:  stats.NewHistogram(),
		egressNPR: stats.NewHistogram(),
		corrected: stats.NewHistogram(),
	}
	for _, rec := range c.Records {
		var ingressAddr, egressAddr netaddr.Addr
		revealedHops := 0
		if rec.Candidate != nil {
			ingressAddr = rec.Candidate.Ingress.Addr
			egressAddr = rec.Candidate.Egress.Addr
			if rec.Revelation != nil {
				revealedHops = len(rec.Revelation.Hops)
			}
		}
		for _, h := range rec.Trace.Hops {
			if h.Anonymous() {
				continue
			}
			fp, ok := c.Fingerprints[h.Addr]
			if !ok {
				continue
			}
			sample, ok := reveal.FRPLA(h, fp.Signature.TimeExceeded)
			if !ok {
				continue
			}
			switch h.Addr {
			case egressAddr:
				if revealedHops > 0 {
					s.egressPR.Add(sample.RFA())
					s.corrected.Add(sample.Return - (sample.Forward + revealedHops))
				} else {
					s.egressNPR.Add(sample.RFA())
				}
			case ingressAddr:
				s.ingress.Add(sample.RFA())
			default:
				s.others.Add(sample.RFA())
			}
		}
	}
	return s
}

// Fig7RFA regenerates Fig. 7: RFA distributions for non-tunnel hops,
// ingress LERs, path-revealed egress LERs, and the corrected egress curve.
func Fig7RFA(w *World) (*Report, error) {
	s := collectRFA(w.C)
	var sb strings.Builder
	sb.WriteString(s.others.Render("Others", 40))
	sb.WriteString("\n" + s.ingress.Render("Ingress", 40))
	sb.WriteString("\n" + s.egressPR.Render("Egress PR", 40))
	sb.WriteString("\n" + s.egressNPR.Render("Egress NPR", 40))
	sb.WriteString("\n" + s.corrected.Render("Egress corrected with revealed hops", 40))
	ok := s.egressPR.N() > 0 &&
		s.egressPR.Median() > s.others.Median() &&
		abs(s.corrected.Median()) <= 1
	check := fmt.Sprintf("medians: others=%d ingress=%d egressPR=%d corrected=%d",
		s.others.Median(), s.ingress.Median(), s.egressPR.Median(), s.corrected.Median())
	if ok {
		check += " — egress shifted positive, correction re-centres at 0"
	} else {
		check = "FAILED: " + check
	}
	return &Report{ID: "fig7", Title: "Return vs Forward Asymmetry", Text: sb.String(), Check: check}, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Fig8RFAByType regenerates Fig. 8: RFA computed from time-exceeded vs
// echo-reply return TTLs for <255,64> (Juniper-signature) hops.
func Fig8RFAByType(w *World) (*Report, error) {
	te := stats.NewHistogram()
	echo := stats.NewHistogram()
	for _, rec := range w.C.Records {
		for _, h := range rec.Trace.Hops {
			if h.Anonymous() {
				continue
			}
			fp, ok := w.C.Fingerprints[h.Addr]
			if !ok || fp.Class != fingerprint.JuniperLike {
				continue
			}
			// The echo sample must have crossed the same return path as
			// the time-exceeded one: only pair replies seen by the same VP.
			if w.C.FingerprintVP[h.Addr] != rec.VP {
				continue
			}
			if s, ok := reveal.FRPLA(h, 255); ok {
				te.Add(s.RFA())
			}
			echoLen := int(64-fp.EchoReplyTTL) + 1
			echo.Add(echoLen - int(h.ProbeTTL))
		}
	}
	var sb strings.Builder
	sb.WriteString(te.Render("Time Exceeded", 40))
	sb.WriteString("\n" + echo.Render("Echo-Reply", 40))
	ok := te.N() > 0 && te.Median() >= echo.Median()
	check := fmt.Sprintf("medians: time-exceeded=%d echo-reply=%d (n=%d)", te.Median(), echo.Median(), te.N())
	if ok {
		check += " — TE shifted positive, echo centred, as in Fig. 8"
	} else if te.N() == 0 {
		check = "SKIPPED: no Juniper-signature hops in this world"
	} else {
		check = "FAILED: " + check
	}
	return &Report{ID: "fig8", Title: "RFA by ICMP type (Juniper LERs)", Text: sb.String(), Check: check}, nil
}

// Fig9RTLA regenerates Fig. 9: the RTLA return tunnel length distribution
// and the tunnel asymmetry (return minus revealed forward length).
func Fig9RTLA(w *World) (*Report, error) {
	rtl := stats.NewHistogram()
	asym := stats.NewHistogram()
	for _, rec := range w.C.Records {
		if rec.Candidate == nil || rec.EgressEchoTTL == 0 {
			continue
		}
		eg := rec.Candidate.Egress
		fp, ok := w.C.Fingerprints[eg.Addr]
		if !ok || fp.Class != fingerprint.JuniperLike {
			continue
		}
		l := reveal.RTLA(eg.ReplyTTL, rec.EgressEchoTTL)
		rtl.Add(l)
		if rec.Revelation != nil && len(rec.Revelation.Hops) > 0 {
			asym.Add(l - len(rec.Revelation.Hops))
		}
	}
	var sb strings.Builder
	sb.WriteString(rtl.Render("return tunnel length (RTLA)", 40))
	sb.WriteString("\n" + asym.Render("tunnel asymmetry (RTL - FTL)", 40))
	if rtl.N() == 0 {
		return &Report{ID: "fig9", Title: "RTLA distributions", Text: sb.String(),
			Check: "SKIPPED: no Juniper-signature egress LERs in this world"}, nil
	}
	ok := abs(asym.Median()) <= 1
	check := fmt.Sprintf("RTL median=%d, asymmetry median=%d (n=%d)", rtl.Median(), asym.Median(), rtl.N())
	if ok {
		check += " — asymmetry centred at 0, as in Fig. 9b"
	} else if asym.N() > 0 {
		check = "FAILED: " + check
	}
	return &Report{ID: "fig9", Title: "RTLA distributions", Text: sb.String(), Check: check}, nil
}

// Table5Deployment regenerates Table 5: per-AS signature shares, hidden
// hop discovery technique shares, and median hidden-hop estimates from
// FRPLA, RTLA and the revealed forward tunnel length.
func Table5Deployment(w *World) (*Report, error) {
	type asAgg struct {
		sig      map[fingerprint.Class]int
		tech     map[reveal.Technique]int
		frpla    *stats.Histogram
		rtla     *stats.Histogram
		ftl      *stats.Histogram
		profiled *gen.ASInfo
	}
	aggs := map[uint32]*asAgg{}
	agg := func(asn uint32) *asAgg {
		a, ok := aggs[asn]
		if !ok {
			a = &asAgg{
				sig:   map[fingerprint.Class]int{},
				tech:  map[reveal.Technique]int{},
				frpla: stats.NewHistogram(),
				rtla:  stats.NewHistogram(),
				ftl:   stats.NewHistogram(),
			}
			aggs[asn] = a
		}
		return a
	}
	for addr, fp := range w.C.Fingerprints {
		if info, ok := w.In.Owner(addr); ok {
			agg(info.AS.Num).sig[fp.Class]++
		}
	}
	for _, rec := range w.C.Records {
		if rec.Candidate == nil {
			continue
		}
		a := agg(rec.CandidateAS)
		a.profiled = w.In.ASByNum(rec.CandidateAS)
		eg := rec.Candidate.Egress
		if fp, ok := w.C.Fingerprints[eg.Addr]; ok {
			if s, ok := reveal.FRPLA(eg, fp.Signature.TimeExceeded); ok {
				a.frpla.Add(s.RFA())
			}
			if fp.Class == fingerprint.JuniperLike && rec.EgressEchoTTL != 0 {
				a.rtla.Add(reveal.RTLA(eg.ReplyTTL, rec.EgressEchoTTL))
			}
		}
		if rec.Revelation != nil && len(rec.Revelation.Hops) > 0 {
			a.tech[rec.Revelation.Technique]++
			a.ftl.Add(len(rec.Revelation.Hops))
		}
	}

	var rows [][]string
	shapeHits := 0
	for _, asn := range sortedKeys(aggs) {
		a := aggs[asn]
		totalSig := 0
		for _, n := range a.sig {
			totalSig += n
		}
		totalTech := 0
		for _, n := range a.tech {
			totalTech += n
		}
		if totalTech == 0 {
			continue
		}
		pct := func(n, total int) string {
			if total == 0 {
				return "-"
			}
			return fmt.Sprintf("%d", 100*n/total)
		}
		med := func(h *stats.Histogram) string {
			if h.N() == 0 {
				return "-"
			}
			return fmt.Sprintf("%d", h.Median())
		}
		vendor := "?"
		if a.profiled != nil {
			vendor = a.profiled.Profile.Vendor.String()
		}
		rows = append(rows, []string{
			fmt.Sprintf("AS%d (%s)", asn, vendor),
			pct(a.sig[fingerprint.CiscoLike], totalSig),
			pct(a.sig[fingerprint.JuniperLike], totalSig),
			pct(a.sig[fingerprint.LegacyLike], totalSig),
			pct(a.tech[reveal.TechDPR], totalTech),
			pct(a.tech[reveal.TechBRPR], totalTech),
			pct(a.tech[reveal.TechEither], totalTech),
			pct(a.tech[reveal.TechHybrid], totalTech),
			med(a.frpla),
			med(a.rtla),
			med(a.ftl),
		})
		// Shape: FRPLA median within 2 of FTL median where both exist.
		if a.frpla.N() > 0 && a.ftl.N() > 0 && abs(a.frpla.Median()-a.ftl.Median()) <= 2 {
			shapeHits++
		}
	}
	text := table([]string{"ASN", "%<255,255>", "%<255,64>", "%<64,64>", "%DPR", "%BRPR", "%either", "%hybrid", "FRPLA", "RTLA", "FTL"}, rows)
	check := fmt.Sprintf("%d/%d ASes have FRPLA median within 2 hops of the revealed FTL median", shapeHits, len(rows))
	if len(rows) == 0 {
		check = "FAILED: no AS aggregated"
	}
	return &Report{ID: "table5", Title: "MPLS deployment per AS", Text: text, Check: check}, nil
}

// Fig10DegreeCorrection regenerates Fig. 10: degree distributions of the
// campaign graph before and after splicing revealed tunnels, for all ASes
// and for the densest single AS.
func Fig10DegreeCorrection(w *World) (*Report, error) {
	before := w.C.ObservedTraceGraph()
	after := w.C.CorrectedGraph()
	var sb strings.Builder
	sb.WriteString(before.DegreeHistogram().Render("all ASes, invisible", 40))
	sb.WriteString("\n" + after.DegreeHistogram().Render("all ASes, visible (revealed)", 40))

	// Densest candidate AS: render its distributions and check that the
	// false LER mesh dissolves (edges among candidate LERs drop — the
	// degree histogram itself may shift mass around as revealed LSRs join
	// the subgraph, so the mesh density is the faithful criterion, as in
	// Table 4).
	views := buildASViews(w.C)
	bestASN, bestRevealed := uint32(0), 0
	for asn, v := range views {
		revealed := 0
		for _, rev := range v.pairs {
			if rev != nil && len(rev.Hops) > 0 {
				revealed++
			}
		}
		if revealed > bestRevealed {
			bestASN, bestRevealed = asn, revealed
		}
	}
	checkOK := false
	if bestASN != 0 {
		v := views[bestASN]
		inAS := func(n *topo.Node) bool { return n.ASN == bestASN }
		hb := before.SubgraphOf(inAS).DegreeHistogram()
		ha := after.SubgraphOf(inAS).DegreeHistogram()
		sb.WriteString(fmt.Sprintf("\nAS%d (densest mesh):\n", bestASN))
		sb.WriteString(hb.Render("  invisible", 40))
		sb.WriteString("\n" + ha.Render("  visible", 40))
		// Count direct router-level edges between the revealed pairs in
		// each graph: revelation replaces exactly these false links with
		// paths through the hidden LSRs. Pairs whose revelation failed
		// (UHP, TE detours) legitimately keep their edge — the paper's
		// stated limitation — so the check covers the revealed ones.
		directEdges := func(g *topo.Graph) int {
			n := 0
			for pk, rev := range v.pairs {
				if rev == nil || len(rev.Hops) == 0 {
					continue
				}
				a, okA := g.Lookup(pk.i)
				bNode, okB := g.Lookup(pk.e)
				if !okA || !okB {
					continue
				}
				for _, nb := range g.Neighbors(a) {
					if nb.ID == bNode.ID {
						n++
					}
				}
			}
			return n
		}
		edgesBefore := directEdges(before)
		edgesAfter := directEdges(after)
		sb.WriteString(fmt.Sprintf("  false LER-LER links among revealed pairs: %d -> %d\n", edgesBefore, edgesAfter))
		checkOK = edgesBefore > 0 && edgesAfter < edgesBefore
	}
	check := "direct links between revealed LER pairs dissolve into paths through the hidden LSRs"
	if !checkOK {
		check = "FAILED: " + check
	}
	return &Report{ID: "fig10", Title: "Degree distribution correction", Text: sb.String(), Check: check}, nil
}

// Fig11PathLength regenerates Fig. 11: trace length PDFs with and without
// the revealed hops.
func Fig11PathLength(w *World) (*Report, error) {
	var traces []*probe.Trace
	extraByTrace := map[*probe.Trace]int{}
	for _, rec := range w.C.Records {
		traces = append(traces, rec.Trace)
		if rec.Revelation != nil {
			extraByTrace[rec.Trace] = len(rec.Revelation.Hops)
		}
	}
	invisible := topo.PathLengthHistogram(traces, nil)
	visible := topo.PathLengthHistogram(traces, func(tr *probe.Trace) int { return extraByTrace[tr] })
	var sb strings.Builder
	sb.WriteString(invisible.Render("invisible", 40))
	sb.WriteString("\n" + visible.Render("visible (revealed)", 40))
	ok := visible.Mean() > invisible.Mean()
	check := fmt.Sprintf("means: invisible=%.2f visible=%.2f", invisible.Mean(), visible.Mean())
	if ok {
		check += " — revelation lengthens routes, as in Fig. 11"
	} else {
		check = "FAILED: " + check
	}
	return &Report{ID: "fig11", Title: "Path length distribution", Text: sb.String(), Check: check}, nil
}

// sortTechniques gives deterministic iteration for reports.
func sortTechniques(m map[reveal.Technique]int) []reveal.Technique {
	ks := make([]reveal.Technique, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
