package experiments

import (
	"fmt"

	"wormhole/internal/gen"
)

// SurveyShares regenerates the Sec. 1-2 operator-survey numbers from the
// generated Internet's configuration assignment — the calibration the
// whole synthetic substrate rests on. It is not a numbered table in the
// paper, but the survey values (87% MPLS, 48% no-ttl-propagate, 10% UHP,
// 58/28% Cisco/Juniper) appear throughout Secs. 1-3 and gate every
// technique's applicability, so the reproduction checks them explicitly.
func SurveyShares(w *World) (*Report, error) {
	var transit, mpls, hidden, uhp int
	vendors := map[gen.Vendor]int{}
	for _, as := range w.In.ASes {
		if as.Profile.Tier == gen.Stub {
			continue
		}
		transit++
		vendors[as.Profile.Vendor]++
		if as.Profile.MPLS {
			mpls++
			if !as.Profile.Propagate {
				hidden++
			}
			if as.Profile.UHP {
				uhp++
			}
		}
	}
	if transit == 0 {
		return nil, fmt.Errorf("survey: no transit ASes")
	}
	pct := func(n, of int) float64 {
		if of == 0 {
			return 0
		}
		return 100 * float64(n) / float64(of)
	}
	rows := [][]string{
		{"MPLS deployed", "87%", fmt.Sprintf("%.0f%%", pct(mpls, transit))},
		{"no-ttl-propagate (of MPLS)", "48%", fmt.Sprintf("%.0f%%", pct(hidden, mpls))},
		{"UHP (of MPLS)", "10%", fmt.Sprintf("%.0f%%", pct(uhp, mpls))},
		{"Cisco hardware", "58%", fmt.Sprintf("%.0f%%", pct(vendors[gen.VendorCisco], transit))},
		{"Juniper hardware", "28%", fmt.Sprintf("%.0f%%", pct(vendors[gen.VendorJuniper], transit))},
		{"mixed hardware", "(25% use a mix)", fmt.Sprintf("%.0f%%", pct(vendors[gen.VendorMixed], transit))},
	}
	text := table([]string{"survey item", "paper", "generated"}, rows)

	// Stratified assignment must land within rounding of the survey.
	ok := within(pct(mpls, transit), 87, 10) &&
		within(pct(hidden, mpls), 48, 12) &&
		within(pct(vendors[gen.VendorCisco], transit), 58, 10)
	check := "generated configuration shares match the operator survey"
	if !ok {
		check = "FAILED: " + check
	}
	return &Report{ID: "survey", Title: "Operator survey calibration", Text: text, Check: check}, nil
}

func within(got, want, tol float64) bool {
	d := got - want
	return d <= tol && d >= -tol
}
