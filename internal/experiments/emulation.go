package experiments

import (
	"fmt"
	"strings"
	"time"

	"wormhole/internal/lab"
	"wormhole/internal/netaddr"
	"wormhole/internal/probe"
	"wormhole/internal/reveal"
	"wormhole/internal/router"
)

// renderTrace prints a trace in the paper's paris-traceroute style:
//
//	3  P1.left [247]
//	   MPLS Label 19 TTL=1
func renderTrace(l *lab.Lab, tr *probe.Trace) string {
	names := map[netaddr.Addr]string{
		l.CE1Left: "CE1.left", l.PE1Left: "PE1.left", l.P1Left: "P1.left",
		l.P2Left: "P2.left", l.P3Left: "P3.left", l.PE2Left: "PE2.left",
		l.CE2Left: "CE2.left", l.CE2Lo: "CE2.lo", l.PE2Lo: "PE2.lo",
	}
	var sb strings.Builder
	for _, h := range tr.Hops {
		if h.Anonymous() {
			fmt.Fprintf(&sb, "%2d  *\n", h.ProbeTTL)
			continue
		}
		name := names[h.Addr]
		if name == "" {
			name = h.Addr.String()
		}
		fmt.Fprintf(&sb, "%2d  %-10s [%d]\n", h.ProbeTTL, name, h.ReplyTTL)
		for _, lse := range h.MPLS {
			fmt.Fprintf(&sb, "      MPLS Label %d TTL=%d\n", lse.Label, lse.TTL)
		}
	}
	return sb.String()
}

// Fig4Emulation regenerates the four Fig. 4 traces (and implicitly Fig. 2,
// whose topology it runs on).
func Fig4Emulation() (*Report, error) {
	var sb strings.Builder
	type run struct {
		scenario lab.Scenario
		caption  string
		targets  func(l *lab.Lab) []netaddr.Addr
	}
	runs := []run{
		{lab.Default, "(a) Default configuration: explicit tunnel",
			func(l *lab.Lab) []netaddr.Addr { return []netaddr.Addr{l.CE2Left} }},
		{lab.BackwardRecursive, "(b) Backward recursive: invisible tunnel, BRPR recursion",
			func(l *lab.Lab) []netaddr.Addr {
				return []netaddr.Addr{l.CE2Left, l.PE2Left, l.P3Left, l.P2Left, l.P1Left}
			}},
		{lab.ExplicitRoute, "(c) Explicit route: DPR in a single probe",
			func(l *lab.Lab) []netaddr.Addr { return []netaddr.Addr{l.CE2Left, l.PE2Left} }},
		{lab.TotallyInvisible, "(d) Totally invisible (UHP)",
			func(l *lab.Lab) []netaddr.Addr { return []netaddr.Addr{l.CE2Left, l.PE2Left} }},
	}
	shapeOK := true
	for _, r := range runs {
		l, err := lab.Build(lab.Options{Scenario: r.scenario})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "%s\n", r.caption)
		for _, dst := range r.targets(l) {
			tr := l.Prober.Traceroute(dst)
			fmt.Fprintf(&sb, "$ pt %s\n%s\n", dst, renderTrace(l, tr))
			if !tr.Reached {
				shapeOK = false
			}
		}
	}
	check := "all traces completed; golden hop/TTL values asserted in internal/lab tests"
	if !shapeOK {
		check = "FAILED: some traces did not complete"
	}
	return &Report{ID: "fig4", Title: "Emulation results for each basic configuration", Text: sb.String(), Check: check}, nil
}

// Table1Signatures regenerates Table 1 by fingerprinting one router of
// each personality on a live testbed.
func Table1Signatures() (*Report, error) {
	rows := [][]string{}
	personalities := []struct {
		p     router.Personality
		brand string
	}{
		{router.Cisco, "Cisco (IOS, IOS XR)"},
		{router.Juniper, "Juniper (Junos)"},
		{router.JunosE, "Juniper (JunosE)"},
		{router.Legacy, "Brocade, Alcatel, Linux"},
	}
	ok := true
	for _, pc := range personalities {
		l, err := lab.Build(lab.Options{Scenario: lab.Default, AS2Personality: pc.p})
		if err != nil {
			return nil, err
		}
		// P1 answers probe TTL 3 with a time-exceeded; ping it for the
		// echo half.
		tr := l.Prober.Traceroute(l.CE2Left)
		var te uint8
		for _, h := range tr.Hops {
			if h.Addr == l.P1Left {
				te = h.ReplyTTL
			}
		}
		echo, got := l.Prober.Ping(l.P1Left, 64)
		if !got {
			ok = false
			continue
		}
		sig := fmt.Sprintf("<%d, %d>", inferInitial(te), inferInitial(echo.ReplyTTL))
		want := fmt.Sprintf("<%d, %d>", pc.p.TimeExceededTTL, pc.p.EchoReplyTTL)
		if sig != want {
			ok = false
		}
		rows = append(rows, []string{sig, pc.brand})
	}
	check := "all four signatures recovered exactly"
	if !ok {
		check = "FAILED: signature mismatch"
	}
	return &Report{
		ID:    "table1",
		Title: "Summary of main router signatures",
		Text:  table([]string{"Router Signature", "Router Brand and OS"}, rows),
		Check: check,
	}, nil
}

func inferInitial(observed uint8) int {
	switch {
	case observed == 0:
		return 0
	case observed <= 32:
		return 32
	case observed <= 64:
		return 64
	case observed <= 128:
		return 128
	default:
		return 255
	}
}

// Table2Visibility regenerates Table 2: for every combination of LDP
// advertising policy, TTL propagation policy, LER signature and target
// scope, classify what traceroute sees and which technique applies.
func Table2Visibility() (*Report, error) {
	type combo struct {
		ldp        router.LDPPolicy
		propagate  bool
		juniperLER bool
		internal   bool
	}
	classify := func(c combo) (string, error) {
		scenario := lab.BackwardRecursive
		if c.propagate {
			scenario = lab.Default
		}
		if c.ldp == router.LDPHostRoutesOnly && !c.propagate {
			scenario = lab.ExplicitRoute
		}
		opts := lab.Options{Scenario: scenario}
		if c.ldp == router.LDPHostRoutesOnly && c.propagate {
			// Propagating host-routes network: build Default then flip
			// policies is not directly expressible via Scenario; emulate by
			// using ExplicitRoute + propagate override below.
			opts.Scenario = lab.ExplicitRoute
		}
		l, err := lab.Build(opts)
		if err != nil {
			return "", err
		}
		if c.ldp == router.LDPHostRoutesOnly && c.propagate {
			for _, r := range []*router.Router{l.PE1, l.P1, l.P2, l.P3, l.PE2} {
				cfg := r.Config()
				cfg.TTLPropagate = true
				r.SetConfig(cfg)
			}
		}
		if c.juniperLER {
			// RTLA needs a <255,64> egress.
			swapPersonality(l.PE2, router.Juniper)
		}
		target := l.CE2Left
		if c.internal {
			target = l.PE2Left
		}
		tr := l.Prober.Traceroute(target)

		labeled := false
		sawP := false
		var egressHop probe.Hop
		for _, h := range tr.Hops {
			if h.Labeled() {
				labeled = true
			}
			if h.Addr == l.P1Left || h.Addr == l.P2Left || h.Addr == l.P3Left {
				sawP = true
			}
			if h.Addr == l.PE2Left {
				egressHop = h
			}
		}
		switch {
		case labeled:
			return "explicit LSP (no shift, no gap)", nil
		case sawP:
			return "route without labels (DPR/BRPR)", nil
		default:
			// Invisible: check FRPLA shift and RTLA gap on the egress.
			shift := false
			if !egressHop.Anonymous() {
				if s, ok := reveal.FRPLA(egressHop, 255); ok && s.RFA() > 0 {
					shift = true
				}
			}
			gap := false
			if c.juniperLER && !egressHop.Anonymous() {
				if echo, ok := l.Prober.Ping(l.PE2Left, 64); ok {
					gap = reveal.RTLA(egressHop.ReplyTTL, echo.ReplyTTL) > 0
				}
			}
			desc := "invisible LSP"
			switch {
			case shift && gap:
				desc += " (shift FRPLA, gap RTLA)"
			case shift:
				desc += " (shift FRPLA, no gap)"
			default:
				desc += " (no shift)"
			}
			return desc, nil
		}
	}

	header := []string{"LDP policy", "target", "ttl-propagate", "no-ttl-prop <255,255>", "no-ttl-prop <255,64>"}
	var rows [][]string
	allOK := true
	for _, ldpPol := range []router.LDPPolicy{router.LDPAllPrefixes, router.LDPHostRoutesOnly} {
		for _, internal := range []bool{false, true} {
			target := "external"
			if internal {
				target = "internal"
			}
			cells := []string{ldpPol.String(), target}
			for _, variant := range []struct {
				propagate, juniper bool
			}{{true, false}, {false, false}, {false, true}} {
				out, err := classify(combo{ldp: ldpPol, propagate: variant.propagate, juniperLER: variant.juniper, internal: internal})
				if err != nil {
					return nil, err
				}
				cells = append(cells, out)
			}
			// Shape: propagate column must be explicit/route, no-propagate
			// external must be invisible with shift.
			if !strings.Contains(cells[3], "shift") && !strings.Contains(cells[3], "DPR/BRPR") {
				allOK = false
			}
			rows = append(rows, cells)
		}
	}
	check := "propagating cells explicit; hidden cells show FRPLA shift, Juniper LER adds RTLA gap"
	if !allOK {
		check = "FAILED: a hidden configuration produced no signal"
	}
	return &Report{
		ID:    "table2",
		Title: "Visibility effects of basic MPLS configurations",
		Text:  table(header, rows),
		Check: check,
	}, nil
}

// swapPersonality is a small helper for scenario variants.
func swapPersonality(r *router.Router, p router.Personality) {
	// Router personality is fixed at construction; rebuilding the lab for
	// one field would be wasteful, so the router package could expose a
	// setter. Tests reach the same effect through lab.Options; here we
	// rebuild via the exported surface.
	r.SetPersonality(p)
}

// Fig6RTTCorrection regenerates Fig. 6: the RTT staircase across an
// invisible tunnel before and after hop revelation. The revealed curve
// comes from a DPR-style trace (pure IGP path), as in the paper's
// campaign: time-exceeded replies from inside a live LSP detour via the
// tunnel tail and would not expose the per-hop delay decomposition.
func Fig6RTTCorrection() (*Report, error) {
	// Fat links inside the tunnel: the invisible trace shows one large
	// RTT jump at the egress, the revealed trace decomposes it.
	const tunnelDelay = 8 * time.Millisecond
	inv, err := lab.Build(lab.Options{Scenario: lab.BackwardRecursive, TunnelDelay: tunnelDelay})
	if err != nil {
		return nil, err
	}
	vis, err := lab.Build(lab.Options{Scenario: lab.ExplicitRoute, TunnelDelay: tunnelDelay})
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	render := func(name string, l *lab.Lab, dst netaddr.Addr) (jump time.Duration, hops int) {
		tr := l.Prober.Traceroute(dst)
		fmt.Fprintf(&sb, "%s:\n", name)
		var prev time.Duration
		for i, h := range tr.Hops {
			if h.Anonymous() {
				continue
			}
			fmt.Fprintf(&sb, "  hop %2d  %-14s rtt=%v\n", i+1, h.Addr, h.RTT)
			if h.RTT-prev > jump {
				jump = h.RTT - prev
			}
			prev = h.RTT
			hops++
		}
		return jump, hops
	}
	invJump, invHops := render("invisible", inv, inv.CE2Left)
	visJump, visHops := render("visible (revealed via DPR)", vis, vis.PE2Left)
	check := fmt.Sprintf("invisible: %d hops, max step %v; visible: %d hops, max step %v", invHops, invJump, visHops, visJump)
	if !(visHops > invHops && invJump > visJump) {
		check = "FAILED: " + check
	} else {
		check += " — the delay jump decomposes across revealed hops"
	}
	return &Report{ID: "fig6", Title: "RTT correction with hop revelation", Text: sb.String(), Check: check}, nil
}

// Table6Applicability regenerates Table 6: which techniques fire for the
// two default vendor configurations.
func Table6Applicability() (*Report, error) {
	type outcome struct{ frpla, rtla, dpr, brpr bool }
	analyze := func(scenario lab.Scenario, pers router.Personality) (outcome, error) {
		var o outcome
		l, err := lab.Build(lab.Options{Scenario: scenario, AS2Personality: pers})
		if err != nil {
			return o, err
		}
		tr := l.Prober.Traceroute(l.CE2Left)
		var egress probe.Hop
		for _, h := range tr.Hops {
			if h.Addr == l.PE2Left {
				egress = h
			}
		}
		if !egress.Anonymous() {
			init := pers.TimeExceededTTL
			if s, ok := reveal.FRPLA(egress, init); ok && s.RFA() > 0 {
				o.frpla = true
			}
			if pers.EchoReplyTTL != pers.TimeExceededTTL {
				if echo, ok := l.Prober.Ping(l.PE2Left, 64); ok && reveal.RTLA(egress.ReplyTTL, echo.ReplyTTL) > 0 {
					o.rtla = true
				}
			}
		}
		rev := reveal.Reveal(l.Prober, l.PE1Left, l.PE2Left)
		switch rev.Technique {
		case reveal.TechDPR:
			o.dpr = true
		case reveal.TechBRPR:
			o.brpr = true
		case reveal.TechEither, reveal.TechHybrid:
			o.dpr, o.brpr = true, true
		}
		return o, nil
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	cisco, err := analyze(lab.BackwardRecursive, router.Cisco)
	if err != nil {
		return nil, err
	}
	jun, err := analyze(lab.ExplicitRoute, router.Juniper)
	if err != nil {
		return nil, err
	}
	rows := [][]string{
		{"Cisco", "all prefixes", "PHP", mark(cisco.frpla), mark(cisco.rtla), mark(cisco.dpr), mark(cisco.brpr)},
		{"Juniper", "loopback", "PHP", mark(jun.frpla), mark(jun.rtla), mark(jun.dpr), mark(jun.brpr)},
	}
	ok := cisco.frpla && cisco.brpr && !cisco.rtla && jun.rtla && jun.dpr
	check := "Cisco row triggers FRPLA+BRPR; Juniper row triggers RTLA+DPR (and FRPLA), matching Table 6"
	if !ok {
		check = "FAILED: applicability matrix diverges from Table 6"
	}
	return &Report{
		ID:    "table6",
		Title: "Measurement techniques applicability",
		Text:  table([]string{"Brand", "LDP", "Popping", "FRPLA", "RTLA", "DPR", "BRPR"}, rows),
		Check: check,
	}, nil
}
