// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner produces a Report whose text is the
// regenerated rows/series; the cmd/wormhole CLI and the benchmark harness
// drive them.
//
// The experiment index (IDs, workloads, modules) is documented in
// DESIGN.md; paper-vs-measured outcomes are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"wormhole/internal/campaign"
	"wormhole/internal/gen"
)

// Report is one regenerated table or figure.
type Report struct {
	// ID is the experiment identifier ("fig1", "table3", ...).
	ID string
	// Title names the paper item.
	Title string
	// Text is the rendered rows/series.
	Text string
	// Check summarizes whether the paper's qualitative shape held.
	Check string
}

func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n%s", strings.ToUpper(r.ID), r.Title, r.Text)
	if r.Check != "" {
		fmt.Fprintf(&sb, "shape check: %s\n", r.Check)
	}
	return sb.String()
}

// Scale selects the synthetic-Internet size for campaign experiments.
type Scale int

const (
	// Small runs in well under a second; used by tests.
	Small Scale = iota
	// Medium is the default for the CLI and benches.
	Medium
	// Large is ~10⁴ routers through the streamed hierarchical builder;
	// campaigns sample targets to stay tractable.
	Large
	// Huge is ~10⁵ routers — exercised only by scale benches and
	// explicitly opted-in tests (WORMHOLE_HUGE=1).
	Huge
	// Giga is ~10⁶ routers: a lazy stub universe (gen.Params.LazyStubs)
	// probed by the streaming scheduler, so only the few thousand stubs a
	// sampled campaign touches ever construct. Opted into by
	// WORMHOLE_GIGA=1.
	Giga
)

func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	case Huge:
		return "huge"
	case Giga:
		return "giga"
	default:
		return fmt.Sprintf("scale-%d", int(s))
	}
}

// Params returns generator parameters for a scale. Small and Medium use
// the flat builder; Large and Huge cross the AS threshold and build
// hierarchically (streamed generation, provider-aggregated addressing).
func (s Scale) Params(seed int64) gen.Params {
	p := gen.DefaultParams(seed)
	switch s {
	case Small:
		p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 2, 5, 10, 5
	case Large:
		p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 8, 60, 4500, 30
		p.TransitPeerProb = 8.0 / 60
	case Huge:
		p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 10, 400, 46000, 50
		p.TransitCore = [2]int{3, 5}
		p.TransitEdge = [2]int{3, 5}
		p.TransitPeerProb = 8.0 / 400
	case Giga:
		// ~1.008·10⁶ routers in the universe (400k stubs × 2.5 avg +
		// ~8k core); LazyStubs keeps all but the campaign-touched stubs
		// as 40-byte descriptors.
		p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 12, 1000, 400000, 50
		p.TransitCore = [2]int{3, 5}
		p.TransitEdge = [2]int{3, 5}
		p.StubRouters = [2]int{2, 3}
		p.TransitPeerProb = 8.0 / 1000
		p.LazyStubs = true
	}
	return p
}

// CampaignConfig returns the campaign configuration for a scale: the
// default adaptive config, with bootstrap/target sampling caps at the
// hierarchical scales (probing every one of 10⁵ routers from every VP is
// neither tractable nor what the paper's campaigns did — MPLS-focused
// target lists were always samples of the address space).
func (s Scale) CampaignConfig() campaign.Config {
	cfg := campaign.DefaultConfig()
	switch s {
	case Large:
		cfg.MaxBootstrapTargets = 4000
		cfg.MaxTargets = 2000
	case Huge:
		cfg.MaxBootstrapTargets = 2000
		cfg.MaxTargets = 1000
	case Giga:
		// The streaming scheduler is mandatory here: a stride sample
		// would enumerate (and on a lazy world, materialize) all 10⁶
		// router addresses. One target per AS keeps the sweep wide.
		cfg.Stream = true
		cfg.PrefixBudget = 1
		cfg.MaxBootstrapTargets = 4000
		cfg.MaxTargets = 1500
	}
	return cfg
}

// World bundles a generated Internet with a completed campaign so that the
// many campaign-based experiments share one expensive run.
type World struct {
	In *gen.Internet
	C  *campaign.Campaign
}

// NewWorld generates an Internet at the given scale and runs the campaign
// with the default worker pool (one worker per CPU).
func NewWorld(seed int64, scale Scale) (*World, error) {
	return NewWorldParallel(seed, scale, 0)
}

// NewWorldParallel is NewWorld with an explicit worker-pool size for the
// campaign's probing phase (0 means GOMAXPROCS). Results are identical at
// every worker count; only wall-clock changes.
func NewWorldParallel(seed int64, scale Scale, workers int) (*World, error) {
	in, err := gen.Build(scale.Params(seed))
	if err != nil {
		return nil, err
	}
	cfg := scale.CampaignConfig() // adaptive HDN threshold; sampled at Large+
	c, err := campaign.RunParallel(in, cfg, campaign.ParallelConfig{Workers: workers})
	if err != nil {
		return nil, err
	}
	return &World{In: in, C: c}, nil
}

// Runner regenerates one paper item. Campaign-based runners share the
// World; emulation-based ones ignore it.
type Runner struct {
	ID    string
	Title string
	// NeedsWorld marks campaign-based experiments.
	NeedsWorld bool
	Run        func(w *World) (*Report, error)
}

// All returns every experiment runner, in paper order.
func All() []Runner {
	return []Runner{
		{"fig1", "Node degree distribution (ITDK stand-in)", true, Fig1DegreeDistribution},
		{"fig4", "Emulation traces for the four MPLS configurations", false, noWorld(Fig4Emulation)},
		{"table1", "Router signatures", false, noWorld(Table1Signatures)},
		{"table2", "Visibility effects of basic MPLS configurations", false, noWorld(Table2Visibility)},
		{"table3", "Cross-validation of DPR/BRPR on explicit tunnels", true, Table3CrossValidation},
		{"table4", "Invisible MPLS tunnel discovery per AS", true, Table4PerAS},
		{"fig5", "Forward tunnel length distribution", true, Fig5TunnelLength},
		{"fig6", "RTT correction with hop revelation", false, noWorld(Fig6RTTCorrection)},
		{"fig7", "Return vs forward asymmetry (FRPLA)", true, Fig7RFA},
		{"fig8", "RFA for time-exceeded vs echo-reply", true, Fig8RFAByType},
		{"fig9", "Return tunnel length (RTLA)", true, Fig9RTLA},
		{"table5", "MPLS deployment per AS", true, Table5Deployment},
		{"fig10", "Degree distribution before/after revelation", true, Fig10DegreeCorrection},
		{"fig11", "Path length distribution before/after revelation", true, Fig11PathLength},
		{"table6", "Measurement technique applicability", false, noWorld(Table6Applicability)},
		{"churn", "Revelation accuracy under topology churn", true, ChurnAccuracy},
		{"survey", "Operator survey calibration", true, SurveyShares},
		{"aliases", "ITDK construction quality (measured aliases)", true, AliasQuality},
	}
}

func noWorld(f func() (*Report, error)) func(*World) (*Report, error) {
	return func(*World) (*Report, error) { return f() }
}

// table renders aligned columns.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return sb.String()
}

// sortedKeys returns map keys in sorted order (deterministic reports).
func sortedKeys[V any](m map[uint32]V) []uint32 {
	ks := make([]uint32, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// WriteMarkdown renders a set of reports as a Markdown document: one
// section per experiment, figure bodies fenced as code, shape checks as
// summary lines. The CLI's `experiments -md` writes paper-regeneration
// reports with it.
func WriteMarkdown(w io.Writer, seed int64, scale string, reports []*Report) error {
	if _, err := fmt.Fprintf(w,
		"# Regenerated evaluation (seed %d, scale %s)\n\n", seed, scale); err != nil {
		return err
	}
	failed := 0
	for _, r := range reports {
		if strings.HasPrefix(r.Check, "FAILED") {
			failed++
		}
	}
	if _, err := fmt.Fprintf(w, "%d experiments, %d shape checks failed.\n\n",
		len(reports), failed); err != nil {
		return err
	}
	for _, r := range reports {
		if _, err := fmt.Fprintf(w, "## %s — %s\n\n```\n%s```\n\n**shape:** %s\n\n",
			strings.ToUpper(r.ID), r.Title, r.Text, r.Check); err != nil {
			return err
		}
	}
	return nil
}
