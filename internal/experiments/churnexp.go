package experiments

import (
	"fmt"

	"wormhole/internal/campaign"
	"wormhole/internal/fingerprint"
	"wormhole/internal/reveal"
	"wormhole/internal/stats"
)

// churnExpRates are the churn intensities swept by the accuracy harness:
// a static baseline plus three rates around the bench default (2).
var churnExpRates = []float64{0, 1, 2, 4}

// churnExpSeed seeds every churn schedule in the sweep so the report is
// reproducible independently of the world seed.
const churnExpSeed = 42

// churnRow aggregates the revelation-accuracy metrics of one campaign.
type churnRow struct {
	events          uint64
	diffTraces      int // records whose trace diverged from the static baseline
	anonHops        int // anonymous hops across all traces (blackholed windows)
	pairs, revealed int
	tech            map[reveal.Technique]int
	frplaEgress     *stats.Histogram
	frplaCorrected  *stats.Histogram
	rtla            *stats.Histogram
}

func measureChurnRow(c, base *campaign.Campaign) churnRow {
	row := churnRow{
		events: c.ChurnEvents,
		tech:   map[reveal.Technique]int{},
	}
	for i, rec := range c.Records {
		for _, h := range rec.Trace.Hops {
			if h.Anonymous() {
				row.anonHops++
			}
		}
		if i >= len(base.Records) {
			row.diffTraces++
			continue
		}
		a, b := base.Records[i].Trace, rec.Trace
		same := len(a.Hops) == len(b.Hops)
		for j := 0; same && j < len(a.Hops); j++ {
			same = a.Hops[j].Addr == b.Hops[j].Addr
		}
		if !same {
			row.diffTraces++
		}
	}
	// Revelation success per Ingress-Egress pair, as in Table 4: a pair
	// counts as revealed when any of its records carries hops.
	pairs := map[pairKey]bool{}
	for _, rec := range c.Records {
		if rec.Candidate == nil {
			continue
		}
		k := pairKey{rec.Candidate.Ingress.Addr, rec.Candidate.Egress.Addr}
		if rec.Revelation != nil && len(rec.Revelation.Hops) > 0 {
			pairs[k] = true
		} else if !pairs[k] {
			pairs[k] = false
		}
	}
	row.pairs = len(pairs)
	for _, ok := range pairs {
		if ok {
			row.revealed++
		}
	}
	for _, rev := range c.Revelations() {
		if len(rev.Hops) > 0 {
			row.tech[rev.Technique]++
		}
	}
	s := collectRFA(c)
	row.frplaEgress = s.egressPR
	row.frplaCorrected = s.corrected
	// RTLA over Juniper-signature egress LERs, as in Fig. 9.
	row.rtla = stats.NewHistogram()
	for _, rec := range c.Records {
		if rec.Candidate == nil || rec.EgressEchoTTL == 0 {
			continue
		}
		eg := rec.Candidate.Egress
		if fp, ok := c.Fingerprints[eg.Addr]; ok && fp.Class == fingerprint.JuniperLike {
			row.rtla.Add(reveal.RTLA(eg.ReplyTTL, rec.EgressEchoTTL))
		}
	}
	return row
}

func histMedian(h *stats.Histogram) string {
	if h.N() == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", h.Median())
}

// ChurnAccuracy sweeps the churn rate over the shared world's Internet
// and tabulates revelation quality per rate: how many Ingress-Egress
// pairs are found and revealed, which techniques carry the load, and
// whether the FRPLA/RTLA estimators stay calibrated while the topology
// mutates mid-campaign. The rate-0 row reuses the shared campaign, so it
// is byte-identical to the static world every other experiment measures.
func ChurnAccuracy(w *World) (*Report, error) {
	rows := make([]churnRow, 0, len(churnExpRates))
	for _, rate := range churnExpRates {
		c := w.C
		if rate > 0 {
			cfg := campaign.DefaultConfig()
			cfg.ChurnRate = rate
			cfg.ChurnSeed = churnExpSeed
			cc, err := campaign.RunParallel(w.In, cfg, campaign.ParallelConfig{})
			if err != nil {
				return nil, err
			}
			c = cc
		}
		rows = append(rows, measureChurnRow(c, w.C))
	}

	var cells [][]string
	for i, rate := range churnExpRates {
		r := rows[i]
		pctRev := "-"
		if r.pairs > 0 {
			pctRev = fmt.Sprintf("%.0f%%", 100*float64(r.revealed)/float64(r.pairs))
		}
		cells = append(cells, []string{
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%d", r.events),
			fmt.Sprintf("%d", r.diffTraces),
			fmt.Sprintf("%d", r.anonHops),
			fmt.Sprintf("%d", r.pairs),
			fmt.Sprintf("%d", r.revealed),
			pctRev,
			fmt.Sprintf("%d", r.tech[reveal.TechDPR]),
			fmt.Sprintf("%d", r.tech[reveal.TechBRPR]),
			fmt.Sprintf("%d", r.tech[reveal.TechEither]),
			fmt.Sprintf("%d", r.tech[reveal.TechHybrid]),
			histMedian(r.frplaEgress),
			histMedian(r.frplaCorrected),
			histMedian(r.rtla),
		})
	}
	text := table([]string{
		"churn", "events", "dTraces", "anon", "pairs", "revealed", "%rev",
		"DPR", "BRPR", "either", "hybrid",
		"FRPLA", "FRPLAcorr", "RTLA",
	}, cells)

	base, peak := rows[0], rows[len(rows)-1]
	ok := base.events == 0 && peak.events > 0 && base.revealed > 0
	for _, r := range rows {
		if r.pairs > 0 && r.revealed == 0 {
			ok = false
		}
	}
	check := fmt.Sprintf("baseline %d/%d pairs revealed; rate %.0f fired %d events, revealed %d/%d",
		base.revealed, base.pairs, churnExpRates[len(churnExpRates)-1],
		peak.events, peak.revealed, peak.pairs)
	if ok {
		check += " — revelation survives topology churn"
	} else {
		check = "FAILED: " + check
	}
	return &Report{ID: "churn", Title: "Revelation accuracy under topology churn", Text: text, Check: check}, nil
}
