package bgp

import (
	"wormhole/internal/netaddr"
	"wormhole/internal/router"
)

// Hierarchical (streamed) stub attachment. The generator's large-world
// builder converges the core (Tier-1s and transits) with the full Compute
// pass, then attaches stubs one at a time: a stub's aggregate is carved
// out of its primary provider's block, so the only BGP state a stub costs
// is a customer route inside its direct providers plus a default route in
// its own routers. Nothing propagates beyond that — distant traffic rides
// the provider's covering aggregate — which is what keeps per-router
// table size flat as the stub count grows.

// StubLink pairs one stub↔provider session with the provider's BGP AS
// record from the converged core. The session's A side must be the stub
// (the generator wires customer sessions that way).
type StubLink struct {
	S        *Session
	Provider *AS
}

// AttachStub installs all BGP state for one stub:
//
//   - the stub's aggregate into each direct provider as a customer route
//     (hot-potato across that provider's sessions to the stub), NOT
//     exported further — the provider's own aggregate covers it upstream;
//   - a default route into every stub router, hot-potato across its
//     provider sessions — the hierarchical replacement for a full table;
//   - the stub-side cross-link subnets into the stub's iBGP. The provider
//     side is deliberately not redistributed: cross-links are numbered
//     out of the stub's aggregate, so the provider's fresh customer route
//     already covers both ends.
//
// stub.SPF must be the stub's converged IGP state; it may be dropped
// afterwards.
func AttachStub(stub *AS, links []StubLink) {
	sb := make(map[[2]uint32][]*Session, len(links))
	var provs []*AS
	for _, l := range links {
		k := [2]uint32{stub.Num, l.Provider.Num}
		sb[k] = append(sb[k], l.S)
		seen := false
		for _, p := range provs {
			if p == l.Provider {
				seen = true
				break
			}
		}
		if !seen {
			provs = append(provs, l.Provider)
		}
	}
	for _, prov := range provs {
		installAS(prov, stub, classCustomer, []*AS{stub}, sb)
	}
	origin := &AS{Prefixes: []netaddr.Prefix{netaddr.MustPrefixFrom(0, 0)}}
	installAS(stub, origin, classProvider, provs, sb)
	for _, l := range links {
		redistributeConnected(stub, l.S.A, l.S.AIf)
	}
}

// DetachStubRoutes is the inverse of AttachStub's provider-side install,
// used by tests to verify attachment is the only cross-AS state a stub
// creates. It removes the stub's aggregate from every router of the
// given provider.
func DetachStubRoutes(provider *AS, aggregate netaddr.Prefix) {
	for _, r := range provider.Routers {
		if rt, ok := r.GetRoute(aggregate); ok && rt.Origin == router.OriginBGP {
			r.DeleteRoute(aggregate)
		}
	}
}
