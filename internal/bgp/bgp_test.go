package bgp

import (
	"testing"
	"time"

	"wormhole/internal/igp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/router"
)

// miniNet builds single-router ASes and eBGP sessions between them.
type miniNet struct {
	net  *netsim.Network
	ases map[string]*AS
	rs   map[string]*router.Router
	topo *Topology
	sub  int
}

func newMiniNet(t *testing.T) *miniNet {
	t.Helper()
	return &miniNet{
		net:  netsim.New(5),
		ases: map[string]*AS{},
		rs:   map[string]*router.Router{},
		topo: &Topology{},
	}
}

func (m *miniNet) addAS(t *testing.T, name string, num uint32) {
	t.Helper()
	r := router.New(name, router.Cisco, router.Config{TTLPropagate: true})
	r.SetASN(num)
	lo := netaddr.AddrFrom4(192, 168, byte(num), byte(1+len(m.rs)))
	r.SetLoopback(lo)
	m.net.AddNode(r)
	if err := m.net.RegisterIface(r.Loopback()); err != nil {
		t.Fatal(err)
	}
	m.rs[name] = r
	as := &AS{
		Num:      num,
		Routers:  []*router.Router{r},
		Prefixes: []netaddr.Prefix{netaddr.HostPrefix(lo)},
	}
	m.ases[name] = as
	m.topo.ASes = append(m.topo.ASes, as)
}

func (m *miniNet) link(t *testing.T, a, b string, rel Relationship) {
	t.Helper()
	p, err := netaddr.PrefixFrom(netaddr.AddrFrom4(10, 99, byte(m.sub), 0), 30)
	if err != nil {
		t.Fatal(err)
	}
	m.sub++
	ra, rb := m.rs[a], m.rs[b]
	ai := ra.AddIface("to-"+b, p.Nth(1), p)
	bi := rb.AddIface("to-"+a, p.Nth(2), p)
	m.net.Connect(ai, bi, time.Millisecond)
	for _, ifc := range []*netsim.Iface{ai, bi} {
		if err := m.net.RegisterIface(ifc); err != nil {
			t.Fatal(err)
		}
	}
	m.topo.Sessions = append(m.topo.Sessions, &Session{A: ra, B: rb, AIf: ai, BIf: bi, Rel: rel})
}

func (m *miniNet) compute(t *testing.T) {
	t.Helper()
	for _, as := range m.topo.ASes {
		dom := &igp.Domain{Routers: as.Routers}
		spf, err := dom.Compute()
		if err != nil {
			t.Fatal(err)
		}
		as.SPF = spf
	}
	if err := Compute(m.topo); err != nil {
		t.Fatal(err)
	}
}

// route returns the next-hop gateway of r's route toward the named AS's
// loopback prefix.
func (m *miniNet) route(t *testing.T, from, toAS string) (*router.Route, bool) {
	t.Helper()
	lo := m.rs[toAS].Loopback().Addr
	_, rt, ok := m.rs[from].LookupRoute(lo)
	return rt, ok
}

func TestCustomerRouteViaProvider(t *testing.T) {
	m := newMiniNet(t)
	m.addAS(t, "a", 1)
	m.addAS(t, "b", 2)
	m.addAS(t, "c", 3)
	m.link(t, "a", "b", ACustomerOfB) // a buys from b
	m.link(t, "c", "b", ACustomerOfB) // c buys from b
	m.compute(t)

	if rt, ok := m.route(t, "a", "c"); !ok || rt.Origin != router.OriginBGP {
		t.Fatalf("a has no BGP route to c: %+v %v", rt, ok)
	}
	if rt, ok := m.route(t, "c", "a"); !ok || rt.Origin != router.OriginBGP {
		t.Fatalf("c has no BGP route to a: %+v %v", rt, ok)
	}
}

func TestValleyFreeBlocksPeerPeerPeer(t *testing.T) {
	// t1a -- t1b -- t1c all peers; customer a under t1a, customer c under
	// t1c. a can reach c only if a single peer link suffices: path
	// a->t1a->t1b->t1c->c uses two peer links and must be rejected.
	m := newMiniNet(t)
	for i, n := range []string{"t1a", "t1b", "t1c", "a", "c"} {
		m.addAS(t, n, uint32(i+1))
	}
	m.link(t, "t1a", "t1b", APeerOfB)
	m.link(t, "t1b", "t1c", APeerOfB)
	m.link(t, "a", "t1a", ACustomerOfB)
	m.link(t, "c", "t1c", ACustomerOfB)
	m.compute(t)

	if _, ok := m.route(t, "a", "c"); ok {
		t.Error("valley-free violation: a reached c across two peer links")
	}
	// Direct peering makes it reachable.
	m.link(t, "t1a", "t1c", APeerOfB)
	m.compute(t)
	if _, ok := m.route(t, "a", "c"); !ok {
		t.Error("a cannot reach c despite a valid customer-peer-customer path")
	}
}

func TestCustomerPreferredOverPeer(t *testing.T) {
	// dst is both a customer of x and a peer of x: x must use the
	// customer route even if equal length.
	m := newMiniNet(t)
	m.addAS(t, "x", 1)
	m.addAS(t, "dst", 2)
	m.link(t, "dst", "x", ACustomerOfB) // dst is customer of x
	m.link(t, "x", "dst", APeerOfB)     // and also a peer (dual relationship)
	m.compute(t)
	rt, ok := m.route(t, "x", "dst")
	if !ok {
		t.Fatal("no route")
	}
	// The customer session was declared first; with classCustomer
	// preferred the next hop must be the first (customer) link's address.
	gw := rt.NextHops[0].Gateway
	want := m.topo.Sessions[0].AIf.Addr // dst side of the customer session
	if gw != want {
		t.Errorf("next hop %s, want customer-link %s", gw, want)
	}
}

func TestProviderRouteAsLastResort(t *testing.T) {
	// a -- p (provider) -- dst(customer of p): a reaches dst via provider.
	m := newMiniNet(t)
	m.addAS(t, "a", 1)
	m.addAS(t, "p", 2)
	m.addAS(t, "dst", 3)
	m.link(t, "a", "p", ACustomerOfB)
	m.link(t, "dst", "p", ACustomerOfB)
	m.compute(t)
	if _, ok := m.route(t, "a", "dst"); !ok {
		t.Fatal("no provider route")
	}
}

func TestConnectedRouteNotShadowed(t *testing.T) {
	m := newMiniNet(t)
	m.addAS(t, "a", 1)
	m.addAS(t, "b", 2)
	m.link(t, "a", "b", ACustomerOfB)
	// b announces the shared link subnet itself.
	linkPrefix := m.rs["a"].Ifaces()[0].Prefix
	m.ases["b"].Prefixes = append(m.ases["b"].Prefixes, linkPrefix)
	m.compute(t)
	rt, ok := m.rs["a"].GetRoute(linkPrefix)
	if !ok || rt.Origin != router.OriginConnected {
		t.Errorf("connected route shadowed by BGP: %+v", rt)
	}
}

func TestDuplicateASNRejected(t *testing.T) {
	m := newMiniNet(t)
	m.addAS(t, "a", 1)
	m.addAS(t, "b", 1) // duplicate number
	m.link(t, "a", "b", APeerOfB)
	for _, as := range m.topo.ASes {
		dom := &igp.Domain{Routers: as.Routers}
		spf, err := dom.Compute()
		if err != nil {
			t.Fatal(err)
		}
		as.SPF = spf
	}
	if err := Compute(m.topo); err == nil {
		t.Error("duplicate ASN accepted")
	}
}

func TestIntraASSessionRejected(t *testing.T) {
	m := newMiniNet(t)
	m.addAS(t, "a", 1)
	r2 := router.New("a2", router.Cisco, router.Config{})
	r2.SetASN(1)
	m.ases["a"].Routers = append(m.ases["a"].Routers, r2)
	m.rs["a2"] = r2
	m.net.AddNode(r2)
	m.link(t, "a", "a2", APeerOfB)
	for _, as := range m.topo.ASes {
		dom := &igp.Domain{Routers: as.Routers}
		spf, err := dom.Compute()
		if err != nil {
			t.Fatal(err)
		}
		as.SPF = spf
	}
	if err := Compute(m.topo); err == nil {
		t.Error("intra-AS session accepted")
	}
}

func TestMissingSPFRejected(t *testing.T) {
	m := newMiniNet(t)
	m.addAS(t, "a", 1)
	if err := Compute(m.topo); err == nil {
		t.Error("AS without SPF accepted")
	}
}

func TestHotPotatoPicksNearestEgress(t *testing.T) {
	// AS x has two routers r1 (border to provider p1) and r2 (border to
	// provider p2); a destination reachable via both providers must exit
	// each router's nearest border: r1 via itself, r2 via itself.
	net := netsim.New(9)
	mkRouter := func(name string, asn uint32, lo netaddr.Addr) *router.Router {
		r := router.New(name, router.Cisco, router.Config{TTLPropagate: true})
		r.SetASN(asn)
		r.SetLoopback(lo)
		net.AddNode(r)
		if err := net.RegisterIface(r.Loopback()); err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1 := mkRouter("r1", 1, netaddr.MustParseAddr("192.168.1.1"))
	r2 := mkRouter("r2", 1, netaddr.MustParseAddr("192.168.1.2"))
	p1 := mkRouter("p1", 2, netaddr.MustParseAddr("192.168.2.1"))
	p2 := mkRouter("p2", 3, netaddr.MustParseAddr("192.168.3.1"))
	dst := mkRouter("dst", 4, netaddr.MustParseAddr("192.168.4.1"))

	sub := 0
	wire := func(a, b *router.Router) (ai, bi *netsim.Iface) {
		p, err := netaddr.PrefixFrom(netaddr.AddrFrom4(10, 77, byte(sub), 0), 30)
		if err != nil {
			t.Fatal(err)
		}
		sub++
		ai = a.AddIface("to-"+b.Name(), p.Nth(1), p)
		bi = b.AddIface("to-"+a.Name(), p.Nth(2), p)
		net.Connect(ai, bi, time.Millisecond)
		for _, ifc := range []*netsim.Iface{ai, bi} {
			if err := net.RegisterIface(ifc); err != nil {
				t.Fatal(err)
			}
		}
		return ai, bi
	}
	wire(r1, r2) // intra-AS link
	a1, b1 := wire(r1, p1)
	a2, b2 := wire(r2, p2)
	a3, b3 := wire(dst, p1)
	a4, b4 := wire(dst, p2)

	mkAS := func(num uint32, routers ...*router.Router) *AS {
		dom := &igp.Domain{Routers: routers}
		spf, err := dom.Compute()
		if err != nil {
			t.Fatal(err)
		}
		return &AS{Num: num, Routers: routers, SPF: spf,
			Prefixes: []netaddr.Prefix{netaddr.HostPrefix(routers[0].Loopback().Addr)}}
	}
	asX := mkAS(1, r1, r2)
	asP1 := mkAS(2, p1)
	asP2 := mkAS(3, p2)
	asD := mkAS(4, dst)
	topo := &Topology{
		ASes: []*AS{asX, asP1, asP2, asD},
		Sessions: []*Session{
			{A: r1, B: p1, AIf: a1, BIf: b1, Rel: ACustomerOfB},
			{A: r2, B: p2, AIf: a2, BIf: b2, Rel: ACustomerOfB},
			{A: dst, B: p1, AIf: a3, BIf: b3, Rel: ACustomerOfB},
			{A: dst, B: p2, AIf: a4, BIf: b4, Rel: ACustomerOfB},
		},
	}
	if err := Compute(topo); err != nil {
		t.Fatal(err)
	}
	// r1 exits via p1 (itself a border), r2 via p2.
	_, rt1, ok := r1.LookupRoute(dst.Loopback().Addr)
	if !ok || rt1.NextHops[0].Gateway != b1.Addr {
		t.Errorf("r1 exit = %+v, want via p1 (%s)", rt1, b1.Addr)
	}
	_, rt2, ok := r2.LookupRoute(dst.Loopback().Addr)
	if !ok || rt2.NextHops[0].Gateway != b2.Addr {
		t.Errorf("r2 exit = %+v, want via p2 (%s)", rt2, b2.Addr)
	}
}
