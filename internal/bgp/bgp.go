// Package bgp implements simplified inter-domain routing: Gao-Rexford
// valley-free route selection at the AS level (customer routes preferred
// over peer routes over provider routes, then shortest AS path) and
// hot-potato egress selection at the router level (each router exits via
// the qualifying border router closest in the IGP).
//
// This is the substrate that produces the forward/return path asymmetry
// FRPLA must cope with (Sec. 3.4): the two directions of a flow generally
// choose different border routers, so return paths differ from forward
// paths by a few hops even without MPLS in play.
//
// iBGP is modeled as a full mesh: every router of an AS carries every
// external route, with the egress border's loopback as BGP next hop — the
// next hop whose label binding turns external transit traffic into LSP
// traffic (Sec. 3.2).
package bgp

import (
	"fmt"
	"math"
	"sort"

	"wormhole/internal/igp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/router"
)

// Relationship describes a session from A's point of view.
type Relationship uint8

const (
	// ACustomerOfB: A pays B for transit.
	ACustomerOfB Relationship = iota
	// APeerOfB: settlement-free peering.
	APeerOfB
	// AProviderOfB: A sells transit to B.
	AProviderOfB
)

// AS is one autonomous system participating in BGP.
type AS struct {
	Num     uint32
	Routers []*router.Router
	// Prefixes are the aggregates the AS originates.
	Prefixes []netaddr.Prefix
	// SPF is the AS's computed IGP state (hot-potato needs distances).
	SPF *igp.Result
}

// Session is one eBGP adjacency over a cross-AS link.
type Session struct {
	A, B     *router.Router
	AIf, BIf *netsim.Iface
	Rel      Relationship
}

// Topology is the AS-level graph.
type Topology struct {
	ASes     []*AS
	Sessions []*Session
}

// routeClass orders route preference: higher wins.
type routeClass uint8

const (
	classNone routeClass = iota
	classProvider
	classPeer
	classCustomer
)

// Compute runs route selection for every announced prefix and installs BGP
// routes into all routers outside the origin AS.
func Compute(t *Topology) error {
	byNum := make(map[uint32]*AS, len(t.ASes))
	for _, as := range t.ASes {
		if prev, dup := byNum[as.Num]; dup && prev != as {
			return fmt.Errorf("bgp: duplicate AS number %d", as.Num)
		}
		byNum[as.Num] = as
		if as.SPF == nil {
			return fmt.Errorf("bgp: AS%d has no SPF result", as.Num)
		}
	}
	asOf := make(map[*router.Router]*AS)
	for _, as := range t.ASes {
		for _, r := range as.Routers {
			asOf[r] = as
		}
	}

	// Neighbor maps at the AS level.
	customers := map[*AS][]*AS{} // customers[x] = ASes that are customers of x
	peers := map[*AS][]*AS{}
	providers := map[*AS][]*AS{} // providers[x] = ASes that provide transit to x
	sessionsBetween := map[[2]uint32][]*Session{}
	addNeighbor := func(m map[*AS][]*AS, k, v *AS) {
		for _, e := range m[k] {
			if e == v {
				return
			}
		}
		m[k] = append(m[k], v)
	}
	for _, s := range t.Sessions {
		asA, asB := asOf[s.A], asOf[s.B]
		if asA == nil || asB == nil {
			return fmt.Errorf("bgp: session endpoint not in any AS (%s-%s)", s.A.Name(), s.B.Name())
		}
		if asA == asB {
			return fmt.Errorf("bgp: intra-AS session %s-%s", s.A.Name(), s.B.Name())
		}
		switch s.Rel {
		case ACustomerOfB:
			addNeighbor(customers, asB, asA)
			addNeighbor(providers, asA, asB)
		case AProviderOfB:
			addNeighbor(customers, asA, asB)
			addNeighbor(providers, asB, asA)
		case APeerOfB:
			addNeighbor(peers, asA, asB)
			addNeighbor(peers, asB, asA)
		}
		sessionsBetween[[2]uint32{asA.Num, asB.Num}] = append(sessionsBetween[[2]uint32{asA.Num, asB.Num}], s)
	}

	for _, origin := range t.ASes {
		if len(origin.Prefixes) == 0 {
			continue
		}
		cls, dist, nextASes := selectRoutes(t.ASes, origin, customers, peers, providers)
		for _, as := range t.ASes {
			if as == origin || cls[as] == classNone {
				continue
			}
			installAS(as, origin, cls[as], nextASes[as], sessionsBetween)
		}
		_ = dist
	}

	// Redistribute cross-AS link subnets into each side's iBGP: every
	// router of the border's AS learns the subnet with the border's
	// loopback as next hop. This is what makes a neighbor AS's side of a
	// peering link ("CE2.left") a *BGP* destination inside the transit AS,
	// i.e. label-switched toward the border's loopback rather than routed
	// by the IGP.
	for _, s := range t.Sessions {
		redistributeConnected(asOf[s.A], s.A, s.AIf)
		redistributeConnected(asOf[s.B], s.B, s.BIf)
	}
	return nil
}

// redistributeConnected installs border's connected cross-link subnet into
// the other routers of its AS as an iBGP route.
func redistributeConnected(as *AS, border *router.Router, ifc *netsim.Iface) {
	lo := border.Loopback()
	if lo == nil {
		return
	}
	for _, r := range as.Routers {
		if r == border {
			continue
		}
		if rt, ok := r.GetRoute(ifc.Prefix); ok && rt.Origin == router.OriginConnected {
			continue
		}
		hops := as.SPF.NextHops[r][lo.Prefix]
		if len(hops) == 0 {
			continue
		}
		nhs := make([]router.NextHop, len(hops))
		for i, h := range hops {
			nhs[i] = router.NextHop{Out: h.Out, Gateway: h.Gateway}
		}
		r.InstallRoute(ifc.Prefix, &router.Route{
			Origin:     router.OriginBGP,
			NextHops:   nhs,
			BGPNextHop: lo.Addr,
		})
	}
}

// selectRoutes runs the three-phase valley-free computation from origin.
func selectRoutes(all []*AS, origin *AS, customers, peers, providers map[*AS][]*AS) (map[*AS]routeClass, map[*AS]int, map[*AS][]*AS) {
	const inf = math.MaxInt32
	custDist := map[*AS]int{origin: 0}

	// Phase 1: customer routes climb provider links (B exports to its
	// providers routes learned from B's own customers). BFS over
	// "provider of" edges.
	frontier := []*AS{origin}
	for len(frontier) > 0 {
		var next []*AS
		for _, b := range frontier {
			for _, a := range providers[b] { // a is a provider of b: hears b's route
				if _, seen := custDist[a]; !seen {
					custDist[a] = custDist[b] + 1
					next = append(next, a)
				}
			}
		}
		frontier = next
	}

	// Phase 2: peers exchange customer routes.
	peerDist := map[*AS]int{}
	for _, a := range all {
		best := inf
		for _, b := range peers[a] {
			if d, ok := custDist[b]; ok && d+1 < best {
				best = d + 1
			}
		}
		if best < inf {
			peerDist[a] = best
		}
	}

	// Phase 3: provider routes descend customer links; a provider exports
	// everything to customers, so the source value at each AS is its best
	// of any class. Dijkstra-like BFS over "customer of" edges.
	downDist := map[*AS]int{}
	type qe struct {
		as *AS
		d  int
	}
	var queue []qe
	for _, b := range all {
		base := inf
		if d, ok := custDist[b]; ok {
			base = d
		}
		if d, ok := peerDist[b]; ok && d < base {
			base = d
		}
		if base < inf {
			queue = append(queue, qe{b, base})
		}
	}
	// Uniform edge weight 1: process by increasing seed distance.
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].d < queue[j].d })
	seed := map[*AS]int{}
	for _, e := range queue {
		if old, ok := seed[e.as]; !ok || e.d < old {
			seed[e.as] = e.d
		}
	}
	// BFS rounds (distances bounded by AS count).
	for changed := true; changed; {
		changed = false
		for _, b := range all {
			sb, ok := seed[b]
			if dd, okd := downDist[b]; okd && dd < sb || !ok && okd {
				sb, ok = downDist[b], true
			}
			if !ok {
				continue
			}
			for _, a := range customers[b] { // a is customer of b: hears everything
				if old, seen := downDist[a]; !seen || sb+1 < old {
					downDist[a] = sb + 1
					changed = true
				}
			}
		}
	}

	cls := map[*AS]routeClass{origin: classCustomer}
	dist := map[*AS]int{origin: 0}
	nextASes := map[*AS][]*AS{}
	for _, a := range all {
		if a == origin {
			continue
		}
		var c routeClass
		var d int
		switch {
		case hasDist(custDist, a):
			c, d = classCustomer, custDist[a]
		case hasDist(peerDist, a):
			c, d = classPeer, peerDist[a]
		case hasDist(downDist, a):
			c, d = classProvider, downDist[a]
		default:
			continue
		}
		cls[a], dist[a] = c, d
		// Next-hop ASes: neighbors in the class's direction achieving d-1
		// with an exportable route.
		switch c {
		case classCustomer:
			for _, b := range customers[a] {
				if db, ok := custDist[b]; ok && db == d-1 {
					nextASes[a] = append(nextASes[a], b)
				}
			}
		case classPeer:
			for _, b := range peers[a] {
				if db, ok := custDist[b]; ok && db == d-1 {
					nextASes[a] = append(nextASes[a], b)
				}
			}
		case classProvider:
			for _, b := range providers[a] {
				best := math.MaxInt32
				if db, ok := custDist[b]; ok && db < best {
					best = db
				}
				if db, ok := peerDist[b]; ok && db < best {
					best = db
				}
				if db, ok := downDist[b]; ok && db < best {
					best = db
				}
				if best == d-1 {
					nextASes[a] = append(nextASes[a], b)
				}
			}
		}
	}
	return cls, dist, nextASes
}

func hasDist(m map[*AS]int, a *AS) bool { _, ok := m[a]; return ok }

// installAS installs routes for origin's prefixes into every router of as,
// choosing per-router hot-potato egresses among the sessions toward the
// selected next-hop ASes whose relationship matches the route class (a
// customer-learned route must use a session where the neighbor is the
// customer, and so on).
func installAS(as, origin *AS, class routeClass, nextASes []*AS, sessionsBetween map[[2]uint32][]*Session) {
	type egress struct {
		border *router.Router
		out    *netsim.Iface
		gw     netaddr.Addr
	}
	// relMatches reports whether a session whose A side is in `as` fits
	// the class (relAToB is the relationship of the A side to the B side).
	relMatches := func(relAToB Relationship) bool {
		switch class {
		case classCustomer:
			return relAToB == AProviderOfB
		case classPeer:
			return relAToB == APeerOfB
		default:
			return relAToB == ACustomerOfB
		}
	}
	invert := func(r Relationship) Relationship {
		switch r {
		case ACustomerOfB:
			return AProviderOfB
		case AProviderOfB:
			return ACustomerOfB
		default:
			return APeerOfB
		}
	}
	var egresses []egress
	for _, nb := range nextASes {
		for _, s := range sessionsBetween[[2]uint32{as.Num, nb.Num}] {
			if relMatches(s.Rel) {
				egresses = append(egresses, egress{border: s.A, out: s.AIf, gw: s.BIf.Addr})
			}
		}
		for _, s := range sessionsBetween[[2]uint32{nb.Num, as.Num}] {
			if relMatches(invert(s.Rel)) {
				egresses = append(egresses, egress{border: s.B, out: s.BIf, gw: s.AIf.Addr})
			}
		}
	}
	if len(egresses) == 0 {
		return
	}
	// Deterministic order for stable tie-breaks (loopback then gateway
	// order, matching the in-band speakers' lowest-next-hop rule).
	sort.SliceStable(egresses, func(i, j int) bool {
		li, lj := egresses[i].border.Loopback(), egresses[j].border.Loopback()
		if li == nil || lj == nil {
			return egresses[i].border.Name() < egresses[j].border.Name()
		}
		if li.Addr != lj.Addr {
			return li.Addr < lj.Addr
		}
		return egresses[i].gw < egresses[j].gw
	})

	for _, r := range as.Routers {
		// Hot potato: nearest egress border by IGP distance.
		best := math.MaxInt32
		var chosen egress
		for _, e := range egresses {
			var d int
			if e.border == r {
				d = 0
			} else if dd, ok := as.SPF.Dist[r][e.border]; ok {
				d = dd
			} else {
				continue
			}
			if d < best {
				best, chosen = d, e
			}
		}
		if best == math.MaxInt32 {
			continue
		}
		for _, p := range origin.Prefixes {
			// Never shadow a directly connected subnet (e.g. the cross-AS
			// link itself, announced by the neighbor as part of an
			// aggregate).
			if rt, ok := r.GetRoute(p); ok && rt.Origin == router.OriginConnected {
				continue
			}
			if chosen.border == r {
				r.InstallRoute(p, &router.Route{
					Origin:   router.OriginBGP,
					NextHops: []router.NextHop{{Out: chosen.out, Gateway: chosen.gw}},
				})
				continue
			}
			lo := chosen.border.Loopback()
			if lo == nil {
				continue
			}
			hops := as.SPF.NextHops[r][lo.Prefix]
			if len(hops) == 0 {
				continue
			}
			nhs := make([]router.NextHop, len(hops))
			for i, h := range hops {
				nhs[i] = router.NextHop{Out: h.Out, Gateway: h.Gateway}
			}
			r.InstallRoute(p, &router.Route{
				Origin:     router.OriginBGP,
				NextHops:   nhs,
				BGPNextHop: lo.Addr,
			})
		}
	}
}
