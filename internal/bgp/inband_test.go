package bgp

import (
	"testing"
	"time"

	"wormhole/internal/igp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
	"wormhole/internal/router"
)

// chainWorld builds stubA(h) - T1(r1-r2-r3) - stubB(h2): a three-router
// transit AS between two single-router stubs with hosts.
type chainWorld struct {
	net        *netsim.Network
	topo       *Topology
	sa, sb     *router.Router
	r1, r2, r3 *router.Router
	ha, hb     *netsim.Host
}

func buildChainWorld(t *testing.T) *chainWorld {
	t.Helper()
	net := netsim.New(33)
	w := &chainWorld{net: net}
	mk := func(name string, lo string) *router.Router {
		r := router.New(name, router.Cisco, router.Config{TTLPropagate: true})
		r.SetLoopback(netaddr.MustParseAddr(lo))
		net.AddNode(r)
		if err := net.RegisterIface(r.Loopback()); err != nil {
			t.Fatal(err)
		}
		return r
	}
	w.sa = mk("sa", "192.168.31.1")
	w.sb = mk("sb", "192.168.32.1")
	w.r1 = mk("r1", "192.168.33.1")
	w.r2 = mk("r2", "192.168.33.2")
	w.r3 = mk("r3", "192.168.33.3")

	sub := 0
	wire := func(x, y *router.Router) (xi, yi *netsim.Iface) {
		p := netaddr.MustPrefixFrom(netaddr.AddrFrom4(10, 33, byte(sub), 0), 30)
		sub++
		xi = x.AddIface("to-"+y.Name(), p.Nth(1), p)
		yi = y.AddIface("to-"+x.Name(), p.Nth(2), p)
		net.Connect(xi, yi, time.Millisecond)
		for _, ifc := range []*netsim.Iface{xi, yi} {
			if err := net.RegisterIface(ifc); err != nil {
				t.Fatal(err)
			}
		}
		return xi, yi
	}
	wire(w.r1, w.r2)
	wire(w.r2, w.r3)
	saIf, r1If := wire(w.sa, w.r1)
	sbIf, r3If := wire(w.sb, w.r3)

	haP := netaddr.MustParsePrefix("10.33.100.0/30")
	w.ha = netsim.NewHost("ha", haP.Nth(2), haP)
	net.AddNode(w.ha)
	hai := w.sa.AddIface("to-ha", haP.Nth(1), haP)
	net.Connect(hai, w.ha.If, time.Millisecond)
	hbP := netaddr.MustParsePrefix("10.33.101.0/30")
	w.hb = netsim.NewHost("hb", hbP.Nth(2), hbP)
	net.AddNode(w.hb)
	hbi := w.sb.AddIface("to-hb", hbP.Nth(1), hbP)
	net.Connect(hbi, w.hb.If, time.Millisecond)
	for _, ifc := range []*netsim.Iface{hai, w.ha.If, hbi, w.hb.If} {
		if err := net.RegisterIface(ifc); err != nil {
			t.Fatal(err)
		}
	}

	mkAS := func(num uint32, prefixes []string, rs ...*router.Router) *AS {
		for _, r := range rs {
			r.SetASN(num)
		}
		dom := &igp.Domain{Routers: rs}
		spf, err := dom.Compute()
		if err != nil {
			t.Fatal(err)
		}
		var ps []netaddr.Prefix
		for _, s := range prefixes {
			ps = append(ps, netaddr.MustParsePrefix(s))
		}
		return &AS{Num: num, Routers: rs, Prefixes: ps, SPF: spf}
	}
	asA := mkAS(31, []string{"10.33.100.0/30", "192.168.31.1/32"}, w.sa)
	asB := mkAS(32, []string{"10.33.101.0/30", "192.168.32.1/32"}, w.sb)
	asT := mkAS(33, []string{"192.168.33.0/24"}, w.r1, w.r2, w.r3)
	w.topo = &Topology{
		ASes: []*AS{asA, asB, asT},
		Sessions: []*Session{
			{A: w.sa, B: w.r1, AIf: saIf, BIf: r1If, Rel: ACustomerOfB},
			{A: w.sb, B: w.r3, AIf: sbIf, BIf: r3If, Rel: ACustomerOfB},
		},
	}
	return w
}

func TestInBandBGPBasicPropagation(t *testing.T) {
	w := buildChainWorld(t)
	EnableInBand(w.net, w.topo).ConvergeAll()

	// Every transit router must have routes to both stub prefixes.
	for _, r := range []*router.Router{w.r1, w.r2, w.r3} {
		for _, dst := range []netaddr.Addr{w.ha.Addr(), w.hb.Addr()} {
			_, rt, ok := r.LookupRoute(dst)
			if !ok {
				t.Errorf("%s has no route to %s", r.Name(), dst)
				continue
			}
			if rt.Origin != router.OriginBGP {
				t.Errorf("%s -> %s: origin %v", r.Name(), dst, rt.Origin)
			}
		}
	}
	// The stubs reach each other.
	for _, pair := range [][2]*router.Router{{w.sa, w.sb}, {w.sb, w.sa}} {
		if _, _, ok := pair[0].LookupRoute(pair[1].Loopback().Addr); !ok {
			t.Errorf("%s cannot reach %s's loopback", pair[0].Name(), pair[1].Name())
		}
	}
	// End to end: ping host to host through the transit.
	var got *packet.Packet
	w.ha.Handler = func(net *netsim.Network, pkt *packet.Packet) { net.AdoptPacket(pkt); got = pkt }
	w.net.Inject(w.ha.If, &packet.Packet{
		IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: w.ha.Addr(), Dst: w.hb.Addr()},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 3, Seq: 1},
	})
	if got == nil || got.ICMP.Type != packet.ICMPEchoReply {
		t.Fatalf("no end-to-end echo across in-band BGP world: %v", got)
	}
}

func TestInBandMatchesCentralizedOnChain(t *testing.T) {
	wi := buildChainWorld(t)
	EnableInBand(wi.net, wi.topo).ConvergeAll()
	wc := buildChainWorld(t)
	if err := Compute(wc.topo); err != nil {
		t.Fatal(err)
	}
	routersI := []*router.Router{wi.sa, wi.sb, wi.r1, wi.r2, wi.r3}
	routersC := []*router.Router{wc.sa, wc.sb, wc.r1, wc.r2, wc.r3}
	targets := []netaddr.Addr{wi.ha.Addr(), wi.hb.Addr(), wi.sa.Loopback().Addr, wi.sb.Loopback().Addr}
	for i := range routersI {
		for _, dst := range targets {
			pi, ri, oki := routersI[i].LookupRoute(dst)
			pc, rc, okc := routersC[i].LookupRoute(dst)
			if oki != okc {
				t.Errorf("%s -> %s: presence %v vs %v", routersI[i].Name(), dst, oki, okc)
				continue
			}
			if !oki {
				continue
			}
			if pi != pc || ri.Origin != rc.Origin {
				t.Errorf("%s -> %s: (%v,%v) vs (%v,%v)", routersI[i].Name(), dst, pi, ri.Origin, pc, rc.Origin)
			}
			if ri.Origin == router.OriginBGP && ri.BGPNextHop != rc.BGPNextHop {
				t.Errorf("%s -> %s: next hop %s vs %s", routersI[i].Name(), dst, ri.BGPNextHop, rc.BGPNextHop)
			}
		}
	}
}

// TestWithdrawalReconverges fails the sb-r3 peering: sb's prefixes must
// vanish from the transit AS, then return when the session is restored.
func TestWithdrawalReconverges(t *testing.T) {
	w := buildChainWorld(t)
	mesh := EnableInBand(w.net, w.topo)
	mesh.ConvergeAll()

	if _, _, ok := w.r1.LookupRoute(w.hb.Addr()); !ok {
		t.Fatal("precondition: r1 has no route to hb")
	}

	sess := w.topo.Sessions[1] // sb <-> r3
	sess.AIf.Link.Up = false
	mesh.WithdrawSession(sess)

	for _, r := range []*router.Router{w.r1, w.r2, w.r3, w.sa} {
		if _, rt, ok := r.LookupRoute(w.hb.Addr()); ok && rt.Origin == router.OriginBGP {
			t.Errorf("%s still holds a BGP route to the withdrawn prefix", r.Name())
		}
	}

	// Restore: re-announce and verify reachability returns.
	sess.AIf.Link.Up = true
	mesh.ConvergeAll()
	var got *packet.Packet
	w.ha.Handler = func(net *netsim.Network, pkt *packet.Packet) { net.AdoptPacket(pkt); got = pkt }
	w.net.Inject(w.ha.If, &packet.Packet{
		IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: w.ha.Addr(), Dst: w.hb.Addr()},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 4, Seq: 1},
	})
	if got == nil || got.ICMP.Type != packet.ICMPEchoReply {
		t.Fatalf("no echo after session restoration: %v", got)
	}
}

// TestBestPathOrdering exercises the in-band selection order directly:
// class, then path length, then eBGP, then IGP distance, then next hop.
func TestBestPathOrdering(t *testing.T) {
	w := buildChainWorld(t)
	// Give r1 an SPF-backed speaker.
	m := EnableInBand(w.net, w.topo)
	sp := m.speakers[w.r1]

	mk := func(class uint8, pathLen int, ebgp bool, nextHop string) ribEntry {
		e := ribEntry{class: class, ebgp: ebgp}
		for i := 0; i < pathLen; i++ {
			e.path = append(e.path, uint32(100+i))
		}
		if nextHop != "" {
			e.nextHop = netaddr.MustParseAddr(nextHop)
		}
		return e
	}
	cases := []struct {
		name string
		a, b ribEntry
		want bool
	}{
		{"customer beats peer", mk(classFromCustomer, 3, false, "192.168.33.2"), mk(classFromPeer, 1, true, ""), true},
		{"peer beats provider", mk(classFromPeer, 3, false, "192.168.33.2"), mk(classFromProvider, 1, true, ""), true},
		{"own beats customer", mk(classOwn, 3, false, "192.168.33.2"), mk(classFromCustomer, 1, true, ""), true},
		{"shorter path wins", mk(classFromPeer, 1, false, "192.168.33.2"), mk(classFromPeer, 2, false, "192.168.33.2"), true},
		{"ebgp wins tie", mk(classFromPeer, 2, true, ""), mk(classFromPeer, 2, false, "192.168.33.2"), true},
		{"nearer next hop wins", mk(classFromPeer, 2, false, "192.168.33.2"), mk(classFromPeer, 2, false, "192.168.33.3"), true},
		{"lowest next hop breaks full tie", mk(classFromPeer, 2, false, "192.168.33.2"), mk(classFromPeer, 2, false, "192.168.33.2"), false},
	}
	for _, c := range cases {
		if got := sp.better(c.a, c.b); got != c.want {
			t.Errorf("%s: better = %v, want %v", c.name, got, c.want)
		}
		// Antisymmetry for strict cases.
		if c.want && sp.better(c.b, c.a) {
			t.Errorf("%s: ordering not antisymmetric", c.name)
		}
	}
	// igpDist: r1 to r2's loopback is 1 hop, to own 0, to unknown inf.
	if d := sp.igpDist(w.r2.Loopback().Addr); d != 1 {
		t.Errorf("igpDist(r2) = %d", d)
	}
	if d := sp.igpDist(w.r1.Loopback().Addr); d != 0 {
		t.Errorf("igpDist(self) = %d", d)
	}
	if d := sp.igpDist(netaddr.MustParseAddr("203.0.113.1")); d < 1<<30 {
		t.Errorf("igpDist(unknown) = %d, want effectively infinite", d)
	}
}

// TestTwoProviderStub verifies candidate competition: a stub buying from
// two transits must pick the shorter AS path for a far prefix, and both
// transits hold both stub routes.
func TestTwoProviderStub(t *testing.T) {
	w := buildChainWorld(t)
	// Second provider for sa: a direct session to r3 (making a triangle).
	p := netaddr.MustParsePrefix("10.33.200.0/30")
	xi := w.sa.AddIface("to-r3", p.Nth(1), p)
	yi := w.r3.AddIface("to-sa", p.Nth(2), p)
	w.net.Connect(xi, yi, time.Millisecond)
	for _, ifc := range []*netsim.Iface{xi, yi} {
		if err := w.net.RegisterIface(ifc); err != nil {
			t.Fatal(err)
		}
	}
	w.topo.Sessions = append(w.topo.Sessions, &Session{A: w.sa, B: w.r3, AIf: xi, BIf: yi, Rel: ACustomerOfB})
	EnableInBand(w.net, w.topo).ConvergeAll()

	// sa now has two eBGP candidates for sb's prefix (via r1's iBGP
	// chain and via r3 directly); both are path [33 32], so the tie
	// breaks deterministically and a route exists.
	_, rt, ok := w.sa.LookupRoute(w.hb.Addr())
	if !ok || rt.Origin != router.OriginBGP {
		t.Fatalf("sa route to hb: %+v ok=%v", rt, ok)
	}
}
