package bgp

import (
	"bytes"
	"encoding/gob"
	"math"

	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
	"wormhole/internal/router"
)

// In-band BGP: UPDATE messages travel the fabric instead of a centralized
// computation. eBGP runs over the cross-AS links; iBGP is a full mesh of
// multi-hop sessions between loopbacks (the updates literally route
// through the network, so the IGP must have converged first). Export
// follows Gao-Rexford: everything to customers, own-plus-customer routes
// to peers and providers; loop prevention rejects paths containing the
// local ASN. Best-path selection is local preference by relationship
// class, then AS-path length, then hot potato (IGP distance to the BGP
// next hop), then lowest next hop — the same order the centralized
// Compute applies, which tests exploit to require identical forwarding.

// update is one BGP UPDATE message.
type update struct {
	Prefix  netaddr.Prefix
	ASPath  []uint32
	NextHop netaddr.Addr // advertising border's loopback (iBGP) or session addr (eBGP)
	// Class carries the receiver-side relationship on iBGP re-advertisement
	// (how the border learned it).
	Class uint8
	// NoExport keeps the route inside the AS (redistributed cross-link
	// subnets, mirroring the centralized redistribution semantics).
	NoExport bool
	// Withdraw removes the sender's previously advertised route instead
	// of installing one.
	Withdraw bool
}

// msgTag discriminates BGP payloads from LDP's on the shared fabric.
const msgTag = 'B'

const (
	classOwn uint8 = iota
	classFromCustomer
	classFromPeer
	classFromProvider
)

// ribEntry is one candidate route in a speaker's Adj-RIB-In.
type ribEntry struct {
	path     []uint32
	class    uint8
	nextHop  netaddr.Addr // BGP next hop (loopback for iBGP, peer addr for eBGP)
	ebgp     bool
	out      *netsim.Iface // eBGP: session interface
	gw       netaddr.Addr  // eBGP: peer address
	fromKey  string        // dedup key of the sender
	noExport bool
}

// Speaker is the BGP process on one router.
type Speaker struct {
	mesh *Mesh
	r    *router.Router
	as   *AS
	// sessions this router terminates.
	ebgp []*Session
	// rib[prefix][fromKey] = candidate.
	rib map[netaddr.Prefix]map[string]ribEntry
	// best tracks the currently installed choice per prefix.
	best map[netaddr.Prefix]ribEntry
	prev func(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet)
}

// Mesh is the in-band BGP instance over a whole topology.
type Mesh struct {
	net      *netsim.Network
	topo     *Topology
	speakers map[*router.Router]*Speaker
	asOf     map[*router.Router]*AS
}

// EnableInBand attaches speakers to every router of every AS. The IGPs
// must already be converged (iBGP updates route through them).
func EnableInBand(net *netsim.Network, topo *Topology) *Mesh {
	m := &Mesh{
		net:      net,
		topo:     topo,
		speakers: make(map[*router.Router]*Speaker),
		asOf:     make(map[*router.Router]*AS),
	}
	for _, as := range topo.ASes {
		for _, r := range as.Routers {
			sp := &Speaker{
				mesh: m,
				r:    r,
				as:   as,
				rib:  make(map[netaddr.Prefix]map[string]ribEntry),
				best: make(map[netaddr.Prefix]ribEntry),
				prev: r.ControlHandler,
			}
			m.speakers[r] = sp
			m.asOf[r] = as
			r.ControlHandler = sp.receive
		}
	}
	for _, s := range topo.Sessions {
		m.speakers[s.A].ebgp = append(m.speakers[s.A].ebgp, s)
		m.speakers[s.B].ebgp = append(m.speakers[s.B].ebgp, s)
	}
	return m
}

// Converge originates every AS's prefixes from its border routers,
// re-advertises each speaker's current best routes (so freshly restored
// sessions receive the full table, as real session establishment does),
// and drains the cascade.
func (m *Mesh) Converge() {
	for _, as := range m.topo.ASes {
		for _, r := range as.Routers {
			sp := m.speakers[r]
			if len(sp.ebgp) == 0 {
				continue
			}
			for _, p := range as.Prefixes {
				sp.exportEBGP(update{Prefix: p, ASPath: []uint32{as.Num}, Class: classOwn}, classOwn)
			}
			for p, best := range sp.best {
				if best.noExport {
					continue
				}
				sp.exportEBGP(update{
					Prefix:  p,
					ASPath:  append([]uint32{as.Num}, best.path...),
					NextHop: sp.loopback(),
					Class:   best.class,
				}, best.class)
			}
		}
	}
	m.net.Run()
}

// receive dispatches a control packet: BGP updates are consumed, the rest
// chains onward (LDP, OSPF).
func (sp *Speaker) receive(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet) {
	var u update
	if pkt.IP.Protocol != packet.ProtoTCP || len(pkt.Raw) == 0 || pkt.Raw[0] != msgTag ||
		gob.NewDecoder(bytes.NewReader(pkt.Raw[1:])).Decode(&u) != nil {
		if sp.prev != nil {
			sp.prev(net, in, pkt)
		}
		return
	}
	sp.onUpdate(in, pkt.IP.Src, u)
}

// onUpdate stores the candidate and re-evaluates the prefix.
func (sp *Speaker) onUpdate(in *netsim.Iface, from netaddr.Addr, u update) {
	// Loop prevention.
	for _, asn := range u.ASPath {
		if asn == sp.as.Num {
			return
		}
	}
	entry := ribEntry{path: u.ASPath, nextHop: u.NextHop, fromKey: from.String(), noExport: u.NoExport}
	if peerAS, sess := sp.sessionFor(from); sess != nil {
		// eBGP: classify by our side of the relationship.
		entry.ebgp = true
		entry.class = sp.classOf(sess, peerAS)
		entry.out, entry.gw = sp.sessionIfaces(sess)
		entry.nextHop = 0 // external next hop: direct via the session
	} else {
		// iBGP: the border encoded how it learned the route.
		entry.class = u.Class
	}
	byFrom, ok := sp.rib[u.Prefix]
	if !ok {
		byFrom = make(map[string]ribEntry)
		sp.rib[u.Prefix] = byFrom
	}
	if u.Withdraw {
		delete(byFrom, entry.fromKey)
	} else {
		byFrom[entry.fromKey] = entry
	}
	sp.evaluate(u.Prefix)
}

// evaluate picks the best candidate, installs it, and re-advertises on
// change.
func (sp *Speaker) evaluate(p netaddr.Prefix) {
	// Own prefixes are never overridden.
	for _, own := range sp.as.Prefixes {
		if own == p {
			return
		}
	}
	var best ribEntry
	have := false
	for _, e := range sp.rib[p] {
		if !have || sp.better(e, best) {
			best, have = e, true
		}
	}
	cur, had := sp.best[p]
	if !have {
		// Every candidate withdrawn: drop the route and propagate the
		// withdrawal ourselves.
		if had {
			delete(sp.best, p)
			sp.r.DeleteRoute(p)
			w := update{Prefix: p, NextHop: sp.loopback(), Withdraw: true}
			sp.exportIBGP(w)
			sp.exportEBGP(w, classOwn)
		}
		return
	}
	if had && cur.fromKey == best.fromKey && len(cur.path) == len(best.path) && cur.class == best.class {
		return // stable
	}
	sp.best[p] = best
	sp.install(p, best)

	// Re-advertise: eBGP-learned best goes to iBGP and to eBGP peers per
	// policy; iBGP-learned routes are not reflected (full mesh).
	out := update{
		Prefix:  p,
		ASPath:  append([]uint32{sp.as.Num}, best.path...),
		NextHop: sp.loopback(),
		Class:   best.class,
	}
	if best.ebgp {
		sp.exportIBGP(update{Prefix: p, ASPath: best.path, NextHop: sp.loopback(), Class: best.class})
	}
	if !best.noExport {
		sp.exportEBGP(out, best.class)
	}
}

// better orders candidates: class, then AS-path length, then eBGP over
// iBGP (hot potato at the border), then IGP distance to the next hop,
// then lowest next hop.
func (sp *Speaker) better(a, b ribEntry) bool {
	ca, cb := classRank(a.class), classRank(b.class)
	if ca != cb {
		return ca > cb
	}
	if len(a.path) != len(b.path) {
		return len(a.path) < len(b.path)
	}
	if a.ebgp != b.ebgp {
		return a.ebgp
	}
	da, db := sp.igpDist(a.nextHop), sp.igpDist(b.nextHop)
	if da != db {
		return da < db
	}
	if a.nextHop != b.nextHop {
		return a.nextHop < b.nextHop
	}
	// Total order: without this, equally-good candidates (e.g. two eBGP
	// sessions with identical class/path/distance) would be chosen by map
	// iteration order, making convergence nondeterministic. The numeric
	// gateway comparison matches the centralized computation's sort.
	if a.gw != b.gw {
		return a.gw < b.gw
	}
	return a.fromKey < b.fromKey
}

func classRank(c uint8) int {
	switch c {
	case classOwn:
		return 4
	case classFromCustomer:
		return 3
	case classFromPeer:
		return 2
	default:
		return 1
	}
}

// igpDist returns the IGP distance to a next-hop loopback.
func (sp *Speaker) igpDist(lo netaddr.Addr) int {
	if lo.IsUnspecified() {
		return 0
	}
	spf := sp.as.SPF
	if spf == nil {
		return math.MaxInt32
	}
	for other, d := range spf.Dist[sp.r] {
		if l := other.Loopback(); l != nil && l.Addr == lo {
			return d
		}
	}
	if l := sp.r.Loopback(); l != nil && l.Addr == lo {
		return 0
	}
	return math.MaxInt32
}

// install writes the FIB route for the chosen candidate.
func (sp *Speaker) install(p netaddr.Prefix, e ribEntry) {
	if rt, ok := sp.r.GetRoute(p); ok && rt.Origin == router.OriginConnected {
		return
	}
	if e.ebgp {
		sp.r.InstallRoute(p, &router.Route{
			Origin:   router.OriginBGP,
			NextHops: []router.NextHop{{Out: e.out, Gateway: e.gw}},
		})
		return
	}
	hops := sp.hopsToward(e.nextHop)
	if len(hops) == 0 {
		return
	}
	sp.r.InstallRoute(p, &router.Route{
		Origin:     router.OriginBGP,
		NextHops:   hops,
		BGPNextHop: e.nextHop,
	})
}

func (sp *Speaker) hopsToward(lo netaddr.Addr) []router.NextHop {
	spf := sp.as.SPF
	if spf == nil {
		return nil
	}
	hops := spf.NextHops[sp.r][netaddr.HostPrefix(lo)]
	out := make([]router.NextHop, 0, len(hops))
	for _, h := range hops {
		out = append(out, router.NextHop{Out: h.Out, Gateway: h.Gateway})
	}
	return out
}

// exportEBGP sends an update to each eBGP peer the policy allows.
func (sp *Speaker) exportEBGP(u update, class uint8) {
	for _, s := range sp.ebgp {
		peerAS, peerIface, ownIface := sp.peerOf(s)
		rel := sp.relTo(s, peerAS)
		// Valley-free: own and customer routes go everywhere; peer and
		// provider routes go to customers only.
		if class == classFromPeer || class == classFromProvider {
			if rel != AProviderOfB { // peer is not our customer
				continue
			}
		}
		sp.send(ownIface, peerIface.Addr, u)
	}
}

// exportIBGP sends an update to every other router of the AS, addressed
// to its loopback (multi-hop).
func (sp *Speaker) exportIBGP(u update) {
	lo := sp.r.Loopback()
	if lo == nil {
		return
	}
	for _, other := range sp.as.Routers {
		if other == sp.r {
			continue
		}
		olo := other.Loopback()
		if olo == nil {
			continue
		}
		// Multi-hop: route via the FIB like any locally originated packet.
		var buf bytes.Buffer
		buf.WriteByte(msgTag)
		if gob.NewEncoder(&buf).Encode(u) != nil {
			return
		}
		sp.r.Originate(sp.mesh.net, &packet.Packet{
			IP: packet.IPv4{
				TTL:      64,
				Protocol: packet.ProtoTCP,
				Src:      lo.Addr,
				Dst:      olo.Addr,
			},
			Raw: buf.Bytes(),
		})
	}
}

func (sp *Speaker) send(out *netsim.Iface, dst netaddr.Addr, u update) {
	var buf bytes.Buffer
	buf.WriteByte(msgTag)
	if gob.NewEncoder(&buf).Encode(u) != nil {
		return
	}
	sp.mesh.net.Transmit(out, &packet.Packet{
		IP: packet.IPv4{
			TTL:      1,
			Protocol: packet.ProtoTCP,
			Src:      out.Addr,
			Dst:      dst,
		},
		Raw: buf.Bytes(),
	})
}

// --- session bookkeeping helpers ---

// sessionFor finds the eBGP session whose far side bears addr.
func (sp *Speaker) sessionFor(addr netaddr.Addr) (*AS, *Session) {
	for _, s := range sp.ebgp {
		if s.A == sp.r && s.BIf.Addr == addr {
			return sp.mesh.asOf[s.B], s
		}
		if s.B == sp.r && s.AIf.Addr == addr {
			return sp.mesh.asOf[s.A], s
		}
	}
	return nil, nil
}

// peerOf returns the far AS and both interfaces of a session this router
// terminates.
func (sp *Speaker) peerOf(s *Session) (*AS, *netsim.Iface, *netsim.Iface) {
	if s.A == sp.r {
		return sp.mesh.asOf[s.B], s.BIf, s.AIf
	}
	return sp.mesh.asOf[s.A], s.AIf, s.BIf
}

// relTo returns the relationship from this router's side.
func (sp *Speaker) relTo(s *Session, peer *AS) Relationship {
	if s.A == sp.r {
		return s.Rel
	}
	switch s.Rel {
	case ACustomerOfB:
		return AProviderOfB
	case AProviderOfB:
		return ACustomerOfB
	default:
		return APeerOfB
	}
}

// classOf classifies a route learned over a session.
func (sp *Speaker) classOf(s *Session, peer *AS) uint8 {
	switch sp.relTo(s, peer) {
	case AProviderOfB: // peer is our customer
		return classFromCustomer
	case APeerOfB:
		return classFromPeer
	default:
		return classFromProvider
	}
}

func (sp *Speaker) loopback() netaddr.Addr {
	if lo := sp.r.Loopback(); lo != nil {
		return lo.Addr
	}
	return 0
}

// sessionIfaces returns (own iface, far addr) for eBGP installs.
func (sp *Speaker) sessionIfaces(s *Session) (*netsim.Iface, netaddr.Addr) {
	if s.A == sp.r {
		return s.AIf, s.BIf.Addr
	}
	return s.BIf, s.AIf.Addr
}

// redistributeConnectedInBand mirrors the centralized cross-link
// redistribution: each border advertises its cross-AS subnets into iBGP.
func (m *Mesh) redistributeConnectedInBand() {
	for _, s := range m.topo.Sessions {
		for _, side := range []struct {
			r   *router.Router
			ifc *netsim.Iface
		}{{s.A, s.AIf}, {s.B, s.BIf}} {
			sp := m.speakers[side.r]
			sp.exportIBGP(update{
				Prefix:   side.ifc.Prefix,
				ASPath:   nil,
				NextHop:  sp.loopback(),
				Class:    classOwn,
				NoExport: true,
			})
		}
	}
	m.net.Run()
}

// ConvergeAll runs origination plus the cross-link redistribution.
func (m *Mesh) ConvergeAll() {
	m.Converge()
	m.redistributeConnectedInBand()
}

// WithdrawSession retracts everything learned over one eBGP session on
// both ends (the operational reaction to a failed peering link) and lets
// the withdrawal cascade re-converge the mesh.
func (m *Mesh) WithdrawSession(s *Session) {
	for _, end := range []struct {
		r    *router.Router
		peer netaddr.Addr
	}{{s.A, s.BIf.Addr}, {s.B, s.AIf.Addr}} {
		sp := m.speakers[end.r]
		key := end.peer.String()
		for p, byFrom := range sp.rib {
			if _, ok := byFrom[key]; ok {
				delete(byFrom, key)
				sp.evaluate(p)
			}
		}
	}
	m.net.Run()
}
