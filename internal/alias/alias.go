// Package alias implements Mercator-style alias resolution, the building
// block under ITDK-like router-level graphs: a UDP probe to an unused
// port on one interface of a router elicits a port-unreachable whose
// source address is a *different* interface (the one facing the prober)
// on OSes that source unreachables from the outgoing interface. Each such
// mismatch is an alias pair; union-find merges pairs into router alias
// sets.
//
// This replaces the ground-truth resolver in campaigns that want the
// realistic, incomplete view: routers that source replies from the probed
// address stay unresolved, exactly like the fraction of ITDK nodes with
// singleton alias sets.
package alias

import (
	"sort"

	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
	"wormhole/internal/probe"
)

// Sets holds resolved alias sets over a universe of addresses.
type Sets struct {
	parent map[netaddr.Addr]netaddr.Addr
	rank   map[netaddr.Addr]int
	// Pairs counts the raw alias observations.
	Pairs int
	// Probed counts the addresses probed.
	Probed int
}

// NewSets creates an empty alias structure.
func NewSets() *Sets {
	return &Sets{
		parent: make(map[netaddr.Addr]netaddr.Addr),
		rank:   make(map[netaddr.Addr]int),
	}
}

// find is union-find with path halving.
func (s *Sets) find(a netaddr.Addr) netaddr.Addr {
	if _, ok := s.parent[a]; !ok {
		s.parent[a] = a
	}
	for s.parent[a] != a {
		s.parent[a] = s.parent[s.parent[a]]
		a = s.parent[a]
	}
	return a
}

// Union merges the sets of two addresses (an observed alias pair).
func (s *Sets) Union(a, b netaddr.Addr) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	if s.rank[ra] < s.rank[rb] {
		ra, rb = rb, ra
	}
	s.parent[rb] = ra
	if s.rank[ra] == s.rank[rb] {
		s.rank[ra]++
	}
}

// SameRouter reports whether two addresses resolved to one router.
func (s *Sets) SameRouter(a, b netaddr.Addr) bool {
	return s.find(a) == s.find(b)
}

// Canonical returns the representative address of a's alias set.
func (s *Sets) Canonical(a netaddr.Addr) netaddr.Addr { return s.find(a) }

// SetOf returns all known addresses aliased with a (including a itself),
// sorted.
func (s *Sets) SetOf(a netaddr.Addr) []netaddr.Addr {
	root := s.find(a)
	var out []netaddr.Addr
	for addr := range s.parent {
		if s.find(addr) == root {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumSets returns the number of distinct alias sets among known addresses.
func (s *Sets) NumSets() int {
	roots := map[netaddr.Addr]bool{}
	for a := range s.parent {
		roots[s.find(a)] = true
	}
	return len(roots)
}

// Resolve runs the Mercator probe against every address: one UDP probe to
// a high port; a reply sourced from a different address is an alias pair.
func Resolve(p *probe.Prober, addrs []netaddr.Addr) *Sets {
	s := NewSets()
	for _, a := range addrs {
		s.find(a) // ensure membership even if unresponsive
		s.Probed++
		from, ok := mercatorProbe(p, a)
		if !ok {
			continue
		}
		if from != a {
			s.Union(a, from)
			s.Pairs++
		}
	}
	return s
}

// mercatorProbe sends one UDP probe and returns the reply source.
func mercatorProbe(p *probe.Prober, dst netaddr.Addr) (netaddr.Addr, bool) {
	savedMethod := p.Method
	savedFirst := p.FirstTTL
	savedMax := p.MaxTTL
	p.Method = probe.UDPParis
	p.FirstTTL = 64
	p.MaxTTL = 64
	defer func() {
		p.Method = savedMethod
		p.FirstTTL = savedFirst
		p.MaxTTL = savedMax
	}()
	tr := p.Traceroute(dst)
	if !tr.Reached {
		return 0, false
	}
	last, ok := tr.Last()
	if !ok || last.ICMPType != packet.ICMPDestUnreach {
		return 0, false
	}
	return last.Addr, true
}

// Resolver adapts the alias sets into a topo.Resolver-compatible function:
// every alias set becomes one router named after its canonical address.
// AS numbers are not known to alias resolution; asOf (may be nil) supplies
// them.
func (s *Sets) Resolver(asOf func(netaddr.Addr) uint32) func(netaddr.Addr) (string, uint32, bool) {
	return func(a netaddr.Addr) (string, uint32, bool) {
		if _, known := s.parent[a]; !known {
			return "", 0, false
		}
		var asn uint32
		if asOf != nil {
			asn = asOf(a)
		}
		return "router-" + s.find(a).String(), asn, true
	}
}
