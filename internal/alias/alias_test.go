package alias

import (
	"testing"

	"wormhole/internal/gen"
	"wormhole/internal/lab"
	"wormhole/internal/netaddr"
	"wormhole/internal/router"
)

func a(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

func TestUnionFind(t *testing.T) {
	s := NewSets()
	s.Union(a("1.0.0.1"), a("1.0.0.2"))
	s.Union(a("1.0.0.2"), a("1.0.0.3"))
	s.Union(a("2.0.0.1"), a("2.0.0.2"))

	if !s.SameRouter(a("1.0.0.1"), a("1.0.0.3")) {
		t.Error("transitive union failed")
	}
	if s.SameRouter(a("1.0.0.1"), a("2.0.0.1")) {
		t.Error("distinct sets merged")
	}
	if got := len(s.SetOf(a("1.0.0.2"))); got != 3 {
		t.Errorf("set size = %d", got)
	}
	if s.NumSets() != 2 {
		t.Errorf("NumSets = %d", s.NumSets())
	}
	// Self-union and repeats are harmless.
	s.Union(a("1.0.0.1"), a("1.0.0.1"))
	s.Union(a("1.0.0.1"), a("1.0.0.2"))
	if s.NumSets() != 2 {
		t.Errorf("NumSets after no-ops = %d", s.NumSets())
	}
}

func TestCanonicalStable(t *testing.T) {
	s := NewSets()
	s.Union(a("9.0.0.1"), a("9.0.0.2"))
	c1 := s.Canonical(a("9.0.0.1"))
	c2 := s.Canonical(a("9.0.0.2"))
	if c1 != c2 {
		t.Error("canonical differs within a set")
	}
}

// TestMercatorOnTestbed resolves the Fig. 2 routers' interface addresses:
// multi-interface routers whose unreachables come from the outgoing
// interface must collapse into one set.
func TestMercatorOnTestbed(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.Default})
	// Probe both interfaces of P2 plus PE2's left side.
	p2Left := l.P2Left
	var p2Right netaddr.Addr
	for _, ifc := range l.P2.Ifaces() {
		if ifc.Addr != p2Left {
			p2Right = ifc.Addr
		}
	}
	sets := Resolve(l.Prober, []netaddr.Addr{p2Left, p2Right, l.PE2Left, l.P1Left})
	// Probing P2's right interface elicits a reply from its left (facing
	// the VP): alias detected.
	if !sets.SameRouter(p2Left, p2Right) {
		t.Errorf("P2's interfaces not aliased: sets=%v / %v",
			sets.SetOf(p2Left), sets.SetOf(p2Right))
	}
	// Different routers never merge.
	if sets.SameRouter(p2Left, l.PE2Left) || sets.SameRouter(p2Left, l.P1Left) {
		t.Error("distinct routers merged")
	}
	if sets.Pairs == 0 {
		t.Error("no alias pairs observed")
	}
}

// TestMercatorBlindOnWellBehavedOS: routers sourcing replies from the
// probed address yield no pairs — the resolution is honest about its
// limits.
func TestMercatorBlindOnWellBehavedOS(t *testing.T) {
	pers := router.Cisco
	pers.ReplyFromOutgoing = false
	l := lab.MustBuild(lab.Options{Scenario: lab.Default, AS2Personality: pers})
	var addrs []netaddr.Addr
	for _, ifc := range l.P2.Ifaces() {
		addrs = append(addrs, ifc.Addr)
	}
	sets := Resolve(l.Prober, addrs)
	if sets.Pairs != 0 {
		t.Errorf("pairs = %d on a well-behaved OS", sets.Pairs)
	}
	if sets.SameRouter(addrs[0], addrs[1]) {
		t.Error("addresses merged without evidence")
	}
}

// TestMercatorAgainstGroundTruth runs alias resolution across a generated
// Internet and scores it against the generator's truth: no false merges,
// and a reasonable share of true aliases found.
func TestMercatorAgainstGroundTruth(t *testing.T) {
	p := gen.DefaultParams(909)
	p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 2, 4, 8, 4
	in, err := gen.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	vp := in.VPs[0]
	addrs := in.RouterAddrs()
	sets := Resolve(vp.Prober, addrs)

	truePairs, falsePairs := 0, 0
	for i := 0; i < len(addrs); i++ {
		for j := i + 1; j < len(addrs); j++ {
			if !sets.SameRouter(addrs[i], addrs[j]) {
				continue
			}
			oi, _ := in.Owner(addrs[i])
			oj, _ := in.Owner(addrs[j])
			if oi.Router == oj.Router {
				truePairs++
			} else {
				falsePairs++
			}
		}
	}
	if falsePairs > 0 {
		t.Errorf("%d false alias merges", falsePairs)
	}
	if truePairs == 0 {
		t.Error("no true aliases recovered")
	}
	t.Logf("alias resolution: %d true merged pairs, %d sets over %d addrs",
		truePairs, sets.NumSets(), len(addrs))
}

func TestResolverAdapter(t *testing.T) {
	s := NewSets()
	s.Union(a("1.0.0.1"), a("1.0.0.2"))
	r := s.Resolver(func(netaddr.Addr) uint32 { return 7 })
	n1, asn, ok := r(a("1.0.0.1"))
	if !ok || asn != 7 {
		t.Fatalf("resolver: %s %d %v", n1, asn, ok)
	}
	n2, _, _ := r(a("1.0.0.2"))
	if n1 != n2 {
		t.Error("aliases resolve to different router names")
	}
	if _, _, ok := r(a("8.8.8.8")); ok {
		t.Error("unknown address resolved")
	}
}
