package reveal_test

import (
	"fmt"

	"wormhole/internal/lab"
	"wormhole/internal/reveal"
)

// ExampleReveal shows the full revelation workflow: trace, extract the
// candidate pair, reveal the hidden LSRs.
func ExampleReveal() {
	l := lab.MustBuild(lab.Options{Scenario: lab.BackwardRecursive})

	tr := l.Prober.Traceroute(l.CE2Left)
	cand, _ := reveal.CandidateFromTrace(tr)
	rev := reveal.Reveal(l.Prober, cand.Ingress.Addr, cand.Egress.Addr)

	fmt.Printf("technique: %s\n", rev.Technique)
	for i, h := range rev.Hops {
		fmt.Printf("hidden %d: %s\n", i+1, h)
	}
	// Output:
	// technique: BRPR
	// hidden 1: 10.2.1.2
	// hidden 2: 10.2.2.2
	// hidden 3: 10.2.3.2
}

// ExampleFRPLA derives the forward/return asymmetry for the tunnel's
// egress LER: +3 means three hidden hops leaked into the return path.
func ExampleFRPLA() {
	l := lab.MustBuild(lab.Options{Scenario: lab.BackwardRecursive})
	tr := l.Prober.Traceroute(l.CE2Left)
	for _, h := range tr.Hops {
		if h.Addr != l.PE2Left {
			continue
		}
		s, _ := reveal.FRPLA(h, 255)
		fmt.Printf("forward=%d return=%d rfa=%+d\n", s.Forward, s.Return, s.RFA())
	}
	// Output:
	// forward=3 return=6 rfa=+3
}

// ExampleRTLA computes the exact return tunnel length from the TTL gap of
// a Juniper-signature egress.
func ExampleRTLA() {
	fmt.Println(reveal.RTLA(250, 62)) // te path 5, echo path 2
	// Output:
	// 3
}

// ExampleAugmentedTraceroute runs the TNT-style tracer: triggers fire and
// hidden hops appear inline.
func ExampleAugmentedTraceroute() {
	l := lab.MustBuild(lab.Options{Scenario: lab.BackwardRecursive})
	at := reveal.AugmentedTraceroute(l.Prober, l.CE2Left)
	fmt.Printf("visible+hidden path length: %d\n", at.PathLength())
	// Output:
	// visible+hidden path length: 7
}
