package reveal

import (
	"testing"

	"wormhole/internal/lab"
	"wormhole/internal/router"
)

func TestAugmentedTracerouteRevealsInline(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.BackwardRecursive})
	at := AugmentedTraceroute(l.Prober, l.CE2Left)
	if !at.Reached {
		t.Fatal("not reached")
	}
	// The PE1 hop must carry the trigger and the three hidden LSRs.
	var pe1 *AugmentedHop
	for i := range at.Hops {
		if at.Hops[i].Addr == l.PE1Left {
			pe1 = &at.Hops[i]
		}
	}
	if pe1 == nil {
		t.Fatal("PE1 not in trace")
	}
	if pe1.Trigger == TriggerNone {
		t.Fatal("no trigger fired at the tunnel ingress")
	}
	if len(pe1.Hidden) != 3 {
		t.Fatalf("revealed %d hidden hops (%v), want 3", len(pe1.Hidden), pe1.Hidden)
	}
	want := []string{l.P1Left.String(), l.P2Left.String(), l.P3Left.String()}
	for i, h := range pe1.Hidden {
		if h.String() != want[i] {
			t.Errorf("hidden[%d] = %s, want %s", i, h, want[i])
		}
	}
	// Path length: 4 visible + 3 hidden.
	if at.PathLength() != 7 {
		t.Errorf("PathLength = %d, want 7", at.PathLength())
	}
	if at.ExtraProbes == 0 {
		t.Error("extra probe accounting missing")
	}
}

func TestAugmentedTracerouteRTLATrigger(t *testing.T) {
	l := lab.MustBuild(lab.Options{
		Scenario:       lab.BackwardRecursive,
		PE2Personality: router.Juniper,
	})
	at := AugmentedTraceroute(l.Prober, l.CE2Left)
	var pe1 *AugmentedHop
	for i := range at.Hops {
		if at.Hops[i].Addr == l.PE1Left {
			pe1 = &at.Hops[i]
		}
	}
	if pe1 == nil || pe1.Trigger != TriggerRTLA {
		t.Fatalf("RTLA trigger did not fire: %+v", pe1)
	}
	if pe1.RTLAEstimate != 3 {
		t.Errorf("RTLA estimate = %d, want 3", pe1.RTLAEstimate)
	}
}

func TestAugmentedTracerouteQuietOnVisibleTunnel(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.Default})
	at := AugmentedTraceroute(l.Prober, l.CE2Left)
	for _, h := range at.Hops {
		if h.Trigger != TriggerNone {
			t.Errorf("trigger %s fired on a visible tunnel at %s", h.Trigger, h.Addr)
		}
		if len(h.Hidden) != 0 {
			t.Errorf("phantom revelation at %s: %v", h.Addr, h.Hidden)
		}
	}
	// 7 visible hops, nothing hidden.
	if at.PathLength() != 7 {
		t.Errorf("PathLength = %d, want 7", at.PathLength())
	}
}

func TestAugmentedTracerouteUHPStaysDark(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.TotallyInvisible})
	at := AugmentedTraceroute(l.Prober, l.CE2Left)
	for _, h := range at.Hops {
		if len(h.Hidden) != 0 {
			t.Errorf("UHP tunnel revealed at %s: %v", h.Addr, h.Hidden)
		}
	}
}
