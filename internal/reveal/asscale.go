package reveal

import (
	"sort"

	"wormhole/internal/stats"
)

// Sec. 3.4 is explicit that FRPLA "should not be used in the wild at the
// tunnel scale" — per-trace asymmetry conflates tunnels with ordinary
// routing asymmetry — but as a statistical method over many vantage
// points and ingresses per AS, where asymmetry averages out to a normal
// law centred at zero and a surviving shift exposes hidden tunnels.
// ASAggregator implements that aggregation.

// ASVerdict is the statistical conclusion for one AS.
type ASVerdict struct {
	ASN uint32
	// Samples is the number of RFA observations.
	Samples int
	// MedianShift and MeanShift summarize the RFA distribution.
	MedianShift int
	MeanShift   float64
	// Suspected is true when the distribution is shifted enough to imply
	// invisible tunnels.
	Suspected bool
	// AvgTunnelLength estimates the mean hidden tunnel length when
	// suspected (the mean shift, per the paper's reading of Fig. 7).
	AvgTunnelLength float64
}

// ASAggregator accumulates FRPLA samples per AS.
type ASAggregator struct {
	// MinSamples guards against verdicts from a handful of traces
	// (default 10).
	MinSamples int
	// ShiftThreshold is the median shift that flags an AS (default 2,
	// above the +-1 routing-asymmetry noise of Fig. 7a).
	ShiftThreshold int

	byAS map[uint32]*stats.Histogram
}

// NewASAggregator creates an aggregator with the defaults above.
func NewASAggregator() *ASAggregator {
	return &ASAggregator{
		MinSamples:     10,
		ShiftThreshold: 2,
		byAS:           make(map[uint32]*stats.Histogram),
	}
}

// Add records one egress-LER RFA sample attributed to an AS.
func (a *ASAggregator) Add(asn uint32, sample RFASample) {
	h, ok := a.byAS[asn]
	if !ok {
		h = stats.NewHistogram()
		a.byAS[asn] = h
	}
	h.Add(sample.RFA())
}

// Verdict returns the statistical conclusion for one AS; ok is false when
// the AS has no samples.
func (a *ASAggregator) Verdict(asn uint32) (ASVerdict, bool) {
	h, ok := a.byAS[asn]
	if !ok {
		return ASVerdict{}, false
	}
	v := ASVerdict{
		ASN:         asn,
		Samples:     h.N(),
		MedianShift: h.Median(),
		MeanShift:   h.Mean(),
	}
	if v.Samples >= a.MinSamples && v.MedianShift >= a.ShiftThreshold {
		v.Suspected = true
		v.AvgTunnelLength = v.MeanShift
	}
	return v, true
}

// Verdicts returns every AS verdict, sorted by descending median shift.
func (a *ASAggregator) Verdicts() []ASVerdict {
	out := make([]ASVerdict, 0, len(a.byAS))
	for asn := range a.byAS {
		v, _ := a.Verdict(asn)
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MedianShift != out[j].MedianShift {
			return out[i].MedianShift > out[j].MedianShift
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// Distribution exposes an AS's raw RFA histogram (figure rendering).
func (a *ASAggregator) Distribution(asn uint32) (*stats.Histogram, bool) {
	h, ok := a.byAS[asn]
	return h, ok
}
