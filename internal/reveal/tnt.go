package reveal

import (
	"wormhole/internal/fingerprint"
	"wormhole/internal/netaddr"
	"wormhole/internal/probe"
)

// The paper's conclusion envisions "a modification of traceroute, using
// FRPLA and RTLA as triggers for the presence of invisible tunnels, and
// BRPR and DPR to reveal the internal nodes on the fly" (the design that
// later became the authors' TNT tool). AugmentedTraceroute implements it:
// a single traceroute whose hops carry trigger annotations and inline
// revelations.

// Trigger names the signal that flagged a hidden tunnel.
type Trigger string

const (
	// TriggerNone: nothing suspicious.
	TriggerNone Trigger = ""
	// TriggerFRPLA: the return/forward asymmetry jumped across this hop.
	TriggerFRPLA Trigger = "frpla"
	// TriggerRTLA: the time-exceeded/echo-reply gap exposed a return
	// tunnel at this hop.
	TriggerRTLA Trigger = "rtla"
)

// AugmentedHop is one output line of the augmented traceroute.
type AugmentedHop struct {
	probe.Hop
	// Trigger tells why revelation ran after this hop.
	Trigger Trigger
	// RTLAEstimate is the return tunnel length when TriggerRTLA fired.
	RTLAEstimate int
	// Hidden lists LSRs revealed between this hop and the next one.
	Hidden []netaddr.Addr
	// Technique says how the hidden hops were obtained.
	Technique Technique
}

// AugmentedTrace is a traceroute with inline tunnel revelation.
type AugmentedTrace struct {
	Dst     netaddr.Addr
	Hops    []AugmentedHop
	Reached bool
	// ExtraProbes counts the additional traces and pings spent on
	// triggers and revelations beyond the base traceroute.
	ExtraProbes uint64
}

// PathLength returns the hop count including revealed hidden hops.
func (t *AugmentedTrace) PathLength() int {
	n := 0
	for _, h := range t.Hops {
		if !h.Anonymous() {
			n++
		}
		n += len(h.Hidden)
	}
	return n
}

// frplaJump is the asymmetry increase between consecutive hops that fires
// the FRPLA trigger. A jump of 2+ hops across one link is unlikely from
// plain routing asymmetry (which accumulates gradually) but exactly what
// an invisible tunnel produces at its egress.
const frplaJump = 2

// AugmentedTraceroute traces dst and, at every hop pair where FRPLA or
// RTLA signals a hidden tunnel, runs the revelation process inline.
func AugmentedTraceroute(p *probe.Prober, dst netaddr.Addr) *AugmentedTrace {
	fp := fingerprint.New(p)
	base := p.Traceroute(dst)
	sentBefore := p.Sent

	out := &AugmentedTrace{Dst: dst, Reached: base.Reached}
	for _, h := range base.Hops {
		out.Hops = append(out.Hops, AugmentedHop{Hop: h})
	}

	// Walk consecutive responding hop pairs (x, y).
	prev := -1
	for i := range out.Hops {
		if out.Hops[i].Anonymous() {
			continue
		}
		if prev < 0 {
			prev = i
			continue
		}
		x, y := &out.Hops[prev], &out.Hops[i]
		prev = i

		trigger, rtl := detect(fp, x, y)
		if trigger == TriggerNone {
			continue
		}
		x.Trigger = trigger
		x.RTLAEstimate = rtl
		rev := Reveal(p, x.Addr, y.Addr)
		if len(rev.Hops) > 0 {
			x.Hidden = rev.Hops
			x.Technique = rev.Technique
		}
	}
	out.ExtraProbes = p.Sent - sentBefore
	return out
}

// detect applies the two analytical triggers to a hop pair. Hops already
// carrying RFC 4950 labels belong to an explicit tunnel: there is nothing
// to reveal, and their replies detour via the tunnel tail, which would
// inflate FRPLA into a false positive.
func detect(fp *fingerprint.Fingerprinter, x, y *AugmentedHop) (Trigger, int) {
	if x.Labeled() || y.Labeled() {
		return TriggerNone, 0
	}
	fy, okY := fp.FromHop(y.Hop)
	if okY && fy.Class == fingerprint.JuniperLike {
		if rtl := RTLA(y.ReplyTTL, fy.EchoReplyTTL); rtl > 0 {
			return TriggerRTLA, rtl
		}
	}
	fx, okX := fp.FromHop(x.Hop)
	if !okX || !okY {
		return TriggerNone, 0
	}
	sx, okSX := FRPLA(x.Hop, fx.Signature.TimeExceeded)
	sy, okSY := FRPLA(y.Hop, fy.Signature.TimeExceeded)
	if !okSX || !okSY {
		return TriggerNone, 0
	}
	// Primary signal: the asymmetry jumps across the pair. Secondary: the
	// far hop's absolute asymmetry is tunnel-sized and grew — the jump
	// alone undercounts when the reply's originator is not the return
	// tunnel's ingress (the LSE starts at 255 while the IP TTL has already
	// been decremented, so min() leaks fewer hops; with enough offset the
	// leak vanishes entirely, which is why a trace across two invisible
	// ASes shows the middle LERs with dampened asymmetry).
	if sy.RFA()-sx.RFA() >= frplaJump || (sy.RFA() >= frplaJump && sy.RFA() > sx.RFA()) {
		return TriggerFRPLA, 0
	}
	return TriggerNone, 0
}
