package reveal

import (
	"math/rand"
	"testing"
)

func sample(rfa int) RFASample {
	return RFASample{Forward: 5, Return: 5 + rfa}
}

func TestASAggregatorVerdicts(t *testing.T) {
	a := NewASAggregator()
	// AS 1: symmetric noise around 0 — not suspected.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		a.Add(1, sample(rng.Intn(3)-1))
	}
	// AS 2: shifted by ~3 — suspected.
	for i := 0; i < 100; i++ {
		a.Add(2, sample(3+rng.Intn(3)-1))
	}
	// AS 3: shifted but too few samples.
	for i := 0; i < 3; i++ {
		a.Add(3, sample(4))
	}

	v1, ok := a.Verdict(1)
	if !ok || v1.Suspected {
		t.Errorf("AS1 verdict = %+v, want not suspected", v1)
	}
	v2, ok := a.Verdict(2)
	if !ok || !v2.Suspected {
		t.Errorf("AS2 verdict = %+v, want suspected", v2)
	}
	if v2.AvgTunnelLength < 2 || v2.AvgTunnelLength > 4 {
		t.Errorf("AS2 avg tunnel length = %f, want ~3", v2.AvgTunnelLength)
	}
	v3, ok := a.Verdict(3)
	if !ok || v3.Suspected {
		t.Errorf("AS3 verdict = %+v, want suppressed by MinSamples", v3)
	}
	if _, ok := a.Verdict(99); ok {
		t.Error("verdict for unseen AS")
	}

	vs := a.Verdicts()
	if len(vs) != 3 || vs[0].ASN != 3 && vs[0].ASN != 2 {
		t.Errorf("verdict order = %+v", vs)
	}
}
