package reveal

import (
	"testing"

	"wormhole/internal/lab"
	"wormhole/internal/netaddr"
	"wormhole/internal/probe"
	"wormhole/internal/router"
)

// TestBRPRRevealsWholeTunnel drives the revelation pipeline against the
// BackwardRecursive testbed: the tunnel PE1 -> P1 -> P2 -> P3 -> PE2 must
// come back one hop per trace.
func TestBRPRRevealsWholeTunnel(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.BackwardRecursive})
	// The trace toward CE2 ends PE1, PE2, CE2: candidates X=PE1, Y=PE2.
	tr := l.Prober.Traceroute(l.CE2Left)
	cand, ok := CandidateFromTrace(tr)
	if !ok {
		t.Fatalf("no candidate from %+v", tr.Hops)
	}
	if cand.Ingress.Addr != l.PE1Left || cand.Egress.Addr != l.PE2Left {
		t.Fatalf("candidate = %s -> %s, want PE1 -> PE2", cand.Ingress.Addr, cand.Egress.Addr)
	}

	rev := Reveal(l.Prober, cand.Ingress.Addr, cand.Egress.Addr)
	if rev.Technique != TechBRPR {
		t.Errorf("technique = %s, want BRPR (steps %v)", rev.Technique, rev.Steps)
	}
	want := []netaddr.Addr{l.P1Left, l.P2Left, l.P3Left}
	if len(rev.Hops) != len(want) {
		t.Fatalf("revealed %d hops (%v), want %d", len(rev.Hops), rev.Hops, len(want))
	}
	for i, a := range want {
		if rev.Hops[i] != a {
			t.Errorf("hop %d = %s, want %s", i, rev.Hops[i], a)
		}
	}
}

// TestDPRRevealsWholeTunnel drives the ExplicitRoute scenario: one extra
// trace to the egress's incoming interface reveals everything.
func TestDPRRevealsWholeTunnel(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.ExplicitRoute})
	rev := Reveal(l.Prober, l.PE1Left, l.PE2Left)
	if rev.Technique != TechDPR {
		t.Errorf("technique = %s, want DPR (steps %v)", rev.Technique, rev.Steps)
	}
	want := []netaddr.Addr{l.P1Left, l.P2Left, l.P3Left}
	if len(rev.Hops) != len(want) {
		t.Fatalf("revealed %v, want %v", rev.Hops, want)
	}
	for i, a := range want {
		if rev.Hops[i] != a {
			t.Errorf("hop %d = %s, want %s", i, rev.Hops[i], a)
		}
	}
	if len(rev.Steps) != 1 || rev.Steps[0] != 3 {
		t.Errorf("steps = %v, want [3]", rev.Steps)
	}
}

// TestUHPRevealsNothing: the TotallyInvisible scenario defeats all
// techniques, as the paper concedes.
func TestUHPRevealsNothing(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.TotallyInvisible})
	rev := Reveal(l.Prober, l.PE1Left, l.PE2Left)
	if rev.Technique != TechNone || len(rev.Hops) != 0 {
		t.Errorf("UHP tunnel revealed %v via %s", rev.Hops, rev.Technique)
	}
}

// TestExplicitTunnelNothingNew: with ttl-propagate (Default scenario) the
// tunnel is already visible; revelation finds nothing hidden between the
// candidate pair because the trace shows the same hops.
func TestExplicitTunnelNothingNew(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.Default})
	tr := l.Prober.Traceroute(l.CE2Left)
	cand, ok := CandidateFromTrace(tr)
	if !ok {
		t.Fatal("no candidate")
	}
	// Last three responding hops are P3, PE2, CE2: X = P3, Y = PE2 —
	// adjacent routers, nothing between them.
	rev := Reveal(l.Prober, cand.Ingress.Addr, cand.Egress.Addr)
	if len(rev.Hops) != 0 {
		t.Errorf("revealed %v between adjacent hops", rev.Hops)
	}
}

func TestFRPLAOnInvisibleTunnel(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.BackwardRecursive})
	tr := l.Prober.Traceroute(l.CE2Left)
	// PE2 is hop 3 of the trace (forward length 3) but its reply crossed
	// the true 6-hop return path: RFA = 3.
	var pe2 probe.Hop
	for _, h := range tr.Hops {
		if h.Addr == l.PE2Left {
			pe2 = h
		}
	}
	s, ok := FRPLA(pe2, 255)
	if !ok {
		t.Fatal("FRPLA rejected the hop")
	}
	if s.Forward != 3 || s.Return != 6 {
		t.Errorf("forward=%d return=%d, want 3 and 6", s.Forward, s.Return)
	}
	// The return path counts all six hops (P3,P2,P1 via the min copy,
	// PE1, CE1, plus PE2 itself) while the forward trace saw only three
	// (CE1, PE1, PE2): RFA = +3, exactly the hidden tunnel length.
	if s.RFA() != 3 {
		t.Errorf("RFA = %d, want 3", s.RFA())
	}
}

func TestFRPLAOnSymmetricPath(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.Default})
	tr := l.Prober.Traceroute(l.CE2Left)
	// With the tunnel visible, forward and return lengths agree.
	var pe2 probe.Hop
	for _, h := range tr.Hops {
		if h.Addr == l.PE2Left {
			pe2 = h
		}
	}
	s, ok := FRPLA(pe2, 255)
	if !ok {
		t.Fatal("FRPLA rejected the hop")
	}
	if s.RFA() != 0 {
		t.Errorf("visible-tunnel RFA = %d, want 0", s.RFA())
	}
}

func TestFRPLARejectsBadSamples(t *testing.T) {
	if _, ok := FRPLA(probe.Hop{}, 255); ok {
		t.Error("anonymous hop accepted")
	}
	if _, ok := FRPLA(probe.Hop{Addr: netaddr.MustParseAddr("1.2.3.4"), ReplyTTL: 200}, 128); ok {
		t.Error("reply TTL above initial accepted")
	}
}

func TestRTLAGapIsTunnelLength(t *testing.T) {
	l := lab.MustBuild(lab.Options{
		Scenario:       lab.BackwardRecursive,
		PE2Personality: router.Juniper,
	})
	tr := l.Prober.Traceroute(l.CE2Left)
	var te probe.Hop
	for _, h := range tr.Hops {
		if h.Addr == l.PE2Left {
			te = h
		}
	}
	echo, ok := l.Prober.Ping(l.PE2Left, 64)
	if !ok {
		t.Fatal("ping failed")
	}
	if got := RTLA(te.ReplyTTL, echo.ReplyTTL); got != 3 {
		t.Errorf("RTLA = %d, want 3 (P1,P2,P3)", got)
	}
}

func TestRTLAZeroWithoutTunnel(t *testing.T) {
	l := lab.MustBuild(lab.Options{
		Scenario:       lab.Default,
		PE2Personality: router.Juniper,
	})
	tr := l.Prober.Traceroute(l.CE2Left)
	var te probe.Hop
	for _, h := range tr.Hops {
		if h.Addr == l.PE2Left {
			te = h
		}
	}
	echo, ok := l.Prober.Ping(l.PE2Left, 64)
	if !ok {
		t.Fatal("ping failed")
	}
	// With ttl-propagate the LSE mirrors the IP TTL: both reply types see
	// the same path length and the gap vanishes.
	if got := RTLA(te.ReplyTTL, echo.ReplyTTL); got != 0 {
		t.Errorf("RTLA = %d, want 0 on a propagating return path", got)
	}
}

func TestCandidateRequiresCompletedTrace(t *testing.T) {
	if _, ok := CandidateFromTrace(&probe.Trace{}); ok {
		t.Error("empty trace produced candidate")
	}
}

func TestTechniqueStrings(t *testing.T) {
	for tech, want := range map[Technique]string{
		TechNone: "none", TechDPR: "DPR", TechBRPR: "BRPR",
		TechEither: "DPR-or-BRPR", TechHybrid: "hybrid",
	} {
		if tech.String() != want {
			t.Errorf("%d.String() = %s, want %s", tech, tech.String(), want)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		steps []int
		total int
		want  Technique
	}{
		{nil, 0, TechNone},
		{[]int{1}, 1, TechEither},
		{[]int{3}, 3, TechDPR},
		{[]int{1, 1, 1}, 3, TechBRPR},
		{[]int{2, 1}, 3, TechHybrid},
	}
	for _, c := range cases {
		if got := classify(c.steps, c.total); got != c.want {
			t.Errorf("classify(%v,%d) = %s, want %s", c.steps, c.total, got, c.want)
		}
	}
}
