package reveal

import (
	"testing"

	"wormhole/internal/lab"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
	"wormhole/internal/probe"
	"wormhole/internal/router"
)

// Churn-shaped traces: topology churn captured mid-trace produces hop
// sequences a converged network never shows — reconvergence micro-loops
// (the same pair of LSRs answering alternating TTLs), transiently
// anonymous hops (a blackholed TTL during a failure window), and
// duplicate consecutive responders. The revelation pipeline consumes raw
// traces, so it must stay sane on all of them.

func churnHop(a netaddr.Addr, ttl uint8, icmp uint8) probe.Hop {
	return probe.Hop{ProbeTTL: ttl, Addr: a, ReplyTTL: 250, ICMPType: icmp}
}

func churnAddr(n byte) netaddr.Addr {
	return netaddr.AddrFrom4(203, 0, 113, n)
}

// TestHopsBetweenLoopDedupes pins the micro-loop shape: a trace that
// captured a reconvergence loop (X, A, B, A, B, Y) must reveal each LSR
// once, in first-seen order — not once per loop turn.
func TestHopsBetweenLoopDedupes(t *testing.T) {
	x, a, b, y := churnAddr(1), churnAddr(2), churnAddr(3), churnAddr(4)
	tr := &probe.Trace{Reached: true}
	for i, ad := range []netaddr.Addr{x, a, b, a, b, y} {
		tr.Hops = append(tr.Hops, churnHop(ad, uint8(i+1), packet.ICMPTimeExceeded))
	}
	known := map[netaddr.Addr]bool{x: true, y: true}
	got := hopsBetween(tr, x, y, known)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("looped trace revealed %v, want [%s %s]", got, a, b)
	}
}

// TestHopsBetweenTransientlyAnonymousIngress pins the fallback: when the
// failure window blackholes the TTL at which X would answer, the trace no
// longer proves it passes through X and must reveal nothing.
func TestHopsBetweenTransientlyAnonymousIngress(t *testing.T) {
	x, a, y := churnAddr(1), churnAddr(2), churnAddr(4)
	tr := &probe.Trace{Reached: true, Hops: []probe.Hop{
		{ProbeTTL: 1}, // X's slot: anonymous this pass
		churnHop(a, 2, packet.ICMPTimeExceeded),
		churnHop(y, 3, packet.ICMPTimeExceeded),
	}}
	if got := hopsBetween(tr, x, y, map[netaddr.Addr]bool{x: true, y: true}); got != nil {
		t.Fatalf("trace that skipped X revealed %v", got)
	}
}

// TestHopsBetweenLoopThroughTarget pins the diamond/loop shape where the
// target itself answers twice (reconvergence swung the path back through
// it): the span must run to the *last* target occurrence, and X
// re-occurrences inside it must not be re-revealed.
func TestHopsBetweenLoopThroughTarget(t *testing.T) {
	x, a, y, b := churnAddr(1), churnAddr(2), churnAddr(4), churnAddr(5)
	tr := &probe.Trace{Reached: true}
	for i, ad := range []netaddr.Addr{x, a, y, x, b, y} {
		tr.Hops = append(tr.Hops, churnHop(ad, uint8(i+1), packet.ICMPTimeExceeded))
	}
	known := map[netaddr.Addr]bool{x: true, y: true}
	got := hopsBetween(tr, x, y, known)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("revealed %v, want [%s %s]", got, a, b)
	}
}

// TestCandidateRejectsDegenerateChurnPairs pins the X==Y and Y==D guards:
// a transient that makes consecutive TTLs hit the same router must not
// produce a candidate that sends the revelation walking between an
// address and itself.
func TestCandidateRejectsDegenerateChurnPairs(t *testing.T) {
	x, y, d := churnAddr(1), churnAddr(2), churnAddr(3)
	mk := func(addrs ...netaddr.Addr) *probe.Trace {
		tr := &probe.Trace{Reached: true}
		for i, a := range addrs {
			icmp := uint8(packet.ICMPTimeExceeded)
			if i == len(addrs)-1 {
				icmp = packet.ICMPEchoReply
			}
			tr.Hops = append(tr.Hops, churnHop(a, uint8(i+1), icmp))
		}
		return tr
	}
	if _, ok := CandidateFromTrace(mk(y, y, d)); ok {
		t.Error("X==Y transient accepted as candidate")
	}
	if _, ok := CandidateFromTrace(mk(x, d, d)); ok {
		t.Error("Y==D transient accepted as candidate")
	}
	if c, ok := CandidateFromTrace(mk(x, y, d)); !ok || c.Ingress.Addr != x || c.Egress.Addr != y {
		t.Errorf("clean tail rejected: %+v ok=%v", c, ok)
	}
}

// TestCandidateSkipsTransientAnonymousHops pins candidate extraction over
// a trace with blackholed TTLs: anonymous slots are skipped, and the last
// three *responding* hops form the pair.
func TestCandidateSkipsTransientAnonymousHops(t *testing.T) {
	x, y, d := churnAddr(1), churnAddr(2), churnAddr(3)
	tr := &probe.Trace{Reached: true, Hops: []probe.Hop{
		churnHop(churnAddr(9), 1, packet.ICMPTimeExceeded),
		{ProbeTTL: 2}, // failure-window blackhole
		churnHop(x, 3, packet.ICMPTimeExceeded),
		{ProbeTTL: 4},
		churnHop(y, 5, packet.ICMPTimeExceeded),
		churnHop(d, 6, packet.ICMPEchoReply),
	}}
	c, ok := CandidateFromTrace(tr)
	if !ok || c.Ingress.Addr != x || c.Egress.Addr != y {
		t.Fatalf("candidate %+v ok=%v, want %s -> %s", c, ok, x, y)
	}
}

// labLink returns the netsim link joining two lab routers.
func labLink(t *testing.T, a, b *router.Router) *netsim.Link {
	t.Helper()
	for _, ifc := range a.Ifaces() {
		if r := ifc.Remote(); r != nil {
			if rr, ok := r.Owner.(*router.Router); ok && rr == b {
				return ifc.Link
			}
		}
	}
	t.Fatalf("no link between %s and %s", a.Name(), b.Name())
	return nil
}

// TestRevealSurvivesMidRecursionFailure drives the full BRPR recursion
// against the real engine while a churn event fails the PE1-P1 link
// after the first re-trace: the recursion must stop cleanly on the
// unreachable re-trace, keep only the hops proven before the failure,
// and never spin to the recursion bound.
func TestRevealSurvivesMidRecursionFailure(t *testing.T) {
	// A twin lab measures how many probes the first re-trace (to Y =
	// PE2Left) costs, so the failure lands deterministically right after
	// it.
	measure := lab.MustBuild(lab.Options{Scenario: lab.BackwardRecursive})
	measure.Prober.Traceroute(measure.PE2Left)
	firstTrace := measure.Prober.Sent

	l := lab.MustBuild(lab.Options{Scenario: lab.BackwardRecursive})

	link := labLink(t, l.PE1, l.P1)
	l.Net.ChurnBegin([]netsim.ChurnEvent{{
		Tick:       firstTrace,
		Kind:       "fail",
		EvictScope: []netsim.Node{l.PE1, l.P1},
		Apply:      func() { link.Up = false },
	}}, false)

	rev := Reveal(l.Prober, l.PE1Left, l.PE2Left)
	l.Net.ChurnEnd()

	// The first trace (to PE2Left) revealed P3; the second (to P3Left)
	// died on the failed link and ended the recursion.
	if len(rev.Hops) != 1 || rev.Hops[0] != l.P3Left {
		t.Fatalf("revealed %v across a mid-recursion failure, want [%s]", rev.Hops, l.P3Left)
	}
	if rev.Technique != TechEither {
		t.Errorf("technique = %s, want DPR-or-BRPR for a single proven hop", rev.Technique)
	}
	if rev.Probes > 3 {
		t.Errorf("recursion spent %d traces against a dead path, want early stop", rev.Probes)
	}
}

// TestRevealAfterRepairMatchesPristine pins the repair guarantee at the
// revelation level: failing and repairing a tunnel link around an initial
// trace leaves a later revelation identical to one on an untouched lab.
func TestRevealAfterRepairMatchesPristine(t *testing.T) {
	pristine := lab.MustBuild(lab.Options{Scenario: lab.BackwardRecursive})
	want := Reveal(pristine.Prober, pristine.PE1Left, pristine.PE2Left)

	l := lab.MustBuild(lab.Options{Scenario: lab.BackwardRecursive})
	link := labLink(t, l.P1, l.P2)
	l.Net.ChurnBegin([]netsim.ChurnEvent{
		{Tick: 0, Kind: "fail", EvictScope: []netsim.Node{l.P1, l.P2}, Apply: func() { link.Up = false }},
		{Tick: 2, Kind: "repair", EvictScope: []netsim.Node{l.P1, l.P2}, Apply: func() { link.Up = true }},
	}, false)
	l.Prober.Traceroute(l.CE2Left) // burns through the fail/repair window
	l.Net.ChurnEnd()

	got := Reveal(l.Prober, l.PE1Left, l.PE2Left)
	if len(got.Hops) != len(want.Hops) || got.Technique != want.Technique {
		t.Fatalf("post-repair revelation %v (%s), pristine %v (%s)",
			got.Hops, got.Technique, want.Hops, want.Technique)
	}
	for i := range want.Hops {
		if got.Hops[i] != want.Hops[i] {
			t.Errorf("hop %d: %s vs pristine %s", i, got.Hops[i], want.Hops[i])
		}
	}
}
