package reveal

import (
	"testing"
	"time"

	"wormhole/internal/igp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/probe"
	"wormhole/internal/router"
	"wormhole/internal/rsvpte"
)

// Sec. 3.4 warns that FRPLA "faces the risk of producing false positives
// (a tunnel length of X hops is inferred because the return path has X
// more hops than the forward one due to routing asymmetry)". This test
// constructs exactly that situation — a VISIBLE network whose return path
// detours two extra hops via a TE tunnel — and shows the per-trace FRPLA
// reading a positive shift with zero hidden hops, while the revelation
// process correctly finds nothing.
func TestFRPLAFalsePositiveFromAsymmetry(t *testing.T) {
	// vp - a - {b | c - d} - e - h. Forward: a-b-e (short). Return: TE
	// tunnel steers e's traffic for the VP prefix via d-c (long), with
	// ttl-propagate ON so nothing is hidden.
	net := netsim.New(17)
	cfg := router.Config{MPLSEnabled: true, TTLPropagate: true}
	mk := func(name string, i int) *router.Router {
		r := router.New(name, router.Cisco, cfg)
		r.SetLoopback(netaddr.AddrFrom4(192, 168, 99, byte(i+1)))
		net.AddNode(r)
		if err := net.RegisterIface(r.Loopback()); err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b, c, d, e := mk("a", 0), mk("b", 1), mk("c", 2), mk("d", 3), mk("e", 4)
	all := []*router.Router{a, b, c, d, e}
	sub := 0
	wire := func(x, y *router.Router) {
		p := netaddr.MustPrefixFrom(netaddr.AddrFrom4(10, 99, byte(sub), 0), 30)
		sub++
		xi := x.AddIface("to-"+y.Name(), p.Nth(1), p)
		yi := y.AddIface("to-"+x.Name(), p.Nth(2), p)
		net.Connect(xi, yi, time.Millisecond)
		for _, ifc := range []*netsim.Iface{xi, yi} {
			if err := net.RegisterIface(ifc); err != nil {
				t.Fatal(err)
			}
		}
	}
	wire(a, b)
	wire(b, e)
	wire(a, c)
	wire(c, d)
	wire(d, e)

	vpP := netaddr.MustParsePrefix("10.99.100.0/30")
	vp := netsim.NewHost("vp", vpP.Nth(2), vpP)
	net.AddNode(vp)
	ai := a.AddIface("to-vp", vpP.Nth(1), vpP)
	net.Connect(ai, vp.If, time.Millisecond)
	hP := netaddr.MustParsePrefix("10.99.101.0/30")
	h := netsim.NewHost("h", hP.Nth(2), hP)
	net.AddNode(h)
	ei := e.AddIface("to-h", hP.Nth(1), hP)
	net.Connect(ei, h.If, time.Millisecond)
	for _, ifc := range []*netsim.Iface{ai, vp.If, ei, h.If} {
		if err := net.RegisterIface(ifc); err != nil {
			t.Fatal(err)
		}
	}
	dom := &igp.Domain{Routers: all}
	if _, err := dom.Compute(); err != nil {
		t.Fatal(err)
	}
	// The asymmetry: e's replies toward the VP detour via d and c.
	if err := rsvpte.Signal(&rsvpte.Tunnel{
		Name: "return-detour",
		Path: []*router.Router{e, d, c, a},
		FEC:  vpP,
	}); err != nil {
		t.Fatal(err)
	}

	prober := probe.New(net, vp)
	tr := prober.Traceroute(h.Addr())
	if !tr.Reached {
		t.Fatalf("not reached: %+v", tr.Hops)
	}
	var eHop probe.Hop
	for _, hop := range tr.Hops {
		if owner, ok := net.OwnerOf(hop.Addr); ok && owner.Owner == e {
			eHop = hop
		}
	}
	if eHop.Anonymous() {
		t.Fatal("e not observed")
	}
	s, ok := FRPLA(eHop, 255)
	if !ok {
		t.Fatal("FRPLA rejected the hop")
	}
	// The per-trace reading claims hidden hops...
	if s.RFA() < 1 {
		t.Fatalf("RFA = %d, expected a positive false signal from asymmetry", s.RFA())
	}
	// ...but revelation (correctly) finds nothing between a and e's
	// predecessors: there IS no hidden tunnel.
	cand, ok := CandidateFromTrace(tr)
	if !ok {
		t.Fatal("no candidate")
	}
	rev := Reveal(prober, cand.Ingress.Addr, cand.Egress.Addr)
	if len(rev.Hops) != 0 {
		t.Errorf("revelation invented hops on an asymmetric but visible path: %v", rev.Hops)
	}
	// This is why Sec. 3.4 mandates AS-scale aggregation for FRPLA: a
	// single positive sample is not evidence.
	agg := NewASAggregator()
	agg.Add(99, s)
	if v, _ := agg.Verdict(99); v.Suspected {
		t.Error("aggregator flagged an AS on one asymmetric sample")
	}
}
