package reveal

import (
	"testing"

	"wormhole/internal/lab"
	"wormhole/internal/netaddr"
)

// TestDoubleTunnelCampaignHeuristicSeesOnlyLast reproduces the limitation
// the paper states in Sec. 7: "when a trace goes through several invisible
// tunnels, our current set of techniques only reveal the last one" — the
// X, Y, D candidate heuristic looks at the final hops only.
func TestDoubleTunnelCampaignHeuristicSeesOnlyLast(t *testing.T) {
	l := lab.MustBuildDouble()
	tr := l.Prober.Traceroute(l.CE2Left)
	if !tr.Reached {
		t.Fatalf("not reached: %+v", tr.Hops)
	}
	// Both tunnels compressed: CE1, PE1a, PE2a, PE1b, PE2b, CE2.
	var seen []netaddr.Addr
	for _, h := range tr.Hops {
		if !h.Anonymous() {
			seen = append(seen, h.Addr)
		}
	}
	if len(seen) != 6 {
		t.Fatalf("visible hops = %v, want 6 (both tunnels hidden)", seen)
	}

	cand, ok := CandidateFromTrace(tr)
	if !ok {
		t.Fatal("no candidate")
	}
	// The candidate is the LAST tunnel (AS3's PE1b -> PE2b).
	if cand.Ingress.Addr != l.PE1bLeft || cand.Egress.Addr != l.PE2bLeft {
		t.Fatalf("candidate = %s -> %s, want the second AS's pair", cand.Ingress.Addr, cand.Egress.Addr)
	}
	rev := Reveal(l.Prober, cand.Ingress.Addr, cand.Egress.Addr)
	if len(rev.Hops) != 2 {
		t.Fatalf("revealed %v, want P1b, P2b", rev.Hops)
	}
	// The first tunnel's interior stays hidden under this heuristic.
	for _, h := range rev.Hops {
		if h == l.P1aLeft || h == l.P2aLeft {
			t.Errorf("first tunnel's hop %s revealed by the last-tunnel heuristic", h)
		}
	}
}

// TestDoubleTunnelAugmentedTracerouteRevealsBoth shows the TNT-style
// tracer lifting that limitation: triggers fire at every suspicious hop
// pair, so both tunnels are revealed in one pass.
func TestDoubleTunnelAugmentedTracerouteRevealsBoth(t *testing.T) {
	l := lab.MustBuildDouble()
	at := AugmentedTraceroute(l.Prober, l.CE2Left)
	if !at.Reached {
		t.Fatal("not reached")
	}
	hidden := map[netaddr.Addr]bool{}
	for _, h := range at.Hops {
		for _, a := range h.Hidden {
			hidden[a] = true
		}
	}
	for _, want := range []netaddr.Addr{l.P1aLeft, l.P2aLeft, l.P1bLeft, l.P2bLeft} {
		if !hidden[want] {
			t.Errorf("hidden hop %s not revealed (got %v)", want, hidden)
		}
	}
	// Full path: 6 visible + 4 hidden.
	if at.PathLength() != 10 {
		t.Errorf("PathLength = %d, want 10", at.PathLength())
	}
}
