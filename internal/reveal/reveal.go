// Package reveal implements the paper's contribution: the four
// complementary techniques for detecting and revealing invisible MPLS
// tunnels.
//
//   - FRPLA (Forward/Return Path Length Analysis) compares forward and
//     return path lengths: invisible forward tunnels hide hops from the
//     probe TTL while the stateless min(IP-TTL, LSE-TTL) copy at the
//     return tunnel's penultimate hop leaks them into the reply TTL, so
//     the Return-Forward Asymmetry (RFA) distribution of a tunneling AS
//     shifts positive.
//   - RTLA (Return Tunnel Length Analysis) sharpens this for <255,64>
//     (Juniper-like) egress routers: time-exceeded replies start at 255
//     and pick up the min copy, echo replies start at 64 and never do, so
//     the difference of the two measured return lengths is *exactly* the
//     return tunnel length.
//   - DPR (Direct Path Revelation) targets the egress LER's incoming
//     interface: when that prefix has no LDP label (Juniper default /
//     filtered Cisco), the probe follows the plain IGP route and the
//     whole hidden LSP appears in one trace.
//   - BRPR (Backward Recursive Path Revelation) exploits PHP with
//     all-prefix LDP: tracing toward the egress reveals the LSP's last
//     hop (the penultimate router pops one FEC earlier), and recursing
//     toward each newly revealed address walks the tunnel backward to the
//     ingress.
package reveal

import (
	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
	"wormhole/internal/probe"
)

// Technique labels how a tunnel's content was revealed.
type Technique uint8

const (
	// TechNone: revelation failed.
	TechNone Technique = iota
	// TechDPR: the whole tunnel appeared in a single extra trace.
	TechDPR
	// TechBRPR: the tunnel was walked backward one hop per trace.
	TechBRPR
	// TechEither: a single-LSR tunnel — DPR and BRPR are
	// indistinguishable (the paper's "DPR or BRPR" row).
	TechEither
	// TechHybrid: parts came from a DPR-style multi-hop shot and parts
	// from recursion (the paper's "hybrid DPR/BRPR" row).
	TechHybrid
)

func (t Technique) String() string {
	switch t {
	case TechDPR:
		return "DPR"
	case TechBRPR:
		return "BRPR"
	case TechEither:
		return "DPR-or-BRPR"
	case TechHybrid:
		return "hybrid"
	default:
		return "none"
	}
}

// Revelation is the outcome of the recursive revelation process for one
// candidate ingress-egress pair.
type Revelation struct {
	// Ingress (X) and Egress (Y) bound the suspected invisible tunnel.
	Ingress, Egress netaddr.Addr
	// Hops are the revealed LSR addresses, ordered ingress to egress.
	Hops []netaddr.Addr
	// Technique classifies the successful method.
	Technique Technique
	// Probes counts the additional traceroutes spent.
	Probes int
	// Steps records how many new hops each re-trace contributed (used by
	// the classification and by validation).
	Steps []int
}

// maxRecursion bounds the backward walk; real LSPs rarely exceed a dozen
// hops (Fig. 5), so 32 is generous.
const maxRecursion = 32

// Reveal runs the Sec. 4 revelation process for a candidate pair (X, Y):
// trace Y; if the trace ends X, H1..Hn, Y the hops are revealed; recurse
// toward the hop nearest X until nothing new appears or the trace no
// longer passes through X.
func Reveal(p *probe.Prober, x, y netaddr.Addr) *Revelation {
	rev := &Revelation{Ingress: x, Egress: y}
	known := map[netaddr.Addr]bool{x: true, y: true}
	target := y

	for iter := 0; iter < maxRecursion; iter++ {
		tr := p.Traceroute(target)
		rev.Probes++
		newHops := hopsBetween(tr, x, target, known)
		if newHops == nil {
			break
		}
		rev.Steps = append(rev.Steps, len(newHops))
		for _, h := range newHops {
			known[h] = true
		}
		// The newly revealed hops sit between X and the previous batch.
		rev.Hops = append(newHops, rev.Hops...)
		target = newHops[0]
	}

	rev.Technique = classify(rev.Steps, len(rev.Hops))
	return rev
}

// hopsBetween extracts the responding addresses strictly between x and
// target from a completed trace, in path order, dropping already-known
// ones. It returns nil when the trace failed, did not pass through x, did
// not reach target, or revealed nothing new.
func hopsBetween(tr *probe.Trace, x, target netaddr.Addr, known map[netaddr.Addr]bool) []netaddr.Addr {
	if !tr.Reached {
		return nil
	}
	seq := make([]netaddr.Addr, 0, len(tr.Hops))
	for _, h := range tr.Hops {
		if !h.Anonymous() {
			seq = append(seq, h.Addr)
		}
	}
	xi := -1
	ti := -1
	for i, a := range seq {
		if a == x && xi < 0 {
			xi = i
		}
		if a == target {
			ti = i
		}
	}
	if xi < 0 || ti < 0 || ti <= xi {
		return nil
	}
	var out []netaddr.Addr
	for _, a := range seq[xi+1 : ti] {
		if !known[a] {
			// Marking as we emit also dedupes within this trace: a
			// reconvergence loop (A B A B ...) captured mid-churn must not
			// inject the same LSR twice into the revealed path.
			known[a] = true
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// classify maps the per-step revelation counts to a technique label.
func classify(steps []int, total int) Technique {
	switch {
	case total == 0:
		return TechNone
	case total == 1:
		return TechEither
	}
	if len(steps) == 1 {
		return TechDPR // everything in one extra trace
	}
	for _, s := range steps {
		if s != 1 {
			return TechHybrid
		}
	}
	return TechBRPR
}

// --- Length analyses ---

// RFASample is one Return-Forward Asymmetry observation for FRPLA.
type RFASample struct {
	// Hop is the observed interface the sample is about.
	Hop netaddr.Addr
	// Forward is the probe TTL at which the hop answered: the forward
	// path length, underestimating across invisible tunnels.
	Forward int
	// Return is the reply path length inferred from the reply TTL and the
	// router's (rounded) initial TTL, counting the responder itself so
	// that a symmetric path yields RFA 0; it includes return tunnel hops
	// when the min copy applies.
	Return int
}

// RFA returns the asymmetry (return minus forward length).
func (s RFASample) RFA() int { return s.Return - s.Forward }

// FRPLA derives an RFA sample from a traceroute hop. initialTTL is the
// router's inferred time-exceeded initial TTL (255 for Cisco/Juniper;
// fingerprinting supplies it). ok is false for anonymous hops or echo
// replies with inconsistent TTLs.
func FRPLA(h probe.Hop, initialTTL uint8) (RFASample, bool) {
	if h.Anonymous() || initialTTL == 0 || h.ReplyTTL > initialTTL {
		return RFASample{}, false
	}
	return RFASample{
		Hop:     h.Addr,
		Forward: int(h.ProbeTTL),
		Return:  int(initialTTL-h.ReplyTTL) + 1,
	}, true
}

// RTLA computes the return tunnel length for a <255,64>-signature router
// from the reply TTLs of a time-exceeded (traceroute hop) and an
// echo-reply (ping) elicited from the same address: the time-exceeded
// return length counts the return LSP (min copy), the echo return length
// does not (64 stays below the LSE TTL), and the gap is the tunnel.
func RTLA(teReplyTTL, echoReplyTTL uint8) int {
	teLen := int(255) - int(teReplyTTL)
	echoLen := int(64) - int(echoReplyTTL)
	return teLen - echoLen
}

// --- Candidate extraction ---

// Candidate is a suspected invisible-tunnel endpoint pair taken from a
// trace per Sec. 4: the two responding hops X, Y immediately preceding the
// destination D.
type Candidate struct {
	Ingress, Egress probe.Hop
}

// CandidateFromTrace inspects the last three responding hops X, Y, D of a
// completed trace and returns (X, Y). ok is false when the trace is too
// short or did not complete.
func CandidateFromTrace(tr *probe.Trace) (Candidate, bool) {
	if !tr.Reached {
		return Candidate{}, false
	}
	var resp []probe.Hop
	for _, h := range tr.Hops {
		if !h.Anonymous() {
			resp = append(resp, h)
		}
	}
	if len(resp) < 3 {
		return Candidate{}, false
	}
	d := resp[len(resp)-1]
	y := resp[len(resp)-2]
	x := resp[len(resp)-3]
	if d.ICMPType != packet.ICMPEchoReply && d.ICMPType != packet.ICMPDestUnreach {
		return Candidate{}, false
	}
	if x.Addr == y.Addr || y.Addr == d.Addr {
		// A reconvergence transient can make consecutive TTLs hit the same
		// router; a degenerate X==Y (or Y==D) pair would send the
		// revelation walking between an address and itself.
		return Candidate{}, false
	}
	return Candidate{Ingress: x, Egress: y}, true
}
