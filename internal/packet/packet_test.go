package packet

import (
	"testing"
	"testing/quick"

	"wormhole/internal/netaddr"
)

func TestLSEWireRoundTrip(t *testing.T) {
	f := func(label uint32, tc uint8, bottom bool, ttl uint8) bool {
		e := LSE{Label: label % (MaxLabel + 1), TC: tc % 8, Bottom: bottom, TTL: ttl}
		b, err := e.AppendWire(nil)
		if err != nil || len(b) != 4 {
			return false
		}
		back, err := DecodeLSE(b)
		return err == nil && back == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLSERejectsBadLabel(t *testing.T) {
	if _, err := (LSE{Label: MaxLabel + 1}).AppendWire(nil); err == nil {
		t.Error("oversized label accepted")
	}
	if _, err := (LSE{TC: 8}).AppendWire(nil); err == nil {
		t.Error("oversized TC accepted")
	}
}

func TestLabelStackPushPop(t *testing.T) {
	var s LabelStack
	s = s.Push(LSE{Label: 100, TTL: 255})
	s = s.Push(LSE{Label: 200, TTL: 254})
	if len(s) != 2 || s[0].Label != 200 {
		t.Fatalf("stack after pushes: %v", s)
	}
	if s[0].Bottom || !s[1].Bottom {
		t.Errorf("bottom flags not normalized: %v", s)
	}
	top, rest, ok := s.Pop()
	if !ok || top.Label != 200 || len(rest) != 1 {
		t.Fatalf("Pop = %v %v %v", top, rest, ok)
	}
	if !rest[0].Bottom {
		t.Error("remaining entry must be bottom")
	}
	_, _, ok = LabelStack{}.Pop()
	if ok {
		t.Error("Pop on empty stack reported ok")
	}
}

func TestLabelStackWireRoundTrip(t *testing.T) {
	s := LabelStack{{Label: 19, TTL: 1}, {Label: 301, TC: 5, TTL: 7}, {Label: 42, TTL: 255}}
	b, err := s.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, n, err := DecodeLabelStack(b)
	if err != nil || n != 12 {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	for i := range s {
		want := s[i]
		want.Bottom = i == len(s)-1
		if back[i] != want {
			t.Errorf("entry %d = %v, want %v", i, back[i], want)
		}
	}
}

func TestDecodeLabelStackTruncated(t *testing.T) {
	s := LabelStack{{Label: 5}, {Label: 6}}
	b, _ := s.AppendWire(nil)
	if _, _, err := DecodeLabelStack(b[:5]); err == nil {
		t.Error("truncated stack decoded")
	}
	// A stack that never sets bottom must not loop forever.
	nb := make([]byte, 4*100)
	if _, _, err := DecodeLabelStack(nb); err == nil {
		t.Error("bottomless stack decoded")
	}
}

func TestIPv4WireRoundTrip(t *testing.T) {
	h := IPv4{
		TOS:      0,
		ID:       0xbeef,
		DontFrag: true,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      netaddr.MustParseAddr("10.0.0.1"),
		Dst:      netaddr.MustParseAddr("192.0.2.9"),
	}
	b := h.AppendWire(nil, 12)
	if len(b) != 20 {
		t.Fatalf("header length %d", len(b))
	}
	if Checksum(b) != 0 {
		t.Errorf("header checksum does not verify: %x", Checksum(b))
	}
	back, total, off, err := DecodeIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Errorf("decoded %+v, want %+v", back, h)
	}
	if total != 32 || off != 20 {
		t.Errorf("total=%d off=%d", total, off)
	}
}

func TestDecodeIPv4Errors(t *testing.T) {
	if _, _, _, err := DecodeIPv4([]byte{0x45, 0}); err == nil {
		t.Error("short header decoded")
	}
	b := IPv4{TTL: 1, Protocol: ProtoICMP}.AppendWire(nil, 0)
	b[0] = 0x65 // version 6
	if _, _, _, err := DecodeIPv4(b); err == nil {
		t.Error("non-IPv4 decoded")
	}
}

func TestChecksumRFC1071Example(t *testing.T) {
	// Example from RFC 1071 §3: words 0001 f203 f4f5 f6f7 sum to ddf2
	// (one's complement of 220d).
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %04x, want %04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	if got := Checksum([]byte{0xab}); got != ^uint16(0xab00) {
		t.Errorf("odd-length checksum = %04x", got)
	}
}

func echoPacket() *Packet {
	return &Packet{
		IP: IPv4{
			ID:       7,
			TTL:      2,
			Protocol: ProtoICMP,
			Src:      netaddr.MustParseAddr("10.0.0.1"),
			Dst:      netaddr.MustParseAddr("203.0.113.5"),
		},
		ICMP:       &ICMP{Type: ICMPEchoRequest, ID: 0x1234, Seq: 9},
		PayloadLen: 8,
	}
}

func TestPacketEchoRoundTrip(t *testing.T) {
	p := echoPacket()
	b, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.IP != p.IP || *back.ICMP != *p.ICMP || back.PayloadLen != p.PayloadLen {
		t.Errorf("round trip mismatch:\n got %+v %+v\nwant %+v %+v", back.IP, back.ICMP, p.IP, p.ICMP)
	}
}

func TestPacketLabeledRoundTrip(t *testing.T) {
	p := echoPacket()
	p.MPLS = LabelStack{{Label: 19, TTL: 3}}
	b, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.MPLS) != 1 || back.MPLS[0].Label != 19 || back.MPLS[0].TTL != 3 || !back.MPLS[0].Bottom {
		t.Errorf("label stack = %v", back.MPLS)
	}
}

func TestPacketUDPRoundTrip(t *testing.T) {
	p := &Packet{
		IP: IPv4{
			TTL:      30,
			Protocol: ProtoUDP,
			Src:      netaddr.MustParseAddr("10.0.0.1"),
			Dst:      netaddr.MustParseAddr("203.0.113.5"),
		},
		UDP:        &UDP{SrcPort: 33434, DstPort: 33435},
		PayloadLen: 20,
	}
	b, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if *back.UDP != *p.UDP || back.PayloadLen != 20 {
		t.Errorf("UDP round trip: %+v len=%d", back.UDP, back.PayloadLen)
	}
}

func timeExceeded(withExt bool) *ICMP {
	m := &ICMP{
		Type: ICMPTimeExceeded,
		Code: CodeTTLExpired,
		Quote: &Quote{
			IP: IPv4{
				TTL:      1,
				Protocol: ProtoICMP,
				ID:       77,
				Src:      netaddr.MustParseAddr("10.0.0.1"),
				Dst:      netaddr.MustParseAddr("203.0.113.5"),
			},
			ICMPType: ICMPEchoRequest,
			ID:       0xabcd,
			Seq:      3,
		},
	}
	if withExt {
		m.Ext = &Extension{LabelStack: LabelStack{{Label: 19, TTL: 1, Bottom: true}}}
	}
	return m
}

func TestICMPTimeExceededRoundTrip(t *testing.T) {
	for _, withExt := range []bool{false, true} {
		m := timeExceeded(withExt)
		b, err := m.AppendWire(nil)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeICMP(b)
		if err != nil {
			t.Fatalf("withExt=%v: %v", withExt, err)
		}
		if back.Type != m.Type || back.Code != m.Code {
			t.Errorf("type/code = %d/%d", back.Type, back.Code)
		}
		if back.Quote == nil || *back.Quote != *m.Quote {
			t.Errorf("quote = %+v, want %+v", back.Quote, m.Quote)
		}
		if withExt {
			if back.Ext == nil || len(back.Ext.LabelStack) != 1 || back.Ext.LabelStack[0].Label != 19 {
				t.Errorf("extension = %+v", back.Ext)
			}
		} else if back.Ext != nil {
			t.Error("unexpected extension decoded")
		}
	}
}

func TestICMPExtensionRequiresQuotePadding(t *testing.T) {
	m := timeExceeded(true)
	b, err := m.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	// RFC 4884: length field (byte 5) counts 32-bit words of the padded
	// quote, which must be at least 128 bytes.
	if int(b[5])*4 < 128 {
		t.Errorf("quote length %d bytes < 128", int(b[5])*4)
	}
}

func TestICMPErrorWithoutQuoteRejected(t *testing.T) {
	m := &ICMP{Type: ICMPTimeExceeded}
	if _, err := m.AppendWire(nil); err == nil {
		t.Error("error message without quote serialized")
	}
}

func TestDecodeICMPTruncated(t *testing.T) {
	m := timeExceeded(true)
	b, _ := m.AppendWire(nil)
	for _, cut := range []int{3, 9, 20, len(b) - 3} {
		if _, err := DecodeICMP(b[:cut]); err == nil {
			t.Errorf("truncated at %d decoded", cut)
		}
	}
}

func TestPacketClone(t *testing.T) {
	p := echoPacket()
	p.MPLS = LabelStack{{Label: 5, TTL: 9}}
	c := p.Clone()
	c.MPLS[0].TTL = 1
	c.ICMP.Seq = 99
	c.IP.TTL = 0
	if p.MPLS[0].TTL != 9 || p.ICMP.Seq != 9 || p.IP.TTL != 2 {
		t.Error("Clone aliases the original")
	}
}

func TestQuoteICMPChecksumVerifies(t *testing.T) {
	m := timeExceeded(false)
	b, err := m.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	if Checksum(b) != 0 {
		t.Errorf("ICMP checksum does not verify")
	}
}

func TestPacketString(t *testing.T) {
	p := echoPacket()
	s := p.String()
	for _, want := range []string{"10.0.0.1", "203.0.113.5", "ttl=2", "icmp"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestDecodeNeverPanics feeds random bytes and mutated valid packets into
// every decoder: errors are fine, panics are not.
func TestDecodeNeverPanics(t *testing.T) {
	valid, err := (&Packet{
		MPLS: LabelStack{{Label: 30, TTL: 9}},
		IP: IPv4{
			TTL:      7,
			Protocol: ProtoICMP,
			Src:      netaddr.MustParseAddr("10.0.0.1"),
			Dst:      netaddr.MustParseAddr("10.0.0.2"),
		},
		ICMP: timeExceeded(true),
	}).Serialize()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, cut uint16, flip uint16, val byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decode panicked: %v", r)
			}
		}()
		b := append([]byte(nil), valid...)
		if len(b) > 0 {
			b = b[:int(cut)%(len(b)+1)]
		}
		if len(b) > 0 {
			b[int(flip)%len(b)] = val
		}
		Decode(b)
		DecodeICMP(b)
		DecodeIPv4(b)
		DecodeLabelStack(b)
		DecodeUDP(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeRandomBytes: pure noise must never panic either.
func TestDecodeRandomBytes(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decode panicked on %x: %v", b, r)
			}
		}()
		Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSerializeDecodeIdempotent: Decode(Serialize(p)) re-serializes to the
// identical bytes.
func TestSerializeDecodeIdempotent(t *testing.T) {
	pkts := []*Packet{
		echoPacket(),
		{
			MPLS: LabelStack{{Label: 17, TTL: 3}, {Label: 42, TTL: 200}},
			IP: IPv4{TTL: 61, Protocol: ProtoUDP,
				Src: netaddr.MustParseAddr("192.0.2.1"), Dst: netaddr.MustParseAddr("192.0.2.2")},
			UDP:        &UDP{SrcPort: 1000, DstPort: 2000},
			PayloadLen: 5,
		},
		{
			IP: IPv4{TTL: 255, Protocol: ProtoICMP,
				Src: netaddr.MustParseAddr("10.9.9.9"), Dst: netaddr.MustParseAddr("10.1.1.1")},
			ICMP: timeExceeded(true),
		},
	}
	for i, p := range pkts {
		b1, err := p.Serialize()
		if err != nil {
			t.Fatalf("pkt %d: %v", i, err)
		}
		back, err := Decode(b1)
		if err != nil {
			t.Fatalf("pkt %d decode: %v", i, err)
		}
		b2, err := back.Serialize()
		if err != nil {
			t.Fatalf("pkt %d re-serialize: %v", i, err)
		}
		if string(b1) != string(b2) {
			t.Errorf("pkt %d not idempotent:\n%x\n%x", i, b1, b2)
		}
	}
}
