package packet

import (
	"wormhole/internal/netaddr"
)

// Protocol is the IPv4 protocol number.
type Protocol uint8

// Protocol numbers used by the simulator.
const (
	ProtoICMP Protocol = 1
	ProtoTCP  Protocol = 6
	ProtoUDP  Protocol = 17
	ProtoOSPF Protocol = 89
)

func (p Protocol) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoOSPF:
		return "ospf"
	default:
		return "proto-" + itoa(int(p))
	}
}

// IPv4 is the subset of the IPv4 header the measurements care about.
// Options are not modeled (routers in the studied paths do not insert any).
type IPv4 struct {
	TOS      uint8
	ID       uint16
	DontFrag bool
	TTL      uint8
	Protocol Protocol
	Src, Dst netaddr.Addr
}

const ipv4HeaderLen = 20

// AppendWire appends the 20-byte IPv4 header (checksum included) followed
// by nothing; the caller appends the payload and must pass its length.
func (h IPv4) AppendWire(b []byte, payloadLen int) []byte {
	total := ipv4HeaderLen + payloadLen
	start := len(b)
	b = append(b,
		0x45, h.TOS,
		byte(total>>8), byte(total),
		byte(h.ID>>8), byte(h.ID),
		0, 0, // flags+fragment offset, patched below
		h.TTL, byte(h.Protocol),
		0, 0, // checksum, patched below
	)
	if h.DontFrag {
		b[start+6] = 0x40
	}
	s1, s2, s3, s4 := h.Src.Octets()
	d1, d2, d3, d4 := h.Dst.Octets()
	b = append(b, s1, s2, s3, s4, d1, d2, d3, d4)
	ck := Checksum(b[start : start+ipv4HeaderLen])
	b[start+10], b[start+11] = byte(ck>>8), byte(ck)
	return b
}

// DecodeIPv4 decodes an IPv4 header from the front of b, returning the
// header, the total datagram length from the header, and the byte offset of
// the payload.
func DecodeIPv4(b []byte) (IPv4, int, int, error) {
	if len(b) < ipv4HeaderLen {
		return IPv4{}, 0, 0, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return IPv4{}, 0, 0, errNotIPv4
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < ipv4HeaderLen || len(b) < ihl {
		return IPv4{}, 0, 0, ErrTruncated
	}
	h := IPv4{
		TOS:      b[1],
		ID:       uint16(b[4])<<8 | uint16(b[5]),
		DontFrag: b[6]&0x40 != 0,
		TTL:      b[8],
		Protocol: Protocol(b[9]),
		Src:      netaddr.AddrFrom4(b[12], b[13], b[14], b[15]),
		Dst:      netaddr.AddrFrom4(b[16], b[17], b[18], b[19]),
	}
	total := int(b[2])<<8 | int(b[3])
	return h, total, ihl, nil
}

var errNotIPv4 = errorString("packet: not an IPv4 header")

type errorString string

func (e errorString) Error() string { return string(e) }

// Checksum computes the Internet checksum (RFC 1071) over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
