package packet

import (
	"testing"
)

func poolProbe() *Packet {
	return &Packet{
		MPLS: LabelStack{{Label: 100, TTL: 5}, {Label: 200, TTL: 9, Bottom: true}},
		IP:   IPv4{TTL: 12, Protocol: ProtoICMP, Src: 0x0a000001, Dst: 0x0a000002},
		ICMP: &ICMP{
			Type: ICMPTimeExceeded, Code: 0,
			Quote: &Quote{IP: IPv4{Protocol: ProtoUDP}, ID: 33000, Seq: 33434},
			Ext:   &Extension{LabelStack: LabelStack{{Label: 300, TTL: 1, Bottom: true}}},
		},
		PayloadLen: 8,
	}
}

func TestPoolCloneIsDeepAndEqual(t *testing.T) {
	var pl Pool
	src := poolProbe()
	c := pl.Clone(src)
	if c == src || c.ICMP == src.ICMP || c.ICMP.Quote == src.ICMP.Quote || c.ICMP.Ext == src.ICMP.Ext {
		t.Fatal("pooled clone aliases the source")
	}
	if &c.MPLS[0] == &src.MPLS[0] || &c.ICMP.Ext.LabelStack[0] == &src.ICMP.Ext.LabelStack[0] {
		t.Fatal("pooled clone aliases a source label stack")
	}
	if c.String() != src.String() || c.IP != src.IP || *c.ICMP.Quote != *src.ICMP.Quote {
		t.Fatalf("clone differs: %v vs %v", c, src)
	}
	for i := range src.MPLS {
		if c.MPLS[i] != src.MPLS[i] {
			t.Fatalf("MPLS[%d] differs", i)
		}
	}
}

func TestPoolReleaseRecycles(t *testing.T) {
	var pl Pool
	c := pl.Clone(poolProbe())
	icmp, quote, ext := c.ICMP, c.ICMP.Quote, c.ICMP.Ext
	pl.Release(c)

	// The same objects come back out, zeroed.
	p2 := pl.Packet()
	if p2 != c {
		t.Fatal("released packet not recycled")
	}
	if p2.ICMP != nil || p2.UDP != nil || p2.MPLS != nil || p2.IP != (IPv4{}) {
		t.Fatalf("recycled packet not zeroed: %+v", p2)
	}
	if m := pl.ICMP(); m != icmp || m.Quote != nil || m.Ext != nil {
		t.Fatal("released ICMP not recycled zeroed")
	}
	if q := pl.Quote(); q != quote || *q != (Quote{}) {
		t.Fatal("released quote not recycled zeroed")
	}
	if e := pl.Extension(); e != ext || e.LabelStack != nil {
		t.Fatal("released extension not recycled zeroed")
	}
	// The stack backing array is recycled too.
	s := pl.Stack(2)
	if len(s) != 2 || s[0] != (LSE{}) || s[1] != (LSE{}) {
		t.Fatalf("recycled stack not zeroed: %v", s)
	}
}

func TestPoolReleaseIgnoresForeignAndAdopted(t *testing.T) {
	var pl Pool
	foreign := poolProbe() // never pooled
	pl.Release(foreign)
	if foreign.ICMP == nil {
		t.Fatal("Release zeroed a packet the pool does not own")
	}
	if len(pl.pkts) != 0 {
		t.Fatal("foreign packet entered the free list")
	}

	adopted := pl.Clone(foreign)
	pl.Adopt(adopted)
	pl.Release(adopted)
	if adopted.ICMP == nil || adopted.ICMP.Quote == nil {
		t.Fatal("Release zeroed an adopted packet")
	}
	if len(pl.pkts) != 0 {
		t.Fatal("adopted packet entered the free list")
	}
}

func TestPoolCloneAfterWarmupDoesNotAllocate(t *testing.T) {
	var pl Pool
	src := poolProbe()
	// Warm the free lists past any growth.
	for i := 0; i < 32; i++ {
		pl.Release(pl.Clone(src))
	}
	allocs := testing.AllocsPerRun(100, func() {
		pl.Release(pl.Clone(src))
	})
	if allocs != 0 {
		t.Errorf("warm Clone+Release allocates %.1f objects/op, want 0", allocs)
	}
}

func TestPushPopInPlaceMatchCopying(t *testing.T) {
	base := LabelStack{{Label: 10, TTL: 3}, {Label: 20, TTL: 4, Bottom: true}}

	want := base.Clone().Push(LSE{Label: 5, TTL: 9})
	got := base.Clone()
	got.PushInPlace(LSE{Label: 5, TTL: 9})
	if len(got) != len(want) {
		t.Fatalf("push length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("push entry %d = %v, want %v", i, got[i], want[i])
		}
	}

	topW, restW, okW := want.Pop()
	gotPop := got
	topG, okG := gotPop.PopInPlace()
	if okW != okG || topW != topG || len(gotPop) != len(restW) {
		t.Fatalf("pop mismatch: %v/%v vs %v/%v", topG, okG, topW, okW)
	}
	for i := range restW {
		if gotPop[i] != restW[i] {
			t.Fatalf("pop entry %d = %v, want %v", i, gotPop[i], restW[i])
		}
	}

	var empty LabelStack
	if _, ok := empty.PopInPlace(); ok {
		t.Fatal("PopInPlace on empty stack reported ok")
	}
}
