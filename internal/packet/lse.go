// Package packet models the wire formats the paper's measurements depend
// on: the MPLS label stack (RFC 3032), IPv4, ICMP — including the RFC 4884
// extension structure carrying the RFC 4950 MPLS label-stack object — and
// UDP.
//
// Two representations are provided, following the gopacket split between
// decoded layers and wire bytes: a struct form (Packet and the layer
// structs) that the simulator forwards directly for speed, and exact wire
// serialization/decoding used at probing boundaries and in round-trip tests
// so the formats stay honest.
package packet

import (
	"errors"
	"fmt"
)

// Label values with reserved meaning (RFC 3032 §2.1).
const (
	// LabelExplicitNull signals Ultimate Hop Popping: the egress LER asks
	// its upstream neighbors to keep one label on the stack all the way to
	// the egress, which pops it itself.
	LabelExplicitNull = 0
	// LabelRouterAlert forces the packet to the control plane.
	LabelRouterAlert = 1
	// LabelImplicitNull signals Penultimate Hop Popping: it is advertised
	// but never appears on the wire; the penultimate LSR pops the stack.
	LabelImplicitNull = 3
	// MaxLabel is the largest encodable 20-bit label.
	MaxLabel = 1<<20 - 1
)

// LSE is one MPLS Label Stack Entry: 20-bit label, 3-bit traffic class,
// bottom-of-stack flag, and an 8-bit TTL with the same purpose as the IP
// TTL (RFC 3443).
type LSE struct {
	Label  uint32
	TC     uint8
	Bottom bool
	TTL    uint8
}

// ErrTruncated reports a buffer too short for the layer being decoded.
var ErrTruncated = errors.New("packet: truncated")

// errBadLabel reports an unencodable label or traffic class.
var errBadLabel = errors.New("packet: label or TC out of range")

// AppendWire appends the 4-byte wire encoding of the LSE to b.
func (e LSE) AppendWire(b []byte) ([]byte, error) {
	if e.Label > MaxLabel || e.TC > 7 {
		return b, errBadLabel
	}
	v := e.Label<<12 | uint32(e.TC)<<9 | uint32(e.TTL)
	if e.Bottom {
		v |= 1 << 8
	}
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v)), nil
}

// DecodeLSE decodes one label stack entry from the front of b.
func DecodeLSE(b []byte) (LSE, error) {
	if len(b) < 4 {
		return LSE{}, ErrTruncated
	}
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	return LSE{
		Label:  v >> 12,
		TC:     uint8(v >> 9 & 7),
		Bottom: v>>8&1 == 1,
		TTL:    uint8(v),
	}, nil
}

// String renders the LSE the way the paper's traceroute output does.
func (e LSE) String() string {
	return fmt.Sprintf("Label %d TTL=%d", e.Label, e.TTL)
}

// LabelStack is an MPLS label stack, top entry first.
type LabelStack []LSE

// Push adds an entry on top of the stack. The Bottom flags of all entries
// are normalized (only the last entry carries the flag).
func (s LabelStack) Push(e LSE) LabelStack {
	out := make(LabelStack, 0, len(s)+1)
	out = append(out, e)
	out = append(out, s...)
	out.normalize()
	return out
}

// Pop removes the top entry, returning it and the remaining stack.
// ok is false when the stack is empty.
func (s LabelStack) Pop() (top LSE, rest LabelStack, ok bool) {
	if len(s) == 0 {
		return LSE{}, s, false
	}
	rest = make(LabelStack, len(s)-1)
	copy(rest, s[1:])
	rest.normalize()
	return s[0], rest, true
}

// PushInPlace is Push without the copy: it shifts the stack right within
// its own backing array (growing it only when capacity runs out) and
// normalizes Bottom flags. For use on packets the caller exclusively owns,
// e.g. pooled per-hop clones.
func (s *LabelStack) PushInPlace(e LSE) {
	*s = append(*s, LSE{})
	copy((*s)[1:], *s)
	(*s)[0] = e
	s.normalizeInPlace()
}

// PopInPlace is Pop without the copy: it shifts the remaining entries left
// within the same backing array. ok is false when the stack is empty.
func (s *LabelStack) PopInPlace() (top LSE, ok bool) {
	if len(*s) == 0 {
		return LSE{}, false
	}
	top = (*s)[0]
	copy(*s, (*s)[1:])
	*s = (*s)[:len(*s)-1]
	s.normalizeInPlace()
	return top, true
}

func (s *LabelStack) normalizeInPlace() {
	for i := range *s {
		(*s)[i].Bottom = i == len(*s)-1
	}
}

// Top returns the top entry without removing it.
func (s LabelStack) Top() (LSE, bool) {
	if len(s) == 0 {
		return LSE{}, false
	}
	return s[0], true
}

// Empty reports whether the stack has no entries.
func (s LabelStack) Empty() bool { return len(s) == 0 }

// Clone returns a deep copy of the stack.
func (s LabelStack) Clone() LabelStack {
	if s == nil {
		return nil
	}
	out := make(LabelStack, len(s))
	copy(out, s)
	return out
}

func (s LabelStack) normalize() {
	for i := range s {
		s[i].Bottom = i == len(s)-1
	}
}

// AppendWire appends the wire encoding of the whole stack to b.
func (s LabelStack) AppendWire(b []byte) ([]byte, error) {
	for i, e := range s {
		e.Bottom = i == len(s)-1
		var err error
		b, err = e.AppendWire(b)
		if err != nil {
			return b, err
		}
	}
	return b, nil
}

// DecodeLabelStack decodes label stack entries from b until the
// bottom-of-stack flag, returning the stack and the number of bytes read.
func DecodeLabelStack(b []byte) (LabelStack, int, error) {
	var s LabelStack
	off := 0
	for {
		e, err := DecodeLSE(b[off:])
		if err != nil {
			return nil, 0, err
		}
		off += 4
		s = append(s, e)
		if e.Bottom {
			return s, off, nil
		}
		if len(s) > 64 {
			return nil, 0, errors.New("packet: label stack implausibly deep")
		}
	}
}
