package packet

// Pool recycles Packets and their sub-objects (ICMP, Quote, Extension, UDP,
// LabelStack backing arrays) so the simulator's per-hop clones stop hitting
// the allocator. A Pool is owned by a single fabric goroutine — the netsim
// ownership assertions guarantee single-threaded use — so it needs no
// locking.
//
// Lifetime contract: a packet obtained from Packet() or Clone() belongs to
// the pool and is recycled by Release() after the receiving node returns
// (Node.Receive forbids retaining packets). Code that must keep a delivered
// packet — the prober stores matched replies and aliases their RFC 4950
// label stacks — calls Adopt() first, which permanently removes the packet
// (and everything hanging off it) from pool ownership; Release then becomes
// a no-op for it.
type Pool struct {
	pkts   []*Packet
	icmps  []*ICMP
	quotes []*Quote
	exts   []*Extension
	udps   []*UDP
	stacks []LabelStack
}

// Packet returns a zeroed pool-owned packet.
func (pl *Pool) Packet() *Packet {
	if n := len(pl.pkts); n > 0 {
		p := pl.pkts[n-1]
		pl.pkts = pl.pkts[:n-1]
		return p
	}
	return &Packet{pooled: true}
}

// ICMP returns a zeroed pool-owned ICMP message.
func (pl *Pool) ICMP() *ICMP {
	if n := len(pl.icmps); n > 0 {
		m := pl.icmps[n-1]
		pl.icmps = pl.icmps[:n-1]
		return m
	}
	return &ICMP{}
}

// Quote returns a zeroed pool-owned quote.
func (pl *Pool) Quote() *Quote {
	if n := len(pl.quotes); n > 0 {
		q := pl.quotes[n-1]
		pl.quotes = pl.quotes[:n-1]
		return q
	}
	return &Quote{}
}

// Extension returns a zeroed pool-owned extension structure.
func (pl *Pool) Extension() *Extension {
	if n := len(pl.exts); n > 0 {
		e := pl.exts[n-1]
		pl.exts = pl.exts[:n-1]
		return e
	}
	return &Extension{}
}

// UDPHeader returns a zeroed pool-owned UDP header.
func (pl *Pool) UDPHeader() *UDP {
	if n := len(pl.udps); n > 0 {
		u := pl.udps[n-1]
		pl.udps = pl.udps[:n-1]
		return u
	}
	return &UDP{}
}

// Stack returns a zeroed label stack of length n backed by recycled
// capacity when available.
func (pl *Pool) Stack(n int) LabelStack {
	if m := len(pl.stacks); m > 0 {
		s := pl.stacks[m-1]
		pl.stacks = pl.stacks[:m-1]
		if cap(s) >= n {
			s = s[:n]
			for i := range s {
				s[i] = LSE{}
			}
			return s
		}
		// Too small for this request; let it go and allocate generously.
	}
	c := n
	if c < stackSpareCap {
		c = stackSpareCap
	}
	return make(LabelStack, n, c)
}

// stackSpareCap is the minimum capacity of freshly allocated pooled stacks,
// sized so label pushes inside tunnels (outer + a couple of Under labels)
// stay in place.
const stackSpareCap = 8

// GrowStack returns s with capacity for at least n entries (length and
// contents preserved), moving the stack into pooled storage when the
// backing array must grow. Label imposition on unlabeled pooled clones
// goes through here so the push lands in recycled capacity instead of a
// fresh append allocation every time.
func (pl *Pool) GrowStack(s LabelStack, n int) LabelStack {
	if cap(s) >= n {
		return s
	}
	ns := pl.Stack(n)[:len(s)]
	copy(ns, s)
	pl.releaseStack(s)
	return ns
}

// CloneStack deep-copies a label stack into pooled storage.
func (pl *Pool) CloneStack(src LabelStack) LabelStack {
	if len(src) == 0 {
		return nil
	}
	s := pl.Stack(len(src))
	copy(s, src)
	return s
}

// Clone is Packet.Clone into pooled storage.
func (pl *Pool) Clone(p *Packet) *Packet {
	out := pl.Packet()
	out.MPLS = pl.CloneStack(p.MPLS)
	out.IP = p.IP
	if p.ICMP != nil {
		out.ICMP = pl.cloneICMP(p.ICMP)
	}
	if p.UDP != nil {
		u := pl.UDPHeader()
		*u = *p.UDP
		out.UDP = u
	}
	if p.Raw != nil {
		// Raw is control-plane payload, off the hot path; a plain copy is
		// fine and keeps ownership of the bytes unambiguous.
		out.Raw = append([]byte(nil), p.Raw...)
	}
	out.PayloadLen = p.PayloadLen
	out.Mark, out.Lineage = p.Mark, p.Lineage
	return out
}

func (pl *Pool) cloneICMP(src *ICMP) *ICMP {
	m := pl.ICMP()
	m.Type, m.Code, m.ID, m.Seq = src.Type, src.Code, src.ID, src.Seq
	if src.Quote != nil {
		q := pl.Quote()
		*q = *src.Quote
		m.Quote = q
	}
	if src.Ext != nil {
		e := pl.Extension()
		e.LabelStack = pl.CloneStack(src.Ext.LabelStack)
		m.Ext = e
	}
	return m
}

// Release returns a pool-owned packet and its sub-objects to the free
// lists. Adopted or never-pooled packets are ignored. The caller must not
// touch the packet afterwards.
func (pl *Pool) Release(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	if m := p.ICMP; m != nil {
		if q := m.Quote; q != nil {
			*q = Quote{}
			pl.quotes = append(pl.quotes, q)
		}
		if e := m.Ext; e != nil {
			pl.releaseStack(e.LabelStack)
			*e = Extension{}
			pl.exts = append(pl.exts, e)
		}
		*m = ICMP{}
		pl.icmps = append(pl.icmps, m)
	}
	if u := p.UDP; u != nil {
		*u = UDP{}
		pl.udps = append(pl.udps, u)
	}
	pl.releaseStack(p.MPLS)
	*p = Packet{pooled: true}
	pl.pkts = append(pl.pkts, p)
}

func (pl *Pool) releaseStack(s LabelStack) {
	if cap(s) == 0 {
		return
	}
	pl.stacks = append(pl.stacks, s[:0])
}

// Adopt transfers a packet (and everything reachable from it) out of pool
// ownership: a later Release is a no-op, so the caller may retain it
// indefinitely. Safe to call on packets that were never pooled.
func (pl *Pool) Adopt(p *Packet) {
	if p != nil {
		p.pooled = false
	}
}
