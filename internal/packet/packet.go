package packet

import (
	"fmt"
	"strings"
)

// Packet is the unit the simulator forwards: an optional MPLS label stack
// encapsulating an IPv4 datagram whose payload is ICMP or UDP. The struct
// form is what routers manipulate; Serialize/Decode produce and consume the
// equivalent wire bytes.
type Packet struct {
	MPLS LabelStack // outer encapsulation; empty means plain IP
	IP   IPv4
	ICMP *ICMP // set when IP.Protocol == ProtoICMP
	UDP  *UDP  // set when IP.Protocol == ProtoUDP
	// Raw carries the opaque payload of other protocols (OSPF LSAs and
	// the like); its encoding belongs to the owning subsystem.
	Raw []byte

	// PayloadLen is opaque application payload carried beyond the modeled
	// headers; it only affects serialized length.
	PayloadLen int

	// Mark tags a probe whose forwarding trajectory the fabric's flow
	// cache is recording; per-hop clones inherit it, generated replies do
	// not. Zero (the default) means unobserved. Mark never reaches the
	// wire form.
	Mark uint32

	// Lineage tracks, per TTL field, whether its current value is an
	// affine function of the probe's initial TTL (bit set: the field
	// shifts one-for-one with the initial TTL) or a constant independent
	// of it (bit clear: seeded from 255 or an OS personality value). Bit
	// 31 covers IP.TTL; bit i covers MPLS[i].TTL. Routers maintain it on
	// marked packets across pushes, pops, and min-on-pop copies; the flow
	// cache uses it to patch a memoized trajectory snapshot for a probe
	// with a different initial TTL. Like Mark, it never reaches the wire.
	Lineage uint32

	// pooled marks a packet owned by a Pool; Pool.Release recycles it and
	// Pool.Adopt clears the mark so retained packets escape recycling.
	pooled bool
}

// Lineage bit layout: bit 31 is the IP TTL, bits 0..15 the label stack
// (bit i = MPLS[i], top of stack at bit 0).
const (
	lineageIPBit    = uint32(1) << 31
	lineageMPLSMask = uint32(0xFFFF)
)

// LineageIP reports whether IP.TTL is initial-TTL-propagated.
func (p *Packet) LineageIP() bool { return p.Lineage&lineageIPBit != 0 }

// SetLineageIP records whether IP.TTL is initial-TTL-propagated.
func (p *Packet) SetLineageIP(prop bool) {
	if prop {
		p.Lineage |= lineageIPBit
	} else {
		p.Lineage &^= lineageIPBit
	}
}

// LineageTop reports whether the top LSE's TTL is initial-TTL-propagated.
func (p *Packet) LineageTop() bool { return p.Lineage&1 != 0 }

// SetLineageTop records the top LSE's lineage.
func (p *Packet) SetLineageTop(prop bool) {
	if prop {
		p.Lineage |= 1
	} else {
		p.Lineage &^= 1
	}
}

// LineageIPPropagated reports whether a raw lineage word (same layout as
// Packet.Lineage) marks the IP TTL as initial-TTL-propagated. For code
// that stores lineage snapshots detached from a Packet.
func LineageIPPropagated(l uint32) bool { return l&lineageIPBit != 0 }

// LineageLSEPropagated reports whether a raw lineage word marks MPLS[i]
// as initial-TTL-propagated.
func LineageLSEPropagated(l uint32, i int) bool {
	return l&lineageMPLSMask&(1<<uint(i)) != 0
}

// PushLineage shifts the label-stack lineage bits for a PushInPlace and
// records the new top's lineage. Call it alongside every push on a marked
// packet, in push order.
func (p *Packet) PushLineage(prop bool) {
	mpls := (p.Lineage & lineageMPLSMask) << 1 & lineageMPLSMask
	if prop {
		mpls |= 1
	}
	p.Lineage = p.Lineage&^lineageMPLSMask | mpls
}

// PopLineage shifts the label-stack lineage bits for a PopInPlace and
// returns the popped entry's lineage.
func (p *Packet) PopLineage() bool {
	prop := p.Lineage&1 != 0
	p.Lineage = p.Lineage&^lineageMPLSMask | (p.Lineage&lineageMPLSMask)>>1
	return prop
}

// Labeled reports whether the packet currently carries a label stack.
func (p *Packet) Labeled() bool { return !p.MPLS.Empty() }

// Clone returns a deep copy. Routers clone before mutating so that probing
// code retains the packet it sent.
func (p *Packet) Clone() *Packet {
	out := *p
	out.pooled = false // plain clones are never pool-owned
	out.MPLS = p.MPLS.Clone()
	out.ICMP = p.ICMP.Clone()
	if p.UDP != nil {
		u := *p.UDP
		out.UDP = &u
	}
	if p.Raw != nil {
		out.Raw = append([]byte(nil), p.Raw...)
	}
	return &out
}

// Serialize renders the full wire form: label stack, IPv4 header, transport.
func (p *Packet) Serialize() ([]byte, error) {
	transport, err := p.transportWire()
	if err != nil {
		return nil, err
	}
	b, err := p.MPLS.AppendWire(nil)
	if err != nil {
		return nil, err
	}
	b = p.IP.AppendWire(b, len(transport))
	return append(b, transport...), nil
}

func (p *Packet) transportWire() ([]byte, error) {
	var transport []byte
	switch p.IP.Protocol {
	case ProtoICMP:
		if p.ICMP == nil {
			return nil, errorString("packet: ICMP protocol without ICMP layer")
		}
		var err error
		transport, err = p.ICMP.AppendWire(nil)
		if err != nil {
			return nil, err
		}
	case ProtoUDP:
		if p.UDP == nil {
			return nil, errorString("packet: UDP protocol without UDP layer")
		}
		transport = p.UDP.AppendWire(nil, p.PayloadLen)
	default:
		if p.Raw == nil {
			return nil, fmt.Errorf("packet: cannot serialize protocol %v", p.IP.Protocol)
		}
		transport = append(transport, p.Raw...)
	}
	for i := 0; i < p.PayloadLen; i++ {
		transport = append(transport, 0)
	}
	return transport, nil
}

// Decode parses wire bytes into a Packet. If the first 4 bytes do not look
// like an IPv4 header, an MPLS label stack is assumed to precede it (the
// simulator knows from link context whether a frame is labeled; on a real
// wire the ethertype disambiguates).
func Decode(b []byte) (*Packet, error) {
	p := &Packet{}
	if len(b) >= 1 && b[0]>>4 != 4 {
		stack, n, err := DecodeLabelStack(b)
		if err != nil {
			return nil, err
		}
		p.MPLS = stack
		b = b[n:]
	}
	h, total, off, err := DecodeIPv4(b)
	if err != nil {
		return nil, err
	}
	p.IP = h
	if total > len(b) || total < off {
		return nil, ErrTruncated
	}
	body := b[off:total]
	switch h.Protocol {
	case ProtoICMP:
		m, err := DecodeICMP(body)
		if err != nil {
			return nil, err
		}
		p.ICMP = m
		wire, err := m.AppendWire(nil)
		if err != nil {
			return nil, err
		}
		p.PayloadLen = len(body) - len(wire)
		if p.PayloadLen < 0 {
			p.PayloadLen = 0
		}
	case ProtoUDP:
		u, err := DecodeUDP(body)
		if err != nil {
			return nil, err
		}
		p.UDP = &u
		p.PayloadLen = len(body) - 8
	default:
		p.Raw = append([]byte(nil), body...)
	}
	return p, nil
}

// String renders a compact one-line description for logs and tests.
func (p *Packet) String() string {
	var sb strings.Builder
	if p.Labeled() {
		fmt.Fprintf(&sb, "MPLS%v ", p.MPLS)
	}
	fmt.Fprintf(&sb, "%s->%s ttl=%d %s", p.IP.Src, p.IP.Dst, p.IP.TTL, p.IP.Protocol)
	if p.ICMP != nil {
		fmt.Fprintf(&sb, " type=%d code=%d", p.ICMP.Type, p.ICMP.Code)
	}
	if p.UDP != nil {
		fmt.Fprintf(&sb, " ports=%d->%d", p.UDP.SrcPort, p.UDP.DstPort)
	}
	return sb.String()
}
