package packet

// FNV-1a parameters (hash/fnv), inlined so the per-hop ECMP hash does not
// allocate a hash.Hash32. The digest is bit-identical to fnv.New32a over
// the same bytes — paths, and therefore campaign output, are unchanged.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// FlowHash computes the per-flow ECMP hash over the fields Paris
// traceroute keeps constant: addresses, protocol, and the first 4 bytes of
// the transport header (ICMP checksum/id or ports). It lives in packet —
// not router — because it is a pure function of packet fields: the sweep
// engine predicts a router's ECMP choices for untraced port-cycle slots by
// hashing synthetic packets, and netsim cannot import router.
func FlowHash(pkt *Packet) uint32 {
	var b [13]byte
	src, dst := uint32(pkt.IP.Src), uint32(pkt.IP.Dst)
	b[0], b[1], b[2], b[3] = byte(src>>24), byte(src>>16), byte(src>>8), byte(src)
	b[4], b[5], b[6], b[7] = byte(dst>>24), byte(dst>>16), byte(dst>>8), byte(dst)
	b[8] = byte(pkt.IP.Protocol)
	switch {
	case pkt.ICMP != nil && !pkt.ICMP.IsError():
		b[9], b[10] = byte(pkt.ICMP.ID>>8), byte(pkt.ICMP.ID)
	case pkt.ICMP != nil && pkt.ICMP.Quote != nil:
		// Error replies hash on the quoted probe's flow so that a reply
		// takes a stable path too.
		b[9], b[10] = byte(pkt.ICMP.Quote.ID>>8), byte(pkt.ICMP.Quote.ID)
	case pkt.UDP != nil:
		b[9], b[10] = byte(pkt.UDP.SrcPort>>8), byte(pkt.UDP.SrcPort)
		b[11], b[12] = byte(pkt.UDP.DstPort>>8), byte(pkt.UDP.DstPort)
	}
	h := uint32(fnvOffset32)
	for _, c := range b {
		h = (h ^ uint32(c)) * fnvPrime32
	}
	return mix32(h)
}

// mix32 is a murmur3-style finalizer. FNV alone is a poor ECMP hash: its
// low bit is just the XOR of the input bytes' low bits, so structured flow
// identifiers (e.g. IDs stepping by 0x0101) never change hash%2 and a
// two-way ECMP stage would look like a single path.
func mix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}
