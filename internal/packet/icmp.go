package packet

// ICMP message types used by traceroute-style probing.
const (
	ICMPEchoReply     = 0
	ICMPDestUnreach   = 3
	ICMPEchoRequest   = 8
	ICMPTimeExceeded  = 11
	CodeTTLExpired    = 0 // TimeExceeded: TTL expired in transit
	CodePortUnreach   = 3 // DestUnreach: closed UDP port (classic traceroute)
	CodeHostUnreach   = 1
	CodeFragNeeded    = 4
	icmpOriginalQuote = 128 // RFC 4884: bytes of original datagram when extended
)

// ICMP is an ICMP message. Echo messages use ID/Seq; error messages carry a
// Quote of the datagram that triggered them and, when the generating router
// implements RFC 4950, an Extension holding the MPLS label stack of the
// packet as received.
type ICMP struct {
	Type uint8
	Code uint8

	// Echo request/reply identification.
	ID  uint16
	Seq uint16

	// Error-message payload.
	Quote *Quote
	Ext   *Extension
}

// Quote summarizes the datagram quoted inside an ICMP error (RFC 792
// requires the original IP header plus at least 8 payload bytes; those 8
// bytes identify the probe).
type Quote struct {
	IP IPv4

	// First 8 bytes of the original transport header.
	ICMPType uint8 // when IP.Protocol == ProtoICMP
	ICMPCode uint8
	ID       uint16 // echo ID or UDP source port
	Seq      uint16 // echo Seq or UDP destination port
}

// Extension is the RFC 4884 extension structure. Only the RFC 4950 MPLS
// label stack object (class 1, c-type 1) is modeled, as that is the one
// MPLS measurement uses.
type Extension struct {
	LabelStack LabelStack
}

// IsError reports whether the message is an error (carries a quote) rather
// than an echo.
func (m *ICMP) IsError() bool {
	return m.Type == ICMPTimeExceeded || m.Type == ICMPDestUnreach
}

// Clone returns a deep copy of the message.
func (m *ICMP) Clone() *ICMP {
	if m == nil {
		return nil
	}
	out := *m
	if m.Quote != nil {
		q := *m.Quote
		out.Quote = &q
	}
	if m.Ext != nil {
		out.Ext = &Extension{LabelStack: m.Ext.LabelStack.Clone()}
	}
	return &out
}

// AppendWire appends the ICMP wire encoding to b.
func (m *ICMP) AppendWire(b []byte) ([]byte, error) {
	start := len(b)
	b = append(b, m.Type, m.Code, 0, 0)
	switch {
	case m.IsError():
		// RFC 4884: byte 4 unused, byte 5 = length of the quoted datagram
		// in 32-bit words (0 when no extension follows).
		quoted, err := m.quoteWire()
		if err != nil {
			return b, err
		}
		lengthField := byte(0)
		if m.Ext != nil {
			// Pad the quote to the RFC 4884 minimum so the extension
			// structure starts at a well-known offset.
			for len(quoted) < icmpOriginalQuote {
				quoted = append(quoted, 0)
			}
			lengthField = byte(len(quoted) / 4)
		}
		b = append(b, 0, lengthField, 0, 0)
		b = append(b, quoted...)
		if m.Ext != nil {
			b, err = m.Ext.appendWire(b)
			if err != nil {
				return b, err
			}
		}
	default:
		b = append(b, byte(m.ID>>8), byte(m.ID), byte(m.Seq>>8), byte(m.Seq))
	}
	ck := Checksum(b[start:])
	b[start+2], b[start+3] = byte(ck>>8), byte(ck)
	return b, nil
}

func (m *ICMP) quoteWire() ([]byte, error) {
	if m.Quote == nil {
		return nil, errorString("packet: ICMP error without quote")
	}
	q := m.Quote
	var transport [8]byte
	switch q.IP.Protocol {
	case ProtoICMP:
		transport[0], transport[1] = q.ICMPType, q.ICMPCode
		transport[4], transport[5] = byte(q.ID>>8), byte(q.ID)
		transport[6], transport[7] = byte(q.Seq>>8), byte(q.Seq)
		ck := Checksum(transport[:])
		transport[2], transport[3] = byte(ck>>8), byte(ck)
	default:
		transport[0], transport[1] = byte(q.ID>>8), byte(q.ID)
		transport[2], transport[3] = byte(q.Seq>>8), byte(q.Seq)
	}
	out := q.IP.AppendWire(nil, len(transport))
	return append(out, transport[:]...), nil
}

// decodeQuote reverses quoteWire.
func decodeQuote(b []byte) (*Quote, error) {
	h, _, off, err := DecodeIPv4(b)
	if err != nil {
		return nil, err
	}
	if len(b) < off+8 {
		return nil, ErrTruncated
	}
	t := b[off : off+8]
	q := &Quote{IP: h}
	switch h.Protocol {
	case ProtoICMP:
		q.ICMPType, q.ICMPCode = t[0], t[1]
		q.ID = uint16(t[4])<<8 | uint16(t[5])
		q.Seq = uint16(t[6])<<8 | uint16(t[7])
	default:
		q.ID = uint16(t[0])<<8 | uint16(t[1])
		q.Seq = uint16(t[2])<<8 | uint16(t[3])
	}
	return q, nil
}

// RFC 4884 extension header: version 2 in the top nibble, then a checksum
// over the whole extension structure. Objects follow, each with a 4-byte
// header: length (incl. header), class, c-type.
const (
	extVersion        = 2
	extClassMPLS      = 1 // RFC 4950
	extCTypeMPLSStack = 1
)

func (e *Extension) appendWire(b []byte) ([]byte, error) {
	start := len(b)
	b = append(b, extVersion<<4, 0, 0, 0)
	objStart := len(b)
	b = append(b, 0, 0, extClassMPLS, extCTypeMPLSStack)
	var err error
	b, err = e.LabelStack.AppendWire(b)
	if err != nil {
		return b, err
	}
	objLen := len(b) - objStart
	b[objStart], b[objStart+1] = byte(objLen>>8), byte(objLen)
	ck := Checksum(b[start:])
	b[start+2], b[start+3] = byte(ck>>8), byte(ck)
	return b, nil
}

func decodeExtension(b []byte) (*Extension, error) {
	if len(b) < 4 {
		return nil, ErrTruncated
	}
	if b[0]>>4 != extVersion {
		return nil, errorString("packet: unknown ICMP extension version")
	}
	b = b[4:]
	for len(b) >= 4 {
		objLen := int(b[0])<<8 | int(b[1])
		class, ctype := b[2], b[3]
		if objLen < 4 || objLen > len(b) {
			return nil, ErrTruncated
		}
		if class == extClassMPLS && ctype == extCTypeMPLSStack {
			stack, _, err := DecodeLabelStack(b[4:objLen])
			if err != nil {
				return nil, err
			}
			return &Extension{LabelStack: stack}, nil
		}
		b = b[objLen:]
	}
	return nil, errorString("packet: no MPLS extension object")
}

// DecodeICMP decodes an ICMP message from b (b covers exactly the ICMP
// part of the datagram).
func DecodeICMP(b []byte) (*ICMP, error) {
	if len(b) < 8 {
		return nil, ErrTruncated
	}
	m := &ICMP{Type: b[0], Code: b[1]}
	if !m.IsError() {
		m.ID = uint16(b[4])<<8 | uint16(b[5])
		m.Seq = uint16(b[6])<<8 | uint16(b[7])
		return m, nil
	}
	quoteLen := int(b[5]) * 4
	rest := b[8:]
	q, err := decodeQuote(rest)
	if err != nil {
		return nil, err
	}
	m.Quote = q
	if quoteLen > 0 {
		if len(rest) < quoteLen+4 {
			return nil, ErrTruncated
		}
		ext, err := decodeExtension(rest[quoteLen:])
		if err != nil {
			return nil, err
		}
		m.Ext = ext
	}
	return m, nil
}

// UDP is a minimal UDP header.
type UDP struct {
	SrcPort, DstPort uint16
}

// AppendWire appends the 8-byte UDP header (checksum zeroed: legal in
// IPv4) plus nothing; payload length is the caller's business.
func (u UDP) AppendWire(b []byte, payloadLen int) []byte {
	l := 8 + payloadLen
	return append(b,
		byte(u.SrcPort>>8), byte(u.SrcPort),
		byte(u.DstPort>>8), byte(u.DstPort),
		byte(l>>8), byte(l), 0, 0)
}

// DecodeUDP decodes a UDP header.
func DecodeUDP(b []byte) (UDP, error) {
	if len(b) < 8 {
		return UDP{}, ErrTruncated
	}
	return UDP{
		SrcPort: uint16(b[0])<<8 | uint16(b[1]),
		DstPort: uint16(b[2])<<8 | uint16(b[3]),
	}, nil
}
