package netsim

import (
	"testing"
	"time"

	"wormhole/internal/netaddr"
)

// churnHosts builds a fabric with n registered hosts (no links) so churn
// scopes can be expressed over real nodes.
func churnHosts(t *testing.T, n int) (*Network, []*Host) {
	t.Helper()
	net := New(1)
	p := netaddr.MustParsePrefix("10.9.0.0/24")
	hosts := make([]*Host, n)
	for i := range hosts {
		hosts[i] = NewHost("ch", p.Nth(uint64(i+1)), p)
		net.AddNode(hosts[i])
	}
	return net, hosts
}

// touchOf stamps a flow entry's provenance (white-box: what FlowFinish
// computes from the touch scratch of a real drain).
func touchOf(t *testing.T, net *Network, e *flowEntry, nodes ...Node) {
	t.Helper()
	for _, nd := range nodes {
		i, ok := net.nodeIdx[nd]
		if !ok {
			t.Fatalf("node %s not registered", nd.Name())
		}
		e.touched = append(e.touched, i)
	}
	e.touched = sortedTouched(e.touched)
}

// TestChurnTickSchedule pins the probe-tick contract: events fire
// immediately before the probe whose 0-based index reaches their Tick,
// in order, ChurnEnd force-fires the remainder, and deviance windows
// open and close with the Dev field.
func TestChurnTickSchedule(t *testing.T) {
	net, hosts := churnHosts(t, 2)
	var fired []string
	ev := func(tick uint64, kind string, dev int) ChurnEvent {
		return ChurnEvent{
			Tick: tick, Kind: kind, Dev: dev,
			DevScope: []Node{hosts[0]},
			Apply:    func() { fired = append(fired, kind) },
		}
	}
	net.ChurnBegin([]ChurnEvent{ev(2, "fail", 1), ev(2, "reconverge", 0), ev(5, "repair", -1)}, false)

	for i := 0; i < 4; i++ {
		net.ChurnTick()
	}
	if len(fired) != 2 || fired[0] != "fail" || fired[1] != "reconverge" {
		t.Fatalf("after 4 ticks fired %v, want [fail reconverge]", fired)
	}
	if !net.ChurnDeviant() {
		t.Fatal("deviance window not open after fail")
	}
	if got := net.ChurnFired(); got != 2 {
		t.Fatalf("ChurnFired = %d, want 2", got)
	}

	net.ChurnEnd()
	if len(fired) != 3 || fired[2] != "repair" {
		t.Fatalf("ChurnEnd fired %v, want trailing repair", fired)
	}
	if net.ChurnDeviant() {
		t.Fatal("deviance window still open after repair")
	}
	if got := net.ChurnFired(); got != 3 {
		t.Fatalf("ChurnFired = %d, want 3", got)
	}
	// Disarmed: further ticks are free and fire nothing.
	net.ChurnTick()
	if net.ChurnFired() != 3 {
		t.Fatal("disarmed engine fired an event")
	}
}

// TestChurnScopedEviction pins delta-invalidation: an event whose scope
// covers one node evicts exactly the entries touching it, advances only
// that node's scope generation, and leaves the fabric-wide TopoGen — and
// therefore pooled-replica validity — untouched.
func TestChurnScopedEviction(t *testing.T) {
	net, hosts := churnHosts(t, 3)
	net.SetFlowCacheEnabled(true)

	kA, kB := sharedKey(10), sharedKey(11)
	seedFlowEntry(t, net, kA, 4, sharedObs(0, 4))
	seedFlowEntry(t, net, kB, 4, sharedObs(1, 4))
	touchOf(t, net, net.flows.entries[kA], hosts[0], hosts[1])
	touchOf(t, net, net.flows.entries[kB], hosts[2])

	gen0 := net.TopoGen()
	net.ChurnBegin([]ChurnEvent{{Tick: 0, Kind: "fail", EvictScope: []Node{hosts[1]}}}, false)
	net.ChurnTick()
	net.ChurnEnd()

	if net.flows.entries[kA] != nil {
		t.Fatal("entry touching the scope survived")
	}
	if net.flows.entries[kB] == nil {
		t.Fatal("disjoint entry was evicted")
	}
	if net.TopoGen() != gen0 {
		t.Fatalf("scoped eviction bumped TopoGen %d -> %d", gen0, net.TopoGen())
	}
	if net.ScopeGen(hosts[1]) != 1 || net.ScopeGen(hosts[2]) != 0 {
		t.Fatalf("scope generations: h1=%d h2=%d, want 1 and 0",
			net.ScopeGen(hosts[1]), net.ScopeGen(hosts[2]))
	}

	// Unknown provenance is always in scope.
	kC := sharedKey(12)
	seedFlowEntry(t, net, kC, 4, sharedObs(2, 4))
	net.ChurnBegin([]ChurnEvent{{Tick: 0, Kind: "fail", EvictScope: []Node{hosts[2]}}}, false)
	net.ChurnTick()
	net.ChurnEnd()
	if net.flows.entries[kC] != nil {
		t.Fatal("unknown-provenance entry dodged a churn scope")
	}
}

// TestChurnFlushWorldBaseline pins the baseline mode: every event is a
// whole-fabric flush (TopoGen advances, everything evicted).
func TestChurnFlushWorldBaseline(t *testing.T) {
	net, hosts := churnHosts(t, 2)
	net.SetFlowCacheEnabled(true)
	k := sharedKey(20)
	seedFlowEntry(t, net, k, 4, sharedObs(0, 4))
	touchOf(t, net, net.flows.entries[k], hosts[1])

	gen0 := net.TopoGen()
	net.ChurnBegin([]ChurnEvent{{Tick: 0, Kind: "fail", EvictScope: []Node{hosts[0]}}}, true)
	net.ChurnTick()
	net.ChurnEnd()
	if net.TopoGen() != gen0+1 {
		t.Fatalf("flush-world event did not bump TopoGen: %d -> %d", gen0, net.TopoGen())
	}
	if len(net.flows.entries) != 0 {
		t.Fatal("flush-world event left entries behind")
	}
}

// TestScopedFlushSharedTable pins the shared-table side of
// delta-invalidation: a scoped flush removes exactly the published
// entries whose provenance intersects the scope (or is unknown), keeps
// the epoch version so subscribers stay attached, and is a no-op when
// nothing matches.
func TestScopedFlushSharedTable(t *testing.T) {
	owner, hosts := churnHosts(t, 3)
	owner.SetFlowCacheEnabled(true)
	table := owner.OwnSharedFlowCache()

	rep := New(1)
	rep.SetFlowCacheEnabled(true)
	rep.AttachSharedFlowCache(table)
	// Replicas are structurally identical, so provenance indices transfer;
	// here we stamp them against the owner's node index directly.
	kA, kB, kC := sharedKey(30), sharedKey(31), sharedKey(32)
	seedFlowEntry(t, rep, kA, 4, sharedObs(0, 4))
	seedFlowEntry(t, rep, kB, 4, sharedObs(1, 4))
	seedFlowEntry(t, rep, kC, 4, sharedObs(2, 4))
	touchOf(t, owner, rep.flows.entries[kA], hosts[0])
	touchOf(t, owner, rep.flows.entries[kB], hosts[2])
	// kC keeps nil provenance: unknown, must be evicted by any scope.
	table.Publish(rep)
	v0 := table.Version()

	var bits []uint64
	setBit(&bits, owner.nodeIdx[hosts[0]])
	table.ScopedFlush(bits)
	if table.Version() != v0 {
		t.Fatalf("ScopedFlush changed the version %d -> %d", v0, table.Version())
	}
	if table.Len() != 1 {
		t.Fatalf("table has %d entries after scoped flush, want 1 survivor", table.Len())
	}

	// The survivor still serves a fresh subscriber.
	sib := New(1)
	sib.SetFlowCacheEnabled(true)
	sib.AttachSharedFlowCache(table)
	if _, ok := sib.FlowLookup(kB, 4); !ok {
		t.Fatal("surviving entry not served")
	}
	if _, ok := sib.FlowLookup(kA, 4); ok {
		t.Fatal("evicted entry still served")
	}

	// Disjoint scope: nothing matches, the epoch is untouched.
	ep0 := table.cur.Load()
	var none []uint64
	setBit(&none, owner.nodeIdx[hosts[1]])
	table.ScopedFlush(none)
	if table.cur.Load() != ep0 {
		t.Fatal("no-op scoped flush installed a new epoch")
	}
}

// TestChurnDevianceGatesSharedAdoption pins the deviance window: while a
// window is open, shared entries overlapping it (or of unknown
// provenance) are not adopted, disjoint ones still are, and local
// recordings overlapping the window are tainted and never published.
func TestChurnDevianceGatesSharedAdoption(t *testing.T) {
	owner, hosts := churnHosts(t, 3)
	owner.SetFlowCacheEnabled(true)
	table := owner.OwnSharedFlowCache()

	pub := New(1)
	pub.SetFlowCacheEnabled(true)
	pub.AttachSharedFlowCache(table)
	kIn, kOut := sharedKey(40), sharedKey(41)
	seedFlowEntry(t, pub, kIn, 4, sharedObs(0, 4))
	seedFlowEntry(t, pub, kOut, 4, sharedObs(1, 4))
	touchOf(t, owner, pub.flows.entries[kIn], hosts[0])
	touchOf(t, owner, pub.flows.entries[kOut], hosts[2])
	table.Publish(pub)

	// A replica mid-deviance: the window covers hosts[0]. Adoption indices
	// are fabric-local, so the replica must host the same node layout —
	// reuse the owner fabric itself as the reader (self-subscription is
	// what the serial engine does).
	reader, rhosts := churnHosts(t, 3)
	reader.SetFlowCacheEnabled(true)
	reader.AttachSharedFlowCache(table)
	reader.ChurnBegin([]ChurnEvent{
		{Tick: 0, Kind: "fail", Dev: 1, DevScope: []Node{rhosts[0]}, EvictScope: []Node{rhosts[0]}},
		{Tick: 99, Kind: "repair", Dev: -1, DevScope: []Node{rhosts[0]}, EvictScope: []Node{rhosts[0]}},
	}, false)
	reader.ChurnTick()

	if _, ok := reader.FlowLookup(kIn, 4); ok {
		t.Fatal("adopted a shared entry overlapping the open deviance window")
	}
	if _, ok := reader.FlowLookup(kOut, 4); !ok {
		t.Fatal("refused a shared entry disjoint from the window")
	}

	// A local recording overlapping the window is tainted: simulate what
	// FlowFinish computes.
	kLocal := sharedKey(42)
	seedFlowEntry(t, reader, kLocal, 5, sharedObs(2, 5))
	e := reader.flows.entries[kLocal]
	touchOf(t, reader, e, rhosts[0])
	reader.taintCheck(e, true)
	if !e.tainted {
		t.Fatal("deviant-window recording not tainted")
	}
	table.Publish(reader)
	if _, ok := table.cur.Load().entries[kLocal]; ok {
		t.Fatal("tainted entry was published")
	}

	// ChurnEnd force-fires the repair; the window closes and adoption
	// resumes.
	reader.ChurnEnd()
	if reader.ChurnDeviant() {
		t.Fatal("window still open")
	}
	if _, ok := reader.FlowLookup(kIn, 4); !ok {
		t.Fatal("post-repair adoption still refused")
	}
}

// TestChurnMidDrainPoisonsRecording pins the in-flight guard: a scoped
// eviction firing while a recording is active poisons it, exactly like a
// full invalidation would, so a mutation mid-drain can never leak a
// stale step into the cache.
func TestChurnMidDrainPoisonsRecording(t *testing.T) {
	net, hosts := churnHosts(t, 2)
	net.SetFlowCacheEnabled(true)
	f := &net.flows
	f.rec = flowRec{active: true, entry: &flowEntry{}, key: sharedKey(50), start: time.Duration(0)}
	net.ChurnBegin([]ChurnEvent{{Tick: 0, Kind: "fail", EvictScope: []Node{hosts[0]}}}, false)
	net.ChurnTick()
	if !f.rec.bad {
		t.Fatal("scoped eviction did not poison the in-flight recording")
	}
	net.ChurnEnd()
}
