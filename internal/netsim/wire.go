package netsim

// Accessors used by the snapshot wire codec (internal/gen/wire.go). The
// codec rebuilds a Network field-for-field in another process, which
// needs exactly the state BeginSnapshot/Finish carries across a clone:
// the seed, the virtual-clock basis, and per-link transient occupancy.
// They are deliberately narrow — the event queue itself never crosses the
// wire (encode refuses a non-quiescent fabric, mirroring BeginSnapshot).

import "time"

// Seed returns the seed the network was created with, so a decoder can
// call New(seed) and obtain the identical deterministic RNG stream.
func (n *Network) Seed() int64 { return n.seed }

// WireBasis returns the simulation basis a codec must carry: the virtual
// clock, the event sequence counter, and the fabric counters — the same
// trio BeginSnapshot copies onto a clone.
func (n *Network) WireBasis() (clock time.Duration, seq uint64, stats FabricStats) {
	return n.clock, n.seq, n.stats
}

// SetWireBasis restores the simulation basis on a freshly built Network.
func (n *Network) SetWireBasis(clock time.Duration, seq uint64, stats FabricStats) {
	n.clock = clock
	n.seq = seq
	n.stats = stats
}

// Quiescent reports whether the event queue is empty. Encoding a fabric
// with in-flight events is refused for the same reason BeginSnapshot
// refuses it: queued closures cannot be serialized.
func (n *Network) Quiescent() bool { return n.queue.len() == 0 }

// BusyUntil returns the link's per-direction transmission occupancy.
func (l *Link) BusyUntil() [2]time.Duration { return l.busyUntil }

// SetBusyUntil restores per-direction occupancy on a decoded link.
func (l *Link) SetBusyUntil(b [2]time.Duration) { l.busyUntil = b }

// RegisteredIfaces returns the addresses registered for delivery, in
// arbitrary order; the codec sorts before writing. Iface identity on the
// wire is positional (the global interface walk), so only the addresses
// are needed to replay RegisterIface on decode.
func (n *Network) RegisteredIfaces() []*Iface {
	out := make([]*Iface, 0, len(n.ifaces))
	for _, ifc := range n.ifaces {
		out = append(out, ifc)
	}
	return out
}
