package netsim

import (
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
)

// This file implements the single-injection TTL sweep: the cold-path
// counterpart of the flow cache. A classic traceroute injects one probe
// per TTL and replays the same forwarding prefix h times — O(h²) router
// visits per trace. But on a pure fabric all probes of one flow traverse
// the same trajectory (the structural fact Paris traceroute is built on),
// so one walk at TTL=MaxTTL records everything the whole sweep needs:
//
//   - Walk. SweepWalk injects a single marked probe at the trace's
//     MaxTTL and records every delivery — interface, arrival offset,
//     headers, TTL lineage — through the same machinery the flow cache
//     uses, plus the NoteTTLMin *floor* each snapshot is valid down to.
//
//   - Derivation. SweepFinish scans the recorded trajectory once per
//     smaller TTL, patching propagated TTL fields down by the delta
//     (the affine model of packet.Lineage, run in reverse). The scan
//     finds where that probe expires: the first step whose patched top
//     LSE TTL reaches 1, or whose patched IP TTL reaches 1 at a
//     plain-IP transit router. A probe that passes every step follows
//     the walk to its terminal and inherits the walk's observation.
//
//   - Reply shapes. What a time-exceeded looks like from a given expiry
//     context — replying address, return TTL, whether RFC 4950 labels
//     are attached, and the virtual time the reply takes to come home —
//     is a pure function of (ingress iface, label stack, vantage point,
//     flow id): the quote varies per probe but nothing on the return
//     path reads it beyond the flow hash, which sees only the quoted
//     flow id. NoteExpiry (hooked into the router's reply generators)
//     captures that context on every live expiry; once the shape is
//     known, a derived TTL's reply is composed arithmetically — no event
//     simulation at all — with its RFC 4950 stack rebuilt from the
//     recorded snapshot patched by lineage.
//
// TTLs whose expiry is ambiguous (a mid-processing expiry, a NoteTTLMin
// floor violation, or a shape not yet learned) fall back to live
// simulation — resumed at the step *before* the scan's expiry point when
// the prefix is trusted, so even the fallback is O(1) in path length.
// Conservatism rule: the scan only composes when the expiry provably
// happens on arrival (patched top == 1, or patched IP == 1 outside a
// tunnel); anything else runs live, and the live run teaches the shape
// table for next time.
//
// The sweep is gated by exactly the flow cache's purity rules and
// invalidated by the same mutation hooks. It is independently
// switchable: with the cache off it keeps a single per-trace entry
// (soE), so "-no-flow-cache" benchmarks still measure a cold cache while
// the sweep collapses each trace from h full drains to one walk plus h
// materializations.

// SweepStats counts sweep-engine outcomes.
type SweepStats struct {
	// Walks counts full-TTL sweep walks injected.
	Walks uint64
	// Replies counts per-TTL observations synthesized from a walk without
	// any event-loop simulation (terminal inheritances and composed
	// expiries).
	Replies uint64
	// Fallbacks counts probes that ran live although their flow had a
	// swept trajectory (ambiguous expiry, unlearned reply shape, floor
	// violation), plus walks poisoned mid-drain.
	Fallbacks uint64
}

// shapeKey identifies a reply-synthesis context: the interface the probe
// expired on, the label stack it carried (labels only — TTLs are the
// probe-varying part), and the flow fields the reply's trip home can
// observe. The probe's destination is part of the key even though the
// reply never travels there: an expiring LSR forwards its time-exceeded
// by the *probe's* LFIB entry, picking among ECMP next-hops by the
// probe's flow hash — which covers the destination — so two flows
// expiring at the same (iface, stack) can ride different LSP branches.
// Stacks deeper than the inline array are not memoized.
type shapeKey struct {
	in     *Iface
	vp     netaddr.Addr
	dst    netaddr.Addr
	proto  packet.Protocol
	id     uint16
	depth  uint8
	labels [4]uint32
}

// replyShape is everything needed to compose the observation of an
// expiry at a known context: the reply's identity fields and the virtual
// time from expiry to the drain going idle (zero for suppressed
// replies), plus the provenance of the probe that taught it — a composed
// reply's validity depends on the reply path's routers, which the
// forward trajectory alone does not cover.
type replyShape struct {
	shapeObs
	touched  []int32
	touchAll bool
}

// shapeObs is the comparable core of a replyShape; two probes expiring
// at the same context on a pure fabric always produce the same one.
type shapeObs struct {
	answered bool
	from     netaddr.Addr
	replyTTL uint8
	icmpType uint8
	icmpCode uint8
	hasMPLS  bool
	retDelay time.Duration
}

// SetSweepEnabled turns the single-injection TTL sweep on or off.
// Enabling schedules a purity scan; disabling drops the per-trace entry
// and every learned reply shape.
func (n *Network) SetSweepEnabled(on bool) {
	f := &n.flows
	f.sweepEnabled = on
	if on {
		f.needScan = true
	} else {
		f.soE, f.soOK = nil, false
		f.shapes = nil
	}
}

// SweepEnabled reports whether the sweep engine has been requested (it
// may still be inert on an impure fabric).
func (n *Network) SweepEnabled() bool { return n.flows.sweepEnabled }

// SweepStats returns the sweep counters.
func (n *Network) SweepStats() SweepStats { return n.flows.sweep }

// sweepActive reports whether the sweep may engage, sharing the flow
// cache's purity scan and Trace-hook opt-out.
func (n *Network) sweepActive() bool {
	return n.flows.sweepEnabled && n.Trace == nil && n.purityOK()
}

// sweepOnlyEntry returns the cache-off per-trace entry when it matches
// key and holds a swept trajectory.
func (n *Network) sweepOnlyEntry(key FlowKey) (*flowEntry, bool) {
	f := &n.flows
	if !f.sweepEnabled || !f.soOK || f.soE == nil || f.soKey != key || !n.sweepActive() {
		return nil, false
	}
	return f.soE, true
}

// NoteExpiry captures the context of a marked probe's TTL expiry, at the
// entry of the router's reply generators (before any suppression
// decision — the resulting observation, answered or not, is the shape).
// Routers call it for both IP and LSE expiries.
func (n *Network) NoteExpiry(in *Iface, pkt *packet.Packet) {
	f := &n.flows
	if !f.sweepEnabled || !f.rec.active || f.rec.expSeen || pkt.Mark == 0 {
		return
	}
	f.rec.expSeen = true
	f.rec.expOff = n.clock - f.rec.start
	key, ok := shapeKeyOf(in, pkt)
	if !ok {
		f.rec.expDeep = true
		return
	}
	f.rec.expKey = key
}

// NoteLocalDelivery records that a marked probe was consumed locally by a
// router (which answers before any IP TTL check): the walk's terminal is
// then exempt from the scan's transit expiry rule.
func (n *Network) NoteLocalDelivery(pkt *packet.Packet) {
	f := &n.flows
	if !f.rec.active || pkt.Mark == 0 {
		return
	}
	f.rec.localSeen = true
}

// shapeKeyOf builds the synthesis-context key for a probe about to
// expire. ok is false for stacks too deep to memoize inline.
func shapeKeyOf(in *Iface, pkt *packet.Packet) (shapeKey, bool) {
	k := shapeKey{in: in, vp: pkt.IP.Src, dst: pkt.IP.Dst, proto: pkt.IP.Protocol, depth: uint8(len(pkt.MPLS))}
	if len(pkt.MPLS) > len(k.labels) {
		return shapeKey{}, false
	}
	switch {
	case pkt.ICMP != nil:
		k.id = pkt.ICMP.ID
	case pkt.UDP != nil:
		k.id = pkt.UDP.SrcPort
	}
	for i, lse := range pkt.MPLS {
		k.labels[i] = lse.Label
	}
	return k, true
}

// shapeKeyAt rebuilds the synthesis-context key from a recorded step and
// the flow it belongs to. The transport id is the flow key's A field:
// the ICMP echo identifier or the UDP source port, exactly what
// shapeKeyOf read from the live packet.
func shapeKeyAt(st *trajStep, key FlowKey) (shapeKey, bool) {
	k := shapeKey{in: st.to, vp: key.Src, dst: key.Dst, proto: key.Proto, id: key.A, depth: uint8(len(st.mpls))}
	if len(st.mpls) > len(k.labels) {
		return shapeKey{}, false
	}
	for i, lse := range st.mpls {
		k.labels[i] = lse.Label
	}
	return k, true
}

// learnShape stores the reply shape of the expiry captured during the
// finished recording, if any, stamped with the recording's touched set
// (tl is the borrowed scratch view; the copy taken here is the shape's
// own). Re-learning a shape whose observation and provenance are already
// covered is a no-op, keeping the steady state allocation-free.
func (n *Network) learnShape(rec *flowRec, obs ProbeObs, tl []int32, tlOK bool) {
	f := &n.flows
	if !f.sweepEnabled || !rec.expSeen || rec.expDeep {
		return
	}
	so := shapeObs{
		answered: obs.Answered,
		from:     obs.From,
		replyTTL: obs.ReplyTTL,
		icmpType: obs.ICMPType,
		icmpCode: obs.ICMPCode,
		hasMPLS:  len(obs.MPLS) > 0,
		retDelay: obs.Advance - rec.expOff,
	}
	if prev, ok := f.shapes[rec.expKey]; ok && prev.shapeObs == so &&
		(tlOK && touchedCovers(prev.touched, prev.touchAll, tl) || !tlOK && prev.touchAll) {
		return
	}
	if f.shapes == nil {
		f.shapes = make(map[shapeKey]replyShape)
	}
	sh := replyShape{shapeObs: so}
	if tlOK {
		sh.touched = sortedTouched(tl)
	} else {
		sh.touchAll = true
	}
	f.shapes[rec.expKey] = sh
}

// SweepBegin decides whether a trace over [first, max] needs a walk:
// true means the caller should inject one via SweepWalk and complete it
// with SweepFinish. False means the sweep is inactive here or the flow's
// memo already covers the TTLs the trace will probe (up to the first
// destination-reached reply).
func (n *Network) SweepBegin(key FlowKey, first, max uint8) bool {
	f := &n.flows
	if first > max || !n.sweepActive() || f.rec.active {
		return false
	}
	if n.flowActive() {
		e := f.entries[key]
		if f.shared != nil {
			// Adopt any published coverage before deciding: a fully covered
			// flow skips the walk outright.
			ep := f.shared.cur.Load()
			if ep.version != f.sharedVer {
				f.shared = nil
				f.dirty = nil
			} else if se := ep.entries[key]; se != nil && n.sharedAdoptable(se) {
				if e == nil {
					if f.entries == nil {
						f.entries = make(map[FlowKey]*flowEntry)
					}
					e = &flowEntry{}
					f.entries[key] = e
				}
				mergeReplies(&e.valid, &e.replies, se.valid, se.replies)
				adoptTouched(e, se)
			}
		}
		return e == nil || !e.coveredTrace(first, max)
	}
	if f.soOK && f.soE != nil && f.soKey == key && f.soE.coveredTrace(first, max) {
		return false
	}
	return true
}

// coveredTrace reports whether the memo already answers every probe a
// traceroute over [first, max] would send: contiguous coverage from
// first up to a destination-reached reply or max.
func (e *flowEntry) coveredTrace(first, max uint8) bool {
	for t := int(first); t <= int(max); t++ {
		if e.valid[t>>6]&(1<<(uint(t)&63)) == 0 {
			return false
		}
		obs := &e.replies[t]
		if obs.Answered && (obs.ICMPType == packet.ICMPEchoReply || obs.ICMPType == packet.ICMPDestUnreach) {
			return true
		}
	}
	return true
}

// SweepWalk injects the single sweep probe (built by the prober at the
// trace's MaxTTL) and records its full trajectory. The virtual time the
// walk consumed is returned for the caller's observation but rolled back
// off the clock: the walk is bookkeeping, not a probe, and clock parity
// with the per-probe oracle requires it to be time-free. The caller must
// complete the walk with SweepFinish.
func (n *Network) SweepWalk(out *Iface, pkt *packet.Packet, key FlowKey) time.Duration {
	f := &n.flows
	var e *flowEntry
	if n.flowActive() {
		if f.entries == nil {
			f.entries = make(map[FlowKey]*flowEntry)
		}
		e = f.entries[key]
		if e == nil {
			e = &flowEntry{}
			f.entries[key] = e
		}
		f.hotKey, f.hotE, f.hotOK = key, e, true
	} else {
		// Cache off: a single per-trace slot, reset for every walk. The
		// provenance resets to unknown (nil) until SweepFinish stamps the
		// new flow's touched set — unknown is always evicted, so an
		// unfinished slot can never dodge a churn scope.
		e = f.soE
		if e == nil {
			e = &flowEntry{}
		}
		e.valid = [4]uint64{}
		e.derived = [4]uint64{}
		e.touched, e.touchAll, e.tainted = nil, false, false
		f.soKey, f.soE, f.soOK = key, e, true
	}
	e.steps = e.steps[:0]
	e.t0 = pkt.IP.TTL
	e.maxTTL = 255
	e.swept = false
	e.terminalLocal = false
	e.tailMinT = 0
	pkt.Mark = 1
	pkt.SetLineageIP(true)
	f.sweep.Walks++
	start := n.clock
	f.rec = flowRec{active: true, entry: e, key: key, start: start}
	n.touchRemote(out)
	n.Transmit(out, pkt)
	n.Run()
	elapsed := n.clock - start
	n.clock = start
	return elapsed
}

// SweepFinish completes the walk begun by SweepWalk: it memoizes the
// walk's own observation at its TTL, marks the trajectory swept, and
// derives every TTL in [first, walkTTL) the memo does not already cover —
// inheriting the walk's observation where the probe provably follows the
// whole trajectory, composing a reply where the expiry point and shape
// are provable, and leaving a gap (live fallback) everywhere else.
func (n *Network) SweepFinish(key FlowKey, first uint8, obs ProbeObs) {
	f := &n.flows
	rec := f.rec
	if !rec.active {
		return
	}
	e := rec.entry
	f.rec = flowRec{}
	if rec.bad {
		// Poisoned walk (budget exhaustion or mid-drain invalidation): the
		// trace falls back to per-probe simulation.
		f.touchReset()
		e.steps = e.steps[:0]
		e.swept = false
		f.sweep.Fallbacks++
		return
	}
	e.swept = true
	e.terminalLocal = rec.localSeen
	e.tailMinT = rec.minT
	tl, tlOK := f.takeTouched()
	n.learnShape(&rec, obs, tl, tlOK)
	applyTouched(e, tl, tlOK)
	n.taintCheck(e, tlOK)
	f.touchReset()
	n.memoize(e, key, e.t0, obs, false)
	for t := int(e.t0) - 1; t >= int(first); t-- {
		ttl := uint8(t)
		if e.valid[t>>6]&(1<<(uint(t)&63)) != 0 {
			continue
		}
		sc := n.sweepScan(e, ttl)
		switch {
		case sc.kind == scanReach:
			n.memoize(e, key, ttl, obs, true)
			f.sweep.Replies++
		case sc.kind == scanExpire && sc.exact:
			if comp, ok := n.composeExpiry(e, key, sc.step, ttl); ok {
				n.memoize(e, key, ttl, comp, true)
				f.sweep.Replies++
			}
		}
	}
}

// scanKind classifies what the backward scan proved about a derived TTL.
type scanKind uint8

const (
	// scanInvalid: the trajectory is not trusted at this TTL (NoteTTLMin
	// floor violated, or the TTL is not below the walk's).
	scanInvalid scanKind = iota
	// scanReach: the probe passes every recorded step and inherits the
	// walk's terminal observation.
	scanReach
	// scanExpire: the probe expires at (or while being processed just
	// before) step; exact means provably on arrival at step.
	scanExpire
)

type scanResult struct {
	kind  scanKind
	step  int
	exact bool
}

// sweepScan walks the recorded trajectory with every propagated TTL
// field patched down to the derived TTL and finds the first step whose
// expiry checks fire. Monotonicity does the heavy lifting: shrinking the
// initial TTL only lowers propagated values, so a check that fails first
// at step k cannot have fired earlier, and the recorded branch decisions
// hold down to each step's NoteTTLMin floor.
func (n *Network) sweepScan(e *flowEntry, ttl uint8) scanResult {
	d := int(e.t0) - int(ttl)
	if d <= 0 || len(e.steps) == 0 {
		return scanResult{kind: scanInvalid}
	}
	for k := range e.steps {
		st := &e.steps[k]
		if ttl < st.minT {
			return scanResult{kind: scanInvalid}
		}
		if _, isHost := st.to.Owner.(*Host); isHost {
			// Hosts answer or drop without ever checking a TTL.
			continue
		}
		last := k == len(e.steps)-1
		if len(st.mpls) > 0 {
			top := int(st.mpls[0].TTL)
			if packet.LineageLSEPropagated(st.lineage, 0) {
				top -= d
			}
			ip := int(st.ip.TTL)
			if packet.LineageIPPropagated(st.lineage) {
				ip -= d
			}
			underBad := false
			for i := 1; i < len(st.mpls); i++ {
				if packet.LineageLSEPropagated(st.lineage, i) && int(st.mpls[i].TTL)-d <= 0 {
					underBad = true
				}
			}
			if top <= 1 || ip <= 0 || underBad {
				// Exact only for a provable arrival expiry of the top LSE;
				// an exhausted inner field means the true expiry hides in
				// this or an earlier step's label processing — live decides.
				return scanResult{kind: scanExpire, step: k, exact: top == 1 && ip >= 1 && !underBad}
			}
		} else if !(last && e.terminalLocal) {
			ip := int(st.ip.TTL)
			if packet.LineageIPPropagated(st.lineage) {
				ip -= d
			}
			if ip <= 1 {
				return scanResult{kind: scanExpire, step: k, exact: ip == 1}
			}
		}
	}
	if ttl < e.tailMinT {
		return scanResult{kind: scanInvalid}
	}
	return scanResult{kind: scanReach}
}

// composeExpiry synthesizes the observation of a provable arrival expiry
// at step k from its learned reply shape, rebuilding the RFC 4950 quoted
// stack from the recorded snapshot patched down by the TTL delta.
func (n *Network) composeExpiry(e *flowEntry, key FlowKey, k int, ttl uint8) (ProbeObs, bool) {
	st := &e.steps[k]
	sk, ok := shapeKeyAt(st, key)
	if !ok {
		return ProbeObs{}, false
	}
	sh, ok := n.flows.shapes[sk]
	if !ok {
		return ProbeObs{}, false
	}
	// The composed reply's validity now also rests on the reply path the
	// shape was learned over: fold its provenance into the entry so a
	// churn scope covering only the return path still evicts this flow.
	if sh.touchAll {
		e.touched, e.touchAll = nil, true
	} else if !e.touchAll && !touchedCovers(e.touched, false, sh.touched) {
		e.touched = unionTouched(e.touched, sh.touched)
	}
	obs := ProbeObs{
		Answered: sh.answered,
		From:     sh.from,
		ReplyTTL: sh.replyTTL,
		ICMPType: sh.icmpType,
		ICMPCode: sh.icmpCode,
		Advance:  st.offset + sh.retDelay,
	}
	if sh.hasMPLS {
		d := e.t0 - ttl
		stack := make(packet.LabelStack, len(st.mpls))
		copy(stack, st.mpls)
		for i := range stack {
			if packet.LineageLSEPropagated(st.lineage, i) {
				stack[i].TTL -= d
			}
		}
		obs.MPLS = stack
	}
	return obs, true
}

// sweepResume runs one probe of a swept flow live without disturbing the
// walk: resumed at the step before the scan's expiry point when the
// prefix is trusted, injected from the vantage point otherwise. The
// observation is memoized by the caller's FlowFinish as usual (and the
// expiry's shape learned), so the gap closes for the next trace.
func (n *Network) sweepResume(out *Iface, pkt *packet.Packet, e *flowEntry, key FlowKey, ttl uint8) time.Duration {
	f := &n.flows
	f.sweep.Fallbacks++
	start := n.clock
	pkt.Mark = 1
	f.rec = flowRec{active: true, resume: true, entry: e, key: key, start: start}
	n.touchRemote(out)
	if sc := n.sweepScan(e, ttl); sc.kind == scanExpire && sc.step > 0 {
		fr := &e.steps[sc.step-1]
		d := e.t0 - ttl
		id := pkt.IP.ID
		pkt.IP = fr.ip
		pkt.IP.ID = id
		pkt.Lineage = fr.lineage
		if pkt.LineageIP() {
			pkt.IP.TTL -= d
		}
		// A plain copy, not pooled storage: the probe packet is the
		// prober's (never pool-released), so a pooled stack would leak out
		// of the free list.
		pkt.MPLS = append(pkt.MPLS[:0], fr.mpls...)
		for i := range pkt.MPLS {
			if packet.LineageLSEPropagated(pkt.Lineage, i) {
				pkt.MPLS[i].TTL -= d
			}
		}
		n.seq++
		n.queue.push(event{at: start + fr.offset, seq: n.seq, to: fr.to, pkt: pkt})
		n.Run()
		return n.clock - start
	}
	return n.Inject(out, pkt)
}
