package netsim

import (
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
)

// This file implements the single-injection TTL sweep: the cold-path
// counterpart of the flow cache. A classic traceroute injects one probe
// per TTL and replays the same forwarding prefix h times — O(h²) router
// visits per trace. But on a pure fabric all probes of one flow traverse
// the same trajectory (the structural fact Paris traceroute is built on),
// so one walk at TTL=MaxTTL records everything the whole sweep needs:
//
//   - Walk. SweepWalk injects a single marked probe at the trace's
//     MaxTTL and records every delivery — interface, arrival offset,
//     headers, TTL lineage — through the same machinery the flow cache
//     uses, plus the NoteTTLMin *floor* each snapshot is valid down to.
//
//   - Derivation. SweepFinish scans the recorded trajectory once per
//     smaller TTL, patching propagated TTL fields down by the delta
//     (the affine model of packet.Lineage, run in reverse). The scan
//     finds where that probe expires: the first step whose patched top
//     LSE TTL reaches 1, or whose patched IP TTL reaches 1 at a
//     plain-IP transit router. A probe that passes every step follows
//     the walk to its terminal and inherits the walk's observation.
//
//   - Reply shapes. What a time-exceeded looks like from a given expiry
//     context — replying address, return TTL, whether RFC 4950 labels
//     are attached, and the virtual time the reply takes to come home —
//     is a pure function of (ingress iface, label stack, vantage point,
//     flow id): the quote varies per probe but nothing on the return
//     path reads it beyond the flow hash, which sees only the quoted
//     flow id. NoteExpiry (hooked into the router's reply generators)
//     captures that context on every live expiry; once the shape is
//     known, a derived TTL's reply is composed arithmetically — no event
//     simulation at all — with its RFC 4950 stack rebuilt from the
//     recorded snapshot patched by lineage.
//
// TTLs whose expiry is ambiguous (a mid-processing expiry, a NoteTTLMin
// floor violation, or a shape not yet learned) fall back to live
// simulation — resumed at the step *before* the scan's expiry point when
// the prefix is trusted, so even the fallback is O(1) in path length.
// Conservatism rule: the scan only composes when the expiry provably
// happens on arrival (patched top == 1, or patched IP == 1 outside a
// tunnel); anything else runs live, and the live run teaches the shape
// table for next time.
//
// The sweep is gated by exactly the flow cache's purity rules and
// invalidated by the same mutation hooks. It is independently
// switchable: with the cache off it keeps a single per-trace entry
// (soE), so "-no-flow-cache" benchmarks still measure a cold cache while
// the sweep collapses each trace from h full drains to one walk plus h
// materializations.

// SweepCounters counts sweep-engine outcomes for one probe modality.
type SweepCounters struct {
	// Walks counts full-TTL sweep walks injected.
	Walks uint64
	// Replies counts per-TTL observations synthesized from a walk without
	// any event-loop simulation (terminal inheritances and composed
	// expiries).
	Replies uint64
	// Fallbacks counts probes that ran live although their flow had a
	// swept trajectory (ambiguous expiry, unlearned reply shape, floor
	// violation), plus walks poisoned mid-drain.
	Fallbacks uint64
	// Bypasses counts traces whose walk was skipped by the adaptive
	// yield heuristic: a learned reach hint said the trace would derive
	// too few replies to pay for the walk, so it ran per-probe.
	Bypasses uint64
	// Aliases counts flow keys served by pointer from another slot's
	// master walk after branch validation (UDP port-cycle slots whose
	// flow hash reproduces every ECMP decision the walk recorded).
	Aliases uint64
}

// SweepStats splits the sweep counters by probe modality: ICMP Paris
// walks one trajectory per (flow, destination); UDP Paris walks one per
// (flow, destination, port-cycle slot class) and aliases the slots that
// share a branch class.
type SweepStats struct {
	ICMP SweepCounters
	UDP  SweepCounters
}

// Total folds both modalities into one counter set.
func (s SweepStats) Total() SweepCounters {
	return SweepCounters{
		Walks:     s.ICMP.Walks + s.UDP.Walks,
		Replies:   s.ICMP.Replies + s.UDP.Replies,
		Fallbacks: s.ICMP.Fallbacks + s.UDP.Fallbacks,
		Bypasses:  s.ICMP.Bypasses + s.UDP.Bypasses,
		Aliases:   s.ICMP.Aliases + s.UDP.Aliases,
	}
}

// Sub returns the per-field difference s − o (campaign phase deltas).
func (s SweepStats) Sub(o SweepStats) SweepStats {
	return SweepStats{ICMP: s.ICMP.sub(o.ICMP), UDP: s.UDP.sub(o.UDP)}
}

// Add accumulates o into s field by field (shard merges).
func (s *SweepStats) Add(o SweepStats) {
	s.ICMP.add(o.ICMP)
	s.UDP.add(o.UDP)
}

func (c SweepCounters) sub(o SweepCounters) SweepCounters {
	return SweepCounters{
		Walks:     c.Walks - o.Walks,
		Replies:   c.Replies - o.Replies,
		Fallbacks: c.Fallbacks - o.Fallbacks,
		Bypasses:  c.Bypasses - o.Bypasses,
		Aliases:   c.Aliases - o.Aliases,
	}
}

func (c *SweepCounters) add(o SweepCounters) {
	c.Walks += o.Walks
	c.Replies += o.Replies
	c.Fallbacks += o.Fallbacks
	c.Bypasses += o.Bypasses
	c.Aliases += o.Aliases
}

// sweepCtr selects the modality's counter set for a flow.
func (f *FlowCache) sweepCtr(proto packet.Protocol) *SweepCounters {
	if proto == packet.ProtoUDP {
		return &f.sweep.UDP
	}
	return &f.sweep.ICMP
}

// shapeKey identifies a reply-synthesis context: the interface the probe
// expired on, the label stack it carried (labels only — TTLs are the
// probe-varying part), and the flow fields the reply's trip home can
// observe. The probe's destination is part of the key even though the
// reply never travels there: an expiring LSR forwards its time-exceeded
// by the *probe's* LFIB entry, picking among ECMP next-hops by the
// probe's flow hash — which covers the destination — so two flows
// expiring at the same (iface, stack) can ride different LSP branches.
// Stacks deeper than the inline array are not memoized.
//
// port is the slot component for UDP flows: the probe's cycling
// destination port changes the flow hash, so two slots expiring at the
// same (iface, stack) can ride different LSP branches home — the shape is
// only a pure function of the context once the slot is in the key. Raw
// ports would fragment learning across the 128-port cycle, so the key
// holds the flow's *canonical* branch-class port (flowEntry.port): every
// slot whose hash reproduces the walk's recorded ECMP decisions shares
// the trajectory, the reply ride, and therefore the shape. ICMP keys keep
// port zero.
type shapeKey struct {
	in     *Iface
	vp     netaddr.Addr
	dst    netaddr.Addr
	proto  packet.Protocol
	id     uint16
	port   uint16
	depth  uint8
	labels [4]uint32
}

// replyShape is everything needed to compose the observation of an
// expiry at a known context: the reply's identity fields and the virtual
// time from expiry to the drain going idle (zero for suppressed
// replies), plus the provenance of the probe that taught it — a composed
// reply's validity depends on the reply path's routers, which the
// forward trajectory alone does not cover.
type replyShape struct {
	shapeObs
	touched  []int32
	touchAll bool
}

// shapeObs is the comparable core of a replyShape; two probes expiring
// at the same context on a pure fabric always produce the same one.
type shapeObs struct {
	answered bool
	from     netaddr.Addr
	replyTTL uint8
	icmpType uint8
	icmpCode uint8
	hasMPLS  bool
	retDelay time.Duration
}

// SetSweepEnabled turns the single-injection TTL sweep on or off.
// Enabling schedules a purity scan; disabling drops the per-trace entry,
// every learned reply shape, the reach hints, and the master-walk index.
func (n *Network) SetSweepEnabled(on bool) {
	f := &n.flows
	f.sweepEnabled = on
	if on {
		f.needScan = true
	} else {
		f.soE, f.soOK = nil, false
		f.shapes = nil
		f.hints = nil
		f.masters = nil
		f.recBranches = f.recBranches[:0]
	}
}

// SweepEnabled reports whether the sweep engine has been requested (it
// may still be inert on an impure fabric).
func (n *Network) SweepEnabled() bool { return n.flows.sweepEnabled }

// SweepStats returns the sweep counters.
func (n *Network) SweepStats() SweepStats { return n.flows.sweep }

// sweepActive reports whether the sweep may engage, sharing the flow
// cache's purity scan and Trace-hook opt-out.
func (n *Network) sweepActive() bool {
	return n.flows.sweepEnabled && n.Trace == nil && n.purityOK()
}

// sweepOnlyEntry returns the cache-off per-trace entry when it matches
// key and holds a swept trajectory.
func (n *Network) sweepOnlyEntry(key FlowKey) (*flowEntry, bool) {
	f := &n.flows
	if !f.sweepEnabled || !f.soOK || f.soE == nil || f.soKey != key || !n.sweepActive() {
		return nil, false
	}
	return f.soE, true
}

// NoteExpiry captures the context of a marked probe's TTL expiry, at the
// entry of the router's reply generators (before any suppression
// decision — the resulting observation, answered or not, is the shape).
// Routers call it for both IP and LSE expiries.
func (n *Network) NoteExpiry(in *Iface, pkt *packet.Packet) {
	f := &n.flows
	if !f.sweepEnabled || !f.rec.active || f.rec.expSeen || pkt.Mark == 0 {
		return
	}
	f.rec.expSeen = true
	f.rec.expOff = n.clock - f.rec.start
	key, ok := shapeKeyOf(in, pkt)
	if !ok {
		f.rec.expDeep = true
		return
	}
	f.rec.expKey = key
}

// NoteLocalDelivery records that a marked probe was consumed locally by a
// router (which answers before any IP TTL check): the walk's terminal is
// then exempt from the scan's transit expiry rule.
func (n *Network) NoteLocalDelivery(pkt *packet.Packet) {
	f := &n.flows
	if !f.rec.active || pkt.Mark == 0 {
		return
	}
	f.rec.localSeen = true
}

// shapeKeyOf builds the synthesis-context key for a probe about to
// expire. ok is false for stacks too deep to memoize inline.
func shapeKeyOf(in *Iface, pkt *packet.Packet) (shapeKey, bool) {
	k := shapeKey{in: in, vp: pkt.IP.Src, dst: pkt.IP.Dst, proto: pkt.IP.Protocol, depth: uint8(len(pkt.MPLS))}
	if len(pkt.MPLS) > len(k.labels) {
		return shapeKey{}, false
	}
	switch {
	case pkt.ICMP != nil:
		k.id = pkt.ICMP.ID
	case pkt.UDP != nil:
		k.id = pkt.UDP.SrcPort
	}
	for i, lse := range pkt.MPLS {
		k.labels[i] = lse.Label
	}
	return k, true
}

// shapeKeyAt rebuilds the synthesis-context key from a recorded step and
// the flow it belongs to. The transport id is the flow key's A field:
// the ICMP echo identifier or the UDP source port, exactly what
// shapeKeyOf read from the live packet. port is the owning entry's
// canonical branch-class port (zero for ICMP), matching the patch
// learnShape applies on the learning side.
func shapeKeyAt(st *trajStep, key FlowKey, port uint16) (shapeKey, bool) {
	k := shapeKey{in: st.to, vp: key.Src, dst: key.Dst, proto: key.Proto, id: key.A, port: port, depth: uint8(len(st.mpls))}
	if len(st.mpls) > len(k.labels) {
		return shapeKey{}, false
	}
	for i, lse := range st.mpls {
		k.labels[i] = lse.Label
	}
	return k, true
}

// learnShape stores the reply shape of the expiry captured during the
// finished recording, if any, stamped with the recording's touched set
// (tl is the borrowed scratch view; the copy taken here is the shape's
// own). Re-learning a shape whose observation and provenance are already
// covered is a no-op, keeping the steady state allocation-free.
func (n *Network) learnShape(rec *flowRec, obs ProbeObs, tl []int32, tlOK bool) {
	f := &n.flows
	if !f.sweepEnabled || !rec.expSeen || rec.expDeep {
		return
	}
	if rec.key.Proto == packet.ProtoUDP {
		// UDP shapes are keyed on the canonical branch-class port, which
		// only exists once the flow has a completed master walk: the walk
		// itself and its resumed fallback probes learn, plain recordings
		// (bypassed traces) do not. shapeKeyOf left the port zero.
		e := rec.entry
		if e == nil || !e.swept || e.port == 0 {
			return
		}
		rec.expKey.port = e.port
	}
	so := shapeObs{
		answered: obs.Answered,
		from:     obs.From,
		replyTTL: obs.ReplyTTL,
		icmpType: obs.ICMPType,
		icmpCode: obs.ICMPCode,
		hasMPLS:  len(obs.MPLS) > 0,
		retDelay: obs.Advance - rec.expOff,
	}
	if prev, ok := f.shapes[rec.expKey]; ok && prev.shapeObs == so &&
		(tlOK && touchedCovers(prev.touched, prev.touchAll, tl) || !tlOK && prev.touchAll) {
		return
	}
	if f.shapes == nil {
		f.shapes = make(map[shapeKey]replyShape)
	}
	sh := replyShape{shapeObs: so}
	if tlOK {
		sh.touched = sortedTouched(tl)
	} else {
		sh.touchAll = true
	}
	f.shapes[rec.expKey] = sh
}

// SweepBegin decides whether a trace over [first, max] needs a walk:
// true means the caller should inject one via SweepWalk and complete it
// with SweepFinish. False means the sweep is inactive here or the flow's
// memo already covers the TTLs the trace will probe (up to the first
// destination-reached reply).
func (n *Network) SweepBegin(key FlowKey, first, max uint8) bool {
	f := &n.flows
	if first > max || !n.sweepActive() || f.rec.active {
		return false
	}
	if key.Proto == packet.ProtoUDP && !n.flowActive() {
		// UDP walks are slot-keyed: a master walk plus its port-cycle
		// aliases need the full entries map, which the cache-off sweep's
		// single per-trace slot cannot hold. Cache-off UDP stays per-probe.
		return false
	}
	if n.flowActive() {
		e := f.entries[key]
		if key.Proto == packet.ProtoUDP {
			if e == nil {
				e = n.udpAlias(key)
			}
			if e != nil && e.swept {
				// This slot already has (or shares) a master walk; gaps in
				// its coverage are served lazily or fall back per probe —
				// re-walking the same trajectory cannot close them.
				return false
			}
		}
		if f.shared != nil {
			// Adopt any published coverage before deciding: a fully covered
			// flow skips the walk outright.
			ep := f.shared.cur.Load()
			if ep.version != f.sharedVer {
				f.shared = nil
				f.dirty = nil
			} else if se := ep.entries[key]; se != nil && n.sharedAdoptable(se) {
				if e == nil {
					if f.entries == nil {
						f.entries = make(map[FlowKey]*flowEntry)
					}
					e = &flowEntry{}
					f.entries[key] = e
				}
				mergeReplies(&e.valid, &e.replies, se.valid, se.replies)
				adoptTouched(e, se)
			}
		}
		if e != nil && e.coveredTrace(first, max) {
			return false
		}
	} else if f.soOK && f.soE != nil && f.soKey == key && f.soE.coveredTrace(first, max) {
		return false
	}
	if h, ok := f.hints[hintKey{src: key.Src, dst: key.Dst}]; ok && int(h)-int(first)+1 <= sweepBypassYield {
		// Adaptive bypass: a previous trace of this (vp, destination)
		// reached at TTL h, so this trace expects at most h-first+1
		// derived replies — too few to pay for a full-depth walk plus its
		// backward scans. The trace runs per-probe, which is always
		// byte-identical; the hint only spends or saves time.
		f.sweepCtr(key.Proto).Bypasses++
		return false
	}
	return true
}

// coveredTrace reports whether the memo already answers every probe a
// traceroute over [first, max] would send: contiguous coverage from
// first up to a destination-reached reply or max.
func (e *flowEntry) coveredTrace(first, max uint8) bool {
	for t := int(first); t <= int(max); t++ {
		if e.valid[t>>6]&(1<<(uint(t)&63)) == 0 {
			return false
		}
		obs := &e.replies[t]
		if obs.Answered && (obs.ICMPType == packet.ICMPEchoReply || obs.ICMPType == packet.ICMPDestUnreach) {
			return true
		}
	}
	return true
}

// SweepWalk injects the single sweep probe (built by the prober at the
// trace's MaxTTL) and records its full trajectory. The virtual time the
// walk consumed is returned for the caller's observation but rolled back
// off the clock: the walk is bookkeeping, not a probe, and clock parity
// with the per-probe oracle requires it to be time-free. The caller must
// complete the walk with SweepFinish.
func (n *Network) SweepWalk(out *Iface, pkt *packet.Packet, key FlowKey) time.Duration {
	f := &n.flows
	var e *flowEntry
	if n.flowActive() {
		if f.entries == nil {
			f.entries = make(map[FlowKey]*flowEntry)
		}
		e = f.entries[key]
		if e == nil {
			e = &flowEntry{}
			f.entries[key] = e
		}
		f.hotKey, f.hotE, f.hotOK = key, e, true
	} else {
		// Cache off: a single per-trace slot, reset for every walk. The
		// provenance resets to unknown (nil) until SweepFinish stamps the
		// new flow's touched set — unknown is always evicted, so an
		// unfinished slot can never dodge a churn scope.
		e = f.soE
		if e == nil {
			e = &flowEntry{}
		}
		e.valid = [4]uint64{}
		e.derived = [4]uint64{}
		e.touched, e.touchAll, e.tainted = nil, false, false
		f.soKey, f.soE, f.soOK = key, e, true
	}
	e.steps = e.steps[:0]
	e.t0 = pkt.IP.TTL
	e.maxTTL = 255
	e.swept = false
	e.terminalLocal = false
	e.tailMinT = 0
	pkt.Mark = 1
	pkt.SetLineageIP(true)
	f.sweepCtr(key.Proto).Walks++
	f.recBranches = f.recBranches[:0]
	start := n.clock
	f.rec = flowRec{active: true, entry: e, key: key, start: start}
	n.touchRemote(out)
	n.Transmit(out, pkt)
	n.Run()
	elapsed := n.clock - start
	n.clock = start
	return elapsed
}

// SweepFinish completes the walk begun by SweepWalk: it memoizes the
// walk's own observation at its TTL, marks the trajectory swept, and
// derives every TTL in [first, walkTTL) the memo does not already cover —
// inheriting the walk's observation where the probe provably follows the
// whole trajectory, composing a reply where the expiry point and shape
// are provable, and leaving a gap (live fallback) everywhere else.
func (n *Network) SweepFinish(key FlowKey, first uint8, obs ProbeObs) {
	f := &n.flows
	rec := f.rec
	if !rec.active {
		return
	}
	e := rec.entry
	f.rec = flowRec{}
	ctr := f.sweepCtr(key.Proto)
	if rec.bad {
		// Poisoned walk (budget exhaustion or mid-drain invalidation): the
		// trace falls back to per-probe simulation.
		f.touchReset()
		f.recBranches = f.recBranches[:0]
		e.steps = e.steps[:0]
		e.swept = false
		ctr.Fallbacks++
		return
	}
	e.swept = true
	e.terminalLocal = rec.localSeen
	e.tailMinT = rec.minT
	if key.Proto == packet.ProtoUDP {
		// Stamp the walk's ECMP decision list and resolve the branch
		// class's canonical port before any shape is learned from this
		// recording, then index the walk so sibling slots can alias it.
		e.branches = append(e.branches[:0], f.recBranches...)
		e.port = canonPort(key, e.branches)
		n.registerMaster(key)
	}
	f.recBranches = f.recBranches[:0]
	tl, tlOK := f.takeTouched()
	n.learnShape(&rec, obs, tl, tlOK)
	applyTouched(e, tl, tlOK)
	n.taintCheck(e, tlOK)
	f.touchReset()
	n.memoize(e, key, e.t0, obs, false)
	if key.Proto == packet.ProtoUDP {
		// UDP derivation is lazy (FlowLookup's deriveSlot): the expiry
		// shapes for a fresh destination are learned by this very trace's
		// fallback probes, so an eager pass here would run before any
		// shape exists and permanently miss. The walk's own observation
		// above is the only eager memo.
		return
	}
	// Ascending with an early stop at the first destination-reached
	// reply: the traceroute loop stops there too, so replies above it
	// would be derived and never consumed (the sweep-only regression on
	// shallow traces). Gaps below it still fall back per probe.
	for t := int(first); t < int(e.t0); t++ {
		ttl := uint8(t)
		if e.valid[t>>6]&(1<<(uint(t)&63)) != 0 {
			o := &e.replies[t]
			if o.Answered && (o.ICMPType == packet.ICMPEchoReply || o.ICMPType == packet.ICMPDestUnreach) {
				break
			}
			continue
		}
		sc := n.sweepScan(e, ttl)
		switch {
		case sc.kind == scanReach:
			n.memoize(e, key, ttl, obs, true)
			ctr.Replies++
			n.learnReachHint(key, ttl, &obs)
			if obs.Answered && (obs.ICMPType == packet.ICMPEchoReply || obs.ICMPType == packet.ICMPDestUnreach) {
				return
			}
		case sc.kind == scanExpire && sc.exact:
			if comp, ok := n.composeExpiry(e, key, sc.step, ttl); ok {
				n.memoize(e, key, ttl, comp, true)
				ctr.Replies++
			}
		}
	}
}

// scanKind classifies what the backward scan proved about a derived TTL.
type scanKind uint8

const (
	// scanInvalid: the trajectory is not trusted at this TTL (NoteTTLMin
	// floor violated, or the TTL is not below the walk's).
	scanInvalid scanKind = iota
	// scanReach: the probe passes every recorded step and inherits the
	// walk's terminal observation.
	scanReach
	// scanExpire: the probe expires at (or while being processed just
	// before) step; exact means provably on arrival at step.
	scanExpire
)

type scanResult struct {
	kind  scanKind
	step  int
	exact bool
}

// sweepScan walks the recorded trajectory with every propagated TTL
// field patched down to the derived TTL and finds the first step whose
// expiry checks fire. Monotonicity does the heavy lifting: shrinking the
// initial TTL only lowers propagated values, so a check that fails first
// at step k cannot have fired earlier, and the recorded branch decisions
// hold down to each step's NoteTTLMin floor.
func (n *Network) sweepScan(e *flowEntry, ttl uint8) scanResult {
	d := int(e.t0) - int(ttl)
	if d <= 0 || len(e.steps) == 0 {
		return scanResult{kind: scanInvalid}
	}
	for k := range e.steps {
		st := &e.steps[k]
		if ttl < st.minT {
			return scanResult{kind: scanInvalid}
		}
		if _, isHost := st.to.Owner.(*Host); isHost {
			// Hosts answer or drop without ever checking a TTL.
			continue
		}
		last := k == len(e.steps)-1
		if len(st.mpls) > 0 {
			top := int(st.mpls[0].TTL)
			if packet.LineageLSEPropagated(st.lineage, 0) {
				top -= d
			}
			ip := int(st.ip.TTL)
			if packet.LineageIPPropagated(st.lineage) {
				ip -= d
			}
			underBad := false
			for i := 1; i < len(st.mpls); i++ {
				if packet.LineageLSEPropagated(st.lineage, i) && int(st.mpls[i].TTL)-d <= 0 {
					underBad = true
				}
			}
			if top <= 1 || ip <= 0 || underBad {
				// Exact only for a provable arrival expiry of the top LSE;
				// an exhausted inner field means the true expiry hides in
				// this or an earlier step's label processing — live decides.
				return scanResult{kind: scanExpire, step: k, exact: top == 1 && ip >= 1 && !underBad}
			}
		} else if !(last && e.terminalLocal) {
			ip := int(st.ip.TTL)
			if packet.LineageIPPropagated(st.lineage) {
				ip -= d
			}
			if ip <= 1 {
				return scanResult{kind: scanExpire, step: k, exact: ip == 1}
			}
		}
	}
	if ttl < e.tailMinT {
		return scanResult{kind: scanInvalid}
	}
	return scanResult{kind: scanReach}
}

// composeExpiry synthesizes the observation of a provable arrival expiry
// at step k from its learned reply shape, rebuilding the RFC 4950 quoted
// stack from the recorded snapshot patched down by the TTL delta.
func (n *Network) composeExpiry(e *flowEntry, key FlowKey, k int, ttl uint8) (ProbeObs, bool) {
	st := &e.steps[k]
	sk, ok := shapeKeyAt(st, key, e.port)
	if !ok {
		return ProbeObs{}, false
	}
	sh, ok := n.flows.shapes[sk]
	if !ok {
		return ProbeObs{}, false
	}
	// The composed reply's validity now also rests on the reply path the
	// shape was learned over: fold its provenance into the entry so a
	// churn scope covering only the return path still evicts this flow.
	if sh.touchAll {
		e.touched, e.touchAll = nil, true
	} else if !e.touchAll && !touchedCovers(e.touched, false, sh.touched) {
		e.touched = unionTouched(e.touched, sh.touched)
	}
	obs := ProbeObs{
		Answered: sh.answered,
		From:     sh.from,
		ReplyTTL: sh.replyTTL,
		ICMPType: sh.icmpType,
		ICMPCode: sh.icmpCode,
		Advance:  st.offset + sh.retDelay,
	}
	if sh.hasMPLS {
		d := e.t0 - ttl
		stack := make(packet.LabelStack, len(st.mpls))
		copy(stack, st.mpls)
		for i := range stack {
			if packet.LineageLSEPropagated(st.lineage, i) {
				stack[i].TTL -= d
			}
		}
		obs.MPLS = stack
	}
	return obs, true
}

// sweepResume runs one probe of a swept flow live without disturbing the
// walk: resumed at the step before the scan's expiry point when the
// prefix is trusted, injected from the vantage point otherwise. The
// observation is memoized by the caller's FlowFinish as usual (and the
// expiry's shape learned), so the gap closes for the next trace.
func (n *Network) sweepResume(out *Iface, pkt *packet.Packet, e *flowEntry, key FlowKey, ttl uint8) time.Duration {
	f := &n.flows
	f.sweepCtr(key.Proto).Fallbacks++
	start := n.clock
	pkt.Mark = 1
	f.rec = flowRec{active: true, resume: true, entry: e, key: key, start: start}
	n.touchRemote(out)
	if sc := n.sweepScan(e, ttl); sc.kind == scanExpire && sc.step > 0 {
		fr := &e.steps[sc.step-1]
		d := e.t0 - ttl
		id := pkt.IP.ID
		pkt.IP = fr.ip
		pkt.IP.ID = id
		pkt.Lineage = fr.lineage
		if pkt.LineageIP() {
			pkt.IP.TTL -= d
		}
		// A plain copy, not pooled storage: the probe packet is the
		// prober's (never pool-released), so a pooled stack would leak out
		// of the free list.
		pkt.MPLS = append(pkt.MPLS[:0], fr.mpls...)
		for i := range pkt.MPLS {
			if packet.LineageLSEPropagated(pkt.Lineage, i) {
				pkt.MPLS[i].TTL -= d
			}
		}
		n.seq++
		n.queue.push(event{at: start + fr.offset, seq: n.seq, to: fr.to, pkt: pkt})
		n.Run()
		return n.clock - start
	}
	return n.Inject(out, pkt)
}

// ---- UDP port-cycle slots ----
//
// A UDP Paris probe cycles its destination port over the 128 ports above
// UDPBasePort, changing the ECMP flow hash per probe: no single walk
// covers a UDP trace the way it covers an ICMP one. But the hash only
// *matters* where a router actually fans out. A walk records every ECMP
// decision it takes (router.notedNextHop/notedLabelHop → NoteFlowBranch)
// as (fan-out, index) pairs; any other slot whose own hash reproduces
// every recorded index takes the identical trajectory — forward path,
// reply rides at expiring LSRs (the time-exceeded is forwarded by the
// probe's own LFIB entry and hash, the same decision the walk recorded at
// that router's switch stage), and terminal delivery — so its flow key is
// aliased to the master's entry by pointer. One walk covers a whole
// branch class of the cycle; with no fan-outs on the path, one walk
// covers all 128 slots.

// UDPBasePort is the classic traceroute destination-port base; probes
// cycle over the udpCycle ports above it, one slot per probe token.
const UDPBasePort = 33434

// udpCycle is the length of the destination-port cycle.
const udpCycle = 128

// sweepBypassYield is the adaptive-bypass threshold: a trace whose reach
// hint promises at most this many derived replies skips the walk and
// runs per-probe. At or below this depth the walk's full-path drain plus
// its backward scans cost more than the handful of live probes it would
// replace (the shallow re-traces of the campaign's bootstrap).
const sweepBypassYield = 3

// maxFlowMasters caps the master walks indexed per (vp, destination,
// source port): beyond it new walks still memoize for their own slot but
// are not offered for aliasing, bounding the per-lookup validation scan.
// A path with b binary fan-outs has at most 2^b branch classes, so real
// topologies saturate far below the cap.
const maxFlowMasters = 16

// hintKey indexes the reach-depth hints the adaptive bypass consults.
type hintKey struct {
	src, dst netaddr.Addr
}

// branchRec is one recorded ECMP decision of a master walk: the probe's
// flow hash selected index idx of an n-way fan-out. Decisions are
// deduplicated by fan-out width — on one walk the hash is constant, so
// equal widths always yield equal indices.
type branchRec struct {
	n, idx uint16
}

// NoteFlowBranch records an ECMP decision taken while forwarding the
// marked walk probe of an in-flight UDP sweep recording. Routers call it
// from their hop-selection sites; everything else (ICMP walks, resumed
// fallbacks, unmarked traffic) is filtered out here or by the caller's
// Mark check.
func (n *Network) NoteFlowBranch(fan, idx uint16) {
	f := &n.flows
	if !f.sweepEnabled || !f.rec.active || f.rec.resume || f.rec.key.Proto != packet.ProtoUDP {
		return
	}
	for _, b := range f.recBranches {
		if b.n == fan {
			return
		}
	}
	f.recBranches = append(f.recBranches, branchRec{n: fan, idx: idx})
}

// slotHash computes the ECMP flow hash a probe of this flow would carry
// with the given destination port — the same packet.FlowHash the routers
// apply, over a synthetic header.
func slotHash(key FlowKey, port uint16) uint32 {
	udp := packet.UDP{SrcPort: key.A, DstPort: port}
	pkt := packet.Packet{
		IP:  packet.IPv4{Src: key.Src, Dst: key.Dst, Protocol: key.Proto},
		UDP: &udp,
	}
	return packet.FlowHash(&pkt)
}

// slotSatisfies reports whether a destination port's flow hash reproduces
// every ECMP decision in the recorded branch list.
func slotSatisfies(key FlowKey, port uint16, branches []branchRec) bool {
	if len(branches) == 0 {
		return true
	}
	h := slotHash(key, port)
	for _, b := range branches {
		if uint16(h%uint32(b.n)) != b.idx {
			return false
		}
	}
	return true
}

// canonPort resolves a branch class to its canonical port: the lowest
// cycle port satisfying every recorded branch. The walking slot itself
// always satisfies its own decisions, so the scan cannot come up empty.
// Canonical ports are stable across traces and walks — they depend only
// on the branch signature and the flow's hashed fields — which is what
// lets reply shapes learned under one slot serve every slot of the class.
func canonPort(key FlowKey, branches []branchRec) uint16 {
	if len(branches) == 0 {
		return UDPBasePort
	}
	for s := 0; s < udpCycle; s++ {
		if p := uint16(UDPBasePort + s); slotSatisfies(key, p, branches) {
			return p
		}
	}
	return key.B
}

// registerMaster indexes a completed UDP walk under its port-erased base
// key so sibling slots can find it for aliasing.
func (n *Network) registerMaster(key FlowKey) {
	f := &n.flows
	bk := key
	bk.B = 0
	mks := f.masters[bk]
	for _, mk := range mks {
		if mk == key {
			return
		}
	}
	if len(mks) >= maxFlowMasters {
		return
	}
	if f.masters == nil {
		f.masters = make(map[FlowKey][]FlowKey)
	}
	f.masters[bk] = append(mks, key)
}

// udpAlias resolves a missing flow key against the flow's master walks:
// on a branch-class match the master's entry is adopted by pointer, so
// the alias shares the trajectory, the memoized replies, and — because
// eviction is keyed on the shared entry's provenance — the same churn
// fate. Masters whose entries were evicted are pruned here, lazily.
func (n *Network) udpAlias(key FlowKey) *flowEntry {
	f := &n.flows
	if len(f.masters) == 0 || !n.sweepActive() {
		return nil
	}
	bk := key
	bk.B = 0
	mks := f.masters[bk]
	if len(mks) == 0 {
		return nil
	}
	kept := mks[:0]
	var found *flowEntry
	for _, mk := range mks {
		me := f.entries[mk]
		if me == nil || !me.swept {
			continue
		}
		kept = append(kept, mk)
		if found == nil && slotSatisfies(key, key.B, me.branches) {
			found = me
		}
	}
	if len(kept) == 0 {
		delete(f.masters, bk)
	} else {
		f.masters[bk] = kept
	}
	if found == nil {
		return nil
	}
	f.entries[key] = found
	f.sweep.UDP.Aliases++
	return found
}

// deriveSlot synthesizes the (key, ttl) observation from a swept UDP
// trajectory on demand — the lazy counterpart of SweepFinish's eager
// ICMP pass. Laziness is load-bearing, not an optimization: the reply
// shapes for a fresh destination are learned by the first trace's own
// fallback probes, after its SweepFinish has run, so only a per-lookup
// derivation ever sees them. The result is memoized, so each (slot
// class, TTL) pays the scan once.
func (n *Network) deriveSlot(e *flowEntry, key FlowKey, ttl uint8) (ProbeObs, bool) {
	if !e.swept || ttl >= e.t0 || e.valid[e.t0>>6]&(1<<(e.t0&63)) == 0 {
		return ProbeObs{}, false
	}
	f := &n.flows
	sc := n.sweepScan(e, ttl)
	switch {
	case sc.kind == scanReach:
		obs := e.replies[e.t0]
		n.memoize(e, key, ttl, obs, true)
		f.sweep.UDP.Replies++
		n.learnReachHint(key, ttl, &obs)
		return obs, true
	case sc.kind == scanExpire && sc.exact:
		if comp, ok := n.composeExpiry(e, key, sc.step, ttl); ok {
			n.memoize(e, key, ttl, comp, true)
			f.sweep.UDP.Replies++
			return comp, true
		}
	}
	return ProbeObs{}, false
}

// learnReachHint remembers the TTL at which a (vp, destination) pair's
// probes reach the destination, feeding SweepBegin's adaptive bypass.
// Hints are heuristic: they steer walk-or-not decisions only, never
// bytes, so they are not churn-scoped — a stale hint after reconvergence
// costs at most a suboptimal walk decision until relearned.
func (n *Network) learnReachHint(key FlowKey, ttl uint8, obs *ProbeObs) {
	f := &n.flows
	if !f.sweepEnabled || !obs.Answered ||
		(obs.ICMPType != packet.ICMPEchoReply && obs.ICMPType != packet.ICMPDestUnreach) {
		return
	}
	if f.hints == nil {
		f.hints = make(map[hintKey]uint8)
	}
	f.hints[hintKey{src: key.Src, dst: key.Dst}] = ttl
}
