package netsim

import (
	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
)

// Host is an end system: it answers echo requests, returns port-unreachable
// for UDP probes aimed at closed ports, and hands every other packet
// addressed to it to its Handler (the prober's receive path). Hosts never
// forward.
type Host struct {
	name string
	If   *Iface

	// InitTTL seeds the IP TTL of packets the host originates (64, the
	// Linux default, matching the <64,64> signature row of Table 1).
	InitTTL uint8

	// Handler receives packets addressed to the host that it does not
	// answer itself. It may be nil.
	Handler func(net *Network, pkt *packet.Packet)
}

// NewHost creates a host with one interface bearing addr inside prefix.
func NewHost(name string, addr netaddr.Addr, prefix netaddr.Prefix) *Host {
	h := &Host{name: name, InitTTL: 64}
	h.If = &Iface{Owner: h, Name: "eth0", Addr: addr, Prefix: prefix}
	return h
}

// Name implements Node.
func (h *Host) Name() string { return h.name }

// Addr returns the host's interface address.
func (h *Host) Addr() netaddr.Addr { return h.If.Addr }

// Receive implements Node.
func (h *Host) Receive(net *Network, in *Iface, pkt *packet.Packet) {
	if pkt.IP.Dst != h.If.Addr {
		return // hosts do not forward
	}
	pool := net.PacketPool()
	switch {
	case pkt.IP.Protocol == packet.ProtoICMP && pkt.ICMP != nil && pkt.ICMP.Type == packet.ICMPEchoRequest:
		reply := pool.Packet()
		reply.IP = packet.IPv4{
			TTL:      h.InitTTL,
			Protocol: packet.ProtoICMP,
			Src:      h.If.Addr,
			Dst:      pkt.IP.Src,
		}
		icmp := pool.ICMP()
		icmp.Type, icmp.ID, icmp.Seq = packet.ICMPEchoReply, pkt.ICMP.ID, pkt.ICMP.Seq
		reply.ICMP = icmp
		reply.PayloadLen = pkt.PayloadLen
		net.Transmit(h.If, reply)
	case pkt.IP.Protocol == packet.ProtoUDP && pkt.UDP != nil:
		reply := pool.Packet()
		reply.IP = packet.IPv4{
			TTL:      h.InitTTL,
			Protocol: packet.ProtoICMP,
			Src:      h.If.Addr,
			Dst:      pkt.IP.Src,
		}
		icmp := pool.ICMP()
		icmp.Type, icmp.Code = packet.ICMPDestUnreach, packet.CodePortUnreach
		q := pool.Quote()
		q.IP, q.ID, q.Seq = pkt.IP, pkt.UDP.SrcPort, pkt.UDP.DstPort
		icmp.Quote = q
		reply.ICMP = icmp
		net.Transmit(h.If, reply)
	default:
		if h.Handler != nil {
			// The packet is recycled when Receive returns; a handler that
			// retains it (the prober stores matched replies) must call
			// net.AdoptPacket first.
			h.Handler(net, pkt)
		}
	}
}

// Send emits a packet from the host's interface and drains the fabric,
// returning the virtual time consumed.
func (h *Host) Send(net *Network, pkt *packet.Packet) {
	net.Transmit(h.If, pkt)
}
