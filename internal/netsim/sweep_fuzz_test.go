package netsim

import (
	"testing"

	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
)

// FuzzLineageBackwardScan fuzzes the backward scan that derives
// smaller-TTL observations from a swept trajectory (sweep.go). The fuzzer
// decodes arbitrary bytes into a synthetic flowEntry — mixed Host and
// router steps, 0–3 label stack entries, arbitrary lineage bits, TTL
// floors — and checks sweepScan against two independent oracles of the
// affine lineage model:
//
//   - a forward reference interpreter that re-derives each patched TTL
//     field as recorded + slope·(ttl − t0) and frames inner-LSE underflow
//     as "the patch newly exhausted a field the walk itself saw alive";
//   - the monotonicity theorem: shrinking the initial TTL only lowers
//     propagated fields, so the expiry step is non-increasing as the
//     derived TTL decreases, and an expiring trajectory can never flip
//     back to reach.
//
// Any disagreement means a derived observation would diverge from what a
// live per-probe run produces — exactly the bug class the equivalence
// golden test would only catch if a campaign happened to hit it. A
// verdict of scanInvalid (fall back to a live probe) is always sound and
// is only checked for agreement, never required.
func FuzzLineageBackwardScan(f *testing.F) {
	// Seeds: a plain unlabeled path, a labeled path with propagated top,
	// a non-propagated tunnel with an inner LSE, a host-only path, and a
	// floor-violating trajectory.
	f.Add([]byte{8, 0, 3, 0x00, 8, 0, 0x00, 7, 0})
	f.Add([]byte{12, 0, 1, 0x0a, 12, 0, 0x1a, 10, 0, 200, 0x1c, 9, 0, 200, 199})
	f.Add([]byte{6, 1, 0, 0x01, 6, 0, 0x04, 5, 0, 255})
	f.Add([]byte{30, 0, 0, 0x08, 30, 25, 0x08, 29, 28})
	f.Add([]byte{0, 0, 0, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, ok := decodeFuzzEntry(data)
		if !ok {
			return
		}
		net := New(1)
		prevExpire := -1 // expiry step at the previous (larger) ttl
		sawExpire := false
		for ttl := int(e.t0) - 1; ttl >= 0; ttl-- {
			got := net.sweepScan(e, uint8(ttl)) // must not panic, whatever the bytes
			want := refScan(e, uint8(ttl))
			if got != want {
				t.Fatalf("ttl %d (t0 %d, %d steps): sweepScan %+v, reference %+v",
					ttl, e.t0, len(e.steps), got, want)
			}
			switch got.kind {
			case scanExpire:
				if sawExpire && got.step > prevExpire {
					t.Fatalf("ttl %d: expiry step %d after step %d at a larger ttl — monotonicity broken",
						ttl, got.step, prevExpire)
				}
				prevExpire, sawExpire = got.step, true
			case scanReach:
				if sawExpire {
					t.Fatalf("ttl %d: reach below a ttl that already expired at step %d", ttl, prevExpire)
				}
			}
		}
	})
}

// decodeFuzzEntry builds a synthetic swept flowEntry from fuzz bytes:
// header [t0, terminalLocal, tailMinT], then per step
// [flags, ipTTL, minT, labelTTLs...] with flags packing the owner kind,
// label count and lineage bits. Returns ok=false when the bytes cannot
// fund a single step.
func decodeFuzzEntry(data []byte) (*flowEntry, bool) {
	if len(data) < 4 {
		return nil, false
	}
	e := &flowEntry{
		t0:            data[0],
		swept:         true,
		terminalLocal: data[1]&1 != 0,
		tailMinT:      data[2],
	}
	hostPfx := netaddr.MustParsePrefix("10.99.0.0/24")
	host := NewHost("fz", hostPfx.Nth(1), hostPfx)
	rtr := &opaqueNode{}
	data = data[3:]
	for len(data) >= 3 && len(e.steps) < 8 {
		flags := data[0]
		nlab := int(flags>>1) & 3
		if len(data) < 3+nlab {
			break
		}
		st := trajStep{
			ip:   packet.IPv4{TTL: data[1]},
			minT: data[2],
		}
		if flags&1 != 0 {
			st.to = &Iface{Owner: host}
		} else {
			st.to = &Iface{Owner: rtr}
		}
		if flags&0x08 != 0 {
			st.lineage |= uint32(1) << 31 // IP TTL propagated
		}
		for i := 0; i < nlab; i++ {
			st.mpls = append(st.mpls, packet.LSE{Label: 100 + uint32(i), TTL: data[3+i]})
			if flags&(0x10<<uint(i)) != 0 {
				st.lineage |= 1 << uint(i)
			}
		}
		e.steps = append(e.steps, st)
		data = data[3+nlab:]
	}
	if len(e.steps) == 0 {
		return nil, false
	}
	return e, true
}

// FuzzUDPSlotClasses fuzzes the UDP port-cycle branch-class algebra that
// lets one walk cover many slots (sweep.go): a walk from some slot
// records its ECMP decisions as (fan-out, index) pairs, and any slot
// whose own flow hash reproduces every index is aliased onto the walk's
// trajectory, with reply shapes keyed on the class's canonical port. The
// fuzzer builds the branch list a walk from an arbitrary slot would
// record — arbitrary flow identity, arbitrary fan-out widths, indices
// from the real packet.FlowHash — and checks the invariants the aliasing
// relies on:
//
//   - reflexivity: the walking slot satisfies its own recording;
//   - the canonical port is an in-cycle slot that itself satisfies the
//     recording (the canonPort scan can never fall through);
//   - class consistency: every satisfying slot would have recorded the
//     identical branch list, and resolves to the identical canonical
//     port — whichever slot of a class walks first, aliases adopt the
//     same trajectory and learn shapes under the same key.
//
// A violation of the last invariant means a reply shape learned under
// one trace could be served to a slot on a different ECMP path — the
// silent cross-path corruption the equivalence goldens would only catch
// if a campaign happened to roll the colliding ports.
func FuzzUDPSlotClasses(f *testing.F) {
	f.Add(uint32(0x0a000001), uint32(0x0a630007), uint16(0x1234), byte(3), []byte{2, 4, 3})
	f.Add(uint32(0xc0a80101), uint32(0x08080808), uint16(0xbeef), byte(127), []byte{})
	f.Add(uint32(1), uint32(2), uint16(0), byte(0), []byte{16, 16, 2, 5, 9})
	f.Fuzz(func(t *testing.T, src, dst uint32, flowID uint16, slot byte, fans []byte) {
		key := FlowKey{
			Src:   netaddr.Addr(src),
			Dst:   netaddr.Addr(dst),
			Proto: packet.ProtoUDP,
			A:     flowID,
			B:     UDPBasePort + uint16(slot)%udpCycle,
		}
		// Record the walk the way NoteFlowBranch would: fan-outs are 2–8
		// wide, deduplicated by width (one walk has one hash, so equal
		// widths always repeat the same index).
		record := func(port uint16) []branchRec {
			h := slotHash(key, port)
			var bs []branchRec
			for _, fb := range fans {
				n := uint16(2 + fb%7)
				dup := false
				for _, b := range bs {
					if b.n == n {
						dup = true
						break
					}
				}
				if !dup {
					bs = append(bs, branchRec{n: n, idx: uint16(h % uint32(n))})
				}
			}
			return bs
		}
		branches := record(key.B)
		if !slotSatisfies(key, key.B, branches) {
			t.Fatalf("walking slot %d fails its own recording %+v", key.B, branches)
		}
		cp := canonPort(key, branches)
		if cp < UDPBasePort || cp >= UDPBasePort+udpCycle {
			t.Fatalf("canonical port %d outside the cycle", cp)
		}
		if !slotSatisfies(key, cp, branches) {
			t.Fatalf("canonical port %d does not satisfy %+v", cp, branches)
		}
		for s := 0; s < udpCycle; s++ {
			p := uint16(UDPBasePort + s)
			if !slotSatisfies(key, p, branches) {
				continue
			}
			peer := record(p)
			if len(peer) != len(branches) {
				t.Fatalf("slot %d records %d branches, walker recorded %d", p, len(peer), len(branches))
			}
			for i := range peer {
				if peer[i] != branches[i] {
					t.Fatalf("slot %d records %+v at %d, walker recorded %+v — same class, different decisions",
						p, peer[i], i, branches[i])
				}
			}
			if cp2 := canonPort(key, peer); cp2 != cp {
				t.Fatalf("slot %d resolves canonical port %d, walker resolved %d — shape keys would fragment",
					p, cp2, cp)
			}
		}
	})
}

// refScan is the reference interpreter: a forward walk over the recorded
// trajectory with every propagated field re-derived from the affine
// model, value(ttl) = recorded + (ttl − t0) when the lineage bit is set
// and value(ttl) = recorded when it is not. It is written against the
// model, not the implementation: inner-LSE underflow is framed as "the
// patch newly exhausted a field the recorded walk saw alive", which for
// non-propagated fields is impossible by construction.
func refScan(e *flowEntry, ttl uint8) scanResult {
	shift := int(ttl) - int(e.t0)
	if shift >= 0 || len(e.steps) == 0 {
		return scanResult{kind: scanInvalid}
	}
	val := func(rec uint8, prop bool) int {
		if prop {
			return int(rec) + shift
		}
		return int(rec)
	}
	for k := range e.steps {
		st := &e.steps[k]
		if ttl < st.minT {
			// The recorded branch decisions are only trusted down to the
			// step's NoteTTLMin floor.
			return scanResult{kind: scanInvalid}
		}
		if _, isHost := st.to.Owner.(*Host); isHost {
			continue
		}
		if len(st.mpls) > 0 {
			top := val(st.mpls[0].TTL, packet.LineageLSEPropagated(st.lineage, 0))
			ip := val(st.ip.TTL, packet.LineageIPPropagated(st.lineage))
			newlyDead := false
			for i := 1; i < len(st.mpls); i++ {
				rec := int(st.mpls[i].TTL)
				if v := val(st.mpls[i].TTL, packet.LineageLSEPropagated(st.lineage, i)); v <= 0 && v < rec {
					newlyDead = true
				}
			}
			if top <= 1 || ip <= 0 || newlyDead {
				return scanResult{kind: scanExpire, step: k, exact: top == 1 && ip >= 1 && !newlyDead}
			}
		} else if !(k == len(e.steps)-1 && e.terminalLocal) {
			if ip := val(st.ip.TTL, packet.LineageIPPropagated(st.lineage)); ip <= 1 {
				return scanResult{kind: scanExpire, step: k, exact: ip == 1}
			}
		}
	}
	if ttl < e.tailMinT {
		return scanResult{kind: scanInvalid}
	}
	return scanResult{kind: scanReach}
}
