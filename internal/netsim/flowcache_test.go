package netsim

import (
	"testing"
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
)

// opaqueNode is a Node that does not implement FlowCacheable: its presence
// must keep the flow cache inert.
type opaqueNode struct{ ifc *Iface }

func (o *opaqueNode) Name() string                                      { return "opaque" }
func (o *opaqueNode) Receive(net *Network, in *Iface, p *packet.Packet) {}

// cacheableNode opts in (or out) explicitly.
type cacheableNode struct {
	ifc *Iface
	ok  bool
}

func (c *cacheableNode) Name() string                                      { return "cacheable" }
func (c *cacheableNode) Receive(net *Network, in *Iface, p *packet.Packet) {}
func (c *cacheableNode) FlowCacheable() bool                               { return c.ok }

func testKey(n byte) FlowKey {
	return FlowKey{
		Src:   netaddr.AddrFrom4(10, 0, 0, 1),
		Dst:   netaddr.AddrFrom4(10, 0, 0, n),
		Proto: packet.ProtoICMP,
		A:     0x1234,
	}
}

// TestFlowCachePurityGating checks that the cache only engages on a
// deterministic fabric: host-only fabrics are pure; a lossy or
// bandwidth-modeled link, a node that does not report FlowCacheable, a
// node that reports false, or an installed Trace hook each keep it inert.
func TestFlowCachePurityGating(t *testing.T) {
	net, _, _ := pairedHosts(t, 1, time.Millisecond)
	net.SetFlowCacheEnabled(true)
	if !net.flowActive() {
		t.Fatal("host-only fabric should be pure")
	}

	// A Trace hook must disable serving and recording.
	net.Trace = func(at time.Duration, to *Iface, pkt *packet.Packet) {}
	if net.flowActive() {
		t.Error("cache active with a Trace hook installed")
	}
	net.Trace = nil
	if !net.flowActive() {
		t.Error("cache should re-engage once the Trace hook is gone")
	}

	// Loss injection breaks per-flow determinism.
	net.links[0].LossProb = 0.5
	net.InvalidateFlowCache() // force a purity re-scan
	if net.flowActive() {
		t.Error("cache active on a lossy link")
	}
	net.links[0].LossProb = 0

	// Bandwidth modeling makes timing occupancy-dependent.
	net.links[0].BytesPerSec = 1e6
	net.InvalidateFlowCache()
	if net.flowActive() {
		t.Error("cache active on a bandwidth-modeled link")
	}
	net.links[0].BytesPerSec = 0
	net.InvalidateFlowCache()
	if !net.flowActive() {
		t.Error("cache should re-engage once links are clean")
	}

	// A node without the FlowCacheable interface is opaque: inert.
	op := &opaqueNode{}
	net.AddNode(op)
	net.InvalidateFlowCache()
	if net.flowActive() {
		t.Error("cache active with an opaque node")
	}
}

// TestFlowCacheableOptOut checks the node-level opt-out: a node reporting
// FlowCacheable() == false (a rate-limiting router, say) keeps the cache
// inert; flipping it back on re-engages after a re-scan.
func TestFlowCacheableOptOut(t *testing.T) {
	net, _, _ := pairedHosts(t, 1, time.Millisecond)
	cn := &cacheableNode{ok: false}
	net.AddNode(cn)
	net.SetFlowCacheEnabled(true)
	if net.flowActive() {
		t.Error("cache active with a node opting out")
	}
	cn.ok = true
	net.InvalidateFlowCache()
	if !net.flowActive() {
		t.Error("cache inert after the node opted back in")
	}
}

// TestFlowCacheDisabledIsInert checks the disabled state: lookups never
// hit, probes fall through to plain injection, and no counters move.
func TestFlowCacheDisabledIsInert(t *testing.T) {
	net, _, h2 := pairedHosts(t, 1, time.Millisecond)
	if _, ok := net.FlowLookup(testKey(2), 3); ok {
		t.Fatal("lookup hit on a disabled cache")
	}
	if got := net.FlowCacheStats(); got != (FlowCacheStats{}) {
		t.Fatalf("disabled cache counted: %+v", got)
	}
	_ = h2
}

// TestSeedFlowCacheFrom checks replica seeding: memoized replies transfer
// (with copied slices, so growth is replica-local), trajectories do not,
// and entries with no valid replies are skipped.
func TestSeedFlowCacheFrom(t *testing.T) {
	src, _, _ := pairedHosts(t, 1, time.Millisecond)
	src.SetFlowCacheEnabled(true)

	obs := ProbeObs{Answered: true, From: netaddr.AddrFrom4(10, 0, 0, 2), ReplyTTL: 63, Advance: time.Millisecond}
	eA := &flowEntry{replies: make([]ProbeObs, 4)}
	eA.valid[0] = 1 << 3
	eA.replies[3] = obs
	eA.steps = []trajStep{{offset: time.Millisecond}} // must NOT transfer
	eEmpty := &flowEntry{}                            // no valid replies: skipped
	src.flows.entries = map[FlowKey]*flowEntry{
		testKey(2): eA,
		testKey(3): eEmpty,
	}

	dst, _, _ := pairedHosts(t, 1, time.Millisecond)
	dst.SetFlowCacheEnabled(true)
	dst.SeedFlowCacheFrom(src)

	if got, ok := dst.FlowLookup(testKey(2), 3); !ok || got.From != obs.From ||
		got.ReplyTTL != obs.ReplyTTL || got.Advance != obs.Advance || !got.Answered {
		t.Fatalf("seeded lookup = %+v, %v", got, ok)
	}
	ne := dst.flows.entries[testKey(2)]
	if len(ne.steps) != 0 {
		t.Error("trajectory steps leaked across fabrics")
	}
	if &ne.replies[0] == &eA.replies[0] {
		t.Error("reply slice shares backing with the source")
	}
	if _, ok := dst.flows.entries[testKey(3)]; ok {
		t.Error("entry with no valid replies was seeded")
	}
}
