package netsim

import (
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
)

// This file implements the fabric's flow-trajectory cache. Forwarding in
// the simulated data plane is a pure function of the flow key (src, dst,
// protocol, transport flow fields) while the control plane is static, so
// the first probe on a flow records its trajectory — the ordered
// (ingress iface, arrival offset, packet-header snapshot) steps — and
// later probes either replay a memoized (flow, TTL) → reply observation in
// O(1) or fast-forward to the recorded frontier and resume live simulation
// there, turning an L-hop traceroute from O(L²) into O(L) router visits.
//
// Correctness rests on three pillars:
//
//   - Purity. The cache only engages when every node is deterministic
//     (hosts, or routers reporting FlowCacheable) and no link injects loss
//     or models bandwidth; down links are fine (they drop
//     deterministically). A Trace hook also disables it, since tracing
//     must observe every delivery.
//
//   - TTL lineage. Every TTL field in flight is either an affine function
//     of the probe's initial TTL (propagated) or a constant seeded from
//     255 / an OS personality value. Routers label each field via
//     packet.Lineage, so a recorded snapshot can be patched for a probe
//     with a different initial TTL by adding the delta to propagated
//     fields only. Branches that compare a propagated against a constant
//     TTL (min-on-pop and RFC 3443 propagation) are the one place where a
//     larger initial TTL could diverge from the recording; routers report
//     them through NoteTTLMin, which turns each comparison into an
//     absolute upper bound on the initial TTLs the trajectory stays valid
//     for. Monotone checks (expiry, >0 guards) need no bound: a larger
//     initial TTL only raises propagated values, so a check that passed
//     during recording passes for every fast-forwarded probe.
//
//   - Invalidation. Any control-plane mutation (FIB/LFIB/bindings/OS
//     personality) flushes the cache through InvalidateFlowCache — the
//     same hooks that flush the per-router route caches — and poisons an
//     in-flight recording, so a mutation mid-drain can never leak a stale
//     step into the cache.
//
// Timing is exact, not approximate: step offsets are virtual-time deltas
// from injection, link delays are TTL-independent, and a memoized reply
// advances the clock by precisely the drain time the live run consumed,
// so RTTs, virtual-elapsed accounting, and Sent/Recv counters are
// byte-identical with the uncached path.

// FlowCacheable gates the flow cache on node determinism: a node that is
// not a Host must implement it and return true for the cache to engage.
// Routers return false when rate-limited ICMP generation makes their
// replies time-dependent.
type FlowCacheable interface {
	FlowCacheable() bool
}

// FlowKey identifies a forwarding equivalence class: all packets sharing
// it follow the same trajectory. A and B carry the transport flow fields
// the routers hash (ICMP: identifier, 0; UDP: source port, destination
// port).
type FlowKey struct {
	Src, Dst netaddr.Addr
	Proto    packet.Protocol
	A, B     uint16
}

// ProbeObs is a memoized probe outcome: everything the prober derives
// from a reply (or its absence), plus the virtual time the drain consumed
// so a replay advances the clock exactly as the live run did. The MPLS
// stack aliases the adopted reply's RFC 4950 extension stack and is
// shared read-only by every replay.
type ProbeObs struct {
	Answered bool
	From     netaddr.Addr
	ReplyTTL uint8
	ICMPType uint8
	ICMPCode uint8
	MPLS     packet.LabelStack
	Advance  time.Duration
}

// FlowCacheStats counts cache outcomes. Hits are memoized replies served
// without touching the event loop; FastForwards are probes resumed at a
// recorded frontier; Misses ran fully live (and recorded).
type FlowCacheStats struct {
	Hits         uint64
	Misses       uint64
	FastForwards uint64
	// Invalidations counts control-plane mutations that flushed the cache.
	Invalidations uint64
	// SharedHits counts the subset of Hits that were adopted from an
	// attached SharedFlowTable rather than recorded locally — trajectories
	// another replica paid for.
	SharedHits uint64
}

// trajStep is one recorded delivery of the (marked) forward packet: the
// ingress interface, the virtual-time offset from injection, and the
// packet headers as delivered, with their TTL lineage. minT is the
// smallest initial TTL this snapshot is proven valid for — the running
// floor of NoteTTLMin lower bounds accumulated by the processing of all
// earlier steps (see the sweep engine in sweep.go, the only consumer).
type trajStep struct {
	to      *Iface
	offset  time.Duration
	ip      packet.IPv4
	mpls    packet.LabelStack
	lineage uint32
	minT    uint8
}

// flowEntry holds one flow's state: the trajectory recorded by the most
// recent live (or resumed) probe, normalized to that probe's initial TTL
// t0, plus the per-TTL reply memo. maxTTL is the largest initial TTL the
// recorded prefix is proven valid for (accumulated from NoteTTLMin
// bounds). Only the last step — the frontier, where the t0 probe expired
// or was answered — is ever reconstructed; earlier steps exist for
// inspection and debugging.
type flowEntry struct {
	t0     uint8
	maxTTL uint8
	steps  []trajStep

	// swept marks a trajectory recorded by a full TTL-sweep walk
	// (sweep.go): every step is a trusted snapshot, so smaller initial
	// TTLs may be derived backward from the prefix. Cleared whenever the
	// steps are re-recorded by the ordinary frontier fast-forward, which
	// rebases t0 and leaves the prefix normalized to the old one.
	swept bool
	// terminalLocal records that the walk's final delivery was consumed
	// locally by a router (deliverLocal): such a terminal answers before
	// any IP TTL-expiry check, so backward derivation must not synthesize
	// a time-exceeded there.
	terminalLocal bool
	// tailMinT is the NoteTTLMin floor accumulated over the *entire* walk
	// (including the terminal's own processing); reusing the walk's
	// observation for a smaller TTL requires ttl >= tailMinT.
	tailMinT uint8

	// valid is a 256-bit presence set over replies, indexed by probe TTL.
	valid   [4]uint64
	replies []ProbeObs
	// derived flags the replies that were synthesized from a sweep walk
	// rather than observed live (bench accounting only; a live re-probe
	// overwrites the reply and clears the flag).
	derived [4]uint64

	// touched is the sorted set of fabric node indices this entry's
	// recorded activity — forward trajectories and reply paths alike —
	// has ever visited. Delta-invalidation (churn.go) evicts an entry
	// exactly when its touched set intersects a mutation scope; nil with
	// touchAll unset means unknown provenance, which is always evicted.
	touched  []int32
	touchAll bool
	// tainted marks an entry that recorded while the fabric deviated
	// from its pristine topology (an open churn deviance window): its
	// observations are valid locally until the repair evicts them, but
	// must never be published to a shared table.
	tainted bool

	// branches and port exist only on swept UDP trajectories (sweep.go).
	// branches is the walk's deduplicated ECMP decision list; any
	// port-cycle slot whose flow hash reproduces it shares this entry by
	// pointer (udpAlias). port is the branch class's canonical
	// destination port — the lowest cycle port satisfying branches —
	// used as the slot component of reply-shape keys so shapes are
	// learned once per class instead of once per raw port.
	branches []branchRec
	port     uint16
}

// flowRec is the in-flight recording state for the probe currently being
// drained. bad poisons the recording (budget exhaustion or a mid-drain
// invalidation); a poisoned probe is neither recorded nor memoized.
// resume marks a probe materialized from a swept trajectory: it runs live
// but must not overwrite the walk's steps or tighten its bounds — only
// its final observation is memoized (and its reply shape learned).
type flowRec struct {
	active bool
	bad    bool
	resume bool
	entry  *flowEntry
	key    FlowKey
	start  time.Duration

	// minT is the running NoteTTLMin floor (lower-bound counterpart of
	// flowEntry.maxTTL), stamped into each step as it is recorded.
	minT uint8

	// Reply-shape capture (sweep.go): the first TTL expiry observed during
	// this probe's drain, keyed by its synthesis context. localSeen records
	// a router-local delivery of the marked packet.
	expSeen   bool
	expDeep   bool
	localSeen bool
	expOff    time.Duration
	expKey    shapeKey
}

// FlowCache is the per-fabric cache state, embedded by value in Network
// so snapshot replicas start with it disabled and empty.
type FlowCache struct {
	enabled  bool
	pure     bool
	needScan bool
	entries  map[FlowKey]*flowEntry
	stats    FlowCacheStats
	rec      flowRec

	// Sweep-engine state (sweep.go). sweepEnabled gates the single-walk
	// TTL sweep independently of the cache proper; shapes memoizes learned
	// reply shapes; soKey/soE/soOK form the single-slot per-trace entry the
	// sweep uses when the cache itself is disabled.
	sweepEnabled bool
	sweep        SweepStats
	shapes       map[shapeKey]replyShape
	soKey        FlowKey
	soE          *flowEntry
	soOK         bool

	// hints maps (vp, destination) to the last observed reach TTL —
	// the yield predictor behind SweepBegin's adaptive walk bypass.
	// masters indexes completed UDP walks by port-erased flow key for
	// slot aliasing; recBranches is the scratch the in-flight walk's
	// ECMP decisions accumulate in before SweepFinish stamps them.
	hints       map[hintKey]uint8
	masters     map[FlowKey][]FlowKey
	recBranches []branchRec

	// hotKey/hotE memoize the last FlowLookup so the FlowProbe that
	// follows a miss reuses the entry without re-hashing the key. hotE may
	// be nil (flow never seen); hotOK distinguishes that from "no lookup
	// cached". Cleared on invalidation.
	hotKey FlowKey
	hotE   *flowEntry
	hotOK  bool

	// tBits/tList/tAll are the touch scratch for the recording in
	// flight: the set of node indices the drain has delivered to, as a
	// bitmap plus an insertion-order list for O(touched) reset. tAll
	// flags a delivery that could not be attributed to a registered
	// node, degrading the recording's provenance to "unknown".
	tBits []uint64
	tList []int32
	tAll  bool

	// shared, when non-nil, is the cross-fabric reply table this cache
	// participates in (see sharedflow.go). sharedOwner marks the fabric
	// whose topology keys the table: its mutations flush epochs, while a
	// mutated non-owner silently detaches. sharedVer is the epoch version
	// this cache subscribed at; a version mismatch on lookup means the
	// owner mutated and the subscription is stale. dirty tracks the flows
	// this (non-owner) cache recorded since the last Publish.
	shared      *SharedFlowTable
	sharedVer   uint64
	sharedOwner bool
	dirty       map[FlowKey]*flowEntry
}

// SetFlowCacheEnabled turns the flow-trajectory cache on or off. Enabling
// schedules a purity scan (performed lazily on the next probe); disabling
// drops all cached state.
func (n *Network) SetFlowCacheEnabled(on bool) {
	f := &n.flows
	f.enabled = on
	f.needScan = on || f.sweepEnabled
	if !on {
		f.entries = nil
		f.dirty = nil
		f.rec = flowRec{}
		f.hotE, f.hotOK = nil, false
	}
}

// FlowCacheEnabled reports whether the cache has been requested (it may
// still be inert on an impure fabric).
func (n *Network) FlowCacheEnabled() bool { return n.flows.enabled }

// FlowCacheStats returns the cache counters.
func (n *Network) FlowCacheStats() FlowCacheStats { return n.flows.stats }

// InvalidateFlowCache flushes every memoized trajectory and reply, poisons
// any in-flight recording, and schedules a purity re-scan. Routers call it
// from the same mutation hooks that flush their route caches. It also
// advances the fabric's topology generation and resolves the fabric's
// relationship to any attached shared table: the owner flushes the table
// (every published reply is stale for future subscribers), while a mutated
// replica merely detaches — the replies it published while still pristine
// remain valid for its siblings.
func (n *Network) InvalidateFlowCache() {
	n.topoGen++
	f := &n.flows
	if f.shared != nil {
		if f.sharedOwner {
			f.sharedVer = f.shared.Flush()
		} else {
			f.shared = nil
		}
		f.dirty = nil
	}
	if f.sweepEnabled {
		// Sweep state is derived from the same control plane: drop the
		// per-trace entry, every learned reply shape, the reach hints and
		// the master-walk index, and poison any in-flight walk or resumed
		// probe.
		f.soE, f.soOK = nil, false
		f.shapes = nil
		f.hints = nil
		f.masters = nil
		f.recBranches = f.recBranches[:0]
		f.needScan = true
		if f.rec.active {
			f.rec.bad = true
		}
	}
	if !f.enabled {
		return
	}
	f.entries = nil
	f.dirty = nil
	f.hotE, f.hotOK = nil, false
	f.stats.Invalidations++
	f.needScan = true
	if f.rec.active {
		f.rec.bad = true
	}
}

// TopoGen returns the fabric's control-plane mutation counter. Two reads
// returning the same value bracket a window with no topology mutations.
func (n *Network) TopoGen() uint64 { return n.topoGen }

// flowActive reports whether the cache may serve or record this probe,
// running the deferred purity scan if one is pending.
func (n *Network) flowActive() bool {
	f := &n.flows
	if !f.enabled || n.Trace != nil {
		return false
	}
	return n.purityOK()
}

// purityOK runs the deferred purity scan if one is pending and reports
// the result. Shared by the flow cache and the sweep engine, which are
// gated by exactly the same determinism rules.
func (n *Network) purityOK() bool {
	f := &n.flows
	if f.needScan {
		f.pure = n.flowPure()
		f.needScan = false
	}
	return f.pure
}

// flowPure verifies the fabric is deterministic per flow key: no lossy or
// bandwidth-modeled links, and every node either a Host or a node that
// reports itself cacheable.
func (n *Network) flowPure() bool {
	for _, l := range n.links {
		if l.LossProb > 0 || l.BytesPerSec > 0 {
			return false
		}
	}
	for _, nd := range n.nodes {
		if _, ok := nd.(*Host); ok {
			continue
		}
		fc, ok := nd.(FlowCacheable)
		if !ok || !fc.FlowCacheable() {
			return false
		}
	}
	return true
}

// FlowLookup serves a memoized reply for (key, ttl) if one exists. On a
// hit the caller replays it: advance the clock by obs.Advance and account
// the probe exactly as the live path would.
func (n *Network) FlowLookup(key FlowKey, ttl uint8) (ProbeObs, bool) {
	if !n.flowActive() {
		// With the cache off the sweep engine may still hold the current
		// trace's single-slot entry; serving from it keeps the "-no-flow-
		// cache" counters untouched (sweep activity has its own stats).
		if e, ok := n.sweepOnlyEntry(key); ok && e.valid[ttl>>6]&(1<<(ttl&63)) != 0 {
			return e.replies[ttl], true
		}
		return ProbeObs{}, false
	}
	f := &n.flows
	e := f.entries[key]
	f.hotKey, f.hotE, f.hotOK = key, e, true
	if e == nil || e.valid[ttl>>6]&(1<<(ttl&63)) == 0 {
		if key.Proto == packet.ProtoUDP && f.sweepEnabled {
			// Slot path: adopt a master walk for a first-contact slot, then
			// derive this TTL's reply from the shared trajectory on demand.
			if e == nil {
				if e = n.udpAlias(key); e != nil {
					f.hotE = e
					if e.valid[ttl>>6]&(1<<(ttl&63)) != 0 {
						f.stats.Hits++
						return e.replies[ttl], true
					}
				}
			}
			if e != nil && e.swept {
				if obs, ok := n.deriveSlot(e, key, ttl); ok {
					f.stats.Hits++
					return obs, true
				}
			}
		}
		if f.shared != nil {
			if obs, ok := n.sharedLookup(key, ttl, e); ok {
				return obs, true
			}
		}
		f.stats.Misses++
		return ProbeObs{}, false
	}
	f.stats.Hits++
	return e.replies[ttl], true
}

// sharedLookup consults the attached shared table after a local miss. On a
// hit the whole shared entry is adopted into the local cache — replies
// copied into locally owned backing, valid bits unioned — so every later
// TTL on the flow is a plain local hit. A version mismatch means the
// table's owner mutated since this fabric subscribed: the subscription is
// stale and the fabric detaches.
func (n *Network) sharedLookup(key FlowKey, ttl uint8, e *flowEntry) (ProbeObs, bool) {
	f := &n.flows
	ep := f.shared.cur.Load()
	if ep.version != f.sharedVer {
		f.shared = nil
		f.dirty = nil
		return ProbeObs{}, false
	}
	se := ep.entries[key]
	if se == nil || se.valid[ttl>>6]&(1<<(ttl&63)) == 0 {
		return ProbeObs{}, false
	}
	if !n.sharedAdoptable(se) {
		return ProbeObs{}, false
	}
	if e == nil {
		if f.entries == nil {
			f.entries = make(map[FlowKey]*flowEntry)
		}
		e = &flowEntry{}
		f.entries[key] = e
		f.hotE = e
	}
	mergeReplies(&e.valid, &e.replies, se.valid, se.replies)
	adoptTouched(e, se)
	f.stats.Hits++
	f.stats.SharedHits++
	return e.replies[ttl], true
}

// sharedAdoptable reports whether a shared entry may be adopted right
// now: while a churn deviance window is open, entries whose provenance
// is unknown or overlaps the window are off-limits — they were recorded
// against the pristine topology the window deviates from.
func (n *Network) sharedAdoptable(se *sharedFlowEntry) bool {
	c := &n.churn
	if c.devCount == 0 {
		return true
	}
	return !se.touchAll && se.touched != nil && !intersectsBits(se.touched, c.devBits)
}

// AdvanceClock moves virtual time forward by d: the memo-replay
// counterpart of the drain a live probe would have performed.
func (n *Network) AdvanceClock(d time.Duration) { n.clock += d }

// FlowProbe injects a marked probe through the cache: when the flow has a
// recorded trajectory valid for this initial TTL, the probe fast-forwards
// to the frontier and resumes live simulation there; otherwise it runs
// fully live. Either way the trajectory is (re)recorded and the caller
// must complete the probe with FlowFinish. Returns the virtual time
// consumed, exactly as Inject would. The packet must be unlabeled with
// IP.TTL == ttl, as built by the prober.
func (n *Network) FlowProbe(out *Iface, pkt *packet.Packet, key FlowKey, ttl uint8) time.Duration {
	if !n.flowActive() {
		if e, ok := n.sweepOnlyEntry(key); ok {
			return n.sweepResume(out, pkt, e, key, ttl)
		}
		return n.Inject(out, pkt)
	}
	f := &n.flows
	var e *flowEntry
	if f.hotOK && f.hotKey == key {
		e = f.hotE
	} else {
		e = f.entries[key]
	}
	if e == nil {
		if f.entries == nil {
			f.entries = make(map[FlowKey]*flowEntry)
		}
		e = &flowEntry{}
		f.entries[key] = e
	}
	if e.swept {
		// A swept trajectory must keep its prefix intact for backward
		// derivation: materialize this probe from the walk (or run it fully
		// live in resume mode) instead of re-recording over the steps.
		return n.sweepResume(out, pkt, e, key, ttl)
	}
	start := n.clock
	pkt.Mark = 1
	if len(e.steps) > 0 && ttl > e.t0 && ttl <= e.maxTTL {
		// Fast-forward: reconstruct the packet as it was delivered at the
		// frontier, patched for this probe's larger initial TTL, carrying
		// the current probe's transport layer and IP identifier (constant
		// along the path, and the source of the reply-match token).
		f.stats.FastForwards++
		fr := &e.steps[len(e.steps)-1]
		delta := ttl - e.t0
		id := pkt.IP.ID
		pkt.IP = fr.ip
		pkt.IP.ID = id
		pkt.Lineage = fr.lineage
		if pkt.LineageIP() {
			pkt.IP.TTL += delta
		}
		if len(fr.mpls) > 0 {
			// A plain copy, not pooled storage: the probe packet is the
			// prober's (never pool-released), so a pooled stack would leak
			// out of the free list.
			pkt.MPLS = append(pkt.MPLS[:0], fr.mpls...)
			for i := range pkt.MPLS {
				if pkt.Lineage&(1<<uint(i)) != 0 {
					pkt.MPLS[i].TTL += delta
				}
			}
		}
		// The frontier is re-recorded by the resumed run (rebased to this
		// probe's t0); the prefix keeps its offsets and ifaces, which are
		// TTL-independent.
		e.steps = e.steps[:len(e.steps)-1]
		e.t0 = ttl
		f.rec = flowRec{active: true, entry: e, key: key, start: start}
		n.touchRemote(out)
		n.seq++
		n.queue.push(event{at: start + fr.offset, seq: n.seq, to: fr.to, pkt: pkt})
		n.Run()
		return n.clock - start
	}
	// Full live run, recorded from scratch. (The miss was already counted
	// by the FlowLookup that preceded this call.)
	e.steps = e.steps[:0]
	e.t0 = ttl
	e.maxTTL = 255
	pkt.SetLineageIP(true)
	f.rec = flowRec{active: true, entry: e, key: key, start: start}
	n.touchRemote(out)
	return n.Inject(out, pkt)
}

// FlowFinish completes the probe begun by FlowProbe, memoizing its
// outcome for (the recording's) TTL unless the recording was poisoned by
// a budget-exhausted drain or a mid-drain invalidation.
func (n *Network) FlowFinish(ttl uint8, obs ProbeObs) {
	f := &n.flows
	rec := f.rec
	if !rec.active {
		return
	}
	e := rec.entry
	f.rec = flowRec{}
	if rec.bad {
		f.touchReset()
		if !rec.resume {
			// Poisoned: the steps may reflect pre-mutation state (or a loop
			// hit the budget); discard so every later probe re-runs live. A
			// resumed probe leaves the walk's steps alone — its own badness
			// poisons only its own memo.
			e.steps = e.steps[:0]
			e.swept = false
		}
		return
	}
	tl, tlOK := f.takeTouched()
	n.learnShape(&rec, obs, tl, tlOK)
	applyTouched(e, tl, tlOK)
	n.taintCheck(e, tlOK)
	n.memoize(e, rec.key, ttl, obs, false)
	n.learnReachHint(rec.key, ttl, &obs)
	f.touchReset()
}

// memoize stores obs as the (entry, ttl) reply, marking the entry dirty
// for shared-table publication. derived distinguishes sweep-synthesized
// replies from live observations in the stats.
func (n *Network) memoize(e *flowEntry, key FlowKey, ttl uint8, obs ProbeObs, derived bool) {
	f := &n.flows
	if f.enabled && f.shared != nil && !f.sharedOwner && !e.tainted {
		// A subscriber's fresh recording is publishable at the next phase
		// barrier, unless it recorded against a deviated topology
		// (tainted). (Adopted replies are never re-marked: adoption
		// happens in sharedLookup, which bypasses FlowFinish entirely.)
		if f.dirty == nil {
			f.dirty = make(map[FlowKey]*flowEntry)
		}
		f.dirty[key] = e
	}
	e.valid[ttl>>6] |= 1 << (ttl & 63)
	if derived {
		e.derived[ttl>>6] |= 1 << (ttl & 63)
	} else {
		e.derived[ttl>>6] &^= 1 << (ttl & 63)
	}
	if int(ttl) >= len(e.replies) {
		if int(ttl) < cap(e.replies) {
			// Grow within capacity; the backing array was zeroed at
			// allocation and replies never shrinks, so the exposed tail is
			// clean.
			e.replies = e.replies[:ttl+1]
		} else {
			grown := make([]ProbeObs, ttl+1, 2*int(ttl)+2)
			copy(grown, e.replies)
			e.replies = grown
		}
	}
	e.replies[ttl] = obs
}

// record captures one delivery of the marked forward packet, reusing the
// step slot (and its label-stack capacity) left by previous recordings so
// steady-state recording allocates nothing.
func (f *FlowCache) record(to *Iface, at time.Duration, pkt *packet.Packet) {
	if f.rec.resume {
		// A probe materialized from a swept trajectory runs live without
		// touching the walk's recorded steps.
		return
	}
	e := f.rec.entry
	if len(e.steps) < cap(e.steps) {
		e.steps = e.steps[:len(e.steps)+1]
	} else {
		e.steps = append(e.steps, trajStep{})
	}
	st := &e.steps[len(e.steps)-1]
	st.to = to
	st.offset = at - f.rec.start
	st.ip = pkt.IP
	st.lineage = pkt.Lineage
	st.minT = f.rec.minT
	st.mpls = append(st.mpls[:0], pkt.MPLS...)
}

// touchDelivery records that the drain being recorded delivered to this
// interface's owner. The union over a drain is the probe's touched set:
// the nodes whose state could have influenced its outcome (on a pure
// fabric, a node never delivered to cannot have).
func (n *Network) touchDelivery(to *Iface) {
	f := &n.flows
	if f.tAll {
		return
	}
	idx := to.ownerIdx
	if idx == 0 {
		i, ok := n.nodeIdx[to.Owner]
		if !ok {
			f.tAll = true
			return
		}
		idx = i + 1
		to.ownerIdx = idx
	}
	i := idx - 1
	w, b := int(i>>6), uint(i&63)
	for w >= len(f.tBits) {
		f.tBits = append(f.tBits, 0)
	}
	if f.tBits[w]&(1<<b) == 0 {
		f.tBits[w] |= 1 << b
		f.tList = append(f.tList, i)
	}
}

// touchRemote seeds the touch scratch with the first hop a probe is
// injected toward, so even a probe whose packet dies on the wire (down
// link) leaves a non-empty — and therefore evictable — provenance.
func (n *Network) touchRemote(out *Iface) {
	if out == nil || out.Link == nil {
		return
	}
	n.touchDelivery(out.Link.other(out))
}

// takeTouched returns the recording's touch scratch as a borrowed,
// unsorted view; ok is false when some delivery could not be attributed.
// Callers copy what they keep and then call touchReset.
func (f *FlowCache) takeTouched() ([]int32, bool) {
	return f.tList, !f.tAll
}

// touchReset clears the touch scratch for the next recording.
func (f *FlowCache) touchReset() {
	for _, i := range f.tList {
		f.tBits[int(i>>6)] &^= 1 << uint(i&63)
	}
	f.tList = f.tList[:0]
	f.tAll = false
}

// NoteTTLMin bounds the current recording's validity across a min(a, b)
// comparison of TTLs with the given lineages. Mixed comparisons are the
// only sites where a larger initial TTL can flip a branch the recording
// took: a propagated value grows one-for-one with the initial TTL while a
// constant stays put, so each comparison yields an absolute upper bound
// on initial TTLs for which the recorded branch (and therefore the
// trajectory) remains valid. Same-lineage comparisons and monotone checks
// are unaffected and need no call.
func (n *Network) NoteTTLMin(a, b uint8, aProp, bProp bool) {
	f := &n.flows
	if !f.rec.active || f.rec.resume {
		return
	}
	t0 := int(f.rec.entry.t0)
	switch {
	case aProp && !bProp && a < b:
		// a (propagated) won; it keeps winning upward while t0+Δ+(a-t0) < b.
		// Downward it only shrinks further, so no floor.
		noteMaxT(f, t0+int(b)-int(a)-1)
	case bProp && !aProp && a >= b:
		// b (propagated) won; it keeps winning upward while its grown value
		// ≤ a. Downward it only shrinks further, so no floor.
		noteMaxT(f, t0+int(a)-int(b))
	case aProp && !bProp && a >= b:
		// b (constant) won; upward is monotone-safe, but a smaller initial
		// TTL shrinks a below b and flips the branch: valid while
		// a-(t0-t) >= b, i.e. t >= t0-(a-b).
		noteMinT(f, t0-(int(a)-int(b)))
	case bProp && !aProp && a < b:
		// a (constant) won; a smaller initial TTL shrinks b to or below a:
		// valid while b-(t0-t) > a, i.e. t >= t0-(b-a)+1.
		noteMinT(f, t0-(int(b)-int(a))+1)
	}
}

// noteMaxT tightens the recording's upper validity bound (frontier
// fast-forward to larger initial TTLs).
func noteMaxT(f *FlowCache, maxT int) {
	if maxT > 255 {
		return
	}
	if maxT < 0 {
		maxT = 0
	}
	if uint8(maxT) < f.rec.entry.maxTTL {
		f.rec.entry.maxTTL = uint8(maxT)
	}
}

// noteMinT raises the recording's lower validity floor (backward sweep
// derivation to smaller initial TTLs).
func noteMinT(f *FlowCache, minT int) {
	if minT <= 0 {
		return
	}
	if minT > 255 {
		minT = 255
	}
	if uint8(minT) > f.rec.minT {
		f.rec.minT = uint8(minT)
	}
}

// SeedFlowCacheFrom copies src's memoized replies into this fabric's
// cache. Trajectories are not copied — their steps hold interface
// pointers local to src's fabric — so the first unseen TTL on each flow
// records afresh. Reply stacks are shared read-only with src and with
// sibling replicas; the reply slices themselves are copied so concurrent
// growth never touches shared backing. Callers seed replicas before
// driving them; src must be idle.
func (n *Network) SeedFlowCacheFrom(src *Network) {
	sf := &src.flows
	if len(sf.entries) == 0 {
		return
	}
	f := &n.flows
	if f.entries == nil {
		f.entries = make(map[FlowKey]*flowEntry, len(sf.entries))
	}
	for k, e := range sf.entries {
		if e.valid == ([4]uint64{}) {
			continue
		}
		ne := &flowEntry{valid: e.valid, touchAll: e.touchAll, tainted: e.tainted}
		ne.replies = append([]ProbeObs(nil), e.replies...)
		ne.touched = append([]int32(nil), e.touched...)
		f.entries[k] = ne
	}
}
