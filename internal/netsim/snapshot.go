package netsim

import (
	"errors"
	"fmt"

	"wormhole/internal/netaddr"
)

// Cloner builds a structural replica of an idle Network. The generator
// layer drives it: it snapshots each node (routers and hosts know how to
// deep-copy themselves), registering old→new node and interface mappings
// here, and Finish replicates the links and the fabric-wide address index
// onto the new Network.
//
// Snapshot invariants (also documented in DESIGN.md):
//
//   - The source fabric must be idle: no queued events. Snapshotting
//     mid-drain has no sensible meaning and is refused.
//   - The replica's RNG restarts from the source's original seed rather
//     than its current state (math/rand state is not copyable). Generated
//     worlds only consume fabric randomness for loss injection, which
//     campaigns do not enable, so replicas still replay identically to a
//     freshly built world.
//   - The replica gets a fresh packet pool; free lists are warm-up state,
//     not semantics.
type Cloner struct {
	src, dst *Network
	nodes    map[Node]Node
	ifaces   map[*Iface]*Iface
}

// BeginSnapshot starts a structural copy of the network, returning a
// Cloner whose destination is an empty fabric with the same seed, clock,
// and sequence counter. It fails if events are still queued.
func (n *Network) BeginSnapshot() (*Cloner, error) {
	if n.queue.len() > 0 {
		return nil, errors.New("netsim: cannot snapshot a fabric with queued events")
	}
	dst := New(n.seed)
	dst.clock = n.clock
	dst.seq = n.seq
	dst.stats = n.stats
	// Pre-size everything whose final cardinality the source already
	// knows: node and interface tables, and one arena block covering the
	// replica's whole link table. Steady-state inserts below then never
	// touch the allocator, which is what keeps Snapshot() at (far) under
	// one allocation per router.
	dst.nodes = make([]Node, 0, len(n.nodes))
	dst.nodeIdx = make(map[Node]int32, len(n.nodes))
	dst.ifaces = make(map[netaddr.Addr]*Iface, len(n.ifaces))
	dst.ReserveLinks(len(n.links))
	dst.links = make([]*Link, 0, len(n.links))
	return &Cloner{
		src:    n,
		dst:    dst,
		nodes:  make(map[Node]Node, len(n.nodes)),
		ifaces: make(map[*Iface]*Iface, len(n.ifaces)),
	}, nil
}

// Net returns the replica under construction.
func (c *Cloner) Net() *Network { return c.dst }

// PutNode records the replica of a source node and attaches it to the
// destination fabric. Call order defines the replica's node order, so
// callers iterate the source's Nodes() slice.
func (c *Cloner) PutNode(src, dst Node) {
	c.nodes[src] = dst
	c.dst.AddNode(dst)
}

// NodeOf returns the replica of a source node, or nil if not yet snapshot.
func (c *Cloner) NodeOf(src Node) Node { return c.nodes[src] }

// MapIface records the replica of a source interface. Node snapshot code
// calls it for every interface it creates, loopbacks included.
func (c *Cloner) MapIface(src, dst *Iface) { c.ifaces[src] = dst }

// Iface resolves a source interface to its replica (nil-safe, so remapping
// optional references needs no guards).
func (c *Cloner) Iface(src *Iface) *Iface {
	if src == nil {
		return nil
	}
	return c.ifaces[src]
}

// Finish replicates links (including dynamic state: Up, loss, bandwidth,
// transmitter occupancy) and the fabric-wide address index. Every source
// interface must have been mapped by then.
func (c *Cloner) Finish() error {
	for _, l := range c.src.links {
		a, b := c.ifaces[l.a], c.ifaces[l.b]
		if a == nil || b == nil {
			return fmt.Errorf("netsim: link %s—%s has unmapped endpoint", l.a, l.b)
		}
		nl := c.dst.Connect(a, b, l.Delay)
		nl.Up = l.Up
		nl.LossProb = l.LossProb
		nl.BytesPerSec = l.BytesPerSec
		nl.busyUntil = l.busyUntil
	}
	for addr, i := range c.src.ifaces {
		ni := c.ifaces[i]
		if ni == nil {
			return fmt.Errorf("netsim: registered interface %s not mapped", i)
		}
		c.dst.ifaces[addr] = ni
	}
	return nil
}

// Snapshot deep-copies a host onto the replica fabric. The packet handler
// is deliberately not copied: it closes over source-side state (the
// prober), so the replica's owner installs a fresh one.
func (h *Host) Snapshot(c *Cloner) *Host {
	nh := &Host{name: h.name, InitTTL: h.InitTTL}
	nh.If = &Iface{Owner: nh, Name: h.If.Name, Addr: h.If.Addr, Prefix: h.If.Prefix}
	c.MapIface(h.If, nh.If)
	c.PutNode(h, nh)
	return nh
}
