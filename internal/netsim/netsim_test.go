package netsim

import (
	"fmt"
	"testing"
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
)

func link30(t *testing.T, net *Network, a, b *Host, prefix string, delay time.Duration) {
	t.Helper()
	net.Connect(a.If, b.If, delay)
	if err := net.RegisterIface(a.If); err != nil {
		t.Fatal(err)
	}
	if err := net.RegisterIface(b.If); err != nil {
		t.Fatal(err)
	}
}

func pairedHosts(t *testing.T, seed int64, delay time.Duration) (*Network, *Host, *Host) {
	t.Helper()
	net := New(seed)
	p := netaddr.MustParsePrefix("10.0.0.0/30")
	h1 := NewHost("h1", p.Nth(1), p)
	h2 := NewHost("h2", p.Nth(2), p)
	net.AddNode(h1)
	net.AddNode(h2)
	link30(t, net, h1, h2, "10.0.0.0/30", delay)
	return net, h1, h2
}

func TestEchoOverOneLink(t *testing.T) {
	net, h1, h2 := pairedHosts(t, 1, 5*time.Millisecond)
	var got *packet.Packet
	h1.Handler = func(net *Network, pkt *packet.Packet) { net.AdoptPacket(pkt); got = pkt }

	probe := &packet.Packet{
		IP: packet.IPv4{
			TTL:      64,
			Protocol: packet.ProtoICMP,
			Src:      h1.Addr(),
			Dst:      h2.Addr(),
		},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 42, Seq: 1},
	}
	elapsed := net.Inject(h1.If, probe)
	if got == nil {
		t.Fatal("no echo reply received")
	}
	if got.ICMP.Type != packet.ICMPEchoReply || got.ICMP.ID != 42 || got.ICMP.Seq != 1 {
		t.Errorf("reply = %+v", got.ICMP)
	}
	if got.IP.TTL != 64 {
		t.Errorf("reply TTL = %d, want host init TTL 64", got.IP.TTL)
	}
	if elapsed != 10*time.Millisecond {
		t.Errorf("RTT = %v, want 10ms", elapsed)
	}
}

func TestUDPProbeGetsPortUnreachable(t *testing.T) {
	net, h1, h2 := pairedHosts(t, 1, time.Millisecond)
	var got *packet.Packet
	h1.Handler = func(net *Network, pkt *packet.Packet) { net.AdoptPacket(pkt); got = pkt }

	probe := &packet.Packet{
		IP: packet.IPv4{
			TTL:      64,
			Protocol: packet.ProtoUDP,
			Src:      h1.Addr(),
			Dst:      h2.Addr(),
		},
		UDP: &packet.UDP{SrcPort: 33000, DstPort: 33434},
	}
	net.Inject(h1.If, probe)
	if got == nil {
		t.Fatal("no reply")
	}
	if got.ICMP == nil || got.ICMP.Type != packet.ICMPDestUnreach || got.ICMP.Code != packet.CodePortUnreach {
		t.Fatalf("reply = %v", got)
	}
	if got.ICMP.Quote == nil || got.ICMP.Quote.Seq != 33434 {
		t.Errorf("quote = %+v", got.ICMP.Quote)
	}
}

func TestHostDoesNotForward(t *testing.T) {
	net, h1, h2 := pairedHosts(t, 1, time.Millisecond)
	handled := false
	h2.Handler = func(_ *Network, _ *packet.Packet) { handled = true }
	probe := &packet.Packet{
		IP: packet.IPv4{
			TTL:      64,
			Protocol: packet.ProtoICMP,
			Src:      h1.Addr(),
			Dst:      netaddr.MustParseAddr("192.0.2.99"), // not h2
		},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest},
	}
	net.Inject(h1.If, probe)
	if handled {
		t.Error("host handled a packet not addressed to it")
	}
}

func TestDownLinkDropsPackets(t *testing.T) {
	net, h1, h2 := pairedHosts(t, 1, time.Millisecond)
	h1.If.Link.Up = false
	var got *packet.Packet
	h1.Handler = func(net *Network, pkt *packet.Packet) { net.AdoptPacket(pkt); got = pkt }
	probe := &packet.Packet{
		IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: h1.Addr(), Dst: h2.Addr()},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest},
	}
	net.Inject(h1.If, probe)
	if got != nil {
		t.Error("packet crossed a down link")
	}
}

func TestLossInjection(t *testing.T) {
	net, h1, h2 := pairedHosts(t, 7, time.Millisecond)
	h1.If.Link.LossProb = 1.0
	replies := 0
	h1.Handler = func(_ *Network, _ *packet.Packet) { replies++ }
	for i := 0; i < 10; i++ {
		probe := &packet.Packet{
			IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: h1.Addr(), Dst: h2.Addr()},
			ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, Seq: uint16(i)},
		}
		net.Inject(h1.If, probe)
	}
	if replies != 0 {
		t.Errorf("%d replies over a fully lossy link", replies)
	}
}

func TestRegisterIfaceRejectsDuplicates(t *testing.T) {
	net := New(1)
	p := netaddr.MustParsePrefix("10.0.0.0/30")
	h1 := NewHost("h1", p.Nth(1), p)
	h2 := NewHost("h2", p.Nth(1), p) // same address on purpose
	if err := net.RegisterIface(h1.If); err != nil {
		t.Fatal(err)
	}
	if err := net.RegisterIface(h2.If); err == nil {
		t.Error("duplicate address registration accepted")
	}
	h3 := NewHost("h3", 0, p)
	if err := net.RegisterIface(h3.If); err == nil {
		t.Error("unspecified address registration accepted")
	}
}

func TestVirtualClockAdvancesMonotonically(t *testing.T) {
	net, h1, h2 := pairedHosts(t, 1, 3*time.Millisecond)
	var at []time.Duration
	net.Trace = func(ts time.Duration, _ *Iface, _ *packet.Packet) { at = append(at, ts) }
	probe := &packet.Packet{
		IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: h1.Addr(), Dst: h2.Addr()},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest},
	}
	net.Inject(h1.If, probe)
	if len(at) != 2 {
		t.Fatalf("trace saw %d deliveries, want 2", len(at))
	}
	if at[0] != 3*time.Millisecond || at[1] != 6*time.Millisecond {
		t.Errorf("delivery times = %v", at)
	}
}

// loopNode bounces every packet straight back, creating an infinite loop the
// event budget must break.
type loopNode struct {
	name string
	ifc  *Iface
}

func (l *loopNode) Name() string { return l.name }
func (l *loopNode) Receive(net *Network, in *Iface, pkt *packet.Packet) {
	net.Transmit(in, pkt)
}

func TestEventBudgetBreaksForwardingLoops(t *testing.T) {
	net := New(1)
	p := netaddr.MustParsePrefix("10.0.0.0/30")
	a := &loopNode{name: "a"}
	a.ifc = &Iface{Owner: a, Name: "x", Addr: p.Nth(1), Prefix: p}
	b := &loopNode{name: "b"}
	b.ifc = &Iface{Owner: b, Name: "x", Addr: p.Nth(2), Prefix: p}
	net.AddNode(a)
	net.AddNode(b)
	net.Connect(a.ifc, b.ifc, time.Microsecond)

	done := make(chan struct{})
	go func() {
		net.Inject(a.ifc, &packet.Packet{IP: packet.IPv4{TTL: 1, Protocol: packet.ProtoICMP}, ICMP: &packet.ICMP{}})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("forwarding loop was not broken by the event budget")
	}
}

// TestOwnerAssertionAllowsOwningGoroutine: a bound fabric driven only by
// its owner never trips the assertion.
func TestOwnerAssertionAllowsOwningGoroutine(t *testing.T) {
	net, h1, h2 := pairedHosts(t, 1, time.Millisecond)
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- fmt.Errorf("owner drive panicked: %v", r)
				return
			}
			done <- nil
		}()
		net.BindOwner()
		for i := 0; i < 3; i++ {
			probe := &packet.Packet{
				IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: h1.Addr(), Dst: h2.Addr()},
				ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 9, Seq: uint16(i)},
			}
			net.Inject(h1.If, probe)
		}
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestOwnerAssertionPanicsCrossGoroutine: driving a fabric from a
// goroutine other than its bound owner is a driver bug and must panic.
func TestOwnerAssertionPanicsCrossGoroutine(t *testing.T) {
	net, h1, h2 := pairedHosts(t, 1, time.Millisecond)
	net.BindOwner() // owner: the test goroutine

	panicked := make(chan bool, 1)
	go func() {
		defer func() { panicked <- recover() != nil }()
		probe := &packet.Packet{
			IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: h1.Addr(), Dst: h2.Addr()},
			ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest},
		}
		net.Inject(h1.If, probe)
	}()
	if !<-panicked {
		t.Fatal("cross-goroutine drive of a bound fabric did not panic")
	}

	// ReleaseOwner hands the fabric over: a foreign goroutine may then
	// adopt and drive it.
	net.ReleaseOwner()
	go func() {
		defer func() { panicked <- recover() != nil }()
		net.BindOwner()
		probe := &packet.Packet{
			IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: h1.Addr(), Dst: h2.Addr()},
			ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 1, Seq: 1},
		}
		net.Inject(h1.If, probe)
	}()
	if <-panicked {
		t.Fatal("drive after ReleaseOwner+BindOwner panicked")
	}
}

// blockingNode parks in Receive until released, so the test can hold one
// drain open while a second goroutine attempts another.
type blockingNode struct {
	name    string
	ifc     *Iface
	entered chan struct{}
	release chan struct{}
}

func (b *blockingNode) Name() string { return b.name }
func (b *blockingNode) Receive(net *Network, in *Iface, pkt *packet.Packet) {
	close(b.entered)
	<-b.release
}

// TestConcurrentDrivePanics: even an unbound fabric detects two
// goroutines draining at once (the no-shared-fabric invariant).
func TestConcurrentDrivePanics(t *testing.T) {
	net := New(1)
	p := netaddr.MustParsePrefix("10.0.0.0/30")
	h := NewHost("h", p.Nth(1), p)
	b := &blockingNode{name: "b", entered: make(chan struct{}), release: make(chan struct{})}
	b.ifc = &Iface{Owner: b, Name: "x", Addr: p.Nth(2), Prefix: p}
	net.AddNode(h)
	net.AddNode(b)
	net.Connect(h.If, b.ifc, time.Millisecond)

	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		net.Inject(h.If, &packet.Packet{
			IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: h.Addr(), Dst: p.Nth(2)},
			ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest},
		})
	}()
	<-b.entered // first drain is now parked inside Receive

	panicked := make(chan bool, 1)
	go func() {
		defer func() { panicked <- recover() != nil }()
		net.Run()
	}()
	if !<-panicked {
		t.Error("concurrent drive did not panic")
	}
	close(b.release)
	<-firstDone
}

func TestIfaceRemoteAndString(t *testing.T) {
	_, h1, h2 := pairedHosts(t, 1, time.Millisecond)
	if h1.If.Remote() != h2.If {
		t.Error("Remote() wrong")
	}
	if got := h1.If.String(); got != "h1.eth0" {
		t.Errorf("String = %q", got)
	}
	lo := &Iface{Owner: h1, Name: "lo0", Addr: netaddr.MustParseAddr("1.1.1.1")}
	if lo.Remote() != nil {
		t.Error("loopback Remote must be nil")
	}
}

func TestBandwidthQueueing(t *testing.T) {
	net, h1, h2 := pairedHosts(t, 1, time.Millisecond)
	// ~1500 bytes/sec: a 28-byte echo occupies the wire for ~18.6ms.
	h1.If.Link.BytesPerSec = 1500

	var rtts []time.Duration
	h1.Handler = func(_ *Network, pkt *packet.Packet) {}
	send := func(seq uint16) time.Duration {
		start := net.Now()
		probe := &packet.Packet{
			IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: h1.Addr(), Dst: h2.Addr()},
			ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 1, Seq: seq},
		}
		// Inject two back to back before draining: the second must queue.
		net.Transmit(h1.If, probe)
		net.Run()
		return net.Now() - start
	}
	rtts = append(rtts, send(1))
	if rtts[0] <= 2*time.Millisecond {
		t.Fatalf("first RTT %v does not include serialization delay", rtts[0])
	}

	// Two packets injected together: deliveries must be serialized.
	var arrivals []time.Duration
	h2.Handler = nil
	net.Trace = func(ts time.Duration, to *Iface, _ *packet.Packet) {
		if to == h2.If {
			arrivals = append(arrivals, ts)
		}
	}
	p1 := &packet.Packet{IP: packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: h1.Addr(), Dst: h2.Addr()},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 1, Seq: 10}}
	p2 := p1.Clone()
	p2.ICMP.Seq = 11
	net.Transmit(h1.If, p1)
	net.Transmit(h1.If, p2)
	net.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	gap := arrivals[1] - arrivals[0]
	if gap < 15*time.Millisecond {
		t.Errorf("second packet did not queue: gap %v", gap)
	}
}

func TestInfiniteBandwidthUnchanged(t *testing.T) {
	net, h1, h2 := pairedHosts(t, 1, time.Millisecond)
	var got *packet.Packet
	h1.Handler = func(net *Network, pkt *packet.Packet) { net.AdoptPacket(pkt); got = pkt }
	probe := &packet.Packet{
		IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: h1.Addr(), Dst: h2.Addr()},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 2, Seq: 1},
	}
	elapsed := net.Inject(h1.If, probe)
	if got == nil || elapsed != 2*time.Millisecond {
		t.Errorf("RTT = %v, want exactly 2ms with no bandwidth model", elapsed)
	}
}
