// Package netsim is the packet-level simulation fabric the emulated
// network runs on: nodes joined by point-to-point links with one-way
// delays, driven by a virtual clock.
//
// The fabric is deliberately synchronous and single-goroutine: probing
// workloads inject a packet and drain the event queue to completion, which
// keeps per-probe behaviour deterministic (a property the paper's emulation
// validation depends on) and makes millions of probes cheap. Concurrency
// belongs to the layers above (the prober rate-limits and parallelizes
// whole probes, never individual hops).
//
// # Shard ownership
//
// Parallel campaign drivers scale out by building one independent fabric
// replica per worker (gen.Internet.Clone) and driving each replica from
// exactly one goroutine — shard-per-worker, no shared fabric. Two
// invariants make that safe:
//
//  1. a Network and everything attached to it (nodes, links, probers) is
//     driven by at most one goroutine at a time, and
//  2. once a worker adopts a replica with BindOwner, only that goroutine
//     ever drives it again.
//
// Both are enforced here as cheap debug assertions: Run always detects
// concurrent drives (an atomic busy flag), and a bound network also
// verifies the caller's goroutine identity on every drain. Violations are
// programming errors in the driver, so they panic.
package netsim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
)

// Node is anything attached to the fabric: routers and hosts.
type Node interface {
	// Name returns a unique human-readable identifier ("PE1", "vp0", ...).
	Name() string
	// Receive handles a packet arriving over in. Implementations forward
	// by calling net.Transmit and must not retain pkt after returning
	// unless they clone it.
	Receive(net *Network, in *Iface, pkt *packet.Packet)
}

// Iface is one end of a point-to-point link.
type Iface struct {
	Owner  Node
	Name   string // "left", "right", "lo0", ...
	Addr   netaddr.Addr
	Prefix netaddr.Prefix // subnet shared with the far end
	Link   *Link          // nil for loopbacks

	// ownerIdx memoizes the fabric node index of Owner, offset by one so
	// the zero value means "not resolved yet". Touch attribution (see
	// flowcache.go) resolves it once per interface and then never hits
	// the node-index map again.
	ownerIdx int32
}

// Remote returns the interface at the other end of the attached link, or
// nil for loopback interfaces.
func (i *Iface) Remote() *Iface {
	if i.Link == nil {
		return nil
	}
	return i.Link.other(i)
}

func (i *Iface) String() string {
	if i == nil {
		return "<nil>"
	}
	return i.Owner.Name() + "." + i.Name
}

// Link is a bidirectional point-to-point link.
type Link struct {
	a, b  *Iface
	Delay time.Duration // one-way propagation delay
	Up    bool

	// LossProb drops packets independently in each direction with this
	// probability, using the network's seeded RNG (failure injection).
	LossProb float64

	// BytesPerSec, when non-zero, models the link's serialization rate:
	// each packet occupies the link for size/BytesPerSec and subsequent
	// packets queue behind it (one FIFO per direction). Zero means
	// infinite bandwidth.
	BytesPerSec int64

	// busyUntil tracks per-direction transmitter occupancy (index 0 for
	// a->b, 1 for b->a).
	busyUntil [2]time.Duration
}

func (l *Link) other(i *Iface) *Iface {
	if i == l.a {
		return l.b
	}
	return l.a
}

// Endpoints returns both interfaces of the link.
func (l *Link) Endpoints() (*Iface, *Iface) { return l.a, l.b }

// Network is the simulation fabric: the set of nodes, links, the virtual
// clock, and the pending-delivery queue.
type Network struct {
	nodes  []Node
	links  []*Link
	ifaces map[netaddr.Addr]*Iface

	clock  time.Duration
	queue  eventQueue
	seq    uint64 // tiebreaker for deterministic ordering
	seed   int64
	rng    *rand.Rand
	budget int // remaining deliveries for the current drain (loop guard)
	stats  FabricStats

	// pool recycles the fabric's per-hop packet clones; single-goroutine
	// use is guaranteed by the same ownership discipline as the fabric
	// itself.
	pool packet.Pool

	// owner is the goroutine bound via BindOwner (0 = unbound); driving
	// flags an in-progress drain for concurrent-drive detection. checkTick
	// amortizes the goroutine-identity assertion: resolving the caller's id
	// walks the runtime stack, which at campaign call depths costs more
	// than a short drain, so the id is verified on the first drive after a
	// bind and every ownerCheckInterval drives after that. The concurrent-
	// drive CAS below stays on every drain.
	owner     uint64
	driving   int32
	checkTick int32

	// flows is the flow-trajectory cache (see flowcache.go). By-value so
	// fresh replicas start with it disabled and empty.
	flows FlowCache

	// topoGen counts control-plane mutations (every InvalidateFlowCache
	// call, whether or not the cache is enabled). Replica pools compare it
	// to decide whether a cached replica still matches its source fabric.
	// Scoped invalidations (see churn.go) advance the per-node scopeGen
	// generations instead, leaving topoGen — and pooled replicas — warm.
	topoGen  uint64
	scopeGen []uint64

	// nodeIdx maps each registered node to its index in nodes; touched
	// sets and churn scopes are bitmaps over these indices.
	nodeIdx map[Node]int32

	// churn is the churn-engine state (see churn.go). By-value so fresh
	// replicas start quiescent.
	churn churnState

	// faultIn, when set, is the lazy-fabric materialization hook: probers
	// call FaultIn(dst) before injecting a trace's first probe, giving the
	// generator the chance to materialize the stub AS owning dst before
	// any packet can enter its address block. faultInDepth brackets an
	// in-progress materialization (see BeginFaultIn in churn.go).
	faultIn      func(netaddr.Addr)
	faultInDepth int

	// linkBlock is the tail of the fabric's link arena: Connect carves
	// Link structs out of append-within-capacity blocks, so a fabric with
	// L links costs O(L/blockSize) allocations instead of L. Blocks are
	// never reallocated once handed out, keeping *Link pointers stable.
	linkBlock []Link

	// Trace, when non-nil, observes every delivery (pcap-ish hook).
	Trace func(at time.Duration, to *Iface, pkt *packet.Packet)
}

// DefaultEventBudget bounds deliveries per Run call; a forwarding loop in a
// misconfigured topology exhausts it instead of hanging the process.
const DefaultEventBudget = 1 << 20

// New creates an empty network with a seeded RNG (loss injection and any
// tie-breaking randomness derive from it, keeping runs reproducible).
func New(seed int64) *Network {
	return &Network{
		ifaces:  make(map[netaddr.Addr]*Iface),
		nodeIdx: make(map[Node]int32),
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// FabricStats counts event-loop occurrences that individual nodes cannot
// see. All counters are cumulative over the network's lifetime.
type FabricStats struct {
	// Deliveries is the number of events handed to Node.Receive.
	Deliveries uint64
	// BudgetExhausted counts Run calls that hit the event budget — each one
	// is a detected forwarding loop.
	BudgetExhausted uint64
	// DroppedEvents is the number of queued events discarded by those
	// budget-exhausted drains. A healthy fabric keeps this at zero.
	DroppedEvents uint64
}

// FabricStats returns the event-loop counters.
func (n *Network) FabricStats() FabricStats { return n.stats }

// PacketPool returns the fabric's packet free-list. Nodes use it for
// per-hop clones and generated replies; everything obtained from it is
// recycled after the receiving node returns, unless adopted.
func (n *Network) PacketPool() *packet.Pool { return &n.pool }

// AdoptPacket removes a delivered packet from pool ownership so the caller
// may retain it past Receive (the prober stores matched replies). Safe on
// packets that were never pooled.
func (n *Network) AdoptPacket(p *packet.Packet) { n.pool.Adopt(p) }

// SetFaultInHook installs (or clears) the lazy-fabric fault-in hook.
// Probers invoke it through FaultIn with a trace's destination before the
// first probe toward it is injected.
func (n *Network) SetFaultInHook(h func(netaddr.Addr)) { n.faultIn = h }

// FaultIn gives the fabric's owner a chance to materialize lazily-built
// state covering addr before a probe is sent toward it. A no-op unless a
// hook is installed (eager fabrics never pay for it).
func (n *Network) FaultIn(addr netaddr.Addr) {
	if n.faultIn != nil {
		n.faultIn(addr)
	}
}

// AddNode registers a node with the fabric.
func (n *Network) AddNode(node Node) {
	n.nodeIdx[node] = int32(len(n.nodes))
	n.nodes = append(n.nodes, node)
}

// Nodes returns all registered nodes.
func (n *Network) Nodes() []Node { return n.nodes }

// RegisterIface indexes an interface address (including loopbacks) so that
// OwnerOf can resolve addresses fabric-wide.
func (n *Network) RegisterIface(i *Iface) error {
	if i.Addr.IsUnspecified() {
		return fmt.Errorf("netsim: interface %s has no address", i)
	}
	if prev, dup := n.ifaces[i.Addr]; dup {
		return fmt.Errorf("netsim: address %s already bound to %s", i.Addr, prev)
	}
	n.ifaces[i.Addr] = i
	return nil
}

// OwnerOf resolves an address to the interface bearing it.
func (n *Network) OwnerOf(a netaddr.Addr) (*Iface, bool) {
	i, ok := n.ifaces[a]
	return i, ok
}

// Connect joins two interfaces with a link of the given one-way delay.
func (n *Network) Connect(a, b *Iface, delay time.Duration) *Link {
	l := n.allocLink()
	l.a, l.b, l.Delay, l.Up = a, b, delay, true
	a.Link, b.Link = l, l
	n.links = append(n.links, l)
	return l
}

// allocLink hands out one Link from the arena, opening a fresh block when
// the current one is full. Block size scales with the fabric so far, so a
// million-link build settles into a handful of large blocks.
func (n *Network) allocLink() *Link {
	if len(n.linkBlock) == cap(n.linkBlock) {
		size := 64
		if have := len(n.links); have > size {
			size = have
		}
		n.linkBlock = make([]Link, 0, size)
	}
	n.linkBlock = append(n.linkBlock, Link{})
	return &n.linkBlock[len(n.linkBlock)-1]
}

// ReserveLinks pre-sizes the link arena for n more Connect calls; the
// snapshot path uses it to carve a replica's whole link table from one
// block.
func (n *Network) ReserveLinks(count int) {
	if count > cap(n.linkBlock)-len(n.linkBlock) {
		n.linkBlock = make([]Link, 0, count)
	}
}

// IndexOf returns a node's stable fabric index (its position in Nodes()).
// Snapshot replicas preserve indices, so an index recorded against the
// source fabric resolves to the corresponding node on any replica.
func (n *Network) IndexOf(node Node) (int32, bool) {
	i, ok := n.nodeIdx[node]
	return i, ok
}

// Links returns all links.
func (n *Network) Links() []*Link { return n.links }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.clock }

// Transmit sends pkt out of interface out. Delivery to the remote end is
// scheduled after the queueing (bandwidth) and propagation delays; down
// links and loss-injected packets are silently dropped, as on a real wire.
func (n *Network) Transmit(out *Iface, pkt *packet.Packet) {
	l := out.Link
	if l == nil || !l.Up {
		n.pool.Release(pkt)
		return
	}
	if l.LossProb > 0 && n.rng.Float64() < l.LossProb {
		n.pool.Release(pkt) // ownership transferred to the wire; recycle drops
		return
	}
	depart := n.clock
	if l.BytesPerSec > 0 {
		dir := 0
		if out == l.b {
			dir = 1
		}
		start := depart
		if l.busyUntil[dir] > start {
			start = l.busyUntil[dir] // queue behind the packet on the wire
		}
		tx := time.Duration(int64(wireSize(pkt)) * int64(time.Second) / l.BytesPerSec)
		l.busyUntil[dir] = start + tx
		depart = l.busyUntil[dir]
	}
	n.seq++
	n.queue.push(event{
		at:  depart + l.Delay,
		seq: n.seq,
		to:  l.other(out),
		pkt: pkt,
	})
}

// wireSize estimates the on-wire byte count without serializing: IPv4
// header, 4 bytes per label stack entry, the transport header, and any
// opaque payload. ICMP errors carry their RFC 4884-padded quote.
func wireSize(pkt *packet.Packet) int {
	size := 20 + 4*len(pkt.MPLS) + pkt.PayloadLen
	switch {
	case pkt.ICMP != nil && pkt.ICMP.IsError():
		size += 8 + 128 + 16 // header + padded quote + extension estimate
	case pkt.ICMP != nil:
		size += 8
	case pkt.UDP != nil:
		size += 8
	}
	return size
}

// Inject introduces a packet as if node src emitted it from iface out at
// the current virtual time, then drains the queue until the fabric is idle.
// It returns the virtual time consumed.
func (n *Network) Inject(out *Iface, pkt *packet.Packet) time.Duration {
	start := n.clock
	n.Transmit(out, pkt)
	n.Run()
	return n.clock - start
}

// BindOwner adopts the fabric for the calling goroutine: every subsequent
// Run (and therefore Inject) must come from this goroutine. Parallel
// campaign workers call it right after cloning their replica; the serial
// engine never binds and only the concurrent-drive check applies.
func (n *Network) BindOwner() { n.owner, n.checkTick = gid(), 0 }

// ReleaseOwner clears the ownership binding (handing a replica to another
// worker requires the old owner to release it first).
func (n *Network) ReleaseOwner() { n.owner = 0 }

// ownerCheckInterval is how many drives may pass between goroutine-identity
// verifications of a bound fabric. The first drive after BindOwner is always
// verified, so handing a bound replica to the wrong goroutine trips the
// assertion immediately; a long-lived foreign driver is caught within one
// interval.
const ownerCheckInterval = 64

// assertDriver panics when the fabric is driven from a goroutine other
// than its bound owner (verified on a sampled schedule — see checkTick),
// or from two goroutines at once.
func (n *Network) assertDriver() {
	if n.owner != 0 {
		n.checkTick--
		if n.checkTick < 0 {
			n.checkTick = ownerCheckInterval - 1
			if g := gid(); g != n.owner {
				panic(fmt.Sprintf("netsim: fabric owned by goroutine %d driven from goroutine %d", n.owner, g))
			}
		}
	}
	if !atomic.CompareAndSwapInt32(&n.driving, 0, 1) {
		panic("netsim: fabric driven concurrently (one replica per worker, no shared fabric)")
	}
}

// gid returns the calling goroutine's id, parsed from the runtime stack
// header ("goroutine N [running]:"). Debug-assertion use only.
func gid() uint64 {
	var buf [32]byte
	m := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[len("goroutine "):m] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// Run drains the event queue until idle (or until the event budget is
// exhausted, which indicates a forwarding loop; the discarded events are
// counted in FabricStats so campaigns can surface the loop post-mortem).
func (n *Network) Run() {
	n.assertDriver()
	defer atomic.StoreInt32(&n.driving, 0)
	n.budget = DefaultEventBudget
	for n.queue.len() > 0 {
		if n.budget == 0 {
			// A loop was detected: account for and drop the remaining
			// events so the next Run starts clean. A trajectory recorded
			// from a looping probe is poisoned — it must re-run live (and
			// re-count the loop) every time.
			n.stats.BudgetExhausted++
			n.stats.DroppedEvents += uint64(n.queue.len())
			if n.flows.rec.active {
				n.flows.rec.bad = true
			}
			for _, ev := range n.queue.ev {
				n.pool.Release(ev.pkt)
			}
			n.queue.clear()
			return
		}
		n.budget--
		ev := n.queue.pop()
		if ev.at > n.clock {
			n.clock = ev.at
		}
		if n.Trace != nil {
			n.Trace(n.clock, ev.to, ev.pkt)
		}
		n.stats.Deliveries++
		if n.flows.rec.active {
			// Attribute every delivery of the recorded drain — forward
			// packet, replies, everything — to the probe's touched set.
			n.touchDelivery(ev.to)
			if ev.pkt.Mark != 0 {
				// The marked forward packet of a recorded probe: capture it
				// as delivered, before the node transforms it.
				n.flows.record(ev.to, n.clock, ev.pkt)
			}
		}
		ev.to.Owner.Receive(n, ev.to, ev.pkt)
		// Receive must not retain pkt (nodes that do — the prober — adopt
		// it first), so the clone can go straight back to the free list.
		n.pool.Release(ev.pkt)
	}
}

type event struct {
	at  time.Duration
	seq uint64
	to  *Iface
	pkt *packet.Packet
}

// eventQueue is a binary min-heap of events ordered by (at, seq). Events
// are stored by value and the sift routines are hand-rolled: pushing and
// popping touches no allocator, unlike container/heap whose interface
// methods box every element. Because (at, seq) is a strict total order,
// pop order — and therefore simulation output — is identical to any other
// correct heap over the same inserts.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

func (q *eventQueue) clear() {
	for i := range q.ev {
		q.ev[i] = event{} // drop pkt references
	}
	q.ev = q.ev[:0]
}

func (q *eventQueue) less(i, j int) bool {
	if q.ev[i].at != q.ev[j].at {
		return q.ev[i].at < q.ev[j].at
	}
	return q.ev[i].seq < q.ev[j].seq
}

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	top := q.ev[0]
	last := len(q.ev) - 1
	q.ev[0] = q.ev[last]
	q.ev[last] = event{} // drop pkt reference
	q.ev = q.ev[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.ev[i], q.ev[smallest] = q.ev[smallest], q.ev[i]
		i = smallest
	}
	return top
}
