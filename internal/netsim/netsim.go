// Package netsim is the packet-level simulation fabric the emulated
// network runs on: nodes joined by point-to-point links with one-way
// delays, driven by a virtual clock.
//
// The fabric is deliberately synchronous and single-goroutine: probing
// workloads inject a packet and drain the event queue to completion, which
// keeps per-probe behaviour deterministic (a property the paper's emulation
// validation depends on) and makes millions of probes cheap. Concurrency
// belongs to the layers above (the prober rate-limits and parallelizes
// whole probes, never individual hops).
//
// # Shard ownership
//
// Parallel campaign drivers scale out by building one independent fabric
// replica per worker (gen.Internet.Clone) and driving each replica from
// exactly one goroutine — shard-per-worker, no shared fabric. Two
// invariants make that safe:
//
//  1. a Network and everything attached to it (nodes, links, probers) is
//     driven by at most one goroutine at a time, and
//  2. once a worker adopts a replica with BindOwner, only that goroutine
//     ever drives it again.
//
// Both are enforced here as cheap debug assertions: Run always detects
// concurrent drives (an atomic busy flag), and a bound network also
// verifies the caller's goroutine identity on every drain. Violations are
// programming errors in the driver, so they panic.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
)

// Node is anything attached to the fabric: routers and hosts.
type Node interface {
	// Name returns a unique human-readable identifier ("PE1", "vp0", ...).
	Name() string
	// Receive handles a packet arriving over in. Implementations forward
	// by calling net.Transmit and must not retain pkt after returning
	// unless they clone it.
	Receive(net *Network, in *Iface, pkt *packet.Packet)
}

// Iface is one end of a point-to-point link.
type Iface struct {
	Owner  Node
	Name   string // "left", "right", "lo0", ...
	Addr   netaddr.Addr
	Prefix netaddr.Prefix // subnet shared with the far end
	Link   *Link          // nil for loopbacks
}

// Remote returns the interface at the other end of the attached link, or
// nil for loopback interfaces.
func (i *Iface) Remote() *Iface {
	if i.Link == nil {
		return nil
	}
	return i.Link.other(i)
}

func (i *Iface) String() string {
	if i == nil {
		return "<nil>"
	}
	return i.Owner.Name() + "." + i.Name
}

// Link is a bidirectional point-to-point link.
type Link struct {
	a, b  *Iface
	Delay time.Duration // one-way propagation delay
	Up    bool

	// LossProb drops packets independently in each direction with this
	// probability, using the network's seeded RNG (failure injection).
	LossProb float64

	// BytesPerSec, when non-zero, models the link's serialization rate:
	// each packet occupies the link for size/BytesPerSec and subsequent
	// packets queue behind it (one FIFO per direction). Zero means
	// infinite bandwidth.
	BytesPerSec int64

	// busyUntil tracks per-direction transmitter occupancy (index 0 for
	// a->b, 1 for b->a).
	busyUntil [2]time.Duration
}

func (l *Link) other(i *Iface) *Iface {
	if i == l.a {
		return l.b
	}
	return l.a
}

// Endpoints returns both interfaces of the link.
func (l *Link) Endpoints() (*Iface, *Iface) { return l.a, l.b }

// Network is the simulation fabric: the set of nodes, links, the virtual
// clock, and the pending-delivery queue.
type Network struct {
	nodes  []Node
	links  []*Link
	ifaces map[netaddr.Addr]*Iface

	clock  time.Duration
	queue  eventQueue
	seq    uint64 // tiebreaker for deterministic ordering
	rng    *rand.Rand
	budget int // remaining deliveries for the current drain (loop guard)

	// owner is the goroutine bound via BindOwner (0 = unbound); driving
	// flags an in-progress drain for concurrent-drive detection.
	owner   uint64
	driving int32

	// Trace, when non-nil, observes every delivery (pcap-ish hook).
	Trace func(at time.Duration, to *Iface, pkt *packet.Packet)
}

// DefaultEventBudget bounds deliveries per Run call; a forwarding loop in a
// misconfigured topology exhausts it instead of hanging the process.
const DefaultEventBudget = 1 << 20

// New creates an empty network with a seeded RNG (loss injection and any
// tie-breaking randomness derive from it, keeping runs reproducible).
func New(seed int64) *Network {
	return &Network{
		ifaces: make(map[netaddr.Addr]*Iface),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// AddNode registers a node with the fabric.
func (n *Network) AddNode(node Node) { n.nodes = append(n.nodes, node) }

// Nodes returns all registered nodes.
func (n *Network) Nodes() []Node { return n.nodes }

// RegisterIface indexes an interface address (including loopbacks) so that
// OwnerOf can resolve addresses fabric-wide.
func (n *Network) RegisterIface(i *Iface) error {
	if i.Addr.IsUnspecified() {
		return fmt.Errorf("netsim: interface %s has no address", i)
	}
	if prev, dup := n.ifaces[i.Addr]; dup {
		return fmt.Errorf("netsim: address %s already bound to %s", i.Addr, prev)
	}
	n.ifaces[i.Addr] = i
	return nil
}

// OwnerOf resolves an address to the interface bearing it.
func (n *Network) OwnerOf(a netaddr.Addr) (*Iface, bool) {
	i, ok := n.ifaces[a]
	return i, ok
}

// Connect joins two interfaces with a link of the given one-way delay.
func (n *Network) Connect(a, b *Iface, delay time.Duration) *Link {
	l := &Link{a: a, b: b, Delay: delay, Up: true}
	a.Link, b.Link = l, l
	n.links = append(n.links, l)
	return l
}

// Links returns all links.
func (n *Network) Links() []*Link { return n.links }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.clock }

// Transmit sends pkt out of interface out. Delivery to the remote end is
// scheduled after the queueing (bandwidth) and propagation delays; down
// links and loss-injected packets are silently dropped, as on a real wire.
func (n *Network) Transmit(out *Iface, pkt *packet.Packet) {
	l := out.Link
	if l == nil || !l.Up {
		return
	}
	if l.LossProb > 0 && n.rng.Float64() < l.LossProb {
		return
	}
	depart := n.clock
	if l.BytesPerSec > 0 {
		dir := 0
		if out == l.b {
			dir = 1
		}
		start := depart
		if l.busyUntil[dir] > start {
			start = l.busyUntil[dir] // queue behind the packet on the wire
		}
		tx := time.Duration(int64(wireSize(pkt)) * int64(time.Second) / l.BytesPerSec)
		l.busyUntil[dir] = start + tx
		depart = l.busyUntil[dir]
	}
	n.seq++
	heap.Push(&n.queue, &event{
		at:  depart + l.Delay,
		seq: n.seq,
		to:  l.other(out),
		pkt: pkt,
	})
}

// wireSize estimates the on-wire byte count without serializing: IPv4
// header, 4 bytes per label stack entry, the transport header, and any
// opaque payload. ICMP errors carry their RFC 4884-padded quote.
func wireSize(pkt *packet.Packet) int {
	size := 20 + 4*len(pkt.MPLS) + pkt.PayloadLen
	switch {
	case pkt.ICMP != nil && pkt.ICMP.IsError():
		size += 8 + 128 + 16 // header + padded quote + extension estimate
	case pkt.ICMP != nil:
		size += 8
	case pkt.UDP != nil:
		size += 8
	}
	return size
}

// Inject introduces a packet as if node src emitted it from iface out at
// the current virtual time, then drains the queue until the fabric is idle.
// It returns the virtual time consumed.
func (n *Network) Inject(out *Iface, pkt *packet.Packet) time.Duration {
	start := n.clock
	n.Transmit(out, pkt)
	n.Run()
	return n.clock - start
}

// BindOwner adopts the fabric for the calling goroutine: every subsequent
// Run (and therefore Inject) must come from this goroutine. Parallel
// campaign workers call it right after cloning their replica; the serial
// engine never binds and only the concurrent-drive check applies.
func (n *Network) BindOwner() { n.owner = gid() }

// ReleaseOwner clears the ownership binding (handing a replica to another
// worker requires the old owner to release it first).
func (n *Network) ReleaseOwner() { n.owner = 0 }

// assertDriver panics when the fabric is driven from a goroutine other
// than its bound owner, or from two goroutines at once.
func (n *Network) assertDriver() {
	if n.owner != 0 {
		if g := gid(); g != n.owner {
			panic(fmt.Sprintf("netsim: fabric owned by goroutine %d driven from goroutine %d", n.owner, g))
		}
	}
	if !atomic.CompareAndSwapInt32(&n.driving, 0, 1) {
		panic("netsim: fabric driven concurrently (one replica per worker, no shared fabric)")
	}
}

// gid returns the calling goroutine's id, parsed from the runtime stack
// header ("goroutine N [running]:"). Debug-assertion use only.
func gid() uint64 {
	var buf [32]byte
	m := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[len("goroutine "):m] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// Run drains the event queue until idle (or until the event budget is
// exhausted, which indicates a forwarding loop).
func (n *Network) Run() {
	n.assertDriver()
	defer atomic.StoreInt32(&n.driving, 0)
	n.budget = DefaultEventBudget
	for n.queue.Len() > 0 {
		if n.budget == 0 {
			// Drop the remaining events: a loop was detected. The queue is
			// cleared so the next Run starts clean.
			n.queue = n.queue[:0]
			return
		}
		n.budget--
		ev := heap.Pop(&n.queue).(*event)
		if ev.at > n.clock {
			n.clock = ev.at
		}
		if n.Trace != nil {
			n.Trace(n.clock, ev.to, ev.pkt)
		}
		ev.to.Owner.Receive(n, ev.to, ev.pkt)
	}
}

type event struct {
	at  time.Duration
	seq uint64
	to  *Iface
	pkt *packet.Packet
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
