package netsim

import (
	"sync"
	"testing"
	"time"
)

// seedFlowEntry plants a locally recorded reply into n's cache and dirty
// set, the state FlowProbe/FlowFinish would leave behind, without running
// a fabric. The empty Network passes the purity scan, so FlowLookup
// behaves exactly as on a real quiescent replica.
func seedFlowEntry(t *testing.T, n *Network, key FlowKey, ttl uint8, obs ProbeObs) {
	t.Helper()
	f := &n.flows
	if !f.enabled {
		t.Fatal("seedFlowEntry: cache not enabled")
	}
	e := f.entries[key]
	if e == nil {
		if f.entries == nil {
			f.entries = make(map[FlowKey]*flowEntry)
		}
		e = &flowEntry{}
		f.entries[key] = e
	}
	e.valid[ttl>>6] |= 1 << (ttl & 63)
	if int(ttl) >= len(e.replies) {
		grown := make([]ProbeObs, int(ttl)+1)
		copy(grown, e.replies)
		e.replies = grown
	}
	e.replies[ttl] = obs
	if f.shared != nil && !f.sharedOwner {
		if f.dirty == nil {
			f.dirty = make(map[FlowKey]*flowEntry)
		}
		f.dirty[key] = e
	}
}

func sharedKey(i int) FlowKey {
	return FlowKey{Src: 0x0a000001, Dst: 0x0a0000ff, A: uint16(i), B: 33434}
}

func sharedObs(i int, ttl uint8) ProbeObs {
	return ProbeObs{Answered: true, From: 0x0a000002, ReplyTTL: 250 - ttl, ICMPType: 11, Advance: time.Duration(i+1) * time.Millisecond}
}

// TestSharedFlowTablePublishUnion checks that publishing the same flow
// from two workers that observed different TTLs unions the replies
// instead of last-writer-wins, and that a third subscriber adopts the
// merged entry on a single lookup.
func TestSharedFlowTablePublishUnion(t *testing.T) {
	owner := New(1)
	owner.SetFlowCacheEnabled(true)
	table := owner.OwnSharedFlowCache()

	mk := func() *Network {
		n := New(1)
		n.SetFlowCacheEnabled(true)
		n.AttachSharedFlowCache(table)
		return n
	}
	a, b, c := mk(), mk(), mk()

	key := sharedKey(0)
	seedFlowEntry(t, a, key, 3, sharedObs(0, 3))
	seedFlowEntry(t, b, key, 5, sharedObs(0, 5))
	// Publish a first, then b: b's merge must keep a's TTL 3.
	table.Publish(a)
	table.Publish(b)
	if table.Len() != 1 {
		t.Fatalf("table has %d flows, want 1", table.Len())
	}

	for _, ttl := range []uint8{3, 5} {
		obs, ok := c.FlowLookup(key, ttl)
		if !ok {
			t.Fatalf("subscriber missed ttl %d after union publish", ttl)
		}
		want := sharedObs(0, ttl)
		if obs.Answered != want.Answered || obs.From != want.From ||
			obs.ReplyTTL != want.ReplyTTL || obs.Advance != want.Advance {
			t.Fatalf("ttl %d: got %+v want %+v", ttl, obs, want)
		}
	}
	st := c.FlowCacheStats()
	// TTL 3 consulted the shared table and adopted the whole entry; TTL 5
	// was then a plain local hit.
	if st.SharedHits != 1 || st.Hits != 2 || st.Misses != 0 {
		t.Fatalf("subscriber stats %+v, want 2 hits (1 shared), 0 misses", st)
	}
	if _, ok := c.FlowLookup(key, 9); ok {
		t.Fatal("unrecorded ttl served")
	}
}

// TestSharedFlowTableOwnerFlushDetaches checks the staleness protocol: a
// mutation on the owner opens a new epoch and subscribed replicas detach
// on their next lookup instead of adopting stale replies.
func TestSharedFlowTableOwnerFlushDetaches(t *testing.T) {
	owner := New(1)
	owner.SetFlowCacheEnabled(true)
	table := owner.OwnSharedFlowCache()

	rep := New(1)
	rep.SetFlowCacheEnabled(true)
	rep.AttachSharedFlowCache(table)
	seedFlowEntry(t, rep, sharedKey(1), 4, sharedObs(1, 4))
	table.Publish(rep)
	v0 := table.Version()

	gen0 := owner.TopoGen()
	owner.InvalidateFlowCache() // the router mutated() hook
	if owner.TopoGen() != gen0+1 {
		t.Fatal("owner mutation did not advance TopoGen")
	}
	if table.Version() != v0+1 || table.Len() != 0 {
		t.Fatalf("owner mutation: version %d len %d, want %d and 0", table.Version(), table.Len(), v0+1)
	}

	// A fresh subscriber of the old epoch must detach, not hit.
	stale := New(1)
	stale.SetFlowCacheEnabled(true)
	stale.AttachSharedFlowCache(table)
	owner.InvalidateFlowCache() // bump again so stale's version is old
	if _, ok := stale.FlowLookup(sharedKey(1), 4); ok {
		t.Fatal("stale subscriber served a flushed reply")
	}
	if stale.SharedFlowCache() != nil {
		t.Fatal("stale subscriber did not detach")
	}

	// The stale-epoch re-release window: a replica with an unpublished
	// dirty set whose release (Publish) races an owner Flush must never
	// leak its recordings into the new epoch — whichever side wins the
	// table mutex, the post-flush epoch stays empty. Run under -race by
	// TestRaceTier.
	late := New(1)
	late.SetFlowCacheEnabled(true)
	late.AttachSharedFlowCache(table)
	seedFlowEntry(t, late, sharedKey(3), 5, sharedObs(3, 5))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); owner.InvalidateFlowCache() }()
	go func() { defer wg.Done(); table.Publish(late) }()
	wg.Wait()
	if table.Len() != 0 {
		t.Fatalf("stale publish leaked %d entries into the flushed epoch", table.Len())
	}

	// Sequential replay of the losing interleaving, so the skip-and-detach
	// path is pinned deterministically: flush first, then release.
	late2 := New(1)
	late2.SetFlowCacheEnabled(true)
	late2.AttachSharedFlowCache(table)
	seedFlowEntry(t, late2, sharedKey(4), 6, sharedObs(4, 6))
	owner.InvalidateFlowCache()
	table.Publish(late2)
	if table.Len() != 0 {
		t.Fatalf("post-flush publish leaked %d entries", table.Len())
	}
	if late2.SharedFlowCache() != nil {
		t.Fatal("stale publisher stayed attached")
	}
}

// TestSharedFlowTableReplicaMutationDetaches checks the asymmetric rule:
// a mutated replica detaches without flushing, and what it published
// while pristine keeps serving its siblings.
func TestSharedFlowTableReplicaMutationDetaches(t *testing.T) {
	owner := New(1)
	owner.SetFlowCacheEnabled(true)
	table := owner.OwnSharedFlowCache()

	rep := New(1)
	rep.SetFlowCacheEnabled(true)
	rep.AttachSharedFlowCache(table)
	seedFlowEntry(t, rep, sharedKey(2), 6, sharedObs(2, 6))
	table.Publish(rep)
	v0 := table.Version()

	rep.InvalidateFlowCache()
	if rep.SharedFlowCache() != nil {
		t.Fatal("mutated replica still attached")
	}
	if table.Version() != v0 || table.Len() != 1 {
		t.Fatalf("replica mutation flushed the table: version %d len %d", table.Version(), table.Len())
	}

	sib := New(1)
	sib.SetFlowCacheEnabled(true)
	sib.AttachSharedFlowCache(table)
	if _, ok := sib.FlowLookup(sharedKey(2), 6); !ok {
		t.Fatal("sibling lost the pristine-era reply")
	}
}

// TestSharedFlowTableConcurrency hammers the table from many replica
// goroutines — seeding, publishing their own dirty sets, adopting, and
// re-attaching after detach — while the owner's goroutine flushes epochs
// (the mid-campaign mutation path). Run under -race by TestRaceTier, this
// is the shared-cache concurrency proof: readers only ever see published
// epochs, writers only their own fabric plus the mutex-guarded swap.
func TestSharedFlowTableConcurrency(t *testing.T) {
	owner := New(1)
	owner.SetFlowCacheEnabled(true)
	table := owner.OwnSharedFlowCache()

	const (
		workers = 4
		iters   = 300
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		// The owner mutates mid-campaign every so often; every flush must
		// strand the subscribers safely.
		for i := 0; i < 25; i++ {
			owner.InvalidateFlowCache()
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := New(1)
			n.SetFlowCacheEnabled(true)
			n.AttachSharedFlowCache(table)
			for i := 0; i < iters; i++ {
				if n.SharedFlowCache() == nil {
					// Detached by an owner flush observed mid-lookup:
					// re-subscribe at the current epoch, as a fresh campaign
					// would.
					n.SetFlowCacheEnabled(false)
					n.SetFlowCacheEnabled(true)
					n.AttachSharedFlowCache(table)
				}
				key := sharedKey(w*iters + i)
				seedFlowEntry(t, n, key, uint8(1+i%12), sharedObs(i, uint8(1+i%12)))
				table.Publish(n)
				// Look up this worker's and (maybe) another worker's flows.
				n.FlowLookup(key, uint8(1+i%12))
				n.FlowLookup(sharedKey(((w+1)%workers)*iters+i), uint8(1+i%12))
			}
		}(w)
	}
	<-stop
	wg.Wait()

	// Post-quiescence sanity: a fresh subscriber can still adopt whatever
	// epoch survived the churn.
	n := New(1)
	n.SetFlowCacheEnabled(true)
	n.AttachSharedFlowCache(table)
	key := sharedKey(0xbeef)
	seedFlowEntry(t, n, key, 7, sharedObs(7, 7))
	table.Publish(n)
	sib := New(1)
	sib.SetFlowCacheEnabled(true)
	sib.AttachSharedFlowCache(table)
	if _, ok := sib.FlowLookup(key, 7); !ok {
		t.Fatal("post-churn publish not visible to a fresh subscriber")
	}
}
