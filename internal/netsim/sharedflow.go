package netsim

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file implements the cross-fabric flow-reply table. Structurally
// identical replicas of one fabric (see gen.Internet.Snapshot) compute
// identical replies for identical flow keys, so the memoized (flow, TTL)
// observations of FlowCache — though not its trajectories, whose steps
// hold fabric-local interface pointers — are shareable: worker N can hit
// on a reply worker M already paid for.
//
// The table is read-mostly by construction. Readers (FlowCache lookups on
// the replica fabrics' own goroutines) only ever see immutable state: an
// epoch, once published through the atomic pointer, is never written
// again. Writers batch. A replica accumulates its fresh recordings in a
// private dirty set and the campaign folds every worker's dirty set into
// one copy-on-write epoch at a phase barrier, when all fabrics are
// quiescent. Entries already present are unioned reply-by-reply — two
// workers probing the same flow at different TTLs both contribute — and
// since all replicas are structurally identical, overlapping observations
// are identical and the union is order-independent.
//
// Staleness is handled by versioning, keyed to the owner fabric's
// topology. The owner's InvalidateFlowCache (the router mutated() hook)
// calls Flush, which installs an empty epoch with a new version; replicas
// carry the version they subscribed at and self-detach on the first
// lookup that observes a newer epoch. A mutated *replica* detaches
// without flushing: the replies it published while still pristine were
// computed on the shared topology and remain valid for its siblings.

// sharedEpoch is one immutable-after-publish generation of the table.
type sharedEpoch struct {
	version uint64
	entries map[FlowKey]*sharedFlowEntry
}

// sharedFlowEntry mirrors flowEntry's reply memo without the trajectory:
// a 256-bit TTL presence set and the replies it indexes. Immutable after
// publish; reply MPLS stacks are shared read-only across all adopters.
type sharedFlowEntry struct {
	valid   [4]uint64
	replies []ProbeObs

	// touched/touchAll carry the publishing replica's provenance (see
	// flowcache.go): the node indices the recorded activity visited.
	// Structurally identical replicas index nodes identically, so the
	// sets are meaningful fabric-wide. ScopedFlush evicts intersecting
	// entries; deviance windows refuse to adopt them.
	touched  []int32
	touchAll bool
}

// SharedFlowTable is a topology-keyed, read-mostly reply table shared by
// a family of structurally identical fabrics. Obtain the owner side with
// Network.OwnSharedFlowCache and subscribe replicas with
// Network.AttachSharedFlowCache.
type SharedFlowTable struct {
	mu  sync.Mutex // serializes Publish/Flush
	cur atomic.Pointer[sharedEpoch]
}

// NewSharedFlowTable returns an empty table at version 1.
func NewSharedFlowTable() *SharedFlowTable {
	t := &SharedFlowTable{}
	t.cur.Store(&sharedEpoch{version: 1, entries: map[FlowKey]*sharedFlowEntry{}})
	return t
}

// Version returns the current epoch version.
func (t *SharedFlowTable) Version() uint64 { return t.cur.Load().version }

// Len returns the number of flows in the current epoch.
func (t *SharedFlowTable) Len() int { return len(t.cur.Load().entries) }

// Flush installs an empty epoch with a new version and returns it.
// Replicas subscribed to older versions self-detach on their next lookup.
// The table's owner calls this from InvalidateFlowCache when its topology
// mutates.
func (t *SharedFlowTable) Flush() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	ep := &sharedEpoch{version: t.cur.Load().version + 1, entries: map[FlowKey]*sharedFlowEntry{}}
	t.cur.Store(ep)
	return ep.version
}

// ScopedFlush removes the entries whose provenance intersects the scope
// bitmap (or is unknown), keeping the epoch version: the survivors were
// recorded over routers the mutation did not touch and remain valid, so
// subscribed replicas stay attached and warm. The table's owner calls it
// from a scoped invalidation (churn.go) instead of Flush. A no-op when
// nothing matches.
func (t *SharedFlowTable) ScopedFlush(bits []uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.cur.Load()
	victims := 0
	for _, se := range cur.entries {
		if se.touchAll || se.touched == nil || intersectsBits(se.touched, bits) {
			victims++
		}
	}
	if victims == 0 {
		return
	}
	entries := make(map[FlowKey]*sharedFlowEntry, len(cur.entries)-victims)
	for k, se := range cur.entries {
		if se.touchAll || se.touched == nil || intersectsBits(se.touched, bits) {
			continue
		}
		entries[k] = se
	}
	t.cur.Store(&sharedEpoch{version: cur.version, entries: entries})
}

// Publish folds the unpublished recordings of the given fabrics into one
// new copy-on-write epoch (same version: the topology has not changed).
// Fabrics that detached or subscribed to a stale version are skipped and
// detached outright. Callers must hold all the fabrics quiescent — the
// campaign calls this from the coordinating goroutine at a phase barrier
// — but concurrent readers of the table itself are safe throughout. With
// every dirty set empty (the steady state of a warm worker pool) this is
// a no-op.
func (t *SharedFlowTable) Publish(nets ...*Network) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.cur.Load()
	total := 0
	for _, n := range nets {
		f := &n.flows
		if f.shared != t || f.sharedOwner {
			continue
		}
		if f.sharedVer != cur.version {
			f.shared = nil
			f.dirty = nil
			continue
		}
		total += len(f.dirty)
	}
	if total == 0 {
		return
	}
	entries := make(map[FlowKey]*sharedFlowEntry, len(cur.entries)+total)
	for k, se := range cur.entries {
		entries[k] = se
	}
	for _, n := range nets {
		f := &n.flows
		if f.shared != t || f.sharedOwner || f.sharedVer != cur.version {
			continue
		}
		for k, e := range f.dirty {
			if e.valid == ([4]uint64{}) || e.tainted {
				// Tainted entries recorded against a deviated topology; the
				// dirty-mark gate already excludes them, this is the
				// publish-side backstop.
				continue
			}
			ne := &sharedFlowEntry{valid: e.valid, touchAll: e.touchAll}
			ne.replies = append([]ProbeObs(nil), e.replies...)
			ne.touched = append([]int32(nil), e.touched...)
			if prev := entries[k]; prev != nil {
				// Union, never overwrite: another worker may have published
				// TTLs this one never probed (and vice versa). Where both
				// observed a TTL the replies are identical by construction.
				mergeReplies(&ne.valid, &ne.replies, prev.valid, prev.replies)
				if prev.touchAll || prev.touched == nil || ne.touched == nil {
					ne.touched, ne.touchAll = nil, true
				} else {
					ne.touched = unionTouched(ne.touched, prev.touched)
				}
			}
			entries[k] = ne
		}
		f.dirty = nil
	}
	t.cur.Store(&sharedEpoch{version: cur.version, entries: entries})
}

// OwnSharedFlowCache returns the shared reply table keyed to this
// fabric's topology, creating it on first call. The owner never publishes
// its local cache or reads the table; its role is to flush epochs when
// its topology mutates, keeping subscribers from adopting stale replies.
func (n *Network) OwnSharedFlowCache() *SharedFlowTable {
	f := &n.flows
	if f.shared == nil || !f.sharedOwner {
		t := NewSharedFlowTable()
		f.shared = t
		f.sharedOwner = true
		f.sharedVer = t.Version()
		f.dirty = nil
	}
	return f.shared
}

// AttachSharedFlowCache subscribes this fabric to t at its current
// version. The fabric must be a pristine structural replica of t's owner;
// any local mutation afterwards detaches it (see InvalidateFlowCache).
func (n *Network) AttachSharedFlowCache(t *SharedFlowTable) {
	f := &n.flows
	f.shared = t
	f.sharedOwner = false
	f.sharedVer = t.Version()
	f.dirty = nil
}

// SharedFlowCache returns the table this fabric owns or subscribes to,
// or nil.
func (n *Network) SharedFlowCache() *SharedFlowTable { return n.flows.shared }

// mergeReplies folds the (valid, replies) observations missing from dst
// into it, growing dst's reply slice in place (its backing is zeroed at
// allocation and never shrinks, so an exposed tail is clean). Slots dst
// already has are left untouched.
func mergeReplies(dstValid *[4]uint64, dstReplies *[]ProbeObs, valid [4]uint64, replies []ProbeObs) {
	if len(replies) > len(*dstReplies) {
		if len(replies) <= cap(*dstReplies) {
			*dstReplies = (*dstReplies)[:len(replies)]
		} else {
			grown := make([]ProbeObs, len(replies), 2*len(replies))
			copy(grown, *dstReplies)
			*dstReplies = grown
		}
	}
	d := *dstReplies
	for w := 0; w < 4; w++ {
		add := valid[w] &^ dstValid[w]
		for add != 0 {
			b := bits.TrailingZeros64(add)
			add &^= 1 << uint(b)
			d[w*64+b] = replies[w*64+b]
		}
		dstValid[w] |= valid[w]
	}
}
