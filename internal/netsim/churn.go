package netsim

import "sort"

// This file implements the churn engine: a deterministic, seeded schedule
// of control-plane events (link failures, IGP reconvergence, LSP
// re-signalling, repairs) injected into a running campaign, plus the
// delta-invalidation machinery that keeps the flow cache warm across
// those events.
//
// # Scheduling
//
// Events are scheduled in probe ticks, not virtual time: the prober calls
// ChurnTick once per probe, immediately before injection, and an event
// fires when the probe count reaches its Tick. Two runs that issue the
// same probe sequence therefore mutate the fabric at exactly the same
// probe boundaries — the property the equivalence-under-churn tests pin
// down. A cached run and the uncached oracle answer every probe
// identically by induction: identical replies imply an identical probe
// sequence, so events fire at identical boundaries and every probe sees
// identical topology.
//
// # Delta-invalidation
//
// Outside churn, any router mutation flushes the world
// (InvalidateFlowCache): correct, and cheap when mutations only happen
// between campaigns. During a churn window that would cold-start every
// cache on every flap, so churnFire brackets each event's Apply in a
// *batch*: every router that mutates reports itself through
// InvalidateFlowCacheScoped and is collected into a scope bitmap instead
// of flushing. When Apply returns, exactly the flows whose recorded
// activity (forward trajectory and reply path — the touched set, see
// flowcache.go) intersects the scope are evicted, the per-node scope
// generations advance, and everything else stays warm. The fabric-wide
// topoGen is deliberately not bumped: a schedule always closes with a
// repair that restores the original control plane byte-for-byte, so a
// fabric that ends its shard content-pristine may be re-pooled warm.
//
// # Deviance windows
//
// Between a failure and its repair the fabric deviates from the pristine
// topology its shared reply table is keyed to. The window's node scope is
// tracked in a deviance bitmap: while any window is open, shared-table
// entries touching it are not adopted, and locally recorded entries
// touching it are tainted (never published). The repair event's eviction
// scope covers the window, so every deviant-era entry is evicted before
// the next publish barrier.

// ChurnEvent is one scheduled control-plane mutation.
type ChurnEvent struct {
	// Tick is the probe count at which the event fires: immediately
	// before the Tick-th probe (0-based) issued after ChurnBegin.
	Tick uint64
	// Kind labels the event for stats and debugging ("fail",
	// "reconverge", "repair").
	Kind string
	// Dev tracks the fabric's deviation from its pristine topology: +1
	// opens a deviance window (failure), -1 closes one (a repair that
	// restores pristine state), 0 leaves it unchanged (reconvergence
	// inside a window).
	Dev int
	// DevScope lists the nodes whose behaviour may differ from pristine
	// while the window this event opens stays open. Consulted only when
	// Dev != 0.
	DevScope []Node
	// EvictScope lists nodes whose cached flows must be evicted even if
	// Apply does not mutate them directly (e.g. both endpoints of a
	// failed link, which drops packets without touching a FIB). Routers
	// mutated by Apply are collected automatically.
	EvictScope []Node
	// Apply performs the mutation (link flips, IGP recomputation, LSP
	// re-signalling) against this fabric.
	Apply func()
}

// churnState is the per-fabric engine state, embedded by value in Network
// so replicas start quiescent.
type churnState struct {
	events     []ChurnEvent
	next       int
	tick       uint64
	active     bool
	flushWorld bool
	fired      uint64

	// batching brackets an event's Apply: mutations accumulate into the
	// batch scope instead of flushing the world. batchAll falls back to a
	// full flush when a mutation cannot be attributed to a known node.
	batching  bool
	batchAll  bool
	batchBits []uint64
	batchList []int32

	// devBits marks nodes inside an open deviance window; devCount is
	// the number of open windows.
	devBits  []uint64
	devCount int
}

// ChurnBegin arms the engine with a schedule for the probes that follow.
// flushWorld selects the baseline invalidation strategy — every event
// flushes the world — instead of delta-invalidation; it exists so the
// benchmark can measure one against the other on identical schedules. A
// nil schedule leaves the engine inert.
func (n *Network) ChurnBegin(events []ChurnEvent, flushWorld bool) {
	c := &n.churn
	c.events = events
	c.next = 0
	c.tick = 0
	c.active = len(events) > 0
	c.flushWorld = flushWorld
	c.devCount = 0
	for i := range c.devBits {
		c.devBits[i] = 0
	}
}

// ChurnTick advances the probe clock by one and fires every event whose
// tick has arrived. The prober calls it immediately before each probe.
func (n *Network) ChurnTick() {
	c := &n.churn
	if !c.active {
		return
	}
	for c.next < len(c.events) && c.events[c.next].Tick <= c.tick {
		n.churnFire(&c.events[c.next])
		c.next++
	}
	if c.next == len(c.events) {
		c.active = false
	}
	c.tick++
}

// ChurnEnd force-fires any events the probe count never reached (short
// shards), so a schedule that ends in repair always leaves the fabric
// content-pristine, then disarms the engine.
func (n *Network) ChurnEnd() {
	c := &n.churn
	for c.next < len(c.events) {
		n.churnFire(&c.events[c.next])
		c.next++
	}
	c.active = false
	c.events = nil
}

// ChurnFired returns the number of events applied so far, cumulative
// across schedules.
func (n *Network) ChurnFired() uint64 { return n.churn.fired }

// ChurnDeviant reports whether a deviance window is open: the fabric's
// control plane differs from the pristine topology it was built with.
// Replica pools refuse to re-pool a deviant fabric.
func (n *Network) ChurnDeviant() bool { return n.churn.devCount != 0 }

// churnFire applies one event under the armed invalidation strategy and
// maintains the deviance window bookkeeping.
func (n *Network) churnFire(ev *ChurnEvent) {
	c := &n.churn
	if c.flushWorld {
		if ev.Apply != nil {
			ev.Apply()
		}
		n.InvalidateFlowCache()
	} else {
		c.batching = true
		c.batchAll = false
		c.batchList = c.batchList[:0]
		for i := range c.batchBits {
			c.batchBits[i] = 0
		}
		for _, nd := range ev.EvictScope {
			n.batchNode(nd)
		}
		if ev.Apply != nil {
			ev.Apply()
		}
		c.batching = false
		if c.batchAll {
			n.InvalidateFlowCache()
		} else if len(c.batchList) > 0 {
			n.evictScope(c.batchBits)
			n.bumpScopeGen(c.batchList)
		}
	}
	switch {
	case ev.Dev > 0:
		c.devCount++
		for _, nd := range ev.DevScope {
			if i, ok := n.nodeIdx[nd]; ok {
				setBit(&c.devBits, i)
			}
		}
	case ev.Dev < 0:
		c.devCount--
		for _, nd := range ev.DevScope {
			if i, ok := n.nodeIdx[nd]; ok {
				clearBit(c.devBits, i)
			}
		}
	}
	c.fired++
}

// batchNode adds a node to the in-progress event batch scope.
func (n *Network) batchNode(nd Node) {
	c := &n.churn
	if c.batchAll {
		return
	}
	i, ok := n.nodeIdx[nd]
	if !ok {
		c.batchAll = true
		return
	}
	w, b := int(i>>6), uint(i&63)
	for w >= len(c.batchBits) {
		c.batchBits = append(c.batchBits, 0)
	}
	if c.batchBits[w]&(1<<b) == 0 {
		c.batchBits[w] |= 1 << b
		c.batchList = append(c.batchList, i)
	}
}

// InvalidateFlowCacheScoped is the delta-invalidation entry point routers
// call from their mutation hooks. Inside a fault-in bracket the mutation
// is swallowed entirely (see BeginFaultIn). Inside a churn batch it is
// collected into the event's eviction scope; outside one it falls back to
// the full flush, so mutations between campaigns keep their pre-churn
// semantics exactly.
func (n *Network) InvalidateFlowCacheScoped(nd Node) {
	if n.faultInDepth > 0 {
		return
	}
	if !n.churn.batching {
		n.InvalidateFlowCache()
		return
	}
	n.batchNode(nd)
}

// BeginFaultIn opens a fault-in bracket: until the matching EndFaultIn,
// router mutation hooks neither flush the flow cache nor bump topoGen.
//
// The bracket exists for lazy-fabric materialization (gen's fault-in
// stubs). Materializing a stub is purely *additive* from the cache's
// point of view: the new routers and links are clean (no loss, no rate
// limiting — purity is preserved), and the only mutations on
// already-built routers are customer routes for the stub's fresh address
// block. The fault-in hook fires before the first probe toward that
// block, so no cached trajectory, reply shape, or shared-table entry can
// reference it — there is nothing to evict, and suppressing the flush
// keeps every warm cache (and the TopoGen-keyed replica pool) intact.
// The mutating routers' local route caches are still flushed by their
// own mutation hooks, which is all the correctness the new routes need.
func (n *Network) BeginFaultIn() { n.faultInDepth++ }

// EndFaultIn closes the bracket opened by BeginFaultIn.
func (n *Network) EndFaultIn() {
	if n.faultInDepth > 0 {
		n.faultInDepth--
	}
}

// ScopeGen returns the node's scope generation: the number of scoped
// invalidations whose eviction scope covered it. Under delta-invalidation
// the fabric-wide TopoGen splits into these per-node generations; TopoGen
// itself still counts whole-fabric flushes only.
func (n *Network) ScopeGen(nd Node) uint64 {
	i, ok := n.nodeIdx[nd]
	if !ok || int(i) >= len(n.scopeGen) {
		return 0
	}
	return n.scopeGen[i]
}

func (n *Network) bumpScopeGen(list []int32) {
	for _, i := range list {
		for int(i) >= len(n.scopeGen) {
			n.scopeGen = append(n.scopeGen, 0)
		}
		n.scopeGen[i]++
	}
}

// evictScope deletes every cached artifact whose touched set intersects
// the scope bitmap (or is unknown): flow entries and their dirty marks,
// the cache-off sweep slot, learned reply shapes, and — when this fabric
// owns a shared table — the table's matching entries. Everything else
// survives: purity is unaffected by churn (link state is not a purity
// input), so no re-scan is scheduled, and the fabric-wide topoGen stays
// put.
func (n *Network) evictScope(bits []uint64) {
	f := &n.flows
	if f.rec.active {
		f.rec.bad = true
	}
	for k, e := range f.entries {
		if entryInScope(e, bits) {
			delete(f.entries, k)
			delete(f.dirty, k)
		}
	}
	f.hotE, f.hotOK = nil, false
	if f.soOK && f.soE != nil && entryInScope(f.soE, bits) {
		f.soE, f.soOK = nil, false
	}
	for k, sh := range f.shapes {
		if sh.touchAll || sh.touched == nil || intersectsBits(sh.touched, bits) {
			delete(f.shapes, k)
		}
	}
	if f.enabled || f.sweepEnabled {
		f.stats.Invalidations++
	}
	if f.shared != nil && f.sharedOwner {
		f.shared.ScopedFlush(bits)
	}
	// A subscribed replica stays attached: the entries it published while
	// pristine remain valid for its siblings, and its local deviations
	// were evicted above.
}

// entryInScope reports whether a flow entry must be evicted for the given
// scope: provenance unknown, or overlapping the scope.
func entryInScope(e *flowEntry, bits []uint64) bool {
	return e.touchAll || e.touched == nil || intersectsBits(e.touched, bits)
}

// ---- touched-set primitives ----

func setBit(bits *[]uint64, i int32) {
	w := int(i >> 6)
	for w >= len(*bits) {
		*bits = append(*bits, 0)
	}
	(*bits)[w] |= 1 << uint(i&63)
}

func clearBit(bits []uint64, i int32) {
	w := int(i >> 6)
	if w < len(bits) {
		bits[w] &^= 1 << uint(i&63)
	}
}

// intersectsBits reports whether any index in touched is set in bits.
func intersectsBits(touched []int32, bits []uint64) bool {
	for _, i := range touched {
		w := int(i >> 6)
		if w < len(bits) && bits[w]&(1<<uint(i&63)) != 0 {
			return true
		}
	}
	return false
}

// sortedTouched returns a sorted copy of an unsorted (already unique)
// touch list.
func sortedTouched(tl []int32) []int32 {
	out := append([]int32(nil), tl...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// unionTouched merges two sorted unique index lists into a fresh one.
func unionTouched(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// touchedCovers reports whether the sorted set have (or haveAll) contains
// every index in tl. The steady state of a warm cache — re-recording a
// trajectory over nodes the entry already covers — passes this test and
// allocates nothing.
func touchedCovers(have []int32, haveAll bool, tl []int32) bool {
	if haveAll {
		return true
	}
	for _, v := range tl {
		lo, hi := 0, len(have)
		for lo < hi {
			mid := (lo + hi) / 2
			if have[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(have) || have[lo] != v {
			return false
		}
	}
	return true
}

// applyTouched folds a finished recording's touch list into the entry's
// touched set (union: a fast-forward only re-records frontier-onward, and
// the old prefix's nodes stay relevant).
func applyTouched(e *flowEntry, tl []int32, ok bool) {
	if !ok {
		e.touched, e.touchAll = nil, true
		return
	}
	if e.touchAll || touchedCovers(e.touched, false, tl) {
		return
	}
	e.touched = unionTouched(e.touched, sortedTouched(tl))
}

// adoptTouched folds a shared entry's provenance into a local entry on
// adoption.
func adoptTouched(e *flowEntry, se *sharedFlowEntry) {
	if se.touchAll || se.touched == nil {
		e.touched, e.touchAll = nil, true
		return
	}
	if e.touchAll || touchedCovers(e.touched, false, se.touched) {
		return
	}
	e.touched = unionTouched(e.touched, se.touched)
}

// taintCheck marks the entry tainted when its recording overlapped an
// open deviance window: the observation may be specific to the deviated
// topology and must never be published to a shared table. (Eviction at
// repair already removes such entries locally; the taint is the publish-
// side guarantee.)
func (n *Network) taintCheck(e *flowEntry, tlOK bool) {
	c := &n.churn
	if c.devCount == 0 {
		return
	}
	if !tlOK || e.touchAll || intersectsBits(e.touched, c.devBits) {
		e.tainted = true
	}
}
