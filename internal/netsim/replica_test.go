// Failure injection under the shard-ownership assertion: a worker
// goroutine adopts a cloned replica (the parallel campaign engine's
// deployment shape) and exercises LossProb and link-down behaviour on it.
// External test package: the replica comes from gen, which imports netsim.
package netsim_test

import (
	"fmt"
	"testing"

	"wormhole/internal/gen"
)

// buildReplica clones a small generated Internet, as a campaign worker
// would.
func buildReplica(t *testing.T) *gen.Internet {
	t.Helper()
	p := gen.DefaultParams(17)
	p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 2, 3, 6, 2
	in, err := gen.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := in.Clone()
	if err != nil {
		t.Fatal(err)
	}
	return replica
}

// TestReplicaFailureInjection drives a worker-owned replica through loss
// and link-down injection on the VP's access link: full loss and a downed
// link silence every hop, recovery restores the path, and none of it trips
// the ownership assertion.
func TestReplicaFailureInjection(t *testing.T) {
	done := make(chan error, 1)
	fail := func(format string, a ...any) bool {
		select {
		case done <- fmt.Errorf(format, a...):
		default:
		}
		return true
	}
	replica := buildReplica(t)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				fail("replica drive panicked: %v", r)
			}
			select {
			case done <- nil:
			default:
			}
		}()
		replica.Net.BindOwner()
		vp := replica.VPs[0]
		dst := replica.VPs[1].Host.Addr()

		tr := vp.Prober.Traceroute(dst)
		if !tr.Reached {
			fail("baseline trace did not reach %s", dst)
			return
		}
		responding := 0
		for _, h := range tr.Hops {
			if !h.Anonymous() {
				responding++
			}
		}
		if responding == 0 {
			fail("baseline trace has no responding hops")
			return
		}

		access := vp.Host.If.Link

		// Full loss on the access link: every probe vanishes.
		access.LossProb = 1.0
		if lost := vp.Prober.Traceroute(dst); lost.Reached {
			fail("trace reached destination over a fully lossy link")
			return
		} else {
			for _, h := range lost.Hops {
				if !h.Anonymous() {
					fail("hop %s responded over a fully lossy link", h.Addr)
					return
				}
			}
		}
		access.LossProb = 0

		// Link down: same silence, different mechanism.
		access.Up = false
		if down := vp.Prober.Traceroute(dst); down.Reached {
			fail("trace crossed a down link")
			return
		}
		access.Up = true

		// Recovery: the original path comes back verbatim.
		again := vp.Prober.Traceroute(dst)
		if !again.Reached || len(again.Hops) != len(tr.Hops) {
			fail("path did not recover: reached=%v hops=%d want %d", again.Reached, len(again.Hops), len(tr.Hops))
			return
		}
		for i := range again.Hops {
			if again.Hops[i].Addr != tr.Hops[i].Addr {
				fail("hop %d changed after recovery: %s != %s", i, again.Hops[i].Addr, tr.Hops[i].Addr)
				return
			}
		}
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestReplicaPartialLossRetries: a half-lossy access link still lets a
// multi-attempt prober through (Attempts covers the loss), exercising the
// seeded per-replica RNG from the owning goroutine.
func TestReplicaPartialLossRetries(t *testing.T) {
	replica := buildReplica(t)
	done := make(chan error, 1)
	fail := func(format string, a ...any) {
		select {
		case done <- fmt.Errorf(format, a...):
		default:
		}
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				fail("replica drive panicked: %v", r)
			}
			select {
			case done <- nil:
			default:
			}
		}()
		replica.Net.BindOwner()
		vp := replica.VPs[0]
		dst := replica.VPs[1].Host.Addr()
		vp.Host.If.Link.LossProb = 0.5
		vp.Prober.Attempts = 8
		responding := 0
		for _, h := range vp.Prober.Traceroute(dst).Hops {
			if !h.Anonymous() {
				responding++
			}
		}
		if responding == 0 {
			fail("no hop survived 50%% loss with 8 attempts")
		}
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
