package fingerprint

import (
	"testing"
	"testing/quick"

	"wormhole/internal/lab"
	"wormhole/internal/packet"
	"wormhole/internal/probe"
	"wormhole/internal/router"
)

func TestInferInitial(t *testing.T) {
	cases := []struct {
		in   uint8
		want uint8
	}{
		{0, 0}, {1, 32}, {32, 32}, {33, 64}, {60, 64}, {64, 64},
		{65, 128}, {128, 128}, {129, 255}, {250, 255}, {255, 255},
	}
	for _, c := range cases {
		if got := InferInitial(c.in); got != c.want {
			t.Errorf("InferInitial(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestInferInitialNeverBelowObserved(t *testing.T) {
	f := func(v uint8) bool {
		got := InferInitial(v)
		return got >= v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		sig  Signature
		want Class
	}{
		{Signature{255, 255}, CiscoLike},
		{Signature{255, 64}, JuniperLike},
		{Signature{128, 128}, JunosELike},
		{Signature{64, 64}, LegacyLike},
		{Signature{64, 255}, Unknown},
		{Signature{32, 32}, Unknown},
	}
	for _, c := range cases {
		if got := Classify(c.sig); got != c.want {
			t.Errorf("Classify(%s) = %s, want %s", c.sig, got, c.want)
		}
	}
}

func TestSignatureString(t *testing.T) {
	if got := (Signature{255, 64}).String(); got != "<255,64>" {
		t.Errorf("String = %q", got)
	}
}

// TestFromHopOnLiveTestbed fingerprints every hop of a testbed trace per
// personality and checks the recovered classes.
func TestFromHopOnLiveTestbed(t *testing.T) {
	cases := []struct {
		pers router.Personality
		want Class
	}{
		{router.Cisco, CiscoLike},
		{router.Juniper, JuniperLike},
		{router.JunosE, JunosELike},
		{router.Legacy, LegacyLike},
	}
	for _, c := range cases {
		l := lab.MustBuild(lab.Options{Scenario: lab.Default, AS2Personality: c.pers})
		tr := l.Prober.Traceroute(l.CE2Left)
		fp := New(l.Prober)
		classified := 0
		for _, h := range tr.Hops {
			if h.Addr != l.P1Left && h.Addr != l.P2Left {
				continue // only AS2 interior routers carry the personality
			}
			r, ok := fp.FromHop(h)
			if !ok {
				t.Fatalf("%s: fingerprinting failed for %s", c.pers.Name, h.Addr)
			}
			if r.Class != c.want {
				t.Errorf("%s: %s classified %s, want %s", c.pers.Name, h.Addr, r.Class, c.want)
			}
			classified++
		}
		if classified == 0 {
			t.Fatalf("%s: no hops classified", c.pers.Name)
		}
	}
}

func TestFromHopCaches(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.Default})
	tr := l.Prober.Traceroute(l.CE2Left)
	fp := New(l.Prober)
	var hop probe.Hop
	for _, h := range tr.Hops {
		if h.Addr == l.P1Left {
			hop = h
		}
	}
	if _, ok := fp.FromHop(hop); !ok {
		t.Fatal("first fingerprint failed")
	}
	sent := l.Prober.Sent
	if _, ok := fp.FromHop(hop); !ok {
		t.Fatal("cached fingerprint failed")
	}
	if l.Prober.Sent != sent {
		t.Error("cache miss: extra probes sent")
	}
	if _, ok := fp.Known(hop.Addr); !ok {
		t.Error("Known does not see the cache")
	}
}

func TestFromHopRejectsNonTE(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.Default})
	fp := New(l.Prober)
	if _, ok := fp.FromHop(probe.Hop{}); ok {
		t.Error("anonymous hop fingerprinted")
	}
	echoHop := probe.Hop{Addr: l.CE2Left, ICMPType: packet.ICMPEchoReply, ReplyTTL: 250}
	if _, ok := fp.FromHop(echoHop); ok {
		t.Error("echo-reply hop fingerprinted as TE")
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		Unknown: "unknown", CiscoLike: "cisco", JuniperLike: "juniper",
		JunosELike: "junose", LegacyLike: "legacy",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %s, want %s", c, c.String(), want)
		}
	}
}

func TestFromHopUnresponsiveTarget(t *testing.T) {
	// A hop whose address no longer answers pings cannot be fingerprinted.
	l := lab.MustBuild(lab.Options{Scenario: lab.Default})
	tr := l.Prober.Traceroute(l.CE2Left)
	var hop probe.Hop
	for _, h := range tr.Hops {
		if h.Addr == l.P2Left {
			hop = h
		}
	}
	cfg := l.P2.Config()
	cfg.Silent = true
	l.P2.SetConfig(cfg)
	if _, ok := New(l.Prober).FromHop(hop); ok {
		t.Error("fingerprinted a router that stopped answering")
	}
}

func TestSignatureMismatchClassifiesUnknown(t *testing.T) {
	// A contrived personality outside Table 1 lands in Unknown.
	pers := router.Personality{Name: "weird", TimeExceededTTL: 128, EchoReplyTTL: 64, RFC4950: true, MinOnPop: true}
	l := lab.MustBuild(lab.Options{Scenario: lab.Default, AS2Personality: pers})
	tr := l.Prober.Traceroute(l.CE2Left)
	fp := New(l.Prober)
	for _, h := range tr.Hops {
		if h.Addr != l.P1Left {
			continue
		}
		r, ok := fp.FromHop(h)
		if !ok {
			t.Fatal("fingerprinting failed")
		}
		if r.Class != Unknown {
			t.Errorf("class = %s, want unknown for <128,64>", r.Class)
		}
	}
}
