// Package fingerprint implements TTL-based router signatures (Vanaubel et
// al., "Network Fingerprinting: TTL-Based Router Signatures", IMC 2013),
// the Table 1 classification the paper's RTLA technique depends on: the
// pair of initial TTLs a router uses for ICMP time-exceeded and ICMP
// echo-reply identifies its vendor/OS family.
package fingerprint

import (
	"fmt"

	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
	"wormhole/internal/probe"
)

// Signature is the <time-exceeded, echo-reply> initial TTL pair.
type Signature struct {
	TimeExceeded uint8
	EchoReply    uint8
}

// String renders "<255,64>" style notation.
func (s Signature) String() string {
	return fmt.Sprintf("<%d,%d>", s.TimeExceeded, s.EchoReply)
}

// Class is the inferred router family.
type Class uint8

const (
	Unknown     Class = iota
	CiscoLike         // <255,255>: IOS, IOS XR
	JuniperLike       // <255,64>: Junos
	JunosELike        // <128,128>
	LegacyLike        // <64,64>: Brocade, Alcatel, Linux
)

func (c Class) String() string {
	switch c {
	case CiscoLike:
		return "cisco"
	case JuniperLike:
		return "juniper"
	case JunosELike:
		return "junose"
	case LegacyLike:
		return "legacy"
	default:
		return "unknown"
	}
}

// InferInitial rounds an observed reply TTL up to the nearest plausible
// initial value (the set used by deployed stacks: 32, 64, 128, 255).
func InferInitial(observed uint8) uint8 {
	switch {
	case observed == 0:
		return 0
	case observed <= 32:
		return 32
	case observed <= 64:
		return 64
	case observed <= 128:
		return 128
	default:
		return 255
	}
}

// Classify maps a signature to a class per Table 1.
func Classify(s Signature) Class {
	switch s {
	case Signature{255, 255}:
		return CiscoLike
	case Signature{255, 64}:
		return JuniperLike
	case Signature{128, 128}:
		return JunosELike
	case Signature{64, 64}:
		return LegacyLike
	default:
		return Unknown
	}
}

// Result is a fingerprinting outcome for one interface address.
type Result struct {
	Addr      netaddr.Addr
	Signature Signature
	Class     Class
	// TEReplyTTL and EchoReplyTTL are the raw observed reply TTLs, kept
	// because RTLA consumes the unrounded values.
	TEReplyTTL   uint8
	EchoReplyTTL uint8
}

// Fingerprinter probes addresses to build signatures. The time-exceeded
// sample comes from a traceroute-style hop observation (supplied by the
// caller, who has just traced through the address); the echo sample from a
// direct ping.
type Fingerprinter struct {
	Prober *probe.Prober

	// cache avoids re-pinging addresses within one campaign.
	cache map[netaddr.Addr]Result
}

// New creates a Fingerprinter on a prober.
func New(p *probe.Prober) *Fingerprinter {
	return &Fingerprinter{Prober: p, cache: make(map[netaddr.Addr]Result)}
}

// FromHop fingerprints the router behind a traceroute hop: the hop's reply
// TTL provides the time-exceeded half, a fresh echo-request provides the
// other half.
func (f *Fingerprinter) FromHop(hop probe.Hop) (Result, bool) {
	if hop.Anonymous() || hop.ICMPType != packet.ICMPTimeExceeded {
		return Result{}, false
	}
	if r, ok := f.cache[hop.Addr]; ok {
		return r, true
	}
	reply, ok := f.Prober.Ping(hop.Addr, 64)
	if !ok || reply.ICMPType != packet.ICMPEchoReply {
		return Result{}, false
	}
	r := Result{
		Addr: hop.Addr,
		Signature: Signature{
			TimeExceeded: InferInitial(hop.ReplyTTL),
			EchoReply:    InferInitial(reply.ReplyTTL),
		},
		TEReplyTTL:   hop.ReplyTTL,
		EchoReplyTTL: reply.ReplyTTL,
	}
	r.Class = Classify(r.Signature)
	f.cache[hop.Addr] = r
	return r, true
}

// Known returns the cached result for addr if fingerprinted already.
func (f *Fingerprinter) Known(addr netaddr.Addr) (Result, bool) {
	r, ok := f.cache[addr]
	return r, ok
}
