// Package stats provides the small statistical toolkit the measurement
// analyses need: integer histograms with PDF views, medians and quantiles,
// and compact ASCII rendering used by the experiment runners to print the
// paper's figures as series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram counts integer-valued observations (hop counts, TTL deltas).
type Histogram struct {
	counts map[int]int
	n      int
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add records one observation.
func (h *Histogram) Add(v int) { h.AddN(v, 1) }

// AddN records an observation with multiplicity.
func (h *Histogram) AddN(v, n int) {
	h.counts[v] += n
	h.n += n
}

// N returns the number of observations.
func (h *Histogram) N() int { return h.n }

// Count returns the count at value v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Min and Max return the observed range; both 0 when empty.
func (h *Histogram) Min() int {
	first := true
	m := 0
	for v := range h.counts {
		if first || v < m {
			m, first = v, false
		}
	}
	return m
}

// Max returns the largest observed value.
func (h *Histogram) Max() int {
	first := true
	m := 0
	for v := range h.counts {
		if first || v > m {
			m, first = v, false
		}
	}
	return m
}

// PDF returns the probability mass at v.
func (h *Histogram) PDF(v int) float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.n)
}

// Values returns the sorted distinct observed values.
func (h *Histogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Median returns the median observation (lower median for even counts).
func (h *Histogram) Median() int {
	return h.Quantile(0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the observations.
func (h *Histogram) Quantile(q float64) int {
	if h.n == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	cum := 0
	for _, v := range h.Values() {
		cum += h.counts[v]
		if cum >= rank {
			return v
		}
	}
	return h.Max()
}

// Mean returns the arithmetic mean.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	sum := 0
	for v, c := range h.counts {
		sum += v * c
	}
	return float64(sum) / float64(h.n)
}

// StdDev returns the population standard deviation.
func (h *Histogram) StdDev() float64 {
	if h.n == 0 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for v, c := range h.counts {
		d := float64(v) - mean
		ss += d * d * float64(c)
	}
	return math.Sqrt(ss / float64(h.n))
}

// ShareAbove returns the fraction of observations strictly above v.
func (h *Histogram) ShareAbove(v int) float64 {
	if h.n == 0 {
		return 0
	}
	c := 0
	for val, cnt := range h.counts {
		if val > v {
			c += cnt
		}
	}
	return float64(c) / float64(h.n)
}

// Render prints the histogram as an ASCII bar chart (one row per value),
// the form the experiment runners use to emit figure series.
func (h *Histogram) Render(label string, width int) string {
	if width <= 0 {
		width = 50
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (n=%d, mean=%.2f, median=%d)\n", label, h.n, h.Mean(), h.Median())
	if h.n == 0 {
		return sb.String()
	}
	maxC := 0
	for _, c := range h.counts {
		if c > maxC {
			maxC = c
		}
	}
	for _, v := range h.Values() {
		c := h.counts[v]
		bar := strings.Repeat("#", int(math.Round(float64(c)/float64(maxC)*float64(width))))
		fmt.Fprintf(&sb, "%5d | %-*s %6.4f (%d)\n", v, width, bar, h.PDF(v), c)
	}
	return sb.String()
}

// Series is an (x, y) sequence for figure output.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// PDFSeries converts a histogram into a PDF series over its value range.
func (h *Histogram) PDFSeries(name string) Series {
	s := Series{Name: name}
	for _, v := range h.Values() {
		s.X = append(s.X, float64(v))
		s.Y = append(s.Y, h.PDF(v))
	}
	return s
}

// Rate converts a count over a duration into a per-second rate (0 for a
// non-positive duration). The campaign engine reports probes/sec with it.
func Rate(n uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// Timings aggregates named duration samples — one per worker shard in the
// parallel campaign engine — and summarizes pool balance.
type Timings struct {
	names []string
	ds    []time.Duration
}

// Add records one sample.
func (t *Timings) Add(name string, d time.Duration) {
	t.names = append(t.names, name)
	t.ds = append(t.ds, d)
}

// N returns the number of samples.
func (t *Timings) N() int { return len(t.ds) }

// Total returns the summed duration (the serial cost of the samples).
func (t *Timings) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.ds {
		sum += d
	}
	return sum
}

// Max returns the longest sample (the critical path of a perfectly
// scheduled pool).
func (t *Timings) Max() time.Duration {
	var m time.Duration
	for _, d := range t.ds {
		if d > m {
			m = d
		}
	}
	return m
}

// Imbalance returns max/mean: 1.0 means perfectly even shards, higher
// means the pool idles behind a straggler.
func (t *Timings) Imbalance() float64 {
	if len(t.ds) == 0 {
		return 0
	}
	mean := float64(t.Total()) / float64(len(t.ds))
	if mean == 0 {
		return 0
	}
	return float64(t.Max()) / mean
}

// Render prints one bar per sample scaled to the maximum, with the
// balance summary on the header line.
func (t *Timings) Render(label string, width int) string {
	if width <= 0 {
		width = 40
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (n=%d, total=%v, max=%v, imbalance=%.2f)\n",
		label, t.N(), t.Total().Round(time.Microsecond), t.Max().Round(time.Microsecond), t.Imbalance())
	maxD := t.Max()
	for i, d := range t.ds {
		bar := 0
		if maxD > 0 {
			bar = int(math.Round(float64(d) / float64(maxD) * float64(width)))
		}
		fmt.Fprintf(&sb, "%12s | %-*s %v\n", t.names[i], width, strings.Repeat("#", bar), d.Round(time.Microsecond))
	}
	return sb.String()
}

// Float64s summarizes a float sample (RTTs, densities).
type Float64s []float64

// Mean returns the arithmetic mean of the sample.
func (f Float64s) Mean() float64 {
	if len(f) == 0 {
		return 0
	}
	var s float64
	for _, v := range f {
		s += v
	}
	return s / float64(len(f))
}

// Median returns the sample median.
func (f Float64s) Median() float64 {
	if len(f) == 0 {
		return 0
	}
	c := append(Float64s(nil), f...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
