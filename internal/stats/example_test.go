package stats_test

import (
	"fmt"

	"wormhole/internal/stats"
)

func ExampleHistogram() {
	h := stats.NewHistogram()
	for _, tunnelLen := range []int{1, 1, 2, 2, 2, 3, 5} {
		h.Add(tunnelLen)
	}
	fmt.Printf("n=%d median=%d mean=%.2f pdf(2)=%.2f\n",
		h.N(), h.Median(), h.Mean(), h.PDF(2))
	// Output:
	// n=7 median=2 mean=2.29 pdf(2)=0.43
}
