package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 2, 2, 3, 3, 3} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Errorf("N = %d", h.N())
	}
	if h.Count(3) != 3 || h.Count(9) != 0 {
		t.Errorf("counts wrong")
	}
	if h.Min() != 1 || h.Max() != 3 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.PDF(2); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("PDF(2) = %f", got)
	}
	if h.Median() != 2 { // lower median of {1,2,2,3,3,3}
		t.Errorf("median = %d", h.Median())
	}
	if got := h.Mean(); math.Abs(got-14.0/6) > 1e-12 {
		t.Errorf("mean = %f", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.N() != 0 || h.Median() != 0 || h.Mean() != 0 || h.StdDev() != 0 ||
		h.PDF(1) != 0 || h.Min() != 0 || h.Max() != 0 || h.ShareAbove(0) != 0 {
		t.Error("empty histogram not all-zero")
	}
	if out := h.Render("empty", 10); !strings.Contains(out, "n=0") {
		t.Errorf("render: %q", out)
	}
}

func TestHistogramNegativeValues(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{-3, -1, 0, 2} {
		h.Add(v)
	}
	if h.Min() != -3 || h.Max() != 2 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	vals := h.Values()
	if !sort.IntsAreSorted(vals) || len(vals) != 4 {
		t.Errorf("values = %v", vals)
	}
}

func TestQuantileMatchesSortOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		h := NewHistogram()
		sample := make([]int, n)
		for i := range sample {
			sample[i] = rng.Intn(41) - 20
			h.Add(sample[i])
		}
		sort.Ints(sample)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.95, 1.0} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			if h.Quantile(q) != sample[rank-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMedianAgainstMeanBound(t *testing.T) {
	// Property: |mean - median| <= stddev for any sample (a classic
	// one-sided bound that must hold for our implementations).
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Add(int(v) % 100)
		}
		return math.Abs(h.Mean()-float64(h.Median())) <= h.StdDev()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShareAbove(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 10; v++ {
		h.Add(v)
	}
	if got := h.ShareAbove(7); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("ShareAbove(7) = %f", got)
	}
}

func TestAddN(t *testing.T) {
	h := NewHistogram()
	h.AddN(5, 10)
	if h.N() != 10 || h.Count(5) != 10 {
		t.Errorf("AddN failed: n=%d count=%d", h.N(), h.Count(5))
	}
}

func TestPDFSeries(t *testing.T) {
	h := NewHistogram()
	h.Add(1)
	h.Add(1)
	h.Add(4)
	s := h.PDFSeries("x")
	if s.Name != "x" || len(s.X) != 2 || s.X[0] != 1 || s.Y[0] != 2.0/3 {
		t.Errorf("series = %+v", s)
	}
}

func TestRenderContainsBars(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.Add(1)
	}
	h.Add(2)
	out := h.Render("test", 20)
	if !strings.Contains(out, "####################") {
		t.Errorf("max bar missing:\n%s", out)
	}
	if !strings.Contains(out, "test") {
		t.Error("label missing")
	}
}

func TestFloat64s(t *testing.T) {
	f := Float64s{3, 1, 2}
	if f.Mean() != 2 {
		t.Errorf("mean = %f", f.Mean())
	}
	if f.Median() != 2 {
		t.Errorf("median = %f", f.Median())
	}
	even := Float64s{1, 2, 3, 4}
	if even.Median() != 2.5 {
		t.Errorf("even median = %f", even.Median())
	}
	var empty Float64s
	if empty.Mean() != 0 || empty.Median() != 0 {
		t.Error("empty Float64s not zero")
	}
}

func TestRate(t *testing.T) {
	if got := Rate(100, 2*time.Second); math.Abs(got-50) > 1e-12 {
		t.Errorf("Rate = %f, want 50", got)
	}
	if Rate(100, 0) != 0 || Rate(100, -time.Second) != 0 {
		t.Error("non-positive duration should yield 0")
	}
}

func TestTimings(t *testing.T) {
	var tm Timings
	if tm.N() != 0 || tm.Total() != 0 || tm.Max() != 0 || tm.Imbalance() != 0 {
		t.Error("empty Timings not all-zero")
	}
	tm.Add("w0", 10*time.Millisecond)
	tm.Add("w1", 30*time.Millisecond)
	tm.Add("w2", 20*time.Millisecond)
	if tm.N() != 3 {
		t.Errorf("N = %d", tm.N())
	}
	if tm.Total() != 60*time.Millisecond {
		t.Errorf("Total = %v", tm.Total())
	}
	if tm.Max() != 30*time.Millisecond {
		t.Errorf("Max = %v", tm.Max())
	}
	// mean = 20ms, max = 30ms -> imbalance 1.5
	if got := tm.Imbalance(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Imbalance = %f, want 1.5", got)
	}
	out := tm.Render("shards", 20)
	if !strings.Contains(out, "shards") || !strings.Contains(out, "w1") {
		t.Errorf("render missing label or sample name:\n%s", out)
	}
	// The longest sample gets the full-width bar.
	if !strings.Contains(out, strings.Repeat("#", 20)) {
		t.Errorf("max bar missing:\n%s", out)
	}
}

func TestTimingsBalanced(t *testing.T) {
	var tm Timings
	tm.Add("a", time.Second)
	tm.Add("b", time.Second)
	if got := tm.Imbalance(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("balanced Imbalance = %f, want 1.0", got)
	}
}

func TestStdDev(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(v)
	}
	if got := h.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %f, want 2", got)
	}
}
