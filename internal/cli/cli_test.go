package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// run executes a command line and returns (exit code, stdout, stderr).
func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := Main(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUsageOnNoArgs(t *testing.T) {
	code, _, stderr := run(t)
	if code != 2 || !strings.Contains(stderr, "commands:") {
		t.Errorf("code=%d stderr=%q", code, stderr)
	}
}

func TestUnknownCommand(t *testing.T) {
	code, _, stderr := run(t, "frobnicate")
	if code != 2 || !strings.Contains(stderr, "unknown command") {
		t.Errorf("code=%d stderr=%q", code, stderr)
	}
}

func TestHelp(t *testing.T) {
	code, stdout, _ := run(t, "help")
	if code != 0 || !strings.Contains(stdout, "emulate") {
		t.Errorf("code=%d stdout=%q", code, stdout)
	}
}

func TestEmulateDefault(t *testing.T) {
	code, stdout, stderr := run(t, "emulate", "-scenario", "backward-recursive")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	for _, want := range []string{"10.12.0.2", "[254]", "revelation", "BRPR", "hidden hop 1: 10.2.1.2"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

func TestEmulateBadScenario(t *testing.T) {
	code, _, stderr := run(t, "emulate", "-scenario", "nope")
	if code != 1 || !strings.Contains(stderr, "unknown scenario") {
		t.Errorf("code=%d stderr=%q", code, stderr)
	}
}

func TestEmulateExplicitTarget(t *testing.T) {
	code, stdout, _ := run(t, "emulate", "-scenario", "default", "-target", "10.2.4.2", "-reveal=false")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(stdout, "MPLS Label") {
		t.Errorf("explicit tunnel trace lacks labels:\n%s", stdout)
	}
}

func TestTNTCommand(t *testing.T) {
	code, stdout, _ := run(t, "tnt")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	for _, want := range []string{"trigger:frpla", "path length 7"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

func TestFingerprintCommand(t *testing.T) {
	code, stdout, _ := run(t, "fingerprint", "-scenario", "default")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(stdout, "<255,255>") || !strings.Contains(stdout, "cisco") {
		t.Errorf("fingerprint output wrong:\n%s", stdout)
	}
}

func TestCampaignSaveAndAnalyze(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.jsonl")
	code, stdout, stderr := run(t, "campaign", "-scale", "small", "-seed", "7", "-out", path)
	if code != 0 {
		t.Fatalf("campaign: code=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "revelations:") || !strings.Contains(stdout, "dataset saved") {
		t.Errorf("campaign output:\n%s", stdout)
	}
	code, stdout, stderr = run(t, "analyze", path)
	if code != 0 {
		t.Fatalf("analyze: code=%d stderr=%q", code, stderr)
	}
	for _, want := range []string{"observed graph:", "trace length", "fingerprint classes"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("analyze output missing %q:\n%s", want, stdout)
		}
	}
}

func TestAnalyzeMissingFile(t *testing.T) {
	code, _, stderr := run(t, "analyze", "/nonexistent/file.jsonl")
	if code != 1 || stderr == "" {
		t.Errorf("code=%d stderr=%q", code, stderr)
	}
}

func TestExperimentsSubset(t *testing.T) {
	code, stdout, stderr := run(t, "experiments", "-scale", "small", "table1", "fig4")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	for _, want := range []string{"TABLE1", "FIG4", "shape check"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Contains(stdout, "TABLE5") {
		t.Error("unselected experiment ran")
	}
}

func TestGraphCommand(t *testing.T) {
	dir := t.TempDir()
	before := filepath.Join(dir, "b.dot")
	after := filepath.Join(dir, "a.dot")
	code, stdout, stderr := run(t, "graph", "-scale", "small", "-seed", "7",
		"-before", before, "-after", after)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "invisible:") || !strings.Contains(stdout, "revealed:") {
		t.Errorf("stdout = %q", stdout)
	}
	for _, p := range []string{before, after} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), "graph") || !strings.Contains(string(b), "--") {
			t.Errorf("%s does not look like DOT", p)
		}
	}
}

func TestExperimentsMarkdownReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	code, _, stderr := run(t, "experiments", "-scale", "small", "-md", path, "table1", "fig4")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	md := string(b)
	for _, want := range []string{"# Regenerated evaluation", "## TABLE1", "## FIG4", "**shape:**", "0 shape checks failed"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestMultiSeedCampaign(t *testing.T) {
	code, stdout, stderr := run(t, "campaign", "-seeds", "2", "-seed", "300")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	for _, want := range []string{"300", "301", "pooled forward tunnel length"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q", want)
		}
	}
}

func TestCampaignChurnFlags(t *testing.T) {
	code, stdout, stderr := run(t, "campaign", "-scale", "small", "-seed", "7", "-churn", "2")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "churn: rate 2 seed 7,") {
		t.Errorf("stats line missing churn rate/seed (churn-seed should default to the generator seed):\n%s", stdout)
	}
	if !strings.Contains(stdout, "events fired") || !strings.Contains(stdout, "delta-invalidation") {
		t.Errorf("stats line missing event count or invalidation mode:\n%s", stdout)
	}

	code, stdout, stderr = run(t, "campaign", "-scale", "small", "-seed", "7",
		"-churn", "2", "-churn-seed", "99", "-churn-flush-world")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "seed 99") || !strings.Contains(stdout, "flush-world") {
		t.Errorf("explicit churn seed or flush-world mode not reported:\n%s", stdout)
	}

	// Static default: no churn line at all.
	code, stdout, _ = run(t, "campaign", "-scale", "small", "-seed", "7")
	if code != 0 || strings.Contains(stdout, "churn:") {
		t.Errorf("code=%d; static campaign printed a churn line:\n%s", code, stdout)
	}
}
