// Package cli implements the wormhole command's subcommands; the thin
// cmd/wormhole main delegates here so the CLI is unit-testable.
package cli

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"runtime/pprof"
	"strconv"
	"strings"

	"wormhole/internal/benchrun"
	"wormhole/internal/campaign"
	"wormhole/internal/experiments"
	"wormhole/internal/fingerprint"
	"wormhole/internal/gen"
	"wormhole/internal/lab"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/pcap"
	"wormhole/internal/probe"
	"wormhole/internal/reveal"
	"wormhole/internal/stats"
	"wormhole/internal/topo"
	"wormhole/internal/tracefile"
)

// Main dispatches a full command line (without the program name) and
// returns the process exit code. Output goes to stdout/stderr.
func Main(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	out = stdout
	var err error
	switch args[0] {
	case "emulate":
		err = cmdEmulate(args[1:])
	case "campaign":
		err = cmdCampaign(args[1:])
	case "experiments":
		err = cmdExperiments(args[1:])
	case "fingerprint":
		err = cmdFingerprint(args[1:])
	case "analyze":
		err = cmdAnalyze(args[1:])
	case "tnt":
		err = cmdTNT(args[1:])
	case "graph":
		err = cmdGraph(args[1:])
	case "bench":
		err = cmdBench(args[1:])
	case "worker":
		err = cmdWorker(args[1:])
	case "-h", "--help", "help":
		usage(stdout)
	default:
		fmt.Fprintf(stderr, "wormhole: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "wormhole:", err)
		return 1
	}
	return 0
}

// out is the active stdout for the running command; Main sets it before
// dispatch. Subcommands print through printf/println.
var out io.Writer = os.Stdout

func printf(format string, a ...any) { fmt.Fprintf(out, format, a...) }
func println(a ...any)               { fmt.Fprintln(out, a...) }
func printstr(a ...any)              { fmt.Fprint(out, a...) }

func usage(w io.Writer) {
	fmt.Fprint(w, `wormhole - tracking invisible MPLS tunnels (IMC'17 reproduction)

commands:
  emulate      run the Fig. 2 GNS3-style testbed and print traces
  campaign     generate a synthetic Internet and run the full campaign
  experiments  regenerate the paper's tables and figures
  fingerprint  TTL-signature a testbed router
  analyze      offline analysis of a saved campaign dataset
  tnt          trigger-driven traceroute with inline tunnel revelation
  graph        export campaign graphs (before/after revelation) as DOT
  bench        measure replica construction and campaign throughput (JSON report)
  worker       join a distributed campaign as a worker process (spawned by -dist)
`)
}

func parseScenario(s string) (lab.Scenario, error) {
	switch s {
	case "default":
		return lab.Default, nil
	case "backward-recursive":
		return lab.BackwardRecursive, nil
	case "explicit-route":
		return lab.ExplicitRoute, nil
	case "totally-invisible":
		return lab.TotallyInvisible, nil
	default:
		return 0, fmt.Errorf("unknown scenario %q", s)
	}
}

func parseScale(s string) (experiments.Scale, error) {
	switch s {
	case "small":
		return experiments.Small, nil
	case "medium":
		return experiments.Medium, nil
	case "large":
		return experiments.Large, nil
	case "huge":
		return experiments.Huge, nil
	case "giga":
		return experiments.Giga, nil
	default:
		return 0, fmt.Errorf("unknown scale %q", s)
	}
}

func cmdEmulate(args []string) error {
	fs := flag.NewFlagSet("emulate", flag.ExitOnError)
	scenarioName := fs.String("scenario", "backward-recursive", "MPLS configuration scenario")
	target := fs.String("target", "", "trace target (default: CE2.left), e.g. 10.23.0.2")
	revealFlag := fs.Bool("reveal", true, "run the revelation pipeline on the trace's candidate pair")
	pcapPath := fs.String("pcap", "", "capture all fabric traffic to this pcap file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scenario, err := parseScenario(*scenarioName)
	if err != nil {
		return err
	}
	l, err := lab.Build(lab.Options{Scenario: scenario})
	if err != nil {
		return err
	}
	dst := l.CE2Left
	if *target != "" {
		if dst, err = netaddr.ParseAddr(*target); err != nil {
			return err
		}
	}
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		pw := pcap.NewWriter(f)
		pcap.Attach(l.Net, pw)
		defer func() { printf("captured %d frames to %s\n", pw.Packets, *pcapPath) }()
	}
	printf("scenario %s, tracing %s:\n", scenario, dst)
	tr := l.Prober.Traceroute(dst)
	for _, h := range tr.Hops {
		if h.Anonymous() {
			printf("%2d  *\n", h.ProbeTTL)
			continue
		}
		printf("%2d  %-16s [%d]\n", h.ProbeTTL, h.Addr, h.ReplyTTL)
		for _, lse := range h.MPLS {
			printf("      MPLS Label %d TTL=%d\n", lse.Label, lse.TTL)
		}
	}
	if !*revealFlag {
		return nil
	}
	cand, ok := reveal.CandidateFromTrace(tr)
	if !ok {
		println("no revelation candidate in this trace")
		return nil
	}
	rev := reveal.Reveal(l.Prober, cand.Ingress.Addr, cand.Egress.Addr)
	printf("\nrevelation %s -> %s: technique=%s probes=%d\n",
		rev.Ingress, rev.Egress, rev.Technique, rev.Probes)
	for i, h := range rev.Hops {
		printf("  hidden hop %d: %s\n", i+1, h)
	}
	return nil
}

func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	seed := fs.Int64("seed", 2024, "generator seed")
	scaleName := fs.String("scale", "small", "internet scale")
	out := fs.String("out", "", "save the campaign dataset to this JSONL file")
	seeds := fs.Int("seeds", 1, "run this many consecutive seeds in parallel and pool the statistics")
	workers := fs.Int("workers", 0, "probing worker-pool size (0 = GOMAXPROCS); results are identical at every size")
	dist := fs.Int("dist", 0, "run the campaign across this many worker processes instead of in-process goroutines (results are identical)")
	distReplica := fs.String("dist-replica", "snapshot", "how workers obtain the fabric: snapshot (wire-codec blob) or rebuild (regenerate from Params)")
	method := fs.String("method", "icmp", "traceroute probe method: icmp (Paris echo) or udp (classic port-cycling)")
	noFlowCache := fs.Bool("no-flow-cache", false, "disable the flow-trajectory probe cache (results are identical either way)")
	noSweep := fs.Bool("no-sweep", false, "disable the single-injection TTL sweep (results are identical either way)")
	churn := fs.Float64("churn", 0, "expected link fail/reconverge/repair cycles per shard (0 = static topology)")
	churnSeed := fs.Int64("churn-seed", 0, "churn schedule seed (default: the generator seed)")
	churnFlush := fs.Bool("churn-flush-world", false, "invalidate every cache on each churn event instead of delta-eviction (baseline mode)")
	pprofPrefix := fs.String("pprof", "", "write CPU and heap profiles to <prefix>.cpu.pb.gz and <prefix>.heap.pb.gz")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofPrefix != "" {
		stop, err := startProfiles(*pprofPrefix)
		if err != nil {
			return err
		}
		defer stop()
	}
	if *seeds > 1 {
		return multiSeedCampaign(*seed, *seeds, *scaleName)
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	in, err := gen.Build(scale.Params(*seed))
	if err != nil {
		return err
	}
	// The scale owns its campaign regime: small/medium run the default
	// config unchanged, large/huge sample bootstrap and probing targets,
	// giga streams them — probing the full universe from every VP at the
	// big rungs is a different experiment (and on the lazy rung would
	// materialize all 10⁶ routers).
	ccfg := scale.CampaignConfig()
	switch *method {
	case "icmp":
		ccfg.Method = probe.ICMPParis
	case "udp":
		ccfg.Method = probe.UDPParis
	default:
		return fmt.Errorf("unknown probe method %q (want icmp or udp)", *method)
	}
	ccfg.DisableFlowCache = *noFlowCache
	ccfg.DisableSweep = *noSweep
	ccfg.ChurnRate = *churn
	ccfg.ChurnSeed = *churnSeed
	if ccfg.ChurnSeed == 0 {
		ccfg.ChurnSeed = *seed
	}
	ccfg.ChurnFlushWorld = *churnFlush
	var c *campaign.Campaign
	if *dist > 0 {
		var mode campaign.ReplicaMode
		switch *distReplica {
		case "snapshot":
			mode = campaign.ReplicaSnapshot
		case "rebuild":
			mode = campaign.ReplicaRebuild
		default:
			return fmt.Errorf("unknown dist replica mode %q (want snapshot or rebuild)", *distReplica)
		}
		c, err = campaign.RunDistributed(in, ccfg, campaign.DistConfig{
			Workers: *dist,
			Replica: mode,
			Spawn:   spawnWorkerProcess,
		})
	} else {
		c, err = campaign.RunParallel(in, ccfg, campaign.ParallelConfig{Workers: *workers})
	}
	if err != nil {
		return err
	}
	printf("internet: %d ASes, %d VPs\n", len(in.ASes), len(in.VPs))
	if *dist > 0 {
		printf("distributed: %d worker processes, %s replicas\n", c.Workers, *distReplica)
	}
	if st := c.Lazy; st.Resident != st.Total || st.FaultIns > 0 {
		printf("lazy fabric: resident %d of %d routers (%d of %d stubs), %d fault-ins",
			st.Resident, st.Total, st.ResidentStubs, st.TotalStubs, st.FaultIns)
		if st.FaultIns > 0 {
			printf(" (%.2f ms total)", float64(st.FaultInNS)/1e6)
		}
		if c.ReplicaResident > 0 {
			printf(", %d resident across %d replicas", c.ReplicaResident, c.Workers)
		}
		printf("\n")
	}
	printf("observed graph: %d nodes, %d edges, density %.4f\n",
		c.ITDK.NumNodes(), c.ITDK.NumEdges(), c.ITDK.Density())
	printf("HDNs (threshold %d): %d\n", c.Cfg.HDNThreshold, len(c.HDNs))
	printf("targets probed: %d, probes sent: %d\n", len(c.Targets), c.Probes)
	if *churn > 0 {
		mode := "delta-invalidation"
		if *churnFlush {
			mode = "flush-world"
		}
		printf("churn: rate %.2g seed %d, %d events fired (%d cycles), %s\n",
			*churn, ccfg.ChurnSeed, c.ChurnEvents, c.ChurnEvents/3, mode)
	}
	if !*noFlowCache {
		fc := c.FlowCache
		printf("flow cache: %d hits (%d shared), %d misses, %d fast-forwards, %d invalidations\n",
			fc.Hits, fc.SharedHits, fc.Misses, fc.FastForwards, fc.Invalidations)
	}
	if !*noSweep {
		for _, mod := range []struct {
			name string
			c    netsim.SweepCounters
		}{{"icmp", c.Sweep.ICMP}, {"udp", c.Sweep.UDP}} {
			if mod.c == (netsim.SweepCounters{}) {
				continue
			}
			printf("ttl sweep [%s]: %d walks, %d derived replies, %d fallbacks, %d bypasses, %d slot aliases\n",
				mod.name, mod.c.Walks, mod.c.Replies, mod.c.Fallbacks, mod.c.Bypasses, mod.c.Aliases)
		}
	}
	byTech := map[reveal.Technique]int{}
	hidden := 0
	for _, rev := range c.Revelations() {
		byTech[rev.Technique]++
		hidden += len(rev.Hops)
	}
	printf("revelations: DPR=%d BRPR=%d either=%d hybrid=%d failed=%d, hidden hops found=%d\n",
		byTech[reveal.TechDPR], byTech[reveal.TechBRPR], byTech[reveal.TechEither],
		byTech[reveal.TechHybrid], byTech[reveal.TechNone], hidden)
	printShardStats(c)
	if *out != "" {
		ds := c.Dataset(fmt.Sprintf("seed=%d scale=%s", *seed, *scaleName))
		if err := tracefile.Save(*out, ds); err != nil {
			return err
		}
		printf("dataset saved to %s (%d records, %d fingerprints)\n", *out, len(ds.Records), len(ds.Fingerprints))
	}
	return nil
}

// printShardStats reports the probing phase's per-shard breakdown and the
// worker-pool balance chart.
func printShardStats(c *campaign.Campaign) {
	if len(c.Shards) == 0 {
		return
	}
	// Workers is the provisioned pool; ShardWorkers is what the probing
	// phase could actually use (the shard count caps it), so the balance
	// chart is labeled with the effective number.
	printf("\nprobing phase: %d shards on %d of %d pooled workers\n",
		len(c.Shards), c.ShardWorkers, c.Workers)
	printf("%-6s %-5s %-7s %-8s %-8s %-8s %-7s %-10s %-10s\n",
		"shard", "team", "worker", "targets", "probes", "replies", "reveal", "maxdepth", "probes/s")
	var tm stats.Timings
	for _, sh := range c.Shards {
		printf("%-6d %-5d %-7d %-8d %-8d %-8d %-7d %-10d %-10.0f\n",
			sh.Shard, sh.Team, sh.Worker, sh.Targets, sh.Probes, sh.Replies,
			sh.Revelations, sh.MaxRevealDepth, stats.Rate(sh.Probes, sh.Elapsed))
		tm.Add(fmt.Sprintf("shard %d", sh.Shard), sh.Elapsed)
	}
	printstr(tm.Render(fmt.Sprintf("shard wall-clock (%d effective workers)", c.ShardWorkers), 40))
	if c.LoopDrops > 0 {
		printf("WARNING: %d fabric events dropped on %d event-budget exhaustions — "+
			"probes died in a forwarding loop and were recorded as '*' hops\n",
			c.LoopDrops, c.BudgetHits)
	}
}

// startProfiles begins a CPU profile and arranges a heap profile at stop.
func startProfiles(prefix string) (stop func(), err error) {
	cpu, err := os.Create(prefix + ".cpu.pb.gz")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		cpu.Close()
		heap, err := os.Create(prefix + ".heap.pb.gz")
		if err != nil {
			printf("pprof: %v\n", err)
			return
		}
		defer heap.Close()
		if err := pprof.WriteHeapProfile(heap); err != nil {
			printf("pprof: %v\n", err)
			return
		}
		printf("profiles written to %s.cpu.pb.gz and %s.heap.pb.gz\n", prefix, prefix)
	}, nil
}

// cmdBench runs the benchrun suite and writes the JSON report.
// spawnWorkerProcess launches one distributed-campaign worker by
// re-execing this binary's worker subcommand against the coordinator's
// socket.
func spawnWorkerProcess(i int, network, addr string) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	cmd := exec.Command(exe, "worker", "-network", network, "-connect", addr)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	go cmd.Wait() // reap; the protocol surfaces worker failures as errors
	return nil
}

// cmdWorker is the worker half of a distributed campaign: dial the
// coordinator and serve the shard protocol until the session completes.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	network := fs.String("network", "unix", "coordinator socket network (unix or tcp)")
	connect := fs.String("connect", "", "coordinator socket address (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("worker: -connect is required")
	}
	conn, err := net.Dial(*network, *connect)
	if err != nil {
		return err
	}
	return campaign.ServeWorker(conn)
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	seed := fs.Int64("seed", 2024, "generator seed")
	scaleName := fs.String("scale", "small", "internet scale")
	runs := fs.Int("runs", 3, "campaign iterations per worker count")
	workersCSV := fs.String("workers", "", "comma-separated worker counts (default 1,4,NumCPU)")
	scalesCSV := fs.String("scales", "", "comma-separated scale-ladder rungs to measure build/snapshot/memory for (e.g. small,medium,large)")
	scalesOnly := fs.Bool("scales-only", false, "measure only the scale ladder (skip clone and campaign matrices)")
	distCSV := fs.String("dist", "2,4", "comma-separated worker counts for the distributed-engine rows (real worker processes; empty = skip)")
	outPath := fs.String("out", "BENCH_campaign.json", "output JSON path")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the whole suite to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		cpu, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			cpu.Close()
			printf("cpu profile written to %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			heap, err := os.Create(*memProfile)
			if err != nil {
				printf("memprofile: %v\n", err)
				return
			}
			defer heap.Close()
			if err := pprof.WriteHeapProfile(heap); err != nil {
				printf("memprofile: %v\n", err)
				return
			}
			printf("heap profile written to %s\n", *memProfile)
		}()
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	cfg := benchrun.Config{Scale: scale, Seed: *seed, Runs: *runs, ScalesOnly: *scalesOnly}
	if *scalesCSV != "" {
		for _, part := range strings.Split(*scalesCSV, ",") {
			s, err := parseScale(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bench: %w", err)
			}
			cfg.Scales = append(cfg.Scales, s)
		}
	} else if *scalesOnly {
		cfg.Scales = []experiments.Scale{scale}
	}
	if *workersCSV != "" {
		for _, part := range strings.Split(*workersCSV, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bench: bad worker count %q", part)
			}
			cfg.Workers = append(cfg.Workers, w)
		}
	}
	if *distCSV != "" && !*scalesOnly {
		for _, part := range strings.Split(*distCSV, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bench: bad dist worker count %q", part)
			}
			cfg.Dist = append(cfg.Dist, w)
		}
		cfg.DistSpawn = spawnWorkerProcess
	}
	rep, err := benchrun.Run(cfg)
	if err != nil {
		return err
	}
	for _, sr := range rep.Scales {
		printf("scale %-6s: %7d routers, build %.0fms, snapshot %.1fms, %.0f bytes/router",
			sr.Scale, sr.Routers, sr.BuildMS, sr.SnapshotMS, sr.BytesPerRouter)
		if sr.ResidentRouters != sr.Routers {
			printf(" (%d resident, fault-in %.3fms)", sr.ResidentRouters, sr.FaultInMS)
		}
		printf("\n")
	}
	if *scalesOnly {
		if err := benchrun.WriteJSON(*outPath, rep); err != nil {
			return err
		}
		printf("report written to %s\n", *outPath)
		return nil
	}
	printf("clone: structural %.2fms, rebuild %.2fms, speedup %.1fx\n",
		rep.Clone.StructuralMS, rep.Clone.RebuildMS, rep.Clone.Speedup)
	for _, cr := range rep.Campaign {
		cache, sweep := "off", "off"
		if cr.FlowCache {
			cache = "on"
		}
		if cr.Sweep {
			sweep = "on"
		}
		churn := "off"
		if cr.Churn {
			churn = "delta"
			if cr.ChurnFlushWorld {
				churn = "flush"
			}
		}
		printf("campaign workers=%d (%d effective) method=%-4s cache=%-3s sweep=%-3s churn=%-5s procs=%d: %.0f probes/s, %.0f ns/probe, %.1f allocs/probe, %.2fms/run (replica %.2fms, bootstrap %.2fms)",
			cr.Workers, cr.EffectiveWorkers, cr.Method, cache, sweep, churn, cr.GoMaxProcs, cr.ProbesPerSec, cr.NsPerProbe, cr.AllocsPerProbe,
			cr.WallMSPerRun, cr.ReplicaMS, cr.BootstrapMS)
		if cr.Churn {
			printf(" (%d churn events)", cr.ChurnEventsPerRun)
		}
		if cr.FlowCache {
			printf(" (%d hits incl %d shared, %d misses, %d ff)",
				cr.CacheHitsPerRun, cr.CacheSharedHitsPerRun, cr.CacheMissesPerRun, cr.CacheFFPerRun)
		}
		if cr.Sweep {
			printf(" (%d walks, %d derived, %d fallbacks, %d bypasses, %d aliases)",
				cr.SweepWalksPerRun, cr.SweepRepliesPerRun, cr.SweepFallbacksPerRun,
				cr.SweepBypassesPerRun, cr.SweepAliasesPerRun)
		}
		printf("\n")
	}
	for _, dr := range rep.Dist {
		printf("dist workers=%d procs=%d: encode %.2fms, decode %.2fms, stream %.2f MB, %.0f probes/s, %.2fms/run (%d resident routers/worker)\n",
			dr.Workers, dr.Processes, dr.EncodeMS, dr.DecodeMS, dr.StreamMB,
			dr.ProbesPerSec, dr.WallMSPerRun, dr.ResidentRoutersPerWorker)
	}
	if err := benchrun.WriteJSON(*outPath, rep); err != nil {
		return err
	}
	printf("report written to %s\n", *outPath)
	return nil
}

// multiSeedCampaign pools statistics across parallel worlds.
func multiSeedCampaign(first int64, n int, scaleName string) error {
	scale, err := parseScale(scaleName)
	if err != nil {
		return err
	}
	var list []int64
	for i := 0; i < n; i++ {
		list = append(list, first+int64(i))
	}
	sums := campaign.RunSeeds(list, scale.Params(0), scale.CampaignConfig())
	printf("%-8s %-7s %-7s %-6s %-8s %-8s %-12s %-6s\n",
		"seed", "nodes", "edges", "HDNs", "targets", "probes", "revelations", "hops")
	for _, s := range sums {
		if s.Err != nil {
			printf("%-8d generator error: %v\n", s.Seed, s.Err)
			continue
		}
		printf("%-8d %-7d %-7d %-6d %-8d %-8d %-12d %-6d\n",
			s.Seed, s.Nodes, s.Edges, s.HDNs, s.Targets, s.Probes, s.Revelations, s.HiddenHops)
	}
	pooled := campaign.MergeFTL(sums)
	if pooled.N() > 0 {
		printstr(pooled.Render("pooled forward tunnel length", 40))
	}
	return nil
}

// cmdAnalyze re-derives the headline statistics from a saved dataset,
// without any probing: the offline workflow the paper's published dataset
// supports.
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: wormhole analyze <dataset.jsonl>")
	}
	ds, err := tracefile.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	printf("dataset: %s (%d records, %d fingerprints)\n", ds.Header.Comment, len(ds.Records), len(ds.Fingerprints))

	g := topo.New(nil)
	lengths := stats.NewHistogram()
	ftl := stats.NewHistogram()
	techniques := map[string]int{}
	for _, rec := range ds.Records {
		tr, err := rec.Trace.ToTrace()
		if err != nil {
			return err
		}
		g.AddTrace(tr)
		if tr.Reached {
			n := 0
			for _, h := range tr.Hops {
				if !h.Anonymous() {
					n++
				}
			}
			lengths.Add(n)
		}
		if rec.Revelation != nil && len(rec.Revelation.Hops) > 0 {
			techniques[rec.Revelation.Technique]++
			ftl.Add(len(rec.Revelation.Hops))
		}
	}
	printf("observed graph: %d nodes, %d edges, density %.4f\n", g.NumNodes(), g.NumEdges(), g.Density())
	printstr(lengths.Render("trace length (responding hops)", 40))
	if ftl.N() > 0 {
		printstr(ftl.Render("revealed tunnel interior length", 40))
	}
	printf("techniques: %v\n", techniques)
	sigs := map[string]int{}
	for _, fp := range ds.Fingerprints {
		sigs[fp.Class]++
	}
	printf("fingerprint classes: %v\n", sigs)
	return nil
}

// cmdGraph runs a campaign and writes the observed and corrected graphs
// as Graphviz DOT files, HDNs highlighted.
func cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	seed := fs.Int64("seed", 2024, "generator seed")
	scaleName := fs.String("scale", "small", "internet scale")
	beforePath := fs.String("before", "before.dot", "output for the uncorrected graph")
	afterPath := fs.String("after", "after.dot", "output for the corrected graph")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	w, err := experiments.NewWorld(*seed, scale)
	if err != nil {
		return err
	}
	hdn := map[string]bool{}
	for _, n := range w.C.HDNs {
		hdn[n.Name] = true
	}
	highlight := func(n *topo.Node) bool { return hdn[n.Name] }
	write := func(path string, g *topo.Graph, name string) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := g.WriteDOT(f, name, highlight); err != nil {
			return err
		}
		printf("%s: %d nodes, %d edges -> %s\n", name, g.NumNodes(), g.NumEdges(), path)
		return f.Close()
	}
	if err := write(*beforePath, w.C.ObservedTraceGraph(), "invisible"); err != nil {
		return err
	}
	return write(*afterPath, w.C.CorrectedGraph(), "revealed")
}

// cmdTNT runs the augmented traceroute on the testbed: FRPLA/RTLA as
// triggers, DPR/BRPR inline, as the paper's conclusion envisions.
func cmdTNT(args []string) error {
	fs := flag.NewFlagSet("tnt", flag.ExitOnError)
	scenarioName := fs.String("scenario", "backward-recursive", "testbed scenario")
	target := fs.String("target", "", "trace target (default: CE2.left)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scenario, err := parseScenario(*scenarioName)
	if err != nil {
		return err
	}
	l, err := lab.Build(lab.Options{Scenario: scenario})
	if err != nil {
		return err
	}
	dst := l.CE2Left
	if *target != "" {
		if dst, err = netaddr.ParseAddr(*target); err != nil {
			return err
		}
	}
	at := reveal.AugmentedTraceroute(l.Prober, dst)
	for _, h := range at.Hops {
		if h.Anonymous() {
			printf("%2d  *\n", h.ProbeTTL)
			continue
		}
		printf("%2d  %-16s [%d]", h.ProbeTTL, h.Addr, h.ReplyTTL)
		if h.Trigger != reveal.TriggerNone {
			printf("  trigger:%s", h.Trigger)
		}
		println()
		for _, hidden := range h.Hidden {
			printf("      + %-16s (%s)\n", hidden, h.Technique)
		}
	}
	printf("path length %d, extra probes %d\n", at.PathLength(), at.ExtraProbes)
	return nil
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	seed := fs.Int64("seed", 2024, "generator seed")
	scaleName := fs.String("scale", "small", "internet scale")
	mdPath := fs.String("md", "", "also write a Markdown report to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	want := map[string]bool{}
	for _, id := range fs.Args() {
		want[strings.ToLower(id)] = true
	}
	var reports []*experiments.Report
	var w *experiments.World
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		if r.NeedsWorld && w == nil {
			fmt.Fprintf(os.Stderr, "building world (seed %d, scale %s)...\n", *seed, *scaleName)
			if w, err = experiments.NewWorld(*seed, scale); err != nil {
				return err
			}
		}
		rep, err := r.Run(w)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		reports = append(reports, rep)
		println(rep)
	}
	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteMarkdown(f, *seed, *scaleName, reports); err != nil {
			return err
		}
		printf("markdown report written to %s\n", *mdPath)
		return f.Close()
	}
	return nil
}

func cmdFingerprint(args []string) error {
	fs := flag.NewFlagSet("fingerprint", flag.ExitOnError)
	scenarioName := fs.String("scenario", "default", "testbed scenario")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scenario, err := parseScenario(*scenarioName)
	if err != nil {
		return err
	}
	l, err := lab.Build(lab.Options{Scenario: scenario})
	if err != nil {
		return err
	}
	tr := l.Prober.Traceroute(l.CE2Left)
	fp := fingerprint.New(l.Prober)
	for _, h := range tr.Hops {
		if h.Anonymous() {
			continue
		}
		if r, ok := fp.FromHop(h); ok {
			printf("%-16s signature %s class %s\n", r.Addr, r.Signature, r.Class)
		}
	}
	return nil
}
