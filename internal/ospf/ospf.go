// Package ospf implements an in-band link-state protocol over the
// simulation fabric: each router floods a link-state advertisement
// describing its adjacencies and owned prefixes as protocol-89 packets,
// neighbors re-flood unseen LSAs, and once the fabric drains every router
// computes shortest paths over its own link-state database and installs
// routes — the distributed counterpart of internal/igp's centralized
// computation (the paper's testbed ran real OSPF between the emulated
// routers; this package plays that role, and its results are verified to
// match the centralized SPF exactly).
//
// LSAs are encoded with encoding/gob; framing realism lives in the other
// protocols, the point here is the in-band distribution dynamics
// (flooding, sequence numbers, re-convergence on topology change).
package ospf

import (
	"bytes"
	"container/heap"
	"encoding/gob"
	"fmt"
	"math"
	"sort"

	"wormhole/internal/igp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
	"wormhole/internal/router"
)

// lsaLink is one adjacency in an LSA.
type lsaLink struct {
	// Neighbor is the adjacent router's ID (its name).
	Neighbor string
	// Gateway is the neighbor's interface address on the shared link.
	Gateway netaddr.Addr
	// Local is this router's interface address (identifies the out
	// interface when the receiver is the LSA's origin's neighbor).
	Local netaddr.Addr
	// Cost is the link metric.
	Cost int
}

// lsa is one router's link-state advertisement.
type lsa struct {
	Origin   string
	Seq      uint64
	Links    []lsaLink
	Prefixes []netaddr.Prefix // loopback + connected (intra-area) prefixes
}

// Instance is the OSPF speaker running on one router.
type Instance struct {
	r    *router.Router
	area *Area
	lsdb map[string]lsa
	seq  uint64
}

// Area groups the speakers of one IGP domain.
type Area struct {
	Net       *netsim.Network
	instances map[*router.Router]*Instance
	routers   []*router.Router
	member    map[string]bool
}

// Enable attaches OSPF speakers to the routers of one area. Flooding and
// route computation happen in Converge.
func Enable(net *netsim.Network, routers []*router.Router) *Area {
	a := &Area{
		Net:       net,
		instances: make(map[*router.Router]*Instance, len(routers)),
		routers:   routers,
		member:    make(map[string]bool, len(routers)),
	}
	for _, r := range routers {
		inst := &Instance{r: r, area: a, lsdb: make(map[string]lsa)}
		a.instances[r] = inst
		r.ControlHandler = inst.receive
		a.member[r.Name()] = true
	}
	return a
}

// Converge floods every router's current LSA, drains the fabric, and
// installs the resulting routes. Call again after topology changes
// (failed links) to re-converge.
func (a *Area) Converge() error {
	for _, r := range a.routers {
		inst := a.instances[r]
		inst.seq++
		own := inst.buildLSA()
		inst.accept(own)
		inst.flood(nil, own)
	}
	a.Net.Run()
	// Every router now computes and installs from its own LSDB.
	for _, r := range a.routers {
		if err := a.instances[r].installRoutes(); err != nil {
			return err
		}
	}
	return nil
}

// Instance returns r's speaker (tests inspect LSDBs).
func (a *Area) Instance(r *router.Router) *Instance { return a.instances[r] }

// LSDBSize returns the number of LSAs a router holds.
func (i *Instance) LSDBSize() int { return len(i.lsdb) }

// buildLSA snapshots the router's live adjacencies and owned prefixes.
func (i *Instance) buildLSA() lsa {
	l := lsa{Origin: i.r.Name(), Seq: i.seq}
	if lo := i.r.Loopback(); lo != nil {
		l.Prefixes = append(l.Prefixes, lo.Prefix)
	}
	for _, ifc := range i.r.Ifaces() {
		if ifc.Link == nil || !ifc.Link.Up {
			continue
		}
		remote := ifc.Remote()
		nr, ok := remote.Owner.(*router.Router)
		if !ok {
			// Host-facing subnet: advertised as an owned prefix.
			l.Prefixes = append(l.Prefixes, ifc.Prefix)
			continue
		}
		if !i.area.member[nr.Name()] {
			continue // cross-AS: not in the area
		}
		l.Links = append(l.Links, lsaLink{
			Neighbor: nr.Name(),
			Gateway:  remote.Addr,
			Local:    ifc.Addr,
			Cost:     1,
		})
		l.Prefixes = append(l.Prefixes, ifc.Prefix)
	}
	return l
}

// receive handles an OSPF packet: decode, accept if new, re-flood.
func (i *Instance) receive(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet) {
	var l lsa
	if err := gob.NewDecoder(bytes.NewReader(pkt.Raw)).Decode(&l); err != nil {
		return // malformed LSA: dropped, as real OSPF would
	}
	if old, ok := i.lsdb[l.Origin]; ok && old.Seq >= l.Seq {
		return // already have it: flooding terminates
	}
	i.accept(l)
	i.flood(in, l)
}

func (i *Instance) accept(l lsa) { i.lsdb[l.Origin] = l }

// flood sends the LSA out every area-internal interface except the one it
// arrived on.
func (i *Instance) flood(in *netsim.Iface, l lsa) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(l); err != nil {
		return
	}
	for _, ifc := range i.r.Ifaces() {
		if ifc == in || ifc.Link == nil || !ifc.Link.Up {
			continue
		}
		remote := ifc.Remote()
		nr, ok := remote.Owner.(*router.Router)
		if !ok || !i.area.member[nr.Name()] {
			continue
		}
		i.area.Net.Transmit(ifc, &packet.Packet{
			IP: packet.IPv4{
				TTL:      1, // link-local
				Protocol: packet.ProtoOSPF,
				Src:      ifc.Addr,
				Dst:      remote.Addr,
			},
			Raw: buf.Bytes(),
		})
	}
}

// installRoutes runs Dijkstra over the local LSDB and installs connected
// and IGP routes, mirroring internal/igp's semantics.
func (i *Instance) installRoutes() error {
	dist, firstHops, err := i.spf()
	if err != nil {
		return err
	}

	// Prefix ownership and best-owner routes.
	owners := map[netaddr.Prefix][]string{}
	var prefixes []netaddr.Prefix
	for _, origin := range sortedOrigins(i.lsdb) {
		l := i.lsdb[origin]
		for _, p := range l.Prefixes {
			if len(owners[p]) == 0 {
				prefixes = append(prefixes, p)
			}
			owners[p] = append(owners[p], l.Origin)
		}
	}
	ifaceByAddr := map[netaddr.Addr]*netsim.Iface{}
	for _, ifc := range i.r.Ifaces() {
		ifaceByAddr[ifc.Addr] = ifc
	}

	for _, p := range prefixes {
		// Connected wins.
		if connected := i.connectedIface(p); connected != nil {
			i.r.InstallRoute(p, &router.Route{
				Origin:   router.OriginConnected,
				NextHops: []router.NextHop{{Out: connected}},
			})
			continue
		}
		if lo := i.r.Loopback(); lo != nil && lo.Prefix == p {
			continue
		}
		best := math.MaxInt32
		for _, o := range owners[p] {
			if d, ok := dist[o]; ok && d < best {
				best = d
			}
		}
		if best == math.MaxInt32 {
			continue
		}
		var nhs []router.NextHop
		seen := map[netaddr.Addr]bool{}
		for _, o := range owners[p] {
			if dist[o] != best {
				continue
			}
			for _, h := range firstHops[o] {
				out, ok := ifaceByAddr[h.Local]
				if !ok {
					return fmt.Errorf("ospf: %s: first hop via unknown interface %s", i.r.Name(), h.Local)
				}
				if !seen[h.Gateway] {
					seen[h.Gateway] = true
					nhs = append(nhs, router.NextHop{Out: out, Gateway: h.Gateway})
				}
			}
		}
		if len(nhs) > 0 {
			i.r.InstallRoute(p, &router.Route{Origin: router.OriginIGP, NextHops: nhs})
		}
	}
	// Cross-area interfaces never enter LSAs, but the border still owns
	// their connected routes (the centralized igp installs these too; BGP
	// redistributes them further).
	for _, ifc := range i.r.Ifaces() {
		remote := ifc.Remote()
		if remote == nil {
			continue
		}
		if nr, ok := remote.Owner.(*router.Router); ok && !i.area.member[nr.Name()] {
			i.r.InstallRoute(ifc.Prefix, &router.Route{
				Origin:   router.OriginConnected,
				NextHops: []router.NextHop{{Out: ifc}},
			})
		}
	}
	return nil
}

func (i *Instance) connectedIface(p netaddr.Prefix) *netsim.Iface {
	for _, ifc := range i.r.Ifaces() {
		if ifc.Prefix == p {
			return ifc
		}
	}
	return nil
}

func appendHop(hops []lsaLink, h lsaLink) []lsaLink {
	for _, e := range hops {
		if e.Local == h.Local && e.Gateway == h.Gateway {
			return hops
		}
	}
	return append(hops, h)
}

func sortedOrigins(lsdb map[string]lsa) []string {
	out := make([]string, 0, len(lsdb))
	for k := range lsdb {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type ndEntry struct {
	name string
	d    int
}

type ndQueue []ndEntry

func (q ndQueue) Len() int            { return len(q) }
func (q ndQueue) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q ndQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *ndQueue) Push(x interface{}) { *q = append(*q, x.(ndEntry)) }
func (q *ndQueue) Pop() interface{} {
	old := *q
	n := len(old)
	v := old[n-1]
	*q = old[:n-1]
	return v
}

// Result converts the area's converged link state into the igp.Result
// shape the LDP builder and BGP hot-potato computation consume, so a
// domain whose routing came from in-band flooding can still drive the
// rest of the control plane. All routers hold identical LSDBs after
// Converge; the first instance's database is authoritative.
func (a *Area) Result() (*igp.Result, error) {
	if len(a.routers) == 0 {
		return nil, fmt.Errorf("ospf: empty area")
	}
	byName := make(map[string]*router.Router, len(a.routers))
	for _, r := range a.routers {
		byName[r.Name()] = r
	}
	res := &igp.Result{
		Owners:   make(map[netaddr.Prefix][]*router.Router),
		NextHops: make(map[*router.Router]map[netaddr.Prefix][]igp.Hop),
		Dist:     make(map[*router.Router]map[*router.Router]int),
	}
	ref := a.instances[a.routers[0]]
	seen := map[netaddr.Prefix]bool{}
	for _, origin := range sortedOrigins(ref.lsdb) {
		l := ref.lsdb[origin]
		r, ok := byName[origin]
		if !ok {
			continue
		}
		for _, p := range l.Prefixes {
			if !seen[p] {
				seen[p] = true
				res.Prefixes = append(res.Prefixes, p)
			}
			already := false
			for _, o := range res.Owners[p] {
				if o == r {
					already = true
				}
			}
			if !already {
				res.Owners[p] = append(res.Owners[p], r)
			}
		}
	}
	for _, r := range a.routers {
		inst := a.instances[r]
		dist, firstHops, err := inst.spf()
		if err != nil {
			return nil, err
		}
		dr := make(map[*router.Router]int, len(dist))
		for name, d := range dist {
			if other, ok := byName[name]; ok {
				dr[other] = d
			}
		}
		res.Dist[r] = dr
		nh := make(map[netaddr.Prefix][]igp.Hop)
		res.NextHops[r] = nh
		ifaceByAddr := map[netaddr.Addr]*netsim.Iface{}
		for _, ifc := range r.Ifaces() {
			ifaceByAddr[ifc.Addr] = ifc
		}
		for _, p := range res.Prefixes {
			if connected := inst.connectedIface(p); connected != nil {
				nh[p] = []igp.Hop{{Out: connected}}
				continue
			}
			if lo := r.Loopback(); lo != nil && lo.Prefix == p {
				nh[p] = nil
				continue
			}
			best := math.MaxInt32
			for _, o := range res.Owners[p] {
				if d, ok := dr[o]; ok && d < best {
					best = d
				}
			}
			if best == math.MaxInt32 {
				continue
			}
			var hops []igp.Hop
			dedup := map[netaddr.Addr]bool{}
			for _, o := range res.Owners[p] {
				if dr[o] != best {
					continue
				}
				for _, h := range firstHops[o.Name()] {
					if dedup[h.Gateway] {
						continue
					}
					dedup[h.Gateway] = true
					hops = append(hops, igp.Hop{
						Out:     ifaceByAddr[h.Local],
						Gateway: h.Gateway,
						Via:     byName[h.Neighbor],
					})
				}
			}
			nh[p] = hops
		}
	}
	return res, nil
}

// spf exposes the Dijkstra pass installRoutes uses, returning distances
// and first-hop sets by router name.
func (i *Instance) spf() (map[string]int, map[string][]lsaLink, error) {
	self := i.r.Name()
	type edge struct {
		to      string
		cost    int
		local   netaddr.Addr
		gateway netaddr.Addr
	}
	adj := map[string][]edge{}
	for _, l := range i.lsdb {
		for _, ln := range l.Links {
			peer, ok := i.lsdb[ln.Neighbor]
			if !ok {
				continue
			}
			twoWay := false
			for _, back := range peer.Links {
				if back.Neighbor == l.Origin {
					twoWay = true
				}
			}
			if twoWay {
				adj[l.Origin] = append(adj[l.Origin], edge{to: ln.Neighbor, cost: ln.Cost, local: ln.Local, gateway: ln.Gateway})
			}
		}
	}
	dist := map[string]int{self: 0}
	firstHops := map[string][]lsaLink{}
	pq := &ndQueue{{self, 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(ndEntry)
		if cur.d > dist[cur.name] {
			continue
		}
		for _, e := range adj[cur.name] {
			ndist := cur.d + e.cost
			old, seen := dist[e.to]
			relaxed := !seen || ndist < old
			if relaxed {
				dist[e.to] = ndist
				firstHops[e.to] = nil
				heap.Push(pq, ndEntry{e.to, ndist})
			}
			if relaxed || ndist == old {
				if cur.name == self {
					firstHops[e.to] = appendHop(firstHops[e.to], lsaLink{Neighbor: e.to, Local: e.local, Gateway: e.gateway})
				} else {
					for _, h := range firstHops[cur.name] {
						firstHops[e.to] = appendHop(firstHops[e.to], h)
					}
				}
			}
		}
	}
	return dist, firstHops, nil
}
