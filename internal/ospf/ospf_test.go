package ospf_test

import (
	"testing"
	"time"

	"wormhole/internal/igp"
	"wormhole/internal/ldp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/ospf"
	"wormhole/internal/packet"
	"wormhole/internal/probe"
	"wormhole/internal/router"
)

// fixture: vp - a - {b|c} - d - h diamond, plain IP.
type fixture struct {
	net        *netsim.Network
	vp, host   *netsim.Host
	a, b, c, d *router.Router
	all        []*router.Router
	prober     *probe.Prober
}

func build(t *testing.T) *fixture {
	t.Helper()
	net := netsim.New(21)
	f := &fixture{net: net}
	mk := func(name string, i int) *router.Router {
		r := router.New(name, router.Cisco, router.Config{TTLPropagate: true})
		r.SetLoopback(netaddr.AddrFrom4(192, 168, 44, byte(i+1)))
		net.AddNode(r)
		if err := net.RegisterIface(r.Loopback()); err != nil {
			t.Fatal(err)
		}
		f.all = append(f.all, r)
		return r
	}
	f.a, f.b, f.c, f.d = mk("a", 0), mk("b", 1), mk("c", 2), mk("d", 3)
	sub := 0
	wire := func(x, y *router.Router) {
		p := netaddr.MustPrefixFrom(netaddr.AddrFrom4(10, 44, byte(sub), 0), 30)
		sub++
		xi := x.AddIface("to-"+y.Name(), p.Nth(1), p)
		yi := y.AddIface("to-"+x.Name(), p.Nth(2), p)
		net.Connect(xi, yi, time.Millisecond)
		for _, ifc := range []*netsim.Iface{xi, yi} {
			if err := net.RegisterIface(ifc); err != nil {
				t.Fatal(err)
			}
		}
	}
	wire(f.a, f.b)
	wire(f.b, f.d)
	wire(f.a, f.c)
	wire(f.c, f.d)

	vpP := netaddr.MustParsePrefix("10.44.100.0/30")
	f.vp = netsim.NewHost("vp", vpP.Nth(2), vpP)
	net.AddNode(f.vp)
	ai := f.a.AddIface("to-vp", vpP.Nth(1), vpP)
	net.Connect(ai, f.vp.If, time.Millisecond)
	hP := netaddr.MustParsePrefix("10.44.101.0/30")
	f.host = netsim.NewHost("h", hP.Nth(2), hP)
	net.AddNode(f.host)
	di := f.d.AddIface("to-h", hP.Nth(1), hP)
	net.Connect(di, f.host.If, time.Millisecond)
	for _, ifc := range []*netsim.Iface{ai, f.vp.If, di, f.host.If} {
		if err := net.RegisterIface(ifc); err != nil {
			t.Fatal(err)
		}
	}
	f.prober = probe.New(net, f.vp)
	return f
}

func TestFloodingFillsAllLSDBs(t *testing.T) {
	f := build(t)
	area := ospf.Enable(f.net, f.all)
	if err := area.Converge(); err != nil {
		t.Fatal(err)
	}
	for _, r := range f.all {
		if got := area.Instance(r).LSDBSize(); got != 4 {
			t.Errorf("%s LSDB has %d LSAs, want 4", r.Name(), got)
		}
	}
}

func TestOSPFRoutesMatchCentralizedSPF(t *testing.T) {
	// Two identical fixtures: one converged via in-band OSPF, the other
	// via the centralized igp computation. Every address must resolve to
	// the same next-hop set on both.
	fo := build(t)
	area := ospf.Enable(fo.net, fo.all)
	if err := area.Converge(); err != nil {
		t.Fatal(err)
	}
	fc := build(t)
	dom := &igp.Domain{Routers: fc.all}
	if _, err := dom.Compute(); err != nil {
		t.Fatal(err)
	}

	targets := []netaddr.Addr{
		fo.host.Addr(), fo.vp.Addr(),
		fo.a.Loopback().Addr, fo.b.Loopback().Addr,
		fo.c.Loopback().Addr, fo.d.Loopback().Addr,
	}
	for idx := range fo.all {
		ro, rc := fo.all[idx], fc.all[idx]
		for _, dst := range targets {
			po, rto, oko := ro.LookupRoute(dst)
			pc, rtc, okc := rc.LookupRoute(dst)
			if oko != okc {
				t.Fatalf("%s -> %s: presence differs (ospf %v, igp %v)", ro.Name(), dst, oko, okc)
			}
			if !oko {
				continue
			}
			if po != pc {
				t.Errorf("%s -> %s: matched prefix %v vs %v", ro.Name(), dst, po, pc)
			}
			if rto.Origin != rtc.Origin {
				t.Errorf("%s -> %s: origin %v vs %v", ro.Name(), dst, rto.Origin, rtc.Origin)
			}
			if len(rto.NextHops) != len(rtc.NextHops) {
				t.Errorf("%s -> %s: %d vs %d next hops", ro.Name(), dst, len(rto.NextHops), len(rtc.NextHops))
				continue
			}
			// Compare gateway sets (order may differ).
			gw := map[netaddr.Addr]bool{}
			for _, nh := range rto.NextHops {
				gw[nh.Gateway] = true
			}
			for _, nh := range rtc.NextHops {
				if !gw[nh.Gateway] {
					t.Errorf("%s -> %s: gateway %s only in centralized result", ro.Name(), dst, nh.Gateway)
				}
			}
		}
	}
}

func TestOSPFEndToEndForwarding(t *testing.T) {
	f := build(t)
	area := ospf.Enable(f.net, f.all)
	if err := area.Converge(); err != nil {
		t.Fatal(err)
	}
	tr := f.prober.Traceroute(f.host.Addr())
	if !tr.Reached {
		t.Fatalf("not reached: %+v", tr.Hops)
	}
	if len(tr.Hops) != 4 {
		t.Errorf("%d hops, want 4 (a, b|c, d, h)", len(tr.Hops))
	}
}

func TestOSPFReconvergesAfterFailure(t *testing.T) {
	f := build(t)
	area := ospf.Enable(f.net, f.all)
	if err := area.Converge(); err != nil {
		t.Fatal(err)
	}
	// Fail both b links, re-flood, and check traffic survives via c.
	for _, ifc := range f.b.Ifaces() {
		ifc.Link.Up = false
	}
	if err := area.Converge(); err != nil {
		t.Fatal(err)
	}
	crossed := false
	f.net.Trace = func(_ time.Duration, to *netsim.Iface, pkt *packet.Packet) {
		if r, ok := to.Owner.(*router.Router); ok && r == f.c && pkt.IP.Dst == f.host.Addr() {
			crossed = true
		}
	}
	tr := f.prober.Traceroute(f.host.Addr())
	if !tr.Reached {
		t.Fatalf("not reached after reconvergence: %+v", tr.Hops)
	}
	if !crossed {
		t.Error("traffic did not shift to the surviving branch")
	}
}

func TestOSPFFloodingCost(t *testing.T) {
	// Flooding terminates: LSAs delivered is finite and bounded (each
	// LSA crosses each link at most a couple of times in this diamond).
	f := build(t)
	deliveries := 0
	f.net.Trace = func(_ time.Duration, _ *netsim.Iface, pkt *packet.Packet) {
		if pkt.IP.Protocol == packet.ProtoOSPF {
			deliveries++
		}
	}
	area := ospf.Enable(f.net, f.all)
	if err := area.Converge(); err != nil {
		t.Fatal(err)
	}
	if deliveries == 0 || deliveries > 200 {
		t.Errorf("flooding delivered %d LSAs, want a small finite number", deliveries)
	}
}

// TestResultMatchesCentralized compares the igp.Result bridge from the
// in-band area with the centralized computation: distances and next-hop
// gateway sets must be identical, so BGP hot potato and LDP can run
// unchanged on an in-band-converged domain.
func TestResultMatchesCentralized(t *testing.T) {
	fo := build(t)
	area := ospf.Enable(fo.net, fo.all)
	if err := area.Converge(); err != nil {
		t.Fatal(err)
	}
	ores, err := area.Result()
	if err != nil {
		t.Fatal(err)
	}
	fc := build(t)
	dom := &igp.Domain{Routers: fc.all}
	cres, err := dom.Compute()
	if err != nil {
		t.Fatal(err)
	}

	if len(ores.Prefixes) != len(cres.Prefixes) {
		t.Fatalf("prefix counts: %d vs %d", len(ores.Prefixes), len(cres.Prefixes))
	}
	for i := range fo.all {
		ro, rc := fo.all[i], fc.all[i]
		for j := range fo.all {
			do := ores.Dist[ro][fo.all[j]]
			dc := cres.Dist[rc][fc.all[j]]
			if do != dc {
				t.Errorf("dist %s->%s: %d vs %d", ro.Name(), fo.all[j].Name(), do, dc)
			}
		}
		for _, p := range cres.Prefixes {
			oh := ores.NextHops[ro][p]
			ch := cres.NextHops[rc][p]
			if len(oh) != len(ch) {
				t.Errorf("%s -> %v: %d vs %d hops", ro.Name(), p, len(oh), len(ch))
				continue
			}
			gw := map[string]bool{}
			for _, h := range oh {
				gw[h.Gateway.String()] = true
			}
			for _, h := range ch {
				if !gw[h.Gateway.String()] {
					t.Errorf("%s -> %v: gateway %s only centralized", ro.Name(), p, h.Gateway)
				}
			}
		}
	}

	// The bridged result must drive LDP identically: build labels from it
	// and check the tunnel hides the interior.
	ldpCfg := router.Config{MPLSEnabled: true, LDP: router.LDPAllPrefixes}
	for _, r := range fo.all {
		r.SetConfig(ldpCfg)
	}
	ldp.Build(fo.all, ores)
	tr := fo.prober.Traceroute(fo.host.Addr())
	if !tr.Reached {
		t.Fatalf("tunnel broke: %+v", tr.Hops)
	}
	responding := 0
	for _, h := range tr.Hops {
		if !h.Anonymous() {
			responding++
		}
	}
	// a, d, h visible; b|c hidden inside the tunnel.
	if responding != 3 {
		t.Errorf("saw %d hops, want 3 (interior hidden)", responding)
	}
}
