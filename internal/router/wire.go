package router

// The router half of the snapshot wire codec (see internal/gen/wire.go
// for the fabric-level framing). A router's encoded form mirrors what
// SnapshotInto copies: identity and config scalars, the local-address
// list, the interface records, and the FIB/binding/LFIB table arenas with
// egress interfaces reduced to local indices — a router's tables only
// ever reference its own interfaces (the same invariant SnapshotInto
// leans on), so the index space is tiny and needs no fabric-wide table.
//
// Index convention: -1 is a nil interface, 0..n-1 the router's n data
// interfaces in order, and n the loopback. DecodeRouter carves the
// replica out of the same CloneArena snapshots use, sized up front by a
// WireStats prelude, so a fabric decode costs a handful of slab
// allocations just like a structural snapshot.

import (
	"errors"
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/wirefmt"
)

var errBadWire = errors.New("router: corrupt router encoding")

// WireStats counts, across a set of routers, every slab the decode arena
// must pre-size — the same linear pass NewCloneArena runs. It travels as
// the prelude of the wire nodes section so the decoder allocates once.
type WireStats struct {
	Routers   int
	Ifaces    int // interface records, loopbacks included
	IfPtrs    int // interface pointer slots (data interfaces only)
	Locals    int
	Routes    int
	NHops     int
	Binds     int
	LHops     int
	Unders    int
	LFIB      int
	TrieNodes int
}

// Count accumulates r's slab footprint into s.
func (s *WireStats) Count(r *Router) {
	s.Routers++
	s.IfPtrs += len(r.ifaces)
	s.Ifaces += len(r.ifaces)
	if r.loopback != nil {
		s.Ifaces++
	}
	s.Locals += len(r.locals)
	s.Routes += len(r.routes)
	s.Binds += len(r.binds)
	for i := range r.routes {
		s.NHops += len(r.routes[i].NextHops)
	}
	countLH := func(hops []LabelHop) {
		s.LHops += len(hops)
		for _, h := range hops {
			s.Unders += len(h.Under)
		}
	}
	for i := range r.binds {
		countLH(r.binds[i].NextHops)
	}
	for i := range r.lfib {
		countLH(r.lfib[i].NextHops)
	}
	s.LFIB += len(r.lfib)
	s.TrieNodes += r.fib.NodeCount() + r.bindings.NodeCount()
}

// Append writes the stats prelude.
func (s WireStats) Append(w *wirefmt.Writer) {
	for _, v := range [...]int{s.Routers, s.Ifaces, s.IfPtrs, s.Locals, s.Routes,
		s.NHops, s.Binds, s.LHops, s.Unders, s.LFIB, s.TrieNodes} {
		w.U64(uint64(v))
	}
}

// DecodeWireStats reverses Append.
func DecodeWireStats(r *wirefmt.Reader) WireStats {
	var s WireStats
	for _, p := range [...]*int{&s.Routers, &s.Ifaces, &s.IfPtrs, &s.Locals, &s.Routes,
		&s.NHops, &s.Binds, &s.LHops, &s.Unders, &s.LFIB, &s.TrieNodes} {
		*p = int(r.U64())
	}
	return s
}

// NewDecodeArena sizes a CloneArena from a wire prelude; DecodeRouter
// carves replicas out of it exactly as SnapshotInto does.
func NewDecodeArena(s WireStats) *CloneArena {
	return &CloneArena{
		routers: make([]Router, 0, s.Routers),
		ifrecs:  make([]netsim.Iface, 0, s.Ifaces),
		ifptrs:  make([]*netsim.Iface, 0, s.IfPtrs),
		locals:  make([]netaddr.Addr, 0, s.Locals),
		routes:  make([]Route, 0, s.Routes),
		binds:   make([]Binding, 0, s.Binds),
		nhops:   make([]NextHop, 0, s.NHops),
		lhops:   make([]LabelHop, 0, s.LHops),
		unders:  make([]uint32, 0, s.Unders),
		lfib:    make([]LFIBEntry, 0, s.LFIB),
		tries:   netaddr.NewTrieArena[int32](s.TrieNodes),
	}
}

// wireEnc resolves an interface pointer to its local index with the same
// last-hit cache CloneArena.iface uses (routes repeat the same egress).
type wireEnc struct {
	r       *Router
	lastIf  *netsim.Iface
	lastIdx int32
}

func (e *wireEnc) ifIdx(ifc *netsim.Iface) int32 {
	if ifc == nil {
		return -1
	}
	if ifc == e.lastIf {
		return e.lastIdx
	}
	for i, o := range e.r.ifaces {
		if o == ifc {
			e.lastIf, e.lastIdx = ifc, int32(i)
			return e.lastIdx
		}
	}
	if ifc == e.r.loopback {
		e.lastIf, e.lastIdx = ifc, int32(len(e.r.ifaces))
		return e.lastIdx
	}
	// Unreachable by the tables-reference-own-interfaces invariant; encode
	// it as nil rather than corrupting the index space.
	return -1
}

func appendIfaceRec(w *wirefmt.Writer, ifc *netsim.Iface) {
	w.String(ifc.Name)
	netaddr.AppendAddr(w, ifc.Addr)
	netaddr.AppendPrefix(w, ifc.Prefix)
}

func (e *wireEnc) appendLabelHops(w *wirefmt.Writer, hops []LabelHop) {
	w.U32(uint32(len(hops)))
	for i := range hops {
		h := &hops[i]
		w.I32(e.ifIdx(h.Out))
		w.U32(h.Label)
		if h.Under == nil {
			w.Bool(false)
		} else {
			w.Bool(true)
			w.U32(uint32(len(h.Under)))
			for _, u := range h.Under {
				w.U32(u)
			}
		}
	}
}

// AppendWire encodes the router. ControlHandler is not encodable (it
// closes over process-local protocol state); the fabric-level encoder
// refuses such routers up front, mirroring gen.Internet.Snapshot.
func (r *Router) AppendWire(w *wirefmt.Writer) {
	e := wireEnc{r: r}

	w.String(r.name)
	w.String(r.os.Name)
	w.U8(r.os.TimeExceededTTL)
	w.U8(r.os.EchoReplyTTL)
	w.Bool(r.os.RFC4950)
	w.Bool(r.os.MinOnPop)
	w.Bool(r.os.ReplyFromOutgoing)
	w.Bool(r.cfg.TTLPropagate)
	w.U8(uint8(r.cfg.LDP))
	w.Bool(r.cfg.UHP)
	w.Bool(r.cfg.MPLSEnabled)
	w.Bool(r.cfg.Silent)
	w.Bool(r.cfg.NoICMPTimeExceeded)
	w.I64(int64(r.cfg.ICMPInterval))
	w.U32(r.asn)
	w.U32(r.nextLabel)
	w.I64(int64(r.lastICMP))
	w.Bool(r.icmpSent)
	w.U64(r.Stats.Received)
	w.U64(r.Stats.Forwarded)
	w.U64(r.Stats.Dropped)
	w.U64(r.Stats.TimeExceeded)
	w.U64(r.Stats.EchoReplies)
	w.U64(r.Stats.LabelSwitched)
	w.U64(r.Stats.RateLimited)

	w.U32(uint32(len(r.locals)))
	for _, a := range r.locals {
		netaddr.AppendAddr(w, a)
	}

	if r.loopback != nil {
		w.Bool(true)
		appendIfaceRec(w, r.loopback)
	} else {
		w.Bool(false)
	}
	w.U32(uint32(len(r.ifaces)))
	for _, ifc := range r.ifaces {
		appendIfaceRec(w, ifc)
	}

	netaddr.AppendTrie(w, &r.fib, (*wirefmt.Writer).I32)
	w.U32(uint32(len(r.routes)))
	for i := range r.routes {
		rt := &r.routes[i]
		w.U8(uint8(rt.Origin))
		netaddr.AppendAddr(w, rt.BGPNextHop)
		w.U32(uint32(len(rt.NextHops)))
		for _, nh := range rt.NextHops {
			w.I32(e.ifIdx(nh.Out))
			netaddr.AppendAddr(w, nh.Gateway)
		}
	}

	netaddr.AppendTrie(w, &r.bindings, (*wirefmt.Writer).I32)
	w.U32(uint32(len(r.binds)))
	for i := range r.binds {
		b := &r.binds[i]
		netaddr.AppendPrefix(w, b.FEC)
		e.appendLabelHops(w, b.NextHops)
	}

	w.U32(uint32(len(r.lfib)))
	for i := range r.lfib {
		f := &r.lfib[i]
		w.U32(f.InLabel)
		w.Bool(f.PopLocal)
		e.appendLabelHops(w, f.NextHops)
	}
}

// wireDec resolves local interface indices on a partially decoded router.
func wireDecIface(rd *wirefmt.Reader, nr *Router, idx int32) *netsim.Iface {
	switch {
	case idx == -1:
		return nil
	case idx >= 0 && int(idx) < len(nr.ifaces):
		return nr.ifaces[idx]
	case int(idx) == len(nr.ifaces) && nr.loopback != nil:
		return nr.loopback
	default:
		rd.Fail(errBadWire)
		return nil
	}
}

// count reads a u32 element count and sanity-bounds it: each element
// costs at least min bytes on the wire, so a count the payload cannot
// hold is corruption, caught before any allocation can balloon.
func count(rd *wirefmt.Reader, min int) int {
	n := int(rd.U32())
	if n < 0 || n > rd.Len()/min {
		rd.Fail(errBadWire)
		return 0
	}
	return n
}

func decodeLabelHops(rd *wirefmt.Reader, nr *Router, ar *CloneArena) []LabelHop {
	n := count(rd, 9)
	start := len(ar.lhops)
	for i := 0; i < n; i++ {
		h := LabelHop{Out: wireDecIface(rd, nr, rd.I32()), Label: rd.U32()}
		if rd.Bool() {
			nu := count(rd, 4)
			u := len(ar.unders)
			for j := 0; j < nu; j++ {
				ar.unders = append(ar.unders, rd.U32())
			}
			h.Under = ar.unders[u:len(ar.unders):len(ar.unders)]
		}
		ar.lhops = append(ar.lhops, h)
	}
	return ar.lhops[start:len(ar.lhops):len(ar.lhops)]
}

// DecodeRouter reverses AppendWire, carving the router and its tables out
// of ar. The result is not yet attached to a fabric: the caller adds it
// as a node, connects links, and registers interfaces, exactly as the
// generator did for the original. Corrupt input surfaces through the
// reader's sticky error; the decoder never panics on hostile bytes.
func DecodeRouter(rd *wirefmt.Reader, ar *CloneArena) *Router {
	var nr *Router
	if len(ar.routers) < cap(ar.routers) {
		ar.routers = append(ar.routers, Router{})
		nr = &ar.routers[len(ar.routers)-1]
	} else {
		nr = &Router{}
	}
	nr.name = rd.String()
	nr.os.Name = rd.String()
	nr.os.TimeExceededTTL = rd.U8()
	nr.os.EchoReplyTTL = rd.U8()
	nr.os.RFC4950 = rd.Bool()
	nr.os.MinOnPop = rd.Bool()
	nr.os.ReplyFromOutgoing = rd.Bool()
	nr.cfg.TTLPropagate = rd.Bool()
	nr.cfg.LDP = LDPPolicy(rd.U8())
	nr.cfg.UHP = rd.Bool()
	nr.cfg.MPLSEnabled = rd.Bool()
	nr.cfg.Silent = rd.Bool()
	nr.cfg.NoICMPTimeExceeded = rd.Bool()
	nr.cfg.ICMPInterval = time.Duration(rd.I64())
	nr.asn = rd.U32()
	nr.nextLabel = rd.U32()
	nr.lastICMP = time.Duration(rd.I64())
	nr.icmpSent = rd.Bool()
	nr.Stats.Received = rd.U64()
	nr.Stats.Forwarded = rd.U64()
	nr.Stats.Dropped = rd.U64()
	nr.Stats.TimeExceeded = rd.U64()
	nr.Stats.EchoReplies = rd.U64()
	nr.Stats.LabelSwitched = rd.U64()
	nr.Stats.RateLimited = rd.U64()

	nLocal := count(rd, 4)
	lstart := len(ar.locals)
	for i := 0; i < nLocal; i++ {
		ar.locals = append(ar.locals, netaddr.DecodeAddr(rd))
	}
	nr.locals = ar.locals[lstart:len(ar.locals):len(ar.locals)]

	if rd.Bool() {
		lo := ar.takeIface()
		lo.Owner = nr
		lo.Name = rd.String()
		lo.Addr = netaddr.DecodeAddr(rd)
		lo.Prefix = netaddr.DecodePrefix(rd)
		nr.loopback = lo
	}
	nIf := count(rd, 13)
	pstart := len(ar.ifptrs)
	for i := 0; i < nIf; i++ {
		ni := ar.takeIface()
		ni.Owner = nr
		ni.Name = rd.String()
		ni.Addr = netaddr.DecodeAddr(rd)
		ni.Prefix = netaddr.DecodePrefix(rd)
		ar.ifptrs = append(ar.ifptrs, ni)
	}
	nr.ifaces = ar.ifptrs[pstart:len(ar.ifptrs):len(ar.ifptrs)]

	nr.fib = netaddr.DecodeTrieInto(rd, ar.tries, (*wirefmt.Reader).I32)
	nRoute := count(rd, 9)
	rstart := len(ar.routes)
	for i := 0; i < nRoute; i++ {
		rt := Route{Origin: Origin(rd.U8()), BGPNextHop: netaddr.DecodeAddr(rd)}
		nNH := count(rd, 8)
		start := len(ar.nhops)
		for j := 0; j < nNH; j++ {
			ar.nhops = append(ar.nhops, NextHop{
				Out:     wireDecIface(rd, nr, rd.I32()),
				Gateway: netaddr.DecodeAddr(rd),
			})
		}
		rt.NextHops = ar.nhops[start:len(ar.nhops):len(ar.nhops)]
		ar.routes = append(ar.routes, rt)
	}
	nr.routes = ar.routes[rstart:len(ar.routes):len(ar.routes)]

	nr.bindings = netaddr.DecodeTrieInto(rd, ar.tries, (*wirefmt.Reader).I32)
	nBind := count(rd, 9)
	bstart := len(ar.binds)
	for i := 0; i < nBind; i++ {
		b := Binding{FEC: netaddr.DecodePrefix(rd)}
		b.NextHops = decodeLabelHops(rd, nr, ar)
		ar.binds = append(ar.binds, b)
	}
	nr.binds = ar.binds[bstart:len(ar.binds):len(ar.binds)]

	nLFIB := count(rd, 9)
	fstart := len(ar.lfib)
	for i := 0; i < nLFIB; i++ {
		f := LFIBEntry{InLabel: rd.U32(), PopLocal: rd.Bool()}
		f.NextHops = decodeLabelHops(rd, nr, ar)
		ar.lfib = append(ar.lfib, f)
	}
	nr.lfib = ar.lfib[fstart:len(ar.lfib):len(ar.lfib)]

	return nr
}
