package router

import (
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
)

// CloneArena bump-allocates everything a router snapshot needs — the
// Router structs themselves, interface records, local-address lists,
// route/binding/LFIB tables, next-hop and label-hop slices, and the trie
// nodes behind the FIB and binding indexes — out of a few contiguous
// slabs sized by one linear counting pass. One arena serves every router
// of a fabric snapshot: replica routers are index ranges into fabric-wide
// arrays rather than per-router heap objects, so Snapshot() degenerates
// to a handful of slab memcpys plus interface-pointer remaps, and the GC
// scans a few large objects instead of hundreds of thousands of small
// ones.
//
// Appends stay within the pre-counted capacities, so sub-slices carved
// from the slabs are stable and may be retained by the cloned tables.
// Every carve is capacity-clipped: a replica that later grows a table
// (churn reconvergence installing a new prefix) reallocates privately
// instead of clobbering its arena neighbor.
//
// It also resolves source→replica interface pointers locally: a router's
// tables only ever reference its own handful of interfaces (the invariant
// that lets Snapshot clone tables before the rest of the fabric exists),
// so a linear scan of a small array — with a last-hit cache, since routes
// repeat the same egress — beats the Cloner's fabric-wide map on every
// lookup.
type CloneArena struct {
	routers []Router
	ifrecs  []netsim.Iface
	ifptrs  []*netsim.Iface
	locals  []netaddr.Addr
	routes  []Route
	binds   []Binding
	nhops   []NextHop
	lhops   []LabelHop
	unders  []uint32
	lfib    []LFIBEntry
	tries   *netaddr.TrieArena[int32]

	oldIfs           []*netsim.Iface
	newIfs           []*netsim.Iface
	lastOld, lastNew *netsim.Iface
}

// NewCloneArena sizes an arena for snapshots of all the given routers
// with linear passes over their table arenas.
func NewCloneArena(rs []*Router) *CloneArena {
	var nIf, nPtr, nLocal, nRoute, nBind, nNH, nLH, nU, nLFIB, nTrie int
	countLabelHops := func(hops []LabelHop) {
		nLH += len(hops)
		for _, h := range hops {
			nU += len(h.Under)
		}
	}
	for _, r := range rs {
		nPtr += len(r.ifaces)
		nIf += len(r.ifaces)
		if r.loopback != nil {
			nIf++
		}
		nLocal += len(r.locals)
		nRoute += len(r.routes)
		nBind += len(r.binds)
		for i := range r.routes {
			nNH += len(r.routes[i].NextHops)
		}
		for i := range r.binds {
			countLabelHops(r.binds[i].NextHops)
		}
		for i := range r.lfib {
			countLabelHops(r.lfib[i].NextHops)
		}
		nLFIB += len(r.lfib)
		nTrie += r.fib.NodeCount() + r.bindings.NodeCount()
	}
	return &CloneArena{
		routers: make([]Router, 0, len(rs)),
		ifrecs:  make([]netsim.Iface, 0, nIf),
		ifptrs:  make([]*netsim.Iface, 0, nPtr),
		locals:  make([]netaddr.Addr, 0, nLocal),
		routes:  make([]Route, 0, nRoute),
		binds:   make([]Binding, 0, nBind),
		nhops:   make([]NextHop, 0, nNH),
		lhops:   make([]LabelHop, 0, nLH),
		unders:  make([]uint32, 0, nU),
		lfib:    make([]LFIBEntry, 0, nLFIB),
		tries:   netaddr.NewTrieArena[int32](nTrie),
	}
}

// takeIface carves one interface record from the slab. Records beyond the
// reserved capacity fall back to private allocations (the slab must not
// reallocate: earlier pointers are retained by the fabric).
func (ar *CloneArena) takeIface() *netsim.Iface {
	if len(ar.ifrecs) == cap(ar.ifrecs) {
		return &netsim.Iface{}
	}
	ar.ifrecs = append(ar.ifrecs, netsim.Iface{})
	return &ar.ifrecs[len(ar.ifrecs)-1]
}

// beginRouter loads the interface old→new pairs for the router being
// snapshot, reusing the backing arrays across routers.
func (ar *CloneArena) beginRouter(r, nr *Router) {
	ar.oldIfs = ar.oldIfs[:0]
	ar.newIfs = ar.newIfs[:0]
	for i, ifc := range r.ifaces {
		ar.oldIfs = append(ar.oldIfs, ifc)
		ar.newIfs = append(ar.newIfs, nr.ifaces[i])
	}
	if r.loopback != nil {
		ar.oldIfs = append(ar.oldIfs, r.loopback)
		ar.newIfs = append(ar.newIfs, nr.loopback)
	}
	ar.lastOld, ar.lastNew = nil, nil
}

func (ar *CloneArena) iface(ifc *netsim.Iface) *netsim.Iface {
	if ifc == nil {
		return nil
	}
	if ifc == ar.lastOld {
		return ar.lastNew
	}
	for i, o := range ar.oldIfs {
		if o == ifc {
			ar.lastOld, ar.lastNew = o, ar.newIfs[i]
			return ar.lastNew
		}
	}
	return nil
}

// Snapshot deep-copies the router onto a replica fabric being built by c,
// with a private arena. Fabric-wide snapshots share one arena across all
// routers via NewCloneArena and SnapshotInto instead.
func (r *Router) Snapshot(c *netsim.Cloner) *Router {
	return r.SnapshotInto(c, NewCloneArena([]*Router{r}))
}

// SnapshotInto deep-copies the router onto a replica fabric being built by
// c, carving the replica and its table data out of ar. Everything the
// data plane reads is copied — personality, config, FIB, bindings, LFIB,
// counters — with interface pointers remapped onto freshly carved replica
// interfaces (a router's tables only ever reference its own interfaces,
// so all mappings exist before the tables are cloned).
//
// The index tries clone as memcpy carves of the shared trie arena (they
// hold arena indices, not pointers); the route, binding, and dense LFIB
// arenas copy with one sequential sweep each, remapping egress interfaces
// as they go.
//
// ControlHandler is deliberately not copied: it closes over source-side
// protocol state. Callers that run in-band control planes must rebuild
// replicas through the generator instead (gen.Internet.Rebuild).
func (r *Router) SnapshotInto(c *netsim.Cloner, ar *CloneArena) *Router {
	var nr *Router
	if len(ar.routers) < cap(ar.routers) {
		ar.routers = append(ar.routers, Router{})
		nr = &ar.routers[len(ar.routers)-1]
	} else {
		nr = &Router{}
	}
	nr.name = r.name
	nr.os = r.os
	nr.cfg = r.cfg
	nr.asn = r.asn
	nr.nextLabel = r.nextLabel
	nr.lastICMP = r.lastICMP
	nr.icmpSent = r.icmpSent
	nr.Stats = r.Stats

	lstart := len(ar.locals)
	ar.locals = append(ar.locals, r.locals...)
	nr.locals = ar.locals[lstart:len(ar.locals):len(ar.locals)]

	if r.loopback != nil {
		lo := ar.takeIface()
		lo.Owner, lo.Name, lo.Addr, lo.Prefix = nr, r.loopback.Name, r.loopback.Addr, r.loopback.Prefix
		nr.loopback = lo
		c.MapIface(r.loopback, lo)
	}
	pstart := len(ar.ifptrs)
	for _, ifc := range r.ifaces {
		ni := ar.takeIface()
		ni.Owner, ni.Name, ni.Addr, ni.Prefix = nr, ifc.Name, ifc.Addr, ifc.Prefix
		ar.ifptrs = append(ar.ifptrs, ni)
		c.MapIface(ifc, ni)
	}
	nr.ifaces = ar.ifptrs[pstart:len(ar.ifptrs):len(ar.ifptrs)]

	ar.beginRouter(r, nr)
	nr.fib = r.fib.CloneInto(ar.tries, nil)
	rstart := len(ar.routes)
	for i := range r.routes {
		rt := &r.routes[i]
		start := len(ar.nhops)
		for _, nh := range rt.NextHops {
			ar.nhops = append(ar.nhops, NextHop{Out: ar.iface(nh.Out), Gateway: nh.Gateway})
		}
		ar.routes = append(ar.routes, Route{
			Origin:     rt.Origin,
			BGPNextHop: rt.BGPNextHop,
			NextHops:   ar.nhops[start:len(ar.nhops):len(ar.nhops)],
		})
	}
	nr.routes = ar.routes[rstart:len(ar.routes):len(ar.routes)]

	nr.bindings = r.bindings.CloneInto(ar.tries, nil)
	bstart := len(ar.binds)
	for i := range r.binds {
		b := &r.binds[i]
		ar.binds = append(ar.binds, Binding{FEC: b.FEC, NextHops: ar.remapLabelHops(b.NextHops)})
	}
	nr.binds = ar.binds[bstart:len(ar.binds):len(ar.binds)]

	fstart := len(ar.lfib)
	ar.lfib = append(ar.lfib, r.lfib...)
	nr.lfib = ar.lfib[fstart:len(ar.lfib):len(ar.lfib)]
	for i := range nr.lfib {
		if hops := nr.lfib[i].NextHops; len(hops) > 0 {
			nr.lfib[i].NextHops = ar.remapLabelHops(hops)
		}
	}

	c.PutNode(r, nr)
	return nr
}

func (ar *CloneArena) remapLabelHops(hops []LabelHop) []LabelHop {
	start := len(ar.lhops)
	for _, h := range hops {
		nh := LabelHop{Out: ar.iface(h.Out), Label: h.Label}
		if h.Under != nil {
			u := len(ar.unders)
			ar.unders = append(ar.unders, h.Under...)
			nh.Under = ar.unders[u:len(ar.unders):len(ar.unders)]
		}
		ar.lhops = append(ar.lhops, nh)
	}
	return ar.lhops[start:len(ar.lhops):len(ar.lhops)]
}
