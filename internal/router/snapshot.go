package router

import (
	"maps"

	"wormhole/internal/netsim"
)

// CloneArena bump-allocates the variable-length table data router
// snapshots need — next-hop and label-hop slices — out of a few contiguous
// slabs sized by one linear counting pass. One arena serves every router
// of a fabric snapshot: a Small-scale fabric clones tens of thousands of
// hops, and allocating each slice (or even each router's slab)
// individually costs an allocator round-trip apiece, with the resulting
// pointer spray dominating snapshot time in GC scanning.
//
// Appends stay within the pre-counted capacities, so sub-slices carved
// from the slabs are stable and may be retained by the cloned tables.
//
// It also resolves source→replica interface pointers locally: a router's
// tables only ever reference its own handful of interfaces (the invariant
// that lets Snapshot clone tables before the rest of the fabric exists),
// so a linear scan of a small array — with a last-hit cache, since routes
// repeat the same egress — beats the Cloner's fabric-wide map on every
// lookup.
type CloneArena struct {
	nhops  []NextHop
	lhops  []LabelHop
	unders []uint32
	lfib   []LFIBEntry

	oldIfs           []*netsim.Iface
	newIfs           []*netsim.Iface
	lastOld, lastNew *netsim.Iface
}

// NewCloneArena sizes an arena for snapshots of all the given routers
// with linear passes over their table arenas.
func NewCloneArena(rs []*Router) *CloneArena {
	var nNH, nLH, nU, nLFIB int
	countLabelHops := func(hops []LabelHop) {
		nLH += len(hops)
		for _, h := range hops {
			nU += len(h.Under)
		}
	}
	for _, r := range rs {
		for i := range r.routes {
			nNH += len(r.routes[i].NextHops)
		}
		for i := range r.binds {
			countLabelHops(r.binds[i].NextHops)
		}
		for _, e := range r.lfib {
			countLabelHops(e.NextHops)
		}
		nLFIB += len(r.lfib)
	}
	return &CloneArena{
		nhops:  make([]NextHop, 0, nNH),
		lhops:  make([]LabelHop, 0, nLH),
		unders: make([]uint32, 0, nU),
		lfib:   make([]LFIBEntry, 0, nLFIB),
	}
}

// beginRouter loads the interface old→new pairs for the router being
// snapshot, reusing the backing arrays across routers.
func (ar *CloneArena) beginRouter(r, nr *Router) {
	ar.oldIfs = ar.oldIfs[:0]
	ar.newIfs = ar.newIfs[:0]
	for i, ifc := range r.ifaces {
		ar.oldIfs = append(ar.oldIfs, ifc)
		ar.newIfs = append(ar.newIfs, nr.ifaces[i])
	}
	if r.loopback != nil {
		ar.oldIfs = append(ar.oldIfs, r.loopback)
		ar.newIfs = append(ar.newIfs, nr.loopback)
	}
	ar.lastOld, ar.lastNew = nil, nil
}

func (ar *CloneArena) iface(ifc *netsim.Iface) *netsim.Iface {
	if ifc == nil {
		return nil
	}
	if ifc == ar.lastOld {
		return ar.lastNew
	}
	for i, o := range ar.oldIfs {
		if o == ifc {
			ar.lastOld, ar.lastNew = o, ar.newIfs[i]
			return ar.lastNew
		}
	}
	return nil
}

// Snapshot deep-copies the router onto a replica fabric being built by c,
// with a private arena. Fabric-wide snapshots share one arena across all
// routers via NewCloneArena and SnapshotInto instead.
func (r *Router) Snapshot(c *netsim.Cloner) *Router {
	return r.SnapshotInto(c, NewCloneArena([]*Router{r}))
}

// SnapshotInto deep-copies the router onto a replica fabric being built by
// c, carving table data out of ar. Everything the data plane reads is
// copied — personality, config, FIB, bindings, LFIB, counters — with
// interface pointers remapped onto freshly created replica interfaces (a
// router's tables only ever reference its own interfaces, so all mappings
// exist before the tables are cloned).
//
// The index tries clone as memcpys (they hold arena indices, not
// pointers); the route and binding arenas copy with one sequential sweep
// each, remapping egress interfaces as they go.
//
// ControlHandler is deliberately not copied: it closes over source-side
// protocol state. Callers that run in-band control planes must rebuild
// replicas through the generator instead (gen.Internet.Rebuild).
func (r *Router) SnapshotInto(c *netsim.Cloner, ar *CloneArena) *Router {
	nr := &Router{
		name:      r.name,
		os:        r.os,
		cfg:       r.cfg,
		asn:       r.asn,
		local:     maps.Clone(r.local),
		lfib:      make(map[uint32]*LFIBEntry, len(r.lfib)),
		nextLabel: r.nextLabel,
		lastICMP:  r.lastICMP,
		icmpSent:  r.icmpSent,
		Stats:     r.Stats,
	}
	if r.loopback != nil {
		nr.loopback = &netsim.Iface{
			Owner: nr, Name: r.loopback.Name,
			Addr: r.loopback.Addr, Prefix: r.loopback.Prefix,
		}
		c.MapIface(r.loopback, nr.loopback)
	}
	nr.ifaces = make([]*netsim.Iface, len(r.ifaces))
	for i, ifc := range r.ifaces {
		ni := &netsim.Iface{Owner: nr, Name: ifc.Name, Addr: ifc.Addr, Prefix: ifc.Prefix}
		nr.ifaces[i] = ni
		c.MapIface(ifc, ni)
	}
	ar.beginRouter(r, nr)
	nr.fib = r.fib.Clone(nil)
	nr.routes = make([]Route, len(r.routes))
	for i := range r.routes {
		rt := &r.routes[i]
		start := len(ar.nhops)
		for _, nh := range rt.NextHops {
			ar.nhops = append(ar.nhops, NextHop{Out: ar.iface(nh.Out), Gateway: nh.Gateway})
		}
		nr.routes[i] = Route{
			Origin:     rt.Origin,
			BGPNextHop: rt.BGPNextHop,
			NextHops:   ar.nhops[start:len(ar.nhops):len(ar.nhops)],
		}
	}
	nr.bindings = r.bindings.Clone(nil)
	nr.binds = make([]Binding, len(r.binds))
	for i := range r.binds {
		b := &r.binds[i]
		nr.binds[i] = Binding{FEC: b.FEC, NextHops: ar.remapLabelHops(b.NextHops)}
	}
	for in, e := range r.lfib {
		nr.lfib[in] = ar.remapLFIB(e)
	}
	c.PutNode(r, nr)
	return nr
}

func (ar *CloneArena) remapLabelHops(hops []LabelHop) []LabelHop {
	start := len(ar.lhops)
	for _, h := range hops {
		nh := LabelHop{Out: ar.iface(h.Out), Label: h.Label}
		if h.Under != nil {
			u := len(ar.unders)
			ar.unders = append(ar.unders, h.Under...)
			nh.Under = ar.unders[u:len(ar.unders):len(ar.unders)]
		}
		ar.lhops = append(ar.lhops, nh)
	}
	return ar.lhops[start:len(ar.lhops):len(ar.lhops)]
}

func (ar *CloneArena) remapLFIB(e *LFIBEntry) *LFIBEntry {
	ar.lfib = append(ar.lfib, LFIBEntry{InLabel: e.InLabel, PopLocal: e.PopLocal})
	out := &ar.lfib[len(ar.lfib)-1]
	out.NextHops = ar.remapLabelHops(e.NextHops)
	return out
}
