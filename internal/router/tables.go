package router

import (
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
)

// Origin records how a FIB route was learned; it determines the FEC used
// for label imposition (Sec. 3.2: external BGP traffic is switched toward
// the BGP next hop, internal traffic toward the destination prefix itself).
type Origin uint8

const (
	OriginConnected Origin = iota
	OriginIGP
	OriginBGP
	OriginStatic
)

func (o Origin) String() string {
	switch o {
	case OriginConnected:
		return "connected"
	case OriginIGP:
		return "igp"
	case OriginBGP:
		return "bgp"
	default:
		return "static"
	}
}

// NextHop is one forwarding alternative of a route.
type NextHop struct {
	Out *netsim.Iface
	// Gateway is the next router's interface address; zero for connected
	// routes (point-to-point delivery straight out of Out).
	Gateway netaddr.Addr
}

// Route is a FIB entry. Multiple next hops model ECMP; the per-flow hash
// picks one, so Paris traceroute (constant flow identifier) sees a stable
// path.
type Route struct {
	Origin   Origin
	NextHops []NextHop
	// BGPNextHop is the iBGP next hop (the egress LER loopback) for
	// OriginBGP routes; label imposition resolves the FEC through it.
	BGPNextHop netaddr.Addr
}

// Special out-label sentinels in a LabelHop. Real label values start at 16,
// so the reserved range below 16 is free for signaling.
const (
	// OutLabelImplicitNull means "do not push / pop before forwarding":
	// the downstream router advertised implicit-null (it is the egress and
	// PHP applies).
	OutLabelImplicitNull = packet.LabelImplicitNull
	// OutLabelExplicitNull pushes/swaps to label 0: the downstream router
	// is a UHP egress.
	OutLabelExplicitNull = packet.LabelExplicitNull
)

// LabelHop is one labeled forwarding alternative.
type LabelHop struct {
	Out   *netsim.Iface
	Label uint32 // outgoing/top label, or one of the OutLabel sentinels
	// Under lists additional labels imposed beneath the top one (Under[0]
	// directly below it). Segment-routing steering uses this to push a
	// whole segment list in one imposition; LDP never sets it.
	Under []uint32
}

// Binding is the imposition entry for a FEC at an ingress/transit router:
// push (or not, for implicit null) and forward.
type Binding struct {
	FEC      netaddr.Prefix
	NextHops []LabelHop
}

// LFIBEntry maps an incoming label to its operation. The operation is
// encoded by the out-label of the chosen hop: a real label means swap,
// OutLabelImplicitNull means pop (PHP: forward the exposed payload to the
// next hop without an IP lookup), OutLabelExplicitNull means swap-to-0.
// PopLocal marks the egress's own entry for explicit-null (label 0): pop
// and process the packet locally (UHP disposition).
type LFIBEntry struct {
	InLabel  uint32
	NextHops []LabelHop
	PopLocal bool
}

// flowHash computes the per-flow ECMP hash over the fields Paris
// traceroute keeps constant: addresses, protocol, and the first 4 bytes of
// the transport header (ICMP checksum/id or ports). The implementation
// lives in packet.FlowHash so the sweep engine can predict ECMP choices
// for untraced port-cycle slots without importing router.
func flowHash(pkt *packet.Packet) uint32 {
	return packet.FlowHash(pkt)
}

// pickNextHop selects the ECMP member for a flow.
func pickNextHop(hops []NextHop, pkt *packet.Packet) NextHop {
	if len(hops) == 1 {
		return hops[0]
	}
	return hops[flowHash(pkt)%uint32(len(hops))]
}

func pickLabelHop(hops []LabelHop, pkt *packet.Packet) LabelHop {
	if len(hops) == 1 {
		return hops[0]
	}
	return hops[flowHash(pkt)%uint32(len(hops))]
}

// notedNextHop is pickNextHop plus branch reporting: when a marked sweep
// walk crosses a real ECMP fan-out, the (fan-out, index) decision is
// handed to the fabric's recorder so untraced port-cycle slots can later
// be validated against the walk's branch set (netsim.NoteFlowBranch).
// Single-hop routes never branch and are not reported.
func notedNextHop(net *netsim.Network, hops []NextHop, pkt *packet.Packet) NextHop {
	if len(hops) == 1 {
		return hops[0]
	}
	idx := flowHash(pkt) % uint32(len(hops))
	if net != nil && pkt.Mark != 0 {
		net.NoteFlowBranch(uint16(len(hops)), uint16(idx))
	}
	return hops[idx]
}

func notedLabelHop(net *netsim.Network, hops []LabelHop, pkt *packet.Packet) LabelHop {
	if len(hops) == 1 {
		return hops[0]
	}
	idx := flowHash(pkt) % uint32(len(hops))
	if net != nil && pkt.Mark != 0 {
		net.NoteFlowBranch(uint16(len(hops)), uint16(idx))
	}
	return hops[idx]
}
