package router

import (
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
)

// Origin records how a FIB route was learned; it determines the FEC used
// for label imposition (Sec. 3.2: external BGP traffic is switched toward
// the BGP next hop, internal traffic toward the destination prefix itself).
type Origin uint8

const (
	OriginConnected Origin = iota
	OriginIGP
	OriginBGP
	OriginStatic
)

func (o Origin) String() string {
	switch o {
	case OriginConnected:
		return "connected"
	case OriginIGP:
		return "igp"
	case OriginBGP:
		return "bgp"
	default:
		return "static"
	}
}

// NextHop is one forwarding alternative of a route.
type NextHop struct {
	Out *netsim.Iface
	// Gateway is the next router's interface address; zero for connected
	// routes (point-to-point delivery straight out of Out).
	Gateway netaddr.Addr
}

// Route is a FIB entry. Multiple next hops model ECMP; the per-flow hash
// picks one, so Paris traceroute (constant flow identifier) sees a stable
// path.
type Route struct {
	Origin   Origin
	NextHops []NextHop
	// BGPNextHop is the iBGP next hop (the egress LER loopback) for
	// OriginBGP routes; label imposition resolves the FEC through it.
	BGPNextHop netaddr.Addr
}

// Special out-label sentinels in a LabelHop. Real label values start at 16,
// so the reserved range below 16 is free for signaling.
const (
	// OutLabelImplicitNull means "do not push / pop before forwarding":
	// the downstream router advertised implicit-null (it is the egress and
	// PHP applies).
	OutLabelImplicitNull = packet.LabelImplicitNull
	// OutLabelExplicitNull pushes/swaps to label 0: the downstream router
	// is a UHP egress.
	OutLabelExplicitNull = packet.LabelExplicitNull
)

// LabelHop is one labeled forwarding alternative.
type LabelHop struct {
	Out   *netsim.Iface
	Label uint32 // outgoing/top label, or one of the OutLabel sentinels
	// Under lists additional labels imposed beneath the top one (Under[0]
	// directly below it). Segment-routing steering uses this to push a
	// whole segment list in one imposition; LDP never sets it.
	Under []uint32
}

// Binding is the imposition entry for a FEC at an ingress/transit router:
// push (or not, for implicit null) and forward.
type Binding struct {
	FEC      netaddr.Prefix
	NextHops []LabelHop
}

// LFIBEntry maps an incoming label to its operation. The operation is
// encoded by the out-label of the chosen hop: a real label means swap,
// OutLabelImplicitNull means pop (PHP: forward the exposed payload to the
// next hop without an IP lookup), OutLabelExplicitNull means swap-to-0.
// PopLocal marks the egress's own entry for explicit-null (label 0): pop
// and process the packet locally (UHP disposition).
type LFIBEntry struct {
	InLabel  uint32
	NextHops []LabelHop
	PopLocal bool
}

// FNV-1a parameters (hash/fnv), inlined so the per-hop ECMP hash does not
// allocate a hash.Hash32. The digest is bit-identical to fnv.New32a over
// the same bytes — paths, and therefore campaign output, are unchanged.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// flowHash computes the per-flow ECMP hash over the fields Paris
// traceroute keeps constant: addresses, protocol, and the first 4 bytes of
// the transport header (ICMP checksum/id or ports).
func flowHash(pkt *packet.Packet) uint32 {
	var b [13]byte
	src, dst := uint32(pkt.IP.Src), uint32(pkt.IP.Dst)
	b[0], b[1], b[2], b[3] = byte(src>>24), byte(src>>16), byte(src>>8), byte(src)
	b[4], b[5], b[6], b[7] = byte(dst>>24), byte(dst>>16), byte(dst>>8), byte(dst)
	b[8] = byte(pkt.IP.Protocol)
	switch {
	case pkt.ICMP != nil && !pkt.ICMP.IsError():
		b[9], b[10] = byte(pkt.ICMP.ID>>8), byte(pkt.ICMP.ID)
	case pkt.ICMP != nil && pkt.ICMP.Quote != nil:
		// Error replies hash on the quoted probe's flow so that a reply
		// takes a stable path too.
		b[9], b[10] = byte(pkt.ICMP.Quote.ID>>8), byte(pkt.ICMP.Quote.ID)
	case pkt.UDP != nil:
		b[9], b[10] = byte(pkt.UDP.SrcPort>>8), byte(pkt.UDP.SrcPort)
		b[11], b[12] = byte(pkt.UDP.DstPort>>8), byte(pkt.UDP.DstPort)
	}
	h := uint32(fnvOffset32)
	for _, c := range b {
		h = (h ^ uint32(c)) * fnvPrime32
	}
	return mix32(h)
}

// mix32 is a murmur3-style finalizer. FNV alone is a poor ECMP hash: its
// low bit is just the XOR of the input bytes' low bits, so structured flow
// identifiers (e.g. IDs stepping by 0x0101) never change hash%2 and a
// two-way ECMP stage would look like a single path.
func mix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// pickNextHop selects the ECMP member for a flow.
func pickNextHop(hops []NextHop, pkt *packet.Packet) NextHop {
	if len(hops) == 1 {
		return hops[0]
	}
	return hops[flowHash(pkt)%uint32(len(hops))]
}

func pickLabelHop(hops []LabelHop, pkt *packet.Packet) LabelHop {
	if len(hops) == 1 {
		return hops[0]
	}
	return hops[flowHash(pkt)%uint32(len(hops))]
}
