// Package router implements the emulated router data plane: IP forwarding
// with TTL handling, the MPLS label operations (push/swap/pop, PHP and UHP,
// RFC 3443 TTL propagation and the stateless min-TTL loop guard), and ICMP
// generation including RFC 4950 label-stack quoting and the
// "time-exceeded messages generated inside a tunnel are first forwarded to
// the end of the tunnel" behaviour the paper's return-TTL analysis relies
// on.
package router

import "time"

// Personality captures the per-OS behaviours that the paper's
// fingerprinting (Table 1) and techniques distinguish.
type Personality struct {
	Name string

	// TimeExceededTTL is the initial IP TTL of ICMP time-exceeded (and
	// destination-unreachable) messages the router originates.
	TimeExceededTTL uint8
	// EchoReplyTTL is the initial IP TTL of ICMP echo replies.
	EchoReplyTTL uint8

	// RFC4950 controls whether ICMP errors generated for labeled packets
	// quote the MPLS label stack.
	RFC4950 bool

	// MinOnPop enables the stateless min(IP-TTL, LSE-TTL) copy at
	// penultimate-hop pop (RFC 3443 §5.4; "the min behavior" in the paper).
	MinOnPop bool

	// ReplyFromOutgoing sources ICMP destination-unreachable replies from
	// the interface facing the prober instead of the probed address — the
	// classic router behaviour Mercator-style alias resolution exploits.
	ReplyFromOutgoing bool
}

// The four signature rows of Table 1.
var (
	// Cisco models IOS / IOS XR: <255, 255>. IOS sources unreachables
	// from the outgoing interface, which is what makes Mercator-style
	// alias resolution work against it.
	Cisco = Personality{Name: "cisco", TimeExceededTTL: 255, EchoReplyTTL: 255, RFC4950: true, MinOnPop: true, ReplyFromOutgoing: true}
	// Juniper models Junos: <255, 64>. The echo/TE gap is what RTLA exploits.
	Juniper = Personality{Name: "juniper", TimeExceededTTL: 255, EchoReplyTTL: 64, RFC4950: true, MinOnPop: true}
	// JunosE models Juniper E-series: <128, 128>.
	JunosE = Personality{Name: "junose", TimeExceededTTL: 128, EchoReplyTTL: 128, RFC4950: true, MinOnPop: true}
	// Legacy models Brocade/Alcatel/Linux software routers: <64, 64>,
	// typically without RFC 4950 support.
	Legacy = Personality{Name: "legacy", TimeExceededTTL: 64, EchoReplyTTL: 64, RFC4950: false, MinOnPop: true}
)

// Signature returns the <TE, echo> initial-TTL pair.
func (p Personality) Signature() (uint8, uint8) {
	return p.TimeExceededTTL, p.EchoReplyTTL
}

// LDPPolicy selects which FECs a router allocates and advertises labels
// for (Sec. 2.1 of the paper).
type LDPPolicy uint8

const (
	// LDPAllPrefixes advertises a label for every prefix in the routing
	// table (the Cisco default).
	LDPAllPrefixes LDPPolicy = iota
	// LDPHostRoutesOnly advertises labels for loopback /32s only (the
	// Juniper default, or Cisco with
	// "mpls ldp label allocate global host-routes").
	LDPHostRoutesOnly
)

func (p LDPPolicy) String() string {
	if p == LDPHostRoutesOnly {
		return "host-routes"
	}
	return "all-prefixes"
}

// Config is the per-router configuration surface exercised by the paper's
// four emulation scenarios.
type Config struct {
	// TTLPropagate copies the IP TTL into the pushed LSE TTL at the
	// ingress ("mpls ip propagate-ttl"). Disabling it is what makes a
	// tunnel invisible.
	TTLPropagate bool
	// LDP selects the label advertising policy.
	LDP LDPPolicy
	// UHP makes the router, as an egress, advertise explicit-null so the
	// label is carried to (and popped by) the egress itself.
	UHP bool
	// MPLSEnabled gates all label processing; routers in non-MPLS ASes
	// leave it off.
	MPLSEnabled bool
	// Silent suppresses all locally-originated ICMP (anonymous-hop
	// failure injection).
	Silent bool
	// NoICMPTimeExceeded suppresses only TTL-expiry errors while still
	// answering pings (another behaviour observed in the wild).
	NoICMPTimeExceeded bool
	// ICMPInterval rate-limits locally generated ICMP: at most one
	// message per interval of virtual time (Cisco's default is 1 per
	// 500ms per destination; we model a global token). Zero disables the
	// limit. Campaign code uses this for failure injection — rate-limited
	// routers appear as anonymous hops, as in real traces.
	ICMPInterval time.Duration
}

// DefaultConfig mirrors the paper's "Default configuration" scenario:
// MPLS with LDP on all prefixes, PHP, TTL propagation enabled.
func DefaultConfig() Config {
	return Config{TTLPropagate: true, LDP: LDPAllPrefixes, MPLSEnabled: true}
}
