package router

import (
	"fmt"
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
)

// Router is an emulated Label Switching Router (or plain IP router when
// MPLS is disabled). It implements netsim.Node.
type Router struct {
	name string
	os   Personality
	cfg  Config
	asn  uint32

	loopback *netsim.Iface
	ifaces   []*netsim.Iface
	// locals lists every address the router answers for (loopback plus
	// interface addresses). A router has a handful, so a linear scan beats
	// a map on the hot path and the slice snapshots as a memcpy carve.
	locals []netaddr.Addr

	// The FIB and binding tables store their entries in per-router arenas
	// (routes, binds) with the tries mapping prefix → arena index. The
	// index tries are pointer-free, so a structural snapshot clones them
	// with a memcpy and copies the arenas with one sequential sweep.
	// Pointers returned by lookups point into the arenas and stay valid
	// until the next Install/Delete on the same table.
	//
	// The LFIB is a dense slice indexed by incoming label: labels are
	// allocated sequentially from firstLabel (reserved labels sit below),
	// so the table is nearly full and clones as one memcpy. A slot is
	// occupied iff it pops locally or has next hops — InstallLFIB never
	// stores an entry with neither.
	fib      netaddr.Trie[int32]
	routes   []Route
	bindings netaddr.Trie[int32]
	binds    []Binding
	lfib     []LFIBEntry

	nextLabel uint32
	lastICMP  time.Duration
	icmpSent  bool

	// net is the fabric this router has been delivering on, wired lazily
	// by Receive. Mutation hooks use it to flush the fabric-wide
	// flow-trajectory cache; a nil net (router never traversed) is fine —
	// a router no recorded flow has crossed cannot invalidate one.
	// Snapshot replicas start with it nil and re-wire on their own fabric.
	net *netsim.Network

	// routeCache is a small direct-mapped cache over forward()'s FIB
	// lookup and binding resolution, keyed on destination address.
	// Campaign probes hit the same handful of destinations (the probe dst
	// and each VP's reply dst) per drain, so even four entries absorb
	// nearly every lookup. Any FIB/binding/config mutation invalidates it.
	routeCache [routeCacheSize]routeCacheEntry

	// Stats counts data-plane events; tests and the campaign post-mortem
	// read them.
	Stats Stats

	// ControlHandler, when set, receives control-plane packets (OSPF and
	// the like) addressed to the router or multicast on a link. In-band
	// routing protocols register here.
	ControlHandler func(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet)
}

// Stats are per-router data-plane counters.
type Stats struct {
	Received      uint64
	Forwarded     uint64
	Dropped       uint64
	TimeExceeded  uint64
	EchoReplies   uint64
	LabelSwitched uint64
	RateLimited   uint64
}

// firstLabel is the first non-reserved MPLS label (RFC 3032 reserves 0-15).
const firstLabel = 16

// routeCacheSize must stay a power of two (the index is a bit mask).
const (
	routeCacheSize = 4
	routeCacheMask = routeCacheSize - 1
)

type routeCacheEntry struct {
	valid   bool
	dst     netaddr.Addr
	prefix  netaddr.Prefix
	rt      *Route
	binding *Binding // resolved imposition entry; nil for plain IP forwarding
}

// invalidateRouteCache drops every cached forwarding decision. Called on
// any mutation that could change a lookup result.
func (r *Router) invalidateRouteCache() {
	r.routeCache = [routeCacheSize]routeCacheEntry{}
}

// mutated records a control-plane change: it flushes the local route
// cache and the fabric-wide flow-trajectory cache, which memoizes
// forwarding decisions this router contributed to.
func (r *Router) mutated() {
	r.invalidateRouteCache()
	if r.net != nil {
		// Scoped: inside a churn event batch only flows that traversed
		// this router are evicted; outside one this is the full flush.
		r.net.InvalidateFlowCacheScoped(r)
	}
}

// FlowCacheable implements netsim.FlowCacheable: the fabric's
// flow-trajectory cache may only memoize through routers whose reply
// behaviour is time-independent, which excludes ICMP rate limiting.
func (r *Router) FlowCacheable() bool { return r.cfg.ICMPInterval == 0 }

// New creates a router with the given OS personality and configuration.
func New(name string, os Personality, cfg Config) *Router {
	return &Router{
		name:      name,
		os:        os,
		cfg:       cfg,
		nextLabel: firstLabel,
	}
}

// Name implements netsim.Node.
func (r *Router) Name() string { return r.name }

// Personality returns the router's OS personality.
func (r *Router) Personality() Personality { return r.os }

// SetPersonality swaps the OS personality (scenario variants in
// experiments re-type a router without rebuilding the testbed).
func (r *Router) SetPersonality(p Personality) {
	r.os = p
	r.mutated()
}

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// SetConfig replaces the configuration (emulation scenarios reconfigure
// routers between runs).
func (r *Router) SetConfig(cfg Config) {
	r.cfg = cfg
	r.mutated()
}

// ASN returns the router's autonomous system number.
func (r *Router) ASN() uint32 { return r.asn }

// SetASN assigns the router to an AS.
func (r *Router) SetASN(asn uint32) { r.asn = asn }

// AddIface attaches a new interface bearing addr within prefix. The
// interface must still be connected via netsim.Network.Connect.
func (r *Router) AddIface(name string, addr netaddr.Addr, prefix netaddr.Prefix) *netsim.Iface {
	ifc := &netsim.Iface{Owner: r, Name: name, Addr: addr, Prefix: prefix}
	r.ifaces = append(r.ifaces, ifc)
	r.locals = append(r.locals, addr)
	return ifc
}

// SetLoopback assigns the loopback /32; LDP host-routes policies advertise
// labels for exactly these.
func (r *Router) SetLoopback(addr netaddr.Addr) *netsim.Iface {
	r.loopback = &netsim.Iface{Owner: r, Name: "lo0", Addr: addr, Prefix: netaddr.HostPrefix(addr)}
	r.locals = append(r.locals, addr)
	return r.loopback
}

// Loopback returns the loopback interface (nil if unset).
func (r *Router) Loopback() *netsim.Iface { return r.loopback }

// Ifaces returns the physical interfaces (loopback excluded).
func (r *Router) Ifaces() []*netsim.Iface { return r.ifaces }

// IsLocal reports whether addr is one of the router's own addresses.
func (r *Router) IsLocal(addr netaddr.Addr) bool {
	for _, a := range r.locals {
		if a == addr {
			return true
		}
	}
	return false
}

// InstallRoute adds or replaces a FIB entry. The route is copied into the
// router's arena; the caller's struct is not retained.
func (r *Router) InstallRoute(p netaddr.Prefix, rt *Route) {
	if len(rt.NextHops) == 0 {
		panic(fmt.Sprintf("router %s: route for %s with no next hops", r.name, p))
	}
	r.mutated()
	if idx, ok := r.fib.Get(p); ok {
		r.routes[idx] = *rt
		return
	}
	r.routes = append(r.routes, *rt)
	r.fib.Insert(p, int32(len(r.routes)-1))
}

// LookupRoute resolves dst through the FIB (tests and control-plane
// builders use it). The returned pointer is valid until the next FIB
// mutation.
func (r *Router) LookupRoute(dst netaddr.Addr) (netaddr.Prefix, *Route, bool) {
	p, idx, ok := r.fib.LookupPrefix(dst)
	if !ok {
		return p, nil, false
	}
	return p, &r.routes[idx], true
}

// GetRoute returns the FIB entry for exactly p, without LPM semantics.
// The returned pointer is valid until the next FIB mutation.
func (r *Router) GetRoute(p netaddr.Prefix) (*Route, bool) {
	idx, ok := r.fib.Get(p)
	if !ok {
		return nil, false
	}
	return &r.routes[idx], true
}

// DeleteRoute removes the FIB entry for exactly p (BGP withdrawals). The
// arena slot goes dead; withdrawals are far too rare to compact for.
func (r *Router) DeleteRoute(p netaddr.Prefix) bool {
	r.mutated()
	return r.fib.Delete(p)
}

// WalkRoutes visits every FIB entry.
func (r *Router) WalkRoutes(fn func(netaddr.Prefix, *Route) bool) {
	r.fib.Walk(func(p netaddr.Prefix, idx int32) bool { return fn(p, &r.routes[idx]) })
}

// InstallBinding adds or replaces a label-imposition entry for a FEC. The
// binding is copied into the router's arena; the caller's struct is not
// retained.
func (r *Router) InstallBinding(b *Binding) {
	r.mutated()
	if idx, ok := r.bindings.Get(b.FEC); ok {
		r.binds[idx] = *b
		return
	}
	r.binds = append(r.binds, *b)
	r.bindings.Insert(b.FEC, int32(len(r.binds)-1))
}

// InstallLFIB adds an incoming-label entry. The entry is copied into the
// router's dense label table; the caller's struct is not retained. An
// entry must either pop locally or carry next hops — the zero shape marks
// empty slots.
func (r *Router) InstallLFIB(e *LFIBEntry) {
	if !e.PopLocal && len(e.NextHops) == 0 {
		panic(fmt.Sprintf("router %s: LFIB entry for label %d with no action", r.name, e.InLabel))
	}
	if n := int(e.InLabel) + 1; n > len(r.lfib) {
		if n > cap(r.lfib) {
			grown := make([]LFIBEntry, n)
			copy(grown, r.lfib)
			r.lfib = grown
		} else {
			r.lfib = r.lfib[:n]
		}
	}
	r.lfib[e.InLabel] = *e
	r.mutated()
}

// lfibEntry resolves an incoming label against the dense table, nil when
// the slot is out of range or empty.
func (r *Router) lfibEntry(label uint32) *LFIBEntry {
	if int(label) >= len(r.lfib) {
		return nil
	}
	e := &r.lfib[label]
	if !e.PopLocal && len(e.NextHops) == 0 {
		return nil
	}
	return e
}

// ClearMPLS removes all label state (scenario reconfiguration).
func (r *Router) ClearMPLS() {
	r.bindings = netaddr.Trie[int32]{}
	r.binds = nil
	clear(r.lfib) // stale slots must not resurface when the table regrows
	r.lfib = r.lfib[:0]
	r.nextLabel = firstLabel
	r.mutated()
}

// AllocLabel returns a fresh label from the router's platform-wide space.
func (r *Router) AllocLabel() uint32 {
	l := r.nextLabel
	r.nextLabel++
	return l
}

// Receive implements netsim.Node.
func (r *Router) Receive(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet) {
	if r.net == nil {
		r.net = net
	}
	r.Stats.Received++
	if pkt.Labeled() {
		if !r.cfg.MPLSEnabled {
			r.Stats.Dropped++
			return
		}
		r.receiveMPLS(net, in, pkt)
		return
	}
	r.receiveIP(net, in, pkt)
}

// ---- Plain IP path ----

func (r *Router) receiveIP(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet) {
	if pkt.IP.Protocol == packet.ProtoOSPF ||
		(pkt.IP.Protocol == packet.ProtoTCP && pkt.Raw != nil && r.IsLocal(pkt.IP.Dst)) {
		// Control-plane traffic: OSPF is link-local; LDP sessions (TCP
		// 646 in reality) are modeled as Raw TCP datagrams between
		// adjacent routers. Never forwarded as data.
		if r.ControlHandler != nil {
			// Protocol handlers may keep decoded state referencing the
			// packet; off the hot path, so escape the free list.
			net.AdoptPacket(pkt)
			r.ControlHandler(net, in, pkt)
		}
		return
	}
	if r.IsLocal(pkt.IP.Dst) {
		r.deliverLocal(net, in, pkt)
		return
	}
	if pkt.IP.TTL <= 1 {
		r.sendTimeExceeded(net, in, pkt)
		return
	}
	fwd := net.PacketPool().Clone(pkt)
	fwd.IP.TTL--
	r.forward(net, fwd)
}

// Originate routes a locally-generated packet (no TTL decrement).
func (r *Router) Originate(net *netsim.Network, pkt *packet.Packet) {
	r.forward(net, pkt)
}

// forward performs the FIB lookup, label imposition when a binding covers
// the packet's FEC, and transmission. TTL adjustments have already been
// made by the caller. Lookup and binding resolution go through the
// per-destination route cache; both are pure functions of (FIB, bindings,
// config, dst), which is exactly what invalidateRouteCache guards.
func (r *Router) forward(net *netsim.Network, pkt *packet.Packet) {
	dst := pkt.IP.Dst
	e := &r.routeCache[uint32(dst)&routeCacheMask]
	if !e.valid || e.dst != dst {
		matched, idx, ok := r.fib.LookupPrefix(dst)
		if !ok {
			r.Stats.Dropped++
			if net != nil { // Originate permits a nil fabric
				net.PacketPool().Release(pkt)
			}
			return
		}
		rt := &r.routes[idx]
		var b *Binding
		if r.cfg.MPLSEnabled {
			b = r.lookupBinding(matched, rt, dst)
		}
		*e = routeCacheEntry{valid: true, dst: dst, prefix: matched, rt: rt, binding: b}
	}
	if e.binding != nil {
		r.impose(net, pkt, e.binding)
		return
	}
	nh := notedNextHop(net, e.rt.NextHops, pkt)
	r.Stats.Forwarded++
	net.Transmit(nh.Out, pkt)
}

// lookupBinding resolves the FEC for a route per Sec. 3.2: BGP routes are
// switched toward the BGP next hop's FEC; IGP routes toward the matched
// prefix itself (only when LDP advertised exactly that FEC, keeping LSPs
// congruent with the IGP); connected routes are never labeled (the router
// is the egress).
func (r *Router) lookupBinding(matched netaddr.Prefix, rt *Route, dst netaddr.Addr) *Binding {
	switch rt.Origin {
	case OriginConnected:
		return nil
	case OriginBGP:
		if rt.BGPNextHop.IsUnspecified() {
			return nil
		}
		fec, idx, ok := r.bindings.LookupPrefix(rt.BGPNextHop)
		if ok && fec.IsHost() {
			return &r.binds[idx]
		}
		// Fall back to a covering binding for the next hop (all-prefix
		// LDP may have bound the loopback's containing prefix).
		if ok {
			return &r.binds[idx]
		}
		return nil
	default:
		idx, ok := r.bindings.Get(matched)
		if !ok {
			return nil
		}
		return &r.binds[idx]
	}
}

// impose pushes the FEC's label (or forwards unlabeled for implicit null)
// and transmits.
func (r *Router) impose(net *netsim.Network, pkt *packet.Packet, b *Binding) {
	hop := notedLabelHop(net, b.NextHops, pkt)
	r.Stats.Forwarded++
	lseTTL := uint8(255)
	lseProp := false // lineage of the imposed TTL: 255 is a constant seed
	if r.cfg.TTLPropagate {
		lseTTL = pkt.IP.TTL
		lseProp = pkt.LineageIP()
	}
	// Deeper labels first (segment lists), then the top label. The pushes
	// mutate in place: the packet is exclusively ours here (a pooled clone
	// or a locally originated reply). Growing through the pool keeps the
	// common impose-on-unlabeled-clone case allocation-free.
	if need := len(pkt.MPLS) + len(hop.Under) + 1; net != nil && cap(pkt.MPLS) < need {
		pkt.MPLS = net.PacketPool().GrowStack(pkt.MPLS, need)
	}
	for i := len(hop.Under) - 1; i >= 0; i-- {
		pkt.MPLS.PushInPlace(packet.LSE{Label: hop.Under[i], TTL: lseTTL})
		if pkt.Mark != 0 {
			pkt.PushLineage(lseProp)
		}
	}
	switch hop.Label {
	case OutLabelImplicitNull:
		// PHP pre-applied: nothing more on the wire for the top segment.
		net.Transmit(hop.Out, pkt)
	default:
		pkt.MPLS.PushInPlace(packet.LSE{Label: hop.Label, TTL: lseTTL})
		if pkt.Mark != 0 {
			pkt.PushLineage(lseProp)
		}
		net.Transmit(hop.Out, pkt)
	}
}

// ---- MPLS path ----

func (r *Router) receiveMPLS(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet) {
	r.switchMPLS(net, in, pkt, true)
}

// switchMPLS performs one label operation. decrement is false when the
// packet is being re-processed at the same router after an inner label
// surfaced (a router charges the TTL once per hop, not once per label).
func (r *Router) switchMPLS(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet, decrement bool) {
	top, _ := pkt.MPLS.Top()
	entry := r.lfibEntry(top.Label)
	if entry == nil {
		r.Stats.Dropped++
		return
	}
	newTTL := top.TTL
	if decrement {
		if top.TTL <= 1 {
			r.mplsExpired(net, in, pkt, entry)
			return
		}
		newTTL = top.TTL - 1
	} else if top.TTL == 0 {
		r.mplsExpired(net, in, pkt, entry)
		return
	}
	r.Stats.LabelSwitched++

	if entry.PopLocal {
		r.disposeUHP(net, in, pkt, newTTL)
		return
	}

	hop := notedLabelHop(net, entry.NextHops, pkt)
	fwd := net.PacketPool().Clone(pkt)
	switch hop.Label {
	case OutLabelImplicitNull:
		// Penultimate-hop pop. The min(IP, LSE) loop guard is applied
		// here, statelessly, whatever the ingress propagation setting —
		// this is the leak FRPLA and RTLA measure.
		topProp := false
		if fwd.Mark != 0 {
			topProp = fwd.PopLineage()
		}
		fwd.MPLS.PopInPlace()
		if fwd.MPLS.Empty() {
			if r.os.MinOnPop {
				if fwd.Mark != 0 {
					net.NoteTTLMin(newTTL, fwd.IP.TTL, topProp, fwd.LineageIP())
				}
				if newTTL < fwd.IP.TTL {
					fwd.IP.TTL = newTTL
					fwd.SetLineageIP(topProp)
				}
			}
		} else if r.os.MinOnPop {
			if fwd.Mark != 0 {
				net.NoteTTLMin(newTTL, fwd.MPLS[0].TTL, topProp, fwd.LineageTop())
			}
			if newTTL < fwd.MPLS[0].TTL {
				fwd.MPLS[0].TTL = newTTL
				fwd.SetLineageTop(topProp)
			}
		}
		// PHP forwards to the LFIB next hop directly; no IP lookup and no
		// IP TTL decrement happen at the popping LSR.
		net.Transmit(hop.Out, fwd)
	default:
		// Swap (possibly to explicit null for a UHP egress downstream).
		fwd.MPLS[0] = packet.LSE{Label: hop.Label, TTL: newTTL, Bottom: fwd.MPLS[0].Bottom}
		net.Transmit(hop.Out, fwd)
	}
}

// disposeUHP handles the egress's own pop of an explicit-null label.
// With ttl-propagate the egress behaves like an IP hop (min copy, expiry
// check). Without it — the invisible case — the IP TTL is decremented with
// no expiry check and no min copy: the TTL check already happened at the
// MPLS layer, so the tunnel *and the egress* stay invisible (Fig. 4d).
func (r *Router) disposeUHP(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet, lseTTL uint8) {
	fwd := net.PacketPool().Clone(pkt)
	topProp := false
	if fwd.Mark != 0 {
		topProp = fwd.PopLineage()
	}
	fwd.MPLS.PopInPlace()
	if !fwd.MPLS.Empty() {
		// Nested tunnels: propagate the TTL downward and keep switching —
		// without a second decrement at this router.
		if r.os.MinOnPop {
			if fwd.Mark != 0 {
				net.NoteTTLMin(lseTTL, fwd.MPLS[0].TTL, topProp, fwd.LineageTop())
			}
			if lseTTL < fwd.MPLS[0].TTL {
				fwd.MPLS[0].TTL = lseTTL
				fwd.SetLineageTop(topProp)
			}
		}
		r.switchMPLS(net, in, fwd, false)
		// switchMPLS clones again before transmitting; this intermediate
		// copy is done.
		net.PacketPool().Release(fwd)
		return
	}
	if r.cfg.TTLPropagate {
		if fwd.Mark != 0 {
			net.NoteTTLMin(lseTTL, fwd.IP.TTL, topProp, fwd.LineageIP())
		}
		if lseTTL < fwd.IP.TTL {
			fwd.IP.TTL = lseTTL
			fwd.SetLineageIP(topProp)
		}
		if r.IsLocal(fwd.IP.Dst) {
			r.deliverLocal(net, in, fwd)
			net.PacketPool().Release(fwd)
			return
		}
		if fwd.IP.TTL == 0 {
			r.sendTimeExceeded(net, in, fwd)
			net.PacketPool().Release(fwd)
			return
		}
		r.forward(net, fwd)
		return
	}
	if r.IsLocal(fwd.IP.Dst) {
		r.deliverLocal(net, in, fwd)
		net.PacketPool().Release(fwd)
		return
	}
	if fwd.IP.TTL > 0 {
		fwd.IP.TTL--
	}
	r.forward(net, fwd)
}

// mplsExpired generates the time-exceeded for an LSE TTL expiry and
// forwards it the way real LSRs do: by applying the expired packet's own
// LFIB entry. A swap sends the reply down the remaining LSP to the tunnel
// tail before it can turn around (the +k return TTLs of Fig. 4a); a pop
// leaves a plain IP reply that is routed — and possibly re-tunneled —
// immediately.
func (r *Router) mplsExpired(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet, entry *LFIBEntry) {
	// Before any suppression decision: the sweep engine's reply shape is
	// "what this expiry context produces", answered or not.
	net.NoteExpiry(in, pkt)
	if r.cfg.Silent || r.cfg.NoICMPTimeExceeded || !r.icmpAllowed(net) {
		r.Stats.Dropped++
		return
	}
	pool := net.PacketPool()
	te := r.buildTimeExceeded(net, in, pkt)
	if r.os.RFC4950 {
		ext := pool.Extension()
		ext.LabelStack = pool.CloneStack(pkt.MPLS)
		te.ICMP.Ext = ext
	}
	r.Stats.TimeExceeded++

	if entry.PopLocal {
		r.Originate(net, te)
		return
	}
	hop := notedLabelHop(net, entry.NextHops, pkt)
	switch hop.Label {
	case OutLabelImplicitNull:
		if len(pkt.MPLS) > 1 {
			// Still labeled below the popped entry: ride the rest of the LSP.
			te.MPLS = pool.CloneStack(pkt.MPLS[1:])
			for i := range te.MPLS {
				te.MPLS[i].TTL = r.os.TimeExceededTTL
			}
			net.Transmit(hop.Out, te)
			return
		}
		// Pop exposes plain IP: route the reply from here.
		r.Originate(net, te)
	default:
		stack := pool.Stack(1)
		stack[0] = packet.LSE{Label: hop.Label, TTL: r.os.TimeExceededTTL, Bottom: true}
		te.MPLS = stack
		net.Transmit(hop.Out, te)
	}
}

// ---- ICMP generation ----

func (r *Router) buildTimeExceeded(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet) *packet.Packet {
	pool := net.PacketPool()
	te := pool.Packet()
	te.IP = packet.IPv4{
		TTL:      r.os.TimeExceededTTL,
		Protocol: packet.ProtoICMP,
		Src:      in.Addr,
		Dst:      pkt.IP.Src,
	}
	icmp := pool.ICMP()
	icmp.Type = packet.ICMPTimeExceeded
	icmp.Code = packet.CodeTTLExpired
	icmp.Quote = quoteOf(pool, pkt)
	te.ICMP = icmp
	return te
}

func (r *Router) sendTimeExceeded(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet) {
	net.NoteExpiry(in, pkt)
	if r.cfg.Silent || r.cfg.NoICMPTimeExceeded || !r.icmpAllowed(net) {
		r.Stats.Dropped++
		return
	}
	r.Stats.TimeExceeded++
	r.Originate(net, r.buildTimeExceeded(net, in, pkt))
}

// icmpAllowed applies the ICMPInterval rate limit against virtual time.
func (r *Router) icmpAllowed(net *netsim.Network) bool {
	if r.cfg.ICMPInterval == 0 || net == nil {
		return true
	}
	now := net.Now()
	if r.icmpSent && now-r.lastICMP < r.cfg.ICMPInterval {
		r.Stats.RateLimited++
		return false
	}
	r.lastICMP = now
	r.icmpSent = true
	return true
}

func (r *Router) deliverLocal(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet) {
	// Routers consume local traffic before any TTL check; tell the sweep
	// recorder its terminal step is exempt from transit expiry rules.
	net.NoteLocalDelivery(pkt)
	if r.cfg.Silent {
		r.Stats.Dropped++
		return
	}
	pool := net.PacketPool()
	switch {
	case pkt.IP.Protocol == packet.ProtoICMP && pkt.ICMP != nil && pkt.ICMP.Type == packet.ICMPEchoRequest:
		r.Stats.EchoReplies++
		reply := pool.Packet()
		reply.IP = packet.IPv4{
			TTL:      r.os.EchoReplyTTL,
			Protocol: packet.ProtoICMP,
			Src:      pkt.IP.Dst, // reply from the targeted address
			Dst:      pkt.IP.Src,
		}
		icmp := pool.ICMP()
		icmp.Type, icmp.ID, icmp.Seq = packet.ICMPEchoReply, pkt.ICMP.ID, pkt.ICMP.Seq
		reply.ICMP = icmp
		reply.PayloadLen = pkt.PayloadLen
		r.Originate(net, reply)
	case pkt.IP.Protocol == packet.ProtoUDP && pkt.UDP != nil:
		src := pkt.IP.Dst
		if r.os.ReplyFromOutgoing {
			// Source the unreachable from the interface the reply leaves
			// through (Mercator's alias signal).
			if _, rt, ok := r.LookupRoute(pkt.IP.Src); ok {
				src = notedNextHop(net, rt.NextHops, pkt).Out.Addr
			}
		}
		reply := pool.Packet()
		reply.IP = packet.IPv4{
			TTL:      r.os.TimeExceededTTL,
			Protocol: packet.ProtoICMP,
			Src:      src,
			Dst:      pkt.IP.Src,
		}
		icmp := pool.ICMP()
		icmp.Type = packet.ICMPDestUnreach
		icmp.Code = packet.CodePortUnreach
		icmp.Quote = quoteOf(pool, pkt)
		reply.ICMP = icmp
		r.Originate(net, reply)
	case pkt.IP.Protocol == packet.ProtoOSPF,
		pkt.IP.Protocol == packet.ProtoTCP && pkt.Raw != nil:
		// Control traffic delivered through a label disposition path
		// (e.g. multi-hop iBGP across a UHP tunnel) lands here rather
		// than in receiveIP.
		if r.ControlHandler != nil {
			net.AdoptPacket(pkt)
			r.ControlHandler(net, in, pkt)
		}
	default:
		// ICMP errors or replies addressed to the router: consumed.
	}
}

func quoteOf(pool *packet.Pool, pkt *packet.Packet) *packet.Quote {
	q := pool.Quote()
	q.IP = pkt.IP
	switch {
	case pkt.ICMP != nil:
		q.ICMPType, q.ICMPCode = pkt.ICMP.Type, pkt.ICMP.Code
		q.ID, q.Seq = pkt.ICMP.ID, pkt.ICMP.Seq
	case pkt.UDP != nil:
		q.ID, q.Seq = pkt.UDP.SrcPort, pkt.UDP.DstPort
	}
	return q
}
