package router

import (
	"testing"

	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
)

func TestFlowHashVariesWithID(t *testing.T) {
	seen := map[uint32]int{}
	for f := 0; f < 24; f++ {
		pkt := &packet.Packet{
			IP: packet.IPv4{
				Protocol: packet.ProtoICMP,
				Src:      netaddr.MustParseAddr("10.66.100.2"),
				Dst:      netaddr.MustParseAddr("10.66.101.2"),
			},
			ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 0x1234 + uint16(f)*257, Seq: 1},
		}
		seen[flowHash(pkt)%2]++
	}
	t.Logf("branch counts: %v", seen)
	if len(seen) < 2 {
		t.Error("flow hash never switched branch")
	}
}
