package router

import (
	"testing"
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
)

// chain builds VP -- R1 -- R2 -- R3 with /30s 10.0.i.0/30 and static FIBs,
// returning the pieces tests poke at. All routers are Cisco-personality
// plain-IP unless the test reconfigures them.
type chainFixture struct {
	net        *netsim.Network
	vp         *netsim.Host
	h          *netsim.Host
	r1, r2, r3 *Router
	dst        netaddr.Addr // r3's loopback
}

func buildChain(t *testing.T) *chainFixture {
	t.Helper()
	net := netsim.New(1)

	p0 := netaddr.MustParsePrefix("10.0.0.0/30") // vp - r1
	p1 := netaddr.MustParsePrefix("10.0.1.0/30") // r1 - r2
	p2 := netaddr.MustParsePrefix("10.0.2.0/30") // r2 - r3
	p3 := netaddr.MustParsePrefix("10.0.3.0/30") // r3 - h

	vp := netsim.NewHost("vp", p0.Nth(1), p0)
	cfg := Config{TTLPropagate: true}
	r1 := New("r1", Cisco, cfg)
	r2 := New("r2", Cisco, cfg)
	r3 := New("r3", Cisco, cfg)

	r1a := r1.AddIface("left", p0.Nth(2), p0)
	r1b := r1.AddIface("right", p1.Nth(1), p1)
	r2a := r2.AddIface("left", p1.Nth(2), p1)
	r2b := r2.AddIface("right", p2.Nth(1), p2)
	r3a := r3.AddIface("left", p2.Nth(2), p2)
	r3b := r3.AddIface("right", p3.Nth(1), p3)
	h := netsim.NewHost("h", p3.Nth(2), p3)
	lo := netaddr.MustParseAddr("192.168.0.3")
	r3.SetLoopback(lo)

	for _, n := range []netsim.Node{vp, h, r1, r2, r3} {
		net.AddNode(n)
	}
	net.Connect(vp.If, r1a, time.Millisecond)
	net.Connect(r1b, r2a, time.Millisecond)
	net.Connect(r2b, r3a, time.Millisecond)
	net.Connect(r3b, h.If, time.Millisecond)
	for _, ifc := range []*netsim.Iface{vp.If, h.If, r1a, r1b, r2a, r2b, r3a, r3b} {
		if err := net.RegisterIface(ifc); err != nil {
			t.Fatal(err)
		}
	}

	// Static routing: everything right goes right, everything left goes left.
	host := func(a netaddr.Addr) netaddr.Prefix { return netaddr.HostPrefix(a) }
	r1.InstallRoute(p0, &Route{Origin: OriginConnected, NextHops: []NextHop{{Out: r1a}}})
	r1.InstallRoute(p1, &Route{Origin: OriginConnected, NextHops: []NextHop{{Out: r1b}}})
	r1.InstallRoute(p2, &Route{Origin: OriginIGP, NextHops: []NextHop{{Out: r1b, Gateway: p1.Nth(2)}}})
	r1.InstallRoute(host(lo), &Route{Origin: OriginIGP, NextHops: []NextHop{{Out: r1b, Gateway: p1.Nth(2)}}})
	r1.InstallRoute(p3, &Route{Origin: OriginIGP, NextHops: []NextHop{{Out: r1b, Gateway: p1.Nth(2)}}})

	r2.InstallRoute(p1, &Route{Origin: OriginConnected, NextHops: []NextHop{{Out: r2a}}})
	r2.InstallRoute(p2, &Route{Origin: OriginConnected, NextHops: []NextHop{{Out: r2b}}})
	r2.InstallRoute(p0, &Route{Origin: OriginIGP, NextHops: []NextHop{{Out: r2a, Gateway: p1.Nth(1)}}})
	r2.InstallRoute(host(lo), &Route{Origin: OriginIGP, NextHops: []NextHop{{Out: r2b, Gateway: p2.Nth(2)}}})
	r2.InstallRoute(p3, &Route{Origin: OriginIGP, NextHops: []NextHop{{Out: r2b, Gateway: p2.Nth(2)}}})

	r3.InstallRoute(p2, &Route{Origin: OriginConnected, NextHops: []NextHop{{Out: r3a}}})
	r3.InstallRoute(p0, &Route{Origin: OriginIGP, NextHops: []NextHop{{Out: r3a, Gateway: p2.Nth(1)}}})
	r3.InstallRoute(p1, &Route{Origin: OriginIGP, NextHops: []NextHop{{Out: r3a, Gateway: p2.Nth(1)}}})
	r3.InstallRoute(p3, &Route{Origin: OriginConnected, NextHops: []NextHop{{Out: r3b}}})

	return &chainFixture{net: net, vp: vp, h: h, r1: r1, r2: r2, r3: r3, dst: lo}
}

func (f *chainFixture) probe(t *testing.T, ttl uint8, dst netaddr.Addr) *packet.Packet {
	t.Helper()
	var got *packet.Packet
	f.vp.Handler = func(net *netsim.Network, pkt *packet.Packet) { net.AdoptPacket(pkt); got = pkt }
	p := &packet.Packet{
		IP:   packet.IPv4{TTL: ttl, Protocol: packet.ProtoICMP, Src: f.vp.Addr(), Dst: dst},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 9, Seq: uint16(ttl)},
	}
	f.net.Inject(f.vp.If, p)
	return got
}

func TestIPTTLExpiryPerHop(t *testing.T) {
	f := buildChain(t)
	wantSrc := []string{"10.0.0.2", "10.0.1.2", "10.0.2.2"}
	for i, want := range wantSrc {
		got := f.probe(t, uint8(i+1), f.h.Addr())
		if got == nil {
			t.Fatalf("ttl=%d: no reply", i+1)
		}
		if got.ICMP.Type != packet.ICMPTimeExceeded {
			t.Fatalf("ttl=%d: reply type %d", i+1, got.ICMP.Type)
		}
		if got.IP.Src != netaddr.MustParseAddr(want) {
			t.Errorf("ttl=%d: TE from %s, want %s", i+1, got.IP.Src, want)
		}
		if got.ICMP.Quote == nil || got.ICMP.Quote.Seq != uint16(i+1) {
			t.Errorf("ttl=%d: quote = %+v", i+1, got.ICMP.Quote)
		}
	}
	// The destination itself answers with an echo reply once reached.
	got := f.probe(t, 4, f.h.Addr())
	if got == nil || got.ICMP.Type != packet.ICMPEchoReply {
		t.Fatalf("ttl=4 reply = %v, want echo reply from destination", got)
	}
	if got.IP.TTL != 61 { // host init 64 minus r3, r2, r1
		t.Errorf("host echo TTL = %d, want 61", got.IP.TTL)
	}
}

func TestEchoReachesLoopback(t *testing.T) {
	f := buildChain(t)
	got := f.probe(t, 64, f.dst)
	if got == nil || got.ICMP.Type != packet.ICMPEchoReply {
		t.Fatalf("reply = %v", got)
	}
	if got.IP.Src != f.dst {
		t.Errorf("echo reply src = %s, want %s", got.IP.Src, f.dst)
	}
	// Three routers back: r3 originates at 255 (Cisco), r2 and r1 decrement.
	if got.IP.TTL != 253 {
		t.Errorf("reply TTL = %d, want 253", got.IP.TTL)
	}
}

func TestReturnTTLRevealsDistance(t *testing.T) {
	f := buildChain(t)
	got := f.probe(t, 3, f.h.Addr()) // expires at r3
	if got == nil {
		t.Fatal("no reply")
	}
	// r3's TE starts at 255 and crosses r2, r1.
	if got.IP.TTL != 253 {
		t.Errorf("TE TTL at VP = %d, want 253", got.IP.TTL)
	}
}

func TestJuniperSignatureTTLs(t *testing.T) {
	f := buildChain(t)
	f.r3.os = Juniper
	te := f.probe(t, 3, f.h.Addr()) // expires at r3
	if te == nil || te.ICMP.Type != packet.ICMPTimeExceeded {
		t.Fatalf("ttl=3 reply = %v", te)
	}
	if te.IP.TTL != 253 { // TE init 255 minus r2, r1
		t.Errorf("juniper TE TTL = %d, want 253", te.IP.TTL)
	}
	echo := f.probe(t, 64, f.dst)
	if echo == nil || echo.ICMP.Type != packet.ICMPEchoReply {
		t.Fatalf("echo reply = %v", echo)
	}
	if echo.IP.TTL != 62 { // echo init 64 minus r2, r1
		t.Errorf("juniper echo TTL = %d, want 62", echo.IP.TTL)
	}
}

func TestSilentRouterAnswersNothing(t *testing.T) {
	f := buildChain(t)
	f.r2.cfg.Silent = true
	if got := f.probe(t, 2, f.dst); got != nil {
		t.Errorf("silent router replied: %v", got)
	}
	// But it still forwards.
	if got := f.probe(t, 3, f.h.Addr()); got == nil || got.IP.Src != netaddr.MustParseAddr("10.0.2.2") {
		t.Errorf("silent router did not forward: %v", got)
	}
}

func TestNoICMPTimeExceededStillPings(t *testing.T) {
	f := buildChain(t)
	f.r2.cfg.NoICMPTimeExceeded = true
	if got := f.probe(t, 2, f.dst); got != nil {
		t.Errorf("TE suppressed router sent TE: %v", got)
	}
	if got := f.probe(t, 64, netaddr.MustParseAddr("10.0.1.2")); got == nil || got.ICMP.Type != packet.ICMPEchoReply {
		t.Errorf("TE-suppressed router did not answer ping: %v", got)
	}
}

func TestUDPProbeToRouterPortUnreach(t *testing.T) {
	f := buildChain(t)
	var got *packet.Packet
	f.vp.Handler = func(net *netsim.Network, pkt *packet.Packet) { net.AdoptPacket(pkt); got = pkt }
	p := &packet.Packet{
		IP:  packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: f.vp.Addr(), Dst: f.dst},
		UDP: &packet.UDP{SrcPort: 33000, DstPort: 33434},
	}
	f.net.Inject(f.vp.If, p)
	if got == nil || got.ICMP == nil || got.ICMP.Type != packet.ICMPDestUnreach || got.ICMP.Code != packet.CodePortUnreach {
		t.Fatalf("reply = %v", got)
	}
}

// installLSP wires a static LSP r1 -> r2 -> r3 for the loopback FEC with
// PHP: r1 pushes label 100 (r2's), r2 pops (r3 advertised implicit null).
func installLSP(f *chainFixture, propagate bool) {
	for _, r := range []*Router{f.r1, f.r2, f.r3} {
		r.cfg.MPLSEnabled = true
		r.cfg.TTLPropagate = propagate
	}
	r1b := f.r1.Ifaces()[1]
	r2b := f.r2.Ifaces()[1]
	for _, fec := range []netaddr.Prefix{netaddr.HostPrefix(f.dst), netaddr.MustParsePrefix("10.0.3.0/30")} {
		f.r1.InstallBinding(&Binding{FEC: fec, NextHops: []LabelHop{{Out: r1b, Label: 100}}})
	}
	f.r2.InstallLFIB(&LFIBEntry{InLabel: 100, NextHops: []LabelHop{{Out: r2b, Label: OutLabelImplicitNull}}})
}

func TestInvisibleTunnelHidesLSR(t *testing.T) {
	f := buildChain(t)
	installLSP(f, false)
	// TTL=2 expires at r3 (the egress), not r2: r1 decremented to 1 and
	// pushed; r2 only decremented the LSE; r3 got IP TTL 1.
	got := f.probe(t, 2, f.h.Addr())
	if got == nil || got.IP.Src != netaddr.MustParseAddr("10.0.2.2") {
		t.Fatalf("ttl=2 reply from %v, want r3 (10.0.2.2)", got)
	}
	// min-on-pop leaked the tunnel length into the return path: r3's TE
	// rides no return tunnel here, so its TTL reflects true distance.
	if got.IP.TTL != 253 {
		t.Errorf("TE TTL = %d, want 253", got.IP.TTL)
	}
}

func TestExplicitTunnelRevealsLSRWithRFC4950(t *testing.T) {
	f := buildChain(t)
	installLSP(f, true)
	got := f.probe(t, 2, f.h.Addr())
	if got == nil || got.IP.Src != netaddr.MustParseAddr("10.0.1.2") {
		t.Fatalf("ttl=2 reply from %v, want r2 (10.0.1.2)", got)
	}
	if got.ICMP.Ext == nil || len(got.ICMP.Ext.LabelStack) != 1 {
		t.Fatalf("missing RFC4950 extension: %+v", got.ICMP.Ext)
	}
	lse := got.ICMP.Ext.LabelStack[0]
	if lse.Label != 100 || lse.TTL != 1 {
		t.Errorf("quoted LSE = %+v, want label 100 ttl 1", lse)
	}
}

func TestNoRFC4950OmitsExtension(t *testing.T) {
	f := buildChain(t)
	installLSP(f, true)
	f.r2.os = Legacy // no RFC4950
	got := f.probe(t, 2, f.h.Addr())
	if got == nil {
		t.Fatal("no reply")
	}
	if got.ICMP.Ext != nil {
		t.Errorf("legacy router quoted labels: %+v", got.ICMP.Ext)
	}
}

func TestMinOnPopCopiesLSETTL(t *testing.T) {
	f := buildChain(t)
	installLSP(f, false)
	// Probe with plenty of IP TTL: at r2's pop, LSE TTL (254) < IP TTL
	// (63): min writes 254? No: LSE starts at 255, r2 decrements to 254;
	// IP TTL is 63 after r1; min(63, 254) keeps 63. The reply from the
	// loopback then shows the true reverse distance.
	got := f.probe(t, 64, f.dst)
	if got == nil || got.ICMP.Type != packet.ICMPEchoReply {
		t.Fatalf("reply = %v", got)
	}
	// Now the interesting direction: a return tunnel. Give r3 a binding
	// toward the VP so its replies enter an invisible return LSP.
	vpPrefix := netaddr.MustParsePrefix("10.0.0.0/30")
	r3a := f.r3.Ifaces()[0]
	r2a := f.r2.Ifaces()[0]
	f.r3.InstallBinding(&Binding{FEC: vpPrefix, NextHops: []LabelHop{{Out: r3a, Label: 200}}})
	f.r2.InstallLFIB(&LFIBEntry{InLabel: 200, NextHops: []LabelHop{{Out: r2a, Label: OutLabelImplicitNull}}})
	// r3's route for the VP prefix must be IGP-origin for the binding to
	// apply (it is, from buildChain).
	// With the forward tunnel invisible, the host is only 3 IP hops away
	// (r1, r3, h): TTL=2 expires at r3, the egress.
	got = f.probe(t, 2, f.h.Addr()) // expires at r3; TE returns through the LSP
	if got == nil {
		t.Fatal("no reply")
	}
	// TE: r3 originates at 255, pushes LSE 255 (no propagate on r3...
	// propagate=false from installLSP). r2 pops: LSE 254 < IP 255 -> 254.
	// r1: IP hop -> 253.
	if got.IP.TTL != 253 {
		t.Errorf("TE TTL through return tunnel = %d, want 253", got.IP.TTL)
	}
	// Juniper echo replies start at 64: the min keeps 64 (the "gap").
	f.r3.os = Juniper
	got = f.probe(t, 64, f.dst)
	// Echo reply 64; push LSE 255; pop min(64, 254) = 64; r1 -> 63.
	if got.IP.TTL != 63 {
		t.Errorf("juniper echo through return tunnel = %d, want 63", got.IP.TTL)
	}
}

func TestUHPDisposition(t *testing.T) {
	f := buildChain(t)
	installLSP(f, false)
	// Rewire as UHP: r2 swaps to explicit null, r3 pops locally.
	r2b := f.r2.Ifaces()[1]
	f.r2.InstallLFIB(&LFIBEntry{InLabel: 100, NextHops: []LabelHop{{Out: r2b, Label: OutLabelExplicitNull}}})
	f.r3.InstallLFIB(&LFIBEntry{InLabel: packet.LabelExplicitNull, PopLocal: true})
	f.r3.cfg.UHP = true

	// TTL=2: r1 pushes with IP TTL 1; tunnel invisible; r3 pops with no
	// expiry check and forwards the TTL-0 packet to the destination, which
	// answers: tunnel AND egress hidden (Fig. 4d).
	got := f.probe(t, 2, f.h.Addr())
	if got == nil || got.ICMP.Type != packet.ICMPEchoReply {
		t.Fatalf("UHP ttl=2 reply = %v, want echo reply from destination", got)
	}
	if got.IP.Src != f.h.Addr() {
		t.Errorf("reply src = %s, want destination host", got.IP.Src)
	}
}

func TestLabeledPacketDroppedWithoutMPLS(t *testing.T) {
	f := buildChain(t)
	installLSP(f, false)
	f.r2.cfg.MPLSEnabled = false
	got := f.probe(t, 5, f.dst)
	if got != nil {
		t.Errorf("labeled packet crossed a non-MPLS router: %v", got)
	}
	if f.r2.Stats.Dropped == 0 {
		t.Error("drop not counted")
	}
}

func TestUnknownLabelDropped(t *testing.T) {
	f := buildChain(t)
	installLSP(f, false)
	f.r1.InstallBinding(&Binding{FEC: netaddr.HostPrefix(f.dst), NextHops: []LabelHop{{Out: f.r1.Ifaces()[1], Label: 999}}})
	got := f.probe(t, 5, f.dst)
	if got != nil {
		t.Errorf("packet with unknown label delivered: %v", got)
	}
}

func TestECMPStableUnderParisFlowID(t *testing.T) {
	f := buildChain(t)
	// Give r1 two "paths" (same physical link twice, distinguishable via
	// gateway) and check the flow hash picks deterministically.
	p1 := netaddr.MustParsePrefix("10.0.1.0/30")
	rt := &Route{Origin: OriginIGP, NextHops: []NextHop{
		{Out: f.r1.Ifaces()[1], Gateway: p1.Nth(2)},
		{Out: f.r1.Ifaces()[1], Gateway: p1.Nth(2)},
	}}
	pkt := &packet.Packet{
		IP:   packet.IPv4{TTL: 9, Protocol: packet.ProtoICMP, Src: f.vp.Addr(), Dst: f.dst},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 7, Seq: 1},
	}
	first := pickNextHop(rt.NextHops, pkt)
	for i := 0; i < 10; i++ {
		pkt.ICMP.Seq = uint16(i) // Paris: seq may vary, ID constant
		if got := pickNextHop(rt.NextHops, pkt); got != first {
			t.Fatal("ECMP choice changed for constant flow ID")
		}
	}
}

func TestRouteWithoutNextHopsPanics(t *testing.T) {
	r := New("x", Cisco, Config{})
	defer func() {
		if recover() == nil {
			t.Error("no panic for empty next hops")
		}
	}()
	r.InstallRoute(netaddr.MustParsePrefix("10.0.0.0/8"), &Route{})
}

func TestPersonalitySignatures(t *testing.T) {
	cases := []struct {
		p      Personality
		te, er uint8
	}{
		{Cisco, 255, 255},
		{Juniper, 255, 64},
		{JunosE, 128, 128},
		{Legacy, 64, 64},
	}
	for _, c := range cases {
		te, er := c.p.Signature()
		if te != c.te || er != c.er {
			t.Errorf("%s signature = <%d,%d>, want <%d,%d>", c.p.Name, te, er, c.te, c.er)
		}
	}
}

func TestOriginateWithoutRouteDrops(t *testing.T) {
	r := New("lonely", Cisco, Config{})
	pkt := &packet.Packet{
		IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Dst: netaddr.MustParseAddr("203.0.113.1")},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest},
	}
	r.Originate(nil, pkt)
	if r.Stats.Dropped != 1 {
		t.Errorf("Dropped = %d", r.Stats.Dropped)
	}
}

func TestNestedStackThroughUHPEgress(t *testing.T) {
	// A two-label stack arriving at a PopLocal router: the outer pop must
	// expose the inner label and keep switching (segment-routing through a
	// UHP egress).
	f := buildChain(t)
	for _, r := range []*Router{f.r1, f.r2, f.r3} {
		cfg := r.Config()
		cfg.MPLSEnabled = true
		r.SetConfig(cfg)
	}
	// r2: LFIB explicit-null -> PopLocal; plus label 300 -> pop to r3.
	f.r2.InstallLFIB(&LFIBEntry{InLabel: packet.LabelExplicitNull, PopLocal: true})
	f.r2.InstallLFIB(&LFIBEntry{InLabel: 300, NextHops: []LabelHop{{Out: f.r2.Ifaces()[1], Label: OutLabelImplicitNull}}})
	// Send from vp: r1 imposes [explicit-null, 300] toward r2.
	f.r1.InstallBinding(&Binding{
		FEC:      netaddr.MustParsePrefix("10.0.3.0/30"),
		NextHops: []LabelHop{{Out: f.r1.Ifaces()[1], Label: OutLabelExplicitNull, Under: []uint32{300}}},
	})
	got := f.probe(t, 64, f.h.Addr())
	if got == nil || got.ICMP.Type != packet.ICMPEchoReply {
		t.Fatalf("nested stack did not deliver: %v", got)
	}
}

func TestRateLimiterAllowsAfterInterval(t *testing.T) {
	f := buildChain(t)
	cfg := f.r2.Config()
	cfg.ICMPInterval = 3 * time.Millisecond
	f.r2.SetConfig(cfg)
	// First expiry answered.
	if got := f.probe(t, 2, f.h.Addr()); got == nil {
		t.Fatal("first TE suppressed")
	}
	// Virtual time advances ~8ms per probe round (4 links each way), so
	// the next expiry is past the interval and must be answered too.
	if got := f.probe(t, 2, f.h.Addr()); got == nil {
		t.Fatal("TE suppressed after the interval elapsed")
	}
}

func TestWalkRoutes(t *testing.T) {
	f := buildChain(t)
	n := 0
	f.r1.WalkRoutes(func(p netaddr.Prefix, rt *Route) bool {
		n++
		return true
	})
	if n < 4 {
		t.Errorf("WalkRoutes visited %d routes", n)
	}
	// Early stop.
	n = 0
	f.r1.WalkRoutes(func(netaddr.Prefix, *Route) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestIsLocalAndGetRoute(t *testing.T) {
	f := buildChain(t)
	if !f.r3.IsLocal(f.dst) {
		t.Error("loopback not local")
	}
	if f.r3.IsLocal(f.vp.Addr()) {
		t.Error("foreign address local")
	}
	if _, ok := f.r1.GetRoute(netaddr.MustParsePrefix("10.0.0.0/30")); !ok {
		t.Error("GetRoute missed connected route")
	}
	if _, ok := f.r1.GetRoute(netaddr.MustParsePrefix("10.0.0.0/29")); ok {
		t.Error("GetRoute used LPM")
	}
}

func TestClearMPLSRemovesState(t *testing.T) {
	f := buildChain(t)
	installLSP(f, false)
	f.r1.ClearMPLS()
	f.r2.ClearMPLS()
	// With label state gone the path is plain IP again: TTL=3 expires at
	// r3 (3 IP hops).
	got := f.probe(t, 3, f.h.Addr())
	if got == nil || got.IP.Src != netaddr.MustParseAddr("10.0.2.2") {
		t.Fatalf("after ClearMPLS: %v", got)
	}
}

func TestMPLSExpiryUnderStackedLabels(t *testing.T) {
	// A two-label packet expires at a popping LSR: the time-exceeded must
	// ride the REMAINING stack to that segment's end before returning.
	f := buildChain(t)
	for _, r := range []*Router{f.r1, f.r2, f.r3} {
		cfg := r.Config()
		cfg.MPLSEnabled = true
		r.SetConfig(cfg)
	}
	// r1 imposes [outer 300, inner explicit-null]: r2 pops the outer
	// (PHP), the inner rides to the egress r3, which disposes it (UHP
	// style). A TTL=2 probe expires at r2 holding the 2-deep stack; its
	// time-exceeded must ride the remaining inner label to r3 and only
	// then route back.
	f.r1.InstallBinding(&Binding{
		FEC:      netaddr.MustParsePrefix("10.0.3.0/30"),
		NextHops: []LabelHop{{Out: f.r1.Ifaces()[1], Label: 300, Under: []uint32{packet.LabelExplicitNull}}},
	})
	f.r2.InstallLFIB(&LFIBEntry{InLabel: 300, NextHops: []LabelHop{{Out: f.r2.Ifaces()[1], Label: OutLabelImplicitNull}}})
	f.r3.InstallLFIB(&LFIBEntry{InLabel: packet.LabelExplicitNull, PopLocal: true})
	got := f.probe(t, 2, f.h.Addr()) // r1 decrements to 1, pushes LSE TTL 1 -> expires at r2
	if got == nil {
		t.Fatal("no reply")
	}
	if got.ICMP.Type != packet.ICMPTimeExceeded || got.IP.Src != netaddr.MustParseAddr("10.0.1.2") {
		t.Fatalf("reply = %v, want TE from r2", got)
	}
	// The quote carries the full received stack.
	if got.ICMP.Ext == nil || len(got.ICMP.Ext.LabelStack) != 2 {
		t.Fatalf("quoted stack = %+v, want 2 entries", got.ICMP.Ext)
	}
}

func TestUHPDispositionWithPropagate(t *testing.T) {
	// UHP egress with ttl-propagate behaves like an IP hop: min copy plus
	// expiry check, so the egress appears in traces.
	f := buildChain(t)
	for _, r := range []*Router{f.r1, f.r2, f.r3} {
		cfg := r.Config()
		cfg.MPLSEnabled = true
		cfg.TTLPropagate = true
		r.SetConfig(cfg)
	}
	f.r1.InstallBinding(&Binding{
		FEC:      netaddr.MustParsePrefix("10.0.3.0/30"),
		NextHops: []LabelHop{{Out: f.r1.Ifaces()[1], Label: 100}},
	})
	f.r2.InstallLFIB(&LFIBEntry{InLabel: 100, NextHops: []LabelHop{{Out: f.r2.Ifaces()[1], Label: OutLabelExplicitNull}}})
	f.r3.InstallLFIB(&LFIBEntry{InLabel: packet.LabelExplicitNull, PopLocal: true})
	f.r3.cfg.UHP = true

	// TTL=3: r1 (3->2, push LSE 2), r2 (LSE 1, swap to null), r3: pop,
	// min(IP 2, LSE 0)=0 -> expire AT the egress: visible.
	got := f.probe(t, 3, f.h.Addr())
	if got == nil || got.ICMP.Type != packet.ICMPTimeExceeded {
		t.Fatalf("reply = %v, want TE", got)
	}
	if got.IP.Src != netaddr.MustParseAddr("10.0.2.2") {
		t.Errorf("TE from %s, want the UHP egress r3", got.IP.Src)
	}
	// And the destination still answers at TTL 4.
	got = f.probe(t, 4, f.h.Addr())
	if got == nil || got.ICMP.Type != packet.ICMPEchoReply {
		t.Fatalf("ttl=4 = %v, want echo from h", got)
	}
}

func TestUHPDispositionLocalDelivery(t *testing.T) {
	// A probe whose destination IS the UHP egress: pop then local answer.
	f := buildChain(t)
	for _, r := range []*Router{f.r1, f.r2, f.r3} {
		cfg := r.Config()
		cfg.MPLSEnabled = true
		r.SetConfig(cfg)
	}
	f.r1.InstallBinding(&Binding{
		FEC:      netaddr.HostPrefix(f.dst),
		NextHops: []LabelHop{{Out: f.r1.Ifaces()[1], Label: 100}},
	})
	f.r2.InstallLFIB(&LFIBEntry{InLabel: 100, NextHops: []LabelHop{{Out: f.r2.Ifaces()[1], Label: OutLabelExplicitNull}}})
	f.r3.InstallLFIB(&LFIBEntry{InLabel: packet.LabelExplicitNull, PopLocal: true})
	got := f.probe(t, 64, f.dst)
	if got == nil || got.ICMP.Type != packet.ICMPEchoReply || got.IP.Src != f.dst {
		t.Fatalf("reply = %v, want echo from the egress loopback", got)
	}
}
