// Package wirefmt is the low-level binary layer under the snapshot wire
// codec and the distributed campaign protocol: hand-rolled little-endian
// scalar encoding into an append-grown buffer, plus length-prefixed
// sections with per-section CRC-32C checksums.
//
// The design constraints come from the codec's budget (encode+decode of a
// Large fabric must cost no more than ~2x a structural Snapshot, i.e. it
// has to move arena slabs at memcpy-like speed):
//
//   - zero reflection: every field is written and read by explicit code;
//   - zero per-field allocation: the Writer appends to one buffer, the
//     Reader sub-slices it;
//   - corruption is an error, never a panic: the Reader carries a sticky
//     error, bounds-checks every read, and verifies a section's checksum
//     before handing its payload to the caller, so a flipped bit surfaces
//     as a *ChecksumError and a truncated blob as ErrTruncated.
//
// Section framing is [u32 id][u64 len][payload][u32 crc32c(payload)].
// The id makes section order self-describing (a decoder asks for the
// section it expects and fails loudly on mismatch), the length lets a
// reader skip or bound a section without parsing it, and the trailing
// checksum covers exactly the payload bytes.
package wirefmt

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// castagnoli is the CRC-32C polynomial table; hardware-accelerated on
// amd64/arm64, which matters at ~50MB per Large snapshot.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTruncated is the sticky error set when a read runs past the end of
// the buffer.
var ErrTruncated = errors.New("wirefmt: truncated input")

// ChecksumError reports a section whose payload bytes do not match the
// recorded CRC-32C.
type ChecksumError struct {
	Section uint32
	Want    uint32 // checksum recorded in the blob
	Got     uint32 // checksum computed over the payload
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("wirefmt: section %d checksum mismatch: recorded %#x, computed %#x", e.Section, e.Want, e.Got)
}

// Writer appends little-endian scalars to Buf. The zero value is ready to
// use; callers that know the final size can pre-allocate Buf's capacity.
type Writer struct {
	Buf []byte
}

func (w *Writer) U8(v uint8) { w.Buf = append(w.Buf, v) }

func (w *Writer) U16(v uint16) {
	w.Buf = append(w.Buf, byte(v), byte(v>>8))
}

func (w *Writer) U32(v uint32) {
	w.Buf = append(w.Buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (w *Writer) U64(v uint64) {
	w.Buf = append(w.Buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func (w *Writer) I32(v int32) { w.U32(uint32(v)) }
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

func (w *Writer) Bool(v bool) {
	if v {
		w.Buf = append(w.Buf, 1)
	} else {
		w.Buf = append(w.Buf, 0)
	}
}

// Bytes appends raw bytes with no length prefix; the caller's schema must
// make the length recoverable.
func (w *Writer) Bytes(b []byte) { w.Buf = append(w.Buf, b...) }

// String appends a u32 length prefix followed by the string bytes.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.Buf = append(w.Buf, s...)
}

// BeginSection opens a framed section: it appends the id and a length
// placeholder and returns a mark identifying the payload start. Sections
// may not nest (the mark is a plain offset; interleaved Begin/End would
// corrupt the frame).
func (w *Writer) BeginSection(id uint32) int {
	w.U32(id)
	w.U64(0) // length, patched by EndSection
	return len(w.Buf)
}

// EndSection closes the section opened at mark: it patches the length
// prefix and appends the CRC-32C of the payload written since.
func (w *Writer) EndSection(mark int) {
	payload := w.Buf[mark:]
	n := uint64(len(payload))
	le := w.Buf[mark-8 : mark]
	le[0], le[1], le[2], le[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	le[4], le[5], le[6], le[7] = byte(n>>32), byte(n>>40), byte(n>>48), byte(n>>56)
	w.U32(crc32.Checksum(payload, castagnoli))
}

// Reader consumes a buffer written by Writer. All reads are bounds-checked
// against a sticky error: after the first failure every subsequent read
// returns the zero value, so decoders can run a straight-line field
// sequence and check Err once per section.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps b without copying.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the sticky error, if any.
func (r *Reader) Err() error { return r.err }

// Fail sets the sticky error if none is set; decoders use it to surface
// semantic errors (bad enum value, index out of range) through the same
// channel as framing errors.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if len(r.buf)-r.off < n {
		r.err = ErrTruncated
		return false
	}
	return true
}

func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *Reader) U16() uint16 {
	if !r.need(2) {
		return 0
	}
	b := r.buf[r.off:]
	r.off += 2
	return uint16(b[0]) | uint16(b[1])<<8
}

func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	b := r.buf[r.off:]
	r.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	b := r.buf[r.off:]
	r.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (r *Reader) I32() int32 { return int32(r.U32()) }
func (r *Reader) I64() int64 { return int64(r.U64()) }

var errBadBool = errors.New("wirefmt: bool byte not 0 or 1")

func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail(errBadBool)
		return false
	}
}

// Bytes returns the next n bytes as a sub-slice of the underlying buffer
// (no copy; the caller must not retain it past the buffer's lifetime
// unless it copies).
func (r *Reader) Bytes(n int) []byte {
	if n < 0 || !r.need(n) {
		if r.err == nil {
			r.err = ErrTruncated
		}
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

// String reads a u32-length-prefixed string.
func (r *Reader) String() string {
	n := r.U32()
	if uint64(n) > uint64(r.Len()) {
		r.Fail(ErrTruncated)
		return ""
	}
	return string(r.Bytes(int(n)))
}

// Section reads the next framed section, verifies that its id matches and
// that its payload checksums clean, and returns a Reader over the payload.
// On any failure the sticky error is set and the returned Reader carries
// it too, so straight-line decoders stay panic-free.
func (r *Reader) Section(id uint32) *Reader {
	got := r.U32()
	n := r.U64()
	if r.err != nil {
		return &Reader{err: r.err}
	}
	if got != id {
		r.Fail(fmt.Errorf("wirefmt: expected section %d, found %d", id, got))
		return &Reader{err: r.err}
	}
	// +4 for the trailing checksum; compare in uint64 to dodge overflow on
	// a hostile length.
	if n+4 < n || uint64(r.Len()) < n+4 {
		r.Fail(ErrTruncated)
		return &Reader{err: r.err}
	}
	payload := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	want := r.U32()
	if sum := crc32.Checksum(payload, castagnoli); sum != want {
		r.Fail(&ChecksumError{Section: id, Want: want, Got: sum})
		return &Reader{err: r.err}
	}
	return &Reader{buf: payload}
}
