package campaign

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"

	"wormhole/internal/gen"
)

// dumpCampaign renders every deterministic campaign output byte-for-byte:
// records (traces, candidates, echo TTLs), revelations, fingerprints, the
// corrected graph, and the probe accounting. Worker counts, scheduling,
// and wall-clock must never show up in this dump.
func dumpCampaign(t *testing.T, c *Campaign) string {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "targets=%d probes=%d\n", len(c.Targets), c.Probes)
	for i, rec := range c.Records {
		fmt.Fprintf(&sb, "rec %d vp=%s dst=%s reached=%v hops=", i, rec.VP.Host.Name(), rec.Trace.Dst, rec.Trace.Reached)
		for _, h := range rec.Trace.Hops {
			fmt.Fprintf(&sb, "[%d %s rttl=%d t=%d c=%d mpls=%d]", h.ProbeTTL, h.Addr, h.ReplyTTL, h.ICMPType, h.ICMPCode, len(h.MPLS))
		}
		fmt.Fprintf(&sb, " echoTTL=%d", rec.EgressEchoTTL)
		if rec.Candidate != nil {
			fmt.Fprintf(&sb, " cand=%s->%s as=%d", rec.Candidate.Ingress.Addr, rec.Candidate.Egress.Addr, rec.CandidateAS)
		}
		if rec.Revelation != nil {
			fmt.Fprintf(&sb, " rev=%s->%s %v tech=%s probes=%d steps=%v",
				rec.Revelation.Ingress, rec.Revelation.Egress, rec.Revelation.Hops,
				rec.Revelation.Technique, rec.Revelation.Probes, rec.Revelation.Steps)
		}
		sb.WriteByte('\n')
	}
	var fpa []string
	for a, r := range c.Fingerprints {
		fpa = append(fpa, fmt.Sprintf("fp %s sig=%v class=%v te=%d echo=%d vp=%s",
			a, r.Signature, r.Class, r.TEReplyTTL, r.EchoReplyTTL, c.FingerprintVP[a].Host.Name()))
	}
	sort.Strings(fpa)
	sb.WriteString(strings.Join(fpa, "\n"))
	sb.WriteByte('\n')
	for i, rev := range c.Revelations() {
		fmt.Fprintf(&sb, "revelation %d %s->%s %v %s\n", i, rev.Ingress, rev.Egress, rev.Hops, rev.Technique)
	}
	var dot strings.Builder
	if err := c.CorrectedGraph().WriteDOT(&dot, "g", nil); err != nil {
		t.Fatal(err)
	}
	sb.WriteString(dot.String())
	return sb.String()
}

// TestParallelDeterminismGolden is the headline test for the parallel
// engine: the same seeded campaign run serially and with Workers=1,2,8
// (and with per-target sharding) produces byte-identical Records,
// Revelations, Fingerprints, and CorrectedGraph output. Both replica
// paths are exercised — the structural snapshot (the fast path) and the
// generator rebuild (its validation oracle) must agree with the serial
// engine and therefore with each other.
func TestParallelDeterminismGolden(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HDNThreshold = 6

	serial := Run(testInternet(t, 101), cfg)
	want := dumpCampaign(t, serial)
	if len(serial.Records) == 0 || len(serial.Revelations()) == 0 {
		t.Fatalf("seed yields a trivial campaign: %d records, %d revelations",
			len(serial.Records), len(serial.Revelations()))
	}

	for _, pcfg := range []ParallelConfig{
		{Workers: 1},
		{Workers: 2},
		{Workers: 8},
		{Workers: 1, Replica: ReplicaRebuild},
		{Workers: 2, Replica: ReplicaRebuild},
		{Workers: 8, Replica: ReplicaRebuild},
		{Workers: 4, ShardBy: ShardByTarget},
	} {
		name := fmt.Sprintf("workers=%d shardBy=%s replica=%s", pcfg.Workers, pcfg.ShardBy, pcfg.Replica)
		par, err := RunParallel(testInternet(t, 101), cfg, pcfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := dumpCampaign(t, par)
		if pcfg.ShardBy == ShardByTarget {
			// Finer shards redo per-team fingerprint/revelation dedup, so
			// only the probe count may legitimately differ.
			got = stripProbesLine(got)
			if want2 := stripProbesLine(want); got != want2 {
				t.Errorf("%s: output diverged from serial engine\n%s", name, firstDiff(want2, got))
			}
			continue
		}
		if got != want {
			t.Errorf("%s: output diverged from serial engine\n%s", name, firstDiff(want, got))
		}
	}
}

func stripProbesLine(s string) string {
	i := strings.IndexByte(s, '\n')
	return s[i+1:]
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  serial:   %s\n  parallel: %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line count: serial %d, parallel %d", len(wl), len(gl))
}

// TestParallelShardStats checks the per-worker stats hook: every shard
// reports its team, targets, and probe accounting, and the shard probes
// plus bootstrap cover the campaign total.
func TestParallelShardStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HDNThreshold = 6
	c, err := RunParallel(testInternet(t, 101), cfg, ParallelConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers != 3 && c.Workers != len(c.Shards) {
		t.Errorf("Workers = %d with %d shards", c.Workers, len(c.Shards))
	}
	var shardProbes uint64
	targets := 0
	for i, s := range c.Shards {
		if s.Shard != i {
			t.Errorf("shard %d has index %d", i, s.Shard)
		}
		if s.Targets == 0 || s.Probes == 0 {
			t.Errorf("shard %d reports no work: %+v", i, s)
		}
		if s.Replies == 0 || s.Replies > s.Probes {
			t.Errorf("shard %d replies %d vs probes %d", i, s.Replies, s.Probes)
		}
		if s.Elapsed <= 0 || s.VirtualElapsed <= 0 {
			t.Errorf("shard %d has no timing: %+v", i, s)
		}
		if s.Worker < 0 || s.Worker >= c.Workers {
			t.Errorf("shard %d ran on worker %d of %d", i, s.Worker, c.Workers)
		}
		shardProbes += s.Probes
		targets += s.Targets
	}
	if targets != len(c.Targets) {
		t.Errorf("shards cover %d targets, campaign has %d", targets, len(c.Targets))
	}
	if c.Probes <= shardProbes {
		t.Errorf("campaign probes %d must exceed shard probes %d (bootstrap)", c.Probes, shardProbes)
	}
}

// TestFirstTTLConsistentAcrossTargets is the regression test for the
// shared-state bug the parallel driver exposed: FirstTTL used to be
// mutated per-target inside the probe loop; it is now campaign bootstrap
// state, so every target probed from the same VP — first or hundredth —
// starts at the configured TTL, serial or parallel.
func TestFirstTTLConsistentAcrossTargets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HDNThreshold = 6

	check := func(name string, c *Campaign) {
		t.Helper()
		perVP := make(map[string]int)
		for _, rec := range c.Records {
			if len(rec.Trace.Hops) == 0 {
				continue
			}
			first := int(rec.Trace.Hops[0].ProbeTTL)
			if first != int(cfg.FirstTTL) {
				t.Fatalf("%s: trace to %s started at TTL %d, want %d", name, rec.Trace.Dst, first, cfg.FirstTTL)
			}
			perVP[rec.VP.Host.Name()]++
		}
		multi := false
		for _, n := range perVP {
			if n >= 2 {
				multi = true
			}
		}
		if !multi {
			t.Fatalf("%s: no VP probed two targets; test is vacuous", name)
		}
		// Every VP ends the campaign with the configured FirstTTL, even
		// ones that probed no target (they may still run revelations).
		for _, vp := range c.In.VPs {
			if vp.Prober.FirstTTL != cfg.FirstTTL {
				t.Errorf("%s: VP %s left with FirstTTL %d", name, vp.Host.Name(), vp.Prober.FirstTTL)
			}
		}
	}

	check("serial", Run(testInternet(t, 101), cfg))
	par, err := RunParallel(testInternet(t, 101), cfg, ParallelConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	check("parallel", par)
}

// TestParallelStress hammers the worker pool with a small Internet; under
// `go test -race` it runs 10x the iterations so the detector sees many
// pool lifecycles (this is the stress half of the race tier). Each
// iteration runs three campaigns on the same Internet — a cold one that
// builds the replica pool and shared reply table, a warm one that reuses
// both (the shared-cache adoption path under concurrent workers), and,
// after a mid-campaign-style control-plane mutation on the source fabric,
// a third that must flush the shared epochs and rebuild the pool.
func TestParallelStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short")
	}
	p := gen.DefaultParams(41)
	p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 2, 3, 6, 3
	p.MPLSFrac, p.NoPropagateFrac, p.UHPFrac = 1.0, 0.8, 0
	iters := 1
	if raceEnabled {
		iters = 10
	}
	workers := runtime.GOMAXPROCS(0) * 2 // oversubscribe the pool
	for i := 0; i < iters; i++ {
		in, err := gen.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			if round == 2 {
				// Simulate the mutated() hook firing between campaigns: the
				// owner flushes the shared table and the replica pool drops
				// its now-stale entries.
				in.Net.InvalidateFlowCache()
			}
			c, err := RunParallel(in, DefaultConfig(), ParallelConfig{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Records) != len(c.Targets) {
				t.Fatalf("iter %d round %d: %d records for %d targets", i, round, len(c.Records), len(c.Targets))
			}
			if c.Workers != workers {
				t.Fatalf("iter %d round %d: pool size %d, want %d", i, round, c.Workers, workers)
			}
		}
	}
}
