package campaign

import (
	"fmt"
	"sync"
	"testing"

	"wormhole/internal/netaddr"
)

// TestFeistelBijection pins the scheduler's coverage guarantee at the
// permutation level: for any universe size and seed, walk() maps [0, n)
// onto [0, n) exactly once.
func TestFeistelBijection(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16, 100, 1000, 4097} {
		for _, seed := range []int64{0, 1, 42, -7} {
			f := newFeistel(n, seed)
			seen := make([]bool, n)
			for i := 0; i < n; i++ {
				x := f.walk(uint64(i))
				if x >= uint64(n) {
					t.Fatalf("n=%d seed=%d: walk(%d)=%d out of range", n, seed, i, x)
				}
				if seen[x] {
					t.Fatalf("n=%d seed=%d: walk(%d)=%d already hit", n, seed, i, x)
				}
				seen[x] = true
			}
		}
	}
}

// fakeSpace is a synthetic target space: addresses 1..n, four targets
// per /24 budget prefix.
type fakeSpace struct{ n int }

func (f fakeSpace) Len() int                { return f.n }
func (f fakeSpace) Addr(i int) netaddr.Addr { return netaddr.Addr(i + 1) }
func (f fakeSpace) Prefix(i int) netaddr.Prefix {
	return netaddr.MustPrefixFrom(netaddr.Addr((i/4)<<8), 24)
}

func newTestStream(space TargetSpace, cap, budget, spread, vps int, seed int64) *targetStream {
	return &targetStream{
		space:  space,
		perm:   newFeistel(space.Len(), seed),
		n:      uint64(space.Len()),
		cap:    cap,
		budget: budget,
		used:   make(map[netaddr.Prefix]int),
		spread: spread,
		vps:    vps,
	}
}

func drainAll(s *targetStream, batch int) []streamJob {
	var jobs []streamJob
	for {
		b := s.nextBatch(batch)
		if len(b) == 0 {
			return jobs
		}
		jobs = append(jobs, b...)
	}
}

// TestStreamBatchInvariance pins that the accepted job sequence is
// independent of the drain granularity: batch sizes 1, 7, and one
// all-at-once drain produce the identical concatenated sequence.
func TestStreamBatchInvariance(t *testing.T) {
	want := drainAll(newTestStream(fakeSpace{137}, 40, 2, 2, 5, 99), 137*2)
	for _, batch := range []int{1, 7, 64} {
		got := drainAll(newTestStream(fakeSpace{137}, 40, 2, 2, 5, 99), batch)
		if len(got) != len(want) {
			t.Fatalf("batch=%d: %d jobs, want %d", batch, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: job %d = %+v, want %+v", batch, i, got[i], want[i])
			}
		}
	}
}

// TestStreamCoverageAndBudget pins the cursor's selection semantics:
// with no cap or budget every target is accepted exactly once with the
// serial sweep's VP spread discipline; with a budget no prefix exceeds
// it; with a cap exactly cap targets are accepted.
func TestStreamCoverageAndBudget(t *testing.T) {
	const n, vps, spread = 103, 5, 2
	jobs := drainAll(newTestStream(fakeSpace{n}, 0, 0, spread, vps, 7), 16)
	if len(jobs) != n*spread {
		t.Fatalf("%d jobs, want %d", len(jobs), n*spread)
	}
	seen := map[netaddr.Addr]int{}
	for i, j := range jobs {
		seq := i / spread
		if j.seq != seq {
			t.Fatalf("job %d: seq %d, want %d", i, j.seq, seq)
		}
		if want := (seq + i%spread) % vps; j.vp != want {
			t.Fatalf("job %d: vp %d, want %d", i, j.vp, want)
		}
		seen[j.dst]++
	}
	if len(seen) != n {
		t.Fatalf("%d distinct targets, want %d", len(seen), n)
	}
	for a, c := range seen {
		if c != spread {
			t.Fatalf("target %s visited %d times, want %d", a, c, spread)
		}
	}

	jobs = drainAll(newTestStream(fakeSpace{n}, 0, 2, 1, vps, 7), 16)
	perPrefix := map[netaddr.Prefix]int{}
	sp := fakeSpace{n}
	for _, j := range jobs {
		perPrefix[sp.Prefix(int(j.dst)-1)]++ // Addr(i) = i+1
	}
	for p, c := range perPrefix {
		if c > 2 {
			t.Fatalf("prefix %s got %d targets, budget 2", p, c)
		}
	}

	if jobs = drainAll(newTestStream(fakeSpace{n}, 17, 0, 1, vps, 7), 16); len(jobs) != 17 {
		t.Fatalf("cap=17 accepted %d targets", len(jobs))
	}
}

// TestStreamWorkStealingCoverage pins the parallel drain's exactly-once
// contract: batches pulled concurrently by competing consumers cover the
// same (vp, target) job multiset as a serial drain — nothing dropped,
// nothing probed twice, whatever the steal order.
func TestStreamWorkStealingCoverage(t *testing.T) {
	want := drainAll(newTestStream(fakeSpace{211}, 0, 0, 2, 5, 3), 8)

	work := make(chan []streamJob, 4)
	go func() {
		s := newTestStream(fakeSpace{211}, 0, 0, 2, 5, 3)
		for {
			b := s.nextBatch(8)
			if len(b) == 0 {
				break
			}
			work <- b
		}
		close(work)
	}()
	var mu sync.Mutex
	got := map[string]int{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range work {
				mu.Lock()
				for _, j := range b {
					got[fmt.Sprintf("%d/%d/%s", j.seq, j.vp, j.dst)]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(got) != len(want) {
		t.Fatalf("stolen drain saw %d distinct jobs, serial %d", len(got), len(want))
	}
	for _, j := range want {
		k := fmt.Sprintf("%d/%d/%s", j.seq, j.vp, j.dst)
		if got[k] != 1 {
			t.Fatalf("job %s visited %d times", k, got[k])
		}
	}
}

// TestStreamedDeterminismGolden is the scheduler's engine-equivalence
// golden: with Stream on (multiple batches, a per-prefix budget, and
// both sampling caps engaged), the serial engine and the work-stealing
// parallel drain at several worker counts — on both replica paths —
// produce byte-identical campaign output.
func TestStreamedDeterminismGolden(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HDNThreshold = 6
	cfg.Stream = true
	cfg.PrefixBudget = 3
	cfg.StreamBatch = 4
	cfg.StreamSeed = 1234
	cfg.MaxBootstrapTargets = 60
	cfg.MaxTargets = 40

	serial := Run(testInternet(t, 101), cfg)
	want := dumpCampaign(t, serial)
	if len(serial.Records) == 0 {
		t.Fatal("streamed campaign yields no records")
	}

	for _, pcfg := range []ParallelConfig{
		{Workers: 1},
		{Workers: 2},
		{Workers: 8},
		{Workers: 2, Replica: ReplicaRebuild},
		{Workers: 8, Replica: ReplicaRebuild},
	} {
		name := fmt.Sprintf("workers=%d replica=%s", pcfg.Workers, pcfg.Replica)
		par, err := RunParallel(testInternet(t, 101), cfg, pcfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := dumpCampaign(t, par); got != want {
			t.Errorf("%s: streamed output diverged from serial engine\n%s", name, firstDiff(want, got))
		}
	}
}
