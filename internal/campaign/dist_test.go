package campaign_test

// Distributed-engine contracts: the multi-process campaign is
// byte-identical to the serial engine at every worker count and in both
// replica modes, and a worker dying mid-campaign yields a typed error —
// promptly, with partial results discarded — never a hang or a corrupted
// merge. Workers here are goroutines driving the real socket protocol;
// the check.sh smoke exercises true OS processes through the CLI.

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"wormhole/internal/campaign"
	"wormhole/internal/experiments"
	"wormhole/internal/gen"
	"wormhole/internal/tracefile"
)

func distWorld(t *testing.T) *gen.Internet {
	t.Helper()
	p := gen.DefaultParams(404)
	p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 2, 4, 8, 4
	p.MPLSFrac, p.NoPropagateFrac, p.UHPFrac = 1.0, 0.8, 0
	in, err := gen.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// goSpawn launches in-process workers that dial the coordinator's socket
// and run the full ServeWorker protocol.
func goSpawn(i int, network, addr string) error {
	go func() {
		conn, err := net.Dial(network, addr)
		if err != nil {
			return
		}
		_ = campaign.ServeWorker(conn)
	}()
	return nil
}

// datasetBytes renders the full campaign output — records, candidates,
// revelations, fingerprints — to its canonical serialized form.
func datasetBytes(t *testing.T, c *campaign.Campaign) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tracefile.Write(&buf, c.Dataset("golden")); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func runDist(t *testing.T, in *gen.Internet, cfg campaign.Config, workers int, mode campaign.ReplicaMode) *campaign.Campaign {
	t.Helper()
	c, err := campaign.RunDistributed(in, cfg, campaign.DistConfig{
		Workers: workers,
		Replica: mode,
		Spawn:   goSpawn,
	})
	if err != nil {
		t.Fatalf("distributed run (workers=%d mode=%s): %v", workers, mode, err)
	}
	return c
}

// TestDistributedGolden pins the headline contract: 1, 2, and 4 worker
// processes, in both replica modes, produce the byte-identical dataset
// the serial engine produces.
func TestDistributedGolden(t *testing.T) {
	in := distWorld(t)
	cfg := campaign.DefaultConfig()
	serial := campaign.Run(in, cfg)
	want := datasetBytes(t, serial)
	if len(serial.Records) == 0 {
		t.Fatal("serial campaign produced no records")
	}
	for _, mode := range []campaign.ReplicaMode{campaign.ReplicaSnapshot, campaign.ReplicaRebuild} {
		for _, workers := range []int{1, 2, 4} {
			c := runDist(t, in, cfg, workers, mode)
			if got := datasetBytes(t, c); !bytes.Equal(got, want) {
				t.Fatalf("workers=%d mode=%s: dataset diverges from serial", workers, mode)
			}
			if c.Probes != serial.Probes {
				t.Errorf("workers=%d mode=%s: probes %d, serial %d", workers, mode, c.Probes, serial.Probes)
			}
			if len(c.Shards) != len(serial.Shards) {
				t.Errorf("workers=%d mode=%s: %d shards, serial %d", workers, mode, len(c.Shards), len(serial.Shards))
			}
			if c.Workers != workers {
				t.Errorf("Workers = %d, want %d", c.Workers, workers)
			}
		}
	}
}

// TestDistributedChurn runs the dynamic-topology engine through the
// distributed path: each worker compiles the symbolic churn plan against
// its own replica, and the merged output still matches serial.
func TestDistributedChurn(t *testing.T) {
	in := distWorld(t)
	cfg := campaign.DefaultConfig()
	cfg.ChurnRate = 1.5
	cfg.ChurnSeed = 99
	serial := campaign.Run(in, cfg)
	want := datasetBytes(t, serial)
	c := runDist(t, in, cfg, 2, campaign.ReplicaSnapshot)
	if got := datasetBytes(t, c); !bytes.Equal(got, want) {
		t.Fatal("churned distributed dataset diverges from serial")
	}
	if serial.ChurnEvents == 0 {
		t.Skip("seed fired no churn events")
	}
	if c.ChurnEvents != serial.ChurnEvents {
		t.Errorf("churn events %d, serial %d", c.ChurnEvents, serial.ChurnEvents)
	}
}

// TestDistributedStream runs the streamed (Feistel) bootstrap scheduler
// distributed: the coordinator enumerates the accepted job sequence
// without probing and the partitioned replay matches serial.
func TestDistributedStream(t *testing.T) {
	in := distWorld(t)
	cfg := campaign.DefaultConfig()
	cfg.Stream = true
	cfg.MaxBootstrapTargets = 48
	cfg.PrefixBudget = 6
	cfg.MaxTargets = 40
	serial := campaign.Run(in, cfg)
	want := datasetBytes(t, serial)
	for _, workers := range []int{2, 3} {
		c := runDist(t, in, cfg, workers, campaign.ReplicaSnapshot)
		if got := datasetBytes(t, c); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: streamed distributed dataset diverges from serial", workers)
		}
	}
}

// TestDistributedLargeGolden is the acceptance pin at the Large rung:
// a 2-worker distributed campaign over a Unix socket, sweep and flow
// cache on, byte-identical to serial.
func TestDistributedLargeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("scale tier")
	}
	in, err := gen.Build(experiments.Large.Params(2024))
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.Large.CampaignConfig()
	serial := campaign.Run(in, cfg)
	want := datasetBytes(t, serial)
	c := runDist(t, in, cfg, 2, campaign.ReplicaSnapshot)
	if got := datasetBytes(t, c); !bytes.Equal(got, want) {
		t.Fatal("Large distributed dataset diverges from serial")
	}
}

// TestDistributedWorkerDeath pins the failure contract: a worker that
// dies mid-protocol produces a typed *WorkerError promptly, the partial
// campaign is discarded (nil result), and the coordinator never hangs.
func TestDistributedWorkerDeath(t *testing.T) {
	in := distWorld(t)
	cfg := campaign.DefaultConfig()
	spawn := func(i int, network, addr string) error {
		go func() {
			conn, err := net.Dial(network, addr)
			if err != nil {
				return
			}
			if i == 1 {
				// Read the session opening, then die mid-bootstrap: the
				// coordinator is owed this worker's traces and must fail
				// over EOF, not hang.
				buf := make([]byte, 4096)
				conn.Read(buf)
				time.Sleep(10 * time.Millisecond)
				conn.Close()
				return
			}
			_ = campaign.ServeWorker(conn)
		}()
		return nil
	}
	done := make(chan struct{})
	var c *campaign.Campaign
	var err error
	go func() {
		c, err = campaign.RunDistributed(in, cfg, campaign.DistConfig{
			Workers:     2,
			Spawn:       spawn,
			StepTimeout: 30 * time.Second,
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("coordinator hung after worker death")
	}
	if err == nil {
		t.Fatal("worker death produced no error")
	}
	var we *campaign.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("want *WorkerError, got %T: %v", err, err)
	}
	// Worker slots are assigned in accept order, which need not match
	// spawn order — the blamed slot just has to be a real one.
	if we.Worker < 0 || we.Worker > 1 {
		t.Errorf("blamed worker %d, want 0 or 1", we.Worker)
	}
	if c != nil {
		t.Error("partial campaign returned alongside error")
	}

	// The fabric is still usable: a follow-up serial campaign completes
	// and a fresh distributed run succeeds (no corrupted shared state).
	if after := campaign.Run(in, cfg); len(after.Records) == 0 {
		t.Error("fabric unusable after worker death")
	}
	if _, err := campaign.RunDistributed(in, cfg, campaign.DistConfig{Workers: 2, Spawn: goSpawn}); err != nil {
		t.Errorf("retry after worker death failed: %v", err)
	}
}

// TestDistributedSpawnRequired pins the config contract.
func TestDistributedSpawnRequired(t *testing.T) {
	in := distWorld(t)
	if _, err := campaign.RunDistributed(in, campaign.DefaultConfig(), campaign.DistConfig{Workers: 2}); err == nil {
		t.Fatal("nil Spawn accepted")
	}
}
