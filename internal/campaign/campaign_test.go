package campaign

import (
	"testing"
	"time"

	"wormhole/internal/gen"
	"wormhole/internal/reveal"
)

func testInternet(t *testing.T, seed int64) *gen.Internet {
	t.Helper()
	p := gen.DefaultParams(seed)
	p.NumTier1 = 2
	p.NumTransit = 5
	p.NumStub = 10
	p.NumVPs = 5
	// Force plenty of invisible tunnels so the campaign has work.
	p.MPLSFrac = 1.0
	p.NoPropagateFrac = 0.8
	p.UHPFrac = 0.0
	in, err := gen.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func runSmall(t *testing.T, seed int64) *Campaign {
	t.Helper()
	cfg := DefaultConfig()
	cfg.HDNThreshold = 6
	cfg.BootstrapSpread = 2
	return Run(testInternet(t, seed), cfg)
}

func TestCampaignEndToEnd(t *testing.T) {
	c := runSmall(t, 101)
	if c.ITDK.NumNodes() == 0 {
		t.Fatal("empty bootstrap graph")
	}
	if len(c.HDNs) == 0 {
		t.Fatal("no HDNs found despite invisible meshes")
	}
	if len(c.Targets) == 0 {
		t.Fatal("no targets selected")
	}
	if len(c.Records) != len(c.Targets) {
		t.Fatalf("records %d != targets %d", len(c.Records), len(c.Targets))
	}
	if len(c.Fingerprints) == 0 {
		t.Fatal("no fingerprints collected")
	}
	if c.Probes == 0 {
		t.Fatal("probe accounting broken")
	}
}

func TestCampaignRevealsTunnels(t *testing.T) {
	c := runSmall(t, 103)
	revs := c.Revelations()
	succeeded := 0
	for _, r := range revs {
		if r.Technique != reveal.TechNone {
			succeeded++
			// Validate against ground truth: every revealed hop must be a
			// router of the candidate AS.
			info, ok := c.In.Owner(r.Ingress)
			if !ok {
				t.Fatalf("ingress %s unknown to ground truth", r.Ingress)
			}
			for _, h := range r.Hops {
				hInfo, ok := c.In.Owner(h)
				if !ok {
					t.Errorf("revealed hop %s unknown to ground truth", h)
					continue
				}
				if hInfo.AS != info.AS {
					t.Errorf("revealed hop %s in %s, ingress in %s", h, hInfo.AS.Name, info.AS.Name)
				}
			}
		}
	}
	if succeeded == 0 {
		t.Fatalf("no tunnel revealed among %d candidates", len(revs))
	}
}

// TestRevealedHopsMatchIGPPath cross-validates revelations against the
// generator's ground truth: the revealed LSR sequence must be a real IGP
// path between ingress and egress.
func TestRevealedHopsMatchIGPPath(t *testing.T) {
	c := runSmall(t, 107)
	checked := 0
	for _, r := range c.Revelations() {
		if len(r.Hops) < 2 {
			continue
		}
		// Consecutive revealed hops must be on routers that are IGP
		// neighbors or the same router.
		prev, ok := c.In.Owner(r.Hops[0])
		if !ok {
			continue
		}
		for _, h := range r.Hops[1:] {
			cur, ok := c.In.Owner(h)
			if !ok || cur.AS != prev.AS {
				t.Errorf("revealed path leaves the AS at %s", h)
				break
			}
			if cur.Router != prev.Router {
				d, ok := cur.AS.SPF().Dist[prev.Router][cur.Router]
				if !ok || d > 2 {
					t.Errorf("revealed hops %s -> %s are %d IGP hops apart", prev.Router.Name(), cur.Router.Name(), d)
				}
			}
			prev = cur
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no multi-hop revelation in this seed")
	}
}

func TestCorrectedGraphLowersHDNDegrees(t *testing.T) {
	c := runSmall(t, 109)
	before := c.ObservedTraceGraph()
	after := c.CorrectedGraph()
	if after.NumNodes() < before.NumNodes() {
		t.Fatalf("correction lost nodes: %d -> %d", before.NumNodes(), after.NumNodes())
	}
	// The maximum degree among candidate-AS nodes should not grow, and
	// total nodes should grow (hidden LSRs added).
	if after.NumNodes() == before.NumNodes() && len(c.Revelations()) > 0 {
		t.Log("warning: correction added no nodes (tunnels may be between already-seen routers)")
	}
}

func TestCampaignWithASMapNoise(t *testing.T) {
	in := testInternet(t, 211)
	clean := Run(in, DefaultConfig())

	inNoisy := testInternet(t, 211)
	cfg := DefaultConfig()
	cfg.ASMapNoise = 0.15
	noisy := Run(inNoisy, cfg)

	// The campaign must survive a corrupted IP-to-AS mapping: probing
	// still happens and at least some tunnels are still revealed (same-AS
	// filtering just gets stricter/looser for misattributed endpoints).
	if len(noisy.Records) == 0 {
		t.Fatal("noisy campaign collected nothing")
	}
	succeeded := 0
	for _, rev := range noisy.Revelations() {
		if len(rev.Hops) > 0 {
			succeeded++
		}
	}
	if succeeded == 0 {
		t.Error("noise wiped out every revelation")
	}
	t.Logf("clean: %d revelations, noisy: %d", len(clean.Revelations()), len(noisy.Revelations()))
}

func TestRateLimitedRoutersYieldAnonymousHops(t *testing.T) {
	in := testInternet(t, 223)
	// Rate-limit every router hard: bootstrap probes come in fast bursts,
	// so some hops must go unanswered.
	for _, as := range in.ASes {
		for _, r := range as.Routers() {
			cfg := r.Config()
			cfg.ICMPInterval = 2 * time.Second
			r.SetConfig(cfg)
		}
	}
	c := Run(in, DefaultConfig())
	anon := 0
	for _, rec := range c.Records {
		for _, h := range rec.Trace.Hops {
			if h.Anonymous() {
				anon++
			}
		}
	}
	if anon == 0 {
		t.Error("no anonymous hops despite aggressive rate limiting")
	}
	if len(c.Records) == 0 {
		t.Error("campaign collapsed under rate limiting")
	}
}

func TestCampaignWithMeasuredAliases(t *testing.T) {
	in := testInternet(t, 313)
	cfg := DefaultConfig()
	cfg.MeasuredAliases = true
	c := Run(in, cfg)
	if c.ITDK.NumNodes() == 0 {
		t.Fatal("no graph")
	}
	// With measured aliases the graph has at least as many nodes as with
	// ground truth (unresolved interfaces split).
	truth := Run(testInternet(t, 313), DefaultConfig())
	if c.ITDK.NumNodes() < truth.ITDK.NumNodes() {
		t.Errorf("measured graph smaller than ground truth: %d < %d",
			c.ITDK.NumNodes(), truth.ITDK.NumNodes())
	}
	// The pipeline still reveals tunnels end to end.
	ok := 0
	for _, rev := range c.Revelations() {
		if len(rev.Hops) > 0 {
			ok++
		}
	}
	if ok == 0 {
		t.Error("no revelations with measured aliases")
	}
	t.Logf("measured: %d nodes / %d revelations; truth: %d nodes / %d revelations",
		c.ITDK.NumNodes(), len(c.Revelations()), truth.ITDK.NumNodes(), len(truth.Revelations()))
}

// TestTeamConsistency verifies Sec. 4's partitioning rule: every member
// of a set-A neighbor's neighborhood probes from the same team.
func TestTeamConsistency(t *testing.T) {
	c := runSmall(t, 131)
	// For each set-A anchor N (an HDN neighbor), N and all its neighbors
	// must have been probed from the same vantage point.
	teams := map[string]map[string]bool{} // anchor -> set of VP names
	for _, hdn := range c.HDNs {
		for _, nb := range c.ITDK.Neighbors(hdn) {
			anchor := nb.Name
			for _, rec := range c.Records {
				covered := false
				for _, a := range nb.Addrs {
					if rec.Trace.Dst == a {
						covered = true
					}
				}
				for _, nb2 := range c.ITDK.Neighbors(nb) {
					for _, a := range nb2.Addrs {
						if rec.Trace.Dst == a {
							covered = true
						}
					}
				}
				if covered {
					if teams[anchor] == nil {
						teams[anchor] = map[string]bool{}
					}
					teams[anchor][rec.VP.Host.Name()] = true
				}
			}
		}
	}
	// A neighborhood can legitimately overlap several anchors (shared
	// set-B members), so require that MOST anchors are single-team.
	single, multi := 0, 0
	for _, vps := range teams {
		if len(vps) == 1 {
			single++
		} else {
			multi++
		}
	}
	if single == 0 {
		t.Fatal("no anchor was single-team")
	}
	t.Logf("team consistency: %d single-team anchors, %d overlapping", single, multi)
}

func TestRunSeedsParallel(t *testing.T) {
	p := gen.DefaultParams(0)
	p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 2, 4, 8, 4
	p.MPLSFrac, p.NoPropagateFrac, p.UHPFrac = 1.0, 0.7, 0
	seeds := []int64{11, 22, 33, 44, 55, 66}
	sums := RunSeeds(seeds, p, DefaultConfig())
	if len(sums) != len(seeds) {
		t.Fatalf("%d summaries", len(sums))
	}
	totalRev := 0
	for i, s := range sums {
		if s.Err != nil {
			t.Fatalf("seed %d: %v", seeds[i], s.Err)
		}
		if s.Seed != seeds[i] {
			t.Errorf("slot %d carries seed %d", i, s.Seed)
		}
		if s.Nodes == 0 || s.Probes == 0 {
			t.Errorf("seed %d produced an empty summary", s.Seed)
		}
		totalRev += s.Revelations
	}
	if totalRev == 0 {
		t.Error("no revelations across any seed")
	}
	pooled := MergeFTL(sums)
	if pooled.N() != totalRevHops(sums) {
		t.Errorf("pooled FTL n=%d, want %d", pooled.N(), totalRevHops(sums))
	}
	t.Logf("6 seeds: %d revelations, pooled FTL median %d", totalRev, pooled.Median())
}

func totalRevHops(sums []Summary) int {
	n := 0
	for _, s := range sums {
		n += s.Revelations
	}
	return n
}

// TestRunSeedsDeterministicPerSeed: the same seed summarizes identically
// whatever the parallel scheduling.
func TestRunSeedsDeterministicPerSeed(t *testing.T) {
	p := gen.DefaultParams(0)
	p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 2, 4, 8, 4
	a := RunSeeds([]int64{99, 77}, p, DefaultConfig())
	b := RunSeeds([]int64{77, 99}, p, DefaultConfig())
	if a[0].Nodes != b[1].Nodes || a[0].Revelations != b[1].Revelations || a[0].Probes != b[1].Probes {
		t.Errorf("seed 99 diverged: %+v vs %+v", a[0], b[1])
	}
	if a[1].Nodes != b[0].Nodes || a[1].Revelations != b[0].Revelations {
		t.Errorf("seed 77 diverged")
	}
}
