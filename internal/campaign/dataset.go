package campaign

import "wormhole/internal/tracefile"

// Dataset converts the completed campaign into a serializable tracefile
// dataset (the paper's published-dataset role). It lives here rather than
// in tracefile so the serialization package stays a leaf: the distributed
// engine streams records between processes in the same format.
func (c *Campaign) Dataset(comment string) *tracefile.Dataset {
	ds := tracefile.NewDataset(comment)
	for _, rec := range c.Records {
		r := tracefile.Record{
			Trace:         tracefile.FromTrace(rec.Trace),
			CandidateAS:   rec.CandidateAS,
			EgressEchoTTL: rec.EgressEchoTTL,
		}
		if rec.Revelation != nil {
			rv := tracefile.FromRevelation(rec.Revelation)
			r.Revelation = &rv
		}
		ds.Records = append(ds.Records, r)
	}
	ds.Fingerprints = tracefile.FromFingerprints(c.Fingerprints)
	return ds
}
