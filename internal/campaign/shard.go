package campaign

import (
	"time"

	"wormhole/internal/fingerprint"
	"wormhole/internal/gen"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/reveal"
	"wormhole/internal/topo"
)

// ShardBy selects how the target set is partitioned into independently
// probeable shards. Whatever the partitioning (and whatever worker count
// executes it), the merged campaign output is identical: shards carry
// private state and the merge canonicalizes in shard order.
type ShardBy uint8

const (
	// ShardByTeam makes one shard per vantage-point team — the paper's
	// 5-team split. Fingerprint and revelation de-duplication then work at
	// team granularity, so this is also the cheapest partitioning.
	ShardByTeam ShardBy = iota
	// ShardByTarget makes one shard per target for fine-grained load
	// balancing. Per-shard de-duplication degenerates to per-target, so
	// more duplicate fingerprint/revelation probes are spent; the merged
	// output is still identical to ShardByTeam.
	ShardByTarget
)

func (s ShardBy) String() string {
	if s == ShardByTarget {
		return "target"
	}
	return "team"
}

// ShardStats is the per-shard measurement accounting surfaced to the CLI
// and benchmarks.
type ShardStats struct {
	// Shard is the canonical shard index; Team the owning team.
	Shard, Team int
	// Worker is the pool slot that executed the shard. Scheduling-
	// dependent in parallel runs — everything else in the campaign output
	// is not.
	Worker int
	// Targets is the number of destinations probed.
	Targets int
	// Probes and Replies count probe packets sent and matched replies
	// (traceroutes, fingerprinting, pings, and revelation re-traces).
	Probes, Replies uint64
	// Candidates counts revelation triggers among the shard's traces;
	// Revelations the distinct pairs that revealed at least one hop.
	Candidates, Revelations int
	// MaxRevealDepth is the deepest revelation recursion (re-trace steps
	// of the longest backward walk).
	MaxRevealDepth int
	// BudgetHits counts fabric drains that exhausted their event budget
	// during the shard; LoopDrops the queued events silently discarded
	// when that happened. Non-zero values mean probes died inside the
	// fabric (a forwarding loop or runaway flood) rather than timing out.
	BudgetHits, LoopDrops uint64
	// FlowCache is the shard's flow-trajectory cache activity. Like
	// Worker and Elapsed it is an execution detail: hit/miss splits vary
	// with worker count (each replica warms its own trajectories), while
	// the measured records do not.
	FlowCache netsim.FlowCacheStats
	// Sweep is the shard's single-injection sweep activity — an execution
	// detail like FlowCache.
	Sweep netsim.SweepStats
	// ChurnEvents counts the topology churn events fired during the
	// shard (schedule remainders force-fired at shard end included).
	ChurnEvents uint64
	// Elapsed is the wall-clock time the shard took; VirtualElapsed the
	// fabric time its probes consumed.
	Elapsed, VirtualElapsed time.Duration
}

// shard is one unit of probing work: a team's targets (or a single
// target), probed from that team's vantage point.
type shard struct {
	idx     int // canonical order
	team    int
	targets []netaddr.Addr
}

// revealPair keys revelation de-duplication by candidate endpoints.
type revealPair struct{ x, y netaddr.Addr }

// shardResult is a shard's private output, merged later in canonical
// order. Nothing in it aliases campaign-level state, so shards can be
// produced concurrently.
type shardResult struct {
	sh      shard
	records []*Record
	fps     map[netaddr.Addr]fingerprint.Result
	stats   ShardStats
}

// buildShards partitions the (sorted) target set. Shard order — and
// therefore merged record order — is (team, target), independent of the
// partitioning mode and of any worker count.
func (c *Campaign) buildShards(by ShardBy) []shard {
	if len(c.In.VPs) == 0 {
		return nil
	}
	teams := c.Cfg.Teams
	if teams < 1 {
		teams = 1
	}
	var shards []shard
	for team := 0; team < teams; team++ {
		var targets []netaddr.Addr
		for _, dst := range c.Targets { // already sorted
			if c.teamOf[dst] == team {
				targets = append(targets, dst)
			}
		}
		if len(targets) == 0 {
			continue
		}
		switch by {
		case ShardByTarget:
			for _, dst := range targets {
				shards = append(shards, shard{idx: len(shards), team: team, targets: []netaddr.Addr{dst}})
			}
		default:
			shards = append(shards, shard{idx: len(shards), team: team, targets: targets})
		}
	}
	return shards
}

// runShard probes one shard: traceroute every target, fingerprint new
// hops, detect candidates, ping candidate egresses, then run the
// recursive revelation for each distinct candidate pair. probeVP supplies
// the prober (a worker's replica VP in parallel runs); recordVP is the
// campaign-level VP the records reference (always the main Internet's, so
// analyses see one coherent VP set). All written state is shard-private.
//
// events, when non-empty, is the shard's churn schedule: it is armed on
// the prober's fabric for the duration of the shard and fires at
// deterministic probe boundaries. ChurnEnd force-fires any remainder, so
// the fabric leaves the shard control-plane pristine.
func (c *Campaign) runShard(sh shard, probeVP, recordVP *gen.VP, hdnAddr map[netaddr.Addr]*topo.Node, events []netsim.ChurnEvent, flushWorld bool) *shardResult {
	res := &shardResult{
		sh:  sh,
		fps: make(map[netaddr.Addr]fingerprint.Result),
		stats: ShardStats{
			Shard:   sh.idx,
			Team:    sh.team,
			Targets: len(sh.targets),
		},
	}
	prober := probeVP.Prober
	sent0, recv0 := prober.Sent, prober.Recv
	clock0 := prober.Net.Now()
	fab0 := prober.Net.FabricStats()
	flow0 := prober.Net.FlowCacheStats()
	sweep0 := prober.Net.SweepStats()
	fired0 := prober.Net.ChurnFired()
	prober.Net.ChurnBegin(events, flushWorld)
	start := time.Now()

	fp := fingerprint.New(prober)
	for _, dst := range sh.targets {
		tr := prober.Traceroute(dst)
		rec := &Record{VP: recordVP, Trace: tr}
		res.records = append(res.records, rec)

		for _, h := range tr.Hops {
			if h.Anonymous() {
				continue
			}
			if _, done := res.fps[h.Addr]; done {
				continue
			}
			if r, ok := fp.FromHop(h); ok {
				res.fps[h.Addr] = r
			}
		}

		cand, ok := reveal.CandidateFromTrace(tr)
		if !ok {
			continue
		}
		// Both endpoints must be HDN routers of the same AS (Sec. 4's
		// post-processing filter).
		iNode, iOK := hdnAddr[cand.Ingress.Addr]
		eNode, eOK := hdnAddr[cand.Egress.Addr]
		if !iOK || !eOK || iNode.ASN != eNode.ASN || iNode.ID == eNode.ID {
			continue
		}
		rec.Candidate = &cand
		rec.CandidateAS = iNode.ASN
		res.stats.Candidates++
		if reply, ok := prober.Ping(cand.Egress.Addr, 64); ok {
			rec.EgressEchoTTL = reply.ReplyTTL
		}
	}

	// Recursive revelation, de-duplicated per distinct pair within the
	// shard (the merge canonicalizes across shards).
	done := make(map[revealPair]*reveal.Revelation)
	for _, rec := range res.records {
		if rec.Candidate == nil {
			continue
		}
		k := revealPair{rec.Candidate.Ingress.Addr, rec.Candidate.Egress.Addr}
		rev, ok := done[k]
		if !ok {
			rev = reveal.Reveal(prober, k.x, k.y)
			done[k] = rev
			if len(rev.Hops) > 0 {
				res.stats.Revelations++
			}
			if d := len(rev.Steps); d > res.stats.MaxRevealDepth {
				res.stats.MaxRevealDepth = d
			}
		}
		rec.Revelation = rev
	}

	// Disarm before the final counter reads: remainders force-fired here
	// restore the pristine control plane, and their evictions land in the
	// shard's cache accounting.
	prober.Net.ChurnEnd()
	res.stats.ChurnEvents = prober.Net.ChurnFired() - fired0

	res.stats.Probes = prober.Sent - sent0
	res.stats.Replies = prober.Recv - recv0
	res.stats.Elapsed = time.Since(start)
	res.stats.VirtualElapsed = prober.Net.Now() - clock0
	fab1 := prober.Net.FabricStats()
	res.stats.BudgetHits = fab1.BudgetExhausted - fab0.BudgetExhausted
	res.stats.LoopDrops = fab1.DroppedEvents - fab0.DroppedEvents
	res.stats.FlowCache = flowDelta(prober.Net.FlowCacheStats(), flow0)
	res.stats.Sweep = sweepDelta(prober.Net.SweepStats(), sweep0)
	return res
}

// merge folds shard results back into the campaign in canonical shard
// order: records concatenate to (team, target) order, the first shard to
// fingerprint an address wins, and revelations are canonicalized so every
// record of a candidate pair shares the pair's first revelation object —
// exactly what a serial pass over the same shards produces.
func (c *Campaign) merge(results []*shardResult) {
	canonical := make(map[revealPair]*reveal.Revelation)
	for _, res := range results {
		vp := c.vpForTeam(res.sh.team)
		c.Records = append(c.Records, res.records...)
		for a, r := range res.fps {
			if _, done := c.Fingerprints[a]; !done {
				c.Fingerprints[a] = r
				c.FingerprintVP[a] = vp
			}
		}
		for _, rec := range res.records {
			if rec.Revelation == nil || rec.Candidate == nil {
				continue
			}
			k := revealPair{rec.Candidate.Ingress.Addr, rec.Candidate.Egress.Addr}
			if canon, ok := canonical[k]; ok {
				rec.Revelation = canon
			} else {
				canonical[k] = rec.Revelation
			}
		}
		c.Shards = append(c.Shards, res.stats)
		c.Probes += res.stats.Probes
		c.BudgetHits += res.stats.BudgetHits
		c.LoopDrops += res.stats.LoopDrops
		c.ChurnEvents += res.stats.ChurnEvents
		addFlow(&c.FlowCache, res.stats.FlowCache)
		addSweep(&c.Sweep, res.stats.Sweep)
	}
	c.Probes += c.bootProbes
	addFlow(&c.FlowCache, c.bootFlow)
	addSweep(&c.Sweep, c.bootSweep)
}
