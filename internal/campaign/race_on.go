//go:build race

package campaign

// raceEnabled reports whether this build runs under the race detector;
// the concurrency stress tier scales its iteration count with it.
const raceEnabled = true
