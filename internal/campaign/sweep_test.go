package campaign

import (
	"testing"

	"wormhole/internal/netsim"
	"wormhole/internal/probe"
)

// TestSweepEquivalenceGolden is the acceptance test for the
// single-injection TTL sweep: a campaign with the sweep enabled — cache
// on or off, serial or parallel, snapshot or rebuild replicas, ICMP or
// UDP Paris — must be byte-identical (hops, RTTs, reply TTLs, RFC 4950
// stacks, probe/reply counters, per-shard virtual-clock totals) to the
// per-probe oracle with both engines disabled.
func TestSweepEquivalenceGolden(t *testing.T) {
	t.Run("icmp", func(t *testing.T) { testSweepEquivalence(t, probe.ICMPParis) })
	t.Run("udp", func(t *testing.T) { testSweepEquivalence(t, probe.UDPParis) })
}

func testSweepEquivalence(t *testing.T, method probe.Method) {
	cfg := DefaultConfig()
	cfg.HDNThreshold = 6
	cfg.Method = method

	oracleCfg := cfg
	oracleCfg.DisableFlowCache = true
	oracleCfg.DisableSweep = true
	oracle := Run(testInternet(t, 101), oracleCfg)
	want := dumpExactCampaign(t, oracle)
	if len(oracle.Records) == 0 || len(oracle.Revelations()) == 0 {
		t.Fatalf("oracle campaign is trivial: %d records, %d revelations",
			len(oracle.Records), len(oracle.Revelations()))
	}
	if oracle.Sweep != (netsim.SweepStats{}) {
		t.Fatalf("sweep-disabled oracle has sweep activity: %+v", oracle.Sweep)
	}

	// Serial, sweep on with the cache off. For ICMP this is the cold path
	// the sweep accelerates, and the sweep-only memo must not masquerade
	// as cache activity. A UDP sweep memoizes across the port cycle, which
	// the single-slot cache-off fallback entry cannot hold, so there the
	// engine must stay inert and the campaign runs per-probe.
	coldCfg := cfg
	coldCfg.DisableFlowCache = true
	cold := Run(testInternet(t, 101), coldCfg)
	if got := dumpExactCampaign(t, cold); got != want {
		t.Errorf("serial sweep-on cache-off diverged from oracle\n%s", firstDiff(want, got))
	}
	if method == probe.ICMPParis {
		if cold.Sweep.ICMP.Walks == 0 || cold.Sweep.ICMP.Replies == 0 {
			t.Errorf("sweep enabled but inert on the cold path: %+v", cold.Sweep)
		}
	} else if w := cold.Sweep.UDP.Walks; w != 0 {
		t.Errorf("UDP sweep walked without the flow cache: %+v", cold.Sweep)
	}
	if cold.FlowCache != (netsim.FlowCacheStats{}) {
		t.Errorf("cache disabled but sweep moved its counters: %+v", cold.FlowCache)
	}

	// Serial, both engines on (the default configuration). UDP walks are
	// charged to the UDP counters only, and the port-cycle slots of each
	// trace must alias onto its master walks rather than walking
	// themselves.
	both := Run(testInternet(t, 101), cfg)
	if got := dumpExactCampaign(t, both); got != want {
		t.Errorf("serial sweep+cache diverged from oracle\n%s", firstDiff(want, got))
	}
	if method == probe.ICMPParis {
		if both.Sweep.ICMP.Walks == 0 {
			t.Errorf("sweep enabled but no walks with the cache on: %+v", both.Sweep)
		}
	} else {
		if both.Sweep.UDP.Walks == 0 || both.Sweep.UDP.Replies == 0 {
			t.Errorf("UDP slot sweep inert with the cache on: %+v", both.Sweep)
		}
		if both.Sweep.UDP.Aliases == 0 {
			t.Errorf("UDP slots never aliased onto a master walk: %+v", both.Sweep)
		}
		if both.Sweep.ICMP.Walks != 0 {
			t.Errorf("UDP campaign charged ICMP walks: %+v", both.Sweep)
		}
	}

	// Parallel matrix: worker counts, both replica modes, and the
	// cache-off sweep-on combination benchrun's cold rows measure.
	for _, tc := range []struct {
		name    string
		pcfg    ParallelConfig
		noCache bool
	}{
		{"workers=1", ParallelConfig{Workers: 1}, false},
		{"workers=2", ParallelConfig{Workers: 2}, false},
		{"workers=8", ParallelConfig{Workers: 8}, false},
		{"workers=2 rebuild", ParallelConfig{Workers: 2, Replica: ReplicaRebuild}, false},
		{"workers=2 cache-off", ParallelConfig{Workers: 2}, true},
		{"workers=8 cache-off rebuild", ParallelConfig{Workers: 8, Replica: ReplicaRebuild}, true},
	} {
		runCfg := cfg
		runCfg.DisableFlowCache = tc.noCache
		c, err := RunParallel(testInternet(t, 101), runCfg, tc.pcfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := dumpExactCampaign(t, c); got != want {
			t.Errorf("%s: diverged from per-probe oracle\n%s", tc.name, firstDiff(want, got))
		}
		// UDP sweeps only through the cache; cache-off rows run per-probe.
		if udpInert := method == probe.UDPParis && tc.noCache; !udpInert && c.Sweep.Total().Walks == 0 {
			t.Errorf("%s: sweep enabled but no walks: %+v", tc.name, c.Sweep)
		}
		if tc.noCache && c.FlowCache != (netsim.FlowCacheStats{}) {
			t.Errorf("%s: cache disabled but counters moved: %+v", tc.name, c.FlowCache)
		}
	}
}

// TestSweepRepeatRunsCovered pins the warm steady state of the sweep-only
// configuration benchrun's cold rows measure: rerunning the campaign with
// the cache off still reproduces the oracle, and the learned reply shapes
// make the second run synthesize at least as much as the first.
func TestSweepRepeatRunsCovered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HDNThreshold = 6
	cfg.DisableFlowCache = true

	oracleCfg := cfg
	oracleCfg.DisableSweep = true
	want := dumpExactCampaign(t, Run(testInternet(t, 101), oracleCfg))

	in := testInternet(t, 101)
	first := Run(in, cfg)
	second := Run(in, cfg)
	if got := dumpExactCampaign(t, second); got != want {
		t.Errorf("warm sweep rerun diverged from oracle\n%s", firstDiff(want, got))
	}
	if second.Sweep.Total().Fallbacks > first.Sweep.Total().Fallbacks {
		t.Errorf("warm rerun should fall back no more than the cold run: first %+v, second %+v",
			first.Sweep, second.Sweep)
	}
}
