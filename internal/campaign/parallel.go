package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"wormhole/internal/gen"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/probe"
	"wormhole/internal/topo"
)

// ReplicaMode selects how each worker obtains its private fabric replica.
type ReplicaMode uint8

const (
	// ReplicaSnapshot structurally deep-copies the built Internet
	// (gen.Internet.Clone) — O(state) per worker, the fast path. Worlds
	// converged with an in-band control plane fall back to a rebuild
	// automatically.
	ReplicaSnapshot ReplicaMode = iota
	// ReplicaRebuild replays the generator with the original parameters
	// (gen.Internet.Rebuild) — O(convergence) per worker. Kept as the
	// validation oracle for the snapshot path: campaign output must be
	// byte-identical under either mode.
	ReplicaRebuild
)

func (m ReplicaMode) String() string {
	if m == ReplicaRebuild {
		return "rebuild"
	}
	return "snapshot"
}

// ParallelConfig tunes the parallel campaign engine.
type ParallelConfig struct {
	// Workers sizes the worker pool; <= 0 selects GOMAXPROCS. Every slot
	// gets a bootstrap partition; the probing phase uses min(Workers,
	// shard count) of them (Campaign.ShardWorkers).
	Workers int
	// ShardBy selects the target partitioning (default ShardByTeam).
	ShardBy ShardBy
	// Replica selects the worker replica path (default ReplicaSnapshot).
	Replica ReplicaMode
}

// RunParallel executes the campaign end to end on a worker pool: the
// bootstrap sweep is sharded across the workers just like the probing
// phase, each worker drives a pooled private replica of the fabric, and
// the workers share one read-mostly flow-reply table.
//
// The engine is built from three coordinated pieces:
//
//   - Sharded bootstrap. The serial sweep's (target, VP) job list is
//     flattened in canonical order and split into contiguous per-worker
//     partitions; each worker traceroutes its partition on its own
//     replica and the coordinator replays the collected traces into the
//     observed graph in the original order, so the resulting ITDK, HDN
//     set, and target selection are byte-identical to the serial
//     engine's.
//
//   - Pooled replicas. Worker replicas are acquired from a pool on the
//     Internet (gen.Internet.AcquireReplicas) that survives across
//     campaigns: slot i reuses the same replica — and its warm flow cache
//     — run after run, so steady-state runs build no replicas at all.
//     The same replica serves the worker's bootstrap partition and its
//     shards. A control-plane mutation on the source or a replica
//     invalidates the affected pool entries.
//
//   - Shared flow cache. All replicas subscribe to one
//     netsim.SharedFlowTable keyed to the source fabric's topology; the
//     coordinator publishes each worker's fresh recordings at the two
//     phase barriers, so worker N replays trajectories worker M paid
//     for, and a later campaign's cold replicas adopt the whole previous
//     campaign's replies.
//
// Each replica is driven by exactly one worker goroutine — no
// packet-level state is shared (netsim's ownership assertions enforce
// this); the shared table hands out only immutable published epochs.
// Shard results merge in canonical (team, target) order, giving Records,
// Fingerprints, and Revelations byte-identical to the serial engine at
// any worker count.
//
// The identity holds because per-probe fabric behaviour is independent of
// probing history for both Paris methods (no loss injection, bandwidth
// modeling, or ICMP rate limiting is active in generated worlds). ICMP
// Paris keeps the ECMP flow hash constant per prober; UDP Paris cycles
// its destination port with the per-prober token counter, which restarts
// from the same seed on every replica, so the slot sequence — and every
// slot walk and derived reply — replays identically too.
func RunParallel(in *gen.Internet, cfg Config, pcfg ParallelConfig) (*Campaign, error) {
	workers := pcfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}

	c := newCampaign(in, cfg)
	c.Workers = workers

	t0 := time.Now()
	replicas, err := in.AcquireReplicas(workers, pcfg.Replica == ReplicaRebuild)
	if err != nil {
		return nil, fmt.Errorf("campaign: replica pool: %w", err)
	}
	defer in.ReleaseReplicas(replicas)
	c.Phase.Replica = time.Since(t0)

	in.Net.SetFlowCacheEnabled(!cfg.DisableFlowCache)
	in.Net.SetSweepEnabled(!cfg.DisableSweep)
	var table *netsim.SharedFlowTable
	if !cfg.DisableFlowCache {
		table = in.Net.OwnSharedFlowCache()
	}
	for _, r := range replicas {
		r.Net.SetFlowCacheEnabled(!cfg.DisableFlowCache)
		r.Net.SetSweepEnabled(!cfg.DisableSweep)
		if table != nil && r.Net.SharedFlowCache() != table {
			r.Net.AttachSharedFlowCache(table)
		}
	}

	pool := newWorkerPool(replicas)
	defer pool.close()

	// Pooled replicas carry fault-in counters across campaigns; snapshot
	// them so Campaign.Lazy reports only this run's materialization work.
	lz0 := in.LazyStats()
	var repFault0 int
	var repNS0 int64
	for _, r := range replicas {
		s := r.LazyStats()
		repFault0 += s.FaultIns
		repNS0 += s.FaultInNS
	}

	c.prepareParallel(pool, table)

	shards := c.buildShards(pcfg.ShardBy)
	hdnAddr := c.hdnByAddr()
	c.ShardWorkers = workers
	if c.ShardWorkers > len(shards) {
		c.ShardWorkers = len(shards)
	}
	if c.ShardWorkers < 1 {
		c.ShardWorkers = 1
	}

	plan := gen.BuildChurnPlan(in, cfg.ChurnRate, cfg.ChurnSeed)
	t0 = time.Now()
	results := make([]*shardResult, len(shards))
	for si := range shards {
		// Static assignment: shard i always runs on worker i mod
		// ShardWorkers, so ShardStats.Worker is deterministic and each
		// pooled replica re-probes the same teams run after run, keeping
		// its private cache working set small and warm.
		si, sh, w := si, shards[si], si%c.ShardWorkers
		pool.submit(w, func(r *gen.Internet) {
			// The symbolic plan resolves against the worker's own replica
			// with the canonical shard index as random stream: every
			// engine fails the same links at the same probe boundaries of
			// shard si, whichever fabric executes it.
			events := plan.EventsFor(r, sh.idx, len(sh.targets))
			res := c.runShard(sh, r.VPs[sh.team%len(r.VPs)], c.vpForTeam(sh.team), hdnAddr, events, cfg.ChurnFlushWorld)
			res.stats.Worker = w
			results[si] = res
		})
	}
	pool.barrier()
	if table != nil {
		table.Publish(pool.nets()...)
	}
	c.Phase.Probe = time.Since(t0)

	c.merge(results)
	c.Lazy = in.LazyStats()
	c.Lazy.FaultIns -= lz0.FaultIns + repFault0
	c.Lazy.FaultInNS -= lz0.FaultInNS + repNS0
	for _, r := range replicas {
		s := r.LazyStats()
		c.ReplicaResident += s.Resident
		c.Lazy.FaultIns += s.FaultIns
		c.Lazy.FaultInNS += s.FaultInNS
	}
	return c, nil
}

// prepareParallel mirrors prepare with the bootstrap sweep sharded across
// the worker pool: same prober discipline, same accounting, summed over
// the main fabric and every replica.
func (c *Campaign) prepareParallel(pool *workerPool, table *netsim.SharedFlowTable) {
	in, cfg := c.In, c.Cfg
	for _, vp := range in.VPs {
		vp.Prober.FirstTTL = 1
		vp.Prober.Method = cfg.Method
	}
	pool.mirrorProbers(in.VPs)

	t0 := time.Now()
	sent0 := sentByVPs(in.VPs) + pool.sentByReplicaVPs()
	fab0 := addFabric(in.Net.FabricStats(), pool.fabricStats())
	flow0 := sumFlow(in.Net.FlowCacheStats(), pool.flowStats())
	sweep0 := sumSweep(in.Net.SweepStats(), pool.sweepStats())
	c.bootstrapSharded(pool)
	if table != nil {
		// Publish the partitions' recordings while the pool is quiescent:
		// shards replay bootstrap flows, and with the barrier here a
		// worker's shard probes hit on trajectories any partition paid for.
		table.Publish(pool.nets()...)
	}
	c.selectTargets()
	c.bootProbes = sentByVPs(in.VPs) + pool.sentByReplicaVPs() - sent0
	fab1 := addFabric(in.Net.FabricStats(), pool.fabricStats())
	c.BudgetHits = fab1.BudgetExhausted - fab0.BudgetExhausted
	c.LoopDrops = fab1.DroppedEvents - fab0.DroppedEvents
	c.bootFlow = flowDelta(sumFlow(in.Net.FlowCacheStats(), pool.flowStats()), flow0)
	c.bootSweep = sweepDelta(sumSweep(in.Net.SweepStats(), pool.sweepStats()), sweep0)
	c.Phase.Bootstrap = time.Since(t0)

	for _, vp := range in.VPs {
		vp.Prober.FirstTTL = cfg.FirstTTL
	}
	pool.mirrorProbers(in.VPs)
}

// bootstrapSharded is the parallel counterpart of bootstrap: the serial
// sweep's nested loop is flattened into a canonical job list, split into
// contiguous per-worker partitions probed on the workers' replicas, and
// the traces are replayed into the observed graph in canonical order on
// the coordinating goroutine — AddTrace assigns node identities by
// insertion order, so the replay order is the byte-identity.
func (c *Campaign) bootstrapSharded(pool *workerPool) {
	// The resolver may probe the main fabric (MeasuredAliases); it runs
	// here, before any worker drives a replica, exactly as the serial
	// engine resolves before its first traceroute.
	c.ITDK = topo.New(c.resolver())
	if c.Cfg.Stream {
		c.bootstrapStreamSharded(pool)
		c.finishBootstrapGraph()
		return
	}
	addrs := c.bootstrapAddrs()
	vps := c.In.VPs
	spread := c.Cfg.BootstrapSpread
	if spread < 1 {
		spread = 1
	}
	if len(vps) == 0 {
		c.finishBootstrapGraph()
		return
	}
	type bootJob struct {
		vp  int
		dst netaddr.Addr
	}
	jobs := make([]bootJob, 0, len(addrs)*spread)
	for i, dst := range addrs {
		for k := 0; k < spread && k < len(vps); k++ {
			jobs = append(jobs, bootJob{vp: (i + k) % len(vps), dst: dst})
		}
	}
	traces := make([]*probe.Trace, len(jobs))
	w := pool.size()
	for p := 0; p < w; p++ {
		lo, hi := len(jobs)*p/w, len(jobs)*(p+1)/w
		if lo == hi {
			continue
		}
		pool.submit(p, func(r *gen.Internet) {
			// Disjoint index ranges: no two workers touch the same slot.
			for j := lo; j < hi; j++ {
				traces[j] = r.VPs[jobs[j].vp].Prober.Traceroute(jobs[j].dst)
			}
		})
	}
	pool.barrier()
	for _, tr := range traces {
		c.ITDK.AddTrace(tr)
	}
	c.finishBootstrapGraph()
}

// workerPool runs one goroutine per replica for the lifetime of a
// campaign: the goroutine binds the replica's fabric once and then
// executes submitted tasks against it, so the same replica serves the
// worker's bootstrap partition and all its shards without rebinding.
type workerPool struct {
	replicas []*gen.Internet
	tasks    []chan func(*gen.Internet)
	workers  sync.WaitGroup // goroutine lifetimes
	phase    sync.WaitGroup // outstanding submitted tasks
}

func newWorkerPool(replicas []*gen.Internet) *workerPool {
	p := &workerPool{
		replicas: replicas,
		tasks:    make([]chan func(*gen.Internet), len(replicas)),
	}
	for w := range replicas {
		ch := make(chan func(*gen.Internet), 4)
		p.tasks[w] = ch
		p.workers.Add(1)
		go func(r *gen.Internet, ch chan func(*gen.Internet)) {
			defer p.workers.Done()
			// The replica is driven by this goroutine only, between here
			// and close().
			r.Net.BindOwner()
			defer r.Net.ReleaseOwner()
			for fn := range ch {
				fn(r)
				p.phase.Done()
			}
		}(replicas[w], ch)
	}
	return p
}

func (p *workerPool) size() int { return len(p.replicas) }

// submit queues fn on worker w's replica. Tasks submitted to one worker
// run in order; barrier() waits for all outstanding tasks.
func (p *workerPool) submit(w int, fn func(*gen.Internet)) {
	p.phase.Add(1)
	p.tasks[w] <- fn
}

// barrier blocks until every submitted task has completed. Afterwards the
// coordinating goroutine may read and reconfigure the replicas until the
// next submit (the channel send/receive orders those accesses).
func (p *workerPool) barrier() { p.phase.Wait() }

// close shuts the worker goroutines down and releases fabric ownership.
func (p *workerPool) close() {
	for _, ch := range p.tasks {
		close(ch)
	}
	p.workers.Wait()
}

// nets returns the replicas' fabrics (for shared-table publishing).
func (p *workerPool) nets() []*netsim.Network {
	out := make([]*netsim.Network, len(p.replicas))
	for i, r := range p.replicas {
		out[i] = r.Net
	}
	return out
}

// mirrorProbers copies the campaign prober tunables from the main vantage
// points onto every replica's twins. Callers must be between barriers.
func (p *workerPool) mirrorProbers(vps []*gen.VP) {
	for _, r := range p.replicas {
		for i, vp := range r.VPs {
			mirrorProber(vp, vps[i])
		}
	}
}

// sentByReplicaVPs sums the probe counters across all replicas.
func (p *workerPool) sentByReplicaVPs() uint64 {
	var n uint64
	for _, r := range p.replicas {
		n += sentByVPs(r.VPs)
	}
	return n
}

// fabricStats sums the replicas' fabric counters.
func (p *workerPool) fabricStats() netsim.FabricStats {
	var sum netsim.FabricStats
	for _, r := range p.replicas {
		sum = addFabric(sum, r.Net.FabricStats())
	}
	return sum
}

// flowStats sums the replicas' flow-cache counters.
func (p *workerPool) flowStats() netsim.FlowCacheStats {
	var sum netsim.FlowCacheStats
	for _, r := range p.replicas {
		addFlow(&sum, r.Net.FlowCacheStats())
	}
	return sum
}

// sweepStats sums the replicas' sweep-engine counters.
func (p *workerPool) sweepStats() netsim.SweepStats {
	var sum netsim.SweepStats
	for _, r := range p.replicas {
		addSweep(&sum, r.Net.SweepStats())
	}
	return sum
}

// addFabric sums the fabric counters the campaign accounts for.
func addFabric(a, b netsim.FabricStats) netsim.FabricStats {
	a.BudgetExhausted += b.BudgetExhausted
	a.DroppedEvents += b.DroppedEvents
	return a
}

// sumFlow adds two flow-cache counter snapshots.
func sumFlow(a, b netsim.FlowCacheStats) netsim.FlowCacheStats {
	addFlow(&a, b)
	return a
}

// sumSweep adds two sweep-engine counter snapshots.
func sumSweep(a, b netsim.SweepStats) netsim.SweepStats {
	addSweep(&a, b)
	return a
}

// mirrorProber copies the campaign-relevant prober tunables from a main
// vantage point onto its replica twin (counters and sequence state stay
// private to the replica).
func mirrorProber(dst, src *gen.VP) {
	dst.Prober.Method = src.Prober.Method
	dst.Prober.FirstTTL = src.Prober.FirstTTL
	dst.Prober.MaxTTL = src.Prober.MaxTTL
	dst.Prober.GapLimit = src.Prober.GapLimit
	dst.Prober.Attempts = src.Prober.Attempts
	dst.Prober.FlowID = src.Prober.FlowID
}
