package campaign

import (
	"fmt"
	"runtime"
	"sync"

	"wormhole/internal/gen"
)

// ReplicaMode selects how each worker obtains its private fabric replica.
type ReplicaMode uint8

const (
	// ReplicaSnapshot structurally deep-copies the built Internet
	// (gen.Internet.Clone) — O(state) per worker, the fast path. Worlds
	// converged with an in-band control plane fall back to a rebuild
	// automatically.
	ReplicaSnapshot ReplicaMode = iota
	// ReplicaRebuild replays the generator with the original parameters
	// (gen.Internet.Rebuild) — O(convergence) per worker. Kept as the
	// validation oracle for the snapshot path: campaign output must be
	// byte-identical under either mode.
	ReplicaRebuild
)

func (m ReplicaMode) String() string {
	if m == ReplicaRebuild {
		return "rebuild"
	}
	return "snapshot"
}

// ParallelConfig tunes the parallel campaign engine.
type ParallelConfig struct {
	// Workers sizes the worker pool; <= 0 selects GOMAXPROCS. The pool is
	// bounded by the shard count.
	Workers int
	// ShardBy selects the target partitioning (default ShardByTeam).
	ShardBy ShardBy
	// Replica selects the worker replica path (default ReplicaSnapshot).
	Replica ReplicaMode
}

// RunParallel executes the campaign with per-team worker shards.
//
// The bootstrap sweep and target selection run on the Internet's own
// fabric, exactly as in Run. The probing phase then partitions the targets
// into shards (per team by default, matching the paper's 5-team split) and
// executes them on a bounded worker pool. Each worker owns a private
// simulator replica built via gen.Internet.Clone — the whole fabric,
// routers, links, and vantage points are per-worker, so no packet-level
// state is ever shared between goroutines (netsim's ownership assertions
// enforce this). Shard results are merged back in canonical (team, target)
// order, giving Records, Fingerprints, and Revelations that are
// byte-identical to the serial engine's at any worker count.
//
// The identity holds because per-probe fabric behaviour is independent of
// probing history for the campaign's ICMP Paris method (no loss injection,
// bandwidth modeling, or ICMP rate limiting is active in generated worlds,
// and the ECMP flow hash sees only fields that are constant per prober).
// UDPParis varies its destination port with global probe history, so only
// statistical equivalence holds there.
func RunParallel(in *gen.Internet, cfg Config, pcfg ParallelConfig) (*Campaign, error) {
	c := prepare(in, cfg)
	shards := c.buildShards(pcfg.ShardBy)
	hdnAddr := c.hdnByAddr()

	workers := pcfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers < 1 {
		workers = 1
	}
	c.Workers = workers

	results := make([]*shardResult, len(shards))
	work := make(chan int)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var replica *gen.Internet
			var err error
			if pcfg.Replica == ReplicaRebuild {
				replica, err = in.Rebuild()
			} else {
				replica, err = in.Clone()
			}
			if err != nil {
				errs[w] = fmt.Errorf("campaign: worker %d replica: %w", w, err)
				for range work {
					// Drain so the feeder never blocks on a dead worker.
				}
				return
			}
			// The replica is driven by this goroutine only, from here on.
			replica.Net.BindOwner()
			for i, vp := range replica.VPs {
				mirrorProber(vp, in.VPs[i])
			}
			if !cfg.DisableFlowCache {
				// Replicas start with an empty cache; seed it with the
				// memoized replies the bootstrap sweep collected on the
				// main fabric (trajectories stay fabric-local), so shard
				// probes that repeat bootstrap flows replay in O(1).
				replica.Net.SetFlowCacheEnabled(true)
				replica.Net.SeedFlowCacheFrom(in.Net)
			}
			for i := range work {
				sh := shards[i]
				res := c.runShard(sh, replica.VPs[sh.team%len(replica.VPs)], c.vpForTeam(sh.team), hdnAddr)
				res.stats.Worker = w
				results[i] = res
			}
		}(w)
	}
	for i := range shards {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	c.merge(results)
	return c, nil
}

// mirrorProber copies the campaign-relevant prober tunables from a main
// vantage point onto its replica twin (counters and sequence state stay
// private to the replica).
func mirrorProber(dst, src *gen.VP) {
	dst.Prober.Method = src.Prober.Method
	dst.Prober.FirstTTL = src.Prober.FirstTTL
	dst.Prober.MaxTTL = src.Prober.MaxTTL
	dst.Prober.GapLimit = src.Prober.GapLimit
	dst.Prober.Attempts = src.Prober.Attempts
	dst.Prober.FlowID = src.Prober.FlowID
}
