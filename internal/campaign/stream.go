// The streaming target scheduler. The stride sampler needs the full
// enumerated address list in memory to pick every len/max-th element —
// at the Giga rung that list alone is gigabytes, and enumerating it
// materializes every lazy stub. This scheduler replaces it with a seeded
// pseudo-random permutation over an indexable view of the target space,
// drained in bounded batches: memory is O(batch + accepted), coverage is
// exact (a Feistel network with cycle-walking is a bijection on [0, n)),
// and the draw order is a pure function of (space size, seed), so every
// engine — serial, or parallel at any worker count — accepts the
// identical target sequence.

package campaign

import (
	"sort"

	"wormhole/internal/gen"
	"wormhole/internal/netaddr"
	"wormhole/internal/probe"
)

// TargetSpace is an indexable target universe the scheduler permutes
// over, without demanding an enumerated slice: gen.Internet.ProbeSpace
// satisfies it while constructing nothing. Prefix(i) is the budget key
// of target i (its AS aggregate).
type TargetSpace interface {
	Len() int
	Addr(i int) netaddr.Addr
	Prefix(i int) netaddr.Prefix
}

// defaultStreamBatch is the scheduler drain granularity when
// Config.StreamBatch is unset: large enough to amortize channel traffic
// in the work-stealing drain, small enough that the reorder buffer stays
// a few thousand traces.
const defaultStreamBatch = 256

// feistel is a 4-round Feistel network over 2^(2·halfBits) values — a
// seeded bijection. Values ≥ n are cycle-walked back through the network
// (walk below), which restricts the bijection to [0, n) without tables:
// O(1) state for any universe size.
type feistel struct {
	n        uint64
	halfBits uint
	halfMask uint64
	keys     [4]uint64
}

func newFeistel(n int, seed int64) feistel {
	f := feistel{n: uint64(n)}
	bits := uint(2)
	for uint64(1)<<bits < f.n {
		bits += 2 // even split: both halves the same width
	}
	f.halfBits = bits / 2
	f.halfMask = 1<<f.halfBits - 1
	// Round keys from splitmix64, the standard seed expander.
	s := uint64(seed)
	for i := range f.keys {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		f.keys[i] = z ^ z>>31
	}
	return f
}

func (f feistel) round(r, k uint64) uint64 {
	x := r ^ k
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

func (f feistel) apply(x uint64) uint64 {
	l, r := x>>f.halfBits, x&f.halfMask
	for _, k := range f.keys {
		l, r = r, l^f.round(r, k)&f.halfMask
	}
	return l<<f.halfBits | r
}

// walk maps i ∈ [0, n) to its permuted image in [0, n): apply the
// network, and while the image overshoots n, apply again. Termination
// and bijectivity follow from apply being a bijection on the power-of-4
// superset; the expected walk length is under 4 steps.
func (f feistel) walk(i uint64) uint64 {
	x := f.apply(i)
	for x >= f.n {
		x = f.apply(x)
	}
	return x
}

// streamJob is one scheduled bootstrap probe: the seq-th accepted target,
// traced from VP index vp. seq drives the canonical replay order; vp
// reproduces the serial sweep's (i+k) % len(vps) spread discipline.
type streamJob struct {
	seq int
	vp  int
	dst netaddr.Addr
}

// targetStream is the scheduler cursor: it pulls raw indices 0..n-1,
// permutes each through the Feistel network, applies the per-prefix
// budget and the global cap, and emits the surviving targets' probe jobs
// in accept order. State is the cursor, the budget map (bounded by the
// accepted count), and the O(1) permutation — flat in the universe size.
type targetStream struct {
	space    TargetSpace
	perm     feistel
	next     uint64
	n        uint64
	cap      int
	budget   int
	used     map[netaddr.Prefix]int
	accepted int
	spread   int
	vps      int
}

func (c *Campaign) newTargetStream() *targetStream {
	space := TargetSpace(c.In.ProbeSpace())
	spread := c.Cfg.BootstrapSpread
	if spread < 1 {
		spread = 1
	}
	return &targetStream{
		space:  space,
		perm:   newFeistel(space.Len(), c.Cfg.StreamSeed),
		n:      uint64(space.Len()),
		cap:    c.Cfg.MaxBootstrapTargets,
		budget: c.Cfg.PrefixBudget,
		used:   make(map[netaddr.Prefix]int),
		spread: spread,
		vps:    len(c.In.VPs),
	}
}

// nextBatch returns the jobs of up to max more accepted targets (spread
// jobs per target), or nil when the space is exhausted or the cap is
// reached. Successive calls with any batch sizes produce one identical
// concatenated job sequence.
func (s *targetStream) nextBatch(max int) []streamJob {
	var jobs []streamJob
	for t := 0; t < max; {
		if s.next >= s.n || (s.cap > 0 && s.accepted >= s.cap) {
			break
		}
		i := int(s.perm.walk(s.next))
		s.next++
		if s.budget > 0 {
			pfx := s.space.Prefix(i)
			if s.used[pfx] >= s.budget {
				continue
			}
			s.used[pfx]++
		}
		dst := s.space.Addr(i)
		for k := 0; k < s.spread && k < s.vps; k++ {
			jobs = append(jobs, streamJob{seq: s.accepted, vp: (s.accepted + k) % s.vps, dst: dst})
		}
		s.accepted++
		t++
	}
	return jobs
}

func (c *Campaign) streamBatchSize() int {
	if b := c.Cfg.StreamBatch; b > 0 {
		return b
	}
	return defaultStreamBatch
}

// bootstrapStream is the serial streamed sweep: drain the scheduler in
// batches, tracing and replaying each job inline in accept order. On a
// lazy world each first probe into a stub's /20 faults the stub in; the
// rest of the universe never constructs.
func (c *Campaign) bootstrapStream() {
	vps := c.In.VPs
	if len(vps) == 0 {
		return
	}
	st := c.newTargetStream()
	batch := c.streamBatchSize()
	for {
		jobs := st.nextBatch(batch)
		if len(jobs) == 0 {
			return
		}
		for _, j := range jobs {
			tr := vps[j.vp].Prober.Traceroute(j.dst)
			c.ITDK.AddTrace(tr)
		}
	}
}

// bootstrapStreamSharded is the work-stealing drain: one producer
// goroutine pulls batches off the scheduler into a bounded work channel,
// every pool worker steals batches and traceroutes them on its own
// replica, and the coordinator replays completed batches through a
// reorder buffer in batch order — so the AddTrace sequence, and with it
// the observed graph, is byte-identical to bootstrapStream whatever
// order the workers finish in. (Trace content is probing-order-invariant
// — the RunParallel contract — so only the replay order matters.)
//
// In-flight state is bounded: the work and result channels hold at most
// pool-size batches each, and the reorder buffer at most one batch per
// out-of-order worker.
func (c *Campaign) bootstrapStreamSharded(pool *workerPool) {
	if len(c.In.VPs) == 0 {
		return
	}
	st := c.newTargetStream()
	batch := c.streamBatchSize()
	w := pool.size()

	type jobBatch struct {
		idx  int
		jobs []streamJob
	}
	type tracedBatch struct {
		idx    int
		traces []*probe.Trace
	}
	work := make(chan jobBatch, w)
	results := make(chan tracedBatch, w)
	total := make(chan int, 1)
	go func() {
		n := 0
		for {
			jobs := st.nextBatch(batch)
			if len(jobs) == 0 {
				break
			}
			work <- jobBatch{idx: n, jobs: jobs}
			n++
		}
		close(work)
		total <- n
	}()
	for p := 0; p < w; p++ {
		pool.submit(p, func(r *gen.Internet) {
			for b := range work {
				traces := make([]*probe.Trace, len(b.jobs))
				for i, j := range b.jobs {
					traces[i] = r.VPs[j.vp].Prober.Traceroute(j.dst)
				}
				results <- tracedBatch{idx: b.idx, traces: traces}
			}
		})
	}
	// Replay concurrently with the workers: the coordinator touches only
	// the observed graph and the main fabric (AddTrace resolution may
	// fault stubs in there), never the replicas; shared lazy-universe
	// state (descriptors, block index, sealed address records) is
	// immutable, so the two sides share nothing mutable.
	pending := make(map[int][]*probe.Trace, w)
	nextIdx, done, nTotal := 0, 0, -1
	for nTotal < 0 || done < nTotal {
		select {
		case b := <-results:
			pending[b.idx] = b.traces
			done++
			for {
				traces, ok := pending[nextIdx]
				if !ok {
					break
				}
				delete(pending, nextIdx)
				for _, tr := range traces {
					c.ITDK.AddTrace(tr)
				}
				nextIdx++
			}
		case n := <-total:
			nTotal = n
			total = nil
		}
	}
	pool.barrier()
}

// streamSampleTargets is the streamed replacement for the target-list
// stride sample: permute the canonically sorted list with the campaign
// seed, accept under the same per-prefix budget the bootstrap used
// (budget key = the target's ground-truth AS aggregate) up to
// MaxTargets, and re-sort — the shards' canonical order contract. A pure
// function of the sorted list, so every engine probes the same subset.
func (c *Campaign) streamSampleTargets(targets []netaddr.Addr) []netaddr.Addr {
	max := c.Cfg.MaxTargets
	budget := c.Cfg.PrefixBudget
	if len(targets) == 0 || (budget <= 0 && (max <= 0 || len(targets) <= max)) {
		return targets
	}
	f := newFeistel(len(targets), c.Cfg.StreamSeed^0x7461726765747321)
	used := make(map[netaddr.Prefix]int)
	capN := len(targets)
	if max > 0 && max < capN {
		capN = max
	}
	out := make([]netaddr.Addr, 0, capN)
	for i := uint64(0); i < uint64(len(targets)); i++ {
		if max > 0 && len(out) >= max {
			break
		}
		a := targets[f.walk(i)]
		if budget > 0 {
			// Bootstrap traced every selected target, so the owner lookup
			// never faults in a new stub here.
			if info, ok := c.In.Owner(a); ok {
				if used[info.AS.Aggregate] >= budget {
					continue
				}
				used[info.AS.Aggregate]++
			}
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
