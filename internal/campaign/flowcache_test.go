package campaign

import (
	"fmt"
	"strings"
	"testing"
)

// dumpExactCampaign renders everything the flow cache must leave untouched,
// down to virtual timing: the probe accounting (bootstrap/campaign split),
// loop diagnostics, every hop of every record including round-trip times,
// and the per-shard probe/reply/virtual-clock totals. Worker assignment,
// wall-clock, and the cache counters themselves are deliberately excluded —
// they are execution detail, not campaign output.
func dumpExactCampaign(t *testing.T, c *Campaign) string {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "probes=%d bootstrap=%d budgetHits=%d loopDrops=%d\n",
		c.Probes, c.BootstrapProbes(), c.BudgetHits, c.LoopDrops)
	for i, rec := range c.Records {
		fmt.Fprintf(&sb, "rec %d vp=%s dst=%s reached=%v hops=", i, rec.VP.Host.Name(), rec.Trace.Dst, rec.Trace.Reached)
		for _, h := range rec.Trace.Hops {
			fmt.Fprintf(&sb, "[%d %s rtt=%d rttl=%d t=%d c=%d mpls=%v]",
				h.ProbeTTL, h.Addr, h.RTT.Nanoseconds(), h.ReplyTTL, h.ICMPType, h.ICMPCode, h.MPLS)
		}
		fmt.Fprintf(&sb, " echoTTL=%d", rec.EgressEchoTTL)
		if rec.Revelation != nil {
			fmt.Fprintf(&sb, " rev=%s->%s %v tech=%s probes=%d",
				rec.Revelation.Ingress, rec.Revelation.Egress, rec.Revelation.Hops,
				rec.Revelation.Technique, rec.Revelation.Probes)
		}
		sb.WriteByte('\n')
	}
	for _, sh := range c.Shards {
		fmt.Fprintf(&sb, "shard %d team=%d targets=%d probes=%d replies=%d rev=%d depth=%d virtual=%d\n",
			sh.Shard, sh.Team, sh.Targets, sh.Probes, sh.Replies,
			sh.Revelations, sh.MaxRevealDepth, sh.VirtualElapsed.Nanoseconds())
	}
	return sb.String()
}

// TestFlowCacheEquivalenceGolden is the acceptance test for the
// flow-trajectory cache: a campaign with the cache enabled must be
// byte-identical — hops, reply TTLs, label stacks, RTTs, probe and reply
// counters, and per-shard virtual-clock totals — to the cache-disabled
// oracle, across the serial engine, snapshot and rebuild replicas, and
// 1/2/8-worker pools.
func TestFlowCacheEquivalenceGolden(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HDNThreshold = 6
	// Isolate the flow cache: with the sweep engine on, cold misses go
	// through sweep-resume instead of the upward fast-forward this test
	// pins. TestSweepEquivalenceGolden covers the sweep-on matrix.
	cfg.DisableSweep = true

	oracleCfg := cfg
	oracleCfg.DisableFlowCache = true
	oracle := Run(testInternet(t, 101), oracleCfg)
	want := dumpExactCampaign(t, oracle)
	if len(oracle.Records) == 0 || len(oracle.Revelations()) == 0 {
		t.Fatalf("oracle campaign is trivial: %d records, %d revelations",
			len(oracle.Records), len(oracle.Revelations()))
	}
	if oracle.FlowCache.Hits != 0 || oracle.FlowCache.Misses != 0 {
		t.Fatalf("cache-disabled oracle has cache activity: %+v", oracle.FlowCache)
	}

	// Serial engine, cache on.
	cached := Run(testInternet(t, 101), cfg)
	if got := dumpExactCampaign(t, cached); got != want {
		t.Errorf("serial cached run diverged from oracle\n%s", firstDiff(want, got))
	}
	if cached.FlowCache.Hits == 0 || cached.FlowCache.FastForwards == 0 {
		t.Errorf("serial cached run shows no cache activity: %+v", cached.FlowCache)
	}

	// Parallel engine: snapshot replicas at 1/2/8 workers, a rebuild
	// replica, and a cache-disabled parallel control.
	for _, tc := range []struct {
		name    string
		pcfg    ParallelConfig
		disable bool
	}{
		{"workers=1", ParallelConfig{Workers: 1}, false},
		{"workers=2", ParallelConfig{Workers: 2}, false},
		{"workers=8", ParallelConfig{Workers: 8}, false},
		{"workers=2 rebuild", ParallelConfig{Workers: 2, Replica: ReplicaRebuild}, false},
		{"workers=2 cache-off", ParallelConfig{Workers: 2}, true},
	} {
		runCfg := cfg
		runCfg.DisableFlowCache = tc.disable
		c, err := RunParallel(testInternet(t, 101), runCfg, tc.pcfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := dumpExactCampaign(t, c); got != want {
			t.Errorf("%s: diverged from cache-disabled oracle\n%s", tc.name, firstDiff(want, got))
		}
		if !tc.disable && c.FlowCache.Misses == 0 {
			t.Errorf("%s: cache enabled but never consulted: %+v", tc.name, c.FlowCache)
		}
		if tc.disable && c.FlowCache != oracle.FlowCache {
			t.Errorf("%s: cache disabled but counters moved: %+v", tc.name, c.FlowCache)
		}
	}
}

// TestFlowCacheRepeatRunsWarm pins the steady-state behaviour benchrun
// measures: re-running the campaign on the same Internet keeps the cache
// warm (hits dominate) and still reproduces the oracle byte-for-byte.
func TestFlowCacheRepeatRunsWarm(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HDNThreshold = 6
	cfg.DisableSweep = true

	oracleCfg := cfg
	oracleCfg.DisableFlowCache = true
	want := dumpExactCampaign(t, Run(testInternet(t, 101), oracleCfg))

	in := testInternet(t, 101)
	first := Run(in, cfg)
	second := Run(in, cfg)
	if got := dumpExactCampaign(t, second); got != want {
		t.Errorf("warm rerun diverged from oracle\n%s", firstDiff(want, got))
	}
	if second.FlowCache.Hits <= first.FlowCache.Hits {
		t.Errorf("warm rerun should hit more: first %+v, second %+v",
			first.FlowCache, second.FlowCache)
	}
	if second.FlowCache.Misses >= first.FlowCache.Misses {
		t.Errorf("warm rerun should miss less: first %+v, second %+v",
			first.FlowCache, second.FlowCache)
	}
}
