package campaign

import (
	"testing"

	"wormhole/internal/probe"
)

// churnTestConfig is the campaign configuration the churn tests share: a
// churn schedule dense enough that every engine fires events mid-shard.
func churnTestConfig() Config {
	cfg := DefaultConfig()
	cfg.HDNThreshold = 6
	cfg.ChurnRate = 2
	cfg.ChurnSeed = 42
	return cfg
}

// TestChurnEquivalenceGolden is the acceptance test for the churn engine
// and its delta-invalidation: under an identical churn schedule, a
// campaign with the flow cache and sweep engine enabled must be
// byte-identical — hops, reply TTLs, label stacks, RTTs, probe and reply
// counters, per-shard virtual-clock totals — to the uncached, unswept
// oracle, across the serial engine, snapshot and rebuild replicas,
// 1/2/8-worker pools, both invalidation modes (scoped delta eviction and
// the flush-the-world baseline), and both probe methods. The UDP run
// additionally exercises eviction of aliased port-cycle slots: scoped
// deltas evict a master walk's entry out from under every slot sharing
// it, and the lazily pruned master index must re-walk, not serve stale
// trajectories.
func TestChurnEquivalenceGolden(t *testing.T) {
	t.Run("icmp", func(t *testing.T) { testChurnEquivalence(t, probe.ICMPParis) })
	t.Run("udp", func(t *testing.T) { testChurnEquivalence(t, probe.UDPParis) })
}

func testChurnEquivalence(t *testing.T, method probe.Method) {
	cfg := churnTestConfig()
	cfg.Method = method

	oracleCfg := cfg
	oracleCfg.DisableFlowCache = true
	oracleCfg.DisableSweep = true
	oracle := Run(testInternet(t, 101), oracleCfg)
	want := dumpExactCampaign(t, oracle)
	if len(oracle.Records) == 0 || len(oracle.Revelations()) == 0 {
		t.Fatalf("oracle campaign is trivial: %d records, %d revelations",
			len(oracle.Records), len(oracle.Revelations()))
	}
	if oracle.ChurnEvents == 0 {
		t.Fatal("churn armed but no events fired")
	}
	if oracle.ChurnEvents%3 != 0 {
		t.Fatalf("churn events %d not whole fail/reconverge/repair cycles", oracle.ChurnEvents)
	}

	// The schedule must actually perturb the measurements, or the whole
	// matrix is vacuous.
	staticCfg := oracleCfg
	staticCfg.ChurnRate = 0
	static := Run(testInternet(t, 101), staticCfg)
	if dumpExactCampaign(t, static) == want {
		t.Fatal("churned oracle is identical to the static campaign; schedule is inert")
	}
	if static.ChurnEvents != 0 {
		t.Fatalf("static campaign fired %d churn events", static.ChurnEvents)
	}

	for _, tc := range []struct {
		name     string
		parallel bool
		pcfg     ParallelConfig
		mutate   func(*Config)
	}{
		{name: "serial delta", mutate: func(c *Config) {}},
		{name: "serial flush-world", mutate: func(c *Config) { c.ChurnFlushWorld = true }},
		{name: "serial delta sweep-off", mutate: func(c *Config) { c.DisableSweep = true }},
		{name: "workers=1", parallel: true, pcfg: ParallelConfig{Workers: 1}, mutate: func(c *Config) {}},
		{name: "workers=2", parallel: true, pcfg: ParallelConfig{Workers: 2}, mutate: func(c *Config) {}},
		{name: "workers=8", parallel: true, pcfg: ParallelConfig{Workers: 8}, mutate: func(c *Config) {}},
		{name: "workers=2 rebuild", parallel: true, pcfg: ParallelConfig{Workers: 2, Replica: ReplicaRebuild}, mutate: func(c *Config) {}},
		{name: "workers=2 flush-world", parallel: true, pcfg: ParallelConfig{Workers: 2}, mutate: func(c *Config) { c.ChurnFlushWorld = true }},
		{name: "workers=2 cache-off", parallel: true, pcfg: ParallelConfig{Workers: 2}, mutate: func(c *Config) {
			c.DisableFlowCache = true
			c.DisableSweep = true
		}},
	} {
		runCfg := cfg
		tc.mutate(&runCfg)
		var (
			c   *Campaign
			err error
		)
		if tc.parallel {
			c, err = RunParallel(testInternet(t, 101), runCfg, tc.pcfg)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		} else {
			c = Run(testInternet(t, 101), runCfg)
		}
		if got := dumpExactCampaign(t, c); got != want {
			t.Errorf("%s: diverged from churned oracle\n%s", tc.name, firstDiff(want, got))
		}
		if c.ChurnEvents != oracle.ChurnEvents {
			t.Errorf("%s: fired %d churn events, oracle fired %d", tc.name, c.ChurnEvents, oracle.ChurnEvents)
		}
		if !runCfg.DisableFlowCache && c.FlowCache.Hits == 0 {
			t.Errorf("%s: cache enabled under churn but never hit: %+v", tc.name, c.FlowCache)
		}
	}
}

// TestChurnRestoresPristine pins the repair guarantee: a churned campaign
// leaves the fabric's control plane byte-identical to the pristine build,
// so a subsequent static campaign on the same Internet reproduces one on
// a freshly built Internet exactly.
func TestChurnRestoresPristine(t *testing.T) {
	staticCfg := DefaultConfig()
	staticCfg.HDNThreshold = 6
	want := dumpExactCampaign(t, Run(testInternet(t, 101), staticCfg))

	in := testInternet(t, 101)
	churned := Run(in, churnTestConfig())
	if churned.ChurnEvents == 0 {
		t.Fatal("no churn events fired")
	}
	after := Run(in, staticCfg)
	if got := dumpExactCampaign(t, after); got != want {
		t.Errorf("post-churn static campaign diverged from pristine build\n%s", firstDiff(want, got))
	}
}

// TestChurnParallelWarmPool pins pool reuse under scoped invalidation:
// because delta eviction never bumps the fabric's topology generation and
// repair restores the pristine control plane, a second churned parallel
// campaign reuses the pooled replicas (no replica build) and still
// matches the serial output.
func TestChurnParallelWarmPool(t *testing.T) {
	cfg := churnTestConfig()
	want := dumpExactCampaign(t, Run(testInternet(t, 101), cfg))

	in := testInternet(t, 101)
	pcfg := ParallelConfig{Workers: 4}
	first, err := RunParallel(in, cfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunParallel(in, cfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := dumpExactCampaign(t, second); got != want {
		t.Errorf("warm-pool churned rerun diverged\n%s", firstDiff(want, got))
	}
	if second.Phase.Replica > first.Phase.Replica && second.Phase.Replica > first.Phase.Replica*2 {
		t.Logf("warm rerun replica phase %v vs cold %v (informational)",
			second.Phase.Replica, first.Phase.Replica)
	}
	if second.FlowCache.SharedHits == 0 && second.FlowCache.Hits == 0 {
		t.Errorf("warm churned rerun shows no cache reuse: %+v", second.FlowCache)
	}
}
