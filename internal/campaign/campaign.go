// Package campaign orchestrates the paper's Sec. 4 measurement campaign
// over a generated Internet:
//
//  1. a bootstrap traceroute sweep builds the observed router-level graph
//     (the ITDK stand-in),
//  2. High Degree Nodes seed the target selection: set A (HDN neighbors)
//     union set B (neighbors of neighbors), split across vantage-point
//     teams,
//  3. every target is traced (first TTL 2) with per-hop fingerprinting,
//  4. traces ending I, E, D with I and E candidate LERs of the same AS
//     trigger the recursive revelation process (DPR/BRPR),
//  5. the records feed the paper's analyses: FRPLA/RTLA distributions,
//     tunnel length distributions, per-AS deployment tables and graph
//     corrections.
package campaign

import (
	"hash/fnv"
	"sort"
	"time"

	"wormhole/internal/alias"
	"wormhole/internal/fingerprint"
	"wormhole/internal/gen"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/probe"
	"wormhole/internal/reveal"
	"wormhole/internal/topo"
)

// Config tunes a campaign.
type Config struct {
	// HDNThreshold is the degree above which a node is "suspicious". The
	// paper uses 128 against the full ITDK; synthetic topologies are
	// smaller, so the default scales down. Zero selects the threshold
	// adaptively (the 90th percentile of the observed degree
	// distribution, floored at 4).
	HDNThreshold int
	// Teams is the number of vantage-point teams (5 in the paper).
	Teams int
	// FirstTTL is the initial probe TTL (2 in the paper).
	FirstTTL uint8
	// BootstrapSpread is how many VPs trace each bootstrap target.
	BootstrapSpread int
	// ASMapNoise misattributes this fraction of addresses to a wrong AS,
	// modeling the imperfect IP-to-AS mapping (Team Cymru / ITDK) the
	// paper relies on. Deterministic per address.
	ASMapNoise float64
	// MeasuredAliases replaces the generator's ground-truth alias sets
	// with Mercator-style alias resolution run from the first vantage
	// point — the realistic ITDK construction, where routers that source
	// replies from the probed address stay split across per-interface
	// nodes. AS numbers still come from the (possibly noisy) IP-to-AS
	// mapping, as in the paper.
	MeasuredAliases bool
	// DisableFlowCache turns the fabric's flow-trajectory cache off, so
	// every probe is simulated live. The default (cache on) is pinned
	// byte-identical to this oracle by the equivalence tests; the switch
	// exists for those tests and for benchmarking the speedup.
	DisableFlowCache bool
	// DisableSweep turns the fabric's single-injection TTL sweep off, so
	// cold traces probe per-TTL instead of deriving the sweep from one
	// walk. Independent of DisableFlowCache: the sweep is what makes the
	// cache-off cold path cheap, the cache is what makes re-traces free.
	DisableSweep bool
	// ChurnRate arms the dynamic-topology churn engine: the expected
	// number of link fail/reconverge/repair cycles injected per shard,
	// fired at deterministic probe boundaries mid-campaign. Zero (the
	// default) probes a static Internet. Events are planned once against
	// the campaign topology and replayed identically on every engine, so
	// serial, parallel, cached, and oracle runs observe the same dynamic
	// world.
	ChurnRate float64
	// ChurnSeed seeds the churn schedule; the same (topology, rate, seed)
	// triple always fails the same links at the same probe ticks.
	ChurnSeed int64
	// ChurnFlushWorld switches churn invalidation from scoped
	// delta-eviction to a whole-fabric cache flush per event — the
	// baseline the delta path is equivalence-tested and benchmarked
	// against.
	ChurnFlushWorld bool
	// MaxBootstrapTargets caps how many router addresses the bootstrap
	// sweep traces, as a deterministic stride sample over the full set
	// (zero = no cap). The hierarchical scales set it: sweeping 10⁵
	// routers from every VP is neither tractable nor representative of
	// the paper's campaigns, which sampled the address space.
	MaxBootstrapTargets int
	// MaxTargets caps the selected target list (set A ∪ B) the same way
	// (zero = no cap). Sampling happens after the canonical sort, so
	// serial and parallel engines probe the identical subset.
	MaxTargets int
	// Method selects the traceroute probe modality for every VP:
	// probe.ICMPParis (the zero value, the default) or probe.UDPParis.
	// Pings (alias resolution, fingerprinting) stay ICMP either way.
	Method probe.Method
	// Stream switches bootstrap target selection from the stride sample
	// (which enumerates every router address — and, on a lazy world,
	// materializes every stub) to the streaming scheduler: a seeded
	// pseudo-random permutation over the probeable target space, drained
	// in bounded batches under MaxBootstrapTargets and PrefixBudget.
	// Memory is flat in the universe size, and the accepted sequence is a
	// pure function of (space, StreamSeed) — identical on every engine.
	// MaxTargets capping switches to the same permuted selection.
	Stream bool
	// PrefixBudget caps how many targets the streaming scheduler accepts
	// per budget prefix (the target's AS aggregate); zero = no budget.
	// Only meaningful with Stream.
	PrefixBudget int
	// StreamBatch is the streaming scheduler's drain granularity (zero
	// selects the default, 256 targets per batch). Batch size never
	// changes campaign output — only scheduling overhead.
	StreamBatch int
	// StreamSeed seeds the target-space permutation. The same (space,
	// seed) always yields the same target sequence.
	StreamSeed int64
}

// DefaultConfig mirrors the paper at synthetic scale, with an adaptive
// HDN threshold.
func DefaultConfig() Config {
	return Config{Teams: 5, FirstTTL: 2, BootstrapSpread: 2}
}

// Record is one campaign trace with its analysis context.
type Record struct {
	VP    *gen.VP
	Trace *probe.Trace
	// Candidate is set when the trace ended I, E, D with I and E in the
	// same AS (the revelation trigger).
	Candidate *reveal.Candidate
	// CandidateAS is that AS number.
	CandidateAS uint32
	// Revelation is the outcome of the recursive revelation, when run.
	Revelation *reveal.Revelation
	// EgressEchoTTL is the reply TTL of an echo-request sent to the
	// candidate egress from this record's own vantage point (so that RTLA
	// compares two replies that crossed the same return path). Zero when
	// the ping went unanswered or there is no candidate.
	EgressEchoTTL uint8
}

// Campaign holds all collected state.
type Campaign struct {
	In  *gen.Internet
	Cfg Config

	// ITDK is the bootstrap observed graph (invisible tunnels included).
	ITDK *topo.Graph
	// HDNs are the suspicious nodes.
	HDNs []*topo.Node
	// Targets is the destination set (A union B).
	Targets []netaddr.Addr
	// Records are the campaign traces.
	Records []*Record
	// Fingerprints indexes every fingerprinted hop address.
	Fingerprints map[netaddr.Addr]fingerprint.Result
	// FingerprintVP records which vantage point collected each
	// fingerprint; TTL-delta analyses must pair replies observed from the
	// same VP.
	FingerprintVP map[netaddr.Addr]*gen.VP
	// Probes counts every probe packet sent (campaign accounting).
	Probes uint64
	// BudgetHits counts fabric drains that exhausted their event budget
	// anywhere in the campaign (bootstrap included); LoopDrops the queued
	// events discarded when that happened. Non-zero totals mean some
	// probes died inside the fabric instead of being answered or timing
	// out — surfaced in the post-mortem so silent discards are never
	// mistaken for clean '*' hops.
	BudgetHits, LoopDrops uint64
	// FlowCache aggregates the fabric flow-trajectory cache counters over
	// the whole campaign (bootstrap plus every shard). All-zero when the
	// cache is disabled or inert.
	FlowCache netsim.FlowCacheStats
	// Sweep aggregates the single-injection TTL sweep counters over the
	// whole campaign (bootstrap plus every shard). All-zero when the
	// sweep is disabled or inert.
	Sweep netsim.SweepStats
	// ChurnEvents counts the topology churn events fired across all
	// shards (zero when ChurnRate is zero).
	ChurnEvents uint64
	// Lazy is the source fabric's resident-set accounting after the run
	// (Resident == Total on eager worlds), with FaultIns/FaultInNS as
	// campaign deltas summed over the source fabric and every worker
	// replica — the materialization work this campaign caused.
	Lazy gen.LazyStats
	// ReplicaResident sums the worker replicas' resident router counts
	// (zero for the serial engine): the fabric state actually paged in
	// across the whole pool.
	ReplicaResident int
	// StreamBytes counts every byte the coordinator moved over its worker
	// sockets — world blobs out, traces and shard results back (zero for
	// the in-process engines).
	StreamBytes uint64

	// Shards reports per-shard measurement statistics (probing phase
	// only), in canonical shard order.
	Shards []ShardStats
	// Workers is the size of the worker pool the campaign ran with (1 for
	// the serial engine). Every pool slot participates in the sharded
	// bootstrap sweep.
	Workers int
	// ShardWorkers is the effective parallelism of the probing phase:
	// min(Workers, shard count). With ShardByTeam's 5 shards, pool slots
	// beyond the fifth idle through that phase — this field reports what
	// actually ran, where Workers reports what was provisioned.
	ShardWorkers int
	// Phase breaks the campaign wall-clock into engine phases.
	Phase PhaseTimings

	aliasSets *alias.Sets
	// teamOf assigns each target to a vantage-point team with the
	// paper's neighborhood-consistency rule.
	teamOf map[netaddr.Addr]int
	// bootProbes counts the probes spent on bootstrap (and, with
	// MeasuredAliases, alias resolution) before the shard phase.
	bootProbes uint64
	// bootFlow is the flow-cache activity of the bootstrap phase.
	bootFlow netsim.FlowCacheStats
	// bootSweep is the sweep-engine activity of the bootstrap phase.
	bootSweep netsim.SweepStats
}

// PhaseTimings is the campaign wall-clock split by engine phase: replica
// acquisition (zero when the pool is warm or the engine is serial), the
// bootstrap sweep plus target selection, and the shard probing phase.
type PhaseTimings struct {
	Replica   time.Duration
	Bootstrap time.Duration
	Probe     time.Duration
}

// BootstrapProbes returns the probes spent on the bootstrap sweep (and
// alias resolution, when enabled) before the shard phase; Probes -
// BootstrapProbes is the shard-phase probe count. Benchmarks report the
// two populations separately so serial and parallel runs are compared on
// the same footing.
func (c *Campaign) BootstrapProbes() uint64 { return c.bootProbes }

// Run executes the full campaign serially on the Internet's own fabric:
// the same shard pipeline the parallel engine uses, with the shards
// processed one after another. Output is byte-identical to RunParallel at
// any worker count.
func Run(in *gen.Internet, cfg Config) *Campaign {
	lz0 := in.LazyStats()
	c := prepare(in, cfg)
	hdnAddr := c.hdnByAddr()
	plan := gen.BuildChurnPlan(in, cfg.ChurnRate, cfg.ChurnSeed)
	t0 := time.Now()
	var results []*shardResult
	for _, sh := range c.buildShards(ShardByTeam) {
		vp := c.vpForTeam(sh.team)
		// The schedule's random stream is the canonical shard index, so
		// the parallel engine fires the same events per shard.
		events := plan.EventsFor(in, sh.idx, len(sh.targets))
		results = append(results, c.runShard(sh, vp, vp, hdnAddr, events, cfg.ChurnFlushWorld))
	}
	c.Phase.Probe = time.Since(t0)
	c.Workers = 1
	c.ShardWorkers = 1
	c.merge(results)
	c.Lazy = in.LazyStats()
	c.Lazy.FaultIns -= lz0.FaultIns
	c.Lazy.FaultInNS -= lz0.FaultInNS
	return c
}

// prepare runs the phases every engine shares: bootstrap sweep, target
// selection, and prober configuration. The returned campaign is ready for
// its shards to be probed.
func prepare(in *gen.Internet, cfg Config) *Campaign {
	c := newCampaign(in, cfg)
	in.Net.SetFlowCacheEnabled(!cfg.DisableFlowCache)
	in.Net.SetSweepEnabled(!cfg.DisableSweep)
	// The bootstrap sweep always probes from TTL 1: it maps the whole
	// path, gateway included, and — unlike the prober's last-configured
	// FirstTTL, which a previous campaign on the same Internet may have
	// left at cfg.FirstTTL — it makes the probe count invariant across
	// repeated runs.
	for _, vp := range in.VPs {
		vp.Prober.FirstTTL = 1
		vp.Prober.Method = cfg.Method
	}
	t0 := time.Now()
	sent0 := sentByVPs(in.VPs)
	fab0 := in.Net.FabricStats()
	flow0 := in.Net.FlowCacheStats()
	sweep0 := in.Net.SweepStats()
	c.bootstrap()
	c.selectTargets()
	c.bootProbes = sentByVPs(in.VPs) - sent0
	fab1 := in.Net.FabricStats()
	c.BudgetHits = fab1.BudgetExhausted - fab0.BudgetExhausted
	c.LoopDrops = fab1.DroppedEvents - fab0.DroppedEvents
	c.bootFlow = flowDelta(in.Net.FlowCacheStats(), flow0)
	c.bootSweep = sweepDelta(in.Net.SweepStats(), sweep0)
	c.Phase.Bootstrap = time.Since(t0)
	// Campaign-wide prober configuration happens once, here: FirstTTL is
	// shared per-VP state, so mutating it inside the per-target probe loop
	// (as an earlier version did) is exactly the kind of latent coupling a
	// parallel driver turns into a race. Every VP — including ones that end
	// up with no targets but still run revelation re-traces — probes the
	// whole campaign with the same FirstTTL.
	for _, vp := range in.VPs {
		vp.Prober.FirstTTL = cfg.FirstTTL
	}
	return c
}

// newCampaign allocates the shared campaign state every engine starts
// from.
func newCampaign(in *gen.Internet, cfg Config) *Campaign {
	return &Campaign{
		In:            in,
		Cfg:           cfg,
		Fingerprints:  make(map[netaddr.Addr]fingerprint.Result),
		FingerprintVP: make(map[netaddr.Addr]*gen.VP),
	}
}

// sentByVPs sums the probe counters of a vantage-point set.
func sentByVPs(vps []*gen.VP) uint64 {
	var n uint64
	for _, vp := range vps {
		n += vp.Prober.Sent
	}
	return n
}

// flowDelta subtracts two flow-cache counter snapshots.
func flowDelta(a, b netsim.FlowCacheStats) netsim.FlowCacheStats {
	return netsim.FlowCacheStats{
		Hits:          a.Hits - b.Hits,
		Misses:        a.Misses - b.Misses,
		FastForwards:  a.FastForwards - b.FastForwards,
		Invalidations: a.Invalidations - b.Invalidations,
		SharedHits:    a.SharedHits - b.SharedHits,
	}
}

// addFlow accumulates flow-cache counters.
func addFlow(dst *netsim.FlowCacheStats, d netsim.FlowCacheStats) {
	dst.Hits += d.Hits
	dst.Misses += d.Misses
	dst.FastForwards += d.FastForwards
	dst.Invalidations += d.Invalidations
	dst.SharedHits += d.SharedHits
}

// sweepDelta subtracts two sweep-engine counter snapshots.
func sweepDelta(a, b netsim.SweepStats) netsim.SweepStats {
	return a.Sub(b)
}

// addSweep accumulates sweep-engine counters.
func addSweep(dst *netsim.SweepStats, d netsim.SweepStats) {
	dst.Add(d)
}

// vpForTeam maps a team index to its vantage point (the paper's 5-team
// split over the VP pool).
func (c *Campaign) vpForTeam(team int) *gen.VP {
	return c.In.VPs[team%len(c.In.VPs)]
}

// hdnByAddr indexes the HDN set by interface address (the Sec. 4
// candidate post-processing filter).
func (c *Campaign) hdnByAddr() map[netaddr.Addr]*topo.Node {
	hdnAddr := make(map[netaddr.Addr]*topo.Node)
	for _, n := range c.HDNs {
		for _, a := range n.Addrs {
			hdnAddr[a] = n
		}
	}
	return hdnAddr
}

// resolver returns the campaign's IP-to-router/AS mapping: the ground
// truth, optionally corrupted by ASMapNoise the way real IP-to-AS data
// is, or — with MeasuredAliases — replaced by Mercator-resolved sets.
func (c *Campaign) resolver() topo.Resolver {
	base := c.In.Resolve
	if c.Cfg.MeasuredAliases && len(c.In.VPs) > 0 {
		if c.aliasSets == nil {
			c.aliasSets = alias.Resolve(c.In.VPs[0].Prober, c.In.RouterAddrs())
		}
		truth := base // AS numbers still come from the IP-to-AS mapping
		base = c.aliasSets.Resolver(func(a netaddr.Addr) uint32 {
			_, asn, _ := truth(a)
			return asn
		})
	}
	if c.Cfg.ASMapNoise <= 0 {
		return base
	}
	var nums []uint32
	for _, as := range c.In.ASes {
		nums = append(nums, as.Num)
	}
	noise := c.Cfg.ASMapNoise
	return func(a netaddr.Addr) (string, uint32, bool) {
		name, asn, ok := base(a)
		if !ok {
			return name, asn, ok
		}
		h := fnv.New32a()
		u := uint32(a)
		h.Write([]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)})
		v := h.Sum32()
		if float64(v%10000)/10000 < noise && len(nums) > 1 {
			// Deterministically misattribute to another AS.
			asn = nums[int(v)%len(nums)]
		}
		return name, asn, true
	}
}

// bootstrap sweeps all router addresses from a few VPs each and builds
// the observed graph.
// strideSample returns up to max elements of xs at evenly spaced indices
// (the full slice when max is zero or not exceeded). Deterministic, so
// every engine samples the identical subset.
func strideSample[T any](xs []T, max int) []T {
	if max <= 0 || len(xs) <= max {
		return xs
	}
	out := make([]T, max)
	for i := range out {
		out[i] = xs[i*len(xs)/max]
	}
	return out
}

// bootstrapAddrs returns the bootstrap sweep's destination list: every
// registered router address, stride-sampled down to the configured cap.
func (c *Campaign) bootstrapAddrs() []netaddr.Addr {
	return strideSample(c.In.RouterAddrs(), c.Cfg.MaxBootstrapTargets)
}

func (c *Campaign) bootstrap() {
	c.ITDK = topo.New(c.resolver())
	if c.Cfg.Stream {
		c.bootstrapStream()
		c.finishBootstrapGraph()
		return
	}
	addrs := c.bootstrapAddrs()
	vps := c.In.VPs
	spread := c.Cfg.BootstrapSpread
	if spread < 1 {
		spread = 1
	}
	for i, dst := range addrs {
		for k := 0; k < spread && k < len(vps); k++ {
			vp := vps[(i+k)%len(vps)]
			tr := vp.Prober.Traceroute(dst)
			c.ITDK.AddTrace(tr)
		}
	}
	c.finishBootstrapGraph()
}

// finishBootstrapGraph derives the HDN set from the observed graph,
// selecting the threshold adaptively when unset. Shared by the serial and
// sharded bootstrap paths: it must run after the last AddTrace.
func (c *Campaign) finishBootstrapGraph() {
	if c.Cfg.HDNThreshold == 0 {
		c.Cfg.HDNThreshold = c.ITDK.DegreeHistogram().Quantile(0.90)
		if c.Cfg.HDNThreshold < 4 {
			c.Cfg.HDNThreshold = 4
		}
	}
	c.HDNs = c.ITDK.HDNs(c.Cfg.HDNThreshold)
}

// selectTargets builds set A (HDN neighbors) and set B (their neighbors),
// and assigns each target to a team with the paper's consistency rule:
// "if neighbor N is in VP set 1, then all neighbors of N are also in VP
// set 1" — a neighbor's whole neighborhood probes from one team.
func (c *Campaign) selectTargets() {
	teams := c.Cfg.Teams
	if teams < 1 {
		teams = 1
	}
	c.teamOf = make(map[netaddr.Addr]int)
	seen := make(map[netaddr.Addr]bool)
	add := func(n *topo.Node, team int) {
		for _, a := range n.Addrs {
			if !seen[a] {
				seen[a] = true
				c.Targets = append(c.Targets, a)
				c.teamOf[a] = team
			}
		}
	}
	nextTeam := 0
	for _, hdn := range c.HDNs {
		for _, nb := range c.ITDK.Neighbors(hdn) { // set A
			team := nextTeam % teams
			nextTeam++
			add(nb, team)
			for _, nb2 := range c.ITDK.Neighbors(nb) { // set B: same team as N
				add(nb2, team)
			}
		}
	}
	sort.Slice(c.Targets, func(i, j int) bool { return c.Targets[i] < c.Targets[j] })
	// Cap after the canonical sort: the sampled subset is a function of
	// the sorted list alone, so every engine probes the same targets.
	// teamOf keeps entries for sampled-out addresses; only c.Targets
	// drives the shards.
	if c.Cfg.Stream {
		c.Targets = c.streamSampleTargets(c.Targets)
	} else {
		c.Targets = strideSample(c.Targets, c.Cfg.MaxTargets)
	}
}

// Revelations returns the distinct successful revelations.
func (c *Campaign) Revelations() []*reveal.Revelation {
	seen := make(map[*reveal.Revelation]bool)
	var out []*reveal.Revelation
	for _, rec := range c.Records {
		if rec.Revelation != nil && !seen[rec.Revelation] {
			seen[rec.Revelation] = true
			out = append(out, rec.Revelation)
		}
	}
	return out
}

// CorrectedGraph rebuilds the observed graph with revealed tunnel hops
// spliced between their ingress-egress pairs (the Fig. 10 correction).
// The splice is router-level: any trace whose consecutive hops land on a
// revealed pair's routers — whatever interface addresses it observed —
// gets the hidden LSRs inserted, so the false mesh dissolves at node
// granularity, the way the paper corrects the mapped ITDK graph.
func (c *Campaign) CorrectedGraph() *topo.Graph {
	g := topo.New(c.resolver())
	resolve := c.resolver()
	routerOf := func(a netaddr.Addr) string {
		if name, _, ok := resolve(a); ok {
			return name
		}
		return "unmapped-" + a.String()
	}
	replaced := make(map[[2]string][]netaddr.Addr)
	for _, rev := range c.Revelations() {
		if len(rev.Hops) > 0 {
			replaced[[2]string{routerOf(rev.Ingress), routerOf(rev.Egress)}] = rev.Hops
		}
	}
	for _, rec := range c.Records {
		c.addCorrectedTrace(g, rec.Trace, routerOf, replaced)
	}
	return g
}

// addCorrectedTrace splices revealed hops into a trace's adjacency.
func (c *Campaign) addCorrectedTrace(g *topo.Graph, tr *probe.Trace, routerOf func(netaddr.Addr) string, replaced map[[2]string][]netaddr.Addr) {
	var seq []netaddr.Addr
	for _, h := range tr.Hops {
		if !h.Anonymous() {
			seq = append(seq, h.Addr)
		}
	}
	var path []netaddr.Addr
	for i, a := range seq {
		path = append(path, a)
		if i+1 < len(seq) {
			if hidden, ok := replaced[[2]string{routerOf(a), routerOf(seq[i+1])}]; ok {
				path = append(path, hidden...)
			}
		}
	}
	g.AddPath(path)
}

// ObservedTraceGraph builds the uncorrected graph from the campaign
// records only (the "invisible" side of Fig. 10).
func (c *Campaign) ObservedTraceGraph() *topo.Graph {
	g := topo.New(c.resolver())
	for _, rec := range c.Records {
		g.AddTrace(rec.Trace)
	}
	return g
}
