package campaign

import (
	"runtime"
	"sync"

	"wormhole/internal/gen"
	"wormhole/internal/reveal"
	"wormhole/internal/stats"
)

// Multi-seed campaigns: each simulated world is single-threaded by
// design, but worlds are independent, so statistical confidence comes
// from running many seeds in parallel — the way the paper spreads its
// measurement across vantage-point teams and two weeks of probing.

// Summary condenses one campaign for cross-seed aggregation.
type Summary struct {
	Seed        int64
	Nodes       int
	Edges       int
	HDNs        int
	Targets     int
	Probes      uint64
	Revelations int
	// HiddenHops is the total LSR count revealed.
	HiddenHops int
	// ByTechnique counts successful revelations per technique.
	ByTechnique map[reveal.Technique]int
	// FTL is the interior tunnel length distribution.
	FTL *stats.Histogram
	// Err carries a generator failure (the slot is then zero-valued).
	Err error
}

// summarize condenses a finished campaign.
func summarize(seed int64, c *Campaign) Summary {
	s := Summary{
		Seed:        seed,
		Nodes:       c.ITDK.NumNodes(),
		Edges:       c.ITDK.NumEdges(),
		HDNs:        len(c.HDNs),
		Targets:     len(c.Targets),
		Probes:      c.Probes,
		ByTechnique: make(map[reveal.Technique]int),
		FTL:         stats.NewHistogram(),
	}
	for _, rev := range c.Revelations() {
		if len(rev.Hops) == 0 {
			continue
		}
		s.Revelations++
		s.HiddenHops += len(rev.Hops)
		s.ByTechnique[rev.Technique]++
		s.FTL.Add(len(rev.Hops))
	}
	return s
}

// RunSeeds generates one world per seed and runs the campaign on each,
// in parallel across CPUs. params.Seed is overridden per slot.
func RunSeeds(seeds []int64, params gen.Params, cfg Config) []Summary {
	out := make([]Summary, len(seeds))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(seeds) {
		workers = len(seeds)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				p := params
				p.Seed = seeds[i]
				in, err := gen.Build(p)
				if err != nil {
					out[i] = Summary{Seed: seeds[i], Err: err}
					continue
				}
				out[i] = summarize(seeds[i], Run(in, cfg))
			}
		}()
	}
	for i := range seeds {
		work <- i
	}
	close(work)
	wg.Wait()
	return out
}

// MergeFTL pools the tunnel-length distributions of many summaries.
func MergeFTL(sums []Summary) *stats.Histogram {
	h := stats.NewHistogram()
	for _, s := range sums {
		if s.FTL == nil {
			continue
		}
		for _, v := range s.FTL.Values() {
			h.AddN(v, s.FTL.Count(v))
		}
	}
	return h
}
