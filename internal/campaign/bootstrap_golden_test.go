package campaign

import (
	"fmt"
	"strings"
	"testing"

	"wormhole/internal/topo"
)

// dumpITDK renders everything the bootstrap phase is responsible for into
// a canonical byte string: the observed graph's full node/link structure
// (node identities are AddTrace insertion order, so they pin the canonical
// merge), the HDN selection with its threshold, and the derived target
// list. Any divergence between engines shows up as a one-line diff.
func dumpITDK(c *Campaign) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes=%d edges=%d threshold=%d\n",
		c.ITDK.NumNodes(), c.ITDK.NumEdges(), c.Cfg.HDNThreshold)
	for _, n := range c.ITDK.Nodes() {
		fmt.Fprintf(&sb, "node %d %s as=%d deg=%d addrs=%v nb=[", n.ID, n.Name, n.ASN, n.Degree(), n.Addrs)
		for i, nb := range c.ITDK.Neighbors(n) {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", nb.ID)
		}
		sb.WriteString("]\n")
	}
	hdn := make(map[topo.NodeID]bool, len(c.HDNs))
	for _, n := range c.HDNs {
		hdn[n.ID] = true
	}
	fmt.Fprintf(&sb, "hdns=")
	for i, n := range c.HDNs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d(deg=%d)", n.ID, n.Degree())
	}
	sb.WriteByte('\n')
	for _, n := range c.ITDK.Nodes() {
		if hdn[n.ID] {
			fmt.Fprintf(&sb, "hdn-flag %d %s\n", n.ID, n.Name)
		}
	}
	fmt.Fprintf(&sb, "targets=%v\n", c.Targets)
	return sb.String()
}

// TestParallelBootstrapITDKGolden pins the sharded bootstrap sweep to the
// serial one: the observed ITDK graph (node and link sets, insertion-order
// node identities), HDN flags, and target selection must be byte-identical
// at every worker count and under both replica modes. This is the
// bootstrap-phase analogue of TestParallelDeterminismGolden, aimed
// squarely at the canonical (VP, target) trace merge.
func TestParallelBootstrapITDKGolden(t *testing.T) {
	build := func() *Campaign {
		in := testInternet(t, 411)
		return Run(in, DefaultConfig())
	}
	want := dumpITDK(build())
	if len(want) == 0 || !strings.Contains(want, "node ") {
		t.Fatalf("serial bootstrap dump is degenerate:\n%s", want)
	}

	for _, mode := range []ReplicaMode{ReplicaSnapshot, ReplicaRebuild} {
		for _, workers := range []int{1, 2, 8} {
			name := fmt.Sprintf("%s-%dw", mode, workers)
			in := testInternet(t, 411)
			c, err := RunParallel(in, DefaultConfig(), ParallelConfig{Workers: workers, Replica: mode})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got := dumpITDK(c); got != want {
				t.Errorf("%s: bootstrap ITDK diverged from serial\n--- serial ---\n%s\n--- %s ---\n%s",
					name, want, name, got)
			}
			if c.Workers != workers {
				t.Errorf("%s: campaign reports %d workers", name, c.Workers)
			}
		}
	}

	// Re-running on the same Internet must reproduce the graph through the
	// warm replica pool and shared reply table, not just on cold replicas.
	in := testInternet(t, 411)
	for round := 0; round < 2; round++ {
		c, err := RunParallel(in, DefaultConfig(), ParallelConfig{Workers: 2})
		if err != nil {
			t.Fatalf("warm round %d: %v", round, err)
		}
		if got := dumpITDK(c); got != want {
			t.Errorf("warm round %d: bootstrap ITDK diverged from serial", round)
		}
	}
}
