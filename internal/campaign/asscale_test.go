package campaign

import (
	"testing"

	"wormhole/internal/gen"
	"wormhole/internal/reveal"
)

// TestASAggregatorOnCampaign runs the Sec. 3.4 AS-scale FRPLA aggregation
// over a real campaign: invisible-tunnel ASes must be flagged, visible
// ones not.
func TestASAggregatorOnCampaign(t *testing.T) {
	p := gen.DefaultParams(555)
	p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 2, 6, 12, 6
	p.MPLSFrac, p.UHPFrac, p.TEFrac = 1.0, 0, 0
	p.NoPropagateFrac = 0.5
	in, err := gen.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	c := Run(in, DefaultConfig())

	agg := reveal.NewASAggregator()
	for _, rec := range c.Records {
		if rec.Candidate == nil {
			continue
		}
		eg := rec.Candidate.Egress
		fp, ok := c.Fingerprints[eg.Addr]
		if !ok {
			continue
		}
		if s, ok := reveal.FRPLA(eg, fp.Signature.TimeExceeded); ok {
			agg.Add(rec.CandidateAS, s)
		}
	}

	right, wrong := 0, 0
	for _, v := range agg.Verdicts() {
		as := in.ASByNum(v.ASN)
		if as == nil || v.Samples < agg.MinSamples {
			continue
		}
		if as.Profile.Invisible() == v.Suspected {
			right++
		} else {
			wrong++
		}
	}
	if right == 0 {
		t.Skip("no AS accumulated enough samples at this seed")
	}
	if wrong > right {
		t.Errorf("aggregator mostly wrong: %d right vs %d wrong", right, wrong)
	}
}
