package campaign

// The multi-process campaign engine: a coordinator plans the same
// canonical partitions the in-process pool uses (contiguous bootstrap job
// ranges, shard si on worker si mod ShardWorkers) and ships each worker
// process a replica of the fabric — the wire-codec snapshot blob in
// ReplicaSnapshot mode, the generator Params in ReplicaRebuild mode —
// over a length-prefixed frame protocol on a Unix (or TCP) socket.
// Workers probe their private fabric and stream tracefile-format records
// back; the coordinator replays bootstrap traces in canonical job order
// and folds shard results through the same merge the serial and
// in-process-parallel engines use, so the distributed output is
// byte-identical to both at any worker count. Trace content is
// probing-order-invariant (the RunParallel contract), which is what makes
// partition-shaped execution safe.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"time"

	"wormhole/internal/fingerprint"
	"wormhole/internal/gen"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/reveal"
	"wormhole/internal/topo"
	"wormhole/internal/tracefile"
)

// DistConfig tunes the distributed engine.
type DistConfig struct {
	// Workers is the number of worker processes (minimum 1).
	Workers int
	// Replica selects how the fabric reaches the workers: ReplicaSnapshot
	// ships the wire-codec blob (decode, no generation replay),
	// ReplicaRebuild ships the generator Params (each worker rebuilds).
	Replica ReplicaMode
	// ShardBy selects the target partitioning, as in ParallelConfig.
	ShardBy ShardBy
	// Network/Addr name the coordinator's listening socket. Empty Network
	// selects a Unix socket in a private temp directory.
	Network, Addr string
	// Spawn launches worker i; the worker must dial (network, addr) and
	// run ServeWorker on the connection. The CLI execs "wormhole worker";
	// tests may spawn goroutines.
	Spawn func(worker int, network, addr string) error
	// JoinTimeout bounds how long the coordinator waits for all workers
	// to connect (default 30s). StepTimeout bounds each frame read from a
	// connected worker (default 5m) — a crashed worker fails fast via
	// EOF; the deadline only guards true hangs.
	JoinTimeout, StepTimeout time.Duration
}

// WorkerError is the typed failure of a distributed campaign: which
// worker broke the protocol (died, timed out, sent garbage) and why. The
// campaign is discarded cleanly — no partial results are merged.
type WorkerError struct {
	Worker int
	Err    error
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("campaign: worker %d: %v", e.Worker, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// Frame protocol: [u32 length | u8 type | payload]. Payloads are JSON
// except msgWorld, which carries the raw snapshot blob in snapshot mode.
const (
	msgHello       byte = iota + 1 // c→w: distHello
	msgWorld                       // c→w: wire blob (snapshot) or Params JSON (rebuild)
	msgBootstrap                   // c→w: []distJob, the worker's contiguous partition
	msgTraces                      // w→c: []tracefile.Trace chunk, partition order
	msgBootDone                    // w→c: distPhaseStats
	msgShards                      // c→w: distShardMsg
	msgShardResult                 // w→c: distShardResult, ascending shard index
	msgWorkerDone                  // w→c: distWorkerDone
)

// maxFrame bounds a single frame; the world blob dominates (the Large
// rung encodes to a few MB) and even the Giga rung stays far below this.
const maxFrame = 1 << 31

// distTraceChunk is the bootstrap streaming granularity: traces per
// msgTraces frame. Chunking never changes output — the coordinator
// replays in partition order regardless.
const distTraceChunk = 256

// distHello opens the session: the worker's identity, the campaign
// configuration, and the main fabric's prober discipline to mirror.
type distHello struct {
	Index   int          `json:"index"`
	Workers int          `json:"workers"`
	Replica ReplicaMode  `json:"replica"`
	Cfg     Config       `json:"cfg"`
	Probers []distProber `json:"probers"`
}

// distProber mirrors the prober fields the in-process pool copies to
// replica VPs (FirstTTL and Method are phase discipline, set separately).
type distProber struct {
	MaxTTL   uint8  `json:"max_ttl"`
	GapLimit int    `json:"gap_limit"`
	Attempts int    `json:"attempts"`
	FlowID   uint16 `json:"flow_id"`
}

// distJob is one bootstrap traceroute: VP index and destination.
type distJob struct {
	VP  int    `json:"vp"`
	Dst uint32 `json:"dst"`
}

// distPhaseStats is a worker's bootstrap-phase accounting delta.
type distPhaseStats struct {
	Probes     uint64                `json:"probes"`
	BudgetHits uint64                `json:"budget_hits,omitempty"`
	LoopDrops  uint64                `json:"loop_drops,omitempty"`
	Flow       netsim.FlowCacheStats `json:"flow"`
	Sweep      netsim.SweepStats     `json:"sweep"`
}

// distNode ships one HDN alias set; workers rebuild the candidate filter
// map from these (distinct IDs preserved, so the same-router exclusion
// compares identically).
type distNode struct {
	ID    int      `json:"id"`
	ASN   uint32   `json:"asn"`
	Addrs []uint32 `json:"addrs"`
}

// distShard assigns one canonical shard to the worker.
type distShard struct {
	Idx     int      `json:"idx"`
	Team    int      `json:"team"`
	Targets []uint32 `json:"targets"`
}

// distShardMsg is the probing-phase plan for one worker.
type distShardMsg struct {
	ShardWorkers int         `json:"shard_workers"`
	Nodes        []distNode  `json:"nodes"`
	Shards       []distShard `json:"shards"`
}

// distRecord is one campaign record in tracefile format, plus the
// candidate flag the coordinator needs to re-derive Record.Candidate
// (CandidateFromTrace is a pure function of the trace, so only presence
// crosses the wire).
type distRecord struct {
	tracefile.Record
	HasCandidate bool `json:"has_candidate,omitempty"`
}

// distShardResult is one shard's private output in wire form.
type distShardResult struct {
	Idx     int                     `json:"idx"`
	Stats   ShardStats              `json:"stats"`
	Records []distRecord            `json:"records"`
	Fps     []tracefile.Fingerprint `json:"fps,omitempty"`
}

// distWorkerDone closes a worker's session with its lazy-fabric deltas.
type distWorkerDone struct {
	FaultIns  int   `json:"fault_ins,omitempty"`
	FaultInNS int64 `json:"fault_in_ns,omitempty"`
	Resident  int   `json:"resident,omitempty"`
}

// countConn wraps a worker connection and bills every byte moved to the
// coordinator's stream counter. RunDistributed drives all connections
// from one goroutine, so a plain counter suffices.
type countConn struct {
	net.Conn
	n *uint64
}

func (c *countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	*c.n += uint64(n)
	return n, err
}

func (c *countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	*c.n += uint64(n)
	return n, err
}

func writeFrame(conn net.Conn, typ byte, payload []byte) error {
	hdr := make([]byte, 5, 5+len(payload))
	binary.LittleEndian.PutUint32(hdr, uint32(len(payload)+1))
	hdr[4] = typ
	_, err := conn.Write(append(hdr, payload...))
	return err
}

func writeJSON(conn net.Conn, typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(conn, typ, payload)
}

func readFrame(conn net.Conn, timeout time.Duration) (byte, []byte, error) {
	if timeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return 0, nil, err
		}
	}
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("bad frame length %d", n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

func readJSON(conn net.Conn, want byte, timeout time.Duration, v any) error {
	typ, payload, err := readFrame(conn, timeout)
	if err != nil {
		return err
	}
	if typ != want {
		return fmt.Errorf("unexpected frame type %d (want %d)", typ, want)
	}
	return json.Unmarshal(payload, v)
}

// distBootstrapJobs enumerates the canonical bootstrap job list — the
// identical sequence the serial and in-process engines probe. The stream
// scheduler's accepted sequence is a pure function of (space, seed), so
// the coordinator can enumerate it without probing anything.
func (c *Campaign) distBootstrapJobs() []distJob {
	if len(c.In.VPs) == 0 {
		return nil
	}
	if c.Cfg.Stream {
		st := c.newTargetStream()
		batch := c.streamBatchSize()
		var jobs []distJob
		for {
			b := st.nextBatch(batch)
			if len(b) == 0 {
				break
			}
			for _, j := range b {
				jobs = append(jobs, distJob{VP: j.vp, Dst: uint32(j.dst)})
			}
		}
		return jobs
	}
	addrs := c.bootstrapAddrs()
	vps := c.In.VPs
	spread := c.Cfg.BootstrapSpread
	if spread < 1 {
		spread = 1
	}
	jobs := make([]distJob, 0, len(addrs)*spread)
	for i, dst := range addrs {
		for k := 0; k < spread && k < len(vps); k++ {
			jobs = append(jobs, distJob{VP: (i + k) % len(vps), Dst: uint32(dst)})
		}
	}
	return jobs
}

// RunDistributed executes the campaign with dcfg.Workers worker
// processes. Output is byte-identical to Run and RunParallel on the same
// Internet and Config, at any worker count and in both replica modes. On
// any worker failure it returns a *WorkerError and no campaign: partial
// results are discarded, never merged.
func RunDistributed(in *gen.Internet, cfg Config, dcfg DistConfig) (*Campaign, error) {
	workers := dcfg.Workers
	if workers < 1 {
		workers = 1
	}
	if dcfg.Spawn == nil {
		return nil, errors.New("campaign: DistConfig.Spawn is required")
	}
	joinTO := dcfg.JoinTimeout
	if joinTO <= 0 {
		joinTO = 30 * time.Second
	}
	stepTO := dcfg.StepTimeout
	if stepTO <= 0 {
		stepTO = 5 * time.Minute
	}

	// Encode the world before any prober state mutates: the blob captures
	// the fabric exactly as the serial engine would first observe it.
	var world []byte
	var err error
	if dcfg.Replica == ReplicaRebuild {
		if world, err = json.Marshal(in.Params()); err != nil {
			return nil, fmt.Errorf("campaign: params encode: %w", err)
		}
	} else if world, err = in.EncodeWire(); err != nil {
		return nil, fmt.Errorf("campaign: snapshot encode: %w", err)
	}

	network, addr := dcfg.Network, dcfg.Addr
	if network == "" {
		dir, err := os.MkdirTemp("", "wormhole-dist-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		network, addr = "unix", filepath.Join(dir, "coord.sock")
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("campaign: listen: %w", err)
	}
	defer ln.Close()

	for i := 0; i < workers; i++ {
		if err := dcfg.Spawn(i, network, addr); err != nil {
			return nil, fmt.Errorf("campaign: spawn worker %d: %w", i, err)
		}
	}
	var streamed uint64
	conns := make([]net.Conn, 0, workers)
	defer func() {
		for _, conn := range conns {
			conn.Close()
		}
	}()
	type deadliner interface{ SetDeadline(time.Time) error }
	for i := 0; i < workers; i++ {
		if d, ok := ln.(deadliner); ok {
			d.SetDeadline(time.Now().Add(joinTO))
		}
		conn, err := ln.Accept()
		if err != nil {
			return nil, &WorkerError{Worker: i, Err: fmt.Errorf("join: %w", err)}
		}
		conns = append(conns, &countConn{Conn: conn, n: &streamed})
	}

	c := newCampaign(in, cfg)
	c.Workers = workers
	lz0 := in.LazyStats()
	in.Net.SetFlowCacheEnabled(!cfg.DisableFlowCache)
	in.Net.SetSweepEnabled(!cfg.DisableSweep)

	probers := make([]distProber, len(in.VPs))
	for i, vp := range in.VPs {
		p := vp.Prober
		probers[i] = distProber{MaxTTL: p.MaxTTL, GapLimit: p.GapLimit, Attempts: p.Attempts, FlowID: p.FlowID}
	}
	for i, conn := range conns {
		hello := distHello{Index: i, Workers: workers, Replica: dcfg.Replica, Cfg: cfg, Probers: probers}
		if err := writeJSON(conn, msgHello, hello); err != nil {
			return nil, &WorkerError{Worker: i, Err: err}
		}
		if err := writeFrame(conn, msgWorld, world); err != nil {
			return nil, &WorkerError{Worker: i, Err: err}
		}
	}

	// Bootstrap, mirroring prepare/prepareParallel: TTL-1 discipline on
	// the main VPs (the resolver may probe them), canonical job list,
	// contiguous partitions, replay in job order.
	for _, vp := range in.VPs {
		vp.Prober.FirstTTL = 1
		vp.Prober.Method = cfg.Method
	}
	t0 := time.Now()
	sent0 := sentByVPs(in.VPs)
	fab0 := in.Net.FabricStats()
	flow0 := in.Net.FlowCacheStats()
	sweep0 := in.Net.SweepStats()
	c.ITDK = topo.New(c.resolver())
	jobs := c.distBootstrapJobs()
	for p, conn := range conns {
		lo, hi := len(jobs)*p/workers, len(jobs)*(p+1)/workers
		if err := writeJSON(conn, msgBootstrap, jobs[lo:hi]); err != nil {
			return nil, &WorkerError{Worker: p, Err: err}
		}
	}
	bootStats := make([]distPhaseStats, workers)
	for p, conn := range conns {
		want := len(jobs)*(p+1)/workers - len(jobs)*p/workers
		got := 0
		for {
			typ, payload, err := readFrame(conn, stepTO)
			if err != nil {
				return nil, &WorkerError{Worker: p, Err: fmt.Errorf("bootstrap: %w", err)}
			}
			if typ == msgBootDone {
				if err := json.Unmarshal(payload, &bootStats[p]); err != nil {
					return nil, &WorkerError{Worker: p, Err: err}
				}
				break
			}
			if typ != msgTraces {
				return nil, &WorkerError{Worker: p, Err: fmt.Errorf("unexpected frame type %d in bootstrap", typ)}
			}
			var chunk []tracefile.Trace
			if err := json.Unmarshal(payload, &chunk); err != nil {
				return nil, &WorkerError{Worker: p, Err: err}
			}
			for _, wt := range chunk {
				tr, err := wt.ToTrace()
				if err != nil {
					return nil, &WorkerError{Worker: p, Err: err}
				}
				c.ITDK.AddTrace(tr)
				got++
			}
		}
		if got != want {
			return nil, &WorkerError{Worker: p, Err: fmt.Errorf("bootstrap returned %d traces, want %d", got, want)}
		}
	}
	c.finishBootstrapGraph()
	c.selectTargets()
	c.bootProbes = sentByVPs(in.VPs) - sent0
	fab1 := in.Net.FabricStats()
	c.BudgetHits = fab1.BudgetExhausted - fab0.BudgetExhausted
	c.LoopDrops = fab1.DroppedEvents - fab0.DroppedEvents
	c.bootFlow = flowDelta(in.Net.FlowCacheStats(), flow0)
	c.bootSweep = sweepDelta(in.Net.SweepStats(), sweep0)
	for _, ws := range bootStats {
		c.bootProbes += ws.Probes
		c.BudgetHits += ws.BudgetHits
		c.LoopDrops += ws.LoopDrops
		addFlow(&c.bootFlow, ws.Flow)
		addSweep(&c.bootSweep, ws.Sweep)
	}
	c.Phase.Bootstrap = time.Since(t0)
	for _, vp := range in.VPs {
		vp.Prober.FirstTTL = cfg.FirstTTL
	}

	// Probing phase: canonical shards, static shard→worker assignment
	// (si mod ShardWorkers), exactly the in-process pool's schedule.
	shards := c.buildShards(dcfg.ShardBy)
	c.ShardWorkers = workers
	if c.ShardWorkers > len(shards) {
		c.ShardWorkers = len(shards)
	}
	if c.ShardWorkers < 1 {
		c.ShardWorkers = 1
	}
	var nodes []distNode
	for _, n := range c.HDNs {
		dn := distNode{ID: int(n.ID), ASN: n.ASN, Addrs: make([]uint32, len(n.Addrs))}
		for i, a := range n.Addrs {
			dn.Addrs[i] = uint32(a)
		}
		nodes = append(nodes, dn)
	}
	mine := make([][]distShard, workers)
	for si, sh := range shards {
		w := si % c.ShardWorkers
		ds := distShard{Idx: sh.idx, Team: sh.team, Targets: make([]uint32, len(sh.targets))}
		for i, a := range sh.targets {
			ds.Targets[i] = uint32(a)
		}
		mine[w] = append(mine[w], ds)
	}
	t0 = time.Now()
	for p, conn := range conns {
		msg := distShardMsg{ShardWorkers: c.ShardWorkers, Nodes: nodes, Shards: mine[p]}
		if err := writeJSON(conn, msgShards, msg); err != nil {
			return nil, &WorkerError{Worker: p, Err: err}
		}
	}
	results := make([]*shardResult, len(shards))
	var dones []distWorkerDone
	for p, conn := range conns {
		for range mine[p] {
			var dres distShardResult
			if err := readJSON(conn, msgShardResult, stepTO, &dres); err != nil {
				return nil, &WorkerError{Worker: p, Err: fmt.Errorf("shard phase: %w", err)}
			}
			if dres.Idx < 0 || dres.Idx >= len(shards) || results[dres.Idx] != nil {
				return nil, &WorkerError{Worker: p, Err: fmt.Errorf("bad shard index %d", dres.Idx)}
			}
			res, err := c.rebuildShardResult(shards[dres.Idx], &dres)
			if err != nil {
				return nil, &WorkerError{Worker: p, Err: err}
			}
			results[dres.Idx] = res
		}
		var done distWorkerDone
		if err := readJSON(conn, msgWorkerDone, stepTO, &done); err != nil {
			return nil, &WorkerError{Worker: p, Err: fmt.Errorf("finish: %w", err)}
		}
		dones = append(dones, done)
	}
	c.Phase.Probe = time.Since(t0)

	c.merge(results)
	c.Lazy = in.LazyStats()
	c.Lazy.FaultIns -= lz0.FaultIns
	c.Lazy.FaultInNS -= lz0.FaultInNS
	for _, d := range dones {
		c.ReplicaResident += d.Resident
		c.Lazy.FaultIns += d.FaultIns
		c.Lazy.FaultInNS += d.FaultInNS
	}
	c.StreamBytes = streamed
	return c, nil
}

// rebuildShardResult reconstructs a shard's private output from its wire
// form: traces parse back hop-for-hop, Candidate re-derives from the
// identical trace, revelations parse with their technique and steps, and
// the existing merge then canonicalizes exactly as in-process.
func (c *Campaign) rebuildShardResult(sh shard, d *distShardResult) (*shardResult, error) {
	res := &shardResult{sh: sh, fps: make(map[netaddr.Addr]fingerprint.Result), stats: d.Stats}
	for i := range d.Records {
		dr := &d.Records[i]
		tr, err := dr.Trace.ToTrace()
		if err != nil {
			return nil, err
		}
		rec := &Record{VP: c.vpForTeam(sh.team), Trace: tr}
		if dr.HasCandidate {
			cand, ok := reveal.CandidateFromTrace(tr)
			if !ok {
				return nil, fmt.Errorf("shard %d: candidate does not re-derive from trace to %s", sh.idx, tr.Dst)
			}
			rec.Candidate = &cand
			rec.CandidateAS = dr.CandidateAS
			rec.EgressEchoTTL = dr.EgressEchoTTL
		}
		if dr.Revelation != nil {
			if rec.Revelation, err = dr.Revelation.ToRevelation(); err != nil {
				return nil, err
			}
		}
		res.records = append(res.records, rec)
	}
	for _, f := range d.Fps {
		r, err := f.ToResult()
		if err != nil {
			return nil, err
		}
		res.fps[r.Addr] = r
	}
	return res, nil
}

// ServeWorker runs the worker half of the protocol on conn: receive the
// world, probe the bootstrap partition and assigned shards on the private
// fabric, stream results back. It returns when the session completes or
// the connection breaks; the process exit code is the caller's concern.
func ServeWorker(conn net.Conn) error {
	defer conn.Close()
	var hello distHello
	if err := readJSON(conn, msgHello, 0, &hello); err != nil {
		return fmt.Errorf("worker: hello: %w", err)
	}
	typ, payload, err := readFrame(conn, 0)
	if err != nil {
		return fmt.Errorf("worker: world: %w", err)
	}
	if typ != msgWorld {
		return fmt.Errorf("worker: unexpected frame type %d (want world)", typ)
	}
	var win *gen.Internet
	if hello.Replica == ReplicaRebuild {
		var p gen.Params
		if err := json.Unmarshal(payload, &p); err != nil {
			return fmt.Errorf("worker: params: %w", err)
		}
		if win, err = gen.Build(p); err != nil {
			return fmt.Errorf("worker: rebuild: %w", err)
		}
	} else if win, err = gen.DecodeWire(payload); err != nil {
		return fmt.Errorf("worker: decode: %w", err)
	}
	cfg := hello.Cfg
	win.Net.SetFlowCacheEnabled(!cfg.DisableFlowCache)
	win.Net.SetSweepEnabled(!cfg.DisableSweep)
	for i, vp := range win.VPs {
		vp.Prober.FirstTTL = 1
		vp.Prober.Method = cfg.Method
		if i < len(hello.Probers) {
			p := hello.Probers[i]
			vp.Prober.MaxTTL = p.MaxTTL
			vp.Prober.GapLimit = p.GapLimit
			vp.Prober.Attempts = p.Attempts
			vp.Prober.FlowID = p.FlowID
		}
	}
	lzw0 := win.LazyStats()

	// Bootstrap partition: trace in order, stream back in chunks.
	var jobs []distJob
	if err := readJSON(conn, msgBootstrap, 0, &jobs); err != nil {
		return fmt.Errorf("worker: bootstrap jobs: %w", err)
	}
	sent0 := sentByVPs(win.VPs)
	fab0 := win.Net.FabricStats()
	flow0 := win.Net.FlowCacheStats()
	sweep0 := win.Net.SweepStats()
	chunk := make([]tracefile.Trace, 0, distTraceChunk)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		err := writeJSON(conn, msgTraces, chunk)
		chunk = chunk[:0]
		return err
	}
	for _, j := range jobs {
		tr := win.VPs[j.VP].Prober.Traceroute(netaddr.Addr(j.Dst))
		chunk = append(chunk, tracefile.FromTrace(tr))
		if len(chunk) == distTraceChunk {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	fab1 := win.Net.FabricStats()
	boot := distPhaseStats{
		Probes:     sentByVPs(win.VPs) - sent0,
		BudgetHits: fab1.BudgetExhausted - fab0.BudgetExhausted,
		LoopDrops:  fab1.DroppedEvents - fab0.DroppedEvents,
		Flow:       flowDelta(win.Net.FlowCacheStats(), flow0),
		Sweep:      sweepDelta(win.Net.SweepStats(), sweep0),
	}
	if err := writeJSON(conn, msgBootDone, boot); err != nil {
		return err
	}

	// Probing phase.
	for _, vp := range win.VPs {
		vp.Prober.FirstTTL = cfg.FirstTTL
	}
	var sm distShardMsg
	if err := readJSON(conn, msgShards, 0, &sm); err != nil {
		return fmt.Errorf("worker: shards: %w", err)
	}
	hdnAddr := make(map[netaddr.Addr]*topo.Node)
	for _, dn := range sm.Nodes {
		node := &topo.Node{ID: topo.NodeID(dn.ID), ASN: dn.ASN}
		for _, a := range dn.Addrs {
			addr := netaddr.Addr(a)
			node.Addrs = append(node.Addrs, addr)
			hdnAddr[addr] = node
		}
	}
	// The symbolic churn plan compiles identically on a structural
	// replica: candidates are (AS index, core position) pairs and the
	// schedule is a pure function of (seed, shard index).
	plan := gen.BuildChurnPlan(win, cfg.ChurnRate, cfg.ChurnSeed)
	var wc Campaign // runShard uses no campaign state
	for _, ds := range sm.Shards {
		sh := shard{idx: ds.Idx, team: ds.Team, targets: make([]netaddr.Addr, len(ds.Targets))}
		for i, a := range ds.Targets {
			sh.targets[i] = netaddr.Addr(a)
		}
		events := plan.EventsFor(win, sh.idx, len(sh.targets))
		vp := win.VPs[sh.team%len(win.VPs)]
		res := wc.runShard(sh, vp, vp, hdnAddr, events, cfg.ChurnFlushWorld)
		res.stats.Worker = hello.Index
		out := distShardResult{Idx: sh.idx, Stats: res.stats, Fps: tracefile.FromFingerprints(res.fps)}
		for _, rec := range res.records {
			dr := distRecord{Record: tracefile.Record{
				Trace:         tracefile.FromTrace(rec.Trace),
				CandidateAS:   rec.CandidateAS,
				EgressEchoTTL: rec.EgressEchoTTL,
			}}
			if rec.Candidate != nil {
				dr.HasCandidate = true
			}
			if rec.Revelation != nil {
				rv := tracefile.FromRevelation(rec.Revelation)
				dr.Revelation = &rv
			}
			out.Records = append(out.Records, dr)
		}
		if err := writeJSON(conn, msgShardResult, out); err != nil {
			return err
		}
	}
	lzw1 := win.LazyStats()
	return writeJSON(conn, msgWorkerDone, distWorkerDone{
		FaultIns:  lzw1.FaultIns - lzw0.FaultIns,
		FaultInNS: lzw1.FaultInNS - lzw0.FaultInNS,
		Resident:  lzw1.Resident,
	})
}
