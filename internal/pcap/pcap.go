// Package pcap writes simulator traffic as standard libpcap capture
// files (Ethernet link type, ethertype 0x0800 for IP and 0x8847 for MPLS
// unicast), so captures taken from the fabric can be opened by ordinary
// tooling. It exists both as a debugging aid and as the proof that the
// wire encodings in internal/packet are the real formats.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"wormhole/internal/netsim"
	"wormhole/internal/packet"
)

const (
	magicMicros   = 0xa1b2c3d4
	versionMajor  = 2
	versionMinor  = 4
	linkEthernet  = 1
	etherTypeIPv4 = 0x0800
	etherTypeMPLS = 0x8847
	snapLen       = 65535
)

// Writer emits one pcap stream.
type Writer struct {
	w        io.Writer
	wroteHdr bool
	// Packets counts frames written.
	Packets int
}

// NewWriter wraps w; the file header is written lazily with the first
// packet.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

func (pw *Writer) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone, sigfigs: zero.
	binary.LittleEndian.PutUint32(hdr[16:], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linkEthernet)
	_, err := pw.w.Write(hdr[:])
	return err
}

// WritePacket serializes pkt at virtual time ts and appends it as one
// Ethernet frame.
func (pw *Writer) WritePacket(ts time.Duration, pkt *packet.Packet) error {
	if !pw.wroteHdr {
		if err := pw.writeHeader(); err != nil {
			return err
		}
		pw.wroteHdr = true
	}
	body, err := pkt.Serialize()
	if err != nil {
		return fmt.Errorf("pcap: %w", err)
	}
	etherType := uint16(etherTypeIPv4)
	if pkt.Labeled() {
		etherType = etherTypeMPLS
	}
	frame := make([]byte, 14+len(body))
	// Zero MACs; real enough for dissectors.
	binary.BigEndian.PutUint16(frame[12:], etherType)
	copy(frame[14:], body)

	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(ts/time.Second))
	binary.LittleEndian.PutUint32(rec[4:], uint32(ts%time.Second/time.Microsecond))
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(frame)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return err
	}
	if _, err := pw.w.Write(frame); err != nil {
		return err
	}
	pw.Packets++
	return nil
}

// Attach hooks the writer into a network's trace callback, capturing every
// delivery. It returns the previous trace hook so callers can chain.
func Attach(net *netsim.Network, pw *Writer) func(time.Duration, *netsim.Iface, *packet.Packet) {
	prev := net.Trace
	net.Trace = func(ts time.Duration, to *netsim.Iface, pkt *packet.Packet) {
		// Capture errors are unrecoverable mid-simulation; drop the frame
		// but keep simulating (matching tcpdump's behaviour on a full
		// disk would abort the experiment instead).
		_ = pw.WritePacket(ts, pkt)
		if prev != nil {
			prev(ts, to, pkt)
		}
	}
	return prev
}

// Record is one parsed capture record (reader side, used by tests and the
// analyze tooling).
type Record struct {
	TS        time.Duration
	EtherType uint16
	Packet    *packet.Packet
}

// Read parses a capture produced by Writer.
func Read(r io.Reader) ([]Record, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magicMicros {
		return nil, fmt.Errorf("pcap: bad magic")
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != linkEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	var out []Record
	for {
		var rec [16]byte
		if _, err := io.ReadFull(r, rec[:]); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("pcap: short record header: %w", err)
		}
		caplen := binary.LittleEndian.Uint32(rec[8:])
		frame := make([]byte, caplen)
		if _, err := io.ReadFull(r, frame); err != nil {
			return nil, fmt.Errorf("pcap: short frame: %w", err)
		}
		if len(frame) < 14 {
			return nil, fmt.Errorf("pcap: frame below Ethernet header size")
		}
		ts := time.Duration(binary.LittleEndian.Uint32(rec[0:]))*time.Second +
			time.Duration(binary.LittleEndian.Uint32(rec[4:]))*time.Microsecond
		pkt, err := packet.Decode(frame[14:])
		if err != nil {
			return nil, fmt.Errorf("pcap: frame %d: %w", len(out), err)
		}
		out = append(out, Record{
			TS:        ts,
			EtherType: binary.BigEndian.Uint16(frame[12:]),
			Packet:    pkt,
		})
	}
}
