package pcap

import (
	"bytes"
	"strings"
	"testing"

	"wormhole/internal/lab"
	"wormhole/internal/packet"
)

// TestCaptureRoundTrip attaches a capture to the testbed, runs a trace
// through the explicit tunnel, and re-parses every frame: the wire
// encodings must survive the trip, labels included.
func TestCaptureRoundTrip(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.Default})
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	Attach(l.Net, pw)

	tr := l.Prober.Traceroute(l.CE2Left)
	if !tr.Reached {
		t.Fatal("trace failed")
	}
	if pw.Packets == 0 {
		t.Fatal("nothing captured")
	}

	records, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != pw.Packets {
		t.Fatalf("read %d records, wrote %d", len(records), pw.Packets)
	}

	sawMPLS, sawIP, sawICMPExt := false, false, false
	for _, rec := range records {
		switch rec.EtherType {
		case etherTypeMPLS:
			sawMPLS = true
			if !rec.Packet.Labeled() {
				t.Error("MPLS ethertype without label stack")
			}
		case etherTypeIPv4:
			sawIP = true
			if rec.Packet.Labeled() {
				t.Error("IP ethertype with label stack")
			}
		default:
			t.Errorf("unexpected ethertype %#x", rec.EtherType)
		}
		if rec.Packet.ICMP != nil && rec.Packet.ICMP.Ext != nil {
			sawICMPExt = true
		}
	}
	if !sawMPLS || !sawIP {
		t.Errorf("capture lacked variety: mpls=%v ip=%v", sawMPLS, sawIP)
	}
	if !sawICMPExt {
		t.Error("no RFC4950-extended ICMP captured despite explicit tunnel")
	}

	// Timestamps must be monotonically non-decreasing.
	for i := 1; i < len(records); i++ {
		if records[i].TS < records[i-1].TS {
			t.Fatalf("timestamps regressed at %d", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("short")); err == nil {
		t.Error("short header accepted")
	}
	bad := make([]byte, 24)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestWriterCountsAndHeaderOnce(t *testing.T) {
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	p := &packet.Packet{
		IP:   packet.IPv4{TTL: 4, Protocol: packet.ProtoICMP},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest},
	}
	for i := 0; i < 3; i++ {
		if err := pw.WritePacket(0, p); err != nil {
			t.Fatal(err)
		}
	}
	if pw.Packets != 3 {
		t.Errorf("Packets = %d", pw.Packets)
	}
	records, err := Read(&buf)
	if err != nil || len(records) != 3 {
		t.Fatalf("read back %d records, err %v", len(records), err)
	}
}
