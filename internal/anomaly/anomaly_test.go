package anomaly

import (
	"testing"
	"time"

	"wormhole/internal/lab"
)

func TestAttributesTunnelJump(t *testing.T) {
	// Invisible tunnel over fat links: the PE1->PE2 jump must be
	// attributed to the hidden LSRs.
	l := lab.MustBuild(lab.Options{
		Scenario:    lab.BackwardRecursive,
		TunnelDelay: 20 * time.Millisecond,
	})
	findings, at := Detect(l.Prober, l.CE2Left, 30*time.Millisecond)
	if !at.Reached {
		t.Fatal("trace failed")
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %+v, want one", findings)
	}
	f := findings[0]
	if f.Attribution != InvisibleTunnel {
		t.Errorf("attribution = %s", f.Attribution)
	}
	if f.After != l.PE1Left {
		t.Errorf("jump after %s, want PE1", f.After)
	}
	if f.HiddenHops != 3 {
		t.Errorf("hidden hops = %d, want 3", f.HiddenHops)
	}
	// The jump spans 4 links (PE1-P1 fast + three fat ones, doubled for
	// the round trip): per-hop attribution must sit well below the jump.
	if f.PerHop >= f.Jump {
		t.Error("per-hop delay not decomposed")
	}
}

func TestAttributesLongLink(t *testing.T) {
	// Same fat links but a *visible* network (UHP scenario keeps the
	// tunnel dark and unrevealable, so the jump stays a "long link" from
	// the measurement's point of view — the honest answer when revelation
	// fails).
	l := lab.MustBuild(lab.Options{
		Scenario:    lab.TotallyInvisible,
		TunnelDelay: 20 * time.Millisecond,
	})
	findings, _ := Detect(l.Prober, l.CE2Left, 30*time.Millisecond)
	if len(findings) == 0 {
		t.Fatal("no findings")
	}
	for _, f := range findings {
		if f.Attribution != LongLink {
			t.Errorf("UHP jump attributed to %s", f.Attribution)
		}
	}
}

func TestNoFindingsOnFlatPath(t *testing.T) {
	l := lab.MustBuild(lab.Options{Scenario: lab.Default})
	findings, _ := Detect(l.Prober, l.CE2Left, 30*time.Millisecond)
	if len(findings) != 0 {
		t.Errorf("flat path produced findings: %+v", findings)
	}
}
