// Package anomaly attributes per-hop delay jumps in traceroute output.
// The paper's introduction motivates tunnel revelation with exactly this
// problem: across an invisible MPLS tunnel "the delay between the entry
// and exit point of the tunnel might appear as being artificially high,
// possibly leading to wrong conclusions when tracking connectivity
// issues". Given a destination, the detector finds RTT jumps, runs the
// augmented traceroute, and classifies each jump as an invisible tunnel
// (the delay decomposes across revealed hops) or a genuinely long link.
package anomaly

import (
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/probe"
	"wormhole/internal/reveal"
)

// Attribution classifies a delay jump.
type Attribution string

const (
	// InvisibleTunnel: hidden hops were revealed at the jump; the delay
	// is the sum of their links, not one slow link.
	InvisibleTunnel Attribution = "invisible-tunnel"
	// LongLink: no hidden hops; the link (or queueing on it) really is
	// that slow.
	LongLink Attribution = "long-link"
)

// Finding is one attributed delay jump.
type Finding struct {
	// After is the hop whose successor showed the jump.
	After netaddr.Addr
	// Jump is the RTT increase across the pair.
	Jump time.Duration
	// HiddenHops counts LSRs revealed between the pair.
	HiddenHops int
	// PerHop is the delay attributed to each constituent link once the
	// hidden hops are accounted for (Jump divided by segment count).
	PerHop time.Duration
	// Attribution classifies the jump.
	Attribution Attribution
}

// Detect traces dst, finds RTT jumps of at least threshold between
// consecutive responding hops, and attributes them.
func Detect(p *probe.Prober, dst netaddr.Addr, threshold time.Duration) ([]Finding, *reveal.AugmentedTrace) {
	at := reveal.AugmentedTraceroute(p, dst)
	var out []Finding

	prev := -1
	for i := range at.Hops {
		if at.Hops[i].Anonymous() {
			continue
		}
		if prev < 0 {
			prev = i
			continue
		}
		x, y := &at.Hops[prev], &at.Hops[i]
		prev = i
		jump := y.RTT - x.RTT
		if jump < threshold {
			continue
		}
		f := Finding{
			After:      x.Addr,
			Jump:       jump,
			HiddenHops: len(x.Hidden),
		}
		segments := len(x.Hidden) + 1
		f.PerHop = jump / time.Duration(segments)
		if f.HiddenHops > 0 {
			f.Attribution = InvisibleTunnel
		} else {
			f.Attribution = LongLink
		}
		out = append(out, f)
	}
	return out, at
}
