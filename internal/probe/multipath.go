package probe

import (
	"sort"

	"wormhole/internal/netaddr"
)

// Multipath enumeration: ECMP routers hash the Paris flow identifier, so
// varying it across traces exposes the per-hop interface sets — the
// "diamonds" whose unequal branch lengths are the noise source the paper
// identifies in its RTLA analysis (Fig. 9a's negative values). This is a
// deliberately simple MDA-style sweep: a fixed number of flows per
// destination rather than the full stochastic stopping rule.

// MultipathResult describes the per-hop interface sets toward one
// destination.
type MultipathResult struct {
	Dst netaddr.Addr
	// Hops[i] lists the distinct responding addresses observed at probe
	// TTL FirstTTL+i, sorted.
	Hops [][]netaddr.Addr
	// Flows is the number of distinct flow identifiers probed.
	Flows int
	// Reached reports whether at least one flow reached the destination.
	Reached bool
}

// Diamonds returns the indices of hops where more than one interface
// responded (load-balanced stages).
func (m *MultipathResult) Diamonds() []int {
	var out []int
	for i, hs := range m.Hops {
		if len(hs) > 1 {
			out = append(out, i)
		}
	}
	return out
}

// MaxWidth returns the largest per-hop interface set size.
func (m *MultipathResult) MaxWidth() int {
	w := 0
	for _, hs := range m.Hops {
		if len(hs) > w {
			w = len(hs)
		}
	}
	return w
}

// Multipath traces dst once per flow identifier and merges the per-TTL
// interface sets. The prober's FlowID is restored afterwards.
func (p *Prober) Multipath(dst netaddr.Addr, flows int) *MultipathResult {
	if flows < 1 {
		flows = 1
	}
	saved := p.FlowID
	defer func() { p.FlowID = saved }()

	res := &MultipathResult{Dst: dst, Flows: flows}
	sets := []map[netaddr.Addr]bool{}
	for f := 0; f < flows; f++ {
		p.FlowID = saved + uint16(f)*257 // spread hash inputs
		tr := p.Traceroute(dst)
		if tr.Reached {
			res.Reached = true
		}
		for i, h := range tr.Hops {
			for len(sets) <= i {
				sets = append(sets, map[netaddr.Addr]bool{})
			}
			if !h.Anonymous() {
				sets[i][h.Addr] = true
			}
		}
	}
	for _, s := range sets {
		addrs := make([]netaddr.Addr, 0, len(s))
		for a := range s {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		res.Hops = append(res.Hops, addrs)
	}
	return res
}
