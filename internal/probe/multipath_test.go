package probe

import (
	"testing"
	"time"

	"wormhole/internal/igp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/router"
)

// buildDiamondNet wires vp - a - {b|c} - d - h: a load-balances between b
// and c toward d.
func buildDiamondNet(t *testing.T) (*Prober, *netsim.Host, []*router.Router) {
	t.Helper()
	net := netsim.New(6)
	mk := func(name string, i int) *router.Router {
		r := router.New(name, router.Cisco, router.Config{TTLPropagate: true})
		r.SetLoopback(netaddr.AddrFrom4(192, 168, 66, byte(i+1)))
		net.AddNode(r)
		if err := net.RegisterIface(r.Loopback()); err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b, c, d := mk("a", 0), mk("b", 1), mk("c", 2), mk("d", 3)
	sub := 0
	wire := func(x, y *router.Router) {
		p := netaddr.MustPrefixFrom(netaddr.AddrFrom4(10, 66, byte(sub), 0), 30)
		sub++
		xi := x.AddIface("to-"+y.Name(), p.Nth(1), p)
		yi := y.AddIface("to-"+x.Name(), p.Nth(2), p)
		net.Connect(xi, yi, time.Millisecond)
		for _, ifc := range []*netsim.Iface{xi, yi} {
			if err := net.RegisterIface(ifc); err != nil {
				t.Fatal(err)
			}
		}
	}
	wire(a, b)
	wire(a, c)
	wire(b, d)
	wire(c, d)

	vpP := netaddr.MustParsePrefix("10.66.100.0/30")
	vp := netsim.NewHost("vp", vpP.Nth(2), vpP)
	net.AddNode(vp)
	ai := a.AddIface("to-vp", vpP.Nth(1), vpP)
	net.Connect(ai, vp.If, time.Millisecond)
	hP := netaddr.MustParsePrefix("10.66.101.0/30")
	h := netsim.NewHost("h", hP.Nth(2), hP)
	net.AddNode(h)
	di := d.AddIface("to-h", hP.Nth(1), hP)
	net.Connect(di, h.If, time.Millisecond)
	for _, ifc := range []*netsim.Iface{ai, vp.If, di, h.If} {
		if err := net.RegisterIface(ifc); err != nil {
			t.Fatal(err)
		}
	}

	dom := &igp.Domain{Routers: []*router.Router{a, b, c, d}}
	if _, err := dom.Compute(); err != nil {
		t.Fatal(err)
	}
	return New(net, vp), h, []*router.Router{a, b, c, d}
}

func TestMultipathFindsDiamond(t *testing.T) {
	p, h, rs := buildDiamondNet(t)
	res := p.Multipath(h.Addr(), 24)
	if !res.Reached {
		t.Fatal("destination never reached")
	}
	diamonds := res.Diamonds()
	if len(diamonds) == 0 {
		t.Fatalf("no diamond found: %v", res.Hops)
	}
	ownersAt := func(stage []netaddr.Addr) map[string]bool {
		owners := map[string]bool{}
		for _, a := range stage {
			for _, r := range rs {
				for _, ifc := range r.Ifaces() {
					if ifc.Addr == a {
						owners[r.Name()] = true
					}
				}
			}
		}
		return owners
	}
	// Stage 1 (probe TTL 2): the two load-balanced branches b and c.
	if o := ownersAt(res.Hops[1]); !o["b"] || !o["c"] {
		t.Errorf("branch stage owners = %v, want b and c", o)
	}
	// Stage 2 (probe TTL 3): the convergence router d, answering from the
	// incoming interface of whichever branch the flow took — two distinct
	// addresses of the SAME router, exactly what real MDA observes.
	if o := ownersAt(res.Hops[2]); len(o) != 1 || !o["d"] {
		t.Errorf("convergence stage owners = %v, want only d", o)
	}
	if res.MaxWidth() != 2 {
		t.Errorf("MaxWidth = %d", res.MaxWidth())
	}
}

func TestMultipathSingleFlowSeesOnePath(t *testing.T) {
	p, h, _ := buildDiamondNet(t)
	res := p.Multipath(h.Addr(), 1)
	if len(res.Diamonds()) != 0 {
		t.Errorf("single flow saw a diamond: %v", res.Hops)
	}
}

func TestMultipathRestoresFlowID(t *testing.T) {
	p, h, _ := buildDiamondNet(t)
	want := p.FlowID
	p.Multipath(h.Addr(), 5)
	if p.FlowID != want {
		t.Errorf("FlowID changed: %d -> %d", want, p.FlowID)
	}
}

func TestMultipathOnLinearPath(t *testing.T) {
	l := buildLine(t, 3)
	res := l.prober.Multipath(l.host.Addr(), 8)
	if len(res.Diamonds()) != 0 {
		t.Errorf("linear path produced diamonds: %v", res.Hops)
	}
	if !res.Reached {
		t.Error("not reached")
	}
}
