package probe_test

import (
	"fmt"

	"wormhole/internal/lab"
)

// Example_traceroute traces across the paper's testbed with the
// tunnel visible, printing the paris-traceroute-style hop lines.
func Example_traceroute() {
	l := lab.MustBuild(lab.Options{Scenario: lab.BackwardRecursive})
	tr := l.Prober.Traceroute(l.CE2Left)
	for _, h := range tr.Hops {
		fmt.Printf("%d %s [%d]\n", h.ProbeTTL, h.Addr, h.ReplyTTL)
	}
	fmt.Println("reached:", tr.Reached)
	// Output:
	// 1 10.1.0.2 [255]
	// 2 10.12.0.2 [254]
	// 3 10.2.4.2 [250]
	// 4 10.23.0.2 [250]
	// reached: true
}

// Example_ping shows the signature raw material: a Cisco router's
// echo reply TTL is 255-based.
func Example_ping() {
	l := lab.MustBuild(lab.Options{Scenario: lab.Default})
	reply, ok := l.Prober.Ping(l.PE2Left, 64)
	fmt.Println(ok, reply.ReplyTTL)
	// Output:
	// true 250
}
