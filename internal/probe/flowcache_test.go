package probe

import (
	"testing"

	"wormhole/internal/netsim"
	"wormhole/internal/packet"
)

// TestNextTokenNeverZeroAndUnique pins the probe-token contract: tokens
// are non-zero (so they never collide with the zero IP identifier of
// non-probe traffic) and unique across any 65535-probe window, across the
// uint16 wraparound included.
func TestNextTokenNeverZeroAndUnique(t *testing.T) {
	p := &Prober{}
	p.seq = 65530 // straddle the wrap
	seen := make(map[uint16]int)
	for i := 0; i < 65535; i++ {
		tok := p.nextToken()
		if tok == 0 {
			t.Fatalf("token %d is zero", i)
		}
		if j, dup := seen[tok]; dup {
			t.Fatalf("token %#x repeated at %d and %d", tok, j, i)
		}
		seen[tok] = i
	}
	// The 65536th draw may legitimately repeat the first.
	if tok := p.nextToken(); tok == 0 {
		t.Fatal("wrapped token is zero")
	}
}

// TestTracerouteAcrossTokenWrap replays a full TTL ladder with the
// sequence counter parked just below the 16-bit wrap: the zero token must
// be skipped and every reply still matched. The ladder drives probe()
// directly — Traceroute reseeds the sequence per trace, which would
// un-park it.
func TestTracerouteAcrossTokenWrap(t *testing.T) {
	l := buildLine(t, 3)
	l.prober.seq = 0xFFFE
	for ttl := uint8(1); ttl <= 4; ttl++ {
		if obs := l.prober.probe(l.host.Addr(), ttl, ICMPParis); !obs.Answered {
			t.Errorf("probe at TTL %d unmatched across token wrap", ttl)
		}
	}
	if l.prober.Sent != l.prober.Recv {
		t.Errorf("Sent %d != Recv %d across wrap", l.prober.Sent, l.prober.Recv)
	}
}

// TestUDPQuoteMatchingUsesIPID is the regression test for the UDP
// port-cycle aliasing fix: two probes 128 tokens apart share the same
// destination port, so the quoted transport pair alone cannot tell them
// apart — the quoted IP identifier (the full 16-bit token) must decide.
func TestUDPQuoteMatchingUsesIPID(t *testing.T) {
	net := netsim.New(1)
	p := &Prober{Net: net, FlowID: 0x1234}

	// Pretend a UDP probe with token 7 is in flight.
	token := uint16(7)
	p.pending = await{id: p.FlowID, seq: udpBasePort + token%128, ipid: token}
	p.waiting = true

	reply := func(quotedToken uint16) *packet.Packet {
		return &packet.Packet{
			ICMP: &packet.ICMP{
				Type: packet.ICMPTimeExceeded,
				Quote: &packet.Quote{
					IP: packet.IPv4{ID: quotedToken, Protocol: packet.ProtoUDP},
					ID: p.FlowID,
					// Same port-cycle slot as the pending probe.
					Seq: udpBasePort + quotedToken%128,
				},
			},
		}
	}

	// A stale reply quoting token 7+128 hits the same port but must NOT
	// match the pending probe.
	p.handle(net, reply(token+128))
	if p.pending.reply != nil || p.Recv != 0 {
		t.Fatal("aliased quote (same port, different token) was matched")
	}
	// The genuine reply must match.
	p.handle(net, reply(token))
	if p.pending.reply == nil || p.Recv != 1 {
		t.Fatal("genuine quote was not matched")
	}
}
