package probe

import (
	"testing"
	"time"

	"wormhole/internal/igp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
	"wormhole/internal/router"
)

// line builds vp - r0 - r1 - r2 - h over plain IP with SPF-installed
// routes and returns a prober on vp.
type line struct {
	net    *netsim.Network
	vp     *netsim.Host
	host   *netsim.Host
	rs     []*router.Router
	prober *Prober
}

func buildLine(t *testing.T, n int) *line {
	t.Helper()
	net := netsim.New(2)
	l := &line{net: net}
	for i := 0; i < n; i++ {
		r := router.New("r"+string(rune('0'+i)), router.Cisco, router.Config{TTLPropagate: true})
		r.SetLoopback(netaddr.AddrFrom4(192, 168, 7, byte(i+1)))
		net.AddNode(r)
		if err := net.RegisterIface(r.Loopback()); err != nil {
			t.Fatal(err)
		}
		l.rs = append(l.rs, r)
	}
	wire := func(ai, bi *netsim.Iface) {
		net.Connect(ai, bi, time.Millisecond)
		for _, ifc := range []*netsim.Iface{ai, bi} {
			if err := net.RegisterIface(ifc); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i+1 < n; i++ {
		p := netaddr.MustPrefixFrom(netaddr.AddrFrom4(10, 60, byte(i), 0), 30)
		wire(l.rs[i].AddIface("right", p.Nth(1), p), l.rs[i+1].AddIface("left", p.Nth(2), p))
	}
	vpP := netaddr.MustParsePrefix("10.60.100.0/30")
	l.vp = netsim.NewHost("vp", vpP.Nth(2), vpP)
	net.AddNode(l.vp)
	wire(l.rs[0].AddIface("to-vp", vpP.Nth(1), vpP), l.vp.If)
	hP := netaddr.MustParsePrefix("10.60.101.0/30")
	l.host = netsim.NewHost("h", hP.Nth(2), hP)
	net.AddNode(l.host)
	wire(l.rs[n-1].AddIface("to-h", hP.Nth(1), hP), l.host.If)

	dom := &igp.Domain{Routers: l.rs}
	if _, err := dom.Compute(); err != nil {
		t.Fatal(err)
	}
	l.prober = New(net, l.vp)
	return l
}

func TestTracerouteFullPath(t *testing.T) {
	l := buildLine(t, 3)
	tr := l.prober.Traceroute(l.host.Addr())
	if !tr.Reached {
		t.Fatalf("not reached: %+v", tr.Hops)
	}
	if len(tr.Hops) != 4 {
		t.Fatalf("%d hops, want 4", len(tr.Hops))
	}
	for i, h := range tr.Hops[:3] {
		if h.ICMPType != packet.ICMPTimeExceeded {
			t.Errorf("hop %d type %d", i+1, h.ICMPType)
		}
		if h.ProbeTTL != uint8(i+1) {
			t.Errorf("hop %d probe ttl %d", i+1, h.ProbeTTL)
		}
	}
	last := tr.Hops[3]
	if last.ICMPType != packet.ICMPEchoReply || last.Addr != l.host.Addr() {
		t.Errorf("last hop = %+v", last)
	}
}

func TestTracerouteFirstTTL(t *testing.T) {
	l := buildLine(t, 3)
	l.prober.FirstTTL = 2
	tr := l.prober.Traceroute(l.host.Addr())
	if tr.Hops[0].ProbeTTL != 2 {
		t.Errorf("first probe TTL = %d, want 2", tr.Hops[0].ProbeTTL)
	}
	if len(tr.Hops) != 3 {
		t.Errorf("%d hops, want 3 (skipping the first router)", len(tr.Hops))
	}
}

func TestTracerouteGapLimit(t *testing.T) {
	l := buildLine(t, 6)
	// Silence everything past r0: the trace must stop after GapLimit
	// anonymous hops instead of probing to MaxTTL.
	for _, r := range l.rs[1:] {
		cfg := r.Config()
		cfg.Silent = true
		r.SetConfig(cfg)
	}
	l.prober.GapLimit = 3
	tr := l.prober.Traceroute(l.host.Addr())
	if tr.Reached {
		t.Fatal("reached a silent destination")
	}
	anon := 0
	for _, h := range tr.Hops {
		if h.Anonymous() {
			anon++
		}
	}
	if anon != 3 {
		t.Errorf("probed %d anonymous hops, want exactly GapLimit=3", anon)
	}
}

func TestTracerouteAnonymousMiddle(t *testing.T) {
	l := buildLine(t, 3)
	cfg := l.rs[1].Config()
	cfg.NoICMPTimeExceeded = true
	l.rs[1].SetConfig(cfg)
	tr := l.prober.Traceroute(l.host.Addr())
	if !tr.Reached {
		t.Fatal("not reached")
	}
	if !tr.Hops[1].Anonymous() {
		t.Error("suppressed hop answered")
	}
	if tr.Hops[0].Anonymous() || tr.Hops[2].Anonymous() {
		t.Error("wrong hops anonymous")
	}
}

func TestTraceLastHelper(t *testing.T) {
	l := buildLine(t, 3)
	tr := l.prober.Traceroute(l.host.Addr())
	last, ok := tr.Last()
	if !ok || last.Addr != l.host.Addr() {
		t.Errorf("Last = %+v, %v", last, ok)
	}
	empty := &Trace{}
	if _, ok := empty.Last(); ok {
		t.Error("Last on empty trace")
	}
}

func TestPingTTLAndRTT(t *testing.T) {
	l := buildLine(t, 3)
	reply, ok := l.prober.Ping(l.rs[2].Loopback().Addr, 0)
	if !ok {
		t.Fatal("no reply")
	}
	if reply.ICMPType != packet.ICMPEchoReply {
		t.Errorf("type %d", reply.ICMPType)
	}
	// Cisco echo reply 255 minus r1, r0.
	if reply.ReplyTTL != 253 {
		t.Errorf("reply TTL %d, want 253", reply.ReplyTTL)
	}
	// 4 links each way at 1ms... vp-r0, r0-r1, r1-r2 = 3 links = 6ms RTT.
	if reply.RTT != 6*time.Millisecond {
		t.Errorf("RTT %v, want 6ms", reply.RTT)
	}
}

func TestPingUnreachable(t *testing.T) {
	l := buildLine(t, 3)
	if _, ok := l.prober.Ping(netaddr.MustParseAddr("203.0.113.9"), 0); ok {
		t.Error("reply from unrouted address")
	}
}

func TestProbesCounted(t *testing.T) {
	l := buildLine(t, 3)
	l.prober.Traceroute(l.host.Addr())
	if l.prober.Sent != 4 {
		t.Errorf("Sent = %d, want 4", l.prober.Sent)
	}
}

func TestRepliesMatchedBySeq(t *testing.T) {
	// A stale reply from a previous probe must not satisfy a new one:
	// sequence numbers advance per probe.
	l := buildLine(t, 3)
	tr1 := l.prober.Traceroute(l.host.Addr())
	tr2 := l.prober.Traceroute(l.host.Addr())
	if len(tr1.Hops) != len(tr2.Hops) {
		t.Errorf("repeat traces differ: %d vs %d hops", len(tr1.Hops), len(tr2.Hops))
	}
}

func TestUDPTraceroute(t *testing.T) {
	l := buildLine(t, 3)
	l.prober.Method = UDPParis
	tr := l.prober.Traceroute(l.host.Addr())
	if !tr.Reached {
		t.Fatalf("UDP trace did not reach: %+v", tr.Hops)
	}
	if len(tr.Hops) != 4 {
		t.Fatalf("%d hops, want 4", len(tr.Hops))
	}
	last := tr.Hops[3]
	if last.ICMPType != packet.ICMPDestUnreach || last.ICMPCode != packet.CodePortUnreach {
		t.Errorf("last hop = type %d code %d, want port-unreachable", last.ICMPType, last.ICMPCode)
	}
	for i, h := range tr.Hops[:3] {
		if h.ICMPType != packet.ICMPTimeExceeded {
			t.Errorf("hop %d type %d", i+1, h.ICMPType)
		}
	}
}

func TestUDPTracerouteToRouter(t *testing.T) {
	l := buildLine(t, 3)
	l.prober.Method = UDPParis
	tr := l.prober.Traceroute(l.rs[2].Loopback().Addr)
	if !tr.Reached {
		t.Fatalf("UDP trace to router did not reach: %+v", tr.Hops)
	}
}

func TestAttemptsRetryRateLimitedHop(t *testing.T) {
	l := buildLine(t, 3)
	// Rate-limit r1 so hard that only one ICMP per 100ms of virtual time
	// escapes; the probe for TTL 2 arrives right after r0's reply
	// consumed nothing of r1's budget, so the first attempt answers, but
	// forcing two traces back to back exhausts it.
	cfg := l.rs[1].Config()
	cfg.ICMPInterval = 50 * time.Millisecond
	l.rs[1].SetConfig(cfg)

	l.prober.Attempts = 1
	tr1 := l.prober.Traceroute(l.host.Addr())
	tr2 := l.prober.Traceroute(l.host.Addr())
	// In one of the two traces r1 must have been rate-limited.
	anon := 0
	for _, tr := range []*Trace{tr1, tr2} {
		for _, h := range tr.Hops {
			if h.Anonymous() {
				anon++
			}
		}
	}
	if anon == 0 {
		t.Fatal("rate limiting never produced an anonymous hop")
	}
	if l.rs[1].Stats.RateLimited == 0 {
		t.Error("RateLimited counter not incremented")
	}
}
