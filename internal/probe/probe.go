// Package probe implements the measurement side of the paper: a Paris
// traceroute (stable per-flow identifier, so ECMP routers keep one path per
// trace) and ping, both running over the simulation fabric the way
// scamper's engines run over raw sockets.
package probe

import (
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
)

// Hop is one line of traceroute output.
type Hop struct {
	// ProbeTTL is the TTL the probe carried.
	ProbeTTL uint8
	// Addr is the replying interface; zero for an anonymous hop (no reply).
	Addr netaddr.Addr
	// RTT is the virtual round-trip time.
	RTT time.Duration
	// ReplyTTL is the received IP TTL of the reply — the bracketed value
	// in the paper's figures, the raw material of FRPLA and RTLA.
	ReplyTTL uint8
	// ICMPType/ICMPCode classify the reply.
	ICMPType, ICMPCode uint8
	// MPLS is the RFC 4950 label stack quoted by the replying LSR, if any.
	MPLS packet.LabelStack
}

// Anonymous reports whether the hop went unanswered.
func (h Hop) Anonymous() bool { return h.Addr.IsUnspecified() }

// Labeled reports whether the hop exposed MPLS labels.
func (h Hop) Labeled() bool { return len(h.MPLS) > 0 }

// Trace is a complete traceroute.
type Trace struct {
	Src, Dst netaddr.Addr
	Hops     []Hop
	// Reached reports whether the destination itself replied.
	Reached bool
}

// Last returns the final responding hop, if any.
func (t *Trace) Last() (Hop, bool) {
	for i := len(t.Hops) - 1; i >= 0; i-- {
		if !t.Hops[i].Anonymous() {
			return t.Hops[i], true
		}
	}
	return Hop{}, false
}

// Len returns the hop distance of the destination if reached, else the
// number of probed hops.
func (t *Trace) Len() int { return len(t.Hops) }

// PingReply is the outcome of one echo probe.
type PingReply struct {
	From     netaddr.Addr
	RTT      time.Duration
	ReplyTTL uint8
	ICMPType uint8
}

// Method selects the probe type.
type Method uint8

const (
	// ICMPParis sends ICMP echo requests with a fixed identifier (the
	// paper's campaign configuration).
	ICMPParis Method = iota
	// UDPParis sends UDP probes with fixed ports (classic traceroute;
	// the destination answers with port-unreachable).
	UDPParis
)

// Prober issues probes from a vantage-point host. It is not safe for
// concurrent use; campaigns run one Prober per vantage point sequentially
// over the shared fabric.
type Prober struct {
	Net  *netsim.Network
	Host *netsim.Host

	// Method selects ICMP-echo (default) or UDP probing.
	Method Method
	// FirstTTL is the TTL of the first traceroute probe (the campaign
	// uses 2, skipping the VP's own gateway, as in Sec. 4).
	FirstTTL uint8
	// MaxTTL bounds the traceroute.
	MaxTTL uint8
	// GapLimit stops a trace after this many consecutive anonymous hops.
	GapLimit int
	// Attempts retries an unanswered hop (rate-limited routers may answer
	// the second probe). Minimum 1.
	Attempts int
	// FlowID is the Paris flow identifier (ICMP echo ID / UDP source port).
	FlowID uint16

	seq     uint16
	pending *await

	// Sent counts probe packets for campaign accounting.
	Sent uint64
	// Recv counts matched replies (anonymous hops are the difference).
	Recv uint64
}

type await struct {
	id, seq uint16
	reply   *packet.Packet
	rtt     time.Duration
}

// New creates a prober bound to a vantage-point host with scamper-like
// defaults.
func New(net *netsim.Network, host *netsim.Host) *Prober {
	p := &Prober{Net: net, Host: host, FirstTTL: 1, MaxTTL: 30, GapLimit: 5, Attempts: 1, FlowID: 0x1234}
	host.Handler = p.handle
	return p
}

func (p *Prober) handle(net *netsim.Network, pkt *packet.Packet) {
	if p.pending == nil || pkt.ICMP == nil {
		return
	}
	m := pkt.ICMP
	switch {
	case m.Type == packet.ICMPEchoReply:
		if m.ID == p.pending.id && m.Seq == p.pending.seq {
			// The reply outlives Receive (Traceroute reads it after the
			// drain and aliases its label stack into Hop.MPLS), so take it
			// off the fabric's free list.
			net.AdoptPacket(pkt)
			p.pending.reply = pkt
			p.Recv++
		}
	case m.IsError():
		// ICMP probes are matched by quoted echo ID/Seq; UDP probes by
		// quoted source/destination ports (the await fields hold whichever
		// pair the probe carried).
		if m.Quote != nil && m.Quote.ID == p.pending.id && m.Quote.Seq == p.pending.seq {
			net.AdoptPacket(pkt)
			p.pending.reply = pkt
			p.Recv++
		}
	}
}

// sendAndWait injects one probe and drains the fabric, returning the
// matching reply (nil if none arrived).
func (p *Prober) sendAndWait(pkt *packet.Packet) (*packet.Packet, time.Duration) {
	if pkt.UDP != nil {
		p.pending = &await{id: pkt.UDP.SrcPort, seq: pkt.UDP.DstPort}
	} else {
		p.pending = &await{id: pkt.ICMP.ID, seq: pkt.ICMP.Seq}
	}
	p.Sent++
	start := p.Net.Now()
	p.Net.Inject(p.Host.If, pkt)
	rtt := p.Net.Now() - start
	reply := p.pending.reply
	p.pending = nil
	return reply, rtt
}

// buildProbe constructs one probe packet per the prober's method.
func (p *Prober) buildProbe(dst netaddr.Addr, ttl uint8) *packet.Packet {
	pkt := &packet.Packet{
		IP: packet.IPv4{
			TTL:      ttl,
			Protocol: packet.ProtoICMP,
			Src:      p.Host.Addr(),
			Dst:      dst,
		},
	}
	if p.Method == UDPParis {
		pkt.IP.Protocol = packet.ProtoUDP
		pkt.UDP = &packet.UDP{SrcPort: p.FlowID, DstPort: 33434 + p.seq%128}
	} else {
		pkt.ICMP = &packet.ICMP{Type: packet.ICMPEchoRequest, ID: p.FlowID, Seq: p.seq}
	}
	return pkt
}

// Traceroute traces toward dst.
func (p *Prober) Traceroute(dst netaddr.Addr) *Trace {
	tr := &Trace{Src: p.Host.Addr(), Dst: dst}
	gaps := 0
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	for ttl := p.FirstTTL; ttl <= p.MaxTTL; ttl++ {
		var reply *packet.Packet
		var rtt time.Duration
		for try := 0; try < attempts && reply == nil; try++ {
			p.seq++
			reply, rtt = p.sendAndWait(p.buildProbe(dst, ttl))
		}
		hop := Hop{ProbeTTL: ttl}
		if reply != nil {
			hop.Addr = reply.IP.Src
			hop.RTT = rtt
			hop.ReplyTTL = reply.IP.TTL
			hop.ICMPType = reply.ICMP.Type
			hop.ICMPCode = reply.ICMP.Code
			if reply.ICMP.Ext != nil {
				hop.MPLS = reply.ICMP.Ext.LabelStack
			}
		}
		tr.Hops = append(tr.Hops, hop)
		if hop.Anonymous() {
			gaps++
			if gaps >= p.GapLimit {
				break
			}
			continue
		}
		gaps = 0
		if hop.ICMPType == packet.ICMPEchoReply || hop.ICMPType == packet.ICMPDestUnreach {
			tr.Reached = true
			break
		}
	}
	return tr
}

// Ping sends one echo request with the given TTL (0 means 64) and reports
// the reply.
func (p *Prober) Ping(dst netaddr.Addr, ttl uint8) (PingReply, bool) {
	if ttl == 0 {
		ttl = 64
	}
	p.seq++
	probe := &packet.Packet{
		IP: packet.IPv4{
			TTL:      ttl,
			Protocol: packet.ProtoICMP,
			Src:      p.Host.Addr(),
			Dst:      dst,
		},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: p.FlowID, Seq: p.seq},
	}
	reply, rtt := p.sendAndWait(probe)
	if reply == nil {
		return PingReply{}, false
	}
	return PingReply{
		From:     reply.IP.Src,
		RTT:      rtt,
		ReplyTTL: reply.IP.TTL,
		ICMPType: reply.ICMP.Type,
	}, true
}
