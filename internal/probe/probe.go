// Package probe implements the measurement side of the paper: a Paris
// traceroute (stable per-flow identifier, so ECMP routers keep one path per
// trace) and ping, both running over the simulation fabric the way
// scamper's engines run over raw sockets.
package probe

import (
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
)

// Hop is one line of traceroute output.
type Hop struct {
	// ProbeTTL is the TTL the probe carried.
	ProbeTTL uint8
	// Addr is the replying interface; zero for an anonymous hop (no reply).
	Addr netaddr.Addr
	// RTT is the virtual round-trip time.
	RTT time.Duration
	// ReplyTTL is the received IP TTL of the reply — the bracketed value
	// in the paper's figures, the raw material of FRPLA and RTLA.
	ReplyTTL uint8
	// ICMPType/ICMPCode classify the reply.
	ICMPType, ICMPCode uint8
	// MPLS is the RFC 4950 label stack quoted by the replying LSR, if any.
	MPLS packet.LabelStack
}

// Anonymous reports whether the hop went unanswered.
func (h Hop) Anonymous() bool { return h.Addr.IsUnspecified() }

// Labeled reports whether the hop exposed MPLS labels.
func (h Hop) Labeled() bool { return len(h.MPLS) > 0 }

// Trace is a complete traceroute.
type Trace struct {
	Src, Dst netaddr.Addr
	Hops     []Hop
	// Reached reports whether the destination itself replied.
	Reached bool
}

// Last returns the final responding hop, if any.
func (t *Trace) Last() (Hop, bool) {
	for i := len(t.Hops) - 1; i >= 0; i-- {
		if !t.Hops[i].Anonymous() {
			return t.Hops[i], true
		}
	}
	return Hop{}, false
}

// Len returns the hop distance of the destination if reached, else the
// number of probed hops.
func (t *Trace) Len() int { return len(t.Hops) }

// PingReply is the outcome of one echo probe.
type PingReply struct {
	From     netaddr.Addr
	RTT      time.Duration
	ReplyTTL uint8
	ICMPType uint8
}

// Method selects the probe type.
type Method uint8

const (
	// ICMPParis sends ICMP echo requests with a fixed identifier (the
	// paper's campaign configuration).
	ICMPParis Method = iota
	// UDPParis sends UDP probes with fixed ports (classic traceroute;
	// the destination answers with port-unreachable).
	UDPParis
)

func (m Method) String() string {
	if m == UDPParis {
		return "udp"
	}
	return "icmp"
}

// udpBasePort is the classic traceroute destination-port base; probes
// cycle over the 128 ports above it, one flow per port. The sweep engine
// aliases those per-port flows back into branch classes, so the value is
// shared with netsim.
const udpBasePort = netsim.UDPBasePort

// Prober issues probes from a vantage-point host. It is not safe for
// concurrent use; campaigns run one Prober per vantage point sequentially
// over the shared fabric.
type Prober struct {
	Net  *netsim.Network
	Host *netsim.Host

	// Method selects ICMP-echo (default) or UDP probing.
	Method Method
	// FirstTTL is the TTL of the first traceroute probe (the campaign
	// uses 2, skipping the VP's own gateway, as in Sec. 4).
	FirstTTL uint8
	// MaxTTL bounds the traceroute.
	MaxTTL uint8
	// GapLimit stops a trace after this many consecutive anonymous hops.
	GapLimit int
	// Attempts retries an unanswered hop (rate-limited routers may answer
	// the second probe). Minimum 1.
	Attempts int
	// FlowID is the Paris flow identifier (ICMP echo ID / UDP source port).
	FlowID uint16

	// seq numbers probes. Each probe draws a 16-bit non-zero token from it
	// that is carried in the IP identifier and the ICMP sequence (or, mod
	// 128, the UDP destination port), so the reply-match key is unique
	// across any window of 65535 consecutive probes — the UDP port cycle
	// alone repeats every 128 and would alias distinct probes.
	seq     uint32
	waiting bool
	pending await

	// Sent counts probe packets for campaign accounting.
	Sent uint64
	// Recv counts matched replies (anonymous hops are the difference).
	Recv uint64
}

// await is the match key of the probe in flight: transport identifiers
// plus the IP-identifier token, which disambiguates probes whose
// transport fields collide (the UDP destination-port cycle).
type await struct {
	id, seq uint16
	ipid    uint16
	reply   *packet.Packet
	rtt     time.Duration
}

// New creates a prober bound to a vantage-point host with scamper-like
// defaults.
func New(net *netsim.Network, host *netsim.Host) *Prober {
	p := &Prober{Net: net, Host: host, FirstTTL: 1, MaxTTL: 30, GapLimit: 5, Attempts: 1, FlowID: 0x1234}
	host.Handler = p.handle
	return p
}

// traceSeed returns the deterministic token-stream seed of one trace
// (FNV-1a over the flow identity). Seeding per trace — rather than
// letting one sequence roll across the prober's lifetime — makes every
// trace a pure function of (source, destination, flow ID): the UDP
// destination-port sequence, and therefore the ECMP path of every UDP
// probe, no longer depends on how many probes ran before, so campaigns
// are byte-identical however bootstrap jobs and shards are partitioned
// across workers, and a re-trace of the same destination replays the
// same port slots straight into the flow cache.
func (p *Prober) traceSeed(dst netaddr.Addr) uint32 {
	h := uint32(2166136261)
	for _, w := range [3]uint32{uint32(p.Host.Addr()), uint32(dst), uint32(p.FlowID)} {
		for s := 24; s >= 0; s -= 8 {
			h = (h ^ (w >> s & 0xff)) * 16777619
		}
	}
	return h
}

// nextToken returns the next probe token: a non-zero uint16 drawn from the
// running sequence. Zero is skipped so the token never collides with the
// zero IP identifier of non-probe traffic.
func (p *Prober) nextToken() uint16 {
	p.seq++
	if uint16(p.seq) == 0 {
		p.seq++
	}
	return uint16(p.seq)
}

func (p *Prober) handle(net *netsim.Network, pkt *packet.Packet) {
	if !p.waiting || pkt.ICMP == nil {
		return
	}
	m := pkt.ICMP
	switch {
	case m.Type == packet.ICMPEchoReply:
		if m.ID == p.pending.id && m.Seq == p.pending.seq {
			// The reply outlives Receive (Traceroute reads it after the
			// drain and aliases its label stack into Hop.MPLS), so take it
			// off the fabric's free list.
			net.AdoptPacket(pkt)
			p.pending.reply = pkt
			p.Recv++
		}
	case m.IsError():
		// Error replies are matched on the quoted transport pair (echo
		// ID/Seq or UDP ports) and the quoted IP identifier, which carries
		// the full 16-bit probe token — the transport pair alone is not
		// collision-free for UDP, whose destination port cycles mod 128.
		if m.Quote != nil && m.Quote.ID == p.pending.id && m.Quote.Seq == p.pending.seq &&
			m.Quote.IP.ID == p.pending.ipid {
			net.AdoptPacket(pkt)
			p.pending.reply = pkt
			p.Recv++
		}
	}
}

// buildProbe constructs one probe packet for the given method and token.
func (p *Prober) buildProbe(dst netaddr.Addr, ttl uint8, method Method, token uint16) *packet.Packet {
	pkt := &packet.Packet{
		IP: packet.IPv4{
			ID:       token,
			TTL:      ttl,
			Protocol: packet.ProtoICMP,
			Src:      p.Host.Addr(),
			Dst:      dst,
		},
	}
	if method == UDPParis {
		pkt.IP.Protocol = packet.ProtoUDP
		pkt.UDP = &packet.UDP{SrcPort: p.FlowID, DstPort: udpBasePort + token%128}
	} else {
		pkt.ICMP = &packet.ICMP{Type: packet.ICMPEchoRequest, ID: p.FlowID, Seq: token}
	}
	return pkt
}

// replyObs converts a matched reply packet (or nil, for a timeout) into
// the observation the flow cache memoizes.
func replyObs(reply *packet.Packet, elapsed time.Duration) netsim.ProbeObs {
	obs := netsim.ProbeObs{Advance: elapsed}
	if reply != nil {
		obs.Answered = true
		obs.From = reply.IP.Src
		obs.ReplyTTL = reply.IP.TTL
		obs.ICMPType = reply.ICMP.Type
		obs.ICMPCode = reply.ICMP.Code
		if reply.ICMP.Ext != nil {
			obs.MPLS = reply.ICMP.Ext.LabelStack
		}
	}
	return obs
}

// probe issues one probe of the given method and TTL toward dst, going
// through the fabric's flow-trajectory cache: a memoized (flow, TTL)
// reply is replayed without touching the event loop; otherwise the probe
// runs live (fast-forwarded past the recorded frontier when possible) and
// its outcome is memoized. Sent/Recv and the virtual clock advance
// identically on every path.
func (p *Prober) probe(dst netaddr.Addr, ttl uint8, method Method) netsim.ProbeObs {
	// Churn ticks once per logical probe, memo hit or live — the single
	// choke point every probe passes through, so an armed schedule fires
	// its events at identical probe boundaries whether or not caching is
	// on. The sweep walk deliberately does not tick: it is bookkeeping
	// standing in for the per-probe replies the memo later serves here.
	p.Net.ChurnTick()
	token := p.nextToken()
	key := netsim.FlowKey{Src: p.Host.Addr(), Dst: dst, Proto: packet.ProtoICMP, A: p.FlowID}
	if method == UDPParis {
		key.Proto = packet.ProtoUDP
		key.B = udpBasePort + token%128
	}
	if obs, ok := p.Net.FlowLookup(key, ttl); ok {
		p.Sent++
		p.Net.AdvanceClock(obs.Advance)
		if obs.Answered {
			p.Recv++
		}
		return obs
	}
	if method == UDPParis && ttl < p.MaxTTL && p.Net.SweepBegin(key, ttl, p.MaxTTL) {
		// First contact with this slot's branch class: walk the slot once
		// at MaxTTL so the engine can derive the lower-TTL replies of this
		// and every aliased slot. Unlike the eager ICMP sweep, the walk
		// runs lazily inside the probe and reuses the probe's own token —
		// the slot IS the token, and drawing a fresh one would shift every
		// later probe's port off the per-probe oracle's sequence.
		wpkt := p.buildProbe(dst, p.MaxTTL, UDPParis, token)
		p.pending = await{id: wpkt.UDP.SrcPort, seq: wpkt.UDP.DstPort, ipid: token}
		p.waiting = true
		recv := p.Recv
		elapsed := p.Net.SweepWalk(p.Host.If, wpkt, key)
		wreply := p.pending.reply
		p.waiting = false
		p.pending = await{}
		p.Recv = recv
		p.Net.SweepFinish(key, ttl, replyObs(wreply, elapsed))
		if obs, ok := p.Net.FlowLookup(key, ttl); ok {
			p.Sent++
			p.Net.AdvanceClock(obs.Advance)
			if obs.Answered {
				p.Recv++
			}
			return obs
		}
	}
	pkt := p.buildProbe(dst, ttl, method, token)
	if pkt.UDP != nil {
		p.pending = await{id: pkt.UDP.SrcPort, seq: pkt.UDP.DstPort, ipid: token}
	} else {
		p.pending = await{id: pkt.ICMP.ID, seq: pkt.ICMP.Seq, ipid: token}
	}
	p.waiting = true
	p.Sent++
	elapsed := p.Net.FlowProbe(p.Host.If, pkt, key, ttl)
	reply := p.pending.reply
	p.waiting = false
	p.pending = await{}
	obs := replyObs(reply, elapsed)
	p.Net.FlowFinish(ttl, obs)
	return obs
}

// sweep offers the trace to the fabric's single-injection sweep engine:
// one walk at MaxTTL records the flow's whole trajectory, from which the
// engine derives the per-TTL replies the loop below will consume as memo
// hits. Only ICMP Paris sweeps eagerly here — its flow key is constant
// over the trace, so one up-front walk covers every probe. The UDP port
// cycle varies the flow key per probe; its walks run lazily inside
// probe(), one per branch class the trace actually touches. Inactive
// engines (impure fabric, sweep disabled, memo already covering the
// trace) make this a no-op and the trace runs per-probe.
func (p *Prober) sweep(dst netaddr.Addr) {
	if p.Method != ICMPParis {
		return
	}
	key := netsim.FlowKey{Src: p.Host.Addr(), Dst: dst, Proto: packet.ProtoICMP, A: p.FlowID}
	if !p.Net.SweepBegin(key, p.FirstTTL, p.MaxTTL) {
		return
	}
	token := p.nextToken()
	pkt := p.buildProbe(dst, p.MaxTTL, ICMPParis, token)
	p.pending = await{id: pkt.ICMP.ID, seq: pkt.ICMP.Seq, ipid: token}
	p.waiting = true
	// The walk is bookkeeping, not a probe: Sent is untouched and the
	// reply match must not count toward Recv (the derived memo hits will,
	// exactly as the per-probe oracle would).
	recv := p.Recv
	elapsed := p.Net.SweepWalk(p.Host.If, pkt, key)
	reply := p.pending.reply
	p.waiting = false
	p.pending = await{}
	p.Recv = recv
	p.Net.SweepFinish(key, p.FirstTTL, replyObs(reply, elapsed))
}

// Traceroute traces toward dst.
func (p *Prober) Traceroute(dst netaddr.Addr) *Trace {
	// Lazy fabrics materialize the destination's stub before the first
	// packet toward it exists (a no-op on eager fabrics).
	p.Net.FaultIn(dst)
	tr := &Trace{Src: p.Host.Addr(), Dst: dst}
	p.seq = p.traceSeed(dst)
	p.sweep(dst)
	gaps := 0
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	for ttl := p.FirstTTL; ttl <= p.MaxTTL; ttl++ {
		var obs netsim.ProbeObs
		for try := 0; try < attempts && !obs.Answered; try++ {
			obs = p.probe(dst, ttl, p.Method)
		}
		hop := Hop{ProbeTTL: ttl}
		if obs.Answered {
			hop.Addr = obs.From
			hop.RTT = obs.Advance
			hop.ReplyTTL = obs.ReplyTTL
			hop.ICMPType = obs.ICMPType
			hop.ICMPCode = obs.ICMPCode
			hop.MPLS = obs.MPLS
		}
		tr.Hops = append(tr.Hops, hop)
		if hop.Anonymous() {
			gaps++
			if gaps >= p.GapLimit {
				break
			}
			continue
		}
		gaps = 0
		if hop.ICMPType == packet.ICMPEchoReply || hop.ICMPType == packet.ICMPDestUnreach {
			tr.Reached = true
			break
		}
	}
	return tr
}

// Ping sends one echo request with the given TTL (0 means 64) and reports
// the reply. Pings are always ICMP, whatever the traceroute method.
func (p *Prober) Ping(dst netaddr.Addr, ttl uint8) (PingReply, bool) {
	p.Net.FaultIn(dst)
	if ttl == 0 {
		ttl = 64
	}
	obs := p.probe(dst, ttl, ICMPParis)
	if !obs.Answered {
		return PingReply{}, false
	}
	return PingReply{
		From:     obs.From,
		RTT:      obs.Advance,
		ReplyTTL: obs.ReplyTTL,
		ICMPType: obs.ICMPType,
	}, true
}
