package probe

import (
	"testing"

	"wormhole/internal/netsim"
	"wormhole/internal/packet"
)

// tracesEqual compares two traces hop for hop, RTTs and RFC 4950 stacks
// included.
func tracesEqual(t *testing.T, want, got *Trace) {
	t.Helper()
	if want.Reached != got.Reached || len(want.Hops) != len(got.Hops) {
		t.Fatalf("trace shape differs: want reached=%v hops=%d, got reached=%v hops=%d",
			want.Reached, len(want.Hops), got.Reached, len(got.Hops))
	}
	for i := range want.Hops {
		w, g := want.Hops[i], got.Hops[i]
		if w.Addr != g.Addr || w.RTT != g.RTT || w.ReplyTTL != g.ReplyTTL ||
			w.ICMPType != g.ICMPType || w.ICMPCode != g.ICMPCode || len(w.MPLS) != len(g.MPLS) {
			t.Errorf("hop %d differs: want %+v, got %+v", i, w, g)
			continue
		}
		for j := range w.MPLS {
			if w.MPLS[j] != g.MPLS[j] {
				t.Errorf("hop %d LSE %d differs: want %+v, got %+v", i, j, w.MPLS[j], g.MPLS[j])
			}
		}
	}
}

// TestSweepTraceMatchesPerProbe pins the probe-level contract of the
// sweep engine on a pure fabric: the sweep engages (one walk per trace)
// and the trace — including Sent/Recv accounting and the virtual clock —
// is identical to the per-probe run.
func TestSweepTraceMatchesPerProbe(t *testing.T) {
	a := buildLine(t, 3)
	off := a.prober.Traceroute(a.host.Addr())

	b := buildLine(t, 3)
	b.net.SetSweepEnabled(true)
	on := b.prober.Traceroute(b.host.Addr())

	tracesEqual(t, off, on)
	if s := b.net.SweepStats(); s.ICMP.Walks != 1 {
		t.Errorf("want exactly one sweep walk, got %+v", s)
	}
	if a.prober.Sent != b.prober.Sent || a.prober.Recv != b.prober.Recv {
		t.Errorf("accounting differs: per-probe Sent/Recv %d/%d, sweep %d/%d",
			a.prober.Sent, a.prober.Recv, b.prober.Sent, b.prober.Recv)
	}
	if a.net.Now() != b.net.Now() {
		t.Errorf("virtual clock differs: per-probe %v, sweep %v", a.net.Now(), b.net.Now())
	}
}

// TestSweepPurityFallbackLossyLink proves the purity gate: on a fabric
// with a lossy link the sweep must stay inert — no walks, no synthesized
// replies — and the trace runs per-probe.
func TestSweepPurityFallbackLossyLink(t *testing.T) {
	l := buildLine(t, 3)
	l.vp.If.Link.LossProb = 0.5
	l.net.SetSweepEnabled(true)
	tr := l.prober.Traceroute(l.host.Addr())
	if len(tr.Hops) == 0 {
		t.Fatal("trace produced no hops")
	}
	if s := l.net.SweepStats().Total(); s.Walks != 0 || s.Replies != 0 {
		t.Errorf("sweep engaged on an impure fabric: %+v", s)
	}
}

// TestSweepUDPFallsBackPerProbe pins that without the flow cache a UDP
// Paris trace never sweeps: slot walks memoize per (slot, TTL) across the
// port cycle, which the single-slot cache-off fallback entry cannot hold,
// so the engine stays inert and the trace runs per-probe.
func TestSweepUDPFallsBackPerProbe(t *testing.T) {
	l := buildLine(t, 3)
	l.net.SetSweepEnabled(true)
	l.prober.Method = UDPParis
	tr := l.prober.Traceroute(l.host.Addr())
	if !tr.Reached {
		t.Fatalf("UDP trace not reached: %+v", tr.Hops)
	}
	if tr.Hops[len(tr.Hops)-1].ICMPType != packet.ICMPDestUnreach {
		t.Errorf("UDP trace should end in port-unreachable: %+v", tr.Hops[len(tr.Hops)-1])
	}
	if s := l.net.SweepStats().Total(); s.Walks != 0 {
		t.Errorf("UDP trace swept without the flow cache: %+v", s)
	}
}

// TestSweepUDPTraceMatchesPerProbe pins the probe-level contract of the
// UDP slot walk on a pure fabric with the flow cache on: the first probe
// of the trace triggers one walk, lower TTLs replay as derived memo hits,
// and the trace — Sent/Recv accounting and virtual clock included — is
// identical to the per-probe run.
func TestSweepUDPTraceMatchesPerProbe(t *testing.T) {
	a := buildLine(t, 3)
	a.prober.Method = UDPParis
	off := a.prober.Traceroute(a.host.Addr())

	b := buildLine(t, 3)
	b.prober.Method = UDPParis
	b.net.SetFlowCacheEnabled(true)
	b.net.SetSweepEnabled(true)
	on := b.prober.Traceroute(b.host.Addr())

	tracesEqual(t, off, on)
	s := b.net.SweepStats()
	if s.UDP.Walks == 0 || s.UDP.Replies == 0 {
		t.Errorf("UDP slot sweep did not engage: %+v", s)
	}
	if s.ICMP != (netsim.SweepCounters{}) {
		t.Errorf("UDP trace charged ICMP sweep counters: %+v", s)
	}
	if a.prober.Sent != b.prober.Sent || a.prober.Recv != b.prober.Recv {
		t.Errorf("accounting differs: per-probe Sent/Recv %d/%d, sweep %d/%d",
			a.prober.Sent, a.prober.Recv, b.prober.Sent, b.prober.Recv)
	}
	if a.net.Now() != b.net.Now() {
		t.Errorf("virtual clock differs: per-probe %v, sweep %v", a.net.Now(), b.net.Now())
	}
}
