package lab

import (
	"fmt"
	"time"

	"wormhole/internal/bgp"
	"wormhole/internal/igp"
	"wormhole/internal/ldp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/probe"
	"wormhole/internal/router"
)

// DoubleLab is a testbed with two MPLS transit ASes in sequence:
//
//	VP - CE1 | PE1a - P1a - P2a - PE2a | PE1b - P1b - P2b - PE2b | CE2
//	   AS1   |          AS2 (MPLS)     |          AS3 (MPLS)     | AS4
//
// A trace to CE2 crosses two invisible tunnels. The paper's Sec. 4
// campaign heuristic (last three hops X, Y, D) only reveals the final
// one — the limitation it acknowledges in Sec. 7 when discussing path
// length underestimation — while the TNT-style augmented traceroute
// triggers on every hop pair and recovers both.
type DoubleLab struct {
	Net *netsim.Network
	VP  *netsim.Host

	// A-side (first transit AS) and B-side (second) routers.
	CE1, PE1a, P1a, P2a, PE2a *router.Router
	PE1b, P1b, P2b, PE2b      *router.Router
	CE2                       *router.Router

	CE1Left  netaddr.Addr
	PE1aLeft netaddr.Addr
	P1aLeft  netaddr.Addr
	P2aLeft  netaddr.Addr
	PE2aLeft netaddr.Addr
	PE1bLeft netaddr.Addr
	P1bLeft  netaddr.Addr
	P2bLeft  netaddr.Addr
	PE2bLeft netaddr.Addr
	CE2Left  netaddr.Addr

	Prober *probe.Prober
}

// BuildDouble constructs the two-tunnel testbed; both transit ASes run
// invisible LDP tunnels (all-prefix, no ttl-propagate, PHP).
func BuildDouble() (*DoubleLab, error) {
	net := netsim.New(77)
	l := &DoubleLab{Net: net}

	mplsCfg := router.Config{MPLSEnabled: true, LDP: router.LDPAllPrefixes}
	ipCfg := router.Config{TTLPropagate: true}

	mk := func(name string, cfg router.Config, lo string) *router.Router {
		r := router.New(name, router.Cisco, cfg)
		r.SetLoopback(netaddr.MustParseAddr(lo))
		net.AddNode(r)
		return r
	}
	l.CE1 = mk("CE1", ipCfg, "192.168.1.1")
	l.PE1a = mk("PE1a", mplsCfg, "192.168.2.1")
	l.P1a = mk("P1a", mplsCfg, "192.168.2.2")
	l.P2a = mk("P2a", mplsCfg, "192.168.2.3")
	l.PE2a = mk("PE2a", mplsCfg, "192.168.2.4")
	l.PE1b = mk("PE1b", mplsCfg, "192.168.3.1")
	l.P1b = mk("P1b", mplsCfg, "192.168.3.2")
	l.P2b = mk("P2b", mplsCfg, "192.168.3.3")
	l.PE2b = mk("PE2b", mplsCfg, "192.168.3.4")
	l.CE2 = mk("CE2", ipCfg, "192.168.4.1")

	type wire struct {
		a, b   *router.Router
		prefix string
	}
	wires := []wire{
		{l.CE1, l.PE1a, "10.12.0.0/30"},
		{l.PE1a, l.P1a, "10.2.1.0/30"},
		{l.P1a, l.P2a, "10.2.2.0/30"},
		{l.P2a, l.PE2a, "10.2.3.0/30"},
		{l.PE2a, l.PE1b, "10.23.0.0/30"},
		{l.PE1b, l.P1b, "10.3.1.0/30"},
		{l.P1b, l.P2b, "10.3.2.0/30"},
		{l.P2b, l.PE2b, "10.3.3.0/30"},
		{l.PE2b, l.CE2, "10.34.0.0/30"},
	}
	left := map[*router.Router]netaddr.Addr{}
	ifaces := map[[2]*router.Router]*netsim.Iface{}
	for _, w := range wires {
		p := netaddr.MustParsePrefix(w.prefix)
		ai := w.a.AddIface("to-"+w.b.Name(), p.Nth(1), p)
		bi := w.b.AddIface("to-"+w.a.Name(), p.Nth(2), p)
		net.Connect(ai, bi, time.Millisecond)
		ifaces[[2]*router.Router{w.a, w.b}] = ai
		ifaces[[2]*router.Router{w.b, w.a}] = bi
		left[w.b] = bi.Addr // the side facing the VP
	}

	vpP := netaddr.MustParsePrefix("10.1.0.0/30")
	l.VP = netsim.NewHost("VP", vpP.Nth(1), vpP)
	net.AddNode(l.VP)
	ce1Left := l.CE1.AddIface("left", vpP.Nth(2), vpP)
	net.Connect(l.VP.If, ce1Left, time.Millisecond)

	l.CE1Left = ce1Left.Addr
	l.PE1aLeft = left[l.PE1a]
	l.P1aLeft = left[l.P1a]
	l.P2aLeft = left[l.P2a]
	l.PE2aLeft = left[l.PE2a]
	l.PE1bLeft = left[l.PE1b]
	l.P1bLeft = left[l.P1b]
	l.P2bLeft = left[l.P2b]
	l.PE2bLeft = left[l.PE2b]
	l.CE2Left = left[l.CE2]

	all := []*router.Router{l.CE1, l.PE1a, l.P1a, l.P2a, l.PE2a, l.PE1b, l.P1b, l.P2b, l.PE2b, l.CE2}
	for _, r := range all {
		if lo := r.Loopback(); lo != nil {
			if err := net.RegisterIface(lo); err != nil {
				return nil, err
			}
		}
		for _, ifc := range r.Ifaces() {
			if err := net.RegisterIface(ifc); err != nil {
				return nil, err
			}
		}
	}
	if err := net.RegisterIface(l.VP.If); err != nil {
		return nil, err
	}

	// IGPs + LDP per AS.
	mkAS := func(num uint32, prefixes []string, routers ...*router.Router) (*bgp.AS, error) {
		for _, r := range routers {
			r.SetASN(num)
		}
		dom := &igp.Domain{Routers: routers}
		spf, err := dom.Compute()
		if err != nil {
			return nil, err
		}
		if routers[0].Config().MPLSEnabled {
			ldp.Build(routers, spf)
		}
		var ps []netaddr.Prefix
		for _, s := range prefixes {
			ps = append(ps, netaddr.MustParsePrefix(s))
		}
		return &bgp.AS{Num: num, Routers: routers, Prefixes: ps, SPF: spf}, nil
	}
	as1, err := mkAS(1, []string{"10.1.0.0/30", "192.168.1.1/32"}, l.CE1)
	if err != nil {
		return nil, err
	}
	as2, err := mkAS(2, []string{"10.2.0.0/16", "10.12.0.0/30", "192.168.2.0/24"}, l.PE1a, l.P1a, l.P2a, l.PE2a)
	if err != nil {
		return nil, err
	}
	as3, err := mkAS(3, []string{"10.3.0.0/16", "10.23.0.0/30", "10.34.0.0/30", "192.168.3.0/24"}, l.PE1b, l.P1b, l.P2b, l.PE2b)
	if err != nil {
		return nil, err
	}
	as4, err := mkAS(4, []string{"192.168.4.1/32"}, l.CE2)
	if err != nil {
		return nil, err
	}

	topo := &bgp.Topology{
		ASes: []*bgp.AS{as1, as2, as3, as4},
		Sessions: []*bgp.Session{
			{A: l.CE1, B: l.PE1a, AIf: ifaces[[2]*router.Router{l.CE1, l.PE1a}], BIf: ifaces[[2]*router.Router{l.PE1a, l.CE1}], Rel: bgp.ACustomerOfB},
			{A: l.PE2a, B: l.PE1b, AIf: ifaces[[2]*router.Router{l.PE2a, l.PE1b}], BIf: ifaces[[2]*router.Router{l.PE1b, l.PE2a}], Rel: bgp.APeerOfB},
			{A: l.CE2, B: l.PE2b, AIf: ifaces[[2]*router.Router{l.CE2, l.PE2b}], BIf: ifaces[[2]*router.Router{l.PE2b, l.CE2}], Rel: bgp.ACustomerOfB},
		},
	}
	if err := bgp.Compute(topo); err != nil {
		return nil, err
	}
	l.Prober = probe.New(net, l.VP)
	return l, nil
}

// MustBuildDouble is BuildDouble for tests and examples.
func MustBuildDouble() *DoubleLab {
	l, err := BuildDouble()
	if err != nil {
		panic(fmt.Sprintf("lab: %v", err))
	}
	return l
}
