package lab

import (
	"testing"

	"wormhole/internal/netaddr"
	"wormhole/internal/probe"
	"wormhole/internal/router"
)

// expHop is one expected traceroute line: replying address, bracketed
// return TTL, and whether an RFC4950 label was quoted.
type expHop struct {
	addr     netaddr.Addr
	replyTTL uint8
	labeled  bool
}

func checkTrace(t *testing.T, name string, tr *probe.Trace, want []expHop, reached bool) {
	t.Helper()
	if len(tr.Hops) != len(want) {
		t.Fatalf("%s: got %d hops, want %d\n%+v", name, len(tr.Hops), len(want), tr.Hops)
	}
	for i, w := range want {
		h := tr.Hops[i]
		if h.Addr != w.addr {
			t.Errorf("%s hop %d: addr %s, want %s", name, i+1, h.Addr, w.addr)
		}
		if h.ReplyTTL != w.replyTTL {
			t.Errorf("%s hop %d (%s): return TTL %d, want %d", name, i+1, h.Addr, h.ReplyTTL, w.replyTTL)
		}
		if h.Labeled() != w.labeled {
			t.Errorf("%s hop %d (%s): labeled=%v, want %v", name, i+1, h.Addr, h.Labeled(), w.labeled)
		}
	}
	if tr.Reached != reached {
		t.Errorf("%s: reached=%v, want %v", name, tr.Reached, reached)
	}
}

// TestFig4aDefault reproduces the paper's Fig. 4a: the Default
// configuration shows the explicit tunnel with labels and the
// tunnel-tail-detour return TTLs 247/248/251.
func TestFig4aDefault(t *testing.T) {
	l := MustBuild(Options{Scenario: Default})
	tr := l.Prober.Traceroute(l.CE2Left)
	checkTrace(t, "pt CE2.left", tr, []expHop{
		{l.CE1Left, 255, false},
		{l.PE1Left, 254, false},
		{l.P1Left, 247, true},
		{l.P2Left, 248, true},
		{l.P3Left, 251, true},
		{l.PE2Left, 250, false},
		{l.CE2Left, 249, false},
	}, true)

	// The quoted LSE TTL must be 1, as printed by scamper.
	for _, i := range []int{2, 3, 4} {
		h := tr.Hops[i]
		if len(h.MPLS) != 1 || h.MPLS[0].TTL != 1 {
			t.Errorf("hop %d quoted stack = %v, want single LSE with TTL 1", i+1, h.MPLS)
		}
	}
}

// TestFig4bBackwardRecursive reproduces Fig. 4b: the invisible tunnel and
// the five recursive traces that reveal it hop by hop (BRPR), all without
// any MPLS flags.
func TestFig4bBackwardRecursive(t *testing.T) {
	l := MustBuild(Options{Scenario: BackwardRecursive})
	p := l.Prober

	checkTrace(t, "pt CE2.left", p.Traceroute(l.CE2Left), []expHop{
		{l.CE1Left, 255, false},
		{l.PE1Left, 254, false},
		{l.PE2Left, 250, false},
		{l.CE2Left, 250, false},
	}, true)

	checkTrace(t, "pt PE2.left", p.Traceroute(l.PE2Left), []expHop{
		{l.CE1Left, 255, false},
		{l.PE1Left, 254, false},
		{l.P3Left, 251, false},
		{l.PE2Left, 250, false},
	}, true)

	checkTrace(t, "pt P3.left", p.Traceroute(l.P3Left), []expHop{
		{l.CE1Left, 255, false},
		{l.PE1Left, 254, false},
		{l.P2Left, 252, false},
		{l.P3Left, 251, false},
	}, true)

	checkTrace(t, "pt P2.left", p.Traceroute(l.P2Left), []expHop{
		{l.CE1Left, 255, false},
		{l.PE1Left, 254, false},
		{l.P1Left, 253, false},
		{l.P2Left, 252, false},
	}, true)

	checkTrace(t, "pt P1.left", p.Traceroute(l.P1Left), []expHop{
		{l.CE1Left, 255, false},
		{l.PE1Left, 254, false},
		{l.P1Left, 253, false},
	}, true)
}

// TestFig4cExplicitRoute reproduces Fig. 4c: targeting the Egress LER's
// incoming interface follows the pure IGP route and reveals the whole LSP
// in one probe (DPR).
func TestFig4cExplicitRoute(t *testing.T) {
	l := MustBuild(Options{Scenario: ExplicitRoute})
	p := l.Prober

	checkTrace(t, "pt CE2.left", p.Traceroute(l.CE2Left), []expHop{
		{l.CE1Left, 255, false},
		{l.PE1Left, 254, false},
		{l.PE2Left, 250, false},
		{l.CE2Left, 250, false},
	}, true)

	checkTrace(t, "pt PE2.left", p.Traceroute(l.PE2Left), []expHop{
		{l.CE1Left, 255, false},
		{l.PE1Left, 254, false},
		{l.P1Left, 253, false},
		{l.P2Left, 252, false},
		{l.P3Left, 251, false},
		{l.PE2Left, 250, false},
	}, true)
}

// TestFig4dTotallyInvisible reproduces Fig. 4d: with UHP the egress LER
// vanishes too — CE2 appears directly connected to PE1 — and targeting
// PE2 reveals nothing either.
func TestFig4dTotallyInvisible(t *testing.T) {
	l := MustBuild(Options{Scenario: TotallyInvisible})
	p := l.Prober

	checkTrace(t, "pt CE2.left", p.Traceroute(l.CE2Left), []expHop{
		{l.CE1Left, 255, false},
		{l.PE1Left, 254, false},
		{l.CE2Left, 252, false},
	}, true)

	checkTrace(t, "pt PE2.left", p.Traceroute(l.PE2Left), []expHop{
		{l.CE1Left, 255, false},
		{l.PE1Left, 254, false},
		{l.PE2Left, 253, false},
	}, true)
}

// TestFig4aJuniperEgressGap checks the RTLA raw material: with a Juniper
// egress LER and an invisible return tunnel, time-exceeded and echo-reply
// return TTLs diverge by exactly the return tunnel length.
func TestJuniperEgressGap(t *testing.T) {
	l := MustBuild(Options{
		Scenario:       BackwardRecursive,
		PE2Personality: router.Juniper,
	})
	p := l.Prober

	// Trace to CE2: PE2 replies with a time-exceeded (TTL init 255).
	tr := p.Traceroute(l.CE2Left)
	var teTTL uint8
	for _, h := range tr.Hops {
		if h.Addr == l.PE2Left {
			teTTL = h.ReplyTTL
		}
	}
	if teTTL == 0 {
		t.Fatal("PE2 not observed in trace")
	}
	// Ping PE2 (echo reply init 64).
	reply, ok := p.Ping(l.PE2Left, 64)
	if !ok {
		t.Fatal("no ping reply from PE2")
	}
	teLen := int(255 - teTTL)
	echoLen := int(64 - reply.ReplyTTL)
	gap := teLen - echoLen
	// The return tunnel PE2->PE1 hides P1,P2,P3: the time-exceeded path
	// counts them (min copy), the echo path does not (64 < LSE TTL).
	if gap != 3 {
		t.Errorf("RTLA gap = %d (te path %d, echo path %d), want 3", gap, teLen, echoLen)
	}
}

// TestFig4cJuniperGolden is the Juniper variant of the testbed the paper
// mentions ("we also analyzed a similar Juniper testbed"): all of AS2 runs
// the Juniper personality with its host-routes LDP default. The DPR trace
// shows the same hop sequence as Fig. 4c, and the egress's echo reply
// exposes the <255,64> signature: its return TTL is 64-based while the
// time-exceeded hops are 255-based — the RTLA gap inside one trace.
func TestFig4cJuniperGolden(t *testing.T) {
	l := MustBuild(Options{Scenario: ExplicitRoute, AS2Personality: router.Juniper})
	checkTrace(t, "pt PE2.left (juniper)", l.Prober.Traceroute(l.PE2Left), []expHop{
		{l.CE1Left, 255, false},
		{l.PE1Left, 254, false},
		{l.P1Left, 253, false},
		{l.P2Left, 252, false},
		{l.P3Left, 251, false},
		// PE2 answers as the destination: Juniper echo replies start at
		// 64; the invisible return tunnel does not leak into them (the
		// min keeps 64), so only PE1 and CE1 decrement: 62.
		{l.PE2Left, 62, false},
	}, true)

	// The external target stays invisible with the same hops as Fig. 4c.
	checkTrace(t, "pt CE2.left (juniper)", l.Prober.Traceroute(l.CE2Left), []expHop{
		{l.CE1Left, 255, false},
		{l.PE1Left, 254, false},
		{l.PE2Left, 250, false},
		{l.CE2Left, 250, false},
	}, true)
}
