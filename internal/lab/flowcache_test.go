package lab

import (
	"testing"

	"wormhole/internal/probe"
	"wormhole/internal/router"
)

// warmLab builds the default testbed with the flow-trajectory cache
// enabled and warms it with one traceroute to CE2.
func warmLab(t *testing.T) *Lab {
	t.Helper()
	l, err := Build(Options{Scenario: Default})
	if err != nil {
		t.Fatal(err)
	}
	l.Net.SetFlowCacheEnabled(true)
	if tr := l.Prober.Traceroute(l.CE2Left); !tr.Reached {
		t.Fatalf("warmup trace failed: %+v", tr.Hops)
	}
	return l
}

// sameTrace compares the observable fields of two traces.
func sameTrace(a, b *probe.Trace) bool {
	if a.Reached != b.Reached || len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		ha, hb := a.Hops[i], b.Hops[i]
		if ha.ProbeTTL != hb.ProbeTTL || ha.Addr != hb.Addr || ha.RTT != hb.RTT ||
			ha.ReplyTTL != hb.ReplyTTL || ha.ICMPType != hb.ICMPType || ha.ICMPCode != hb.ICMPCode ||
			len(ha.MPLS) != len(hb.MPLS) {
			return false
		}
		for j := range ha.MPLS {
			if ha.MPLS[j] != hb.MPLS[j] {
				return false
			}
		}
	}
	return true
}

// TestFlowCacheInvalidatedByMutations drives every control-plane mutation
// hook mid-probing and checks the contract: the mutation flushes the cache
// (Invalidations advances, the next probe misses), and the post-mutation
// trace is byte-identical to a cold-cache oracle that applied the same
// mutation to a fresh, cache-disabled testbed.
func TestFlowCacheInvalidatedByMutations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(l *Lab)
	}{
		{"SetPersonality", func(l *Lab) { l.PE2.SetPersonality(router.Juniper) }},
		{"ClearMPLS", func(l *Lab) { l.P2.ClearMPLS() }},
		{"DeleteRoute", func(l *Lab) {
			// Withdraw whatever P2 resolves for CE2's access link.
			p, _, ok := l.P2.LookupRoute(l.CE2Left)
			if !ok || !l.P2.DeleteRoute(p) {
				panic("no route to delete on P2")
			}
		}},
		{"InstallLFIB", func(l *Lab) {
			// Adding an (unused) label entry is still a mutation:
			// forwarding state changed, so everything recorded must go.
			l.P2.InstallLFIB(&router.LFIBEntry{
				InLabel:  l.P2.AllocLabel(),
				NextHops: []router.LabelHop{{Out: l.P2.Ifaces()[0], Label: router.OutLabelImplicitNull}},
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := warmLab(t)

			// Sanity: a warmed repeat is served from the memo.
			s0 := l.Net.FlowCacheStats()
			l.Prober.Traceroute(l.CE2Left)
			s1 := l.Net.FlowCacheStats()
			if s1.Hits <= s0.Hits {
				t.Fatalf("warmed repeat did not hit the cache: %+v -> %+v", s0, s1)
			}

			tc.mutate(l)
			s2 := l.Net.FlowCacheStats()
			if s2.Invalidations != s1.Invalidations+1 {
				t.Fatalf("mutation did not invalidate: %+v -> %+v", s1, s2)
			}

			tr1 := l.Prober.Traceroute(l.CE2Left)
			s3 := l.Net.FlowCacheStats()
			if s3.Misses <= s2.Misses {
				t.Errorf("post-mutation trace was served from a flushed cache: %+v -> %+v", s2, s3)
			}

			// Cold oracle: fresh testbed, same mutation, cache never
			// enabled. ICMP Paris probing keeps the flow hash independent
			// of the probe token stream, so the traces are comparable even
			// though the oracle's prober starts from token zero.
			o, err := Build(Options{Scenario: Default})
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(o)
			otr := o.Prober.Traceroute(o.CE2Left)
			if !sameTrace(tr1, otr) {
				t.Errorf("post-mutation trace diverged from cold oracle:\ncached: %+v\noracle: %+v", tr1.Hops, otr.Hops)
			}
			// Repeat traces stay deterministic after the mutation too.
			tr2 := l.Prober.Traceroute(l.CE2Left)
			if !sameTrace(tr1, tr2) {
				t.Errorf("post-mutation traces unstable:\nfirst:  %+v\nsecond: %+v", tr1.Hops, tr2.Hops)
			}
		})
	}
}

// TestFlowCacheZeroAllocSteadyState pins the allocation-free fast path: a
// memoized probe (warm flow, warm TTL) allocates nothing.
func TestFlowCacheZeroAllocSteadyState(t *testing.T) {
	l := warmLab(t)
	if _, ok := l.Prober.Ping(l.CE2Left, 64); !ok {
		t.Fatal("warmup ping failed")
	}
	s0 := l.Net.FlowCacheStats()
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := l.Prober.Ping(l.CE2Left, 64); !ok {
			t.Fatal("cached ping failed")
		}
	})
	s1 := l.Net.FlowCacheStats()
	if s1.Hits <= s0.Hits || s1.Misses != s0.Misses {
		t.Fatalf("pings were not served from the memo: %+v -> %+v", s0, s1)
	}
	if allocs != 0 {
		t.Errorf("cached probe allocates %.1f objects per run, want 0", allocs)
	}
}
