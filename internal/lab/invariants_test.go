package lab

import (
	"testing"
	"testing/quick"

	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
	"wormhole/internal/reveal"
	"wormhole/internal/router"
)

// The testbed is small enough to brute-force invariants over every
// scenario, personality, and probe TTL: properties that must hold whatever
// the MPLS configuration.

func allScenarios() []Scenario {
	return []Scenario{Default, BackwardRecursive, ExplicitRoute, TotallyInvisible}
}

// TestInvariantDestinationAlwaysReached: whatever the tunnel configuration
// does to intermediate hops, the destination must answer — MPLS hides
// hops, it must never break forwarding.
func TestInvariantDestinationAlwaysReached(t *testing.T) {
	for _, sc := range allScenarios() {
		for _, pers := range []router.Personality{router.Cisco, router.Juniper, router.JunosE, router.Legacy} {
			l := MustBuild(Options{Scenario: sc, AS2Personality: pers})
			for _, dst := range []netaddr.Addr{l.CE2Left, l.CE2Lo, l.PE2Left, l.PE2Lo} {
				tr := l.Prober.Traceroute(dst)
				if !tr.Reached {
					t.Errorf("%s/%s: %s unreachable: %+v", sc, pers.Name, dst, tr.Hops)
				}
			}
		}
	}
}

// TestInvariantReplyTTLBounded: every reply TTL is below the responder's
// initial TTL by at least the true return distance and never exceeds it.
func TestInvariantReplyTTLBounded(t *testing.T) {
	for _, sc := range allScenarios() {
		l := MustBuild(Options{Scenario: sc})
		tr := l.Prober.Traceroute(l.CE2Left)
		for _, h := range tr.Hops {
			if h.Anonymous() {
				continue
			}
			var initial uint8 = 255 // all Cisco here
			if h.ICMPType == packet.ICMPEchoReply {
				initial = 255
			}
			if h.ReplyTTL > initial {
				t.Errorf("%s: hop %s reply TTL %d above initial", sc, h.Addr, h.ReplyTTL)
			}
			// The reply crossed at least CE1 on its way back.
			if h.Addr != l.CE1Left && h.ReplyTTL > initial-1 {
				t.Errorf("%s: hop %s reply TTL %d did not decrement", sc, h.Addr, h.ReplyTTL)
			}
		}
	}
}

// TestInvariantVisibleHopsAreSubset: hiding tunnels only removes hops;
// every hop visible in an invisible-tunnel trace must also exist in the
// propagating trace toward the same destination.
func TestInvariantVisibleHopsAreSubset(t *testing.T) {
	full := MustBuild(Options{Scenario: Default})
	fullHops := map[netaddr.Addr]bool{}
	for _, h := range full.Prober.Traceroute(full.CE2Left).Hops {
		fullHops[h.Addr] = true
	}
	for _, sc := range []Scenario{BackwardRecursive, ExplicitRoute} {
		l := MustBuild(Options{Scenario: sc})
		for _, h := range l.Prober.Traceroute(l.CE2Left).Hops {
			if h.Anonymous() {
				continue
			}
			if !fullHops[h.Addr] {
				t.Errorf("%s: hop %s not present in the propagating trace", sc, h.Addr)
			}
		}
	}
}

// TestInvariantMonotoneProbeTTL: quick-checked over random probe TTLs —
// a probe with larger TTL never terminates at an earlier hop than a probe
// with smaller TTL (per-flow path stability under Paris).
func TestInvariantMonotoneProbeTTL(t *testing.T) {
	l := MustBuild(Options{Scenario: BackwardRecursive})
	dist := func(ttl uint8) int {
		reply, ok := pingAt(l, l.CE2Left, ttl)
		if !ok {
			return -1
		}
		return reply
	}
	f := func(a, b uint8) bool {
		ta := 1 + a%12
		tb := 1 + b%12
		if ta > tb {
			ta, tb = tb, ta
		}
		da, db := dist(ta), dist(tb)
		if da < 0 || db < 0 {
			return false
		}
		// The responder for the smaller TTL is never farther along the
		// path (identified here by the probe TTL at which the destination
		// finally answers: once reached, stays reached).
		return da <= db
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// pingAt sends one probe with the given TTL toward dst and reports how
// many responding hops a trace capped at that TTL sees.
func pingAt(l *Lab, dst netaddr.Addr, maxTTL uint8) (int, bool) {
	p := l.Prober
	saveMax := p.MaxTTL
	p.MaxTTL = maxTTL
	defer func() { p.MaxTTL = saveMax }()
	tr := p.Traceroute(dst)
	n := 0
	for _, h := range tr.Hops {
		if !h.Anonymous() {
			n++
		}
	}
	return n, true
}

// TestInvariantRevelationNeverInventsHops: every address produced by the
// revelation process must belong to the testbed (no phantom addresses).
func TestInvariantRevelationNeverInventsHops(t *testing.T) {
	known := map[netaddr.Addr]bool{}
	for _, sc := range allScenarios() {
		l := MustBuild(Options{Scenario: sc})
		for _, r := range []*router.Router{l.CE1, l.PE1, l.P1, l.P2, l.P3, l.PE2, l.CE2} {
			for _, ifc := range r.Ifaces() {
				known[ifc.Addr] = true
			}
			if lo := r.Loopback(); lo != nil {
				known[lo.Addr] = true
			}
		}
		rev := reveal.Reveal(l.Prober, l.PE1Left, l.PE2Left)
		for _, h := range rev.Hops {
			if !known[h] {
				t.Errorf("%s: revelation invented address %s", sc, h)
			}
		}
	}
}

// TestInvariantProbeConservation: the number of probes sent by a
// traceroute equals the number of hops probed (accounting sanity that the
// campaign's cost figures rest on).
func TestInvariantProbeConservation(t *testing.T) {
	l := MustBuild(Options{Scenario: BackwardRecursive})
	before := l.Prober.Sent
	tr := l.Prober.Traceroute(l.CE2Left)
	sent := l.Prober.Sent - before
	if sent != uint64(len(tr.Hops)) {
		t.Errorf("sent %d probes for %d hops", sent, len(tr.Hops))
	}
}
