// Package lab builds the paper's GNS3 validation testbed (Fig. 2): a
// client AS1 (CE1, with the vantage point behind it), an MPLS transit AS2
// (PE1 - P1 - P2 - P3 - PE2 running LDP over an OSPF-like IGP), and a
// client AS3 (CE2). The four emulation scenarios of Sec. 3.3 are selected
// by Scenario; the expected traceroute outputs — including bracketed
// return TTLs — are the golden data of Fig. 4.
package lab

import (
	"fmt"
	"time"

	"wormhole/internal/bgp"
	"wormhole/internal/igp"
	"wormhole/internal/ldp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/probe"
	"wormhole/internal/router"
)

// Scenario selects one of the paper's four MPLS configurations for AS2.
type Scenario int

const (
	// Default: PHP, ttl-propagate, LDP for all prefixes. Explicit tunnel.
	Default Scenario = iota
	// BackwardRecursive: Default minus ttl-propagate. Invisible tunnel
	// revealed hop-by-hop by BRPR.
	BackwardRecursive
	// ExplicitRoute: no ttl-propagate, LDP for loopbacks only (the
	// Juniper default). Internal targets follow pure IGP routes: DPR.
	ExplicitRoute
	// TotallyInvisible: no ttl-propagate plus UHP. Nothing to see.
	TotallyInvisible
)

func (s Scenario) String() string {
	switch s {
	case Default:
		return "default"
	case BackwardRecursive:
		return "backward-recursive"
	case ExplicitRoute:
		return "explicit-route"
	case TotallyInvisible:
		return "totally-invisible"
	default:
		return fmt.Sprintf("scenario-%d", int(s))
	}
}

// Options tunes the testbed build.
type Options struct {
	Scenario Scenario
	// AS2Personality is the OS of all AS2 routers (default Cisco).
	AS2Personality router.Personality
	// PE2Personality overrides the egress LER's OS (RTLA experiments use
	// Juniper here). Zero value means "same as AS2Personality".
	PE2Personality router.Personality
	// LinkDelay is the one-way delay of every link (default 1ms).
	LinkDelay time.Duration
	// TunnelDelay, when non-zero, is used for the three links inside the
	// LSP (P1-P2, P2-P3, P3-PE2) instead of LinkDelay, so
	// delay-decomposition experiments (Fig. 6) see an interesting profile.
	TunnelDelay time.Duration
}

// Lab is the built testbed.
type Lab struct {
	Net *netsim.Network
	VP  *netsim.Host

	CE1, PE1, P1, P2, P3, PE2, CE2 *router.Router

	// Named addresses from Fig. 2. "Left" is the side facing the VP.
	VPAddr  netaddr.Addr
	CE1Left netaddr.Addr
	PE1Left netaddr.Addr
	P1Left  netaddr.Addr
	P2Left  netaddr.Addr
	P3Left  netaddr.Addr
	PE2Left netaddr.Addr
	CE2Left netaddr.Addr
	CE2Lo   netaddr.Addr
	PE2Lo   netaddr.Addr
	PE1Lo   netaddr.Addr

	Prober *probe.Prober
	SPF2   *igp.Result
}

// Build constructs the testbed.
func Build(o Options) (*Lab, error) {
	if o.AS2Personality.Name == "" {
		o.AS2Personality = router.Cisco
	}
	if o.PE2Personality.Name == "" {
		o.PE2Personality = o.AS2Personality
	}
	if o.LinkDelay == 0 {
		o.LinkDelay = time.Millisecond
	}
	if o.TunnelDelay == 0 {
		o.TunnelDelay = o.LinkDelay
	}

	as2cfg := router.Config{MPLSEnabled: true}
	switch o.Scenario {
	case Default:
		as2cfg.TTLPropagate = true
		as2cfg.LDP = router.LDPAllPrefixes
	case BackwardRecursive:
		as2cfg.LDP = router.LDPAllPrefixes
	case ExplicitRoute:
		as2cfg.LDP = router.LDPHostRoutesOnly
	case TotallyInvisible:
		as2cfg.LDP = router.LDPAllPrefixes
		as2cfg.UHP = true
	default:
		return nil, fmt.Errorf("lab: unknown scenario %d", o.Scenario)
	}
	ipCfg := router.Config{TTLPropagate: true} // plain IP client routers

	net := netsim.New(42)
	l := &Lab{Net: net}

	l.CE1 = router.New("CE1", router.Cisco, ipCfg)
	l.PE1 = router.New("PE1", o.AS2Personality, as2cfg)
	l.P1 = router.New("P1", o.AS2Personality, as2cfg)
	l.P2 = router.New("P2", o.AS2Personality, as2cfg)
	l.P3 = router.New("P3", o.AS2Personality, as2cfg)
	l.PE2 = router.New("PE2", o.PE2Personality, as2cfg)
	l.CE2 = router.New("CE2", router.Cisco, ipCfg)
	routers := []*router.Router{l.CE1, l.PE1, l.P1, l.P2, l.P3, l.PE2, l.CE2}
	for _, r := range routers {
		net.AddNode(r)
	}

	// Loopbacks.
	l.CE1.SetLoopback(netaddr.MustParseAddr("192.168.1.1"))
	l.PE1.SetLoopback(netaddr.MustParseAddr("192.168.2.1"))
	l.P1.SetLoopback(netaddr.MustParseAddr("192.168.2.2"))
	l.P2.SetLoopback(netaddr.MustParseAddr("192.168.2.3"))
	l.P3.SetLoopback(netaddr.MustParseAddr("192.168.2.4"))
	l.PE2.SetLoopback(netaddr.MustParseAddr("192.168.2.5"))
	l.CE2.SetLoopback(netaddr.MustParseAddr("192.168.3.1"))
	l.PE1Lo = l.PE1.Loopback().Addr
	l.PE2Lo = l.PE2.Loopback().Addr
	l.CE2Lo = l.CE2.Loopback().Addr

	type wire struct {
		a, b         *router.Router
		aName, bName string
		prefix       string
		delay        time.Duration
	}
	wires := []wire{
		{l.CE1, l.PE1, "right", "left", "10.12.0.0/30", o.LinkDelay},
		{l.PE1, l.P1, "right", "left", "10.2.1.0/30", o.LinkDelay},
		{l.P1, l.P2, "right", "left", "10.2.2.0/30", o.TunnelDelay},
		{l.P2, l.P3, "right", "left", "10.2.3.0/30", o.TunnelDelay},
		{l.P3, l.PE2, "right", "left", "10.2.4.0/30", o.TunnelDelay},
		{l.PE2, l.CE2, "right", "left", "10.23.0.0/30", o.LinkDelay},
	}
	ifaces := map[string]*netsim.Iface{}
	for _, w := range wires {
		p := netaddr.MustParsePrefix(w.prefix)
		ai := w.a.AddIface(w.aName, p.Nth(1), p)
		bi := w.b.AddIface(w.bName, p.Nth(2), p)
		net.Connect(ai, bi, w.delay)
		ifaces[w.a.Name()+"."+w.aName] = ai
		ifaces[w.b.Name()+"."+w.bName] = bi
	}

	// The vantage point hangs off CE1's left side.
	vpPrefix := netaddr.MustParsePrefix("10.1.0.0/30")
	l.VP = netsim.NewHost("VP", vpPrefix.Nth(1), vpPrefix)
	net.AddNode(l.VP)
	ce1Left := l.CE1.AddIface("left", vpPrefix.Nth(2), vpPrefix)
	net.Connect(l.VP.If, ce1Left, o.LinkDelay)
	ifaces["CE1.left"] = ce1Left

	l.VPAddr = l.VP.Addr()
	l.CE1Left = ce1Left.Addr
	l.PE1Left = ifaces["PE1.left"].Addr
	l.P1Left = ifaces["P1.left"].Addr
	l.P2Left = ifaces["P2.left"].Addr
	l.P3Left = ifaces["P3.left"].Addr
	l.PE2Left = ifaces["PE2.left"].Addr
	l.CE2Left = ifaces["CE2.left"].Addr

	// Register everything.
	for _, r := range routers {
		if lo := r.Loopback(); lo != nil {
			if err := net.RegisterIface(lo); err != nil {
				return nil, err
			}
		}
		for _, ifc := range r.Ifaces() {
			if err := net.RegisterIface(ifc); err != nil {
				return nil, err
			}
		}
	}
	if err := net.RegisterIface(l.VP.If); err != nil {
		return nil, err
	}

	// IGPs.
	dom1 := &igp.Domain{Routers: []*router.Router{l.CE1}}
	spf1, err := dom1.Compute()
	if err != nil {
		return nil, err
	}
	dom2 := &igp.Domain{Routers: []*router.Router{l.PE1, l.P1, l.P2, l.P3, l.PE2}}
	spf2, err := dom2.Compute()
	if err != nil {
		return nil, err
	}
	l.SPF2 = spf2
	dom3 := &igp.Domain{Routers: []*router.Router{l.CE2}}
	spf3, err := dom3.Compute()
	if err != nil {
		return nil, err
	}

	// LDP inside AS2.
	ldp.Build(dom2.Routers, spf2)

	// BGP.
	as1 := &bgp.AS{Num: 1, Routers: dom1.Routers, SPF: spf1,
		Prefixes: []netaddr.Prefix{
			netaddr.MustParsePrefix("10.1.0.0/30"),
			netaddr.MustParsePrefix("192.168.1.1/32"),
		}}
	as2 := &bgp.AS{Num: 2, Routers: dom2.Routers, SPF: spf2,
		Prefixes: []netaddr.Prefix{
			netaddr.MustParsePrefix("10.2.0.0/16"),
			netaddr.MustParsePrefix("10.12.0.0/30"),
			netaddr.MustParsePrefix("10.23.0.0/30"),
			netaddr.MustParsePrefix("192.168.2.0/24"),
		}}
	as3 := &bgp.AS{Num: 3, Routers: dom3.Routers, SPF: spf3,
		Prefixes: []netaddr.Prefix{netaddr.MustParsePrefix("192.168.3.1/32")}}
	for i, as := range []*bgp.AS{as1, as2, as3} {
		for _, r := range as.Routers {
			r.SetASN(uint32(i + 1))
		}
	}
	topo := &bgp.Topology{
		ASes: []*bgp.AS{as1, as2, as3},
		Sessions: []*bgp.Session{
			{A: l.CE1, B: l.PE1, AIf: ifaces["CE1.right"], BIf: ifaces["PE1.left"], Rel: bgp.ACustomerOfB},
			{A: l.CE2, B: l.PE2, AIf: ifaces["CE2.left"], BIf: ifaces["PE2.right"], Rel: bgp.ACustomerOfB},
		},
	}
	if err := bgp.Compute(topo); err != nil {
		return nil, err
	}

	l.Prober = probe.New(net, l.VP)
	return l, nil
}

// MustBuild is Build for tests and examples.
func MustBuild(o Options) *Lab {
	l, err := Build(o)
	if err != nil {
		panic(err)
	}
	return l
}
