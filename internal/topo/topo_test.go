package topo

import (
	"strings"
	"testing"

	"wormhole/internal/netaddr"
	"wormhole/internal/probe"
)

func addr(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

// aliasResolver maps 10.N.x.y to router "rN" in AS N.
func aliasResolver(a netaddr.Addr) (string, uint32, bool) {
	o1, o2, _, _ := a.Octets()
	if o1 != 10 {
		return "", 0, false
	}
	return "r" + string(rune('0'+o2)), uint32(o2), true
}

func TestAliasResolutionMergesAddresses(t *testing.T) {
	g := New(aliasResolver)
	n1 := g.NodeFor(addr("10.1.0.1"))
	n2 := g.NodeFor(addr("10.1.0.2"))
	if n1.ID != n2.ID {
		t.Error("same-router addresses not merged")
	}
	if len(n1.Addrs) != 2 {
		t.Errorf("alias set size %d", len(n1.Addrs))
	}
	n3 := g.NodeFor(addr("10.2.0.1"))
	if n3.ID == n1.ID {
		t.Error("distinct routers merged")
	}
	if n1.ASN != 1 || n3.ASN != 2 {
		t.Errorf("ASNs: %d %d", n1.ASN, n3.ASN)
	}
}

func TestUnmappedAddressesGetOwnNodes(t *testing.T) {
	g := New(aliasResolver)
	a := g.NodeFor(addr("203.0.113.1"))
	b := g.NodeFor(addr("203.0.113.2"))
	if a.ID == b.ID {
		t.Error("unmapped addresses merged")
	}
	again := g.NodeFor(addr("203.0.113.1"))
	if again.ID != a.ID {
		t.Error("repeat lookup created a new node")
	}
}

func TestAddLinkAndDegree(t *testing.T) {
	g := New(aliasResolver)
	g.AddLink(addr("10.1.0.1"), addr("10.2.0.1"))
	g.AddLink(addr("10.1.0.2"), addr("10.3.0.1")) // same router r1, alias
	g.AddLink(addr("10.1.0.1"), addr("10.2.0.9")) // duplicate link via alias
	n, _ := g.Lookup(addr("10.1.0.1"))
	if n.Degree() != 2 {
		t.Errorf("degree = %d, want 2", n.Degree())
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", g.NumEdges())
	}
	// Self-links via aliases are ignored.
	g.AddLink(addr("10.1.0.1"), addr("10.1.0.5"))
	if g.NumEdges() != 2 {
		t.Error("self-link counted")
	}
}

func traceOf(addrs ...string) *probe.Trace {
	tr := &probe.Trace{Reached: true}
	for i, s := range addrs {
		h := probe.Hop{ProbeTTL: uint8(i + 1)}
		if s != "*" {
			h.Addr = addr(s)
		}
		tr.Hops = append(tr.Hops, h)
	}
	return tr
}

func TestAddTraceLinksConsecutiveHops(t *testing.T) {
	g := New(nil)
	g.AddTrace(traceOf("10.1.0.1", "10.2.0.1", "10.3.0.1"))
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Errorf("nodes/edges = %d/%d", g.NumNodes(), g.NumEdges())
	}
}

func TestAddTraceAnonymousBreaksAdjacency(t *testing.T) {
	g := New(nil)
	g.AddTrace(traceOf("10.1.0.1", "*", "10.3.0.1"))
	if g.NumEdges() != 0 {
		t.Error("link inferred across an anonymous hop")
	}
}

func TestDensity(t *testing.T) {
	g := New(nil)
	// Triangle: density 1.
	g.AddLink(addr("10.1.0.1"), addr("10.2.0.1"))
	g.AddLink(addr("10.2.0.1"), addr("10.3.0.1"))
	g.AddLink(addr("10.3.0.1"), addr("10.1.0.1"))
	if d := g.Density(); d != 1.0 {
		t.Errorf("triangle density = %f", d)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	g := New(nil)
	// Triangle: clustering 1 at every node.
	g.AddLink(addr("1.0.0.1"), addr("1.0.0.2"))
	g.AddLink(addr("1.0.0.2"), addr("1.0.0.3"))
	g.AddLink(addr("1.0.0.3"), addr("1.0.0.1"))
	if c := g.ClusteringCoefficient(); c != 1.0 {
		t.Errorf("triangle clustering = %f", c)
	}
	// Star: center has unconnected neighbors -> clustering 0.
	s := New(nil)
	s.AddLink(addr("2.0.0.1"), addr("2.0.0.2"))
	s.AddLink(addr("2.0.0.1"), addr("2.0.0.3"))
	if c := s.ClusteringCoefficient(); c != 0 {
		t.Errorf("star clustering = %f", c)
	}
}

func TestHDNsSortedByDegree(t *testing.T) {
	g := New(nil)
	center := addr("1.0.0.1")
	for i := 1; i <= 5; i++ {
		g.AddLink(center, netaddr.AddrFrom4(9, 0, 0, byte(i)))
	}
	hdns := g.HDNs(3)
	if len(hdns) != 1 || hdns[0].Addrs[0] != center {
		t.Errorf("HDNs = %+v", hdns)
	}
	if len(g.HDNs(6)) != 0 {
		t.Error("threshold not applied")
	}
}

func TestSubgraphOf(t *testing.T) {
	g := New(aliasResolver)
	g.AddLink(addr("10.1.0.1"), addr("10.2.0.1"))
	g.AddLink(addr("10.2.0.1"), addr("10.3.0.1"))
	g.AddLink(addr("10.1.0.1"), addr("203.0.113.1")) // outside
	sub := g.SubgraphOf(func(n *Node) bool { return n.ASN != 0 })
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Errorf("subgraph = %d nodes / %d edges", sub.NumNodes(), sub.NumEdges())
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := New(nil)
	g.AddLink(addr("1.0.0.1"), addr("1.0.0.2"))
	g.AddLink(addr("1.0.0.1"), addr("1.0.0.3"))
	h := g.DegreeHistogram()
	if h.N() != 3 || h.Count(2) != 1 || h.Count(1) != 2 {
		t.Errorf("degree histogram wrong: n=%d", h.N())
	}
}

func TestPathLengthHistogram(t *testing.T) {
	traces := []*probe.Trace{
		traceOf("10.1.0.1", "10.2.0.1", "10.3.0.1"),
		traceOf("10.1.0.1", "*", "10.3.0.1"),
		{Reached: false, Hops: []probe.Hop{{ProbeTTL: 1}}}, // incomplete: skipped
	}
	h := PathLengthHistogram(traces, nil)
	if h.N() != 2 {
		t.Fatalf("n = %d", h.N())
	}
	if h.Count(3) != 1 || h.Count(2) != 1 {
		t.Error("lengths wrong")
	}
	// With extra hops spliced in.
	h2 := PathLengthHistogram(traces, func(*probe.Trace) int { return 2 })
	if h2.Count(5) != 1 || h2.Count(4) != 1 {
		t.Error("extra hops not applied")
	}
}

func TestNodesDeterministicOrder(t *testing.T) {
	g := New(nil)
	for i := 5; i > 0; i-- {
		g.NodeFor(netaddr.AddrFrom4(9, 9, 9, byte(i)))
	}
	nodes := g.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i].ID <= nodes[i-1].ID {
			t.Fatal("nodes not ordered by ID")
		}
	}
}

func TestAddPath(t *testing.T) {
	g := New(nil)
	g.AddPath([]netaddr.Addr{addr("1.0.0.1"), addr("1.0.0.2"), addr("1.0.0.2"), addr("1.0.0.3")})
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d", g.NumEdges())
	}
}

func TestEmptyGraphMetrics(t *testing.T) {
	g := New(nil)
	if g.Density() != 0 || g.ClusteringCoefficient() != 0 || g.NumNodes() != 0 {
		t.Error("empty graph metrics nonzero")
	}
	if _, ok := g.Lookup(addr("1.2.3.4")); ok {
		t.Error("lookup on empty graph")
	}
}

func TestShortestPathsOnPathGraph(t *testing.T) {
	g := New(nil)
	// Path of 4 nodes: distances 1,1,1,2,2,3 (unordered pairs), doubled
	// for ordered pairs; diameter 3; avg = (3*1+2*2+1*3)*2 / 12 = 10/6.
	g.AddLink(addr("1.0.0.1"), addr("1.0.0.2"))
	g.AddLink(addr("1.0.0.2"), addr("1.0.0.3"))
	g.AddLink(addr("1.0.0.3"), addr("1.0.0.4"))
	sp := g.ShortestPaths()
	if sp.Diameter != 3 {
		t.Errorf("diameter = %d, want 3", sp.Diameter)
	}
	if sp.Pairs != 12 {
		t.Errorf("pairs = %d, want 12", sp.Pairs)
	}
	want := 20.0 / 12.0
	if diff := sp.AvgPathLength - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("avg = %f, want %f", sp.AvgPathLength, want)
	}
}

func TestShortestPathsDisconnected(t *testing.T) {
	g := New(nil)
	g.AddLink(addr("1.0.0.1"), addr("1.0.0.2"))
	g.AddLink(addr("2.0.0.1"), addr("2.0.0.2"))
	sp := g.ShortestPaths()
	// Only intra-component pairs measured: 2 + 2 ordered pairs.
	if sp.Pairs != 4 || sp.Diameter != 1 {
		t.Errorf("pairs=%d diameter=%d", sp.Pairs, sp.Diameter)
	}
	if g.LargestComponentSize() != 2 {
		t.Errorf("largest component = %d", g.LargestComponentSize())
	}
}

func TestLargestComponent(t *testing.T) {
	g := New(nil)
	g.AddLink(addr("1.0.0.1"), addr("1.0.0.2"))
	g.AddLink(addr("1.0.0.2"), addr("1.0.0.3"))
	g.NodeFor(addr("9.9.9.9")) // isolated node
	if got := g.LargestComponentSize(); got != 3 {
		t.Errorf("largest component = %d, want 3", got)
	}
}

func TestTunnelRevealShrinksDiameterBias(t *testing.T) {
	// An invisible tunnel compresses a 4-hop path into 1: revealing it
	// must lengthen shortest paths.
	invisible := New(nil)
	invisible.AddPath([]netaddr.Addr{addr("1.0.0.1"), addr("1.0.0.5")})
	visible := New(nil)
	visible.AddPath([]netaddr.Addr{
		addr("1.0.0.1"), addr("1.0.0.2"), addr("1.0.0.3"), addr("1.0.0.4"), addr("1.0.0.5"),
	})
	if !(visible.ShortestPaths().Diameter > invisible.ShortestPaths().Diameter) {
		t.Error("revealed graph should have a larger diameter")
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(nil)
	g.AddLink(addr("1.0.0.1"), addr("1.0.0.2"))
	g.AddLink(addr("1.0.0.2"), addr("1.0.0.3"))
	var sb strings.Builder
	err := g.WriteDOT(&sb, "test", func(n *Node) bool { return n.Degree() >= 2 })
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`graph "test"`, "n0 -- n1", "n1 -- n2", "fillcolor"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Exactly one highlighted node (the middle one).
	if strings.Count(out, "fillcolor") != 1 {
		t.Errorf("highlight count wrong:\n%s", out)
	}
}
