package topo

import "wormhole/internal/stats"

// The Sec. 7 discussion lists the graph metrics invisible tunnels bias:
// shortest paths, the average path length, and the diameter. These helpers
// compute them on observed graphs so experiments can quantify the bias.

// ShortestPathStats holds BFS-derived distance metrics of a graph's
// largest connected component.
type ShortestPathStats struct {
	// AvgPathLength is the mean shortest-path length over all reachable
	// ordered pairs.
	AvgPathLength float64
	// Diameter is the longest shortest path.
	Diameter int
	// Pairs is the number of reachable ordered pairs measured.
	Pairs int
	// Distances is the full distance histogram.
	Distances *stats.Histogram
}

// ShortestPaths runs BFS from every node (exact all-pairs; the graphs the
// campaign builds are small enough) and aggregates distance statistics.
func (g *Graph) ShortestPaths() ShortestPathStats {
	out := ShortestPathStats{Distances: stats.NewHistogram()}
	nodes := g.Nodes()
	sum := 0
	for _, src := range nodes {
		dist := g.bfs(src)
		for _, d := range dist {
			if d == 0 {
				continue
			}
			out.Pairs++
			sum += d
			out.Distances.Add(d)
			if d > out.Diameter {
				out.Diameter = d
			}
		}
	}
	if out.Pairs > 0 {
		out.AvgPathLength = float64(sum) / float64(out.Pairs)
	}
	return out
}

// bfs returns hop distances from src to every reachable node.
func (g *Graph) bfs(src *Node) map[NodeID]int {
	dist := map[NodeID]int{src.ID: 0}
	queue := []NodeID{src.ID}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for nb := range g.nodes[id].neighbors {
			if _, seen := dist[nb]; !seen {
				dist[nb] = dist[id] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// LargestComponentSize returns the node count of the biggest connected
// component (observed graphs can fragment when traces are sparse).
func (g *Graph) LargestComponentSize() int {
	seen := make(map[NodeID]bool, len(g.nodes))
	best := 0
	for id := range g.nodes {
		if seen[id] {
			continue
		}
		size := 0
		queue := []NodeID{id}
		seen[id] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			size++
			for nb := range g.nodes[cur].neighbors {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		if size > best {
			best = size
		}
	}
	return best
}
