package topo

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the graph in Graphviz DOT form, one node per router
// (labeled with its name and degree) and one edge per router-level link.
// Nodes satisfying highlight (may be nil) are drawn filled — campaigns use
// it to mark HDNs or revealed LSRs.
func (g *Graph) WriteDOT(w io.Writer, name string, highlight func(*Node) bool) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n  node [shape=ellipse fontsize=10];\n", name); err != nil {
		return err
	}
	for _, n := range g.Nodes() {
		attrs := fmt.Sprintf("label=%q", fmt.Sprintf("%s (%d)", n.Name, n.Degree()))
		if highlight != nil && highlight(n) {
			attrs += ` style=filled fillcolor=lightcoral`
		}
		if _, err := fmt.Fprintf(w, "  n%d [%s];\n", n.ID, attrs); err != nil {
			return err
		}
	}
	// Deterministic edge order.
	type edge struct{ a, b NodeID }
	var edges []edge
	for _, n := range g.Nodes() {
		for nb := range n.neighbors {
			if n.ID < nb {
				edges = append(edges, edge{n.ID, nb})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		if _, err := fmt.Fprintf(w, "  n%d -- n%d;\n", e.a, e.b); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
