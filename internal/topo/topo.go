// Package topo builds router-level topology graphs from traceroute data,
// the way CAIDA's ITDK builds its router-level maps: IP-level traces,
// alias resolution to router identifiers, and links between consecutive
// responding hops. It computes the graph properties the paper studies —
// node degree distribution, density, clustering — plus the High Degree
// Node (HDN) detection that seeds the measurement campaign, and the
// corrections applied once invisible tunnels are revealed.
package topo

import (
	"fmt"
	"sort"

	"wormhole/internal/netaddr"
	"wormhole/internal/probe"
	"wormhole/internal/stats"
)

// NodeID identifies a router-level node.
type NodeID int

// Node is one router-level node: an alias set of interface addresses.
type Node struct {
	ID    NodeID
	Name  string // resolver-supplied router name, or synthetic for unmapped
	ASN   uint32
	Addrs []netaddr.Addr

	neighbors map[NodeID]bool
}

// Degree returns the node's degree.
func (n *Node) Degree() int { return len(n.neighbors) }

// Resolver maps an interface address to a router name and AS. Campaigns
// use the generator's ground truth (playing the role of the ITDK alias
// sets + AS mapping); ok=false assigns the address its own fresh node, as
// the paper does for the 3% it could not map.
type Resolver func(netaddr.Addr) (name string, asn uint32, ok bool)

// Graph is an undirected router-level graph.
type Graph struct {
	nodes  map[NodeID]*Node
	byAddr map[netaddr.Addr]NodeID
	byName map[string]NodeID
	next   NodeID
	edges  int

	resolve Resolver
}

// New creates an empty graph using the given resolver (nil means every
// address is its own node).
func New(r Resolver) *Graph {
	if r == nil {
		r = func(netaddr.Addr) (string, uint32, bool) { return "", 0, false }
	}
	return &Graph{
		nodes:   make(map[NodeID]*Node),
		byAddr:  make(map[netaddr.Addr]NodeID),
		byName:  make(map[string]NodeID),
		resolve: r,
	}
}

// NodeFor returns (creating if needed) the node owning addr.
func (g *Graph) NodeFor(addr netaddr.Addr) *Node {
	if id, ok := g.byAddr[addr]; ok {
		return g.nodes[id]
	}
	name, asn, ok := g.resolve(addr)
	if ok {
		if id, seen := g.byName[name]; seen {
			n := g.nodes[id]
			n.Addrs = append(n.Addrs, addr)
			g.byAddr[addr] = id
			return n
		}
	} else {
		name = fmt.Sprintf("unmapped-%s", addr)
	}
	id := g.next
	g.next++
	n := &Node{ID: id, Name: name, ASN: asn, Addrs: []netaddr.Addr{addr}, neighbors: make(map[NodeID]bool)}
	g.nodes[id] = n
	g.byAddr[addr] = id
	g.byName[name] = id
	return n
}

// Lookup returns the node for an address without creating one.
func (g *Graph) Lookup(addr netaddr.Addr) (*Node, bool) {
	id, ok := g.byAddr[addr]
	if !ok {
		return nil, false
	}
	return g.nodes[id], true
}

// AddLink records an undirected router-level link between the owners of
// two addresses.
func (g *Graph) AddLink(a, b netaddr.Addr) {
	na, nb := g.NodeFor(a), g.NodeFor(b)
	if na.ID == nb.ID {
		return
	}
	if !na.neighbors[nb.ID] {
		na.neighbors[nb.ID] = true
		nb.neighbors[na.ID] = true
		g.edges++
	}
}

// AddTrace inserts the links of one trace: every pair of consecutive
// responding hops (anonymous hops break adjacency, as in ITDK).
func (g *Graph) AddTrace(tr *probe.Trace) {
	var prev netaddr.Addr
	havePrev := false
	for _, h := range tr.Hops {
		if h.Anonymous() {
			havePrev = false
			continue
		}
		if havePrev && prev != h.Addr {
			g.AddLink(prev, h.Addr)
		}
		prev, havePrev = h.Addr, true
	}
}

// AddPath inserts links along an explicit address path (used when
// re-building the corrected graph with revealed tunnel hops spliced in).
func (g *Graph) AddPath(path []netaddr.Addr) {
	for i := 1; i < len(path); i++ {
		if path[i-1] != path[i] {
			g.AddLink(path[i-1], path[i])
		}
	}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Nodes returns all nodes, ordered by ID for determinism.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DegreeHistogram returns the node degree distribution (Fig. 1 / Fig. 10).
func (g *Graph) DegreeHistogram() *stats.Histogram {
	h := stats.NewHistogram()
	for _, n := range g.nodes {
		h.Add(n.Degree())
	}
	return h
}

// Density returns 2E / V(V-1), the metric of Table 4.
func (g *Graph) Density() float64 {
	v := len(g.nodes)
	if v < 2 {
		return 0
	}
	return 2 * float64(g.edges) / (float64(v) * float64(v-1))
}

// SubgraphOf returns a new graph restricted to nodes satisfying keep,
// preserving names/ASNs (used for per-AS density in Table 4).
func (g *Graph) SubgraphOf(keep func(*Node) bool) *Graph {
	sub := New(g.resolve)
	for _, n := range g.Nodes() {
		if !keep(n) {
			continue
		}
		for nbID := range n.neighbors {
			nb := g.nodes[nbID]
			if !keep(nb) || nb.ID <= n.ID {
				continue
			}
			sub.AddLink(n.Addrs[0], nb.Addrs[0])
		}
	}
	return sub
}

// ClusteringCoefficient returns the average local clustering coefficient.
func (g *Graph) ClusteringCoefficient() float64 {
	if len(g.nodes) == 0 {
		return 0
	}
	var sum float64
	for _, n := range g.nodes {
		k := len(n.neighbors)
		if k < 2 {
			continue
		}
		links := 0
		ids := make([]NodeID, 0, k)
		for id := range n.neighbors {
			ids = append(ids, id)
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if g.nodes[ids[i]].neighbors[ids[j]] {
					links++
				}
			}
		}
		sum += 2 * float64(links) / (float64(k) * float64(k-1))
	}
	return sum / float64(len(g.nodes))
}

// HDNs returns the nodes with degree >= threshold (128 in the paper,
// scaled down for synthetic topologies), sorted by decreasing degree.
func (g *Graph) HDNs(threshold int) []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n.Degree() >= threshold {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Degree() != out[j].Degree() {
			return out[i].Degree() > out[j].Degree()
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Neighbors returns a node's neighbor set.
func (g *Graph) Neighbors(n *Node) []*Node {
	out := make([]*Node, 0, len(n.neighbors))
	for id := range n.neighbors {
		out = append(out, g.nodes[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PathLengthHistogram returns the trace length distribution (Fig. 11):
// the number of responding hops per completed trace, optionally extended
// by extra hops revealed inside invisible tunnels.
func PathLengthHistogram(traces []*probe.Trace, extra func(*probe.Trace) int) *stats.Histogram {
	h := stats.NewHistogram()
	for _, tr := range traces {
		if !tr.Reached {
			continue
		}
		n := 0
		for _, hop := range tr.Hops {
			if !hop.Anonymous() {
				n++
			}
		}
		if extra != nil {
			n += extra(tr)
		}
		h.Add(n)
	}
	return h
}
