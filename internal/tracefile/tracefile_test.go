package tracefile_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"wormhole/internal/campaign"
	"wormhole/internal/gen"
	"wormhole/internal/reveal"
	"wormhole/internal/tracefile"
)

func smallCampaign(t *testing.T) *campaign.Campaign {
	t.Helper()
	p := gen.DefaultParams(404)
	p.NumTier1, p.NumTransit, p.NumStub, p.NumVPs = 2, 4, 8, 4
	p.MPLSFrac, p.NoPropagateFrac, p.UHPFrac = 1.0, 0.8, 0
	in, err := gen.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return campaign.Run(in, campaign.DefaultConfig())
}

func TestRoundTrip(t *testing.T) {
	c := smallCampaign(t)
	ds := c.Dataset("unit test")
	if len(ds.Records) == 0 || len(ds.Fingerprints) == 0 {
		t.Fatalf("empty dataset: %d records %d fingerprints", len(ds.Records), len(ds.Fingerprints))
	}

	var buf bytes.Buffer
	if err := tracefile.Write(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := tracefile.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(ds.Records) {
		t.Fatalf("records %d -> %d", len(ds.Records), len(back.Records))
	}
	if len(back.Fingerprints) != len(ds.Fingerprints) {
		t.Fatalf("fingerprints %d -> %d", len(ds.Fingerprints), len(back.Fingerprints))
	}
	if back.Header.Comment != "unit test" {
		t.Errorf("comment = %q", back.Header.Comment)
	}
	for i := range ds.Records {
		a, b := ds.Records[i], back.Records[i]
		if a.Trace.Dst != b.Trace.Dst || len(a.Trace.Hops) != len(b.Trace.Hops) {
			t.Fatalf("record %d differs", i)
		}
		if (a.Revelation == nil) != (b.Revelation == nil) {
			t.Fatalf("record %d revelation presence differs", i)
		}
		if a.Revelation != nil && a.Revelation.Technique != b.Revelation.Technique {
			t.Fatalf("record %d technique differs", i)
		}
	}
}

func TestTraceConversionRoundTrip(t *testing.T) {
	c := smallCampaign(t)
	for _, rec := range c.Records[:10] {
		st := tracefile.FromTrace(rec.Trace)
		back, err := st.ToTrace()
		if err != nil {
			t.Fatal(err)
		}
		if back.Src != rec.Trace.Src || back.Dst != rec.Trace.Dst || back.Reached != rec.Trace.Reached {
			t.Fatal("trace metadata changed")
		}
		for i, h := range rec.Trace.Hops {
			bh := back.Hops[i]
			if bh.Addr != h.Addr || bh.ReplyTTL != h.ReplyTTL || bh.RTT != h.RTT ||
				bh.ICMPType != h.ICMPType || len(bh.MPLS) != len(h.MPLS) {
				t.Fatalf("hop %d changed: %+v vs %+v", i, bh, h)
			}
		}
	}
}

func TestFingerprintConversionRoundTrip(t *testing.T) {
	c := smallCampaign(t)
	for _, sf := range tracefile.FromFingerprints(c.Fingerprints) {
		back, err := sf.ToResult()
		if err != nil {
			t.Fatal(err)
		}
		if back.Addr.String() != sf.Addr || back.Class.String() != sf.Class ||
			back.Signature.TimeExceeded != sf.TimeExceeded || back.EchoReplyTTL != sf.EchoReplyTTL {
			t.Fatalf("fingerprint mangled: %+v vs %+v", back, sf)
		}
	}
	if _, err := (tracefile.Fingerprint{Addr: "10.0.0.1", Class: "ios"}).ToResult(); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	c := smallCampaign(t)
	ds := c.Dataset("file test")
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	if err := tracefile.Save(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := tracefile.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(ds.Records) {
		t.Fatalf("records %d -> %d", len(ds.Records), len(back.Records))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := tracefile.Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := tracefile.Read(strings.NewReader(`{"record":{}}`)); err == nil {
		t.Error("headerless stream accepted")
	}
	if _, err := tracefile.Read(strings.NewReader(`{"header":{"format":99}}`)); err == nil {
		t.Error("future format accepted")
	}
}

func TestToTraceRejectsBadAddrs(t *testing.T) {
	bad := tracefile.Trace{Src: "x", Dst: "10.0.0.1"}
	if _, err := bad.ToTrace(); err == nil {
		t.Error("bad src accepted")
	}
	bad = tracefile.Trace{Src: "10.0.0.1", Dst: "10.0.0.2", Hops: []tracefile.Hop{{Addr: "nope"}}}
	if _, err := bad.ToTrace(); err == nil {
		t.Error("bad hop accepted")
	}
}

func TestRevelationSerialization(t *testing.T) {
	c := smallCampaign(t)
	found := false
	for _, rev := range c.Revelations() {
		if rev.Technique == reveal.TechNone || len(rev.Hops) == 0 {
			continue
		}
		sr := tracefile.FromRevelation(rev)
		if sr.Ingress != rev.Ingress.String() || len(sr.Hops) != len(rev.Hops) {
			t.Fatalf("revelation mangled: %+v", sr)
		}
		if len(sr.Steps) != len(rev.Steps) {
			t.Fatalf("steps dropped: %v vs %v", sr.Steps, rev.Steps)
		}
		back, err := sr.ToRevelation()
		if err != nil {
			t.Fatal(err)
		}
		if back.Ingress != rev.Ingress || back.Egress != rev.Egress ||
			back.Technique != rev.Technique || back.Probes != rev.Probes ||
			len(back.Hops) != len(rev.Hops) || len(back.Steps) != len(rev.Steps) {
			t.Fatalf("revelation round-trip changed: %+v vs %+v", back, rev)
		}
		found = true
		break
	}
	if !found {
		t.Skip("no successful revelation in this seed")
	}
}
