// Package tracefile persists and reloads campaign datasets — traces,
// fingerprints, revelations — as JSON, the role the paper's published
// dataset (and scamper's warts files) play: analyses can rerun offline
// without re-probing.
package tracefile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"wormhole/internal/fingerprint"
	"wormhole/internal/netaddr"
	"wormhole/internal/packet"
	"wormhole/internal/probe"
	"wormhole/internal/reveal"
)

// Format versioning: bump on breaking schema changes.
const formatVersion = 1

// Header opens every dataset file.
type Header struct {
	Format  int    `json:"format"`
	Tool    string `json:"tool"`
	Comment string `json:"comment,omitempty"`
}

// Hop mirrors probe.Hop with stringly addresses for stable JSON.
type Hop struct {
	ProbeTTL uint8         `json:"probe_ttl"`
	Addr     string        `json:"addr,omitempty"`
	RTTNs    time.Duration `json:"rtt_ns,omitempty"`
	ReplyTTL uint8         `json:"reply_ttl,omitempty"`
	ICMPType uint8         `json:"icmp_type"`
	ICMPCode uint8         `json:"icmp_code,omitempty"`
	Labels   []LSE         `json:"labels,omitempty"`
}

// LSE is a serialized label stack entry.
type LSE struct {
	Label uint32 `json:"label"`
	TTL   uint8  `json:"ttl"`
}

// Trace is a serialized traceroute.
type Trace struct {
	Src     string `json:"src"`
	Dst     string `json:"dst"`
	Reached bool   `json:"reached"`
	Hops    []Hop  `json:"hops"`
}

// Fingerprint is a serialized TTL signature.
type Fingerprint struct {
	Addr         string `json:"addr"`
	TimeExceeded uint8  `json:"te_initial"`
	EchoReply    uint8  `json:"echo_initial"`
	TEReplyTTL   uint8  `json:"te_reply_ttl"`
	EchoReplyTTL uint8  `json:"echo_reply_ttl"`
	Class        string `json:"class"`
}

// Revelation is a serialized tunnel revelation.
type Revelation struct {
	Ingress   string   `json:"ingress"`
	Egress    string   `json:"egress"`
	Hops      []string `json:"hops,omitempty"`
	Technique string   `json:"technique"`
	Probes    int      `json:"probes"`
	// Steps records the per-iteration probe counts of the recursive
	// revelation (its depth is len(Steps)). Older files omit it; the
	// format version is unchanged because absent means empty.
	Steps []int `json:"steps,omitempty"`
}

// Record pairs a trace with its candidate/revelation context.
type Record struct {
	Trace         Trace       `json:"trace"`
	CandidateAS   uint32      `json:"candidate_as,omitempty"`
	EgressEchoTTL uint8       `json:"egress_echo_ttl,omitempty"`
	Revelation    *Revelation `json:"revelation,omitempty"`
}

// Dataset is a full campaign's output.
type Dataset struct {
	Header       Header        `json:"header"`
	Records      []Record      `json:"records"`
	Fingerprints []Fingerprint `json:"fingerprints"`
}

// NewDataset starts an empty dataset with a well-formed header.
func NewDataset(comment string) *Dataset {
	return &Dataset{Header: Header{Format: formatVersion, Tool: "wormhole", Comment: comment}}
}

// FromFingerprints serializes a fingerprint index in address order.
func FromFingerprints(m map[netaddr.Addr]fingerprint.Result) []Fingerprint {
	var out []Fingerprint
	for _, fp := range sortedFingerprints(m) {
		out = append(out, FromResult(fp))
	}
	return out
}

// FromResult serializes one fingerprint.
func FromResult(fp fingerprint.Result) Fingerprint {
	return Fingerprint{
		Addr:         fp.Addr.String(),
		TimeExceeded: fp.Signature.TimeExceeded,
		EchoReply:    fp.Signature.EchoReply,
		TEReplyTTL:   fp.TEReplyTTL,
		EchoReplyTTL: fp.EchoReplyTTL,
		Class:        fp.Class.String(),
	}
}

// ToResult reverses FromResult.
func (f Fingerprint) ToResult() (fingerprint.Result, error) {
	addr, err := netaddr.ParseAddr(f.Addr)
	if err != nil {
		return fingerprint.Result{}, fmt.Errorf("tracefile: bad fingerprint addr: %w", err)
	}
	class, err := parseClass(f.Class)
	if err != nil {
		return fingerprint.Result{}, err
	}
	return fingerprint.Result{
		Addr:         addr,
		Signature:    fingerprint.Signature{TimeExceeded: f.TimeExceeded, EchoReply: f.EchoReply},
		Class:        class,
		TEReplyTTL:   f.TEReplyTTL,
		EchoReplyTTL: f.EchoReplyTTL,
	}, nil
}

func parseClass(s string) (fingerprint.Class, error) {
	for _, c := range []fingerprint.Class{
		fingerprint.CiscoLike, fingerprint.JuniperLike, fingerprint.JunosELike,
		fingerprint.LegacyLike, fingerprint.Unknown,
	} {
		if c.String() == s {
			return c, nil
		}
	}
	return fingerprint.Unknown, fmt.Errorf("tracefile: unknown fingerprint class %q", s)
}

func sortedFingerprints(m map[netaddr.Addr]fingerprint.Result) []fingerprint.Result {
	keys := make([]netaddr.Addr, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort: small n, no extra imports
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := make([]fingerprint.Result, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// FromTrace serializes a traceroute.
func FromTrace(tr *probe.Trace) Trace {
	out := Trace{Src: tr.Src.String(), Dst: tr.Dst.String(), Reached: tr.Reached}
	for _, h := range tr.Hops {
		sh := Hop{
			ProbeTTL: h.ProbeTTL,
			RTTNs:    h.RTT,
			ReplyTTL: h.ReplyTTL,
			ICMPType: h.ICMPType,
			ICMPCode: h.ICMPCode,
		}
		if !h.Anonymous() {
			sh.Addr = h.Addr.String()
		}
		for _, lse := range h.MPLS {
			sh.Labels = append(sh.Labels, LSE{Label: lse.Label, TTL: lse.TTL})
		}
		out.Hops = append(out.Hops, sh)
	}
	return out
}

// FromRevelation serializes a tunnel revelation.
func FromRevelation(r *reveal.Revelation) Revelation {
	out := Revelation{
		Ingress:   r.Ingress.String(),
		Egress:    r.Egress.String(),
		Technique: r.Technique.String(),
		Probes:    r.Probes,
		Steps:     r.Steps,
	}
	for _, h := range r.Hops {
		out.Hops = append(out.Hops, h.String())
	}
	return out
}

// ToRevelation reverses FromRevelation.
func (r Revelation) ToRevelation() (*reveal.Revelation, error) {
	ing, err := netaddr.ParseAddr(r.Ingress)
	if err != nil {
		return nil, fmt.Errorf("tracefile: bad revelation ingress: %w", err)
	}
	eg, err := netaddr.ParseAddr(r.Egress)
	if err != nil {
		return nil, fmt.Errorf("tracefile: bad revelation egress: %w", err)
	}
	tech, err := parseTechnique(r.Technique)
	if err != nil {
		return nil, err
	}
	out := &reveal.Revelation{
		Ingress:   ing,
		Egress:    eg,
		Technique: tech,
		Probes:    r.Probes,
		Steps:     r.Steps,
	}
	for _, h := range r.Hops {
		a, err := netaddr.ParseAddr(h)
		if err != nil {
			return nil, fmt.Errorf("tracefile: bad revelation hop: %w", err)
		}
		out.Hops = append(out.Hops, a)
	}
	return out, nil
}

func parseTechnique(s string) (reveal.Technique, error) {
	for _, t := range []reveal.Technique{
		reveal.TechNone, reveal.TechDPR, reveal.TechBRPR, reveal.TechEither, reveal.TechHybrid,
	} {
		if t.String() == s {
			return t, nil
		}
	}
	return reveal.TechNone, fmt.Errorf("tracefile: unknown revelation technique %q", s)
}

// ToTrace reverses fromTrace.
func (t Trace) ToTrace() (*probe.Trace, error) {
	src, err := netaddr.ParseAddr(t.Src)
	if err != nil {
		return nil, fmt.Errorf("tracefile: bad src: %w", err)
	}
	dst, err := netaddr.ParseAddr(t.Dst)
	if err != nil {
		return nil, fmt.Errorf("tracefile: bad dst: %w", err)
	}
	out := &probe.Trace{Src: src, Dst: dst, Reached: t.Reached}
	for _, h := range t.Hops {
		ph := probe.Hop{
			ProbeTTL: h.ProbeTTL,
			RTT:      h.RTTNs,
			ReplyTTL: h.ReplyTTL,
			ICMPType: h.ICMPType,
			ICMPCode: h.ICMPCode,
		}
		if h.Addr != "" {
			if ph.Addr, err = netaddr.ParseAddr(h.Addr); err != nil {
				return nil, fmt.Errorf("tracefile: bad hop addr: %w", err)
			}
		}
		for _, l := range h.Labels {
			ph.MPLS = append(ph.MPLS, packet.LSE{Label: l.Label, TTL: l.TTL})
		}
		out.Hops = append(out.Hops, ph)
	}
	return out, nil
}

// Write streams the dataset as line-delimited JSON: one header line, then
// one line per record, then one line per fingerprint (large datasets load
// incrementally).
func Write(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(line{Header: &ds.Header}); err != nil {
		return err
	}
	for i := range ds.Records {
		if err := enc.Encode(line{Record: &ds.Records[i]}); err != nil {
			return err
		}
	}
	for i := range ds.Fingerprints {
		if err := enc.Encode(line{Fingerprint: &ds.Fingerprints[i]}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// line is the tagged union used per JSONL line.
type line struct {
	Header      *Header      `json:"header,omitempty"`
	Record      *Record      `json:"record,omitempty"`
	Fingerprint *Fingerprint `json:"fingerprint,omitempty"`
}

// Read parses a dataset written by Write.
func Read(r io.Reader) (*Dataset, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	ds := &Dataset{}
	sawHeader := false
	for {
		var l line
		if err := dec.Decode(&l); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("tracefile: %w", err)
		}
		switch {
		case l.Header != nil:
			if l.Header.Format != formatVersion {
				return nil, fmt.Errorf("tracefile: unsupported format %d", l.Header.Format)
			}
			ds.Header = *l.Header
			sawHeader = true
		case l.Record != nil:
			ds.Records = append(ds.Records, *l.Record)
		case l.Fingerprint != nil:
			ds.Fingerprints = append(ds.Fingerprints, *l.Fingerprint)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("tracefile: missing header")
	}
	return ds, nil
}

// Save writes the dataset to a file.
func Save(path string, ds *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Write(f, ds); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a dataset from a file.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
