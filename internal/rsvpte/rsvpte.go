// Package rsvpte signals explicit-path traffic-engineering LSPs, the
// second label distribution mode the paper's survey reports (RSVP-TE used
// by half the operators, almost always alongside LDP). A TE tunnel pins
// traffic for a FEC to an operator-chosen router sequence instead of the
// IGP shortest path; combined with UHP and no-ttl-propagate it is the
// configuration the paper's conclusion identifies as leaving tunnels
// "truly invisible for the time being".
package rsvpte

import (
	"fmt"

	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/router"
)

// Tunnel is one explicit-route LSP.
type Tunnel struct {
	// Name identifies the tunnel in errors.
	Name string
	// Path is the full router sequence, ingress first, egress last.
	// Consecutive routers must share a link.
	Path []*router.Router
	// FEC is the destination prefix steered into the tunnel at the
	// ingress.
	FEC netaddr.Prefix
	// UHP carries the label to the egress (explicit null); otherwise the
	// penultimate router pops (PHP).
	UHP bool
}

// Signal allocates labels hop by hop and installs the imposition entry at
// the ingress and LFIB entries along the path, like an RSVP Path/Resv
// exchange would.
func Signal(tn *Tunnel) error {
	if len(tn.Path) < 2 {
		return fmt.Errorf("rsvpte: tunnel %s needs at least ingress and egress", tn.Name)
	}
	links := make([]*netsim.Iface, len(tn.Path)-1)
	for i := 0; i+1 < len(tn.Path); i++ {
		out, ok := connecting(tn.Path[i], tn.Path[i+1])
		if !ok {
			return fmt.Errorf("rsvpte: tunnel %s: %s and %s are not adjacent",
				tn.Name, tn.Path[i].Name(), tn.Path[i+1].Name())
		}
		links[i] = out
	}
	for _, r := range tn.Path {
		if !r.Config().MPLSEnabled {
			return fmt.Errorf("rsvpte: tunnel %s: %s has MPLS disabled", tn.Name, r.Name())
		}
	}

	// Resv flows egress -> ingress, handing each upstream router the
	// label to use.
	egress := tn.Path[len(tn.Path)-1]
	downstreamLabel := uint32(router.OutLabelImplicitNull)
	if tn.UHP {
		downstreamLabel = router.OutLabelExplicitNull
		egress.InstallLFIB(&router.LFIBEntry{InLabel: router.OutLabelExplicitNull, PopLocal: true})
	}
	for i := len(tn.Path) - 2; i >= 1; i-- {
		r := tn.Path[i]
		local := r.AllocLabel()
		r.InstallLFIB(&router.LFIBEntry{
			InLabel:  local,
			NextHops: []router.LabelHop{{Out: links[i], Label: downstreamLabel}},
		})
		downstreamLabel = local
	}
	tn.Path[0].InstallBinding(&router.Binding{
		FEC:      tn.FEC,
		NextHops: []router.LabelHop{{Out: links[0], Label: downstreamLabel}},
	})
	// The ingress FIB must know the FEC so imposition triggers; the
	// caller's routing (IGP/BGP) normally provides this. When the FEC is
	// off the routing table entirely, imposition would never be
	// consulted, so surface that early.
	if _, _, ok := tn.Path[0].LookupRoute(tn.FEC.Addr()); !ok {
		return fmt.Errorf("rsvpte: tunnel %s: ingress %s has no route for FEC %s",
			tn.Name, tn.Path[0].Name(), tn.FEC)
	}
	return nil
}

// Reroute re-signals tn over a detour path — RSVP-TE fast-reroute after
// a failure along the original explicit route. The tunnel's identity
// (name, FEC, UHP mode) is preserved; only the router sequence changes.
// tn itself is not mutated, so a later re-signal of the original path
// (repair) restores the pristine LSP.
func Reroute(tn *Tunnel, path []*router.Router) error {
	detour := *tn
	detour.Path = path
	return Signal(&detour)
}

// connecting returns the interface of a facing b, if they share a link.
func connecting(a, b *router.Router) (*netsim.Iface, bool) {
	for _, ifc := range a.Ifaces() {
		remote := ifc.Remote()
		if remote == nil {
			continue
		}
		if r, ok := remote.Owner.(*router.Router); ok && r == b {
			return ifc, true
		}
	}
	return nil, false
}
