package rsvpte

import (
	"testing"
	"time"

	"wormhole/internal/igp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/probe"
	"wormhole/internal/router"
)

// diamond builds vp - a - {b | c-d} - e - h: the IGP shortest path is
// a-b-e (3 hops), the TE path detours a-c-d-e.
type diamond struct {
	net           *netsim.Network
	vp, host      *netsim.Host
	a, b, c, d, e *router.Router
	prober        *probe.Prober
}

func buildDiamond(t *testing.T, propagate bool) *diamond {
	t.Helper()
	net := netsim.New(4)
	f := &diamond{net: net}
	cfg := router.Config{MPLSEnabled: true, TTLPropagate: propagate}
	mk := func(name string, i int) *router.Router {
		r := router.New(name, router.Cisco, cfg)
		r.SetLoopback(netaddr.AddrFrom4(192, 168, 77, byte(i+1)))
		net.AddNode(r)
		if err := net.RegisterIface(r.Loopback()); err != nil {
			t.Fatal(err)
		}
		return r
	}
	f.a, f.b, f.c, f.d, f.e = mk("a", 0), mk("b", 1), mk("c", 2), mk("d", 3), mk("e", 4)

	sub := 0
	wire := func(x, y *router.Router) {
		p := netaddr.MustPrefixFrom(netaddr.AddrFrom4(10, 70, byte(sub), 0), 30)
		sub++
		xi := x.AddIface("to-"+y.Name(), p.Nth(1), p)
		yi := y.AddIface("to-"+x.Name(), p.Nth(2), p)
		net.Connect(xi, yi, time.Millisecond)
		for _, ifc := range []*netsim.Iface{xi, yi} {
			if err := net.RegisterIface(ifc); err != nil {
				t.Fatal(err)
			}
		}
	}
	wire(f.a, f.b)
	wire(f.b, f.e)
	wire(f.a, f.c)
	wire(f.c, f.d)
	wire(f.d, f.e)

	vpP := netaddr.MustParsePrefix("10.70.100.0/30")
	f.vp = netsim.NewHost("vp", vpP.Nth(2), vpP)
	net.AddNode(f.vp)
	ai := f.a.AddIface("to-vp", vpP.Nth(1), vpP)
	net.Connect(ai, f.vp.If, time.Millisecond)
	hP := netaddr.MustParsePrefix("10.70.101.0/30")
	f.host = netsim.NewHost("h", hP.Nth(2), hP)
	net.AddNode(f.host)
	ei := f.e.AddIface("to-h", hP.Nth(1), hP)
	net.Connect(ei, f.host.If, time.Millisecond)
	for _, ifc := range []*netsim.Iface{ai, f.vp.If, ei, f.host.If} {
		if err := net.RegisterIface(ifc); err != nil {
			t.Fatal(err)
		}
	}

	dom := &igp.Domain{Routers: []*router.Router{f.a, f.b, f.c, f.d, f.e}}
	if _, err := dom.Compute(); err != nil {
		t.Fatal(err)
	}
	f.prober = probe.New(net, f.vp)
	return f
}

func hostFEC() netaddr.Prefix { return netaddr.MustParsePrefix("10.70.101.0/30") }

func respondingAddrs(tr *probe.Trace) []netaddr.Addr {
	var out []netaddr.Addr
	for _, h := range tr.Hops {
		if !h.Anonymous() {
			out = append(out, h.Addr)
		}
	}
	return out
}

func TestTESteersOffIGPPath(t *testing.T) {
	f := buildDiamond(t, true) // propagate: the detour is visible
	tn := &Tunnel{
		Name: "detour",
		Path: []*router.Router{f.a, f.c, f.d, f.e},
		FEC:  hostFEC(),
	}
	if err := Signal(tn); err != nil {
		t.Fatal(err)
	}
	tr := f.prober.Traceroute(f.host.Addr())
	if !tr.Reached {
		t.Fatalf("not reached: %+v", tr.Hops)
	}
	hops := respondingAddrs(tr)
	// Path must include c and d, not b.
	names := map[netaddr.Addr]bool{}
	for _, a := range hops {
		names[a] = true
	}
	if !names[f.c.Ifaces()[1].Addr] && !names[f.c.Ifaces()[0].Addr] {
		t.Errorf("TE path skipped c: %v", hops)
	}
	for _, ifc := range f.b.Ifaces() {
		if names[ifc.Addr] {
			t.Errorf("traffic still crossed b: %v", hops)
		}
	}
}

func TestTEWithUHPInvisible(t *testing.T) {
	f := buildDiamond(t, false) // no propagate
	tn := &Tunnel{
		Name: "stealth",
		Path: []*router.Router{f.a, f.c, f.d, f.e},
		FEC:  hostFEC(),
		UHP:  true,
	}
	if err := Signal(tn); err != nil {
		t.Fatal(err)
	}
	tr := f.prober.Traceroute(f.host.Addr())
	if !tr.Reached {
		t.Fatalf("not reached: %+v", tr.Hops)
	}
	hops := respondingAddrs(tr)
	// Totally invisible: a then h only — c, d AND the egress e hidden.
	if len(hops) != 2 || hops[len(hops)-1] != f.host.Addr() {
		t.Fatalf("UHP TE tunnel leaked hops: %v", hops)
	}
}

func TestTEWithPHPLeavesEgressVisible(t *testing.T) {
	f := buildDiamond(t, false)
	tn := &Tunnel{
		Name: "php",
		Path: []*router.Router{f.a, f.c, f.d, f.e},
		FEC:  hostFEC(),
	}
	if err := Signal(tn); err != nil {
		t.Fatal(err)
	}
	tr := f.prober.Traceroute(f.host.Addr())
	hops := respondingAddrs(tr)
	// PHP: interior hidden but the egress e appears (it decrements).
	if len(hops) != 3 {
		t.Fatalf("hops = %v, want a, e, h", hops)
	}
}

func TestSignalValidation(t *testing.T) {
	f := buildDiamond(t, true)
	if err := Signal(&Tunnel{Name: "short", Path: []*router.Router{f.a}}); err == nil {
		t.Error("single-router tunnel accepted")
	}
	if err := Signal(&Tunnel{Name: "gap", Path: []*router.Router{f.a, f.d}, FEC: hostFEC()}); err == nil {
		t.Error("non-adjacent path accepted")
	}
	plain := router.New("plain", router.Cisco, router.Config{})
	_ = plain
	if err := Signal(&Tunnel{Name: "noroute", Path: []*router.Router{f.a, f.b},
		FEC: netaddr.MustParsePrefix("203.0.113.0/24")}); err == nil {
		t.Error("FEC without ingress route accepted")
	}
}

func TestSignalRejectsNonMPLSHop(t *testing.T) {
	f := buildDiamond(t, true)
	cfg := f.c.Config()
	cfg.MPLSEnabled = false
	f.c.SetConfig(cfg)
	err := Signal(&Tunnel{Name: "broken", Path: []*router.Router{f.a, f.c, f.d, f.e}, FEC: hostFEC()})
	if err == nil {
		t.Error("tunnel through non-MPLS router accepted")
	}
}
