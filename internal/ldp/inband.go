package ldp

import (
	"bytes"
	"encoding/gob"

	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
	"wormhole/internal/router"
)

// In-band LDP: instead of the centralized Build, label mappings travel as
// control messages between adjacent routers (real LDP runs over TCP 646;
// the fabric models the session as Raw TCP datagrams). Each egress
// advertises (implicit/explicit) null for the FECs its policy covers;
// a router that hears a mapping from its IGP next hop toward the FEC
// installs the binding, allocates its own label, and advertises upstream —
// the ordered-control cascade the centralized builder models, emerging
// from message propagation. Results are verified against Build in tests.

// mapping is one LDP label mapping message.
type mapping struct {
	FEC   netaddr.Prefix
	Label uint32 // real label, or the implicit/explicit null sentinels
}

// msgTag discriminates LDP payloads from other TCP-borne control traffic
// (BGP) sharing the fabric: gob would otherwise happily decode one
// protocol's message as the other's zero value.
const msgTag = 'L'

// Protocol is the in-band LDP instance for one IGP domain.
type Protocol struct {
	net      *netsim.Network
	speakers map[*router.Router]*speaker
	member   map[*router.Router]bool
	routers  []*router.Router
}

type speaker struct {
	p *Protocol
	r *router.Router
	// learned[fec][neighborIface] = advertised label from that neighbor.
	learned map[netaddr.Prefix]map[netaddr.Addr]uint32
	// advertised guards against re-advertising a FEC.
	advertised map[netaddr.Prefix]bool
	// local holds our allocated label per FEC.
	local map[netaddr.Prefix]uint32
	prev  func(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet)
}

// EnableInBand attaches LDP speakers to the routers of a domain. IGP
// routes must already be installed (centralized igp or in-band ospf);
// label distribution follows them. Call Converge to run the exchange.
func EnableInBand(net *netsim.Network, routers []*router.Router) *Protocol {
	p := &Protocol{
		net:      net,
		speakers: make(map[*router.Router]*speaker, len(routers)),
		member:   make(map[*router.Router]bool, len(routers)),
		routers:  routers,
	}
	for _, r := range routers {
		sp := &speaker{
			p:          p,
			r:          r,
			learned:    make(map[netaddr.Prefix]map[netaddr.Addr]uint32),
			advertised: make(map[netaddr.Prefix]bool),
			local:      make(map[netaddr.Prefix]uint32),
			prev:       r.ControlHandler,
		}
		p.speakers[r] = sp
		p.member[r] = true
		r.ControlHandler = sp.receive
	}
	return p
}

// Converge has every egress advertise its covered FECs and drains the
// fabric; the mapping cascade installs bindings and LFIBs along the way.
func (p *Protocol) Converge() {
	for _, r := range p.routers {
		if !r.Config().MPLSEnabled {
			continue
		}
		sp := p.speakers[r]
		if r.Config().UHP {
			r.InstallLFIB(&router.LFIBEntry{InLabel: router.OutLabelExplicitNull, PopLocal: true})
		}
		for _, fec := range sp.ownedFECs() {
			if !covers(r, fec) {
				continue
			}
			label := uint32(router.OutLabelImplicitNull)
			if r.Config().UHP {
				label = router.OutLabelExplicitNull
			}
			sp.advertised[fec] = true
			sp.advertise(mapping{FEC: fec, Label: label})
		}
	}
	p.net.Run()
}

// ownedFECs lists the prefixes this router is an egress for.
func (s *speaker) ownedFECs() []netaddr.Prefix {
	var out []netaddr.Prefix
	if lo := s.r.Loopback(); lo != nil {
		out = append(out, lo.Prefix)
	}
	for _, ifc := range s.r.Ifaces() {
		remote := ifc.Remote()
		if remote == nil {
			continue
		}
		if nr, ok := remote.Owner.(*router.Router); ok && !s.p.member[nr] {
			continue // cross-AS subnet: not an LDP FEC
		}
		out = append(out, ifc.Prefix)
	}
	return out
}

// advertise sends the mapping to every in-domain neighbor.
func (s *speaker) advertise(m mapping) {
	var buf bytes.Buffer
	buf.WriteByte(msgTag)
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return
	}
	for _, ifc := range s.r.Ifaces() {
		if ifc.Link == nil || !ifc.Link.Up {
			continue
		}
		remote := ifc.Remote()
		nr, ok := remote.Owner.(*router.Router)
		if !ok || !s.p.member[nr] || !nr.Config().MPLSEnabled {
			continue
		}
		s.p.net.Transmit(ifc, &packet.Packet{
			IP: packet.IPv4{
				TTL:      1,
				Protocol: packet.ProtoTCP, // LDP session transport
				Src:      ifc.Addr,
				Dst:      remote.Addr,
			},
			Raw: buf.Bytes(),
		})
	}
}

// receive handles a control packet: LDP mappings are processed, anything
// else chains to the previously installed handler (in-band OSPF).
func (s *speaker) receive(net *netsim.Network, in *netsim.Iface, pkt *packet.Packet) {
	if pkt.IP.Protocol != packet.ProtoTCP || len(pkt.Raw) == 0 || pkt.Raw[0] != msgTag {
		if s.prev != nil {
			s.prev(net, in, pkt)
		}
		return
	}
	var m mapping
	if err := gob.NewDecoder(bytes.NewReader(pkt.Raw[1:])).Decode(&m); err != nil {
		return
	}
	byNb, ok := s.learned[m.FEC]
	if !ok {
		byNb = make(map[netaddr.Addr]uint32)
		s.learned[m.FEC] = byNb
	}
	byNb[pkt.IP.Src] = m.Label
	s.evaluate(m.FEC)
}

// evaluate checks whether the router now has labels from its IGP next hops
// toward fec; if so it installs the binding and, when its policy covers
// the FEC, allocates and advertises its own label.
func (s *speaker) evaluate(fec netaddr.Prefix) {
	r := s.r
	if !r.Config().MPLSEnabled {
		return
	}
	// Egresses handled their FECs in Converge.
	for _, owned := range s.ownedFECs() {
		if owned == fec {
			return
		}
	}
	rt, ok := r.GetRoute(fec)
	if !ok || rt.Origin == router.OriginConnected {
		return
	}
	byNb := s.learned[fec]
	var hops []router.LabelHop
	for _, nh := range rt.NextHops {
		label, ok := byNb[nh.Gateway]
		if !ok {
			continue
		}
		hops = append(hops, router.LabelHop{Out: nh.Out, Label: label})
	}
	if len(hops) == 0 {
		return
	}
	r.InstallBinding(&router.Binding{FEC: fec, NextHops: hops})
	if covers(r, fec) && !s.advertised[fec] {
		label, have := s.local[fec]
		if !have {
			label = r.AllocLabel()
			s.local[fec] = label
		}
		r.InstallLFIB(&router.LFIBEntry{InLabel: label, NextHops: hops})
		s.advertised[fec] = true
		s.advertise(mapping{FEC: fec, Label: label})
	} else if covers(r, fec) {
		// Refresh the LFIB with the (possibly better) hops.
		r.InstallLFIB(&router.LFIBEntry{InLabel: s.local[fec], NextHops: hops})
	}
}
