package ldp

import (
	"fmt"
	"testing"
	"time"

	"wormhole/internal/igp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
	"wormhole/internal/probe"
	"wormhole/internal/router"
)

// fixture is a linear MPLS domain vp - r0 - r1 - r2 - r3 - h with SPF
// computed and LDP built according to the per-router configs.
type fixture struct {
	net    *netsim.Network
	vp     *netsim.Host
	host   *netsim.Host
	rs     []*router.Router
	prober *probe.Prober
	spf    *igp.Result
}

func build(t *testing.T, cfgs []router.Config) *fixture {
	t.Helper()
	f := buildBare(t, cfgs)
	Build(f.rs, f.spf)
	f.prober = probe.New(f.net, f.vp)
	return f
}

// buildBare wires the topology and computes IGP routes, leaving label
// distribution to the caller.
func buildBare(t *testing.T, cfgs []router.Config) *fixture {
	t.Helper()
	net := netsim.New(3)
	f := &fixture{net: net}
	f.rs = make([]*router.Router, len(cfgs))
	for i, cfg := range cfgs {
		cfg.TTLPropagate = cfg.TTLPropagate || false
		f.rs[i] = router.New(fmt.Sprintf("r%d", i), router.Cisco, cfg)
		f.rs[i].SetLoopback(netaddr.AddrFrom4(192, 168, 9, byte(i+1)))
		net.AddNode(f.rs[i])
		if err := net.RegisterIface(f.rs[i].Loopback()); err != nil {
			t.Fatal(err)
		}
	}
	wire := func(ai, bi *netsim.Iface) {
		net.Connect(ai, bi, time.Millisecond)
		for _, ifc := range []*netsim.Iface{ai, bi} {
			if err := net.RegisterIface(ifc); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i+1 < len(f.rs); i++ {
		p := netaddr.MustPrefixFrom(netaddr.AddrFrom4(10, 50, byte(i), 0), 30)
		wire(f.rs[i].AddIface("right", p.Nth(1), p), f.rs[i+1].AddIface("left", p.Nth(2), p))
	}
	vpP := netaddr.MustParsePrefix("10.50.100.0/30")
	f.vp = netsim.NewHost("vp", vpP.Nth(2), vpP)
	net.AddNode(f.vp)
	wire(f.rs[0].AddIface("to-vp", vpP.Nth(1), vpP), f.vp.If)
	hP := netaddr.MustParsePrefix("10.50.101.0/30")
	f.host = netsim.NewHost("h", hP.Nth(2), hP)
	net.AddNode(f.host)
	wire(f.rs[len(f.rs)-1].AddIface("to-h", hP.Nth(1), hP), f.host.If)

	dom := &igp.Domain{Routers: f.rs}
	spf, err := dom.Compute()
	if err != nil {
		t.Fatal(err)
	}
	f.spf = spf
	return f
}

func cfgN(n int, c router.Config) []router.Config {
	out := make([]router.Config, n)
	for i := range out {
		out[i] = c
	}
	return out
}

var (
	allPrefixes = router.Config{MPLSEnabled: true, LDP: router.LDPAllPrefixes}
	hostRoutes  = router.Config{MPLSEnabled: true, LDP: router.LDPHostRoutesOnly}
)

// hopsSeen traces dst and returns the responding router addresses.
func (f *fixture) hopsSeen(dst netaddr.Addr) []netaddr.Addr {
	tr := f.prober.Traceroute(dst)
	var out []netaddr.Addr
	for _, h := range tr.Hops {
		if !h.Anonymous() {
			out = append(out, h.Addr)
		}
	}
	return out
}

func TestAllPrefixesHidesInteriorWithoutPropagate(t *testing.T) {
	f := build(t, cfgN(4, allPrefixes)) // no ttl-propagate
	hops := f.hopsSeen(f.host.Addr())
	// Tunnel r0->r3 (FEC = host subnet): r1, r2 invisible.
	if len(hops) != 3 {
		t.Fatalf("saw %d hops %v, want 3 (r0, r3, h)", len(hops), hops)
	}
}

func TestAllPrefixesVisibleWithPropagate(t *testing.T) {
	cfg := allPrefixes
	cfg.TTLPropagate = true
	f := build(t, cfgN(4, cfg))
	tr := f.prober.Traceroute(f.host.Addr())
	labeled := 0
	for _, h := range tr.Hops {
		if h.Labeled() {
			labeled++
		}
	}
	// r1 and r2 reveal labels (r2 is the LH: it pops, so its reply still
	// quotes the received label).
	if labeled < 2 {
		t.Errorf("only %d labeled hops: %+v", labeled, tr.Hops)
	}
}

func TestHostRoutesLeavesSubnetsUnlabeled(t *testing.T) {
	f := build(t, cfgN(4, hostRoutes))
	// Target r3's left interface: a /30 FEC never labeled under
	// host-routes, so the pure IGP route reveals every interior hop (the
	// DPR precondition).
	target := f.rs[3].Ifaces()[0].Addr
	hops := f.hopsSeen(target)
	if len(hops) != 4 {
		t.Fatalf("saw %v, want all four routers", hops)
	}
}

func TestHostRoutesStillTunnelsLoopbacks(t *testing.T) {
	f := build(t, cfgN(4, hostRoutes))
	// Target r3's loopback: labeled (host FEC), interior hidden.
	hops := f.hopsSeen(f.rs[3].Loopback().Addr)
	if len(hops) != 2 {
		t.Fatalf("saw %v, want r0 then r3 only", hops)
	}
}

func TestUHPHidesEgressToo(t *testing.T) {
	cfg := allPrefixes
	cfg.UHP = true
	f := build(t, cfgN(4, cfg))
	hops := f.hopsSeen(f.host.Addr())
	// With UHP the egress r3 disappears as well: r0 then h.
	if len(hops) != 2 || hops[1] != f.host.Addr() {
		t.Fatalf("saw %v, want r0 then host", hops)
	}
}

func TestMixedPoliciesDoNotBlackhole(t *testing.T) {
	cfgs := []router.Config{allPrefixes, hostRoutes, allPrefixes, allPrefixes}
	f := build(t, cfgs)
	tr := f.prober.Traceroute(f.host.Addr())
	if !tr.Reached {
		t.Fatalf("mixed-policy chain black-holed traffic: %+v", tr.Hops)
	}
	// And an interior /30 target also survives.
	tr = f.prober.Traceroute(f.rs[3].Ifaces()[0].Addr)
	if !tr.Reached {
		t.Fatalf("interior target black-holed: %+v", tr.Hops)
	}
}

func TestMPLSDisabledRouterGetsNoState(t *testing.T) {
	cfgs := []router.Config{allPrefixes, {}, allPrefixes, allPrefixes}
	f := build(t, cfgs)
	if got := f.rs[1].AllocLabel(); got != 16 {
		t.Errorf("non-MPLS router allocated labels (next=%d)", got)
	}
	// Traffic still flows as IP through the non-MPLS hop.
	tr := f.prober.Traceroute(f.host.Addr())
	if !tr.Reached {
		t.Fatal("chain with plain-IP middle black-holed")
	}
}

func TestExplicitNullOnTheWire(t *testing.T) {
	cfg := allPrefixes
	cfg.UHP = true
	cfg.TTLPropagate = true
	f := build(t, cfgN(4, cfg))
	// With propagation on, an expiring probe inside the tunnel reveals
	// the label stack; the hop before the egress must carry explicit null
	// (label 0) after the penultimate swap.
	tr := f.prober.Traceroute(f.host.Addr())
	sawExplicitNull := false
	for _, h := range tr.Hops {
		for _, lse := range h.MPLS {
			if lse.Label == packet.LabelExplicitNull {
				sawExplicitNull = true
			}
		}
	}
	if !sawExplicitNull {
		t.Errorf("no explicit-null label observed under UHP: %+v", tr.Hops)
	}
}

func TestPerFECLabelsAreDistinct(t *testing.T) {
	f := build(t, cfgN(4, cfgWithPropagate(allPrefixes)))
	// Trace two different FECs through the same transit router and
	// compare quoted labels at the first labeled hop.
	l1 := quotedLabel(t, f, f.host.Addr())
	l2 := quotedLabel(t, f, f.rs[3].Loopback().Addr)
	if l1 == 0 || l2 == 0 {
		t.Skip("no labeled hops observed")
	}
	if l1 == l2 {
		t.Errorf("different FECs share label %d", l1)
	}
}

func cfgWithPropagate(c router.Config) router.Config {
	c.TTLPropagate = true
	return c
}

func quotedLabel(t *testing.T, f *fixture, dst netaddr.Addr) uint32 {
	t.Helper()
	tr := f.prober.Traceroute(dst)
	for _, h := range tr.Hops {
		if len(h.MPLS) > 0 {
			return h.MPLS[0].Label
		}
	}
	return 0
}

// buildInBand mirrors build() but distributes labels with in-band LDP
// message exchange instead of the centralized builder.
func buildInBand(t *testing.T, cfgs []router.Config) *fixture {
	t.Helper()
	f := buildBare(t, cfgs)
	p := EnableInBand(f.net, f.rs)
	p.Converge()
	f.prober = probe.New(f.net, f.vp)
	return f
}

// TestInBandMatchesCentralizedBuild compares the observable tunnel
// behaviour of in-band LDP with the centralized builder across the
// scenarios: identical hop sequences for identical targets.
func TestInBandMatchesCentralizedBuild(t *testing.T) {
	scenarios := []struct {
		name string
		cfgs []router.Config
	}{
		{"all-prefixes-invisible", cfgN(4, allPrefixes)},
		{"all-prefixes-visible", cfgN(4, cfgWithPropagate(allPrefixes))},
		{"host-routes", cfgN(4, hostRoutes)},
		{"uhp", cfgN(4, cfgUHP())},
		{"mixed", []router.Config{allPrefixes, hostRoutes, allPrefixes, allPrefixes}},
	}
	for _, sc := range scenarios {
		central := build(t, sc.cfgs)
		inband := buildInBand(t, sc.cfgs)
		targets := func(f *fixture) []netaddr.Addr {
			return []netaddr.Addr{
				f.host.Addr(),
				f.rs[3].Loopback().Addr,
				f.rs[3].Ifaces()[0].Addr,
				f.rs[2].Ifaces()[0].Addr,
			}
		}
		ct, it := targets(central), targets(inband)
		for k := range ct {
			hc := central.hopsSeen(ct[k])
			hi := inband.hopsSeen(it[k])
			if len(hc) != len(hi) {
				t.Errorf("%s target %d: central saw %v, in-band saw %v", sc.name, k, hc, hi)
				continue
			}
			for j := range hc {
				if hc[j] != hi[j] {
					t.Errorf("%s target %d hop %d: %s vs %s", sc.name, k, j, hc[j], hi[j])
				}
			}
		}
	}
}

func cfgUHP() router.Config {
	c := allPrefixes
	c.UHP = true
	return c
}
