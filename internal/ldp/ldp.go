// Package ldp builds the MPLS label state for one IGP domain: per-FEC
// label allocation, advertisement subject to each router's policy (all
// prefixes vs. host routes only), penultimate-hop popping via implicit
// null or ultimate-hop popping via explicit null, and installation of the
// resulting bindings and LFIB entries into the routers.
//
// Label distribution follows ordered control: a router advertises a label
// for a FEC only once it has a labeled path toward the FEC's egress. In
// domains with a homogeneous policy this is indistinguishable from
// Cisco's independent mode; in mixed-vendor domains (the paper's "hybrid
// hardware" case) it avoids label black holes while still producing the
// partially-labeled paths the paper observes.
package ldp

import (
	"math"
	"sort"

	"wormhole/internal/igp"
	"wormhole/internal/netaddr"
	"wormhole/internal/router"
)

// nullKind distinguishes the two egress advertisements.
type nullKind uint8

const (
	noNull nullKind = iota
	implicitNull
	explicitNull
)

// Build computes and installs label state for the domain described by spf.
// Routers with MPLS disabled neither allocate labels nor receive bindings.
func Build(routers []*router.Router, spf *igp.Result) {
	// UHP egresses need the shared explicit-null disposition entry.
	for _, r := range routers {
		if r.Config().MPLSEnabled && r.Config().UHP {
			r.InstallLFIB(&router.LFIBEntry{InLabel: router.OutLabelExplicitNull, PopLocal: true})
		}
	}
	for _, fec := range spf.Prefixes {
		buildFEC(routers, spf, fec)
	}
}

// covers reports whether r's LDP policy advertises a label for fec.
func covers(r *router.Router, fec netaddr.Prefix) bool {
	if !r.Config().MPLSEnabled {
		return false
	}
	if r.Config().LDP == router.LDPAllPrefixes {
		return true
	}
	return fec.IsHost()
}

func buildFEC(routers []*router.Router, spf *igp.Result, fec netaddr.Prefix) {
	owners := spf.Owners[fec]
	if len(owners) == 0 {
		return
	}
	ownerSet := make(map[*router.Router]nullKind, len(owners))
	for _, o := range owners {
		if !covers(o, fec) {
			ownerSet[o] = noNull
			continue
		}
		if o.Config().UHP {
			ownerSet[o] = explicitNull
		} else {
			ownerSet[o] = implicitNull
		}
	}

	// Order the remaining routers by distance to the FEC so that
	// downstream labels exist before upstream routers look for them.
	type distRouter struct {
		r *router.Router
		d int
	}
	var order []distRouter
	for _, r := range routers {
		if _, isOwner := ownerSet[r]; isOwner {
			continue
		}
		d := math.MaxInt32
		for _, o := range owners {
			if dd, ok := spf.Dist[r][o]; ok && dd < d {
				d = dd
			}
		}
		if d == math.MaxInt32 {
			continue
		}
		order = append(order, distRouter{r, d})
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].d < order[j].d })

	local := make(map[*router.Router]uint32)
	for _, dr := range order {
		r := dr.r
		if !r.Config().MPLSEnabled {
			continue
		}
		var hops []router.LabelHop
		for _, h := range spf.NextHops[r][fec] {
			if h.Via == nil {
				continue // connected: r would be an owner
			}
			if kind, isOwner := ownerSet[h.Via]; isOwner {
				switch kind {
				case implicitNull:
					hops = append(hops, router.LabelHop{Out: h.Out, Label: router.OutLabelImplicitNull})
				case explicitNull:
					hops = append(hops, router.LabelHop{Out: h.Out, Label: router.OutLabelExplicitNull})
				}
				continue
			}
			if l, ok := local[h.Via]; ok {
				hops = append(hops, router.LabelHop{Out: h.Out, Label: l})
			}
		}
		if len(hops) == 0 {
			continue // no labeled path: traffic for this FEC stays IP here
		}
		r.InstallBinding(&router.Binding{FEC: fec, NextHops: hops})
		if covers(r, fec) {
			l := r.AllocLabel()
			local[r] = l
			r.InstallLFIB(&router.LFIBEntry{InLabel: l, NextHops: hops})
		}
	}
}
