// Package benchrun measures the fast-path fabric end to end — replica
// construction (structural snapshot vs generator rebuild) and campaign
// throughput at several worker-pool sizes — and renders the results as a
// stable JSON report (BENCH_campaign.json in the repo root). The CLI's
// `bench` subcommand and the TestBenchSmoke tier drive it; EXPERIMENTS.md
// quotes its numbers.
package benchrun

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"wormhole/internal/campaign"
	"wormhole/internal/experiments"
	"wormhole/internal/gen"
	"wormhole/internal/probe"
)

// Config selects what to measure.
type Config struct {
	Scale experiments.Scale
	Seed  int64
	// Runs is how many campaign iterations each worker count averages
	// over (default 1).
	Runs int
	// CloneIters is how many replica constructions each clone path
	// averages over (default 3).
	CloneIters int
	// Workers lists the worker-pool sizes to measure (default 1, 4,
	// NumCPU, deduplicated).
	Workers []int
	// Scales lists ladder rungs to measure build/snapshot/memory for
	// (each gets one ScaleReport row; empty = none). Independent of the
	// campaign matrix, which runs at Scale.
	Scales []experiments.Scale
	// ScalesOnly skips the clone and campaign measurements, emitting only
	// the scale-ladder rows — what the bench guard's memory gate runs.
	ScalesOnly bool
	// Dist lists worker counts for the distributed-engine rows (empty =
	// none). Each entry runs full campaigns through the coordinator/worker
	// socket protocol at Scale and records the wire-codec and streaming
	// costs alongside throughput.
	Dist []int
	// DistSpawn launches distributed workers. Nil spawns in-process
	// goroutine workers (the protocol is identical; Processes reports 1);
	// the CLI passes its process spawner, and Processes then reports the
	// coordinator plus one OS process per worker.
	DistSpawn func(worker int, network, addr string) error
}

// ScaleReport is one scale-ladder rung: how long the world takes to
// build, how long a structural snapshot takes once warm, and how many
// heap bytes one retained replica costs per router. The bytes/router
// budget is the tentpole number — the guard gates it.
type ScaleReport struct {
	Scale   string `json:"scale"`
	Routers int    `json:"routers"`
	// ResidentRouters is how many of those routers are constructed after
	// Build: equal to Routers on eager rungs, the core plus the VP stubs
	// on a lazy rung (the rest of the universe is descriptors).
	ResidentRouters int     `json:"resident_routers"`
	BuildMS         float64 `json:"build_ms"`
	SnapshotMS      float64 `json:"snapshot_ms"`
	// BytesPerRouter divides one retained replica's settled heap delta by
	// the replica's RESIDENT router count — the honest denominator on a
	// lazy rung, and identical to dividing by Routers on eager ones.
	BytesPerRouter float64 `json:"bytes_per_router"`
	// FaultInMS is the mean wall-clock cost of materializing one stub
	// through the fault-in path, over a 64-stub sample (zero on eager
	// rungs).
	FaultInMS float64 `json:"fault_in_ms"`
	// EncodeMS/DecodeMS time the versioned wire codec on the warm fabric:
	// EncodeWire to a blob, DecodeWire back to a live replica. The guard
	// gates EncodeMS against SnapshotMS at the Large rung — the codec must
	// stay within 2× of the in-process structural snapshot.
	EncodeMS float64 `json:"encode_ms"`
	DecodeMS float64 `json:"decode_ms"`
	// WireMB is the encoded blob's size — what a distributed campaign
	// ships to each worker in snapshot mode.
	WireMB float64 `json:"wire_mb"`
}

// CloneReport compares the two replica paths.
type CloneReport struct {
	Iters        int     `json:"iters"`
	StructuralMS float64 `json:"structural_ms"`
	RebuildMS    float64 `json:"rebuild_ms"`
	// Speedup is RebuildMS / StructuralMS.
	Speedup float64 `json:"speedup"`
}

// CampaignReport is the throughput measurement at one (worker-pool size,
// flow-cache setting) point. Probe counts are split into the bootstrap
// phase (every vantage point traces the router population once, sharded
// across the worker pool like everything else) and the campaign phase
// proper (team probing on the worker pool), so the per-run totals are
// comparable across worker counts and cache settings by construction.
// The timed region covers whole campaigns — replica acquisition,
// bootstrap, and probing — with ReplicaMS and BootstrapMS breaking the
// per-run wall time down so scaling curves are interpretable.
type CampaignReport struct {
	Workers int `json:"workers"`
	// EffectiveWorkers is min(Workers, shard count): the parallelism the
	// probing phase actually used. Pool slots past the shard count (5
	// teams under the default sharding) idle through that phase.
	EffectiveWorkers int `json:"effective_workers"`
	// GoMaxProcs is the runtime parallelism this row actually ran with —
	// raised to min(Workers, NumCPU) for the measurement, so multi-worker
	// rows measure real parallelism where the hardware has it, without
	// billing scheduler thrash from oversubscribed Ps to high worker
	// counts.
	GoMaxProcs int `json:"gomaxprocs"`
	// Method is the traceroute probe modality the row ran ("icmp" or
	// "udp"). The udp rows measure the port-cycle slot cold path: a UDP
	// trace touches a different flow key per probe, so its cache and
	// sweep coverage comes from branch-class aliasing rather than
	// single-flow memoization.
	Method string `json:"method"`
	// FlowCache reports whether the flow-trajectory cache was enabled.
	FlowCache bool `json:"flow_cache"`
	// Sweep reports whether the single-injection TTL sweep was enabled.
	// The (FlowCache=false, Sweep=false) row is the per-probe baseline;
	// (false, true) isolates the cold-path win the sweep buys on its own.
	Sweep bool `json:"sweep"`
	// Churn reports whether a seeded fail/reconverge/repair schedule ran
	// during every campaign. Churn rows measure invalidation cost: the
	// delta row (ChurnFlushWorld=false) evicts only the flows crossing
	// mutated routers, the flush-world row drops every cache (and the
	// replica pool) on every event — the baseline delta-invalidation must
	// beat.
	Churn           bool `json:"churn"`
	ChurnFlushWorld bool `json:"churn_flush_world"`
	Runs            int  `json:"runs"`
	// ProbesPerRun = BootstrapProbesPerRun + CampaignProbesPerRun.
	ProbesPerRun          uint64  `json:"probes_per_run"`
	BootstrapProbesPerRun uint64  `json:"bootstrap_probes_per_run"`
	CampaignProbesPerRun  uint64  `json:"campaign_probes_per_run"`
	NsPerProbe            float64 `json:"ns_per_probe"`
	ProbesPerSec          float64 `json:"probes_per_sec"`
	AllocsPerProbe        float64 `json:"allocs_per_probe"`
	BytesPerProbe         float64 `json:"bytes_per_probe"`
	WallMSPerRun          float64 `json:"wall_ms_per_run"`
	// ReplicaMS is the per-run wall time spent acquiring worker replicas
	// inside the timed region. The pool is warmed by the untimed run, so
	// steady-state rows show (near-)zero here; a nonzero value means
	// replicas were rebuilt mid-measurement.
	ReplicaMS float64 `json:"replica_ms"`
	// BootstrapMS is the per-run wall time of the bootstrap sweep plus
	// target selection — the phase that was serial (and unscalable)
	// before the sweep was sharded.
	BootstrapMS float64 `json:"bootstrap_ms"`
	// Cache counters, averaged per run (zero when FlowCache is false;
	// misses and fast-forwards are also zero once the pooled replicas'
	// caches and the shared reply table fully cover the run, the warm
	// steady state).
	CacheHitsPerRun   uint64 `json:"cache_hits_per_run"`
	CacheMissesPerRun uint64 `json:"cache_misses_per_run"`
	CacheFFPerRun     uint64 `json:"cache_fast_forwards_per_run"`
	// CacheSharedHitsPerRun is the subset of hits adopted from the shared
	// cross-worker reply table rather than recorded locally.
	CacheSharedHitsPerRun uint64 `json:"cache_shared_hits_per_run"`
	// Sweep counters, averaged per run (zero when Sweep is false): walks
	// injected, replies synthesized without event-loop simulation, and
	// probes that fell back to live simulation under a swept flow.
	SweepWalksPerRun     uint64 `json:"sweep_walks_per_run"`
	SweepRepliesPerRun   uint64 `json:"sweep_replies_per_run"`
	SweepFallbacksPerRun uint64 `json:"sweep_fallbacks_per_run"`
	// SweepBypassesPerRun counts traces the adaptive bypass ran per-probe
	// because their hinted reach depth promised too few derived replies;
	// SweepAliasesPerRun counts UDP port-cycle slots that adopted a
	// master walk's trajectory instead of walking themselves.
	SweepBypassesPerRun uint64 `json:"sweep_bypasses_per_run"`
	SweepAliasesPerRun  uint64 `json:"sweep_aliases_per_run"`
	// ChurnEventsPerRun is the number of churn events fired per campaign
	// (zero when Churn is false).
	ChurnEventsPerRun uint64 `json:"churn_events_per_run"`
}

// DistReport is one distributed-engine row: a full campaign pushed
// through the coordinator/worker socket protocol at one worker count.
// Encode/decode price the world transfer's endpoints, StreamMB the
// total socket traffic per campaign, and the throughput columns are
// directly comparable to the in-process CampaignReport rows at the same
// worker count (same scale, same config, flow cache and sweep on).
type DistReport struct {
	Workers int `json:"workers"`
	// Processes is the OS-process footprint: 1 when the workers are
	// in-process goroutines driving the socket protocol (the test spawn),
	// coordinator + Workers when the CLI execs real worker processes.
	Processes int `json:"processes"`
	// EncodeMS/DecodeMS time the wire codec on the campaign fabric — the
	// cost to produce the world blob and to reconstitute it worker-side.
	EncodeMS float64 `json:"encode_ms"`
	DecodeMS float64 `json:"decode_ms"`
	// StreamMB is the mean bytes per campaign moved over the coordinator's
	// sockets, both directions (world blobs out, traces and shard results
	// back).
	StreamMB     float64 `json:"stream_mb"`
	Runs         int     `json:"runs"`
	ProbesPerRun uint64  `json:"probes_per_run"`
	WallMSPerRun float64 `json:"wall_ms_per_run"`
	ProbesPerSec float64 `json:"probes_per_sec"`
	// ResidentRoutersPerWorker is the mean resident-set size of one worker
	// replica after its campaign — with bytes_per_router from the scale
	// rows this prices each worker process's fabric footprint.
	ResidentRoutersPerWorker int `json:"resident_routers_per_worker"`
}

// Report is the full benchmark output.
type Report struct {
	Scale string `json:"scale"`
	Seed  int64  `json:"seed"`
	// GoMaxProcs is the ambient setting outside the campaign rows; each
	// row records the (possibly raised) value it ran with.
	GoMaxProcs int              `json:"gomaxprocs"`
	Clone      CloneReport      `json:"clone"`
	Campaign   []CampaignReport `json:"campaign"`
	// Dist holds the distributed-engine rows, when requested.
	Dist []DistReport `json:"dist,omitempty"`
	// Scales holds the scale-ladder rows, when requested.
	Scales []ScaleReport `json:"scales,omitempty"`
}

// Run executes the benchmark suite on a freshly built Internet.
func Run(cfg Config) (*Report, error) {
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	if cfg.CloneIters < 1 {
		cfg.CloneIters = 3
	}
	rep := &Report{
		Scale:      cfg.Scale.String(),
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, s := range cfg.Scales {
		sr, err := measureScale(s, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rep.Scales = append(rep.Scales, sr)
	}
	if cfg.ScalesOnly {
		return rep, nil
	}

	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 4, runtime.NumCPU()}
	}
	seen := map[int]bool{}
	var workers []int
	for _, w := range cfg.Workers {
		if w >= 1 && !seen[w] {
			seen[w] = true
			workers = append(workers, w)
		}
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("benchrun: no valid worker counts in %v", cfg.Workers)
	}

	in, err := gen.Build(cfg.Scale.Params(cfg.Seed))
	if err != nil {
		return nil, err
	}

	rep.Clone, err = measureClone(in, cfg.CloneIters)
	if err != nil {
		return nil, err
	}

	camCfg := cfg.Scale.CampaignConfig()
	for _, w := range workers {
		// ICMP: per-probe baseline, sweep-only cold path, the full fast
		// path, and the two churned fast-path rows (delta-invalidation vs
		// the flush-the-world baseline on an identical schedule). UDP:
		// per-probe baseline and the full fast path — the pair that prices
		// the port-cycle slot cold path.
		for _, combo := range []struct {
			method                          probe.Method
			cache, sweep, churn, flushWorld bool
		}{
			{probe.ICMPParis, false, false, false, false},
			{probe.ICMPParis, false, true, false, false},
			{probe.ICMPParis, true, true, false, false},
			{probe.ICMPParis, true, true, true, false},
			{probe.ICMPParis, true, true, true, true},
			{probe.UDPParis, false, false, false, false},
			{probe.UDPParis, true, true, false, false},
		} {
			cr, err := measureCampaign(in, camCfg, w, cfg.Runs, combo.method, combo.cache, combo.sweep, combo.churn, combo.flushWorld)
			if err != nil {
				return nil, err
			}
			rep.Campaign = append(rep.Campaign, cr)
		}
	}
	for _, w := range cfg.Dist {
		if w < 1 {
			continue
		}
		dr, err := measureDist(in, camCfg, w, cfg.Runs, cfg.DistSpawn)
		if err != nil {
			return nil, err
		}
		rep.Dist = append(rep.Dist, dr)
	}
	return rep, nil
}

// goSpawnWorker is the in-process distributed worker: a goroutine that
// dials the coordinator and runs the full socket protocol. The wire
// traffic and probing are identical to a real worker process; only the
// address space is shared.
func goSpawnWorker(_ int, network, addr string) error {
	go func() {
		conn, err := net.Dial(network, addr)
		if err != nil {
			return
		}
		_ = campaign.ServeWorker(conn)
	}()
	return nil
}

// measureDist prices the distributed engine at one worker count: the
// wire codec's encode/decode endpoints, then whole campaigns through the
// socket protocol in snapshot-replica mode. One untimed campaign warms
// the allocator exactly as the in-process rows do.
func measureDist(in *gen.Internet, base campaign.Config, workers, runs int, spawn func(int, string, string) error) (DistReport, error) {
	rep := DistReport{Workers: workers, Processes: 1, Runs: runs}
	if spawn == nil {
		spawn = goSpawnWorker
	} else {
		rep.Processes = workers + 1
	}

	// Codec endpoints, warm: one untimed encode pays allocator growth.
	blob, err := in.EncodeWire()
	if err != nil {
		return rep, fmt.Errorf("benchrun: encode: %w", err)
	}
	runtime.GC()
	start := time.Now()
	if blob, err = in.EncodeWire(); err != nil {
		return rep, fmt.Errorf("benchrun: encode: %w", err)
	}
	rep.EncodeMS = msPer(time.Since(start), 1)
	start = time.Now()
	if _, err := gen.DecodeWire(blob); err != nil {
		return rep, fmt.Errorf("benchrun: decode: %w", err)
	}
	rep.DecodeMS = msPer(time.Since(start), 1)

	dcfg := campaign.DistConfig{Workers: workers, Replica: campaign.ReplicaSnapshot, Spawn: spawn}
	prev := runtime.GOMAXPROCS(0)
	if target := min(workers, runtime.NumCPU()); target > prev {
		runtime.GOMAXPROCS(target)
		defer runtime.GOMAXPROCS(prev)
	}
	if _, err := campaign.RunDistributed(in, base, dcfg); err != nil {
		return rep, err
	}
	start = time.Now()
	var probes, streamed uint64
	var resident int
	for i := 0; i < runs; i++ {
		c, err := campaign.RunDistributed(in, base, dcfg)
		if err != nil {
			return rep, err
		}
		if len(c.Records) == 0 {
			return rep, fmt.Errorf("benchrun: empty distributed campaign at workers=%d", workers)
		}
		probes += c.Probes
		streamed += c.StreamBytes
		resident += c.ReplicaResident
	}
	wall := time.Since(start)
	rep.ProbesPerRun = probes / uint64(runs)
	rep.WallMSPerRun = msPer(wall, runs)
	rep.StreamMB = float64(streamed) / float64(runs) / (1 << 20)
	rep.ResidentRoutersPerWorker = resident / runs / workers
	if probes > 0 {
		rep.ProbesPerSec = float64(probes) / wall.Seconds()
	}
	return rep, nil
}

// benchChurnRate is the churn intensity of the churned bench rows:
// expected fail/reconverge/repair cycles per shard.
const benchChurnRate = 2

func measureClone(in *gen.Internet, iters int) (CloneReport, error) {
	rep := CloneReport{Iters: iters}
	// One untimed round of each path first: the initial replica pays for
	// growing the heap from its post-build size, which would otherwise be
	// billed entirely to the structural path measured first.
	if _, err := in.Snapshot(); err != nil {
		return rep, fmt.Errorf("benchrun: snapshot: %w", err)
	}
	if _, err := in.Rebuild(); err != nil {
		return rep, fmt.Errorf("benchrun: rebuild: %w", err)
	}
	runtime.GC()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := in.Snapshot(); err != nil {
			return rep, fmt.Errorf("benchrun: snapshot: %w", err)
		}
	}
	rep.StructuralMS = msPer(time.Since(start), iters)
	runtime.GC()
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := in.Rebuild(); err != nil {
			return rep, fmt.Errorf("benchrun: rebuild: %w", err)
		}
	}
	rep.RebuildMS = msPer(time.Since(start), iters)
	if rep.StructuralMS > 0 {
		rep.Speedup = rep.RebuildMS / rep.StructuralMS
	}
	return rep, nil
}

func measureCampaign(in *gen.Internet, base campaign.Config, workers, runs int, method probe.Method, flowCache, sweep, churn, flushWorld bool) (CampaignReport, error) {
	rep := CampaignReport{
		Workers: workers, Runs: runs, Method: method.String(),
		FlowCache: flowCache, Sweep: sweep,
		Churn: churn, ChurnFlushWorld: churn && flushWorld,
	}
	cfg := base
	cfg.Method = method
	cfg.DisableFlowCache = !flowCache
	cfg.DisableSweep = !sweep
	if churn {
		cfg.ChurnRate = benchChurnRate
		cfg.ChurnFlushWorld = flushWorld
	}

	// Measure real parallelism: time-slicing w workers over fewer OS
	// threads measures the scheduler, not the engine, so raise GOMAXPROCS
	// to the pool size — but never past NumCPU: runnable Ps beyond the
	// physical cores add work-stealing spin without adding parallelism,
	// which would bill pure scheduler thrash to the multi-worker rows.
	// Restored afterwards.
	prev := runtime.GOMAXPROCS(0)
	if target := min(workers, runtime.NumCPU()); target > prev {
		runtime.GOMAXPROCS(target)
		defer runtime.GOMAXPROCS(prev)
	}
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)

	// One untimed run first: it pays the allocator growth both settings
	// would otherwise bill to their first run, and for the cached setting
	// it warms the flow cache, so the timed runs measure the steady state
	// the campaign loop actually operates in.
	var bootstrap uint64
	if c, err := campaign.RunParallel(in, cfg, campaign.ParallelConfig{Workers: workers}); err != nil {
		return rep, err
	} else {
		bootstrap = c.BootstrapProbes()
		rep.EffectiveWorkers = c.ShardWorkers
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var probes, hits, misses, ffs, shared uint64
	var walks, synth, falls, bypasses, aliases, churnEvents uint64
	var replica, boot time.Duration
	for i := 0; i < runs; i++ {
		c, err := campaign.RunParallel(in, cfg, campaign.ParallelConfig{Workers: workers})
		if err != nil {
			return rep, err
		}
		if len(c.Records) == 0 {
			return rep, fmt.Errorf("benchrun: empty campaign at workers=%d", workers)
		}
		probes += c.Probes
		hits += c.FlowCache.Hits
		misses += c.FlowCache.Misses
		ffs += c.FlowCache.FastForwards
		shared += c.FlowCache.SharedHits
		sw := c.Sweep.Total()
		walks += sw.Walks
		synth += sw.Replies
		falls += sw.Fallbacks
		bypasses += sw.Bypasses
		aliases += sw.Aliases
		churnEvents += c.ChurnEvents
		replica += c.Phase.Replica
		boot += c.Phase.Bootstrap
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)

	rep.ProbesPerRun = probes / uint64(runs)
	rep.BootstrapProbesPerRun = bootstrap
	rep.CampaignProbesPerRun = rep.ProbesPerRun - bootstrap
	rep.WallMSPerRun = msPer(wall, runs)
	rep.ReplicaMS = msPer(replica, runs)
	rep.BootstrapMS = msPer(boot, runs)
	rep.CacheHitsPerRun = hits / uint64(runs)
	rep.CacheMissesPerRun = misses / uint64(runs)
	rep.CacheFFPerRun = ffs / uint64(runs)
	rep.CacheSharedHitsPerRun = shared / uint64(runs)
	rep.SweepWalksPerRun = walks / uint64(runs)
	rep.SweepRepliesPerRun = synth / uint64(runs)
	rep.SweepFallbacksPerRun = falls / uint64(runs)
	rep.SweepBypassesPerRun = bypasses / uint64(runs)
	rep.SweepAliasesPerRun = aliases / uint64(runs)
	rep.ChurnEventsPerRun = churnEvents / uint64(runs)
	if probes > 0 {
		rep.NsPerProbe = float64(wall.Nanoseconds()) / float64(probes)
		rep.ProbesPerSec = float64(probes) / wall.Seconds()
		rep.AllocsPerProbe = float64(ms1.Mallocs-ms0.Mallocs) / float64(probes)
		rep.BytesPerProbe = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(probes)
	}
	return rep, nil
}

// measureScale builds one ladder rung and measures the tentpole numbers:
// cold build time, warm snapshot time, and the heap footprint of one
// retained replica divided by the router count. The footprint is measured
// as the settled heap delta around the retained snapshot (GC fences on
// both sides), so transient build garbage is not billed to the replica.
func measureScale(s experiments.Scale, seed int64) (ScaleReport, error) {
	rep := ScaleReport{Scale: s.String()}
	start := time.Now()
	in, err := gen.Build(s.Params(seed))
	if err != nil {
		return rep, err
	}
	rep.BuildMS = msPer(time.Since(start), 1)
	rep.Routers = in.TotalRouters()
	lz := in.LazyStats()
	rep.ResidentRouters = lz.Resident
	// Warm-up snapshot: pays allocator growth once, untimed.
	if _, err := in.Snapshot(); err != nil {
		return rep, err
	}
	runtime.GC()
	start = time.Now()
	if _, err := in.Snapshot(); err != nil {
		return rep, err
	}
	rep.SnapshotMS = msPer(time.Since(start), 1)

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	keep, err := in.Snapshot()
	if err != nil {
		return rep, err
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	if lz.Resident > 0 {
		rep.BytesPerRouter = (float64(m1.HeapAlloc) - float64(m0.HeapAlloc)) / float64(lz.Resident)
	}
	runtime.KeepAlive(keep)

	// Fault-in cost, measured after the footprint so the sampled stubs
	// are not billed to the retained replica.
	if n := in.FaultInSample(64); n > 0 {
		rep.FaultInMS = float64(in.LazyStats().FaultInNS-lz.FaultInNS) / float64(n) / 1e6
	}

	// Wire codec: warm encode/decode round-trip, same warm-up discipline
	// as the snapshot measurement above.
	blob, err := in.EncodeWire()
	if err != nil {
		return rep, fmt.Errorf("benchrun: encode at %s: %w", s, err)
	}
	rep.WireMB = float64(len(blob)) / (1 << 20)
	runtime.GC()
	start = time.Now()
	if blob, err = in.EncodeWire(); err != nil {
		return rep, fmt.Errorf("benchrun: encode at %s: %w", s, err)
	}
	rep.EncodeMS = msPer(time.Since(start), 1)
	start = time.Now()
	dec, err := gen.DecodeWire(blob)
	if err != nil {
		return rep, fmt.Errorf("benchrun: decode at %s: %w", s, err)
	}
	rep.DecodeMS = msPer(time.Since(start), 1)
	if dec.TotalRouters() != in.TotalRouters() {
		return rep, fmt.Errorf("benchrun: decode at %s lost routers: %d != %d", s, dec.TotalRouters(), in.TotalRouters())
	}
	return rep, nil
}

func msPer(d time.Duration, n int) float64 {
	return float64(d.Nanoseconds()) / float64(n) / 1e6
}

// WriteJSON renders the report with stable field order and a trailing
// newline, so committed reports diff cleanly.
func WriteJSON(path string, rep *Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
