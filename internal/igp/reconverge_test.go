// Reconvergence tests live in an external test package so they can drive
// the full igp+ldp control plane without an import cycle.
package igp_test

import (
	"testing"
	"time"

	"wormhole/internal/igp"
	"wormhole/internal/ldp"
	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
	"wormhole/internal/probe"
	"wormhole/internal/router"
)

// mplsDiamond wires vp - a - {b | c} - d - h with MPLS everywhere so a
// tunnel crosses the diamond.
type mplsDiamond struct {
	net        *netsim.Network
	vp, host   *netsim.Host
	a, b, c, d *router.Router
	all        []*router.Router
	prober     *probe.Prober
}

func buildMPLSDiamond(t *testing.T) *mplsDiamond {
	t.Helper()
	net := netsim.New(12)
	f := &mplsDiamond{net: net}
	cfg := router.Config{MPLSEnabled: true, LDP: router.LDPAllPrefixes} // invisible
	mk := func(name string, i int) *router.Router {
		r := router.New(name, router.Cisco, cfg)
		r.SetLoopback(netaddr.AddrFrom4(192, 168, 55, byte(i+1)))
		net.AddNode(r)
		if err := net.RegisterIface(r.Loopback()); err != nil {
			t.Fatal(err)
		}
		f.all = append(f.all, r)
		return r
	}
	f.a, f.b, f.c, f.d = mk("a", 0), mk("b", 1), mk("c", 2), mk("d", 3)
	sub := 0
	wire := func(x, y *router.Router) {
		p := netaddr.MustPrefixFrom(netaddr.AddrFrom4(10, 55, byte(sub), 0), 30)
		sub++
		xi := x.AddIface("to-"+y.Name(), p.Nth(1), p)
		yi := y.AddIface("to-"+x.Name(), p.Nth(2), p)
		net.Connect(xi, yi, time.Millisecond)
		for _, ifc := range []*netsim.Iface{xi, yi} {
			if err := net.RegisterIface(ifc); err != nil {
				t.Fatal(err)
			}
		}
	}
	wire(f.a, f.b)
	wire(f.b, f.d)
	wire(f.a, f.c)
	wire(f.c, f.d)

	vpP := netaddr.MustParsePrefix("10.55.100.0/30")
	f.vp = netsim.NewHost("vp", vpP.Nth(2), vpP)
	net.AddNode(f.vp)
	ai := f.a.AddIface("to-vp", vpP.Nth(1), vpP)
	net.Connect(ai, f.vp.If, time.Millisecond)
	hP := netaddr.MustParsePrefix("10.55.101.0/30")
	f.host = netsim.NewHost("h", hP.Nth(2), hP)
	net.AddNode(f.host)
	di := f.d.AddIface("to-h", hP.Nth(1), hP)
	net.Connect(di, f.host.If, time.Millisecond)
	for _, ifc := range []*netsim.Iface{ai, f.vp.If, di, f.host.If} {
		if err := net.RegisterIface(ifc); err != nil {
			t.Fatal(err)
		}
	}

	f.converge(t)
	f.prober = probe.New(net, f.vp)
	return f
}

// converge (re)runs the control plane: fresh SPF and label state.
func (f *mplsDiamond) converge(t *testing.T) {
	t.Helper()
	for _, r := range f.all {
		r.ClearMPLS()
	}
	dom := &igp.Domain{Routers: f.all}
	spf, err := dom.Compute()
	if err != nil {
		t.Fatal(err)
	}
	ldp.Build(f.all, spf)
}

// branchOf reports which middle router the *forward* flow crosses, using
// a trace hook filtered to probe packets (replies may legitimately hash to
// the other branch).
func (f *mplsDiamond) branchOf(t *testing.T) string {
	t.Helper()
	seen := map[string]bool{}
	prev := f.net.Trace
	f.net.Trace = func(_ time.Duration, to *netsim.Iface, pkt *packet.Packet) {
		if pkt.IP.Dst != f.host.Addr() {
			return
		}
		if r, ok := to.Owner.(*router.Router); ok && (r == f.b || r == f.c) {
			seen[r.Name()] = true
		}
	}
	defer func() { f.net.Trace = prev }()
	tr := f.prober.Traceroute(f.host.Addr())
	if !tr.Reached {
		t.Fatalf("trace failed: %+v", tr.Hops)
	}
	switch {
	case seen["b"] && !seen["c"]:
		return "b"
	case seen["c"] && !seen["b"]:
		return "c"
	default:
		return "both"
	}
}

func TestReconvergenceAfterLinkFailure(t *testing.T) {
	f := buildMPLSDiamond(t)
	before := f.branchOf(t)
	if before == "both" {
		t.Fatalf("flow crossed both branches in one trace")
	}

	// Kill the branch in use.
	victim := f.b
	if before == "c" {
		victim = f.c
	}
	for _, ifc := range victim.Ifaces() {
		ifc.Link.Up = false
	}
	f.converge(t)

	after := f.branchOf(t)
	if after == before || after == "both" {
		t.Fatalf("flow still on branch %q after failing it (was %q)", after, before)
	}

	// Restore and reconverge back: both branches usable again, traffic
	// must still flow.
	for _, ifc := range victim.Ifaces() {
		ifc.Link.Up = true
	}
	f.converge(t)
	tr := f.prober.Traceroute(f.host.Addr())
	if !tr.Reached {
		t.Fatalf("trace failed after restoration: %+v", tr.Hops)
	}
}

func TestFailureWithoutReconvergenceBlackholes(t *testing.T) {
	f := buildMPLSDiamond(t)
	// Fail BOTH branches: without any alternative, traffic dies whether
	// or not the control plane reconverges.
	for _, r := range []*router.Router{f.b, f.c} {
		for _, ifc := range r.Ifaces() {
			ifc.Link.Up = false
		}
	}
	tr := f.prober.Traceroute(f.host.Addr())
	if tr.Reached {
		t.Fatal("reached destination across a fully failed diamond")
	}
}
