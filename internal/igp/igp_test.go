package igp

import (
	"testing"
	"time"

	"wormhole/internal/netaddr"
	"wormhole/internal/netsim"
	"wormhole/internal/packet"
	"wormhole/internal/router"
)

// diamond builds the classic ECMP diamond:
//
//	    B
//	  /   \
//	A       D --- host
//	  \   /
//	    C
type diamond struct {
	net        *netsim.Network
	a, b, c, d *router.Router
	host       *netsim.Host
	res        *Result
}

func buildDiamond(t *testing.T) *diamond {
	t.Helper()
	net := netsim.New(3)
	mk := func(name string) *router.Router {
		r := router.New(name, router.Cisco, router.Config{TTLPropagate: true})
		net.AddNode(r)
		return r
	}
	a, b, c, d := mk("a"), mk("b"), mk("c"), mk("d")

	subnet := 0
	connect := func(x, y *router.Router) {
		p := netaddr.MustPrefixFrom(netaddr.AddrFrom4(10, 1, byte(subnet), 0), 30)
		subnet++
		xi := x.AddIface("to-"+y.Name(), p.Nth(1), p)
		yi := y.AddIface("to-"+x.Name(), p.Nth(2), p)
		net.Connect(xi, yi, time.Millisecond)
		for _, ifc := range []*netsim.Iface{xi, yi} {
			if err := net.RegisterIface(ifc); err != nil {
				t.Fatal(err)
			}
		}
	}
	connect(a, b)
	connect(a, c)
	connect(b, d)
	connect(c, d)

	for i, r := range []*router.Router{a, b, c, d} {
		lo := netaddr.AddrFrom4(192, 168, 1, byte(i+1))
		r.SetLoopback(lo)
		if err := net.RegisterIface(r.Loopback()); err != nil {
			t.Fatal(err)
		}
	}

	hp := netaddr.MustParsePrefix("10.9.0.0/30")
	host := netsim.NewHost("host", hp.Nth(2), hp)
	net.AddNode(host)
	di := d.AddIface("to-host", hp.Nth(1), hp)
	net.Connect(di, host.If, time.Millisecond)
	if err := net.RegisterIface(di); err != nil {
		t.Fatal(err)
	}
	if err := net.RegisterIface(host.If); err != nil {
		t.Fatal(err)
	}

	dom := &Domain{Routers: []*router.Router{a, b, c, d}}
	res, err := dom.Compute()
	if err != nil {
		t.Fatal(err)
	}
	return &diamond{net: net, a: a, b: b, c: c, d: d, host: host, res: res}
}

func TestSPFDistances(t *testing.T) {
	f := buildDiamond(t)
	cases := []struct {
		from, to *router.Router
		want     int
	}{
		{f.a, f.a, 0},
		{f.a, f.b, 1},
		{f.a, f.c, 1},
		{f.a, f.d, 2},
		{f.b, f.c, 2},
	}
	for _, c := range cases {
		if got := f.res.Dist[c.from][c.to]; got != c.want {
			t.Errorf("dist(%s,%s) = %d, want %d", c.from.Name(), c.to.Name(), got, c.want)
		}
	}
}

func TestECMPNextHops(t *testing.T) {
	f := buildDiamond(t)
	lo := f.d.Loopback().Prefix
	hops := f.res.NextHops[f.a][lo]
	if len(hops) != 2 {
		t.Fatalf("a has %d next hops toward d's loopback, want 2 (via b and c)", len(hops))
	}
	vias := map[string]bool{}
	for _, h := range hops {
		vias[h.Via.Name()] = true
	}
	if !vias["b"] || !vias["c"] {
		t.Errorf("ECMP vias = %v", vias)
	}
}

func TestConnectedRoutesInstalled(t *testing.T) {
	f := buildDiamond(t)
	// a's route to the a-b subnet must be connected.
	p := f.a.Ifaces()[0].Prefix
	_, rt, ok := f.a.LookupRoute(p.Nth(1))
	if !ok || rt.Origin != router.OriginConnected {
		t.Fatalf("route = %+v ok=%v", rt, ok)
	}
}

func TestOwnersIncludeBothEndsOfSubnet(t *testing.T) {
	f := buildDiamond(t)
	p := f.a.Ifaces()[0].Prefix // a-b subnet
	owners := f.res.Owners[p]
	if len(owners) != 2 {
		t.Fatalf("owners of %s = %d, want 2", p, len(owners))
	}
}

func TestEndToEndReachabilityAfterSPF(t *testing.T) {
	f := buildDiamond(t)
	// Attach a probing host at a.
	hp := netaddr.MustParsePrefix("10.8.0.0/30")
	vp := netsim.NewHost("vp", hp.Nth(2), hp)
	f.net.AddNode(vp)
	ai := f.a.AddIface("to-vp", hp.Nth(1), hp)
	f.net.Connect(ai, vp.If, time.Millisecond)
	// Recompute with the new stub subnet.
	dom := &Domain{Routers: []*router.Router{f.a, f.b, f.c, f.d}}
	if _, err := dom.Compute(); err != nil {
		t.Fatal(err)
	}

	var got *packet.Packet
	vp.Handler = func(net *netsim.Network, pkt *packet.Packet) { net.AdoptPacket(pkt); got = pkt }
	probe := &packet.Packet{
		IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: vp.Addr(), Dst: f.host.Addr()},
		ICMP: &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 5, Seq: 1},
	}
	f.net.Inject(vp.If, probe)
	if got == nil || got.ICMP.Type != packet.ICMPEchoReply {
		t.Fatalf("no echo reply across the domain: %v", got)
	}
	// Path: a, (b|c), d -> host; reply host(64) - 3 router hops = 61.
	if got.IP.TTL != 61 {
		t.Errorf("reply TTL = %d, want 61", got.IP.TTL)
	}
}

func TestLoopbackReachable(t *testing.T) {
	f := buildDiamond(t)
	_, rt, ok := f.a.LookupRoute(f.d.Loopback().Addr)
	if !ok || rt.Origin != router.OriginIGP {
		t.Fatalf("a's route to d.lo: %+v ok=%v", rt, ok)
	}
}

func TestCustomMetricShiftsPath(t *testing.T) {
	f := buildDiamond(t)
	// Make the a-b link expensive: all traffic a->d must go via c.
	abLink := f.a.Ifaces()[0].Link
	dom := &Domain{
		Routers: []*router.Router{f.a, f.b, f.c, f.d},
		Metric: func(l *netsim.Link) int {
			if l == abLink {
				return 10
			}
			return 1
		},
	}
	res, err := dom.Compute()
	if err != nil {
		t.Fatal(err)
	}
	hops := res.NextHops[f.a][f.d.Loopback().Prefix]
	if len(hops) != 1 || hops[0].Via != f.c {
		t.Fatalf("hops = %+v, want single path via c", hops)
	}
}

func TestNonPositiveMetricRejected(t *testing.T) {
	f := buildDiamond(t)
	dom := &Domain{
		Routers: []*router.Router{f.a, f.b, f.c, f.d},
		Metric:  func(*netsim.Link) int { return 0 },
	}
	if _, err := dom.Compute(); err == nil {
		t.Error("zero metric accepted")
	}
}

func TestDisconnectedRouterHasNoRoute(t *testing.T) {
	net := netsim.New(1)
	r1 := router.New("r1", router.Cisco, router.Config{})
	r2 := router.New("r2", router.Cisco, router.Config{})
	net.AddNode(r1)
	net.AddNode(r2)
	r1.SetLoopback(netaddr.MustParseAddr("192.168.5.1"))
	r2.SetLoopback(netaddr.MustParseAddr("192.168.5.2"))
	dom := &Domain{Routers: []*router.Router{r1, r2}}
	res, err := dom.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if hops := res.NextHops[r1][r2.Loopback().Prefix]; len(hops) != 0 {
		t.Errorf("unexpected hops across disconnected routers: %+v", hops)
	}
	if _, _, ok := r1.LookupRoute(r2.Loopback().Addr); ok {
		t.Error("route installed toward unreachable router")
	}
}
